// Package alchemist is the public API of this reproduction of
// "Alchemist: A Unified Accelerator Architecture for Cross-Scheme Fully
// Homomorphic Encryption" (DAC 2024).
//
// It bundles four layers:
//
//   - Live FHE schemes (internal/ckks, internal/bgv, internal/tfhe, plus
//     the internal/bridge cross-scheme switch): functional RNS-CKKS, BGV,
//     BFV and TFHE implementations used as CPU baselines and correctness
//     ground truth. Construct them with NewCKKS, NewBGV and NewTFHE.
//   - Workload graphs (internal/workload): operation DAGs for every
//     benchmark in the paper's evaluation.
//   - The accelerator model (internal/metaop, internal/arch, internal/sim):
//     Meta-OP lowering and the cycle-level Alchemist simulator.
//   - Baselines and reports (internal/baseline, internal/bench): modular
//     accelerator models and regeneration of every table and figure.
//
// Quick start:
//
//	cfg := alchemist.DefaultArch()
//	g := alchemist.Workloads().Cmult()
//	res, err := alchemist.SimulateContext(ctx, cfg, g,
//		alchemist.WithTimeout(time.Second))
//
// Batch evaluation (many (config, graph) pairs, shared worker pool and
// memo cache):
//
//	eng := alchemist.NewEngine(alchemist.WithWorkers(8))
//	defer eng.Close()
//	results, err := eng.Run(ctx,
//		alchemist.SimJob(cfg, g1),
//		alchemist.BaselineJob(alchemist.Baselines()[0], g2))
package alchemist

import (
	"context"
	"fmt"
	"time"

	"alchemist/internal/arch"
	"alchemist/internal/area"
	"alchemist/internal/baseline"
	"alchemist/internal/bench"
	"alchemist/internal/bgv"
	"alchemist/internal/ckks"
	"alchemist/internal/engine"
	"alchemist/internal/errs"
	"alchemist/internal/sim"
	"alchemist/internal/tfhe"
	"alchemist/internal/tokens"
	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

// Core model types.
type (
	// ArchConfig is an Alchemist hardware configuration.
	ArchConfig = arch.Config
	// Graph is a workload operation DAG.
	Graph = trace.Graph
	// Result is a cycle-simulation outcome.
	Result = sim.Result
	// Report is a regenerated paper table or figure.
	Report = bench.Report
	// AreaBreakdown is a Table 5-style area report.
	AreaBreakdown = area.Breakdown
	// BaselineConfig is a modular-accelerator model configuration.
	BaselineConfig = baseline.Config
	// BaselineResult is a baseline simulation outcome.
	BaselineResult = baseline.Result
)

// Scheme types for live FHE computation.
type (
	// CKKSParams parameterizes the approximate arithmetic scheme.
	CKKSParams = ckks.Parameters
	// BGVParams parameterizes the exact arithmetic scheme.
	BGVParams = bgv.Parameters
	// TFHEParams parameterizes the logic scheme.
	TFHEParams = tfhe.Params
)

// Batch-evaluation engine types (internal/engine re-exports).
type (
	// Engine is a concurrent batch evaluator for simulation jobs.
	Engine = engine.Engine
	// Job is one (ArchConfig|BaselineConfig, Graph) evaluation.
	Job = engine.Job
	// JobResult is the outcome of one engine job.
	JobResult = engine.Result
	// EngineStats is an engine's observable counter snapshot.
	EngineStats = engine.Stats
	// Cache is a shareable memo cache of simulation outcomes.
	Cache = engine.Cache
	// Option configures an Engine or a one-shot evaluation.
	Option = engine.Option
)

// Sentinel errors. Every failure returned by Simulate, SimulateBaseline,
// the context variants and the engine wraps one of these; match with
// errors.Is.
var (
	// ErrCanceled reports an evaluation stopped by context cancellation.
	ErrCanceled = errs.ErrCanceled
	// ErrTimeout reports an evaluation stopped by a deadline.
	ErrTimeout = errs.ErrTimeout
	// ErrGraphCycle reports a workload graph that is not a forward-ordered DAG.
	ErrGraphCycle = errs.ErrGraphCycle
	// ErrBadConfig reports an invalid architecture, baseline or graph shape.
	ErrBadConfig = errs.ErrBadConfig
	// ErrIllegalStream reports a compiled per-unit Meta-OP program that
	// violates the §5.3 architectural contract; raised by evaluations run
	// under WithVerifyStreams.
	ErrIllegalStream = errs.ErrIllegalStream
)

// DefaultArch returns the paper's design point: 128 computing units × 16
// Meta-OP cores, 64+2 MB on-chip, 1 TB/s HBM at 1 GHz.
func DefaultArch() ArchConfig { return arch.Default() }

// NewEngine starts a batch-evaluation engine. Close it when done.
func NewEngine(opts ...Option) *Engine { return engine.New(opts...) }

// NewCache returns an empty memo cache, shareable across engines via
// WithCache.
func NewCache() *Cache { return engine.NewCache() }

// SimJob describes an Alchemist simulation for the engine.
func SimJob(cfg ArchConfig, g *Graph) Job { return engine.SimJob(cfg, g) }

// BaselineJob describes a baseline simulation for the engine.
func BaselineJob(cfg BaselineConfig, g *Graph) Job { return engine.BaselineJob(cfg, g) }

// WithWorkers sets the evaluation pool size (default runtime.NumCPU).
func WithWorkers(n int) Option { return engine.WithWorkers(n) }

// SetComputeBudget retunes the process-wide compute-token budget (default
// GOMAXPROCS) shared by the engine's job parallelism and the ring layer's
// limb/block parallelism: the two compose additively against this one
// budget, so enabling both never oversubscribes the machine. Values below 1
// clamp to 1.
func SetComputeBudget(n int) { tokens.SetBudget(n) }

// ComputeBudget reports the configured compute-token budget.
func ComputeBudget() int { return tokens.Budget() }

// WithTimeout bounds each job's wall time.
func WithTimeout(d time.Duration) Option { return engine.WithTimeout(d) }

// WithCache shares a memo cache across engines; nil disables caching.
func WithCache(c *Cache) Option { return engine.WithCache(c) }

// WithVerifyStreams statically verifies each Alchemist job's compiled
// Meta-OP streams before simulating; violations fail with ErrIllegalStream.
func WithVerifyStreams(on bool) Option { return engine.WithVerifyStreams(on) }

// SimulateContext runs a workload graph on an Alchemist configuration,
// honoring ctx cancellation and the given options.
func SimulateContext(ctx context.Context, cfg ArchConfig, g *Graph, opts ...Option) (Result, error) {
	res := engine.Evaluate(ctx, engine.SimJob(cfg, g), opts...)
	return res.Sim, res.Err
}

// SimulateBaselineContext runs a workload graph on a modular baseline
// accelerator, honoring ctx cancellation and the given options.
func SimulateBaselineContext(ctx context.Context, cfg BaselineConfig, g *Graph, opts ...Option) (BaselineResult, error) {
	res := engine.Evaluate(ctx, engine.BaselineJob(cfg, g), opts...)
	return res.Baseline, res.Err
}

// Simulate runs a workload graph on an Alchemist configuration. It is
// SimulateContext with a background context.
func Simulate(cfg ArchConfig, g *Graph) (Result, error) {
	return SimulateContext(context.Background(), cfg, g)
}

// SimulateBaseline runs a workload graph on a modular baseline accelerator.
// It is SimulateBaselineContext with a background context.
func SimulateBaseline(cfg BaselineConfig, g *Graph) (BaselineResult, error) {
	return SimulateBaselineContext(context.Background(), cfg, g)
}

// Area returns the analytical area breakdown of a configuration
// (reproducing Table 5 at the default design point).
func Area(cfg ArchConfig) AreaBreakdown { return area.Estimate(cfg) }

// Baselines returns the modular accelerator models of the paper's
// comparison (F1, BTS, ARK, CraterLake, SHARP, Matcha, Strix).
func Baselines() []BaselineConfig {
	out := []BaselineConfig{baseline.F1()}
	out = append(out, baseline.ArithmeticBaselines()...)
	out = append(out, baseline.LogicBaselines()...)
	return out
}

// Reports regenerates every table and figure of the paper's evaluation.
func Reports() []*Report { return bench.All() }

// WorkloadSet builds the benchmark graphs at the paper's parameter points.
type WorkloadSet struct {
	Shape workload.CKKSShape
}

// Workloads returns a builder at the Table 7 parameter point (N=2^16,
// L=44 channels, dnum=4).
func Workloads() WorkloadSet { return WorkloadSet{Shape: workload.PaperShape()} }

// AppWorkloads returns a builder at the application point (seed-expanded
// evaluation keys, as the Figure 6 schedules assume).
func AppWorkloads() WorkloadSet { return WorkloadSet{Shape: workload.AppShape()} }

// Pmult returns the plaintext-multiplication graph.
func (w WorkloadSet) Pmult() *Graph { return workload.Pmult(w.Shape) }

// Hadd returns the homomorphic-addition graph.
func (w WorkloadSet) Hadd() *Graph { return workload.Hadd(w.Shape) }

// Keyswitch returns the hybrid key-switch graph.
func (w WorkloadSet) Keyswitch() *Graph { return workload.Keyswitch(w.Shape) }

// Cmult returns the ciphertext-multiplication graph.
func (w WorkloadSet) Cmult() *Graph { return workload.Cmult(w.Shape) }

// Rotation returns the slot-rotation graph.
func (w WorkloadSet) Rotation() *Graph { return workload.Rotation(w.Shape) }

// Bootstrap returns the fully-packed CKKS bootstrapping graph.
func (w WorkloadSet) Bootstrap() *Graph {
	return workload.Bootstrap(w.Shape, workload.DefaultBootstrapConfig())
}

// HELR returns one bootstrapping-amortized HELR-1024 block.
func (w WorkloadSet) HELR() *Graph {
	return workload.HELRBlock(w.Shape, workload.DefaultHELRConfig(), workload.DefaultBootstrapConfig())
}

// LoLaMNIST returns the LoLa-MNIST inference graph.
func (w WorkloadSet) LoLaMNIST(encryptedWeights bool) *Graph {
	return workload.LoLaMNIST(workload.DefaultLoLaConfig(encryptedWeights))
}

// PBSSet selects a TFHE programmable-bootstrapping parameter set.
type PBSSet int

// The paper's two TFHE evaluation sets. The values mirror the paper's
// numbering, so existing TFHEPBS(1, …) / TFHEPBS(2, …) calls keep working.
const (
	// PBSSet1 is the TFHE-lib standard set (N=1024, n=630, l=3).
	PBSSet1 PBSSet = 1
	// PBSSet2 is the larger-ring set (N=2048, n=742, l=4).
	PBSSet2 PBSSet = 2
)

// String names the set like the paper ("SetI", "SetII").
func (s PBSSet) String() string {
	switch s {
	case PBSSet1:
		return "SetI"
	case PBSSet2:
		return "SetII"
	}
	return fmt.Sprintf("PBSSet(%d)", int(s))
}

// shape resolves the set's dimensions; unknown values fall back to Set I,
// matching the historical TFHEPBS(set int, …) behavior.
func (s PBSSet) shape() workload.PBSShape {
	if s == PBSSet2 {
		return workload.PBSSetII()
	}
	return workload.PBSSetI()
}

// TFHEPBS returns a batched TFHE programmable-bootstrapping graph for the
// given parameter set.
func (w WorkloadSet) TFHEPBS(set PBSSet, batch int) *Graph {
	return workload.PBSBatch(set.shape(), batch)
}

// CrossScheme returns the mixed CKKS+TFHE workload motivating the unified
// design.
func (w WorkloadSet) CrossScheme() *Graph {
	return workload.CrossScheme(w.Shape, workload.PBSSetI(), 2, 1, 128)
}

// Live scheme constructors -----------------------------------------------

// CKKS bundles a live CKKS instance (context, encoder, keys, evaluator).
type CKKS struct {
	Context   *ckks.Context
	Encoder   *ckks.Encoder
	Secret    *ckks.SecretKey
	Public    *ckks.PublicKey
	Keys      *ckks.EvaluationKeySet
	Encryptor *ckks.Encryptor
	Decryptor *ckks.Decryptor
	Evaluator *ckks.Evaluator
}

// NewCKKS instantiates a live CKKS scheme with rotation keys for the given
// steps.
func NewCKKS(params CKKSParams, rotations []int, seed int64) (*CKKS, error) {
	ctx, err := ckks.NewContext(params)
	if err != nil {
		return nil, err
	}
	kg := ckks.NewKeyGenerator(ctx, seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	eks := kg.GenEvaluationKeySet(sk, rotations, true)
	return &CKKS{
		Context:   ctx,
		Encoder:   ckks.NewEncoder(ctx),
		Secret:    sk,
		Public:    pk,
		Keys:      eks,
		Encryptor: ckks.NewEncryptor(ctx, pk, seed+1),
		Decryptor: ckks.NewDecryptor(ctx, sk),
		Evaluator: ckks.NewEvaluator(ctx, eks),
	}, nil
}

// CKKSTestParams returns a fast functional CKKS parameter set.
func CKKSTestParams() CKKSParams { return ckks.TestParams() }

// BGV bundles a live BGV instance (exact modular arithmetic over Z_t).
type BGV struct {
	Context   *bgv.Context
	Encoder   *bgv.Encoder
	Secret    *bgv.SecretKey
	Public    *bgv.PublicKey
	Encryptor *bgv.Encryptor
	Decryptor *bgv.Decryptor
	Evaluator *bgv.Evaluator
}

// NewBGV instantiates a live BGV scheme.
func NewBGV(params BGVParams, seed int64) (*BGV, error) {
	ctx, err := bgv.NewContext(params)
	if err != nil {
		return nil, err
	}
	kg := bgv.NewKeyGenerator(ctx, seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	return &BGV{
		Context:   ctx,
		Encoder:   bgv.NewEncoder(ctx),
		Secret:    sk,
		Public:    pk,
		Encryptor: bgv.NewEncryptor(ctx, pk, seed+1),
		Decryptor: bgv.NewDecryptor(ctx, sk),
		Evaluator: bgv.NewEvaluator(ctx, rlk),
	}, nil
}

// BGVTestParams returns a fast functional BGV parameter set (t = 65537).
func BGVTestParams() BGVParams { return bgv.TestParams() }

// NewTFHE instantiates a live TFHE scheme (keys, bootstrapping key, gates).
func NewTFHE(params TFHEParams, seed int64) (*tfhe.Scheme, error) {
	return tfhe.NewScheme(params, seed)
}

// TFHEDefaultParams returns the standard gate-bootstrapping parameter set.
func TFHEDefaultParams() TFHEParams { return tfhe.DefaultParams() }

// TFHEFastParams returns a reduced set for quick experiments.
func TFHEFastParams() TFHEParams { return tfhe.FastTestParams() }

// SchemeSwitch returns the CKKS→bridge→TFHE pipeline as one workload.
func (w WorkloadSet) SchemeSwitch(values int) *Graph {
	return workload.SchemeSwitch(w.Shape, workload.PBSSetI(), values)
}

package alchemist

import (
	"context"
	"errors"
	"testing"
	"time"

	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

func TestFacadeSimulate(t *testing.T) {
	cfg := DefaultArch()
	res, err := Simulate(cfg, Workloads().Pmult())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 1056 {
		t.Fatalf("facade Pmult %d cycles, want 1056", res.Cycles)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	w := Workloads()
	app := AppWorkloads()
	graphs := []*Graph{
		w.Pmult(), w.Hadd(), w.Keyswitch(), w.Cmult(), w.Rotation(),
		app.Bootstrap(), app.HELR(), app.LoLaMNIST(false), app.LoLaMNIST(true),
		w.TFHEPBS(1, 128), w.TFHEPBS(2, 64), app.CrossScheme(),
	}
	for _, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if _, err := Simulate(DefaultArch(), g); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestFacadeBaselines(t *testing.T) {
	bs := Baselines()
	if len(bs) != 7 {
		t.Fatalf("expected 7 baselines, got %d", len(bs))
	}
	boot := AppWorkloads().Bootstrap()
	ran := 0
	for _, b := range bs {
		if !b.Arithmetic {
			continue
		}
		if _, err := SimulateBaseline(b, boot); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		ran++
	}
	if ran != 5 {
		t.Errorf("expected 5 arithmetic baselines, ran %d", ran)
	}
}

func TestFacadeArea(t *testing.T) {
	b := Area(DefaultArch())
	if b.Total < 181 || b.Total > 181.2 {
		t.Fatalf("area %.3f, want 181.086", b.Total)
	}
}

func TestFacadeReports(t *testing.T) {
	rs := Reports()
	if len(rs) < 12 {
		t.Fatalf("expected at least 12 reports, got %d", len(rs))
	}
}

func TestFacadeLiveCKKS(t *testing.T) {
	c, err := NewCKKS(CKKSTestParams(), []int{1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]complex128, c.Context.Params.Slots())
	for i := range z {
		z[i] = complex(float64(i%7)/7, 0)
	}
	level := c.Context.Params.MaxLevel()
	pt, err := c.Encoder.Encode(z, level, c.Context.Params.Scale)
	if err != nil {
		t.Fatal(err)
	}
	ct := c.Encryptor.Encrypt(pt, level, c.Context.Params.Scale)
	sum, err := c.Evaluator.Add(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Encoder.Decode(c.Decryptor.DecryptPoly(sum), sum.Level, sum.Scale)
	for i := range z {
		if d := real(got[i]) - 2*real(z[i]); d > 1e-5 || d < -1e-5 {
			t.Fatalf("facade CKKS add wrong at %d: %v", i, got[i])
		}
	}
}

func TestFacadeLiveBGV(t *testing.T) {
	b, err := NewBGV(BGVTestParams(), 21)
	if err != nil {
		t.Fatal(err)
	}
	params := b.Context.Params
	slots := make([]uint64, params.N())
	for i := range slots {
		slots[i] = uint64(i * 3 % int(params.T))
	}
	level := params.MaxLevel()
	pt, err := b.Encoder.Encode(slots, level)
	if err != nil {
		t.Fatal(err)
	}
	ct := b.Encryptor.Encrypt(pt, level)
	sq, err := b.Evaluator.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := b.Encoder.Decode(b.Decryptor.DecryptPoly(sq), sq.Level)
	for i := range slots {
		want := slots[i] * slots[i] % params.T
		if got[i] != want {
			t.Fatalf("facade BGV square wrong at %d: %d != %d", i, got[i], want)
		}
	}
}

func TestFacadeLiveTFHE(t *testing.T) {
	s, err := NewTFHE(TFHEFastParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.NAND(s.EncryptBool(true), s.EncryptBool(true))
	if err != nil {
		t.Fatal(err)
	}
	if s.DecryptBool(out) {
		t.Fatal("NAND(1,1) should be false")
	}
}

func TestFacadeLiveBFV(t *testing.T) {
	// BFV shares the BGV bundle (same context, keys and evaluator).
	b, err := NewBGV(BGVTestParams(), 22)
	if err != nil {
		t.Fatal(err)
	}
	params := b.Context.Params
	slots := make([]uint64, params.N())
	for i := range slots {
		slots[i] = uint64(i*7+3) % params.T
	}
	level := params.MaxLevel()
	pt, err := b.Encoder.EncodeBFV(slots, level)
	if err != nil {
		t.Fatal(err)
	}
	ct := b.Encryptor.EncryptBFV(pt, level)
	sq, err := b.Evaluator.MulBFV(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := b.Decryptor.DecryptBFV(b.Encoder, sq)
	for i := range slots {
		if want := slots[i] * slots[i] % params.T; got[i] != want {
			t.Fatalf("facade BFV square wrong at %d: %d != %d", i, got[i], want)
		}
	}
}

// TestLiveAndModeledPipelinesCorrespond runs the same computation through
// both stacks: live CKKS (correctness ground truth) and the program
// compiler + accelerator model (performance), asserting the op-graph's
// keyswitch count matches the operations actually performed.
func TestLiveAndModeledPipelinesCorrespond(t *testing.T) {
	// Live: y = (x·x) rotated by 1, plus x.
	fhe, err := NewCKKS(CKKSTestParams(), []int{1}, 99)
	if err != nil {
		t.Fatal(err)
	}
	params := fhe.Context.Params
	z := make([]complex128, params.Slots())
	for i := range z {
		z[i] = complex(float64(i%10)/10, 0)
	}
	level := params.MaxLevel()
	pt, _ := fhe.Encoder.Encode(z, level, params.Scale)
	ct := fhe.Encryptor.Encrypt(pt, level, params.Scale)
	sq, err := fhe.Evaluator.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	sq, err = fhe.Evaluator.Rescale(sq)
	if err != nil {
		t.Fatal(err)
	}
	rot, err := fhe.Evaluator.Rotate(sq, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := fhe.Encoder.Decode(fhe.Decryptor.DecryptPoly(rot), rot.Level, rot.Scale)
	n := params.Slots()
	for i := 0; i < n; i++ {
		want := z[(i+1)%n] * z[(i+1)%n]
		d := real(got[i]) - real(want)
		if d > 1e-3 || d < -1e-3 {
			t.Fatalf("live pipeline wrong at %d: %v want %v", i, got[i], want)
		}
	}

	// Modeled: the same computation as a compiled program. One Mul + one
	// Rotate = exactly two keyswitches (two evk streams).
	p := workload.NewProgram("correspond", workload.AppShape())
	x := p.Input("x")
	sqH := p.Mul(x, x)
	p.Rotate(sqH, 1)
	g, err := p.Graph()
	if err != nil {
		t.Fatal(err)
	}
	ksCount := 0
	for _, op := range g.Ops {
		if op.Kind == trace.KindDecompPolyMult {
			ksCount++
		}
	}
	if ksCount != 2 {
		t.Fatalf("graph has %d keyswitches, the live pipeline performed 2", ksCount)
	}
	res, err := Simulate(DefaultArch(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.StreamBytes <= 0 {
		t.Fatal("modeled pipeline produced no work")
	}
}

func TestFacadeSimulateContext(t *testing.T) {
	cfg := DefaultArch()
	g := Workloads().Pmult()
	res, err := SimulateContext(context.Background(), cfg, g, WithTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 1056 {
		t.Fatalf("context facade Pmult %d cycles, want 1056", res.Cycles)
	}
	// The legacy shim must agree exactly.
	legacy, err := Simulate(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Cycles != res.Cycles || legacy.Seconds != res.Seconds {
		t.Fatal("Simulate shim diverged from SimulateContext")
	}

	bres, err := SimulateBaselineContext(context.Background(), Baselines()[0], g)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Cycles <= 0 {
		t.Fatal("baseline context facade produced no cycles")
	}
}

func TestFacadeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateContext(ctx, DefaultArch(), Workloads().Cmult())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must still match context.Canceled", err)
	}
}

func TestFacadeSentinelErrors(t *testing.T) {
	bad := DefaultArch()
	bad.Units = 0
	if _, err := SimulateContext(context.Background(), bad, Workloads().Pmult()); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	cyclic := &Graph{Name: "cyclic"}
	cyclic.Ops = append(cyclic.Ops,
		&trace.Op{ID: 0, Kind: trace.KindNTT, N: 64, Channels: 1, Polys: 1, Deps: []int{0}})
	if _, err := Simulate(DefaultArch(), cyclic); !errors.Is(err, ErrGraphCycle) {
		t.Fatalf("err = %v, want ErrGraphCycle", err)
	}
}

func TestFacadeEngineBatch(t *testing.T) {
	cache := NewCache()
	eng := NewEngine(WithWorkers(4), WithCache(cache))
	defer eng.Close()
	w := Workloads()
	jobs := []Job{
		SimJob(DefaultArch(), w.Pmult()),
		SimJob(DefaultArch(), w.Cmult()),
		BaselineJob(Baselines()[1], w.Cmult()),
	}
	results, err := eng.Run(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	if results[0].Sim.Cycles != 1056 {
		t.Fatalf("batch Pmult %d cycles, want 1056", results[0].Sim.Cycles)
	}
	var st EngineStats = eng.Stats()
	if st.Submitted != 3 || st.Completed != 3 {
		t.Fatalf("stats %+v, want 3 submitted and completed", st)
	}
}

func TestPBSSetEnum(t *testing.T) {
	if PBSSet1.String() != "SetI" || PBSSet2.String() != "SetII" {
		t.Fatalf("PBSSet names: %v %v", PBSSet1, PBSSet2)
	}
	w := Workloads()
	// Untyped constants keep historical call sites working.
	if w.TFHEPBS(1, 8).Name != w.TFHEPBS(PBSSet1, 8).Name {
		t.Fatal("TFHEPBS(1, …) must match TFHEPBS(PBSSet1, …)")
	}
	g2 := w.TFHEPBS(PBSSet2, 8)
	if g2.Name != "tfhe-pbs-SetII-x8" {
		t.Fatalf("SetII graph name %q", g2.Name)
	}
}

// TestReportIDsUnique guards the fhebench -only lookup.
func TestReportIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Reports() {
		if seen[r.ID] {
			t.Fatalf("duplicate report id %q", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) < 20 {
		t.Fatalf("expected at least 20 reports, got %d", len(seen))
	}
}

// Benchmark harness: one testing.B benchmark per paper table/figure
// (regenerating the artifact from the models and reporting its headline
// metrics), plus live Go CPU measurements of the actual FHE operators that
// ground the CPU columns.
//
// Run: go test -bench=. -benchmem
package alchemist

import (
	"math/rand"
	"testing"

	"alchemist/internal/arch"
	"alchemist/internal/bench"
	"alchemist/internal/bgv"
	"alchemist/internal/ckks"
	"alchemist/internal/sim"
	"alchemist/internal/tfhe"
	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

// --- Model benchmarks: tables -------------------------------------------

func simBench(b *testing.B, g *Graph, opsPerGraph float64) sim.Result {
	b.Helper()
	cfg := arch.Default()
	var res sim.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = sim.Simulate(cfg, g)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Cycles), "cycles")
	b.ReportMetric(res.ComputeUtilization, "util")
	if opsPerGraph > 0 {
		b.ReportMetric(opsPerGraph/res.Seconds, "modelops/s")
	}
	return res
}

func BenchmarkTable7_Pmult(b *testing.B) {
	simBench(b, workload.Pmult(workload.PaperShape()), 1)
}

func BenchmarkTable7_Hadd(b *testing.B) {
	simBench(b, workload.Hadd(workload.PaperShape()), 1)
}

func BenchmarkTable7_Keyswitch(b *testing.B) {
	simBench(b, workload.KeyswitchThroughput(workload.PaperShape(), 4), 4)
}

func BenchmarkTable7_Cmult(b *testing.B) {
	simBench(b, workload.CmultThroughput(workload.PaperShape(), 4), 4)
}

func BenchmarkTable7_Rotation(b *testing.B) {
	simBench(b, workload.RotationThroughput(workload.PaperShape(), 4), 4)
}

func reportBench(b *testing.B, gen func() *bench.Report) {
	b.Helper()
	var r *bench.Report
	for i := 0; i < b.N; i++ {
		r = gen()
	}
	b.ReportMetric(float64(len(r.Rows)), "rows")
}

func BenchmarkTable2_DecompPolyMult(b *testing.B) { reportBench(b, bench.Table2) }
func BenchmarkTable3_Modup(b *testing.B)          { reportBench(b, bench.Table3) }
func BenchmarkTable4_AccessPatterns(b *testing.B) { reportBench(b, bench.Table4) }
func BenchmarkTable5_Area(b *testing.B)           { reportBench(b, bench.Table5) }
func BenchmarkTable6_Resources(b *testing.B)      { reportBench(b, bench.Table6) }

// --- Model benchmarks: figures -------------------------------------------

func BenchmarkFig1_OperatorRatio(b *testing.B) { reportBench(b, bench.Figure1) }

func BenchmarkFig6a_Bootstrap(b *testing.B) {
	res := simBench(b, workload.Bootstrap(workload.AppShape(), workload.DefaultBootstrapConfig()), 0)
	b.ReportMetric(res.Seconds*1e3, "model-ms")
}

func BenchmarkFig6a_HELR(b *testing.B) {
	res := simBench(b, workload.HELRBlock(workload.AppShape(),
		workload.DefaultHELRConfig(), workload.DefaultBootstrapConfig()), 0)
	b.ReportMetric(res.Seconds*1e3/float64(workload.DefaultHELRConfig().BootstrapEvery), "model-ms/iter")
}

func BenchmarkFig6a_LoLaMNIST(b *testing.B) {
	res := simBench(b, workload.LoLaMNIST(workload.DefaultLoLaConfig(true)), 0)
	b.ReportMetric(res.Seconds*1e3, "model-ms")
}

func BenchmarkFig6a_PerfPerArea(b *testing.B) { reportBench(b, bench.Figure6aPerfArea) }

func BenchmarkFig6b_PBS(b *testing.B) {
	res := simBench(b, workload.PBSBatch(workload.PBSSetI(), 128), 128)
	b.ReportMetric(128/res.Seconds, "PBS/s")
}

func BenchmarkFig7a_MultOverhead(b *testing.B) { reportBench(b, bench.Figure7a) }
func BenchmarkFig7b_Utilization(b *testing.B)  { reportBench(b, bench.Figure7b) }

// --- Ablation benchmarks --------------------------------------------------

func BenchmarkAblation_LaneWidth(b *testing.B)     { reportBench(b, bench.AblationLaneWidth) }
func BenchmarkAblation_LazyReduction(b *testing.B) { reportBench(b, bench.AblationLazyReduction) }
func BenchmarkAblation_DataLayout(b *testing.B)    { reportBench(b, bench.AblationDataLayout) }
func BenchmarkAblation_UnitCount(b *testing.B)     { reportBench(b, bench.AblationUnitCount) }
func BenchmarkAblation_SRAMSize(b *testing.B)      { reportBench(b, bench.AblationSRAMSize) }

// --- Live CPU baselines ----------------------------------------------------
//
// These measure the actual Go implementations (the "CPU" rows of Table 7 in
// spirit; run at N=2^11 test parameters — absolute times are reported, not
// compared to the paper's Xeon numbers).

var cpuH *struct {
	ctx *ckks.Context
	enc *ckks.Encoder
	ev  *ckks.Evaluator
	ct1 *ckks.Ciphertext
	ct2 *ckks.Ciphertext
}

func cpuSetup(b *testing.B) *struct {
	ctx *ckks.Context
	enc *ckks.Encoder
	ev  *ckks.Evaluator
	ct1 *ckks.Ciphertext
	ct2 *ckks.Ciphertext
} {
	b.Helper()
	if cpuH != nil {
		return cpuH
	}
	params := ckks.TestParams()
	ctx, err := ckks.NewContext(params)
	if err != nil {
		b.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	eks := kg.GenEvaluationKeySet(sk, []int{1}, false)
	enc := ckks.NewEncoder(ctx)
	et := ckks.NewEncryptor(ctx, pk, 2)
	rng := rand.New(rand.NewSource(3))
	z := make([]complex128, params.Slots())
	for i := range z {
		z[i] = complex(rng.Float64(), 0)
	}
	level := params.MaxLevel()
	pt, _ := enc.Encode(z, level, params.Scale)
	cpuH = &struct {
		ctx *ckks.Context
		enc *ckks.Encoder
		ev  *ckks.Evaluator
		ct1 *ckks.Ciphertext
		ct2 *ckks.Ciphertext
	}{
		ctx: ctx,
		enc: enc,
		ev:  ckks.NewEvaluator(ctx, eks),
		ct1: et.Encrypt(pt, level, params.Scale),
		ct2: et.Encrypt(pt, level, params.Scale),
	}
	return cpuH
}

func BenchmarkCPUHadd(b *testing.B) {
	h := cpuSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.ev.Add(h.ct1, h.ct2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPUPmult(b *testing.B) {
	h := cpuSetup(b)
	params := h.ctx.Params
	z := make([]complex128, params.Slots())
	pt, _ := h.enc.Encode(z, h.ct1.Level, params.Scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ev.MulPlain(h.ct1, pt, params.Scale)
	}
}

func BenchmarkCPUCmult(b *testing.B) {
	h := cpuSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.ev.MulRelin(h.ct1, h.ct2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPURotation(b *testing.B) {
	h := cpuSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.ev.Rotate(h.ct1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

var tfheCPU *tfhe.Scheme

func BenchmarkCPUGateBootstrap(b *testing.B) {
	if tfheCPU == nil {
		s, err := tfhe.NewScheme(tfhe.FastTestParams(), 9)
		if err != nil {
			b.Fatal(err)
		}
		tfheCPU = s
	}
	x := tfheCPU.EncryptBool(true)
	y := tfheCPU.EncryptBool(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tfheCPU.NAND(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPUKeyswitchClass measures the hybrid key-switch core alone.
func BenchmarkCPUKeyswitchClass(b *testing.B) {
	h := cpuSetup(b)
	level := h.ct1.Level
	c := h.ctx.RQ.Clone(level, h.ct1.A)
	kg := ckks.NewKeyGenerator(h.ctx, 4)
	sk2 := kg.GenSecretKey()
	swk := kg.GenSwitchingKey(sk2.Q, sk2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ev.KeySwitch(level, c, swk)
	}
}

// Sanity: every workload graph simulates without error under -bench.
func BenchmarkModelAllWorkloads(b *testing.B) {
	graphs := []*trace.Graph{
		workload.Pmult(workload.PaperShape()),
		workload.Cmult(workload.PaperShape()),
		workload.Bootstrap(workload.AppShape(), workload.DefaultBootstrapConfig()),
		workload.PBSBatch(workload.PBSSetI(), 128),
	}
	cfg := arch.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			if _, err := sim.Simulate(cfg, g); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Live CPU baselines for the exact arithmetic schemes and the bridge.

var bgvCPU *struct {
	ctx *bgv.Context
	enc *bgv.Encoder
	ev  *bgv.Evaluator
	ct1 *bgv.Ciphertext
	bf1 *bgv.BFVCiphertext
	dt  *bgv.Decryptor
}

func bgvSetup(b *testing.B) {
	b.Helper()
	if bgvCPU != nil {
		return
	}
	ctx, err := bgv.NewContext(bgv.TestParams())
	if err != nil {
		b.Fatal(err)
	}
	kg := bgv.NewKeyGenerator(ctx, 5)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	enc := bgv.NewEncoder(ctx)
	et := bgv.NewEncryptor(ctx, pk, 6)
	slots := make([]uint64, ctx.Params.N())
	for i := range slots {
		slots[i] = uint64(i) % ctx.Params.T
	}
	level := ctx.Params.MaxLevel()
	pt, _ := enc.Encode(slots, level)
	ptB, _ := enc.EncodeBFV(slots, level)
	bgvCPU = &struct {
		ctx *bgv.Context
		enc *bgv.Encoder
		ev  *bgv.Evaluator
		ct1 *bgv.Ciphertext
		bf1 *bgv.BFVCiphertext
		dt  *bgv.Decryptor
	}{
		ctx: ctx,
		enc: enc,
		ev:  bgv.NewEvaluator(ctx, rlk),
		ct1: et.Encrypt(pt, level),
		bf1: et.EncryptBFV(ptB, level),
		dt:  bgv.NewDecryptor(ctx, sk),
	}
}

func BenchmarkCPUBGVMul(b *testing.B) {
	bgvSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bgvCPU.ev.MulRelin(bgvCPU.ct1, bgvCPU.ct1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPUBFVMul(b *testing.B) {
	bgvSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bgvCPU.ev.MulBFV(bgvCPU.bf1, bgvCPU.bf1); err != nil {
			b.Fatal(err)
		}
	}
}

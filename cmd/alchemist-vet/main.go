// Command alchemist-vet runs the repo-specific static-analysis gate over the
// module: the arithmetic (raw-mod), randomness (weak-rand), architecture
// provenance (arch-const), panic-discipline, arena-lifetime (Borrow /
// Release dataflow) and lazy-bounds (interval-domain reduction proofs) rules
// that ordinary go vet cannot see, plus the unused-allow sweep that retires
// stale suppressions. See internal/lint for the engine and DESIGN.md for the
// rule rationale.
//
// Usage:
//
//	go run ./cmd/alchemist-vet ./...
//	go run ./cmd/alchemist-vet ./internal/ring ./internal/tfhe
//	go run ./cmd/alchemist-vet -json ./...
//	go run ./cmd/alchemist-vet -rules lazy-bounds,arena-life ./internal/ring
//	go run ./cmd/alchemist-vet -list-rules
//
// With -rules <csv>, only the named rules run (CI and the mutation
// self-tests use this to isolate one heavy rule); //alchemist:allow
// directives for the unselected rules stay valid, and the unused-allow sweep
// is skipped since staleness cannot be judged on a partial run. With -json,
// findings are emitted as a JSON array on stdout (empty array on a clean
// tree) for CI artifacts and tooling. Exit status is 1 when any finding is
// reported, 0 on a clean tree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"alchemist/internal/lint"
)

// jsonFinding is the stable wire form of a finding; field names are part of
// the CI artifact contract.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
	Hint string `json:"hint"`
}

func main() {
	rules := flag.String("rules", "", "comma-separated rule names: run only these rules (see -list-rules)")
	listRules := flag.Bool("list-rules", false, "list the rules and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: alchemist-vet [-rules name,name,...] [-list-rules] [-json] [packages]\n\npackages default to ./...; patterns may be import paths or ./relative paths, with an optional /... suffix\n-rules runs a subset of the gate in isolation (unknown names are an error; the unused-allow sweep only runs unfiltered)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	runner := lint.NewRunner(loader)

	if *listRules {
		for _, a := range runner.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		fmt.Printf("%-12s %s\n", "directive", "every //alchemist:allow directive must name a known rule and give a reason")
		return
	}
	if *rules != "" {
		if err := runner.Filter(strings.Split(*rules, ",")); err != nil {
			fatal(err)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := resolvePatterns(root, loader.ModulePath, patterns)
	if err != nil {
		fatal(err)
	}
	findings, err := runner.Run(paths)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			name := f.Pos.Filename
			if r, err := filepath.Rel(root, name); err == nil {
				name = r
			}
			out = append(out, jsonFinding{
				File: name, Line: f.Pos.Line, Col: f.Pos.Column,
				Rule: f.Rule, Msg: f.Msg, Hint: f.Hint,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			rel := f
			if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Printf("%s\n    hint: %s\n", rel, f.Hint)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "alchemist-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// resolvePatterns expands each pattern into module import paths.
func resolvePatterns(root, module string, patterns []string) ([]string, error) {
	all, err := lint.DiscoverPackages(root, module)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		// Normalize ./relative patterns to import paths.
		switch {
		case pat == "." || pat == "":
			pat = module
		case strings.HasPrefix(pat, "./"):
			pat = module + "/" + strings.TrimPrefix(pat, "./")
		case !strings.HasPrefix(pat, module):
			pat = module + "/" + pat
		}
		matched := false
		for _, p := range all {
			if p == pat || (recursive && (pat == module || strings.HasPrefix(p, pat+"/"))) {
				add(p)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("alchemist-vet: pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("alchemist-vet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

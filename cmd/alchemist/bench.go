package main

import (
	"flag"
	"fmt"
	"os"

	"alchemist/internal/bench"
)

// runBench implements `alchemist bench`: measure the live Go kernels
// (ring transforms, scheme evaluators, engine report regeneration) and
// print them, or write a JSON capture for the in-repo benchmark
// trajectory (BENCH_BASELINE.json, BENCH_PR4.json, BENCH_PR5.json, ...).
// With -capture the suite is loaded from an existing JSON file instead of
// being re-measured, so CI can diff two committed captures deterministically;
// with -gate any matched kernel regressing past the threshold fails the run.
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		jsonOut  = fs.Bool("json", false, "write the capture as JSON (see -out)")
		out      = fs.String("out", "BENCH_PR5.json", "JSON output path with -json (- for stdout)")
		label    = fs.String("label", "", "capture label stored in the JSON (default: output filename)")
		quick    = fs.Bool("quick", false, "reduced parameter set (CI smoke)")
		workers  = fs.Int("workers", 0, "ring worker goroutines (0 = NumCPU)")
		best     = fs.Int("best", 1, "run each kernel this many times, keep the fastest pass (tracked captures use 3)")
		baseline = fs.String("baseline", "", "compare against a previous JSON capture")
		capture  = fs.String("capture", "", "load this JSON capture instead of measuring")
		gate     = fs.Float64("gate", 0, "with -baseline: fail if any matched kernel regresses by more than this percent")
		quiet    = fs.Bool("q", false, "suppress per-benchmark progress lines")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: alchemist bench [-json] [-out file] [-quick] [-workers n] [-best n] [-baseline file] [-capture file] [-gate pct]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	var suite *bench.LiveSuite
	if *capture != "" {
		var err error
		suite, err = bench.ReadLiveSuite(*capture)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		cfg := bench.LiveConfig{
			Label:   *label,
			Workers: *workers,
			Quick:   *quick,
			Best:    *best,
		}
		if cfg.Label == "" {
			cfg.Label = *out
		}
		if !*quiet {
			cfg.Progress = func(line string) { fmt.Println(line) }
		}
		var err error
		suite, err = bench.RunLive(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := suite.WriteJSON(*out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if *out != "-" {
				fmt.Printf("bench      wrote %d results to %s\n", len(suite.Results), *out)
			}
		}
	}
	if *baseline != "" {
		base, err := bench.ReadLiveSuite(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(suite.Compare(base).String())
		if *gate > 0 {
			regs := suite.Regressions(base, *gate)
			if len(regs) > 0 {
				fmt.Fprintf(os.Stderr, "bench: %d kernel(s) regressed past the %.0f%% gate vs %s:\n", len(regs), *gate, *baseline)
				for _, r := range regs {
					fmt.Fprintln(os.Stderr, "  "+r.String())
				}
				os.Exit(1)
			}
			fmt.Printf("bench      gate ok: no kernel regressed more than %.0f%% vs %s\n", *gate, *baseline)
		}
	}
}

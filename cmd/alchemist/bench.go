package main

import (
	"flag"
	"fmt"
	"os"

	"alchemist/internal/bench"
)

// runBench implements `alchemist bench`: measure the live Go kernels
// (ring transforms, scheme evaluators, engine report regeneration) and
// print them, or write a JSON capture for the in-repo benchmark
// trajectory (BENCH_BASELINE.json, BENCH_PR4.json, ...).
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		jsonOut  = fs.Bool("json", false, "write the capture as JSON (see -out)")
		out      = fs.String("out", "BENCH_PR4.json", "JSON output path with -json (- for stdout)")
		label    = fs.String("label", "", "capture label stored in the JSON (default: output filename)")
		quick    = fs.Bool("quick", false, "reduced parameter set (CI smoke)")
		workers  = fs.Int("workers", 0, "ring worker goroutines (0 = NumCPU)")
		baseline = fs.String("baseline", "", "compare against a previous JSON capture")
		quiet    = fs.Bool("q", false, "suppress per-benchmark progress lines")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: alchemist bench [-json] [-out file] [-quick] [-workers n] [-baseline file]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	cfg := bench.LiveConfig{
		Label:   *label,
		Workers: *workers,
		Quick:   *quick,
	}
	if cfg.Label == "" {
		cfg.Label = *out
	}
	if !*quiet {
		cfg.Progress = func(line string) { fmt.Println(line) }
	}
	suite, err := bench.RunLive(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *jsonOut {
		if err := suite.WriteJSON(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *out != "-" {
			fmt.Printf("bench      wrote %d results to %s\n", len(suite.Results), *out)
		}
	}
	if *baseline != "" {
		base, err := bench.ReadLiveSuite(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(suite.Compare(base).String())
	}
}

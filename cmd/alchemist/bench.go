package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"alchemist/internal/bench"
)

// runBench implements `alchemist bench`: measure the live Go kernels
// (ring transforms, scheme evaluators, engine report regeneration) and
// print them, or write a JSON capture for the in-repo benchmark
// trajectory (BENCH_BASELINE.json, BENCH_PR4.json, BENCH_PR5.json, ...).
// -workers takes a comma list ("1,4"): more than one count produces a
// multi-worker scaling capture (schema v2) with one sub-suite per count and
// a derived speedup/efficiency table. With -capture the suite is loaded
// from an existing JSON file instead of being re-measured, so CI can diff
// two committed captures deterministically; with -gate any matched kernel
// regressing past the threshold fails the run. Comparisons pair sub-suites
// by (GOMAXPROCS, workers) and refuse to run when nothing pairs up — a
// serial capture diffed against a parallel one measures scheduling, not
// kernels.
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		jsonOut    = fs.Bool("json", false, "write the capture as JSON (see -out)")
		out        = fs.String("out", "BENCH_PR5.json", "JSON output path with -json (- for stdout)")
		label      = fs.String("label", "", "capture label stored in the JSON (default: output filename)")
		quick      = fs.Bool("quick", false, "reduced parameter set (CI smoke)")
		workers    = fs.String("workers", "0", "comma list of ring worker counts (0 = NumCPU); >1 entry emits a scaling capture")
		best       = fs.Int("best", 1, "run each kernel this many times, keep the fastest pass (tracked captures use 3-6)")
		baseline   = fs.String("baseline", "", "compare against a previous JSON capture")
		capture    = fs.String("capture", "", "load this JSON capture instead of measuring")
		gate       = fs.Float64("gate", 0, "with -baseline: fail if any matched kernel regresses by more than this percent")
		scaleFloor = fs.Float64("scale-floor", 0, "fail if any ring-partitioned kernel's parallel efficiency is below this fraction (needs a multi-worker capture)")
		quiet      = fs.Bool("q", false, "suppress per-benchmark progress lines")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: alchemist bench [-json] [-out file] [-quick] [-workers n,m] [-best n] [-baseline file] [-capture file] [-gate pct] [-scale-floor frac]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	var suite *bench.ScalingSuite
	if *capture != "" {
		var err error
		suite, err = bench.ReadCapture(*capture)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		counts, err := parseWorkerList(*workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg := bench.LiveConfig{
			Label: *label,
			Quick: *quick,
			Best:  *best,
		}
		if cfg.Label == "" {
			cfg.Label = *out
		}
		if !*quiet {
			cfg.Progress = func(line string) { fmt.Println(line) }
		}
		if len(counts) == 1 {
			// Single count: measure and store the plain v1 shape so the
			// committed trajectory files stay diffable with older captures.
			cfg.Workers = counts[0]
			s, err := bench.RunLive(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			suite = bench.Wrap(s)
			if *jsonOut {
				if err := s.WriteJSON(*out); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if *out != "-" {
					fmt.Printf("bench      wrote %d results to %s\n", len(s.Results), *out)
				}
			}
		} else {
			suite, err = bench.RunScaling(cfg, counts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(suite.ScalingReport().String())
			if *jsonOut {
				if err := suite.WriteJSON(*out); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if *out != "-" {
					n := 0
					for _, s := range suite.Subs {
						n += len(s.Results)
					}
					fmt.Printf("bench      wrote %d results (%d worker counts) to %s\n", n, len(suite.Subs), *out)
				}
			}
		}
	}
	if *scaleFloor > 0 {
		if err := suite.CheckEfficiencyFloor(*scaleFloor); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("bench      scaling ok: partitioned kernels at or above %.0f%% efficiency\n", *scaleFloor*100)
	}
	if *baseline != "" {
		base, err := bench.ReadCapture(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pairs, err := bench.MatchSubs(suite, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var regs []bench.Regression
		for _, p := range pairs {
			fmt.Print(p.New.Compare(p.Base).String())
			if *gate > 0 {
				regs = append(regs, p.New.Regressions(p.Base, *gate)...)
			}
		}
		if *gate > 0 {
			if len(regs) > 0 {
				fmt.Fprintf(os.Stderr, "bench: %d kernel(s) regressed past the %.0f%% gate vs %s:\n", len(regs), *gate, *baseline)
				for _, r := range regs {
					fmt.Fprintln(os.Stderr, "  "+r.String())
				}
				os.Exit(1)
			}
			fmt.Printf("bench      gate ok: no kernel regressed more than %.0f%% vs %s\n", *gate, *baseline)
		}
	}
}

// parseWorkerList parses the -workers comma list; "0" or an empty string
// selects the single-capture default (NumCPU).
func parseWorkerList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{0}, nil
	}
	parts := strings.Split(s, ",")
	counts := make([]int, 0, len(parts))
	seen := map[int]bool{}
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bench: bad -workers entry %q (want non-negative integers, comma-separated)", p)
		}
		if seen[n] {
			return nil, fmt.Errorf("bench: duplicate -workers entry %d", n)
		}
		seen[n] = true
		counts = append(counts, n)
	}
	if len(counts) > 1 {
		for _, n := range counts {
			if n == 0 {
				return nil, fmt.Errorf("bench: -workers list mixing 0 (auto) with explicit counts is ambiguous")
			}
		}
	}
	return counts, nil
}

package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"alchemist/internal/arch"
	"alchemist/internal/sched"
	"alchemist/internal/streamcheck"
)

// runCheck implements `alchemist check`: compile every benchmark workload
// (or one, with -workload) to per-unit Meta-OP streams at the paper design
// point and statically verify them against the §5.3 contract. Exits 0 only
// when every checked program is clean. -mutate applies a named defect first
// and is expected to make the check fail — the CI uses it to prove the
// verifier has teeth.
func runCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	var (
		name    = fs.String("workload", "", "verify one workload instead of all (-workloads on the main command lists them)")
		mutate  = fs.String("mutate", "", "apply this mutator to each compiled program before checking (see -list-mutators)")
		listMut = fs.Bool("list-mutators", false, "list the mutation harness's defect catalog and exit")
		verbose = fs.Bool("v", false, "print the per-phase report for every workload")
	)
	fs.Parse(args)

	if *listMut {
		for _, m := range streamcheck.Mutators() {
			fmt.Printf("%-20s %s\n", m.Name, m.Doc)
		}
		return
	}
	var mut *streamcheck.Mutator
	if *mutate != "" {
		for _, m := range streamcheck.Mutators() {
			if m.Name == *mutate {
				mm := m
				mut = &mm
				break
			}
		}
		if mut == nil {
			fmt.Fprintf(os.Stderr, "unknown mutator %q (use -list-mutators)\n", *mutate)
			os.Exit(2)
		}
	}

	names := make([]string, 0, len(workloads))
	if *name != "" {
		if _, ok := workloads[*name]; !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (use -workloads)\n", *name)
			os.Exit(2)
		}
		names = append(names, *name)
	} else {
		for n := range workloads {
			names = append(names, n)
		}
		sort.Strings(names)
	}

	cfg := arch.Default()
	failed := 0
	for _, n := range names {
		g := workloads[n]()
		p, err := sched.Compile(cfg, g)
		if err != nil {
			fmt.Printf("FAIL %-10s compile: %v\n", n, err)
			failed++
			continue
		}
		if mut != nil && !mut.Apply(p) {
			fmt.Printf("FAIL %-10s mutator %q found no applicable site\n", n, mut.Name)
			failed++
			continue
		}
		r, err := streamcheck.Check(g, p)
		if err != nil {
			fmt.Printf("FAIL %-10s check: %v\n", n, err)
			failed++
			continue
		}
		verdict := "ok  "
		if !r.Clean() {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%s %-10s %s\n", verdict, n, r)
		if *verbose {
			fmt.Print(r.Detail())
		}
		if !r.Clean() && !*verbose {
			for i, f := range r.Findings {
				if i == 8 {
					fmt.Printf("     ... %d more finding(s)\n", len(r.Findings)-i)
					break
				}
				fmt.Printf("     %s\n", f)
			}
		}
	}
	if failed > 0 {
		fmt.Printf("check: %d of %d workload(s) failed verification\n", failed, len(names))
		os.Exit(1)
	}
	fmt.Printf("check: all %d workload(s) verified clean\n", len(names))
}

// Command alchemist runs a benchmark workload on the Alchemist accelerator
// model (or one of the baseline accelerators) and prints cycles, runtime and
// utilization.
//
// Usage:
//
//	alchemist -workload bootstrap
//	alchemist -workload cmult -units 256 -list
//	alchemist -workload pbs1 -design Strix
//	alchemist sweep -workers 8 -verify -stats
//	alchemist check -v
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"alchemist"
	"alchemist/internal/area"
	"alchemist/internal/trace"
)

var workloads = map[string]func() *alchemist.Graph{
	"pmult":     func() *alchemist.Graph { return alchemist.Workloads().Pmult() },
	"hadd":      func() *alchemist.Graph { return alchemist.Workloads().Hadd() },
	"keyswitch": func() *alchemist.Graph { return alchemist.Workloads().Keyswitch() },
	"cmult":     func() *alchemist.Graph { return alchemist.Workloads().Cmult() },
	"rotation":  func() *alchemist.Graph { return alchemist.Workloads().Rotation() },
	"bootstrap": func() *alchemist.Graph { return alchemist.AppWorkloads().Bootstrap() },
	"helr":      func() *alchemist.Graph { return alchemist.AppWorkloads().HELR() },
	"lola":      func() *alchemist.Graph { return alchemist.AppWorkloads().LoLaMNIST(false) },
	"lola-enc":  func() *alchemist.Graph { return alchemist.AppWorkloads().LoLaMNIST(true) },
	"pbs1":      func() *alchemist.Graph { return alchemist.Workloads().TFHEPBS(1, 128) },
	"pbs2":      func() *alchemist.Graph { return alchemist.Workloads().TFHEPBS(2, 128) },
	"cross":     func() *alchemist.Graph { return alchemist.AppWorkloads().CrossScheme() },
	"switch":    func() *alchemist.Graph { return alchemist.AppWorkloads().SchemeSwitch(128) },
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		runSweep(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "check" {
		runCheck(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		runBench(os.Args[2:])
		return
	}
	var (
		name     = flag.String("workload", "cmult", "workload name (-workloads to list)")
		design   = flag.String("design", "alchemist", "alchemist or a baseline: F1, BTS, ARK, CraterLake, SHARP, Matcha, Strix")
		units    = flag.Int("units", 128, "computing units (alchemist design only)")
		cores    = flag.Int("cores", 16, "cores per unit")
		listWl   = flag.Bool("workloads", false, "list workloads and exit")
		showOp   = flag.Bool("list", false, "print the op-level schedule")
		timeline = flag.String("timeline", "", "write the op schedule as CSV to this file")
		stats    = flag.Bool("stats", false, "print graph statistics (op histogram, depth)")
	)
	flag.Parse()

	if *listWl {
		names := make([]string, 0, len(workloads))
		for n := range workloads {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	build, ok := workloads[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (use -workloads)\n", *name)
		os.Exit(2)
	}
	g := build()

	if !strings.EqualFold(*design, "alchemist") {
		runBaseline(*design, g)
		return
	}

	cfg := alchemist.DefaultArch()
	cfg.Units = *units
	cfg.CoresPerUnit = *cores
	res, err := alchemist.Simulate(cfg, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ab := alchemist.Area(cfg)
	fmt.Printf("workload   %s (%d ops)\n", g.Name, len(g.Ops))
	fmt.Printf("design     Alchemist: %d units x %d cores, %.1f mm^2\n",
		cfg.Units, cfg.CoresPerUnit, ab.Total)
	fmt.Printf("cycles     %d (%.3f ms @ %.1f GHz)\n", res.Cycles, res.Seconds*1e3, cfg.FreqGHz)
	fmt.Printf("compute    %d cycles   HBM %d cycles (%d MB streamed)\n",
		res.ComputeCycles, res.MemCycles, res.StreamBytes>>20)
	fmt.Printf("util       %.2f overall, %.2f while computing\n",
		res.Utilization, res.ComputeUtilization)
	fmt.Printf("energy     %.1f mJ at %.1f W (model)\n",
		1e3*area.EnergyJoules(cfg, res.Seconds, res.Utilization),
		area.Power(cfg, res.Utilization))
	for _, c := range []trace.Class{trace.ClassNTT, trace.ClassBconv, trace.ClassDecompPolyMult} {
		if res.PerClass[c].OccupancyCycles > 0 {
			fmt.Printf("  %-15s occupancy %9d cycles, task util %.2f\n",
				c, res.PerClass[c].OccupancyCycles, res.ClassUtilization(c))
		}
	}
	lazy, eager := res.MultsTotal()
	if eager > 0 {
		fmt.Printf("mults      %d MetaOP vs %d eager (%.1f%% saved)\n",
			lazy, eager, 100*(1-float64(lazy)/float64(eager)))
	}
	if *stats {
		st := g.Statistics()
		fmt.Printf("\ngraph      %d ops, dependency depth %d, %d MB streamed\n",
			st.Ops, st.MaxDepth, st.StreamBytes>>20)
		for _, k := range trace.Kinds() {
			if st.ByKind[k] > 0 {
				fmt.Printf("  %-15s %6d ops\n", k, st.ByKind[k])
			}
		}
	}
	if *showOp {
		fmt.Println("\nschedule (first 40 ops):")
		for i, ot := range res.Timings {
			if i == 40 {
				fmt.Println("  ...")
				break
			}
			fmt.Printf("  [%6d..%6d] %-14s %s\n", ot.Start, ot.End, ot.Kind, ot.Label)
		}
	}
	if *timeline != "" {
		var b strings.Builder
		b.WriteString("id,kind,label,start,end,occupancy,transpose,stream_done\n")
		for _, ot := range res.Timings {
			fmt.Fprintf(&b, "%d,%s,%q,%d,%d,%d,%d,%d\n",
				ot.ID, ot.Kind, ot.Label, ot.Start, ot.End,
				ot.OccupancyCycles, ot.TransposeCycles, ot.StreamDone)
		}
		if err := os.WriteFile(*timeline, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("timeline   wrote %d rows to %s\n", len(res.Timings), *timeline)
	}
}

func runBaseline(name string, g *alchemist.Graph) {
	for _, b := range alchemist.Baselines() {
		if !strings.EqualFold(b.Name, name) {
			continue
		}
		res, err := alchemist.SimulateBaseline(b, g)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("workload   %s (%d ops)\n", g.Name, len(g.Ops))
		fmt.Printf("design     %s: %.1f mm^2, %.1f GHz, %.0f GB/s\n",
			b.Name, b.AreaMM2, b.FreqGHz, b.HBMBytesPerSec/1e9)
		fmt.Printf("cycles     %d (%.3f ms)\n", res.Cycles, res.Seconds*1e3)
		fmt.Printf("util       NTTU %.2f  BconvU %.2f  EW %.2f  overall %.2f\n",
			res.PoolUtil[0], res.PoolUtil[1], res.PoolUtil[2], res.Overall)
		return
	}
	fmt.Fprintf(os.Stderr, "unknown design %q\n", name)
	os.Exit(2)
}

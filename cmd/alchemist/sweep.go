package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"alchemist/internal/bench"
	"alchemist/internal/engine"
)

// runSweep regenerates the paper's full evaluation through the batch
// engine: every generator fans its simulations onto one worker pool, and
// the memo cache collapses the graphs shared between reports.
//
//	alchemist sweep                 # all reports, text
//	alchemist sweep -workers 4 -csv # CSV, bounded pool
//	alchemist sweep -verify -stats  # serial cross-check + engine counters
func runSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	var (
		workers = fs.Int("workers", runtime.NumCPU(), "evaluation pool size")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned text")
		only    = fs.String("only", "", "comma-separated report IDs (default all)")
		verify  = fs.Bool("verify", false, "re-run serially and require byte-identical output")
		stats   = fs.Bool("stats", false, "print engine statistics after the sweep")
	)
	fs.Parse(args)

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	render := func(reports []*bench.Report) string {
		var b strings.Builder
		for _, r := range reports {
			if len(want) > 0 && !want[r.ID] {
				continue
			}
			if *csv {
				b.WriteString(r.CSV())
			} else {
				b.WriteString(r.String())
			}
			b.WriteByte('\n')
		}
		return b.String()
	}

	eng := engine.New(engine.WithWorkers(*workers))
	defer eng.Close()
	c := bench.NewCtx(context.Background(), eng)
	out := render(c.All())
	fmt.Print(out)

	if *verify {
		serialEng := engine.New(engine.WithWorkers(1))
		sc := bench.NewCtx(context.Background(), serialEng)
		serial := render(sc.AllSerial())
		serialEng.Close()
		if serial != out {
			fmt.Fprintln(os.Stderr, "verify: FAIL — parallel sweep differs from serial reference")
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "verify: parallel output byte-identical to serial")
	}
	if *stats {
		st := eng.Stats()
		fmt.Fprintf(os.Stderr,
			"engine: %d workers, %d jobs (%d cached, hit rate %.0f%%), %d failed, total wall %v\n",
			st.Workers, st.Submitted, st.CacheHits, 100*st.HitRate(), st.Failed, st.TotalWall)
	}
}

// Command fhebench regenerates every table and figure of the paper's
// evaluation section from the models in this repository.
//
// Usage:
//
//	fhebench               # print all reports
//	fhebench -only table7  # one report
//	fhebench -csv out/     # also write one CSV per report
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"alchemist"
)

func main() {
	var (
		only   = flag.String("only", "", "print a single report by id (e.g. table7, fig6a)")
		csvDir = flag.String("csv", "", "directory to write per-report CSV files into")
		list   = flag.Bool("list", false, "list report ids and exit")
	)
	flag.Parse()

	reports := alchemist.Reports()
	if *list {
		for _, r := range reports {
			fmt.Printf("%-16s %s\n", r.ID, r.Title)
		}
		return
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	found := false
	for _, r := range reports {
		if *only != "" && r.ID != *only {
			continue
		}
		found = true
		fmt.Println(r.String())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if *only != "" && !found {
		fmt.Fprintf(os.Stderr, "no report with id %q\n", *only)
		os.Exit(2)
	}
}

// BGV voting: exact arithmetic FHE. Voters encrypt one-hot ballots over
// Z_t; the tally server sums the ciphertexts and applies an encrypted
// weighting — all modulo t with zero error (unlike approximate CKKS). This
// demonstrates the second arithmetic FHE family the paper's unified
// architecture serves (BFV/BGV), running on the same NTT/RNS/Meta-OP
// substrate as CKKS.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"alchemist"
	"alchemist/internal/bgv"
)

const (
	candidates = 4
	voters     = 100
)

func main() {
	fhe, err := alchemist.NewBGV(alchemist.BGVTestParams(), 3)
	if err != nil {
		log.Fatal(err)
	}
	params := fhe.Context.Params
	n := params.N()
	level := params.MaxLevel()
	rng := rand.New(rand.NewSource(4))

	fmt.Printf("BGV: N=%d slots over Z_%d, %d levels\n", n, params.T, level+1)
	fmt.Printf("tallying %d encrypted one-hot ballots for %d candidates...\n\n", voters, candidates)

	// Each ballot: slot c = 1 for the chosen candidate, 0 elsewhere.
	expected := make([]uint64, candidates)
	var tally *bgv.Ciphertext
	for v := 0; v < voters; v++ {
		choice := rng.Intn(candidates)
		expected[choice]++
		ballot := make([]uint64, n)
		ballot[choice] = 1
		pt, err := fhe.Encoder.Encode(ballot, level)
		if err != nil {
			log.Fatal(err)
		}
		ct := fhe.Encryptor.Encrypt(pt, level)
		if tally == nil {
			tally = ct
		} else {
			tally = fhe.Evaluator.Add(tally, ct)
		}
	}

	// Homomorphic weighting: double-weight candidate 0's column (e.g. a
	// 2-point voting rule) — an exact plaintext multiplication.
	weights := make([]uint64, n)
	for c := 0; c < candidates; c++ {
		weights[c] = 1
	}
	weights[0] = 2
	wPt, err := fhe.Encoder.Encode(weights, tally.Level)
	if err != nil {
		log.Fatal(err)
	}
	weighted := fhe.Evaluator.MulPlain(tally, wPt)

	got := fhe.Encoder.Decode(fhe.Decryptor.DecryptPoly(weighted), weighted.Level)
	fmt.Println("candidate  raw votes  weighted (decrypted)")
	allExact := true
	for c := 0; c < candidates; c++ {
		w := expected[c]
		if c == 0 {
			w *= 2
		}
		exact := got[c] == w%params.T
		if !exact {
			allExact = false
		}
		fmt.Printf("    %d        %3d          %3d   exact=%v\n", c, expected[c], got[c], exact)
	}
	if !allExact {
		log.Fatal("BGV tally mismatch")
	}
	fmt.Println("\nBGV arithmetic is exact mod t — no approximation error, by construction.")
	fmt.Println("On the accelerator, BGV lowers to the same NTT/Bconv/DecompPolyMult Meta-OPs as CKKS.")
}

// Cross-scheme FHE: the paper's motivating scenario, live. Arithmetic FHE
// (CKKS) is great at SIMD arithmetic but cannot compare; logic FHE (TFHE)
// evaluates arbitrary boolean functions but is slow at bulk arithmetic. The
// bridge (Chimera/Pegasus-style ciphertext switching, refs [5,6] of the
// paper) moves values between them: this example computes x²-0.25 under
// CKKS, switches the results into TFHE, and tests their sign with
// programmable bootstrapping — no decryption anywhere. It then runs the
// mixed workload on the accelerator models, showing why only the unified
// architecture sustains both operator mixes.
package main

import (
	"fmt"
	"log"

	"alchemist"
	"alchemist/internal/bridge"
	"alchemist/internal/ckks"
	"alchemist/internal/tfhe"
)

func main() {
	// --- Setup: one CKKS instance, one TFHE instance, one bridge ----------
	params, err := ckks.GenParams(9, 3, 2, 2, 45, 42, 45)
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		log.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 71)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := ckks.NewEncoder(ctx)
	et := ckks.NewEncryptor(ctx, pk, 73)
	ev := ckks.NewEvaluator(ctx, kg.GenEvaluationKeySet(sk, nil, false))

	tf, err := tfhe.NewScheme(tfhe.FastTestParams(), 72)
	if err != nil {
		log.Fatal(err)
	}
	br, err := bridge.New(ctx, kg, sk, tf)
	if err != nil {
		log.Fatal(err)
	}

	// --- Arithmetic phase (CKKS): f(x) = x² - 0.25 on packed slots --------
	xs := []float64{0.9, 0.1, -0.8, 0.3, 0.7, -0.2}
	z := make([]complex128, params.Slots())
	for i, x := range xs {
		z[i] = complex(x, 0)
	}
	level := params.MaxLevel()
	pt, _ := enc.Encode(z, level, params.Scale)
	ct := et.Encrypt(pt, level, params.Scale)
	sq, err := ev.MulRelin(ct, ct)
	if err != nil {
		log.Fatal(err)
	}
	sq, err = ev.Rescale(sq)
	if err != nil {
		log.Fatal(err)
	}
	c := make([]complex128, params.Slots())
	for i := range c {
		c[i] = complex(-0.25, 0)
	}
	cpt, _ := enc.Encode(c, sq.Level, sq.Scale)
	fx := ev.AddPlain(sq, cpt)
	fmt.Println("CKKS: computed f(x) = x² - 0.25 on packed slots (1 Cmult + 1 Padd)")

	// --- Scheme switch + logic phase (TFHE): sign(f(x)) -------------------
	lwes, err := br.ToLWE(fx, len(xs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bridge: SlotToCoeff -> LWE extraction -> mod switch -> TFHE key switch")
	fmt.Println("TFHE: one programmable bootstrap per value to binarize the sign:")
	for i, x := range xs {
		signed, err := br.Sign(lwes[i])
		if err != nil {
			log.Fatal(err)
		}
		got := tf.DecryptBool(signed)
		fmt.Printf("  |%+.1f| > 0.5 ?  encrypted verdict: %-5v  (truth: %v)\n",
			x, got, x*x > 0.25)
	}

	// --- The accelerator story --------------------------------------------
	fmt.Println("\nmixed CKKS+TFHE workload on the accelerator models:")
	mix := alchemist.AppWorkloads().CrossScheme()
	res, err := alchemist.Simulate(alchemist.DefaultArch(), mix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Alchemist: %.3f ms, %.2f utilization while computing (unified Meta-OP cores)\n",
		res.Seconds*1e3, res.ComputeUtilization)
	for _, bl := range alchemist.Baselines() {
		if bl.Name != "SHARP" && bl.Name != "Strix" {
			continue
		}
		if _, err := alchemist.SimulateBaseline(bl, mix); err != nil {
			fmt.Printf("  %-9s cannot execute the mixed workload: no Bconv datapath\n", bl.Name)
		} else {
			fmt.Printf("  %-9s executes the mix at low utilization (see fhebench -only fig1)\n", bl.Name)
		}
	}
	fmt.Println("\nonly the unified architecture sustains both operator mixes — the paper's core claim")
}

// FHE program builder: describe a deep encrypted computation at the
// ciphertext level and let the compiler lower it to the accelerator's
// operator graph — with automatic level tracking and bootstrap insertion
// when the modulus chain runs out. This is the software stack a real
// deployment would put above Alchemist.
package main

import (
	"fmt"
	"log"
	"sort"

	"alchemist"
	"alchemist/internal/area"
	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

func main() {
	shape := workload.AppShape()
	p := workload.NewProgram("encrypted-analytics", shape)
	p.EnableAutoBootstrap(workload.DefaultBootstrapConfig(), 26)

	// An encrypted analytics kernel: degree-8 polynomial feature, inner
	// product with encrypted weights, then a deep iterative refinement that
	// exhausts the modulus chain and forces bootstrapping.
	x := p.Input("features")
	w := p.Input("weights")
	poly := x
	for i := 0; i < 3; i++ { // x^(2^3)
		poly = p.Mul(poly, poly)
	}
	dot := p.Mul(poly, w)
	acc := p.InnerSum(dot, 256)
	for i := 0; i < 16; i++ { // deep refinement loop → auto-bootstraps
		acc = p.Mul(acc, dot)
	}
	g, err := p.Graph()
	if err != nil {
		log.Fatal(err)
	}

	stats := g.Statistics()
	fmt.Printf("program    %s compiled to %d ops (dependency depth %d)\n",
		g.Name, stats.Ops, stats.MaxDepth)
	kinds := make([]trace.Kind, 0, len(stats.ByKind))
	for k := range stats.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-15s %5d ops\n", k, stats.ByKind[k])
	}
	boots := 0
	for _, op := range g.Ops {
		if op.Label == "modraise" {
			boots++
		}
	}
	fmt.Printf("  auto-inserted bootstraps: %d\n\n", boots)

	cfg := alchemist.DefaultArch()
	res, err := alchemist.Simulate(cfg, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Alchemist  %.3f ms (%d cycles), utilization %.2f while computing\n",
		res.Seconds*1e3, res.Cycles, res.ComputeUtilization)
	fmt.Printf("           %d MB of keys/inputs streamed, %.0f mJ (model)\n",
		res.StreamBytes>>20, 1e3*area.EnergyJoules(cfg, res.Seconds, res.Utilization))
	lazy, eager := res.MultsTotal()
	fmt.Printf("           Meta-OP lazy reduction saved %.1f%% of multiplications\n",
		100*(1-float64(lazy)/float64(eager)))
}

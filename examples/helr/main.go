// HELR: homomorphic logistic-regression training in the HELR style. A batch
// of synthetic samples is packed into CKKS slots; one gradient-descent step
// (inner product, polynomial sigmoid, gradient, weight update) runs entirely
// under encryption and is checked against the plaintext computation. The
// accelerator model then reproduces the paper's HELR-1024 benchmark point.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"alchemist"
)

const (
	features = 8
	batch    = 16 // batch*features slots used
	lr       = 0.5
)

func main() {
	params := alchemist.CKKSTestParams()
	slots := params.Slots()
	rng := rand.New(rand.NewSource(5))

	// Synthetic dataset: y = sign(w*.x), labels in {-1, +1}, packed as
	// slot[s*features + j] = y_s * x_s[j] (the standard HELR packing).
	wTrue := make([]float64, features)
	for j := range wTrue {
		wTrue[j] = rng.Float64()*2 - 1
	}
	packed := make([]complex128, slots)
	xs := make([][]float64, batch)
	ys := make([]float64, batch)
	for s := 0; s < batch; s++ {
		xs[s] = make([]float64, features)
		dot := 0.0
		for j := range xs[s] {
			xs[s][j] = rng.Float64()*2 - 1
			dot += wTrue[j] * xs[s][j]
		}
		ys[s] = 1
		if dot < 0 {
			ys[s] = -1
		}
		for j := range xs[s] {
			packed[s*features+j] = complex(ys[s]*xs[s][j]/float64(features), 0)
		}
	}

	// Rotation keys: the batch fold needs rotations by step·features for
	// step = batch/2, batch/4, …, 1.
	var rots []int
	for step := batch / 2; step >= 1; step >>= 1 {
		rots = append(rots, step*features)
	}
	fhe, err := alchemist.NewCKKS(params, rots, 31)
	if err != nil {
		log.Fatal(err)
	}
	level := params.MaxLevel()
	ptZ, err := fhe.Encoder.Encode(packed, level, params.Scale)
	if err != nil {
		log.Fatal(err)
	}
	ctZ := fhe.Encryptor.Encrypt(ptZ, level, params.Scale)

	// One gradient step from w = 0: grad = -(1/batch) Σ σ'(0)·y_s·x_s with
	// the degree-3 sigmoid approximation σ(t) ≈ 0.5 + 0.15t (at w=0 the
	// higher terms vanish, keeping this example one level deep while still
	// exercising Pmult/rotation/Hadd exactly as HELR does).
	// grad_j ∝ Σ_s y_s·x_s[j]: fold the batch dimension with rotations.
	acc := fhe.Context.CopyCt(ctZ)
	for step := batch / 2; step >= 1; step >>= 1 {
		// Rotating by step·features folds sample blocks onto each other.
		rot, err := fhe.Evaluator.Rotate(acc, step*features)
		if err != nil {
			log.Fatal(err)
		}
		acc, err = fhe.Evaluator.Add(acc, rot)
		if err != nil {
			log.Fatal(err)
		}
	}
	got := fhe.Encoder.Decode(fhe.Decryptor.DecryptPoly(acc), acc.Level, acc.Scale)

	fmt.Println("one encrypted HELR gradient fold (batch summed under encryption):")
	maxErr := 0.0
	for j := 0; j < features; j++ {
		want := 0.0
		for s := 0; s < batch; s++ {
			want += ys[s] * xs[s][j] / features
		}
		diff := math.Abs(real(got[j]) - want)
		if diff > maxErr {
			maxErr = diff
		}
		if j < 4 {
			fmt.Printf("  grad[%d]: encrypted %+.5f  plaintext %+.5f\n", j, real(got[j]), want)
		}
	}
	fmt.Printf("  max error %.2e; weight update w -= %.1f*grad happens client- or server-side\n\n", maxErr, lr)

	// Accelerator model: the paper's HELR-1024 block (5 iterations + 1
	// bootstrap).
	g := alchemist.AppWorkloads().HELR()
	res, err := alchemist.Simulate(alchemist.DefaultArch(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Alchemist model, HELR-1024: %.3f ms per bootstrapped block (%.3f ms/iteration)\n",
		res.Seconds*1e3, res.Seconds*1e3/5)
	fmt.Printf("paper: 2.07x faster than SHARP on HELR; model reproduces ~2.1x (see fhebench -only fig6a)\n")
}

// LoLa-MNIST: privacy-preserving inference in the LoLa style — a small
// dense network evaluated under CKKS on one packed ciphertext. The weights
// are synthetic (the paper's cycle counts depend on the workload shape, not
// the values); the live run demonstrates end-to-end correctness against the
// plaintext network, and the accelerator model reproduces the paper's
// Figure 6(a) LoLa rows (encrypted-weight inference ≈ 0.11 ms, >3× over F1).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"alchemist"
	"alchemist/internal/ckks"
)

const (
	inDim     = 16
	hiddenDim = 8
	outDim    = 4
)

func main() {
	params := alchemist.CKKSTestParams()
	slots := params.Slots()
	rng := rand.New(rand.NewSource(7))

	// Synthetic "image" and weights.
	x := make([]complex128, slots)
	for i := 0; i < inDim; i++ {
		x[i] = complex(rng.Float64(), 0)
	}
	w1 := randomMatrix(rng, hiddenDim, inDim)
	w2 := randomMatrix(rng, outDim, hiddenDim)

	lt1, err := ckks.NewLinearTransformFromMatrix(w1, slots)
	if err != nil {
		log.Fatal(err)
	}
	lt2, err := ckks.NewLinearTransformFromMatrix(w2, slots)
	if err != nil {
		log.Fatal(err)
	}
	rotations := append(lt1.Rotations(), lt2.Rotations()...)

	fhe, err := alchemist.NewCKKS(params, rotations, 99)
	if err != nil {
		log.Fatal(err)
	}
	level := params.MaxLevel()
	pt, err := fhe.Encoder.Encode(x, level, params.Scale)
	if err != nil {
		log.Fatal(err)
	}
	ct := fhe.Encryptor.Encrypt(pt, level, params.Scale)

	// layer 1 → square activation → layer 2.
	h, err := fhe.Evaluator.EvalLinearTransform(ct, lt1, fhe.Encoder)
	if err != nil {
		log.Fatal(err)
	}
	hs, err := fhe.Evaluator.MulRelin(h, h)
	if err != nil {
		log.Fatal(err)
	}
	hs, err = fhe.Evaluator.Rescale(hs)
	if err != nil {
		log.Fatal(err)
	}
	out, err := fhe.Evaluator.EvalLinearTransform(hs, lt2, fhe.Encoder)
	if err != nil {
		log.Fatal(err)
	}
	got := fhe.Encoder.Decode(fhe.Decryptor.DecryptPoly(out), out.Level, out.Scale)

	// Plaintext reference.
	want := matVec(w2, square(matVec1(w1, x[:inDim])))
	fmt.Println("encrypted inference (dense -> square -> dense), synthetic MNIST-shaped net:")
	argGot, argWant := 0, 0
	for i := 0; i < outDim; i++ {
		fmt.Printf("  logit[%d]  encrypted %+.5f   plaintext %+.5f\n", i, real(got[i]), real(want[i]))
		if real(got[i]) > real(got[argGot]) {
			argGot = i
		}
		if real(want[i]) > real(want[argWant]) {
			argWant = i
		}
	}
	fmt.Printf("  predicted class: encrypted=%d plaintext=%d\n\n", argGot, argWant)

	// Accelerator model: the paper's LoLa-MNIST benchmark shapes.
	for _, enc := range []bool{false, true} {
		g := alchemist.AppWorkloads().LoLaMNIST(enc)
		res, err := alchemist.Simulate(alchemist.DefaultArch(), g)
		if err != nil {
			log.Fatal(err)
		}
		kind := "plaintext weights"
		note := "(paper: >3x over F1)"
		if enc {
			kind = "encrypted weights "
			note = "(paper: 0.11 ms)"
		}
		fmt.Printf("Alchemist model, %s: %.4f ms %s\n", kind, res.Seconds*1e3, note)
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) [][]complex128 {
	m := make([][]complex128, rows)
	for i := range m {
		m[i] = make([]complex128, cols)
		for j := range m[i] {
			m[i][j] = complex(rng.Float64()*2-1, 0)
		}
	}
	return m
}

func matVec1(m [][]complex128, x []complex128) []complex128 {
	out := make([]complex128, len(m))
	for i := range m {
		for j := range m[i] {
			out[i] += m[i][j] * x[j]
		}
	}
	return out
}

func matVec(m [][]complex128, x []complex128) []complex128 { return matVec1(m, x) }

func square(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] * x[i]
	}
	return out
}

// Quickstart: encrypt a vector with CKKS, compute (x⊙y + y) homomorphically,
// decrypt and check — then compile the same ciphertext multiplication onto
// the Alchemist accelerator model and print its cycle-level profile.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"alchemist"
)

func main() {
	// --- Part 1: live CKKS on the CPU ------------------------------------
	params := alchemist.CKKSTestParams()
	fhe, err := alchemist.NewCKKS(params, nil, 2024)
	if err != nil {
		log.Fatal(err)
	}
	slots := params.Slots()
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, slots)
	y := make([]complex128, slots)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, 0)
		y[i] = complex(rng.Float64()*2-1, 0)
	}

	level := params.MaxLevel()
	ptX, err := fhe.Encoder.Encode(x, level, params.Scale)
	if err != nil {
		log.Fatal(err)
	}
	ptY, err := fhe.Encoder.Encode(y, level, params.Scale)
	if err != nil {
		log.Fatal(err)
	}
	ctX := fhe.Encryptor.Encrypt(ptX, level, params.Scale)
	ctY := fhe.Encryptor.Encrypt(ptY, level, params.Scale)

	prod, err := fhe.Evaluator.MulRelin(ctX, ctY)
	if err != nil {
		log.Fatal(err)
	}
	prod, err = fhe.Evaluator.Rescale(prod)
	if err != nil {
		log.Fatal(err)
	}
	// x*y + y: align y to prod's scale via a plaintext add of its encoding.
	ptY2, err := fhe.Encoder.Encode(y, prod.Level, prod.Scale)
	if err != nil {
		log.Fatal(err)
	}
	res := fhe.Evaluator.AddPlain(prod, ptY2)

	got := fhe.Encoder.Decode(fhe.Decryptor.DecryptPoly(res), res.Level, res.Scale)
	var maxErr float64
	for i := range x {
		want := x[i]*y[i] + y[i]
		if d := real(got[i] - want); d > maxErr {
			maxErr = d
		} else if -d > maxErr {
			maxErr = -d
		}
	}
	fmt.Printf("live CKKS  N=2^%d, %d slots, depth used 1\n", params.LogN, slots)
	fmt.Printf("           computed x*y + y under encryption, max error %.2e\n\n", maxErr)

	// --- Part 2: the same Cmult on the Alchemist accelerator model -------
	cfg := alchemist.DefaultArch()
	g := alchemist.Workloads().Cmult()
	sim, err := alchemist.Simulate(cfg, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Alchemist  %s: %d ops lowered to Meta-OPs\n", g.Name, len(g.Ops))
	fmt.Printf("           %d cycles = %.1f us at %.0f GHz (paper Table 7: ~140k cycles)\n",
		sim.Cycles, sim.Seconds*1e6, cfg.FreqGHz)
	fmt.Printf("           utilization %.2f while computing, %d MB of evk streamed\n",
		sim.ComputeUtilization, sim.StreamBytes>>20)
	lazy, eager := sim.MultsTotal()
	fmt.Printf("           Meta-OP lazy reduction saved %.1f%% of multiplications\n",
		100*(1-float64(lazy)/float64(eager)))
}

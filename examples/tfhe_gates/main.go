// TFHE gates: build an encrypted 4-bit ripple-carry adder from bootstrapped
// boolean gates (every gate refreshes noise with a programmable bootstrap),
// then show the accelerator model's PBS throughput against the paper's
// Figure 6(b).
package main

import (
	"fmt"
	"log"
	"time"

	"alchemist"
	"alchemist/internal/tfhe"
)

func main() {
	fmt.Println("generating TFHE keys (bootstrapping + key-switch)...")
	start := time.Now()
	s, err := alchemist.NewTFHE(alchemist.TFHEFastParams(), 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keygen took %v\n\n", time.Since(start).Round(time.Millisecond))

	a, b := 11, 6 // 1011 + 0110 = 10001
	fmt.Printf("encrypting %d and %d bitwise, adding under encryption:\n", a, b)
	adder := tfhe.AdderCircuit(4)
	gates, _ := adder.Gates()
	inputs := append(encryptBits(s, a, 4), encryptBits(s, b, 4)...)

	start = time.Now()
	sum, err := adder.Evaluate(s, inputs, 1)
	if err != nil {
		log.Fatal(err)
	}
	sequential := time.Since(start)

	start = time.Now()
	if _, err := adder.Evaluate(s, inputs, 4); err != nil {
		log.Fatal(err)
	}
	parallel := time.Since(start)

	got := decryptBits(s, sum)
	fmt.Printf("  %d + %d = %d (expected %d)\n", a, b, got, a+b)
	fmt.Printf("  %d bootstrapped gates: %v sequential, %v with 4 workers\n\n",
		gates, sequential.Round(time.Millisecond), parallel.Round(time.Millisecond))

	// Accelerator model: PBS throughput (Figure 6b).
	for _, set := range []alchemist.PBSSet{alchemist.PBSSet1, alchemist.PBSSet2} {
		g := alchemist.Workloads().TFHEPBS(set, 128)
		res, err := alchemist.Simulate(alchemist.DefaultArch(), g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Alchemist model, PBS set %d: %.0f PBS/s (batch of 128, util %.2f)\n",
			set, 128/res.Seconds, res.ComputeUtilization)
	}
	fmt.Println("paper: ~1600x over Concrete (CPU), ~105x over NuFHE (GPU), 7x over TFHE ASICs")
}

func encryptBits(s *tfhe.Scheme, v, n int) []*tfhe.LweSample {
	out := make([]*tfhe.LweSample, n)
	for i := 0; i < n; i++ {
		out[i] = s.EncryptBool(v>>i&1 == 1)
	}
	return out
}

func decryptBits(s *tfhe.Scheme, bits []*tfhe.LweSample) int {
	v := 0
	for i, c := range bits {
		if s.DecryptBool(c) {
			v |= 1 << i
		}
	}
	return v
}

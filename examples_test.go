package alchemist

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesRunEndToEnd executes every example main with `go run`,
// asserting clean exits — the examples are the library's integration tests
// against the public API.
func TestExamplesRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take ~20s of real FHE; skipped with -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 7 {
		t.Fatalf("expected at least 7 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			ctxPath := filepath.Join("examples", name)
			cmd := exec.Command("go", "run", "./"+ctxPath)
			cmd.Env = os.Environ()
			start := time.Now()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed after %v: %v\n%s",
					name, time.Since(start), err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s printed nothing", name)
			}
		})
	}
}

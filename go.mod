module alchemist

go 1.22

// Package arch describes the Alchemist accelerator configuration (§5): 128
// computing units of 16 unified Meta-OP cores each, slot-based data
// partitioning across private scratchpads, a transpose register file
// connecting the units for the 4-step NTT, 2 MB of shared memory and two
// HBM2 stacks.
package arch

import "fmt"

// Paper design-point constants (§5, Table 5). These are the single source of
// truth for the architecture's shape: re-hardcoding the raw numbers outside
// this package (or internal/area) trips alchemist-vet's
// arch-constant-provenance rule. Derive from Default() or reference these
// names instead.
const (
	// PaperUnits is the number of computing units in the paper design.
	PaperUnits = 128
	// PaperCoresPerUnit is the number of unified Meta-OP cores per unit.
	PaperCoresPerUnit = 16
	// PaperLanes is the Meta-OP lane width j in (M8A8)_nR8.
	PaperLanes = 8
)

// Config is an Alchemist instance. Default() reproduces the paper's design
// point; the ablation benches sweep the fields.
type Config struct {
	Units        int // computing units (128)
	CoresPerUnit int // Meta-OP cores per unit (16)
	Lanes        int // Meta-OP lane width j (8)

	FreqGHz float64 // core clock (1 GHz)

	LocalScratchpadBytes int64 // per-unit scratchpad (512 KB)
	SharedMemoryBytes    int64 // shared memory (2 MB)

	HBMBytesPerSec float64 // off-chip bandwidth (1 TB/s)
	WordBits       int     // RNS word size (36, following SHARP)

	// TransposeLanesPerCycle is how many elements per cycle the transpose
	// register file moves between units during 4-step NTT phases.
	TransposeLanesPerCycle int
}

// Default returns the paper's design point.
func Default() Config {
	return Config{
		Units:                  PaperUnits,
		CoresPerUnit:           PaperCoresPerUnit,
		Lanes:                  PaperLanes,
		FreqGHz:                1.0,
		LocalScratchpadBytes:   512 << 10,
		SharedMemoryBytes:      2 << 20,
		HBMBytesPerSec:         1e12,
		WordBits:               36,
		TransposeLanesPerCycle: 4096,
	}
}

// Validate checks structural sanity.
func (c Config) Validate() error {
	if c.Units <= 0 || c.CoresPerUnit <= 0 || c.Lanes <= 0 {
		return fmt.Errorf("arch: non-positive compute dimensions")
	}
	if c.Lanes&(c.Lanes-1) != 0 {
		return fmt.Errorf("arch: lane width %d must be a power of two", c.Lanes)
	}
	if c.FreqGHz <= 0 || c.HBMBytesPerSec <= 0 {
		return fmt.Errorf("arch: non-positive frequency or bandwidth")
	}
	if c.WordBits < 8 || c.WordBits > 64 {
		return fmt.Errorf("arch: word size %d out of range", c.WordBits)
	}
	return nil
}

// Cores returns the total core count (Units × CoresPerUnit).
func (c Config) Cores() int { return c.Units * c.CoresPerUnit }

// TotalLanes returns the total multiply lanes (Cores × Lanes).
func (c Config) TotalLanes() int { return c.Cores() * c.Lanes }

// HBMBytesPerCycle returns the streaming bandwidth per core cycle.
func (c Config) HBMBytesPerCycle() float64 {
	return c.HBMBytesPerSec / (c.FreqGHz * 1e9)
}

// TotalScratchpadBytes returns the aggregate scratchpad capacity
// (the paper's "64 + 2 MB").
func (c Config) TotalScratchpadBytes() int64 {
	return int64(c.Units)*c.LocalScratchpadBytes + c.SharedMemoryBytes
}

// WordBytes returns the effective bytes per RNS word (36 bits → 4.5 B).
func (c Config) WordBytes() float64 { return float64(c.WordBits) / 8 }

// SlotsPerUnit returns how many coefficients of a degree-n polynomial each
// unit's scratchpad holds under the slot-based partitioning of Fig. 5(b).
func (c Config) SlotsPerUnit(n int) int {
	s := n / c.Units
	if s == 0 {
		s = 1
	}
	return s
}

// UnitOfSlot returns which unit owns slot j of a degree-n polynomial.
func (c Config) UnitOfSlot(n, j int) int {
	per := c.SlotsPerUnit(n)
	u := j / per
	if u >= c.Units {
		u = c.Units - 1
	}
	return u
}

// FourStepTile returns the (n1, n2) tiling the scheduler uses for a
// degree-n NTT: each unit transforms its local n1 = n/Units slice (e.g.
// 128-point sub-NTTs for N = 16384), with a transpose between the two
// passes. For rings smaller than the unit count the whole transform is
// local to one unit.
func (c Config) FourStepTile(n int) (n1, n2 int) {
	if n <= c.Units {
		return n, 1
	}
	return n / c.Units, c.Units
}

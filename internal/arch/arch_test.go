package arch

import "testing"

func TestDefaultMatchesPaper(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Cores() != 2048 {
		t.Errorf("cores %d, want 2048 (128 units x 16)", c.Cores())
	}
	if c.TotalLanes() != 16384 {
		t.Errorf("lanes %d, want 16384", c.TotalLanes())
	}
	if got := c.TotalScratchpadBytes(); got != 66<<20 {
		t.Errorf("scratchpad %d, want 66 MB (64+2)", got)
	}
	if c.HBMBytesPerCycle() != 1000 {
		t.Errorf("HBM %v B/cycle, want 1000 (1 TB/s at 1 GHz)", c.HBMBytesPerCycle())
	}
	if c.WordBytes() != 4.5 {
		t.Errorf("word bytes %v, want 4.5 (36-bit)", c.WordBytes())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Units = 0 },
		func(c *Config) { c.CoresPerUnit = -1 },
		func(c *Config) { c.Lanes = 6 }, // not a power of two
		func(c *Config) { c.FreqGHz = 0 },
		func(c *Config) { c.HBMBytesPerSec = -1 },
		func(c *Config) { c.WordBits = 4 },
		func(c *Config) { c.WordBits = 128 },
	}
	for i, mutate := range bad {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSlotPartitioning(t *testing.T) {
	c := Default()
	// Fig. 5(b): N=16384 → 128 slots per unit, slots 0..127 on unit 0.
	if got := c.SlotsPerUnit(16384); got != 128 {
		t.Fatalf("slots/unit %d, want 128", got)
	}
	if c.UnitOfSlot(16384, 0) != 0 || c.UnitOfSlot(16384, 127) != 0 {
		t.Fatal("slots 0-127 must live on unit 0")
	}
	if c.UnitOfSlot(16384, 128) != 1 {
		t.Fatal("slot 128 must live on unit 1")
	}
	if c.UnitOfSlot(16384, 16383) != 127 {
		t.Fatal("last slot must live on unit 127")
	}
	// Small rings: everything on few units, no division by zero.
	if c.SlotsPerUnit(64) != 1 {
		t.Fatal("tiny ring slots/unit")
	}
	if u := c.UnitOfSlot(64, 63); u != 63 {
		t.Fatalf("tiny ring slot placement: %d", u)
	}
}

func TestFourStepTile(t *testing.T) {
	c := Default()
	n1, n2 := c.FourStepTile(16384)
	if n1 != 128 || n2 != 128 {
		t.Fatalf("N=16384 tile (%d,%d), want (128,128)", n1, n2)
	}
	n1, n2 = c.FourStepTile(65536)
	if n1 != 512 || n2 != 128 {
		t.Fatalf("N=65536 tile (%d,%d), want (512,128)", n1, n2)
	}
	// TFHE-sized rings stay local.
	n1, n2 = c.FourStepTile(64)
	if n1 != 64 || n2 != 1 {
		t.Fatalf("N=64 tile (%d,%d), want (64,1)", n1, n2)
	}
}

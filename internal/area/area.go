// Package area models silicon area and power for Alchemist configurations,
// reproducing the paper's Table 5 breakdown (14 nm, Design Compiler +
// CACTI) at the default design point and scaling analytically for the
// ablation sweeps and performance-per-area comparisons.
package area

import "alchemist/internal/arch"

// Published 14 nm component constants (Table 5).
const (
	CoreMM2         = 0.043  // one Meta-OP core (8 mult + 8 add lanes + regs)
	LocalSRAMMM2    = 0.427  // 512 KB local scratchpad
	UnitOverheadMM2 = 0.003  // computing-unit glue (1.118 - 16·0.043 - 0.427)
	TransposeRFMM2  = 6.380  // transpose register file at 128 units
	SharedSRAMMM2   = 1.801  // 2 MB shared memory
	MemInterfaceMM2 = 29.801 // 2× HBM2 PHYs
	TotalPowerWatts = 77.9
	SRAMMM2PerMB    = LocalSRAMMM2 / 0.5 // CACTI-style density ≈0.854 mm²/MB
	HBMPHYPerTBs    = MemInterfaceMM2    // PHY area per 1 TB/s (2 stacks)
)

// Breakdown is a Table 5-style area report.
type Breakdown struct {
	CoreCluster   float64 // all cores of one unit
	LocalSRAM     float64 // one local scratchpad
	ComputingUnit float64 // cluster + scratchpad + glue
	AllUnits      float64
	TransposeRF   float64
	SharedMemory  float64
	MemInterface  float64
	Total         float64
}

// Estimate returns the area breakdown for a configuration. At
// arch.Default() it reproduces the published numbers exactly (±0.1%); other
// configurations scale linearly in cores, SRAM capacity, transpose width and
// bandwidth.
func Estimate(cfg arch.Config) Breakdown {
	laneScale := float64(cfg.Lanes) / 8 // core area tracks lane width
	coreCluster := float64(cfg.CoresPerUnit) * CoreMM2 * laneScale
	localSRAM := float64(cfg.LocalScratchpadBytes) / (1 << 20) * SRAMMM2PerMB
	unit := coreCluster + localSRAM + UnitOverheadMM2
	all := float64(cfg.Units) * unit
	transpose := TransposeRFMM2 * float64(cfg.Units) / 128 * laneScale
	shared := float64(cfg.SharedMemoryBytes) / (1 << 20) * SharedSRAMMM2 / 2
	mem := HBMPHYPerTBs * cfg.HBMBytesPerSec / 1e12
	return Breakdown{
		CoreCluster:   coreCluster,
		LocalSRAM:     localSRAM,
		ComputingUnit: unit,
		AllUnits:      all,
		TransposeRF:   transpose,
		SharedMemory:  shared,
		MemInterface:  mem,
		Total:         all + transpose + shared + mem,
	}
}

// PerfPerArea returns a throughput-per-mm² figure of merit (1/seconds/mm²).
func PerfPerArea(seconds, areaMM2 float64) float64 {
	if seconds <= 0 || areaMM2 <= 0 {
		return 0
	}
	return 1 / seconds / areaMM2
}

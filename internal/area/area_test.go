package area

import (
	"math"
	"testing"

	"alchemist/internal/arch"
)

func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func TestTable5Reproduction(t *testing.T) {
	b := Estimate(arch.Default())
	// Table 5 published values.
	if !within(b.CoreCluster, 16*0.043, 0.001) {
		t.Errorf("core cluster %.3f, want %.3f", b.CoreCluster, 16*0.043)
	}
	if !within(b.LocalSRAM, 0.427, 0.001) {
		t.Errorf("local SRAM %.3f, want 0.427", b.LocalSRAM)
	}
	if !within(b.ComputingUnit, 1.118, 0.01) {
		t.Errorf("computing unit %.3f, want 1.118", b.ComputingUnit)
	}
	if !within(b.AllUnits, 143.104, 0.01) {
		t.Errorf("128 units %.3f, want 143.104", b.AllUnits)
	}
	if !within(b.TransposeRF, 6.380, 0.001) {
		t.Errorf("transpose RF %.3f, want 6.380", b.TransposeRF)
	}
	if !within(b.SharedMemory, 1.801, 0.001) {
		t.Errorf("shared memory %.3f, want 1.801", b.SharedMemory)
	}
	if !within(b.MemInterface, 29.801, 0.001) {
		t.Errorf("mem interface %.3f, want 29.801", b.MemInterface)
	}
	if !within(b.Total, 181.086, 0.01) {
		t.Errorf("total %.3f, want 181.086", b.Total)
	}
}

func TestAreaScalesWithConfig(t *testing.T) {
	base := Estimate(arch.Default())
	half := arch.Default()
	half.Units = 64
	hb := Estimate(half)
	if hb.Total >= base.Total {
		t.Error("fewer units must shrink the die")
	}
	if !within(hb.AllUnits, base.AllUnits/2, 0.001) {
		t.Errorf("unit area should halve: %.3f vs %.3f", hb.AllUnits, base.AllUnits/2)
	}
	wide := arch.Default()
	wide.Lanes = 16
	wb := Estimate(wide)
	if wb.Total <= base.Total {
		t.Error("wider lanes must grow the die")
	}
}

func TestPowerModel(t *testing.T) {
	cfg := arch.Default()
	// The paper's 77.9 W average at representative (0.86) utilization.
	if p := Power(cfg, 0.86); !within(p, 77.9, 0.001) {
		t.Errorf("power at 0.86 util = %.1f W, want 77.9", p)
	}
	if Power(cfg, 0) < StaticWatts*0.99 {
		t.Error("idle power below the static floor")
	}
	if Power(cfg, 1.0) <= Power(cfg, 0.5) {
		t.Error("power must grow with utilization")
	}
	// Clamping.
	if Power(cfg, -1) != Power(cfg, 0) || Power(cfg, 2) != Power(cfg, 1) {
		t.Error("utilization clamping broken")
	}
	// Energy: 1 ms at 77.9 W ≈ 77.9 mJ.
	if e := EnergyJoules(cfg, 1e-3, 0.86); !within(e, 0.0779, 0.001) {
		t.Errorf("energy %.5f J, want 0.0779", e)
	}
	// Smaller configs draw less.
	small := cfg
	small.Units = 64
	if Power(small, 0.86) >= Power(cfg, 0.86) {
		t.Error("half the units should draw less power")
	}
}

func TestPerfPerArea(t *testing.T) {
	if PerfPerArea(0, 100) != 0 || PerfPerArea(1, 0) != 0 {
		t.Error("degenerate inputs must return 0")
	}
	a := PerfPerArea(0.001, 181)
	b := PerfPerArea(0.002, 181)
	if a <= b {
		t.Error("faster must mean more perf/area")
	}
}

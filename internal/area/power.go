package area

import "alchemist/internal/arch"

// Power model: the paper reports 77.9 W average for the default design
// point. We split that into a static floor (leakage + clocks + PHY) and a
// dynamic part proportional to mult-lane activity, calibrated so a fully
// representative workload (utilization ≈ 0.86) draws the published average.

const (
	// StaticWatts is the activity-independent floor at the default design
	// point (SRAM leakage, clock tree, HBM PHYs).
	StaticWatts = 25.0
	// dynamicWattsAtFull is the dynamic power with every mult lane busy at
	// the default design point, calibrated so 0.86 utilization gives 77.9 W:
	// 25 + 0.86·x = 77.9 → x ≈ 61.5.
	dynamicWattsAtFull = (77.9 - StaticWatts) / 0.86
)

// Power returns the estimated draw (watts) of a configuration running at
// the given mult-lane utilization. Static power scales with area, dynamic
// power with active lanes.
func Power(cfg arch.Config, utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	} else if utilization > 1 {
		utilization = 1
	}
	ref := Estimate(arch.Default()).Total
	scale := Estimate(cfg).Total / ref
	laneScale := float64(cfg.TotalLanes()) / float64(arch.Default().TotalLanes())
	return StaticWatts*scale + dynamicWattsAtFull*utilization*laneScale
}

// EnergyJoules returns the energy of a run: seconds at the utilization-
// dependent power.
func EnergyJoules(cfg arch.Config, seconds, utilization float64) float64 {
	return Power(cfg, utilization) * seconds
}

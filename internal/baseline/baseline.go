// Package baseline models the modularized FHE accelerators the paper
// compares against (F1, BTS, ARK, CraterLake, SHARP for arithmetic FHE;
// Matcha, Strix for logic FHE) and carries the published reference numbers
// used in Tables 6–7 and Figure 6.
//
// The structural difference from Alchemist: a modular design owns separate
// FU pools (NTT units, base-conversion units, element-wise engines), so when
// a workload's operator mix departs from the pool ratio, whole pools idle —
// the utilization-mismatch mechanism of Figures 1 and 7(b). Each pool is
// modelled as a number of modmul-equivalent lanes; the same trace graphs the
// Alchemist simulator consumes are list-scheduled over the pools and the
// shared HBM stream.
package baseline

import (
	"fmt"
	"math"

	"alchemist/internal/errs"
	"alchemist/internal/trace"
)

// Pool identifies an FU class in a modular design.
type Pool int

const (
	PoolNTT Pool = iota
	PoolBconv
	PoolEW
	numPools
)

func (p Pool) String() string {
	switch p {
	case PoolNTT:
		return "NTTU"
	case PoolBconv:
		return "BconvU"
	case PoolEW:
		return "EW"
	default:
		return fmt.Sprintf("Pool(%d)", int(p))
	}
}

// Config describes a modular accelerator.
type Config struct {
	Name       string
	Arithmetic bool // supports CKKS-class workloads
	Logic      bool // supports TFHE-class workloads

	FreqGHz        float64
	HBMBytesPerSec float64
	OnChipMB       float64
	AreaMM2        float64 // 14nm-scaled die area

	// Lanes per pool, in modmul-equivalents per cycle.
	Lanes [numPools]int
}

// TotalLanes sums the pools.
func (c Config) TotalLanes() int {
	t := 0
	for _, l := range c.Lanes {
		t += l
	}
	return t
}

// PoolOf maps an operator kind to the FU pool that executes it in a modular
// design.
func PoolOf(k trace.Kind) Pool {
	switch k {
	case trace.KindNTT, trace.KindINTT:
		return PoolNTT
	case trace.KindBconv:
		return PoolBconv
	default:
		return PoolEW
	}
}

// OpWork returns the op's demand in modmul-equivalent lane-cycles for a
// modular (eager-reduction) design.
func OpWork(op *trace.Op) float64 {
	n := float64(op.N)
	ch := float64(op.Channels) * float64(op.Polys)
	switch op.Kind {
	case trace.KindNTT, trace.KindINTT:
		return n / 2 * math.Log2(n) * ch
	case trace.KindBconv:
		// per-source scaling plus the src×dst accumulation.
		return (float64(op.SrcChannels) + float64(op.SrcChannels)*float64(op.Channels)) *
			n * float64(op.Polys)
	case trace.KindDecompPolyMult:
		return float64(op.Dnum) * n * ch
	case trace.KindEWMult, trace.KindEWMulSub:
		return n * ch
	case trace.KindEWAdd:
		return n * ch / 2 // adders are cheap relative to modmul lanes
	case trace.KindAutomorphism:
		return n * ch / 4 // permutation network pass
	default:
		return 0
	}
}

// Result is a baseline simulation outcome.
type Result struct {
	Name    string
	Cycles  int64
	Seconds float64

	PoolBusy [numPools]float64 // busy lane-cycles per pool
	PoolUtil [numPools]float64 // busy fraction over the makespan
	Overall  float64           // lane-weighted mean utilization

	ComputeCycles int64
	MemCycles     int64
	MemBound      bool
}

// Simulate list-schedules the graph over the design's FU pools and HBM
// stream (same streaming semantics as the Alchemist model: in-order,
// double-buffered, op start gated on its stream). A design missing the FU
// pool an op needs wraps errs.ErrBadConfig; graph failures carry the trace
// package's classification.
func Simulate(cfg Config, g *trace.Graph) (Result, error) {
	if err := g.Validate(); err != nil {
		return Result{}, fmt.Errorf("baseline %s: %w", cfg.Name, err)
	}
	res := Result{Name: cfg.Name}
	bytesPerCycle := cfg.HBMBytesPerSec / (cfg.FreqGHz * 1e9)

	finish := make([]int64, len(g.Ops))
	var poolFree [numPools]int64
	var memFree int64

	for _, op := range g.Ops {
		pool := PoolOf(op.Kind)
		lanes := cfg.Lanes[pool]
		if lanes == 0 {
			return Result{}, fmt.Errorf("baseline %s: no %v lanes for op %s: %w",
				cfg.Name, pool, op.Label, errs.ErrBadConfig)
		}
		work := OpWork(op)
		dur := int64(math.Ceil(work / float64(lanes)))
		if dur < 1 {
			dur = 1
		}

		var streamDone int64
		if op.StreamBytes > 0 {
			memFree += int64(math.Ceil(float64(op.StreamBytes) / bytesPerCycle))
			streamDone = memFree
			res.MemCycles = memFree
		}
		ready := int64(0)
		for _, d := range op.Deps {
			if finish[d] > ready {
				ready = finish[d]
			}
		}
		start := ready
		if poolFree[pool] > start {
			start = poolFree[pool]
		}
		if streamDone > start {
			start = streamDone
		}
		end := start + dur
		poolFree[pool] = end
		finish[op.ID] = end
		res.PoolBusy[pool] += work
		res.ComputeCycles += dur
		if end > res.Cycles {
			res.Cycles = end
		}
	}
	res.Seconds = float64(res.Cycles) / (cfg.FreqGHz * 1e9)
	res.MemBound = res.MemCycles > res.Cycles-res.MemCycles
	var weighted, totalLanes float64
	for p := Pool(0); p < numPools; p++ {
		if cfg.Lanes[p] == 0 {
			continue
		}
		res.PoolUtil[p] = res.PoolBusy[p] / (float64(cfg.Lanes[p]) * float64(res.Cycles))
		weighted += res.PoolUtil[p] * float64(cfg.Lanes[p])
		totalLanes += float64(cfg.Lanes[p])
	}
	if totalLanes > 0 {
		res.Overall = weighted / totalLanes
	}
	return res, nil
}

package baseline

import (
	"errors"
	"testing"

	"alchemist/internal/arch"
	"alchemist/internal/errs"
	"alchemist/internal/sim"
	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

func alchemistSeconds(t testing.TB, g *trace.Graph) float64 {
	t.Helper()
	res, err := sim.Simulate(arch.Default(), g)
	if err != nil {
		t.Fatal(err)
	}
	return res.Seconds
}

func baselineSeconds(t testing.TB, cfg Config, g *trace.Graph) (float64, Result) {
	t.Helper()
	res, err := Simulate(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	return res.Seconds, res
}

func TestFig6aSpeedupsWithinBand(t *testing.T) {
	// The paper's average speedups over {bootstrapping, HELR-1024}:
	// BTS 18.4×, ARK 6.1×, CraterLake 3.7×, SHARP 2.0×. The model must land
	// within ±25% of each.
	s := workload.AppShape()
	boot := workload.Bootstrap(s, workload.DefaultBootstrapConfig())
	helr := workload.HELRBlock(s, workload.DefaultHELRConfig(), workload.DefaultBootstrapConfig())
	aBoot := alchemistSeconds(t, boot)
	aHelr := alchemistSeconds(t, helr)

	for _, cfg := range ArithmeticBaselines() {
		bBoot, _ := baselineSeconds(t, cfg, boot)
		bHelr, _ := baselineSeconds(t, cfg, helr)
		avg := (bBoot/aBoot + bHelr/aHelr) / 2
		want := Fig6aSpeedups[cfg.Name]
		if avg < want*0.75 || avg > want*1.25 {
			t.Errorf("%s: model speedup %.2f×, paper %.1f×", cfg.Name, avg, want)
		}
	}
}

func TestSHARPPerAppSpeedups(t *testing.T) {
	// Paper: 1.85× on bootstrapping, 2.07× on HELR vs SHARP.
	s := workload.AppShape()
	boot := workload.Bootstrap(s, workload.DefaultBootstrapConfig())
	helr := workload.HELRBlock(s, workload.DefaultHELRConfig(), workload.DefaultBootstrapConfig())
	sharp := SHARP()
	bb, _ := baselineSeconds(t, sharp, boot)
	bh, _ := baselineSeconds(t, sharp, helr)
	if r := bb / alchemistSeconds(t, boot); r < 1.4 || r > 2.4 {
		t.Errorf("bootstrap vs SHARP: %.2f×, paper 1.85×", r)
	}
	if r := bh / alchemistSeconds(t, helr); r < 1.5 || r > 2.6 {
		t.Errorf("HELR vs SHARP: %.2f×, paper 2.07×", r)
	}
}

func TestFig6bTFHESpeedup(t *testing.T) {
	// Paper: 7.0× average over the TFHE ASICs across both parameter sets.
	p1 := workload.PBSBatch(workload.PBSSetI(), 128)
	p2 := workload.PBSBatch(workload.PBSSetII(), 128)
	a1, a2 := alchemistSeconds(t, p1), alchemistSeconds(t, p2)
	var sum float64
	var n int
	for _, cfg := range LogicBaselines() {
		b1, _ := baselineSeconds(t, cfg, p1)
		b2, _ := baselineSeconds(t, cfg, p2)
		sum += b1/a1 + b2/a2
		n += 2
	}
	avg := sum / float64(n)
	if avg < 7.0*0.7 || avg > 7.0*1.3 {
		t.Errorf("TFHE ASIC average speedup %.2f×, paper 7.0×", avg)
	}
}

func TestF1LoLaSpeedup(t *testing.T) {
	lola := workload.LoLaMNIST(workload.DefaultLoLaConfig(false))
	b, _ := baselineSeconds(t, F1(), lola)
	if r := b / alchemistSeconds(t, lola); r < 2.5 || r > 4.5 {
		t.Errorf("LoLa vs F1: %.2f×, paper >3×", r)
	}
}

func TestUtilizationMismatchStory(t *testing.T) {
	// Fig. 7(b): every modular design's overall FU utilization on
	// bootstrapping sits far below Alchemist's ≈0.85 compute utilization,
	// and the per-pool spread is wide (the mismatch mechanism).
	s := workload.AppShape()
	boot := workload.Bootstrap(s, workload.DefaultBootstrapConfig())
	aRes, err := sim.Simulate(arch.Default(), boot)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range ArithmeticBaselines() {
		_, res := baselineSeconds(t, cfg, boot)
		if res.Overall >= aRes.ComputeUtilization {
			t.Errorf("%s overall util %.2f should be below Alchemist %.2f",
				cfg.Name, res.Overall, aRes.ComputeUtilization)
		}
		if res.Overall > 0.60 {
			t.Errorf("%s overall util %.2f implausibly high for a modular design", cfg.Name, res.Overall)
		}
		lo, hi := 1.0, 0.0
		for p := Pool(0); p < numPools; p++ {
			if cfg.Lanes[p] == 0 {
				continue
			}
			if res.PoolUtil[p] < lo {
				lo = res.PoolUtil[p]
			}
			if res.PoolUtil[p] > hi {
				hi = res.PoolUtil[p]
			}
		}
		if hi-lo < 0.05 {
			t.Errorf("%s: pool utils too uniform (%.2f..%.2f); mismatch should show", cfg.Name, lo, hi)
		}
	}
}

func TestLogicOnlyDesignsRejectCKKS(t *testing.T) {
	s := workload.AppShape()
	g := workload.Cmult(s)
	if _, err := Simulate(Matcha(), g); err == nil {
		t.Fatal("Matcha has no Bconv lanes; CKKS graphs must error")
	}
}

func TestOpWorkShapes(t *testing.T) {
	ntt := &trace.Op{Kind: trace.KindNTT, N: 1024, Channels: 2, Polys: 3}
	if w := OpWork(ntt); w != 1024.0/2*10*6 {
		t.Errorf("NTT work %v", w)
	}
	bc := &trace.Op{Kind: trace.KindBconv, N: 64, SrcChannels: 4, Channels: 8, Polys: 2}
	if w := OpWork(bc); w != float64((4+4*8)*64*2) {
		t.Errorf("Bconv work %v", w)
	}
	dp := &trace.Op{Kind: trace.KindDecompPolyMult, N: 64, Channels: 8, Dnum: 3, Polys: 2}
	if w := OpWork(dp); w != float64(3*64*8*2) {
		t.Errorf("DecompPolyMult work %v", w)
	}
}

func TestPublishedTablesConsistent(t *testing.T) {
	for _, row := range Table7() {
		if row.Alchemist <= row.CPU {
			t.Errorf("%s: accelerator slower than CPU?", row.Op)
		}
		gotSpeedup := row.Alchemist / row.CPU
		if gotSpeedup < row.SpeedupX*0.98 || gotSpeedup > row.SpeedupX*1.02 {
			t.Errorf("%s: table speedup column %.0f inconsistent with %.0f",
				row.Op, row.SpeedupX, gotSpeedup)
		}
	}
	if len(Table6()) != 5 {
		t.Error("Table 6 must have 5 designs")
	}
	for name, v := range Fig6aSpeedups {
		if v <= 1 {
			t.Errorf("Fig6a %s speedup %v", name, v)
		}
	}
}

func TestQuickBaselineMonotonicity(t *testing.T) {
	// More lanes can never slow a modular design down.
	g := workload.Bootstrap(workload.AppShape(), workload.DefaultBootstrapConfig())
	base := SHARP()
	res, err := Simulate(base, g)
	if err != nil {
		t.Fatal(err)
	}
	big := base
	for p := Pool(0); p < numPools; p++ {
		big.Lanes[p] *= 2
	}
	res2, err := Simulate(big, g)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles > res.Cycles {
		t.Fatalf("doubling lanes slowed SHARP: %d -> %d", res.Cycles, res2.Cycles)
	}
	// Utilization stays in [0, 1].
	for p := Pool(0); p < numPools; p++ {
		if res.PoolUtil[p] < 0 || res.PoolUtil[p] > 1.0001 {
			t.Fatalf("pool %v utilization %v out of range", p, res.PoolUtil[p])
		}
	}
}

func TestMissingPoolWrapsErrBadConfig(t *testing.T) {
	// A logic-only design has no Bconv pool; a CKKS keyswitch needs one.
	cfg := Matcha()
	if cfg.Lanes[PoolBconv] != 0 {
		t.Skip("fixture assumption changed: Matcha grew a Bconv pool")
	}
	g := workload.Keyswitch(workload.PaperShape())
	_, err := Simulate(cfg, g)
	if !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

func TestBaselineValidatesGraph(t *testing.T) {
	cyclic := &trace.Graph{Name: "cyclic", Ops: []*trace.Op{
		{ID: 0, Kind: trace.KindEWAdd, N: 16, Channels: 1, Polys: 1, Deps: []int{0}},
	}}
	if _, err := Simulate(SHARP(), cyclic); !errors.Is(err, errs.ErrGraphCycle) {
		t.Fatalf("err = %v, want ErrGraphCycle", err)
	}
}

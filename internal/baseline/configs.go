package baseline

// Accelerator configurations. Frequencies, bandwidths, on-chip capacities
// and areas follow the paper's Table 6 (and the respective papers); the FU
// lane splits are reconstructions from the published block diagrams, scaled
// so each design's total modmul throughput is consistent with its area and
// the per-FU utilizations the paper quotes (SHARP: NTTU 0.70, BconvU 0.26,
// EW 0.64 on HELR-1024; CraterLake: 0.42 overall on bootstrapping).

// F1 is the first programmable FHE ASIC (MICRO'21): no bootstrapping-scale
// parameters, NTT-heavy FU mix.
func F1() Config {
	return Config{
		Name: "F1", Arithmetic: true,
		FreqGHz: 1.0, HBMBytesPerSec: 1e12, OnChipMB: 64, AreaMM2: 151.4,
		Lanes: [numPools]int{PoolNTT: 1792, PoolBconv: 256, PoolEW: 1024},
	}
}

// BTS (ISCA'22): bootstrappable, large SRAM, comparatively low compute
// density.
func BTS() Config {
	return Config{
		Name: "BTS", Arithmetic: true,
		FreqGHz: 1.2, HBMBytesPerSec: 1e12, OnChipMB: 512, AreaMM2: 747.2, // 373.6 mm² at 7 nm, 14 nm-scaled
		Lanes: [numPools]int{PoolNTT: 240, PoolBconv: 320, PoolEW: 120},
	}
}

// ARK (MICRO'22): runtime evk generation, larger FU budget.
func ARK() Config {
	return Config{
		Name: "ARK", Arithmetic: true,
		FreqGHz: 1.0, HBMBytesPerSec: 1e12, OnChipMB: 512, AreaMM2: 836.6, // 418.3 mm² at 7 nm, 14 nm-scaled
		Lanes: [numPools]int{PoolNTT: 824, PoolBconv: 1368, PoolEW: 408},
	}
}

// CraterLake (ISCA'22): 2.4 TB/s off-chip, 256 MB on-chip, unbounded-depth
// support; NTT-dominant mix (CRBs) leaving other units under-used on
// Bconv-heavy phases.
func CraterLake() Config {
	return Config{
		Name: "CraterLake", Arithmetic: true,
		FreqGHz: 1.0, HBMBytesPerSec: 2.4e12, OnChipMB: 256, AreaMM2: 472.3,
		Lanes: [numPools]int{PoolNTT: 1280, PoolBconv: 2304, PoolEW: 720},
	}
}

// SHARP (ISCA'23): 36-bit words, 1 TB/s, the paper's closest competitor.
func SHARP() Config {
	return Config{
		Name: "SHARP", Arithmetic: true,
		FreqGHz: 1.0, HBMBytesPerSec: 1e12, OnChipMB: 180, AreaMM2: 379,
		Lanes: [numPools]int{PoolNTT: 2304, PoolBconv: 6528, PoolEW: 1152},
	}
}

// Matcha (DAC'22): TFHE programmable-bootstrapping ASIC.
func Matcha() Config {
	return Config{
		Name: "Matcha", Logic: true,
		FreqGHz: 2.0, HBMBytesPerSec: 6.4e11, OnChipMB: 4, AreaMM2: 33.6,
		Lanes: [numPools]int{PoolNTT: 264, PoolBconv: 0, PoolEW: 194},
	}
}

// Strix (MICRO'23): streaming TFHE architecture with two-level batching.
func Strix() Config {
	return Config{
		Name: "Strix", Logic: true,
		FreqGHz: 1.2, HBMBytesPerSec: 3e11, OnChipMB: 26, AreaMM2: 56.4,
		Lanes: [numPools]int{PoolNTT: 1408, PoolBconv: 0, PoolEW: 1088},
	}
}

// ArithmeticBaselines returns the CKKS-capable designs in Figure 6(a) order.
func ArithmeticBaselines() []Config {
	return []Config{BTS(), ARK(), CraterLake(), SHARP()}
}

// LogicBaselines returns the TFHE designs of Figure 6(b).
func LogicBaselines() []Config {
	return []Config{Matcha(), Strix()}
}

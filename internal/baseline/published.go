package baseline

// Published reference values carried verbatim from the paper, used by the
// benchmark harness to print paper-vs-model comparisons.

// Table7Row is one basic-operator row of Table 7 (operations per second).
type Table7Row struct {
	Op        string
	CPU       float64 // Intel Xeon Gold 6234 @3.3 GHz, 1 thread
	GPU       float64 // [20]; 0 = not reported
	Poseidon  float64 // FPGA [15]
	Alchemist float64
	SpeedupX  float64 // Alchemist vs CPU, as printed in the paper
}

// Table7 reproduces the published throughput table (N=2^16, L=44, dnum=4).
func Table7() []Table7Row {
	return []Table7Row{
		{"Pmult", 38.14, 7407, 14647, 946970, 24829},
		{"Hadd", 35.56, 4807, 13310, 710227, 19973},
		{"Keyswitch", 0.4, 0, 312, 7246, 18115},
		{"Cmult", 0.38, 57, 273, 7143, 18785},
		{"Rotation", 0.39, 61, 302, 7179, 18377},
	}
}

// Fig6aSpeedups are the paper's average speedups of Alchemist over each
// arithmetic-FHE accelerator across {fully-packed bootstrapping, HELR-1024}.
var Fig6aSpeedups = map[string]float64{
	"BTS":        18.4,
	"ARK":        6.1,
	"CraterLake": 3.7,
	"SHARP":      2.0,
}

// Fig6aPerfPerArea are the paper's performance-per-area improvements.
var Fig6aPerfPerArea = map[string]float64{
	"BTS":        76.1,
	"ARK":        28.4,
	"CraterLake": 9.4,
	"SHARP":      3.79,
}

// SHARPSpecific are the per-application speedups the paper quotes vs SHARP.
var SHARPSpecific = map[string]float64{
	"bootstrap": 1.85,
	"helr":      2.07,
}

// Fig6bSpeedups are the paper's TFHE PBS throughput ratios.
var Fig6bSpeedups = map[string]float64{
	"Concrete": 1600, // CPU
	"NuFHE":    105,  // GPU
	"ASIC-avg": 7.0,  // vs Matcha + Strix on average
}

// Fig7bUtilization carries the utilization rates of Figure 7(b).
var Fig7bUtilization = struct {
	AlchemistNTT, AlchemistBconv, AlchemistDecomp, AlchemistOverall float64
	SHARPBoot, SHARPHELR                                            float64
	SHARPNTTU, SHARPBconvU, SHARPEW                                 float64
	CraterLakeBoot, CraterLakeMNIST                                 float64
}{
	AlchemistNTT: 0.85, AlchemistBconv: 0.89, AlchemistDecomp: 0.87, AlchemistOverall: 0.86,
	SHARPBoot: 0.55, SHARPHELR: 0.52,
	SHARPNTTU: 0.70, SHARPBconvU: 0.26, SHARPEW: 0.64,
	CraterLakeBoot: 0.42, CraterLakeMNIST: 0.38,
}

// Fig7aMultReduction are the paper's multiplication-overhead reductions from
// the Meta-OP transformation.
var Fig7aMultReduction = map[string]float64{
	"tfhe-pbs":       0.034,
	"cmult-l24":      0.233,
	"bootstrap-l44+": 0.371,
}

// LoLaEncryptedMs is the paper's encrypted-weight LoLa-MNIST latency (ms).
const LoLaEncryptedMs = 0.11

// F1LoLaSpeedup is the paper's claim vs F1 on LoLa-MNIST ("over 3×").
const F1LoLaSpeedup = 3.0

// Table6Row is one column of the paper's resource-usage table.
type Table6Row struct {
	Name          string
	Arithmetic    bool
	Logic         bool
	OffChipGBs    float64
	OnChipMB      float64
	OnChipTBs     float64 // 0 = not reported
	FreqGHz       float64
	AreaMM2       float64 // as reported
	AreaScaledMM2 float64 // 14nm-scaled
}

// Table6 reproduces the published accelerator-resource comparison.
func Table6() []Table6Row {
	return []Table6Row{
		{"Matcha", false, true, 640, 4, 0, 2.0, 36.96, 33.6},
		{"Strix", false, true, 300, 26, 0, 1.2, 141.37, 56.4},
		{"CraterLake", true, false, 2400, 256, 84, 1.0, 472.3, 472.3},
		{"SHARP", true, false, 1000, 180, 72, 1.0, 178.8, 379},
		{"Alchemist", true, true, 1000, 66, 66, 1.0, 181.1, 181.1},
	}
}

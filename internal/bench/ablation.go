package bench

import (
	"alchemist/internal/arch"
	"alchemist/internal/area"
	"alchemist/internal/metaop"
	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

// AblationLaneWidth sweeps the Meta-OP lane width j (the paper's DSE fixes
// j = 8). The radix-8 NTT butterfly produces 8 coupled outputs, so lanes
// beyond 8 idle during NTT stages (utilization 8/j) while the per-core
// reduction overhead is amortized over more lanes for element-wise work.
func AblationLaneWidth() *Report {
	r := &Report{
		ID:    "ablation-j",
		Title: "Lane width j sweep (paper DSE: j = 8)",
		Headers: []string{"j", "NTT lane util", "EW lane util", "core area mm^2",
			"NTT perf/area (norm)"},
	}
	// Representative per-8-output NTT group: (M8A8)_3R8.
	for _, j := range []int{4, 8, 16, 32} {
		nttUtil := 1.0
		if j > 8 {
			nttUtil = 8.0 / float64(j)
		}
		// EW ops fill any width; reduction cycles amortize identically.
		ewUtil := 1.0
		coreArea := area.CoreMM2 * float64(j) / 8
		// Throughput per core on NTT ∝ j·nttUtil; per area ∝ nttUtil·8/8.
		perfArea := float64(j) * nttUtil / (coreArea / area.CoreMM2) / 8
		r.AddRow(f("%d", j), f("%.2f", nttUtil), f("%.2f", ewUtil),
			f("%.4f", coreArea), f("%.2f", perfArea))
	}
	r.Notes = append(r.Notes,
		"j>8 wastes lanes on the radix-8 butterfly; j<8 under-fills the slot partitioning granularity",
		"j=8 maximizes NTT perf/area, matching the paper's choice")
	return r
}

// AblationLazyReduction compares the Meta-OP lazy reduction with an eager
// per-term reduction on the full workloads (Fig. 7a generalized to cycles).
func (c *Ctx) AblationLazyReduction() *Report {
	r := &Report{
		ID:    "ablation-lazy",
		Title: "Lazy (MetaOP) vs eager reduction",
		Headers: []string{"Workload", "lazy mults", "eager mults", "mult ratio",
			"cycle ratio (est)"},
	}
	s := workload.PaperShape()
	app := workload.AppShape()
	for _, wc := range []struct {
		name string
		g    *trace.Graph
	}{
		{"Cmult-L=24", workload.Cmult(s.WithChannels(24))},
		{"Bootstrap", workload.Bootstrap(app, workload.DefaultBootstrapConfig())},
		{"TFHE-PBS", workload.PBSBatch(workload.PBSSetI(), 128)},
	} {
		res := c.sim(arch.Default(), wc.g)
		lazy, eager := res.MultsTotal()
		// The mult array is the throughput limiter: with eager reduction the
		// same lanes must execute `eager` mults instead of `lazy`.
		r.AddRow(wc.name, f("%d", lazy), f("%d", eager),
			f("%.2f", float64(lazy)/float64(eager)),
			f("%.2f", float64(eager)/float64(lazy)))
	}
	r.Notes = append(r.Notes, "cycle ratio = slowdown a design without lazy reduction would pay on the mult array")
	return r
}

// AblationDataLayout compares the slot-based partitioning + 4-step NTT
// against a classical fully-connected NTT mapping.
func AblationDataLayout() *Report {
	r := &Report{
		ID:    "ablation-layout",
		Title: "Slot partitioning + 4-step NTT vs fully-connected NTT (inter-unit traffic)",
		Headers: []string{"N", "channels", "4-step bytes", "fully-connected bytes",
			"traffic saving"},
	}
	cfg := arch.Default()
	for _, c := range []struct{ n, ch int }{{16384, 24}, {65536, 44}, {65536, 24}} {
		word := cfg.WordBytes()
		elems := float64(c.n * c.ch)
		// 4-step: one transpose between the two passes plus the output
		// gather → 2 full-array crossings of the transpose RF.
		fourStep := 2 * elems * word
		// Classical iterative NTT: every stage pairs elements N/2 apart at
		// some stage distance; beyond the unit-local slot range the exchange
		// crosses units: log2(Units) of the log2(N) stages are non-local.
		nonLocal := float64(metaop.Log2(cfg.Units))
		fully := nonLocal * elems * word
		r.AddRow(f("%d", c.n), f("%d", c.ch),
			f("%.1f MB", fourStep/(1<<20)), f("%.1f MB", fully/(1<<20)),
			f("%.1fx", fully/fourStep))
	}
	r.Notes = append(r.Notes,
		"the 4-step layout pays 2 transpose crossings; a fully-connected NTT pays one per non-local stage (log2(units) = 7)")
	return r
}

// AblationUnitCount sweeps the computing-unit count on bootstrapping.
func (c *Ctx) AblationUnitCount() *Report {
	r := &Report{
		ID:    "ablation-units",
		Title: "Computing-unit count sweep on bootstrapping (paper design point: 128)",
		Headers: []string{"units", "cycles", "speed vs 128", "area mm^2",
			"perf/area vs 128"},
	}
	app := workload.AppShape()
	g := workload.Bootstrap(app, workload.DefaultBootstrapConfig())
	base := c.sim(arch.Default(), g)
	baseArea := area.Estimate(arch.Default()).Total
	basePPA := area.PerfPerArea(base.Seconds, baseArea)
	for _, u := range []int{32, 64, 128, 256, 512} {
		cfg := arch.Default()
		cfg.Units = u
		res := c.sim(cfg, g)
		a := area.Estimate(cfg).Total
		r.AddRow(f("%d", u), f("%d", res.Cycles),
			f("%.2fx", float64(base.Cycles)/float64(res.Cycles)),
			f("%.1f", a),
			f("%.2fx", area.PerfPerArea(res.Seconds, a)/basePPA))
	}
	r.Notes = append(r.Notes,
		"beyond 128 units the evk stream and transpose phases bound runtime, so perf/area degrades")
	return r
}

// AblationWordSize sweeps the RNS word size. The paper adopts SHARP's
// 36-bit finding: for a fixed total modulus budget (security), smaller
// words mean more RNS channels (more Bconv work, more evk bytes per
// switching key is offset by narrower words), while larger words need wider
// multipliers whose area grows quadratically. We model multiplier area
// ∝ w² and re-derive the Table 7 keyswitch at each word size.
func (c *Ctx) AblationWordSize() *Report {
	r := &Report{
		ID:    "ablation-word",
		Title: "RNS word size sweep (paper adopts 36 bits, following SHARP)",
		Headers: []string{"word bits", "channels", "evk MB", "keyswitch cycles",
			"rel. mult area", "perf/area (norm)"},
	}
	// SHARP's trade-off: every RNS prime spends ≈10 bits of noise margin,
	// so a w-bit word carries only w-10 useful bits. For a fixed useful
	// budget (44 channels × 26 useful bits), narrow words need many more
	// physical channels (more Bconv work, bigger evks), while wide words
	// need quadratically larger multipliers.
	const usefulBits = 44 * (36 - 10)
	const marginBits = 10
	cfg := arch.Default()
	var base float64
	for _, w := range []int{24, 28, 36, 45, 54} {
		ch := (usefulBits + w - marginBits - 1) / (w - marginBits)
		s := workload.PaperShape()
		s.Channels = ch
		s.WordBits = w
		s.K = (ch + s.Dnum - 1) / s.Dnum // keep K ≈ alpha
		g := workload.KeyswitchThroughput(s, 2)
		wCfg := cfg
		wCfg.WordBits = w
		res := c.sim(wCfg, g)
		cycles := float64(res.Cycles) / 2
		multArea := float64(w*w) / (36 * 36)
		perfArea := 1 / cycles / multArea
		if w == 36 {
			base = perfArea
		}
		r.AddRow(f("%d", w), f("%d", ch), f("%d", s.EvkBytes(ch)>>20),
			f("%.0f", cycles), f("%.2f", multArea), f("%.3g", perfArea))
		_ = base
	}
	r.Notes = append(r.Notes,
		"fixed useful-modulus budget; narrow words inflate channel counts, Bconv work and evk bytes, wide words inflate multiplier area (~w^2)",
		"the evk-bound keyswitch hides most of the compute cost, so this simplified metric still leans narrow;",
		"SHARP's full DSE (accumulator width, twiddle storage, per-prime noise) lands on 36 bits, which this repository adopts")
	return r
}

// AblationSRAMSize sweeps the per-unit scratchpad capacity. Below the
// working set of a keyswitch phase, operands spill and re-stream over HBM.
func (c *Ctx) AblationSRAMSize() *Report {
	r := &Report{
		ID:    "ablation-sram",
		Title: "Scratchpad capacity sweep (paper: 64+2 MB total)",
		Headers: []string{"per-unit KB", "total MB", "working set MB",
			"spill traffic/ks MB", "est. keyswitch cycles"},
	}
	s := workload.PaperShape()
	cfg := arch.Default()
	// Working set of one key switch at full level: ciphertext digits over
	// ch+K channels for every group plus the two accumulators.
	n := s.N()
	ch := s.Channels
	wordBytes := cfg.WordBytes()
	ws := float64(trace.PolyBytes(n, ch+s.K, s.Dnum+4, 1)) * wordBytes
	base := c.sim(cfg, workload.KeyswitchThroughput(s, 1))
	for _, kb := range []int{64, 128, 256, 512, 1024} {
		capTotal := float64(kb<<10)*float64(cfg.Units) + float64(cfg.SharedMemoryBytes)
		spill := ws - capTotal
		if spill < 0 {
			spill = 0
		}
		// Each spilled byte is written and re-read once per keyswitch.
		extraCycles := int64(2 * spill / cfg.HBMBytesPerCycle())
		r.AddRow(f("%d", kb), f("%.0f", capTotal/(1<<20)), f("%.0f", ws/(1<<20)),
			f("%.0f", 2*spill/(1<<20)), f("%d", base.Cycles+extraCycles))
	}
	r.Notes = append(r.Notes,
		"at the paper's 512 KB/unit (64+2 MB total) the keyswitch working set fits and spills vanish")
	return r
}

package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllReportsGenerate(t *testing.T) {
	for _, r := range All() {
		if r.ID == "" || r.Title == "" {
			t.Errorf("report missing identity: %+v", r)
		}
		if len(r.Rows) == 0 {
			t.Errorf("%s: no rows", r.ID)
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Headers) {
				t.Errorf("%s: row width %d != header width %d", r.ID, len(row), len(r.Headers))
			}
		}
		if !strings.Contains(r.String(), r.Title) {
			t.Errorf("%s: text rendering broken", r.ID)
		}
		csv := r.CSV()
		if lines := strings.Count(csv, "\n"); lines != len(r.Rows)+1 {
			t.Errorf("%s: CSV has %d lines, want %d", r.ID, lines, len(r.Rows)+1)
		}
	}
}

func cell(r *Report, rowLabel, header string) string {
	col := -1
	for i, h := range r.Headers {
		if h == header {
			col = i
		}
	}
	if col < 0 {
		return ""
	}
	for _, row := range r.Rows {
		if row[0] == rowLabel {
			return row[col]
		}
	}
	return ""
}

func parseX(s string) float64 {
	s = strings.TrimSuffix(s, "x")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func TestTable7ModelWithinTolerance(t *testing.T) {
	r := Table7()
	for _, row := range r.Rows {
		ratio := parseX(strings.TrimSuffix(row[len(row)-1], "x"))
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("Table 7 %s: model/paper ratio %v out of band", row[0], ratio)
		}
	}
}

func TestFig6aAverageSpeedups(t *testing.T) {
	r := Figure6a()
	want := map[int]float64{2: 18.4, 3: 6.1, 4: 3.7, 5: 2.0} // columns of the avg row
	for _, row := range r.Rows {
		if row[0] != "avg speedup" {
			continue
		}
		for col, paper := range want {
			got := parseX(row[col])
			if got < paper*0.75 || got > paper*1.25 {
				t.Errorf("Fig6a avg col %d: %.2f vs paper %.1f", col, got, paper)
			}
		}
	}
}

func TestFig6aPerfPerAreaBands(t *testing.T) {
	r := Figure6aPerfArea()
	targets := map[string]float64{"BTS": 76.1, "ARK": 28.4, "CraterLake": 9.4, "SHARP": 3.79}
	for name, paper := range targets {
		got := parseX(cell(r, name, "model perf/area gain"))
		if got < paper*0.7 || got > paper*1.3 {
			t.Errorf("%s perf/area gain %.1f vs paper %.1f", name, got, paper)
		}
	}
}

func TestFig7bAlchemistTaskUtilizations(t *testing.T) {
	r := Figure7b()
	// Paper: NTT 0.85, Bconv 0.89, DecompPolyMult 0.87 on Alchemist.
	for _, row := range r.Rows {
		if row[0] != "Alchemist" {
			continue
		}
		ntt, _ := strconv.ParseFloat(row[2], 64)
		bconv, _ := strconv.ParseFloat(row[3], 64)
		decomp, _ := strconv.ParseFloat(row[4], 64)
		if ntt < 0.80 || ntt > 0.95 {
			t.Errorf("Alchemist NTT util %v, paper 0.85", ntt)
		}
		if bconv < 0.84 || bconv > 0.94 {
			t.Errorf("Alchemist Bconv util %v, paper 0.89", bconv)
		}
		if decomp < 0.82 || decomp > 0.92 {
			t.Errorf("Alchemist Decomp util %v, paper 0.87", decomp)
		}
	}
}

func TestTable5Exact(t *testing.T) {
	r := Table5()
	for _, row := range r.Rows {
		if row[1] != row[2] {
			t.Errorf("Table 5 %s: model %s != paper %s", row[0], row[1], row[2])
		}
	}
}

func TestFig1SharesSumTo100(t *testing.T) {
	r := Figure1()
	for _, row := range r.Rows {
		var sum float64
		for _, c := range row[1:5] {
			v, _ := strconv.ParseFloat(c, 64)
			sum += v
		}
		if sum < 98 || sum > 102 {
			t.Errorf("Fig1 %s: shares sum to %v", row[0], sum)
		}
	}
}

func TestAblationLaneWidthPeaksAt8(t *testing.T) {
	r := AblationLaneWidth()
	best, bestJ := 0.0, 0
	for _, row := range r.Rows {
		v, _ := strconv.ParseFloat(row[4], 64)
		if v > best {
			best = v
			j, _ := strconv.Atoi(row[0])
			bestJ = j
		}
	}
	if bestJ > 8 {
		t.Errorf("lane-width ablation peaks at j=%d, paper DSE picked 8", bestJ)
	}
}

func TestAblationSRAMNoSpillAtDesignPoint(t *testing.T) {
	r := AblationSRAMSize()
	for _, row := range r.Rows {
		if row[0] == "512" {
			if row[3] != "0" {
				t.Errorf("512 KB/unit should have no spill, got %s MB", row[3])
			}
		}
	}
}

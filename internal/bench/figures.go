package bench

import (
	"alchemist/internal/arch"
	"alchemist/internal/area"
	"alchemist/internal/baseline"
	"alchemist/internal/sim"
	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

// fig1Workloads returns the Figure 1 workload set in paper order.
func fig1Workloads() []*trace.Graph {
	s := workload.PaperShape()
	app := workload.AppShape()
	gs := []*trace.Graph{
		workload.PBSBatch(workload.PBSSetI(), 128),
	}
	for _, l := range []int{2, 8, 16, 24} {
		gs = append(gs, workload.Cmult(s.WithChannels(l)))
	}
	b24 := workload.DefaultBootstrapConfig()
	b24.StartChannels = 24
	b24.Hoisting = false
	b44 := workload.DefaultBootstrapConfig()
	b44.Hoisting = false
	b44h := workload.DefaultBootstrapConfig()
	gs = append(gs,
		renamed(workload.Bootstrap(app, b24), "BSP-L=24"),
		renamed(workload.Bootstrap(app, b44), "BSP-L=44"),
		renamed(workload.Bootstrap(app, b44h), "BSP-L=44+"),
	)
	gs[0].Name = "TFHE-PBS"
	for i, l := range []int{2, 8, 16, 24} {
		gs[1+i].Name = f("Cmult-L=%d", l)
	}
	return gs
}

func renamed(g *trace.Graph, name string) *trace.Graph {
	g.Name = name
	return g
}

// Figure1 regenerates the operator-ratio bars and the per-accelerator
// utilization line of Figure 1.
func (c *Ctx) Figure1() *Report {
	r := &Report{
		ID:    "fig1",
		Title: "Operator ratio in the algorithm and overall hardware utilization",
		Headers: []string{"Workload", "NTT%", "Bconv%", "Decomp%", "Other%",
			"Alchemist", "BTS", "ARK", "CLAKE", "SHARP", "Matcha", "Strix"},
	}
	designs := append(baseline.ArithmeticBaselines(), baseline.LogicBaselines()...)
	for _, g := range fig1Workloads() {
		shares := sim.ClassShares(g)
		ares := c.sim(arch.Default(), g)
		row := []string{g.Name,
			f("%.0f", 100*shares[trace.ClassNTT]),
			f("%.0f", 100*shares[trace.ClassBconv]),
			f("%.0f", 100*shares[trace.ClassDecompPolyMult]),
			f("%.0f", 100*shares[trace.ClassOther]),
			f("%.2f", ares.ComputeUtilization)}
		isTFHE := g.Name == "TFHE-PBS"
		for _, d := range designs {
			// Per Table 6, each specialized design only supports its own
			// scheme class (the unified architecture's whole point).
			if (isTFHE && !d.Logic) || (!isTFHE && !d.Arithmetic) {
				row = append(row, "-")
				continue
			}
			if bres, err := c.baseline(d, g); err == nil {
				row = append(row, f("%.2f", bres.Overall))
			} else {
				row = append(row, "-")
			}
		}
		r.AddRow(row...)
	}
	r.Notes = append(r.Notes,
		"operator shares are fractions of eager multiplications (the paper's 'operator ratio in the algorithm')",
		"utilization = FU-busy fraction; Alchemist stays high across all mixes, modular designs swing")
	return r
}

// appResult bundles one Figure 6(a) application row.
type appResult struct {
	name  string
	graph *trace.Graph
}

// Figure6a regenerates the CKKS application comparison.
func (c *Ctx) Figure6a() *Report {
	r := &Report{
		ID:    "fig6a",
		Title: "CKKS applications: Alchemist vs prior accelerators",
		Headers: []string{"App", "Alchemist(ms)", "BTS", "ARK", "CLAKE", "SHARP",
			"paper avg", "model avg"},
	}
	app := workload.AppShape()
	apps := []appResult{
		{"bootstrap", workload.Bootstrap(app, workload.DefaultBootstrapConfig())},
		{"helr-1024(block)", workload.HELRBlock(app, workload.DefaultHELRConfig(), workload.DefaultBootstrapConfig())},
	}
	cfg := arch.Default()
	sums := map[string]float64{}
	for _, a := range apps {
		ares := c.sim(cfg, a.graph)
		row := []string{a.name, f("%.3f", ares.Seconds*1e3)}
		for _, bc := range baseline.ArithmeticBaselines() {
			bres := c.mustBaseline(bc, a.graph)
			sp := bres.Seconds / ares.Seconds
			sums[bc.Name] += sp
			row = append(row, f("%.2fx", sp))
		}
		row = append(row, "-", "-")
		r.AddRow(row...)
	}
	// Average speedup row, model vs paper.
	avgRow := []string{"avg speedup", "-"}
	for _, bc := range baseline.ArithmeticBaselines() {
		avgRow = append(avgRow, f("%.2fx", sums[bc.Name]/float64(len(apps))))
	}
	avgRow = append(avgRow, "18.4/6.1/3.7/2.0x", "see cols")
	r.AddRow(avgRow...)

	// LoLa-MNIST rows.
	for _, enc := range []bool{false, true} {
		g := workload.LoLaMNIST(workload.DefaultLoLaConfig(enc))
		ares := c.sim(cfg, g)
		name := "lola-mnist(plain)"
		extra := "-"
		if enc {
			name = "lola-mnist(enc)"
			extra = f("paper: %.2fms", baseline.LoLaEncryptedMs)
		} else {
			if f1res, err := c.baseline(baseline.F1(), g); err == nil {
				extra = f("F1 %.2fx (paper >3x)", f1res.Seconds/ares.Seconds)
			}
		}
		r.AddRow(name, f("%.4f", ares.Seconds*1e3), "-", "-", "-", "-", extra, "-")
	}
	return r
}

// Figure6aPerfArea regenerates the performance-per-area comparison.
func (c *Ctx) Figure6aPerfArea() *Report {
	r := &Report{
		ID:      "fig6a-ppa",
		Title:   "Performance per area on {bootstrap, HELR}",
		Headers: []string{"Design", "area mm^2", "model perf/area gain", "paper"},
	}
	app := workload.AppShape()
	apps := []*trace.Graph{
		workload.Bootstrap(app, workload.DefaultBootstrapConfig()),
		workload.HELRBlock(app, workload.DefaultHELRConfig(), workload.DefaultBootstrapConfig()),
	}
	alchArea := area.Estimate(arch.Default()).Total
	var alchPPA []float64
	for _, g := range apps {
		res := c.sim(arch.Default(), g)
		alchPPA = append(alchPPA, area.PerfPerArea(res.Seconds, alchArea))
	}
	r.AddRow("Alchemist", f("%.1f", alchArea), "1.00x (ref)", "-")
	for _, bc := range baseline.ArithmeticBaselines() {
		var gain float64
		for i, g := range apps {
			bres := c.mustBaseline(bc, g)
			gain += alchPPA[i] / area.PerfPerArea(bres.Seconds, bc.AreaMM2)
		}
		gain /= float64(len(apps))
		r.AddRow(bc.Name, f("%.1f", bc.AreaMM2), f("%.1fx", gain),
			f("%.1fx", baseline.Fig6aPerfPerArea[bc.Name]))
	}
	r.Notes = append(r.Notes, "gain = Alchemist (perf/mm^2) / design (perf/mm^2), averaged over both apps")
	return r
}

// Figure6b regenerates the TFHE PBS comparison.
func (c *Ctx) Figure6b() *Report {
	r := &Report{
		ID:    "fig6b",
		Title: "TFHE programmable bootstrapping throughput",
		Headers: []string{"Design", "SetI PBS/s", "SetII PBS/s", "speedup SetI",
			"speedup SetII"},
	}
	cfg := arch.Default()
	batch := 128
	g1 := workload.PBSBatch(workload.PBSSetI(), batch)
	g2 := workload.PBSBatch(workload.PBSSetII(), batch)
	a1 := c.sim(cfg, g1)
	a2 := c.sim(cfg, g2)
	t1 := float64(batch) / a1.Seconds
	t2 := float64(batch) / a2.Seconds
	r.AddRow("Alchemist", f("%.0f", t1), f("%.0f", t2), "1.00x", "1.00x")
	for _, bc := range baseline.LogicBaselines() {
		b1 := c.mustBaseline(bc, g1)
		b2 := c.mustBaseline(bc, g2)
		r.AddRow(bc.Name, f("%.0f", float64(batch)/b1.Seconds),
			f("%.0f", float64(batch)/b2.Seconds),
			f("%.2fx", b1.Seconds/a1.Seconds), f("%.2fx", b2.Seconds/a2.Seconds))
	}
	r.AddRow("Concrete(CPU, derived)", f("%.0f", t1/baseline.Fig6bSpeedups["Concrete"]), "-",
		f("%.0fx", baseline.Fig6bSpeedups["Concrete"]), "-")
	r.AddRow("NuFHE(GPU, derived)", f("%.0f", t1/baseline.Fig6bSpeedups["NuFHE"]), "-",
		f("%.0fx", baseline.Fig6bSpeedups["NuFHE"]), "-")
	r.Notes = append(r.Notes,
		"paper claims ~1600x vs Concrete, ~105x vs NuFHE and 7.0x avg vs the TFHE ASICs",
		"live Go TFHE gate bootstrapping is measured in BenchmarkCPUGateBootstrap")
	return r
}

// Figure7a regenerates the multiplication-overhead comparison.
func (c *Ctx) Figure7a() *Report {
	r := &Report{
		ID:    "fig7a",
		Title: "Computation overhead w/ and w/o (MjAj)nRj",
		Headers: []string{"Workload", "eager mults", "MetaOP mults", "model reduction",
			"paper reduction"},
	}
	s := workload.PaperShape()
	app := workload.AppShape()
	cases := []struct {
		name  string
		graph *trace.Graph
		paper float64
	}{
		{"TFHE-PBS", workload.PBSBatch(workload.PBSSetI(), 128), 0.034},
		{"Cmult-L=24", workload.Cmult(s.WithChannels(24)), 0.233},
		{"BSP-L=44+", workload.Bootstrap(app, workload.DefaultBootstrapConfig()), 0.371},
	}
	for _, cs := range cases {
		res := c.sim(arch.Default(), cs.graph)
		lazy, eager := res.MultsTotal()
		r.AddRow(cs.name, f("%d", eager), f("%d", lazy),
			f("%.1f%%", 100*(1-float64(lazy)/float64(eager))),
			f("%.1f%%", 100*cs.paper))
	}
	r.Notes = append(r.Notes,
		"the radix-4 Meta-OP reduction micro-costs are underdetermined by the paper;",
		"our consistent 2-cycle-reduction model shifts the TFHE point (see EXPERIMENTS.md)")
	return r
}

// Figure7b regenerates the utilization comparison. Workloads are iterated
// in a fixed order (not map order): the parallel-vs-serial byte-identity of
// Reports() depends on every generator being deterministic.
func (c *Ctx) Figure7b() *Report {
	r := &Report{
		ID:    "fig7b",
		Title: "Utilization rates (FU-busy): Alchemist vs SHARP vs CraterLake",
		Headers: []string{"Design", "workload", "NTT", "Bconv/KSH", "EW/Decomp",
			"overall", "paper overall"},
	}
	app := workload.AppShape()
	boot := workload.Bootstrap(app, workload.DefaultBootstrapConfig())
	helr := workload.HELRBlock(app, workload.DefaultHELRConfig(), workload.DefaultBootstrapConfig())
	mnist := workload.LoLaMNIST(workload.DefaultLoLaConfig(false))

	ab := c.sim(arch.Default(), boot)
	ah := c.sim(arch.Default(), helr)
	r.AddRow("Alchemist", "bootstrap",
		f("%.2f", ab.ClassUtilization(trace.ClassNTT)),
		f("%.2f", ab.ClassUtilization(trace.ClassBconv)),
		f("%.2f", ab.ClassUtilization(trace.ClassDecompPolyMult)),
		f("%.2f", ab.ComputeUtilization), "0.86")
	r.AddRow("Alchemist", "helr",
		f("%.2f", ah.ClassUtilization(trace.ClassNTT)),
		f("%.2f", ah.ClassUtilization(trace.ClassBconv)),
		f("%.2f", ah.ClassUtilization(trace.ClassDecompPolyMult)),
		f("%.2f", ah.ComputeUtilization), "0.86")

	sharp := baseline.SHARP()
	for _, wc := range []struct {
		name  string
		g     *trace.Graph
		paper float64
	}{
		{"bootstrap", boot, baseline.Fig7bUtilization.SHARPBoot},
		{"helr", helr, baseline.Fig7bUtilization.SHARPHELR},
	} {
		res := c.mustBaseline(sharp, wc.g)
		r.AddRow("SHARP", wc.name,
			f("%.2f", res.PoolUtil[baseline.PoolNTT]),
			f("%.2f", res.PoolUtil[baseline.PoolBconv]),
			f("%.2f", res.PoolUtil[baseline.PoolEW]),
			f("%.2f", res.Overall), f("%.2f", wc.paper))
	}
	clake := baseline.CraterLake()
	for _, wc := range []struct {
		name  string
		g     *trace.Graph
		paper float64
	}{
		{"bootstrap", boot, baseline.Fig7bUtilization.CraterLakeBoot},
		{"mnist", mnist, baseline.Fig7bUtilization.CraterLakeMNIST},
	} {
		res := c.mustBaseline(clake, wc.g)
		r.AddRow("CraterLake", wc.name,
			f("%.2f", res.PoolUtil[baseline.PoolNTT]),
			f("%.2f", res.PoolUtil[baseline.PoolBconv]),
			f("%.2f", res.PoolUtil[baseline.PoolEW]),
			f("%.2f", res.Overall), f("%.2f", wc.paper))
	}
	return r
}

package bench

import "fmt"

// Regression is one kernel whose time regressed past the gate tolerance.
type Regression struct {
	Name   string
	OldNs  float64
	NewNs  float64
	Factor float64 // NewNs / OldNs
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%.2fx)", r.Name, r.OldNs, r.NewNs, r.Factor)
}

// Regressions compares s (new) against base (old) by benchmark name and
// returns every matched kernel whose ns/op grew by more than tolPct percent.
// Kernels present on only one side are ignored — new benchmarks have no
// baseline, and retired ones no measurement. This is the in-repo benchmark
// trajectory gate: CI diffs the committed captures (BENCH_PR4.json vs
// BENCH_PR5.json, ...) and fails the build on a regression, so a kernel
// slowdown must be deliberate and visible in the diff, never accidental.
func (s *LiveSuite) Regressions(base *LiveSuite, tolPct float64) []Regression {
	old := map[string]LiveResult{}
	for _, e := range base.Results {
		old[e.Name] = e
	}
	limit := 1 + tolPct/100
	var out []Regression
	for _, e := range s.Results {
		o, ok := old[e.Name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		if f := e.NsPerOp / o.NsPerOp; f > limit {
			out = append(out, Regression{Name: e.Name, OldNs: o.NsPerOp, NewNs: e.NsPerOp, Factor: f})
		}
	}
	return out
}

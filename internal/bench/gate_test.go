package bench

import "testing"

func TestRegressionsGate(t *testing.T) {
	base := &LiveSuite{Results: []LiveResult{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 100},
		{Name: "retired", NsPerOp: 100},
	}}
	cur := &LiveSuite{Results: []LiveResult{
		{Name: "a", NsPerOp: 109}, // within a 10% gate
		{Name: "b", NsPerOp: 125}, // past it
		{Name: "fresh", NsPerOp: 1e9},
	}}
	regs := cur.Regressions(base, 10)
	if len(regs) != 1 || regs[0].Name != "b" {
		t.Fatalf("want exactly kernel b flagged, got %v", regs)
	}
	if regs[0].Factor < 1.24 || regs[0].Factor > 1.26 {
		t.Fatalf("factor = %v, want 1.25", regs[0].Factor)
	}
	if regs := cur.Regressions(base, 30); len(regs) != 0 {
		t.Fatalf("30%% gate should pass, got %v", regs)
	}
}

package bench

import (
	"context"
	"sync"

	"alchemist/internal/arch"
	"alchemist/internal/baseline"
	"alchemist/internal/engine"
	"alchemist/internal/sched"
	"alchemist/internal/sim"
	"alchemist/internal/trace"
)

// Ctx is a report-generation context: every simulation a report needs is
// submitted to a batch-evaluation engine instead of calling the simulators
// directly (alchemist-vet's bench-engine rule enforces this). The engine's
// memo cache recognizes the graphs shared between reports — bootstrapping
// alone appears in Figure 1, Figure 6(a), Figure 7(b), the validation
// cross-check and the energy table — so one Ctx regenerates the whole
// evaluation with each distinct simulation run exactly once, fanned out
// across the pool.
type Ctx struct {
	ctx   context.Context
	eng   *engine.Engine
	owned bool

	// The per-unit instruction-stream interpreter (internal/sched) is not
	// an engine job kind, but a warm Ctx should not replay it either: the
	// validation report memoizes its results under the same
	// (config, graph-fingerprint) identity the engine cache uses.
	schedMu   sync.Mutex
	schedMemo map[schedKey]schedOut
}

type schedKey struct {
	arch  arch.Config
	graph uint64
}

type schedOut struct {
	exec    sched.ExecResult
	summary sched.AccessSummary
}

// sched compiles and executes g on the per-unit interpreter, memoized for
// the lifetime of the Ctx. Panics on compile failure (fatal by design).
func (c *Ctx) sched(cfg arch.Config, g *trace.Graph) schedOut {
	k := schedKey{arch: cfg, graph: g.Fingerprint()}
	c.schedMu.Lock()
	defer c.schedMu.Unlock()
	if out, ok := c.schedMemo[k]; ok {
		return out
	}
	prog, err := sched.Compile(cfg, g)
	if err != nil {
		panic(err)
	}
	out := schedOut{exec: sched.Execute(prog), summary: sched.Summarize(prog)}
	if c.schedMemo == nil {
		c.schedMemo = make(map[schedKey]schedOut)
	}
	c.schedMemo[k] = out
	return out
}

// NewCtx returns a generation context. A nil engine means the Ctx owns a
// fresh one (default pool size, private cache) and Close tears it down;
// passing an engine shares its pool and cache and leaves its lifecycle to
// the caller.
func NewCtx(ctx context.Context, eng *engine.Engine) *Ctx {
	c := &Ctx{ctx: ctx, eng: eng}
	if eng == nil {
		c.eng = engine.New()
		c.owned = true
	}
	return c
}

// Engine exposes the underlying engine (for stats reporting).
func (c *Ctx) Engine() *engine.Engine { return c.eng }

// Close releases the context's own engine, if it owns one.
func (c *Ctx) Close() {
	if c.owned {
		c.eng.Close()
	}
}

// sim runs one Alchemist simulation through the engine, panicking on any
// failure (fatal by design while regenerating paper artifacts).
func (c *Ctx) sim(cfg arch.Config, g *trace.Graph) sim.Result {
	res := <-c.eng.Submit(c.ctx, engine.SimJob(cfg, g))
	if res.Err != nil {
		panic(res.Err)
	}
	return res.Sim
}

// baseline runs one modular-baseline simulation through the engine. The
// error is returned: several reports probe designs that legitimately cannot
// execute a workload (no FU pool for an op class) and print "-".
func (c *Ctx) baseline(cfg baseline.Config, g *trace.Graph) (baseline.Result, error) {
	res := <-c.eng.Submit(c.ctx, engine.BaselineJob(cfg, g))
	return res.Baseline, res.Err
}

// mustBaseline is baseline for the reports where failure is fatal.
func (c *Ctx) mustBaseline(cfg baseline.Config, g *trace.Graph) baseline.Result {
	res, err := c.baseline(cfg, g)
	if err != nil {
		panic(err)
	}
	return res
}

// All regenerates every report in paper order. Generators run concurrently
// — each is independent, and their simulations interleave on the engine's
// pool — but the returned slice order and every report's contents are
// deterministic: simulations are pure functions of (config, graph), and
// each generator assembles its own rows sequentially. The parallel-vs-
// serial byte-identity of the output is asserted by tests and the
// `alchemist sweep -verify` command.
func (c *Ctx) All() []*Report {
	gens := c.generators()
	out := make([]*Report, len(gens))
	var wg sync.WaitGroup
	for i, gen := range gens {
		wg.Add(1)
		go func(i int, gen func() *Report) {
			defer wg.Done()
			out[i] = gen()
		}(i, gen)
	}
	wg.Wait()
	return out
}

// generators returns every report generator in paper order. The serial
// reference path (tests, `alchemist sweep -verify`) walks this same list
// one generator at a time.
func (c *Ctx) generators() []func() *Report {
	return []func() *Report{
		c.Figure1, Table2, Table3, Table4, Table5, Table6, c.Table7,
		c.Figure6a, c.Figure6aPerfArea, c.Figure6b, c.Figure7a, c.Figure7b,
		AblationLaneWidth, c.AblationLazyReduction, AblationDataLayout,
		c.AblationUnitCount, c.AblationSRAMSize, c.AblationWordSize,
		c.Validation, c.CrossSchemeReport, c.Energy, KeySizes,
	}
}

// AllSerial regenerates every report one generator at a time on the calling
// goroutine. It is the determinism reference: All() must produce
// byte-identical output in any interleaving.
func (c *Ctx) AllSerial() []*Report {
	gens := c.generators()
	out := make([]*Report, len(gens))
	for i, gen := range gens {
		out[i] = gen()
	}
	return out
}

// All regenerates every report with a self-contained engine. Callers that
// want cache reuse across regenerations (sweeps, servers) should hold a Ctx
// instead.
func All() []*Report {
	c := NewCtx(context.Background(), nil)
	defer c.Close()
	return c.All()
}

// withCtx runs one generator under a short-lived default context (the
// package-level compatibility wrappers below).
func withCtx(gen func(*Ctx) *Report) *Report {
	c := NewCtx(context.Background(), nil)
	defer c.Close()
	return gen(c)
}

// Package-level wrappers for the engine-backed generators, preserving the
// original one-call-per-report API.

// Table7 regenerates the basic-operator throughput comparison.
func Table7() *Report { return withCtx((*Ctx).Table7) }

// Figure1 regenerates the operator-ratio and utilization comparison.
func Figure1() *Report { return withCtx((*Ctx).Figure1) }

// Figure6a regenerates the CKKS application comparison.
func Figure6a() *Report { return withCtx((*Ctx).Figure6a) }

// Figure6aPerfArea regenerates the performance-per-area comparison.
func Figure6aPerfArea() *Report { return withCtx((*Ctx).Figure6aPerfArea) }

// Figure6b regenerates the TFHE PBS comparison.
func Figure6b() *Report { return withCtx((*Ctx).Figure6b) }

// Figure7a regenerates the multiplication-overhead comparison.
func Figure7a() *Report { return withCtx((*Ctx).Figure7a) }

// Figure7b regenerates the utilization comparison.
func Figure7b() *Report { return withCtx((*Ctx).Figure7b) }

// AblationLazyReduction compares lazy vs eager reduction on full workloads.
func AblationLazyReduction() *Report { return withCtx((*Ctx).AblationLazyReduction) }

// AblationUnitCount sweeps the computing-unit count on bootstrapping.
func AblationUnitCount() *Report { return withCtx((*Ctx).AblationUnitCount) }

// AblationSRAMSize sweeps the per-unit scratchpad capacity.
func AblationSRAMSize() *Report { return withCtx((*Ctx).AblationSRAMSize) }

// AblationWordSize sweeps the RNS word size.
func AblationWordSize() *Report { return withCtx((*Ctx).AblationWordSize) }

// Validation cross-checks the aggregate simulator against the per-unit
// instruction-stream interpreter.
func Validation() *Report { return withCtx((*Ctx).Validation) }

// CrossSchemeReport runs the hybrid CKKS→TFHE pipeline everywhere.
func CrossSchemeReport() *Report { return withCtx((*Ctx).CrossSchemeReport) }

// Energy reports modelled energy per operation/application.
func Energy() *Report { return withCtx((*Ctx).Energy) }

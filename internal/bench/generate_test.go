package bench

import (
	"context"
	"strings"
	"testing"

	"alchemist/internal/engine"
)

func renderAll(reports []*Report) string {
	var b strings.Builder
	for _, r := range reports {
		b.WriteString(r.String())
		b.WriteByte('\n')
		b.WriteString(r.CSV())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelEqualsSerial is the engine determinism gate: the concurrent
// All() must render byte-identically to the single-goroutine,
// single-worker AllSerial() reference.
func TestParallelEqualsSerial(t *testing.T) {
	serialEng := engine.New(engine.WithWorkers(1))
	defer serialEng.Close()
	sc := NewCtx(context.Background(), serialEng)
	want := renderAll(sc.AllSerial())

	for i := 0; i < 3; i++ {
		pc := NewCtx(context.Background(), nil)
		got := renderAll(pc.All())
		pc.Close()
		if got != want {
			t.Fatalf("parallel run %d differs from serial reference", i)
		}
	}
}

// TestSharedCtxReuseIsStable checks that regenerating on a warm cache
// changes nothing.
func TestSharedCtxReuseIsStable(t *testing.T) {
	c := NewCtx(context.Background(), nil)
	defer c.Close()
	first := renderAll(c.All())
	second := renderAll(c.All())
	if first != second {
		t.Fatal("warm-cache regeneration changed report output")
	}
	st := c.Engine().Stats()
	if st.CacheHits == 0 {
		t.Fatalf("expected cache hits on regeneration, stats %+v", st)
	}
}

// BenchmarkReportsColdCache regenerates the full evaluation with a fresh
// engine (and empty cache) per iteration.
func BenchmarkReportsColdCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCtx(context.Background(), nil)
		if len(c.All()) == 0 {
			b.Fatal("no reports")
		}
		c.Close()
	}
}

// BenchmarkReportsWarmCache regenerates the full evaluation on a shared
// engine whose memo cache stays warm across iterations. The acceptance
// bar is ≥2x over BenchmarkReportsColdCache.
func BenchmarkReportsWarmCache(b *testing.B) {
	c := NewCtx(context.Background(), nil)
	defer c.Close()
	c.All() // warm the cache outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.All()) == 0 {
			b.Fatal("no reports")
		}
	}
}

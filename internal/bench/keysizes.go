package bench

import (
	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

// KeySizes reports the key-material footprints at the paper's parameter
// points — the quantities that drive the streaming side of the performance
// model (the keyswitch-class rows of Table 7 are bound by exactly these).
func KeySizes() *Report {
	r := &Report{
		ID:      "keysizes",
		Title:   "Key-material footprints at the evaluation parameters",
		Headers: []string{"Key", "parameters", "size", "notes"},
	}
	s := workload.PaperShape()
	app := workload.AppShape()
	n := s.N()
	mb := func(b int64) string { return f("%.1f MB", float64(b)/(1<<20)) }

	ctBytes := 2 * trace.PolyBytes(n, s.Channels, 1, s.WordBits)
	r.AddRow("CKKS ciphertext", "N=2^16, 44 ch", mb(ctBytes), "2 polys")
	r.AddRow("CKKS evk (full)", "dnum=4, K=12", mb(s.EvkBytes(s.Channels)),
		"streamed per keyswitch (Table 7)")
	r.AddRow("CKKS evk (seed-expanded)", "dnum=4, K=12", mb(app.EvkBytes(app.Channels)),
		"b-halves only (application schedules)")
	r.AddRow("CKKS evk at L=24", "dnum=4, K=12", mb(s.EvkBytes(24)),
		"keys shrink with level")

	p1 := workload.PBSSetI()
	bkBytes := int64(p1.NLwe) * p1.BKRowBytes()
	kskBytes := int64(p1.N*p1.KsT) * int64(p1.NLwe+1) * 4
	r.AddRow("TFHE bootstrapping key", p1.Name, mb(bkBytes),
		f("%d TRGSW rows, broadcast across the batch", p1.NLwe))
	r.AddRow("TFHE key-switch key", p1.Name, mb(kskBytes), "32-bit words")
	p2 := workload.PBSSetII()
	r.AddRow("TFHE bootstrapping key", p2.Name, mb(int64(p2.NLwe)*p2.BKRowBytes()), "")

	r.Notes = append(r.Notes,
		"one full CKKS evk does not fit the 64+2 MB scratchpad — the root cause of the evk-streaming bound",
		"a seed-expanded evk at reduced level does fit, enabling the EvalMod rlk caching the app schedules use")
	return r
}

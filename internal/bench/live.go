package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"alchemist/internal/bgv"
	"alchemist/internal/ckks"
	"alchemist/internal/ring"
	"alchemist/internal/tfhe"
)

// Live benchmarking: unlike the report generators (which regenerate the
// paper's tables from the accelerator model), the live suite measures the
// actual Go kernels this repository executes — NTT/INTT, basis conversion,
// the scheme evaluators and the engine's warm/cold report regeneration —
// and emits ns/op, B/op and allocs/op as JSON. Committed captures
// (BENCH_BASELINE.json before an optimization PR, BENCH_PR4.json after)
// make kernel speedups auditable in-repo:
//
//	alchemist bench -json -out BENCH_PR4.json
//	alchemist bench -json -baseline BENCH_BASELINE.json
//
// The ring benchmarks run at the paper's evaluation shape (N = 2^16 with
// the full 44-level modulus chain, following SHARP); -quick swaps in the
// functional-test parameters so CI smoke runs stay cheap.

// LiveResult is one measured kernel.
type LiveResult struct {
	Name        string  `json:"name"`
	Params      string  `json:"params"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iters       int     `json:"iters"`
}

// LiveSuite is a full capture, ready for JSON serialization.
type LiveSuite struct {
	Schema     string       `json:"schema"`
	Label      string       `json:"label"`
	GoVersion  string       `json:"go"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Quick      bool         `json:"quick"`
	Results    []LiveResult `json:"results"`
}

// LiveConfig selects what the live suite measures.
type LiveConfig struct {
	Label   string
	Workers int  // ring worker count (0 = runtime.NumCPU())
	Quick   bool // reduced parameter set for CI smoke runs
	// Best runs every kernel this many times and keeps the fastest pass
	// (1 or 0 = single pass). Tracked captures use best-of-N so a transient
	// load spike on a shared machine cannot print as a phantom regression:
	// the minimum over repeated passes estimates the kernel's unloaded cost,
	// which is the quantity the trajectory gate compares.
	Best int
	// Progress, when non-nil, receives one line per finished benchmark.
	Progress func(string)
}

func (cfg *LiveConfig) progress(format string, args ...interface{}) {
	if cfg.Progress != nil {
		cfg.Progress(fmt.Sprintf(format, args...))
	}
}

// liveCKKSParams returns the CKKS parameter set the suite measures the ring
// kernels at: the paper's evaluation shape, or the functional-test shape
// with -quick.
func liveCKKSParams(quick bool) (ckks.Parameters, string, error) {
	if quick {
		return ckks.TestParams(), "N=2^11 L=5", nil
	}
	// The paper's Table 7 shape (SHARP-style): N = 2^16, L = 44 scale
	// primes of 36 bits, dnum = 4, K = 12 special moduli.
	p, err := ckks.GenParams(16, 44, 4, 12, 49, 36, 49)
	if err != nil {
		return ckks.Parameters{}, "", err
	}
	return p, "N=2^16 L=44", nil
}

// RunLive measures the live kernel suite and returns the capture.
func RunLive(cfg LiveConfig) (*LiveSuite, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	suite := &LiveSuite{
		Schema:     "alchemist-bench/v1",
		Label:      cfg.Label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Quick:      cfg.Quick,
	}
	passes := cfg.Best
	if passes < 1 {
		passes = 1
	}
	add := func(name, params string, f func(b *testing.B)) {
		var res LiveResult
		for p := 0; p < passes; p++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				f(b)
			})
			cand := LiveResult{
				Name:        name,
				Params:      params,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				Iters:       r.N,
			}
			if p == 0 || cand.NsPerOp < res.NsPerOp {
				res = cand
			}
		}
		suite.Results = append(suite.Results, res)
		cfg.progress("%-28s %14.0f ns/op %12d B/op %8d allocs/op", name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	// Each suite's contexts (rings, keys, twiddle tables — hundreds of MB at
	// the paper shape) die when it returns; collect them before the next
	// suite starts so one suite's retained heap cannot skew another's
	// numbers through GC pacing or cache pressure.
	suites := []func() error{
		func() error { return liveRing(cfg, workers, add) },
		func() error { return liveCKKSKeyed(cfg, workers, add) },
		func() error { return liveCKKSKeySwitch(cfg, workers, add) },
		func() error { return liveTFHE(cfg, add) },
		func() error { return liveBGV(cfg, add) },
		func() error { liveEngine(cfg, add); return nil },
	}
	for _, run := range suites {
		if err := run(); err != nil {
			return nil, err
		}
		runtime.GC()
	}
	return suite, nil
}

// liveRing measures the RNS ring kernels (NTT, INTT, ModUp, automorphism)
// and the key-free CKKS rescale at the paper shape.
func liveRing(cfg LiveConfig, workers int, add func(string, string, func(*testing.B))) error {
	params, shape, err := liveCKKSParams(cfg.Quick)
	if err != nil {
		return err
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		return err
	}
	rq, rp := ctx.RQ, ctx.RP
	rq.SetWorkers(workers)
	rp.SetWorkers(workers)
	level := rq.MaxLevel()
	s := ring.NewSampler(rq, 1)

	p := rq.NewPoly(level)
	s.Uniform(level, p)
	add("ring/ntt", shape, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rq.NTT(level, p)
		}
	})
	add("ring/intt", shape, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rq.INTT(level, p)
		}
	})

	// ntt-par pins the worker pool to the host's full width so the
	// trajectory tracks the SIMD×parallel composition, not just the
	// single-thread kernel. On one-core hosts it degenerates to ring/ntt.
	add("ring/ntt-par", shape, func(b *testing.B) {
		rq.SetWorkers(runtime.GOMAXPROCS(0))
		defer rq.SetWorkers(workers)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rq.NTT(level, p)
		}
	})

	a := rq.NewPoly(level)
	s.Uniform(level, a)
	outP := rp.NewPoly(rp.MaxLevel())
	add("ring/modup", shape, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx.Ext.ModUp(level, a, outP)
		}
	})

	perm := rq.NewPoly(level)
	k := rq.GaloisElementForRotation(1)
	add("ring/automorphism-ntt", shape, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rq.AutomorphismNTT(level, a, k, perm)
		}
	})

	// Rescale needs no keys: a uniform ciphertext-shaped pair exercises the
	// same arithmetic as a real one.
	ct := &ckks.Ciphertext{
		B:     rq.Clone(level, a),
		A:     rq.Clone(level, p),
		Level: level,
		Scale: params.Scale * params.Scale,
	}
	ev := ckks.NewEvaluator(ctx, nil)
	add("ckks/rescale", shape, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := ev.Rescale(ct)
			if err != nil {
				b.Fatal(err)
			}
			liveRecycle(ctx, out)
		}
	})
	return nil
}

// liveCKKSKeyed measures the keyed CKKS operators (relinearization and
// rotation) at the functional-test shape, where key generation stays cheap.
func liveCKKSKeyed(cfg LiveConfig, workers int, add func(string, string, func(*testing.B))) error {
	params := ckks.TestParams()
	shape := "N=2^11 L=5"
	ctx, err := ckks.NewContext(params)
	if err != nil {
		return err
	}
	ctx.RQ.SetWorkers(workers)
	ctx.RP.SetWorkers(workers)
	kg := ckks.NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	hoistSteps := []int{1, 2, 3, 4, 5, 6, 7, 8}
	eks := kg.GenEvaluationKeySet(sk, hoistSteps, false)
	enc := ckks.NewEncoder(ctx)
	et := ckks.NewEncryptor(ctx, pk, 2)
	z := make([]complex128, params.Slots())
	for i := range z {
		z[i] = complex(float64(i%7)/7, 0)
	}
	level := params.MaxLevel()
	pt, err := enc.Encode(z, level, params.Scale)
	if err != nil {
		return err
	}
	ct1 := et.Encrypt(pt, level, params.Scale)
	ct2 := et.Encrypt(pt, level, params.Scale)
	ev := ckks.NewEvaluator(ctx, eks)

	add("ckks/mulrelin", shape, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := ev.MulRelin(ct1, ct2)
			if err != nil {
				b.Fatal(err)
			}
			liveRecycle(ctx, out)
		}
	})
	add("ckks/rotate", shape, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := ev.Rotate(ct1, 1)
			if err != nil {
				b.Fatal(err)
			}
			liveRecycle(ctx, out)
		}
	})

	return nil
}

// liveCKKSKeySwitch measures the fused lazy keyswitch pipeline against the
// eager reference at a keyswitch-bound shape: a deep modulus chain with a
// high digit count (L = 16 primes, dnum = 8, alpha = 2, K = 2), where the
// decompose → multiply-accumulate → base-convert structure dominates and
// hoisting has eight digit groups to amortize. The PR4-tracked kernels above
// keep their original shapes; these four entries are new in PR5.
func liveCKKSKeySwitch(cfg LiveConfig, workers int, add func(string, string, func(*testing.B))) error {
	params, err := ckks.GenParams(11, 15, 8, 2, 55, 40, 55)
	if err != nil {
		return err
	}
	shape := "N=2^11 L=15 dnum=8"
	ctx, err := ckks.NewContext(params)
	if err != nil {
		return err
	}
	ctx.RQ.SetWorkers(workers)
	ctx.RP.SetWorkers(workers)
	kg := ckks.NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	hoistSteps := []int{1, 2, 3, 4, 5, 6, 7, 8}
	eks := kg.GenEvaluationKeySet(sk, hoistSteps, false)
	enc := ckks.NewEncoder(ctx)
	et := ckks.NewEncryptor(ctx, pk, 2)
	z := make([]complex128, params.Slots())
	for i := range z {
		z[i] = complex(float64(i%7)/7, 0)
	}
	level := params.MaxLevel()
	pt, err := enc.Encode(z, level, params.Scale)
	if err != nil {
		return err
	}
	ct := et.Encrypt(pt, level, params.Scale)
	ev := ckks.NewEvaluator(ctx, eks)

	// Keyswitch head-to-head: the eager reference (per-group convert + NTT +
	// reduced accumulate) against the fused lazy pipeline (digit-batched
	// dual conversion, 128-bit accumulation, one deferred reduction).
	add("ckks/keyswitch-eager", shape, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ksB, ksA := ev.KeySwitch(level, ct.A, eks.Rlk)
			ctx.RQ.Release(ksB)
			ctx.RQ.Release(ksA)
		}
	})
	add("ckks/keyswitch-fused", shape, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ksB, ksA := ev.KeySwitchFused(level, ct.A, eks.Rlk)
			ctx.RQ.Release(ksB)
			ctx.RQ.Release(ksA)
		}
	})

	// 8-way rotation: one keyswitch per step (rotate8) against one shared
	// digit decomposition plus 8 permuted accumulations (rotate-hoisted8).
	var outs [8]*ckks.Ciphertext
	add("ckks/rotate8", shape, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, step := range hoistSteps {
				out, err := ev.Rotate(ct, step)
				if err != nil {
					b.Fatal(err)
				}
				liveRecycle(ctx, out)
			}
		}
	})
	add("ckks/rotate-hoisted8", shape, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ev.RotateHoistedInto(ct, hoistSteps, outs[:]); err != nil {
				b.Fatal(err)
			}
			for _, out := range outs {
				liveRecycle(ctx, out)
			}
		}
	})
	return nil
}

// liveTFHE measures the TFHE bootstrapping kernels.
func liveTFHE(cfg LiveConfig, add func(string, string, func(*testing.B))) error {
	params := tfhe.DefaultParams()
	if cfg.Quick {
		params = tfhe.FastTestParams()
	}
	s, err := tfhe.NewScheme(params, 7)
	if err != nil {
		return err
	}
	ct := s.EncryptBool(true)
	tv := s.GateTestVector(1 << 29)
	add("tfhe/blind-rotate", params.Name, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.BlindRotate(ct, tv)
		}
	})
	add("tfhe/bootstrap", params.Name, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Bootstrap(ct, tv); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Streaming bootstrapper: single-op latency through the trimmed FFT
	// engine, and aggregate throughput with the stage pipeline saturated by
	// a full micro-batch of in-flight jobs.
	boot, err := s.Bootstrapper(tfhe.WithTestVector(tv))
	if err != nil {
		return err
	}
	add("tfhe/bootstrap-stream", params.Name, func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			out, err := boot.Run(ctx, ct)
			if err != nil {
				b.Fatal(err)
			}
			boot.Recycle(out)
		}
	})
	const streamBatch = 8
	cts := make([]*tfhe.LweSample, streamBatch)
	for i := range cts {
		cts[i] = s.EncryptBool(i%2 == 0)
	}
	add("tfhe/bootstrap-stream-batch", params.Name, func(b *testing.B) {
		// Reported per job: issue b.N jobs through the pipeline in
		// micro-batch-sized bursts so blind-rotate and key-switch stages
		// always drain full batches.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		jobs, results := boot.Stream(ctx)
		done := make(chan error, 1)
		go func() {
			defer close(done)
			n := 0
			for res := range results {
				if res.Err != nil {
					done <- res.Err
					return
				}
				boot.Recycle(res.Out)
				if n++; n == b.N {
					return
				}
			}
		}()
		for i := 0; i < b.N; i++ {
			jobs <- tfhe.Job{Tag: i, Ct: cts[i%streamBatch]}
		}
		close(jobs)
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	})
	return nil
}

// liveBGV measures the BGV multiply-relinearize at the functional shape.
func liveBGV(cfg LiveConfig, add func(string, string, func(*testing.B))) error {
	params := bgv.TestParams()
	ctx, err := bgv.NewContext(params)
	if err != nil {
		return err
	}
	kg := bgv.NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	enc := bgv.NewEncoder(ctx)
	et := bgv.NewEncryptor(ctx, pk, 2)
	slots := make([]uint64, params.N())
	for i := range slots {
		slots[i] = uint64(i) % params.T
	}
	level := ctx.RQ.MaxLevel()
	pt, err := enc.Encode(slots, level)
	if err != nil {
		return err
	}
	ct1 := et.Encrypt(pt, level)
	ct2 := et.Encrypt(pt, level)
	ev := bgv.NewEvaluator(ctx, rlk)
	add("bgv/mulrelin", "N=2^7 L=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.MulRelin(ct1, ct2); err != nil {
				b.Fatal(err)
			}
		}
	})
	return nil
}

// liveEngine measures full report regeneration on cold and warm engine
// caches (the PR 2 acceptance surface).
func newLiveCtx() *Ctx { return NewCtx(context.Background(), nil) }

func liveEngine(cfg LiveConfig, add func(string, string, func(*testing.B))) {
	add("engine/reports-cold", "default arch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := newLiveCtx()
			if len(c.All()) == 0 {
				b.Fatal("no reports")
			}
			c.Close()
		}
	})
	warm := newLiveCtx()
	defer warm.Close()
	warm.All()
	add("engine/reports-warm", "default arch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(warm.All()) == 0 {
				b.Fatal("no reports")
			}
		}
	})
}

// WriteJSON writes the capture to path ("-" for stdout).
func (s *LiveSuite) WriteJSON(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadLiveSuite loads a previously written capture.
func ReadLiveSuite(path string) (*LiveSuite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s LiveSuite
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &s, nil
}

// Compare renders a speedup table of s (new) against base (old), matched by
// benchmark name. Names present on only one side are listed separately.
func (s *LiveSuite) Compare(base *LiveSuite) *Report {
	r := &Report{
		ID:      "bench-compare",
		Title:   fmt.Sprintf("live kernels: %s vs %s", s.Label, base.Label),
		Headers: []string{"kernel", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs"},
	}
	old := map[string]LiveResult{}
	for _, e := range base.Results {
		old[e.Name] = e
	}
	matched := map[string]bool{}
	var onlyNew, onlyOld []string
	for _, e := range s.Results {
		o, ok := old[e.Name]
		if !ok {
			onlyNew = append(onlyNew, e.Name)
			continue
		}
		matched[e.Name] = true
		r.AddRow(e.Name, f("%.0f", o.NsPerOp), f("%.0f", e.NsPerOp),
			ratio(o.NsPerOp, e.NsPerOp), f("%d", o.AllocsPerOp), f("%d", e.AllocsPerOp))
	}
	for _, e := range base.Results {
		if !matched[e.Name] {
			onlyOld = append(onlyOld, e.Name)
		}
	}
	sort.Strings(onlyNew)
	sort.Strings(onlyOld)
	if len(onlyNew) > 0 {
		r.Notes = append(r.Notes, "only in new capture: "+join(onlyNew))
	}
	if len(onlyOld) > 0 {
		r.Notes = append(r.Notes, "only in old capture: "+join(onlyOld))
	}
	return r
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// liveRecycle returns a ciphertext's buffers to the ring arena, so the
// measured loop reflects the steady-state of a long evaluation (borrow →
// compute → recycle) rather than per-op allocation. BENCH_BASELINE.json was
// captured when this was a no-op on the pre-pool substrate; the allocs/op
// delta between the two captures is the pooling win.
func liveRecycle(ctx *ckks.Context, ct *ckks.Ciphertext) {
	ctx.Recycle(ct)
}

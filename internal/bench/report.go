// Package bench regenerates every table and figure of the paper's
// evaluation from the models in this repository, formatted as aligned text
// and CSV. cmd/fhebench drives it from the command line; bench_test.go wraps
// each generator in a testing.B benchmark.
package bench

import (
	"fmt"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	ID      string // e.g. "table7", "fig6a"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// String renders an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the report as comma-separated values.
func (r *Report) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(r.Headers)
	for _, rw := range r.Rows {
		row(rw)
	}
	return b.String()
}

func f(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }

func ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return f("%.2fx", a/b)
}

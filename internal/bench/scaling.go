package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"alchemist/internal/tokens"
)

// Multi-worker scaling captures (schema alchemist-bench/v2).
//
// A v1 capture is one pass of the live suite at a single worker count. A v2
// capture wraps one sub-suite per requested worker count — each measured
// with GOMAXPROCS and the process-wide compute-token budget raised to match,
// so the ring scheduler can actually grant helpers — plus a derived scaling
// table: speedup of every kernel versus the workers=1 sub-suite and parallel
// efficiency (speedup divided by the worker count the host could physically
// grant, min(workers, NumCPU)). On a single-core host efficiency is reported
// against 1 effective worker: a ~1.0x "speedup" there is the honest result —
// the capture proves byte-identical composition and bounded overhead, not
// parallel wall-clock gains it physically cannot have.
//
// Comparisons refuse to match sub-suites captured under different
// (GOMAXPROCS, workers) settings: a serial capture diffed against a parallel
// one would print phantom regressions or phantom wins, so zero matching
// sub-suites is a hard error, not an empty table.

// SchemaV1 and SchemaV2 are the accepted capture schema tags.
const (
	SchemaV1 = "alchemist-bench/v1"
	SchemaV2 = "alchemist-bench/v2"
)

// ScalingRow is one kernel × worker-count point of the scaling table.
type ScalingRow struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	NsPerOp    float64 `json:"ns_per_op"`
	Speedup    float64 `json:"speedup"`    // ns(workers=1) / ns(workers=W)
	Efficiency float64 `json:"efficiency"` // Speedup / min(W, NumCPU)
}

// ScalingSuite is a multi-worker capture: one LiveSuite per worker count
// plus the derived scaling table.
type ScalingSuite struct {
	Schema    string       `json:"schema"`
	Label     string       `json:"label"`
	GoVersion string       `json:"go"`
	NumCPU    int          `json:"numcpu"`
	Subs      []*LiveSuite `json:"subs"`
	Scaling   []ScalingRow `json:"scaling,omitempty"`
}

// RunScaling measures the live suite once per worker count. Each pass runs
// with runtime.GOMAXPROCS and tokens.SetBudget raised to that count (both
// restored afterwards); without that, a capture on a host that booted with
// GOMAXPROCS=1 would silently measure the serial path at every count.
func RunScaling(cfg LiveConfig, workerCounts []int) (*ScalingSuite, error) {
	ss := &ScalingSuite{
		Schema:    SchemaV2,
		Label:     cfg.Label,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	oldProcs := runtime.GOMAXPROCS(0)
	oldBudget := tokens.Budget()
	defer func() {
		runtime.GOMAXPROCS(oldProcs)
		tokens.SetBudget(oldBudget)
	}()
	for _, w := range workerCounts {
		if w < 1 {
			return nil, fmt.Errorf("bench: worker count %d < 1", w)
		}
		procs := w
		if procs < oldProcs {
			procs = oldProcs
		}
		runtime.GOMAXPROCS(procs)
		tokens.SetBudget(procs)
		sub := cfg
		sub.Workers = w
		sub.Label = fmt.Sprintf("%s/workers=%d", cfg.Label, w)
		cfg.progress("--- workers=%d (GOMAXPROCS=%d) ---", w, procs)
		s, err := RunLive(sub)
		if err != nil {
			return nil, err
		}
		ss.Subs = append(ss.Subs, s)
	}
	ss.Scaling = ss.deriveScaling()
	return ss, nil
}

// deriveScaling computes speedup and efficiency for every kernel of every
// sub-suite against the workers=1 sub-suite (no rows if there isn't one).
func (ss *ScalingSuite) deriveScaling() []ScalingRow {
	var base *LiveSuite
	for _, s := range ss.Subs {
		if s.Workers == 1 {
			base = s
			break
		}
	}
	if base == nil {
		return nil
	}
	ref := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		ref[r.Name] = r.NsPerOp
	}
	var rows []ScalingRow
	for _, s := range ss.Subs {
		if s.Workers == 1 {
			continue
		}
		eff := s.Workers
		if ss.NumCPU < eff {
			eff = ss.NumCPU
		}
		if eff < 1 {
			eff = 1
		}
		for _, r := range s.Results {
			b, ok := ref[r.Name]
			if !ok || r.NsPerOp <= 0 {
				continue
			}
			sp := b / r.NsPerOp
			rows = append(rows, ScalingRow{
				Name:       r.Name,
				Workers:    s.Workers,
				NsPerOp:    r.NsPerOp,
				Speedup:    sp,
				Efficiency: sp / float64(eff),
			})
		}
	}
	return rows
}

// ScalingReport renders the scaling table.
func (ss *ScalingSuite) ScalingReport() *Report {
	r := &Report{
		ID:      "bench-scaling",
		Title:   fmt.Sprintf("parallel scaling: %s (NumCPU=%d)", ss.Label, ss.NumCPU),
		Headers: []string{"kernel", "workers", "ns/op", "speedup", "efficiency"},
	}
	for _, row := range ss.Scaling {
		r.AddRow(row.Name, f("%d", row.Workers), f("%.0f", row.NsPerOp),
			f("%.2fx", row.Speedup), f("%.0f%%", row.Efficiency*100))
	}
	return r
}

// scalingKernels are the kernels whose work is actually partitioned by the
// ring scheduler — the ones an efficiency floor may be asserted on. Kernels
// outside this set (TFHE pipeline, engine report cache) do not scale with
// ring workers by design.
var scalingKernels = map[string]bool{
	"ring/ntt":              true,
	"ring/intt":             true,
	"ring/ntt-par":          true,
	"ring/modup":            true,
	"ring/automorphism-ntt": true,
	"ckks/rescale":          true,
	"ckks/keyswitch-fused":  true,
}

// CheckEfficiencyFloor fails if any scheduler-partitioned kernel's parallel
// efficiency falls below floor. Only meaningful on hosts with NumCPU >= the
// captured worker counts; on narrower hosts min(W, NumCPU) normalization
// already reflects the physical limit.
func (ss *ScalingSuite) CheckEfficiencyFloor(floor float64) error {
	if floor <= 0 {
		return nil
	}
	var bad []string
	for _, row := range ss.Scaling {
		if scalingKernels[row.Name] && row.Efficiency < floor {
			bad = append(bad, fmt.Sprintf("%s@workers=%d: efficiency %.0f%% < floor %.0f%%",
				row.Name, row.Workers, row.Efficiency*100, floor*100))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench: %d kernel(s) under the efficiency floor:\n  %s",
			len(bad), joinLines(bad))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// ReadCapture loads a committed capture of either schema, normalizing a v1
// single suite into a one-sub ScalingSuite so the comparison path is
// uniform.
func ReadCapture(path string) (*ScalingSuite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	switch head.Schema {
	case SchemaV2:
		var ss ScalingSuite
		if err := json.Unmarshal(data, &ss); err != nil {
			return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
		}
		return &ss, nil
	case SchemaV1, "":
		var s LiveSuite
		if err := json.Unmarshal(data, &s); err != nil {
			return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
		}
		return &ScalingSuite{
			Schema:    SchemaV1,
			Label:     s.Label,
			GoVersion: s.GoVersion,
			Subs:      []*LiveSuite{&s},
		}, nil
	default:
		return nil, fmt.Errorf("bench: %s: unknown schema %q", path, head.Schema)
	}
}

// Wrap lifts a freshly measured single suite into the uniform capture shape.
func Wrap(s *LiveSuite) *ScalingSuite {
	return &ScalingSuite{Schema: SchemaV1, Label: s.Label, GoVersion: s.GoVersion, Subs: []*LiveSuite{s}}
}

// Comparable reports whether two sub-suites were measured under the same
// parallel configuration. Diffing across configurations is meaningless —
// the gap would be scheduling, not kernels.
func (s *LiveSuite) Comparable(base *LiveSuite) bool {
	return s.GOMAXPROCS == base.GOMAXPROCS && s.Workers == base.Workers
}

// MatchedPair is one comparable (new, base) sub-suite pair.
type MatchedPair struct {
	New, Base *LiveSuite
}

// MatchSubs pairs sub-suites by (GOMAXPROCS, workers). Zero pairs is a hard
// error: a gate run that silently compared nothing would always pass.
func MatchSubs(new, base *ScalingSuite) ([]MatchedPair, error) {
	var pairs []MatchedPair
	used := make([]bool, len(base.Subs))
	for _, n := range new.Subs {
		for i, b := range base.Subs {
			if !used[i] && n.Comparable(b) {
				pairs = append(pairs, MatchedPair{New: n, Base: b})
				used[i] = true
				break
			}
		}
	}
	if len(pairs) == 0 {
		var nw, bw []string
		for _, s := range new.Subs {
			nw = append(nw, fmt.Sprintf("gomaxprocs=%d/workers=%d", s.GOMAXPROCS, s.Workers))
		}
		for _, s := range base.Subs {
			bw = append(bw, fmt.Sprintf("gomaxprocs=%d/workers=%d", s.GOMAXPROCS, s.Workers))
		}
		return nil, fmt.Errorf(
			"bench: no comparable sub-suites: capture has [%s], baseline has [%s]; "+
				"re-capture with matching -workers and GOMAXPROCS",
			join(nw), join(bw))
	}
	return pairs, nil
}

// WriteJSON writes the capture to path ("-" for stdout).
func (ss *ScalingSuite) WriteJSON(path string) error {
	data, err := json.MarshalIndent(ss, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sub(gomaxprocs, workers int, results ...LiveResult) *LiveSuite {
	return &LiveSuite{
		Schema:     SchemaV1,
		GOMAXPROCS: gomaxprocs,
		Workers:    workers,
		Results:    results,
	}
}

func TestDeriveScaling(t *testing.T) {
	ss := &ScalingSuite{
		Schema: SchemaV2,
		NumCPU: 2,
		Subs: []*LiveSuite{
			sub(1, 1, LiveResult{Name: "ring/ntt", NsPerOp: 1000}),
			sub(4, 4, LiveResult{Name: "ring/ntt", NsPerOp: 500}, LiveResult{Name: "ring/new", NsPerOp: 10}),
		},
	}
	rows := ss.deriveScaling()
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1 (kernels without a workers=1 reference are skipped)", len(rows))
	}
	r := rows[0]
	if r.Name != "ring/ntt" || r.Workers != 4 {
		t.Fatalf("unexpected row %+v", r)
	}
	if r.Speedup != 2.0 {
		t.Errorf("speedup = %v, want 2.0", r.Speedup)
	}
	// 4 workers on a 2-CPU host: efficiency normalizes by min(4, 2) = 2.
	if r.Efficiency != 1.0 {
		t.Errorf("efficiency = %v, want 1.0", r.Efficiency)
	}
}

func TestDeriveScalingNoBaseline(t *testing.T) {
	ss := &ScalingSuite{Subs: []*LiveSuite{sub(4, 4, LiveResult{Name: "x", NsPerOp: 1})}}
	if rows := ss.deriveScaling(); rows != nil {
		t.Fatalf("no workers=1 sub-suite must yield no scaling rows, got %v", rows)
	}
}

func TestCheckEfficiencyFloor(t *testing.T) {
	ss := &ScalingSuite{
		Scaling: []ScalingRow{
			{Name: "ring/ntt", Workers: 4, Efficiency: 0.9},
			{Name: "ring/modup", Workers: 4, Efficiency: 0.2},
			{Name: "tfhe/bootstrap", Workers: 4, Efficiency: 0.01}, // not scheduler-partitioned: exempt
		},
	}
	if err := ss.CheckEfficiencyFloor(0); err != nil {
		t.Fatalf("floor 0 must disable the check: %v", err)
	}
	if err := ss.CheckEfficiencyFloor(0.1); err != nil {
		t.Fatalf("all partitioned kernels above 0.1: %v", err)
	}
	err := ss.CheckEfficiencyFloor(0.5)
	if err == nil {
		t.Fatal("ring/modup at 0.2 must trip a 0.5 floor")
	}
	if !strings.Contains(err.Error(), "ring/modup") || strings.Contains(err.Error(), "tfhe/bootstrap") {
		t.Fatalf("floor error must name ring/modup and exempt tfhe/bootstrap: %v", err)
	}
}

func TestMatchSubsPairsByConfig(t *testing.T) {
	newC := &ScalingSuite{Subs: []*LiveSuite{sub(1, 1), sub(4, 4)}}
	base := &ScalingSuite{Subs: []*LiveSuite{sub(1, 1)}}
	pairs, err := MatchSubs(newC, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].New.Workers != 1 || pairs[0].Base.Workers != 1 {
		t.Fatalf("got %d pairs %v, want the single workers=1 pair", len(pairs), pairs)
	}
}

func TestMatchSubsMismatchIsHardError(t *testing.T) {
	newC := &ScalingSuite{Subs: []*LiveSuite{sub(4, 4)}}
	base := &ScalingSuite{Subs: []*LiveSuite{sub(1, 1)}}
	if _, err := MatchSubs(newC, base); err == nil {
		t.Fatal("comparing gomaxprocs=4/workers=4 against gomaxprocs=1/workers=1 must be a hard error")
	} else if !strings.Contains(err.Error(), "gomaxprocs=4/workers=4") {
		t.Fatalf("error must spell out both configurations: %v", err)
	}
}

func TestReadCaptureNormalizesSchemas(t *testing.T) {
	dir := t.TempDir()

	v1 := &LiveSuite{Schema: SchemaV1, Label: "v1cap", GOMAXPROCS: 1, Workers: 1,
		Results: []LiveResult{{Name: "ring/ntt", NsPerOp: 10}}}
	v1Path := filepath.Join(dir, "v1.json")
	if err := v1.WriteJSON(v1Path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCapture(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Subs) != 1 || got.Subs[0].Workers != 1 || got.Label != "v1cap" {
		t.Fatalf("v1 capture not normalized to a one-sub suite: %+v", got)
	}

	v2 := &ScalingSuite{Schema: SchemaV2, Label: "v2cap", NumCPU: 1,
		Subs: []*LiveSuite{sub(1, 1), sub(4, 4)}}
	v2Path := filepath.Join(dir, "v2.json")
	if err := v2.WriteJSON(v2Path); err != nil {
		t.Fatal(err)
	}
	got, err = ReadCapture(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Subs) != 2 || got.Label != "v2cap" {
		t.Fatalf("v2 capture round-trip lost subs: %+v", got)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"alchemist-bench/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCapture(bad); err == nil {
		t.Fatal("unknown schema must be rejected")
	}
}

func TestScalingReportRenders(t *testing.T) {
	ss := &ScalingSuite{
		Label:  "x",
		NumCPU: 4,
		Scaling: []ScalingRow{
			{Name: "ring/ntt", Workers: 4, NsPerOp: 250, Speedup: 3.2, Efficiency: 0.8},
		},
	}
	out := ss.ScalingReport().String()
	for _, want := range []string{"ring/ntt", "3.20x", "80%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

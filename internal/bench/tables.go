package bench

import (
	"alchemist/internal/arch"
	"alchemist/internal/area"
	"alchemist/internal/baseline"
	"alchemist/internal/metaop"
	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

// Table2 regenerates the DecompPolyMult transformation costs.
func Table2() *Report {
	r := &Report{
		ID:      "table2",
		Title:   "Transformation of DecompPolyMult (raw multiplications)",
		Headers: []string{"dnum", "N", "origin 3*dnum*N", "MetaOP (dnum+2)*N", "saving"},
	}
	n := 65536
	for _, dnum := range []int{1, 2, 3, 4, 6, 8} {
		origin := metaop.DecompPolyMultMults(dnum, n, false)
		lazy := metaop.DecompPolyMultMults(dnum, n, true)
		r.AddRow(f("%d", dnum), f("%d", n), f("%d", origin), f("%d", lazy),
			f("%.1f%%", 100*(1-float64(lazy)/float64(origin))))
	}
	r.Notes = append(r.Notes, "saving approaches 3x as dnum grows (paper Table 2)")
	return r
}

// Table3 regenerates the ModUp transformation costs.
func Table3() *Report {
	r := &Report{
		ID:      "table3",
		Title:   "Transformation of ModUp (raw multiplications)",
		Headers: []string{"L", "K", "N", "origin (3KL+3L)N", "MetaOP (KL+3L+2K)N", "saving"},
	}
	n := 65536
	for _, c := range []struct{ l, k int }{{2, 2}, {4, 4}, {11, 12}, {22, 12}, {44, 12}} {
		origin := metaop.ModupMults(c.l, c.k, n, false)
		lazy := metaop.ModupMults(c.l, c.k, n, true)
		r.AddRow(f("%d", c.l), f("%d", c.k), f("%d", n), f("%d", origin), f("%d", lazy),
			f("%.1f%%", 100*(1-float64(lazy)/float64(origin))))
	}
	return r
}

// Table4 regenerates the access-pattern table.
func Table4() *Report {
	r := &Report{
		ID:      "table4",
		Title:   "Data access pattern of the three operations",
		Headers: []string{"Computation", "Slots", "Channel", "Dnum_group"},
	}
	r.AddRow("(I)NTT", "yes", "-", "-")
	r.AddRow("DecompPolyMult", "-", "-", "yes")
	r.AddRow("Modup/down", "-", "yes", "-")
	r.Notes = append(r.Notes,
		"patterns are enforced by metaop.Lower*: see metaop.AccessPattern")
	return r
}

// Table5 regenerates the area breakdown from the analytical model.
func Table5() *Report {
	b := area.Estimate(arch.Default())
	r := &Report{
		ID:      "table5",
		Title:   "Area breakdown of Alchemist (mm^2, 14nm)",
		Headers: []string{"Component", "model", "paper"},
	}
	r.AddRow("1x Core Cluster (16x CORE)", f("%.3f", b.CoreCluster), "0.688")
	r.AddRow("1x Local SRAM", f("%.3f", b.LocalSRAM), "0.427")
	r.AddRow("1x Computing Unit", f("%.3f", b.ComputingUnit), "1.118")
	r.AddRow("128x Computing Unit", f("%.3f", b.AllUnits), "143.104")
	r.AddRow("Register file for transpose", f("%.3f", b.TransposeRF), "6.380")
	r.AddRow("Shared memory", f("%.3f", b.SharedMemory), "1.801")
	r.AddRow("Memory interface (2x HBM2 PHY)", f("%.3f", b.MemInterface), "29.801")
	r.AddRow("Total", f("%.3f", b.Total), "181.086")
	return r
}

// Table6 regenerates the accelerator resource comparison.
func Table6() *Report {
	r := &Report{
		ID:    "table6",
		Title: "Resource usage in FHE accelerators",
		Headers: []string{"Design", "AC", "LC", "off-chip BW", "on-chip cap",
			"freq", "area(14nm)"},
	}
	for _, row := range baseline.Table6() {
		ac, lc := "-", "-"
		if row.Arithmetic {
			ac = "yes"
		}
		if row.Logic {
			lc = "yes"
		}
		r.AddRow(row.Name, ac, lc, f("%.0f GB/s", row.OffChipGBs),
			f("%.0f MB", row.OnChipMB), f("%.1f GHz", row.FreqGHz),
			f("%.1f mm^2", row.AreaScaledMM2))
	}
	b := area.Estimate(arch.Default())
	r.Notes = append(r.Notes,
		f("Alchemist row cross-checked against the area model: %.1f mm^2", b.Total))
	return r
}

// Table7 regenerates the basic-operator throughput comparison.
func (c *Ctx) Table7() *Report {
	r := &Report{
		ID:    "table7",
		Title: "Throughput for basic operators (ops/s), N=2^16, L=44, dnum=4",
		Headers: []string{"Op", "CPU(paper)", "GPU(paper)", "Poseidon(paper)",
			"Alchemist(paper)", "Alchemist(model)", "model/paper"},
	}
	s := workload.PaperShape()
	cfg := arch.Default()
	reps := 4
	model := map[string]float64{}
	single := func(g *trace.Graph) float64 {
		return 1 / c.sim(cfg, g).Seconds
	}
	through := func(g *trace.Graph) float64 {
		return float64(reps) / c.sim(cfg, g).Seconds
	}
	model["Pmult"] = single(workload.Pmult(s))
	model["Hadd"] = single(workload.Hadd(s))
	model["Keyswitch"] = through(workload.KeyswitchThroughput(s, reps))
	model["Cmult"] = through(workload.CmultThroughput(s, reps))
	model["Rotation"] = through(workload.RotationThroughput(s, reps))
	for _, row := range baseline.Table7() {
		gpu := "-"
		if row.GPU > 0 {
			gpu = f("%.0f", row.GPU)
		}
		m := model[row.Op]
		r.AddRow(row.Op, f("%.2f", row.CPU), gpu, f("%.0f", row.Poseidon),
			f("%.0f", row.Alchemist), f("%.0f", m), f("%.2f", m/row.Alchemist))
	}
	r.Notes = append(r.Notes,
		"Pmult/Hadd are exact by the Meta-OP timing contract; keyswitch-class ops are evk-bandwidth-bound",
		"live Go CPU latencies for the same operators are measured in bench_test.go (BenchmarkCPU*)")
	return r
}

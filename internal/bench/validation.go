package bench

import (
	"alchemist/internal/arch"
	"alchemist/internal/area"
	"alchemist/internal/baseline"
	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

// Validation cross-checks the two independent performance models: the
// aggregate simulator (internal/sim) and the per-unit instruction-stream
// interpreter (internal/sched). Agreement within per-unit quantization
// bounds is evidence the cycle counts are not an artifact of either model.
func (c *Ctx) Validation() *Report {
	r := &Report{
		ID:    "validation",
		Title: "Aggregate simulator vs per-unit instruction streams",
		Headers: []string{"Workload", "aggregate cycles", "per-unit cycles",
			"delta", "local phases", "imbalance"},
	}
	s := workload.PaperShape()
	app := workload.AppShape()
	cfg := arch.Default()
	cases := []*trace.Graph{
		workload.Pmult(s),
		workload.Keyswitch(s),
		workload.Cmult(s),
		workload.Bootstrap(app, workload.DefaultBootstrapConfig()),
		workload.PBSBatch(workload.PBSSetI(), 128),
		workload.SchemeSwitch(app, workload.PBSSetI(), 128),
	}
	for _, g := range cases {
		agg := c.sim(cfg, g)
		sr := c.sched(cfg, g)
		per, sum := sr.exec, sr.summary
		r.AddRow(g.Name, f("%d", agg.Cycles), f("%d", per.Cycles),
			f("%+.1f%%", 100*(float64(per.Cycles)/float64(agg.Cycles)-1)),
			f("%d/%d", sum.LocalPhases, sum.Phases),
			f("%.3f", per.Imbalance))
	}
	r.Notes = append(r.Notes,
		"local phases = phases touching only private scratchpads (§5.3); the rest cross the transpose RF",
		"imbalance = max/mean per-unit busy cycles (1.0 = the slot partitioning balances perfectly)")
	return r
}

// CrossSchemeReport runs the hybrid CKKS→TFHE pipeline (the bridge of
// internal/bridge as an accelerator workload) on Alchemist and every
// baseline that can execute it.
func (c *Ctx) CrossSchemeReport() *Report {
	r := &Report{
		ID:    "cross-scheme",
		Title: "Cross-scheme pipeline (CKKS compute -> bridge -> TFHE PBS)",
		Headers: []string{"Design", "runs?", "ms", "utilization",
			"energy (model, mJ)"},
	}
	g := workload.SchemeSwitch(workload.AppShape(), workload.PBSSetI(), 128)
	cfg := arch.Default()
	res := c.sim(cfg, g)
	r.AddRow("Alchemist", "yes", f("%.3f", res.Seconds*1e3),
		f("%.2f", res.ComputeUtilization),
		f("%.1f", 1e3*area.EnergyJoules(cfg, res.Seconds, res.Utilization)))
	for _, bc := range append(baseline.ArithmeticBaselines(), baseline.LogicBaselines()...) {
		bres, err := c.baseline(bc, g)
		if err != nil {
			r.AddRow(bc.Name, "no ("+failureClass(bc)+")", "-", "-", "-")
			continue
		}
		r.AddRow(bc.Name, "yes", f("%.3f", bres.Seconds*1e3), f("%.2f", bres.Overall), "-")
	}
	r.Notes = append(r.Notes,
		"the TFHE-only ASICs have no Bconv datapath for the CKKS half — only the unified design runs the whole pipeline natively")
	return r
}

func failureClass(c baseline.Config) string {
	if c.Logic && !c.Arithmetic {
		return "no Bconv datapath"
	}
	return "unsupported ops"
}

// Energy reports modelled energy per operation/application on Alchemist.
func (c *Ctx) Energy() *Report {
	r := &Report{
		ID:      "energy",
		Title:   "Energy model (77.9 W average at the paper's design point)",
		Headers: []string{"Workload", "time", "avg power (W)", "energy"},
	}
	cfg := arch.Default()
	app := workload.AppShape()
	cases := []struct {
		name string
		g    *trace.Graph
		per  float64 // divide for per-op metrics
	}{
		{"Cmult", workload.CmultThroughput(workload.PaperShape(), 4), 4},
		{"bootstrap", workload.Bootstrap(app, workload.DefaultBootstrapConfig()), 1},
		{"helr-block", workload.HELRBlock(app, workload.DefaultHELRConfig(), workload.DefaultBootstrapConfig()), 1},
		{"pbs-batch128", workload.PBSBatch(workload.PBSSetI(), 128), 128},
	}
	for _, wc := range cases {
		res := c.sim(cfg, wc.g)
		p := area.Power(cfg, res.Utilization)
		e := area.EnergyJoules(cfg, res.Seconds, res.Utilization) / wc.per
		r.AddRow(wc.name, f("%.3g ms", res.Seconds*1e3/wc.per), f("%.1f", p),
			f("%.3g mJ", e*1e3))
	}
	return r
}

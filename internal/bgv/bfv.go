package bgv

import (
	"fmt"
	"math/big"

	"alchemist/internal/ring"
)

// BFV — the scale-invariant arithmetic scheme the paper names alongside
// CKKS — shares this package's substrate: the same parameters, rings, keys
// and hybrid key switch. Messages live in the HIGH bits (Δ·m with
// Δ = ⌊Q/t⌋) instead of BGV's low bits, so multiplication needs the
// ⌈(t/Q)·c1⊗c2⌋ scale-and-round. This implementation performs that tensor
// exactly over big integers — a reference path that is bit-exact and fast
// enough at test scale (the RNS-HPS fast path is engineering, not
// semantics, and the accelerator-side costs are identical to BGV's).

// BFVCiphertext is a degree-1 BFV ciphertext (decryption ⌈(t/Q)(B+A·s)⌋).
type BFVCiphertext struct {
	B, A  *ring.Poly
	Level int
}

// Delta returns Δ = ⌊Q_level / t⌋.
func (c *Context) Delta(level int) *big.Int {
	return new(big.Int).Div(c.RQ.Modulus(level), new(big.Int).SetUint64(c.Params.T))
}

// EncodeBFV packs slots and scales them by Δ (the BFV plaintext embedding).
func (e *Encoder) EncodeBFV(slots []uint64, level int) (*ring.Poly, error) {
	pt, err := e.Encode(slots, level)
	if err != nil {
		return nil, err
	}
	out := e.ctx.RQ.NewPoly(level)
	e.ctx.RQ.MulScalarBig(level, pt, e.ctx.Delta(level), out)
	return out, nil
}

// EncryptBFV encrypts a Δ-scaled plaintext under the (shared) public key.
func (e *Encryptor) EncryptBFV(pt *ring.Poly, level int) *BFVCiphertext {
	ct := e.Encrypt(pt, level)
	return &BFVCiphertext{B: ct.B, A: ct.A, Level: ct.Level}
}

// DecryptBFV recovers the slots: per coefficient, ⌈t·(B+A·s)/Q⌋ mod t.
func (d *Decryptor) DecryptBFV(enc *Encoder, ct *BFVCiphertext) []uint64 {
	ctx := d.ctx
	x := ctx.RQ.NewPoly(ct.Level)
	ctx.RQ.MulPoly(ct.Level, ct.A, d.sk.Q, x)
	ctx.RQ.Add(ct.Level, x, ct.B, x)

	q := ctx.RQ.Modulus(ct.Level)
	t := new(big.Int).SetUint64(ctx.Params.T)
	half := new(big.Int).Rsh(q, 1)
	coeffs := make([]uint64, ctx.Params.N())
	big2 := new(big.Int)
	for j, c := range ctx.RQ.PolyToBigCoeffs(ct.Level, x) {
		if c.Cmp(half) > 0 {
			c.Sub(c, q)
		}
		// round(t·c / Q) mod t.
		big2.Mul(c, t)
		rounded := roundDiv(big2, q)
		rounded.Mod(rounded, t)
		if rounded.Sign() < 0 {
			rounded.Add(rounded, t)
		}
		coeffs[j] = rounded.Uint64()
	}
	ctx.RT.NTT(coeffs)
	return coeffs
}

// roundDiv returns round(a/b) for b > 0 (ties away from zero).
func roundDiv(a, b *big.Int) *big.Int {
	two := big.NewInt(2)
	halfB := new(big.Int).Div(b, two)
	out := new(big.Int)
	if a.Sign() >= 0 {
		out.Add(a, halfB)
	} else {
		out.Sub(a, halfB)
	}
	return out.Quo(out, b)
}

// AddBFV returns a + b.
func (ev *Evaluator) AddBFV(a, b *BFVCiphertext) *BFVCiphertext {
	level := a.Level
	if b.Level < level {
		level = b.Level
	}
	out := &BFVCiphertext{B: ev.ctx.RQ.NewPoly(level), A: ev.ctx.RQ.NewPoly(level), Level: level}
	ev.ctx.RQ.Add(level, a.B, b.B, out.B)
	ev.ctx.RQ.Add(level, a.A, b.A, out.A)
	return out
}

// MulPlainBFV multiplies by an UNSCALED plaintext (Encoder.Encode, not
// EncodeBFV): Δm1·m2 stays Δ-scaled.
func (ev *Evaluator) MulPlainBFV(ct *BFVCiphertext, pt *ring.Poly) *BFVCiphertext {
	level := ct.Level
	out := &BFVCiphertext{B: ev.ctx.RQ.NewPoly(level), A: ev.ctx.RQ.NewPoly(level), Level: level}
	ev.ctx.RQ.MulPoly(level, ct.B, pt, out.B)
	ev.ctx.RQ.MulPoly(level, ct.A, pt, out.A)
	return out
}

// MulBFV multiplies two BFV ciphertexts: the exact big-integer tensor,
// the ⌈(t/Q)·⌋ scale-and-round, then relinearization with the shared
// hybrid key switch.
func (ev *Evaluator) MulBFV(a, b *BFVCiphertext) (*BFVCiphertext, error) {
	if ev.rlk == nil {
		return nil, fmt.Errorf("bgv: relinearization key missing")
	}
	ctx := ev.ctx
	level := a.Level
	if b.Level < level {
		level = b.Level
	}
	q := ctx.RQ.Modulus(level)
	t := new(big.Int).SetUint64(ctx.Params.T)

	b1 := centeredCoeffs(ctx, level, a.B, q)
	a1 := centeredCoeffs(ctx, level, a.A, q)
	b2 := centeredCoeffs(ctx, level, b.B, q)
	a2 := centeredCoeffs(ctx, level, b.A, q)

	d0 := negacyclicBig(b1, b2)
	d1 := addBig(negacyclicBig(b1, a2), negacyclicBig(a1, b2))
	d2 := negacyclicBig(a1, a2)

	scale := func(d []*big.Int) *ring.Poly {
		p := ctx.RQ.NewPoly(level)
		tmp := new(big.Int)
		for j, c := range d {
			tmp.Mul(c, t)
			d[j] = roundDiv(tmp, q)
		}
		ctx.RQ.SetBigCoeffs(level, d, p)
		return p
	}
	p0, p1, p2 := scale(d0), scale(d1), scale(d2)

	ksB, ksA := ev.keySwitch(level, p2, ev.rlk)
	ctx.RQ.Add(level, p0, ksB, p0)
	ctx.RQ.Add(level, p1, ksA, p1)
	return &BFVCiphertext{B: p0, A: p1, Level: level}, nil
}

func centeredCoeffs(ctx *Context, level int, p *ring.Poly, q *big.Int) []*big.Int {
	half := new(big.Int).Rsh(q, 1)
	out := ctx.RQ.PolyToBigCoeffs(level, p)
	for _, c := range out {
		if c.Cmp(half) > 0 {
			c.Sub(c, q)
		}
	}
	return out
}

// negacyclicBig computes a·b mod (X^N + 1) over big integers.
func negacyclicBig(a, b []*big.Int) []*big.Int {
	n := len(a)
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int)
	}
	tmp := new(big.Int)
	for i := 0; i < n; i++ {
		if a[i].Sign() == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if b[j].Sign() == 0 {
				continue
			}
			tmp.Mul(a[i], b[j])
			k := i + j
			if k < n {
				out[k].Add(out[k], tmp)
			} else {
				out[k-n].Sub(out[k-n], tmp)
			}
		}
	}
	return out
}

func addBig(a, b []*big.Int) []*big.Int {
	for i := range a {
		a[i].Add(a[i], b[i])
	}
	return a
}

package bgv

import "testing"

func (h *harness) encryptBFV(tb testing.TB, slots []uint64) *BFVCiphertext {
	tb.Helper()
	pt, err := h.enc.EncodeBFV(slots, h.ctx.Params.MaxLevel())
	if err != nil {
		tb.Fatal(err)
	}
	return h.et.EncryptBFV(pt, h.ctx.Params.MaxLevel())
}

func TestBFVEncryptDecryptExact(t *testing.T) {
	h := newHarness(t)
	slots := randSlots(h.ctx.Params.N(), h.ctx.Params.T, 41)
	ct := h.encryptBFV(t, slots)
	assertEq(t, h.dt.DecryptBFV(h.enc, ct), slots, "bfv enc/dec")
}

func TestBFVAddExact(t *testing.T) {
	h := newHarness(t)
	tmod := h.ctx.Params.T
	z1 := randSlots(h.ctx.Params.N(), tmod, 42)
	z2 := randSlots(h.ctx.Params.N(), tmod, 43)
	c1, c2 := h.encryptBFV(t, z1), h.encryptBFV(t, z2)
	want := make([]uint64, len(z1))
	for i := range z1 {
		want[i] = (z1[i] + z2[i]) % tmod
	}
	assertEq(t, h.dt.DecryptBFV(h.enc, h.ev.AddBFV(c1, c2)), want, "bfv add")
}

func TestBFVMulPlainExact(t *testing.T) {
	h := newHarness(t)
	tmod := h.ctx.Params.T
	z := randSlots(h.ctx.Params.N(), tmod, 44)
	w := randSlots(h.ctx.Params.N(), tmod, 45)
	ct := h.encryptBFV(t, z)
	pt, err := h.enc.Encode(w, ct.Level) // unscaled plaintext
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, len(z))
	for i := range z {
		want[i] = z[i] * w[i] % tmod
	}
	assertEq(t, h.dt.DecryptBFV(h.enc, h.ev.MulPlainBFV(ct, pt)), want, "bfv pmult")
}

func TestBFVMulExact(t *testing.T) {
	h := newHarness(t)
	tmod := h.ctx.Params.T
	z1 := randSlots(h.ctx.Params.N(), tmod, 46)
	z2 := randSlots(h.ctx.Params.N(), tmod, 47)
	c1, c2 := h.encryptBFV(t, z1), h.encryptBFV(t, z2)
	prod, err := h.ev.MulBFV(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, len(z1))
	for i := range z1 {
		want[i] = z1[i] * z2[i] % tmod
	}
	assertEq(t, h.dt.DecryptBFV(h.enc, prod), want, "bfv cmult")
}

func TestBFVMulDepthTwoScaleInvariant(t *testing.T) {
	// BFV is scale-invariant: no rescaling between multiplications.
	h := newHarness(t)
	tmod := h.ctx.Params.T
	z1 := randSlots(h.ctx.Params.N(), tmod, 48)
	z2 := randSlots(h.ctx.Params.N(), tmod, 49)
	z3 := randSlots(h.ctx.Params.N(), tmod, 50)
	c1, c2, c3 := h.encryptBFV(t, z1), h.encryptBFV(t, z2), h.encryptBFV(t, z3)
	p12, err := h.ev.MulBFV(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	p123, err := h.ev.MulBFV(p12, c3)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, len(z1))
	for i := range z1 {
		want[i] = z1[i] * z2[i] % tmod * z3[i] % tmod
	}
	assertEq(t, h.dt.DecryptBFV(h.enc, p123), want, "bfv depth-2")
}

func TestBFVMissingRlk(t *testing.T) {
	h := newHarness(t)
	ev := NewEvaluator(h.ctx, nil)
	z := randSlots(h.ctx.Params.N(), h.ctx.Params.T, 51)
	ct := h.encryptBFV(t, z)
	if _, err := ev.MulBFV(ct, ct); err == nil {
		t.Fatal("expected missing-rlk error")
	}
}

// Package bgv implements the BGV leveled arithmetic FHE scheme (the
// modulus-switching sibling of BFV, the paper's other "arithmetic FHE"
// example) on the same RNS/NTT substrate as CKKS. Messages are vectors over
// Z_t packed into slots via the negacyclic NTT modulo t; homomorphic
// arithmetic is exact modulo t.
//
// Structure mirrors internal/ckks: hybrid (dnum) key switching with the
// same gadget, but with all ciphertext and key errors scaled by t and the
// ModDown/rescale steps made t-exact (ring.ModDownExact plus the BGV
// modulus-switch correction), so noise management never perturbs the
// plaintext.
package bgv

import (
	"fmt"
	"math/big"
	"sync"

	"alchemist/internal/modmath"
	"alchemist/internal/prng"
	"alchemist/internal/ring"
)

// Parameters describes a BGV instance.
type Parameters struct {
	LogN  int
	T     uint64   // plaintext modulus: prime with t ≡ 1 (mod 2N)
	Q     []uint64 // ciphertext chain; every q_i ≡ 1 (mod 2N·t)
	P     []uint64 // special moduli;   every p_j ≡ 1 (mod 2N·t)
	Dnum  int
	Sigma float64
}

// N returns the ring degree.
func (p Parameters) N() int { return 1 << p.LogN }

// MaxLevel returns the top level.
func (p Parameters) MaxLevel() int { return len(p.Q) - 1 }

// Alpha returns the digit-group width.
func (p Parameters) Alpha() int { return (len(p.Q) + p.Dnum - 1) / p.Dnum }

// Validate checks structural consistency.
func (p Parameters) Validate() error {
	if p.LogN < 3 || p.LogN > 17 {
		return fmt.Errorf("bgv: LogN out of range")
	}
	// 2N is a power of two, so t ≡ 1 (mod 2N) reduces to a mask.
	if !modmath.IsPrime(p.T) || (p.T-1)&uint64(2*p.N()-1) != 0 {
		return fmt.Errorf("bgv: t=%d must be a prime ≡ 1 mod 2N", p.T)
	}
	bt := modmath.NewBarrett(p.T)
	for _, q := range append(append([]uint64{}, p.Q...), p.P...) {
		if bt.ReduceWord(q-1) != 0 {
			return fmt.Errorf("bgv: modulus %d is not ≡ 1 mod t", q)
		}
	}
	if p.Dnum < 1 || p.Dnum > len(p.Q) {
		return fmt.Errorf("bgv: bad Dnum")
	}
	if len(p.P) == 0 {
		return fmt.Errorf("bgv: need special moduli")
	}
	return nil
}

// GenParams generates a BGV parameter set: `levels`+1 chain primes and k
// special primes of the given sizes, all ≡ 1 (mod 2N·t).
func GenParams(logN, levels, dnum, k int, qBits, pBits uint64, t uint64) (Parameters, error) {
	n2t := uint64(2) << uint(logN)
	n2t *= t
	need := map[uint64]int{qBits: levels + 1}
	need[pBits] += k
	pools := map[uint64][]uint64{}
	for bits, count := range need {
		ps, err := modmath.GenerateNTTPrimes(bits, n2t, count)
		if err != nil {
			return Parameters{}, err
		}
		pools[bits] = ps
	}
	q := pools[qBits][:levels+1]
	pools[qBits] = pools[qBits][levels+1:]
	p := pools[pBits][:k]
	params := Parameters{LogN: logN, T: t, Q: q, P: p, Dnum: dnum, Sigma: 3.2}
	return params, params.Validate()
}

// TestParams returns a fast functional set: N=2^7, t=65537, 5 levels,
// per-prime digits (alpha=1) so P comfortably dominates the key-switch
// noise. Panics if the fixed generation recipe fails (it cannot, short of a
// regression in GenParams).
func TestParams() Parameters {
	p, err := GenParams(7, 4, 5, 2, 45, 46, 65537)
	if err != nil {
		panic(err)
	}
	return p
}

// Context holds the instantiated rings and converters.
type Context struct {
	Params Parameters
	RQ, RP *ring.Ring
	RT     *ring.SubRing // plaintext ring Z_t[X]/(X^N+1) for slot packing
	Ext    *ring.Extender

	groupToQ []*ring.BasisConverter
	groupToP []*ring.BasisConverter

	// Dec is the digit-batched dual-target decomposer driving the fused
	// keyswitch (same tables as groupToQ/groupToP, shared step-1 scaling);
	// decPool recycles the Decomposition shells (hoisted.go).
	Dec     *ring.Decomposer
	decPool sync.Pool

	// pToQT converts the special basis P into [t, q_0, q_1, …] so the
	// t-corrected ModDown can read the centered value modulo t.
	pToQT *ring.BasisConverter
	pModQ []uint64 // P mod q_i
	pInvQ []uint64 // P^{-1} mod q_i

	// scratch recycles the t-corrected ModDown conversion buffers, whose
	// [t, q_0..q_level] shape fits neither ring's polynomial arena.
	scratch ring.BufPool
}

// NewContext instantiates a context.
func NewContext(params Parameters) (*Context, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	rq, err := ring.NewRing(params.N(), params.Q)
	if err != nil {
		return nil, err
	}
	rp, err := ring.NewRing(params.N(), params.P)
	if err != nil {
		return nil, err
	}
	rt, err := ring.NewSubRing(params.N(), params.T)
	if err != nil {
		return nil, err
	}
	ctx := &Context{Params: params, RQ: rq, RP: rp, RT: rt,
		Ext: ring.NewExtender(rq, rp)}
	alpha := params.Alpha()
	for g := 0; g*alpha < len(params.Q); g++ {
		hi := (g + 1) * alpha
		if hi > len(params.Q) {
			hi = len(params.Q)
		}
		src := params.Q[g*alpha : hi]
		toQ := ring.NewBasisConverter(src, params.Q)
		toP := ring.NewBasisConverter(src, params.P)
		// Digit conversions ride the main ring's scheduler so SetWorkers
		// reaches the fused keyswitch's Bconv tiles too.
		toQ.BindScheduler(rq)
		toP.BindScheduler(rq)
		ctx.groupToQ = append(ctx.groupToQ, toQ)
		ctx.groupToP = append(ctx.groupToP, toP)
	}
	duals := make([]*ring.DualConverter, len(ctx.groupToQ))
	for g := range duals {
		dc, err := ring.NewDualConverter(ctx.groupToQ[g], ctx.groupToP[g], g*alpha)
		if err != nil {
			return nil, err
		}
		duals[g] = dc
	}
	ctx.Dec = ring.NewDecomposer(alpha, duals)
	ctx.pToQT = ring.NewBasisConverter(params.P,
		append([]uint64{params.T}, params.Q...))
	P := big.NewInt(1)
	for _, p := range params.P {
		P.Mul(P, new(big.Int).SetUint64(p))
	}
	tmp := new(big.Int)
	for _, qi := range params.Q {
		pq := tmp.Mod(P, new(big.Int).SetUint64(qi)).Uint64()
		ctx.pModQ = append(ctx.pModQ, pq)
		ctx.pInvQ = append(ctx.pInvQ, modmath.InvMod(pq, qi))
	}
	return ctx, nil
}

// SetWorkers fans the worker count out to every ring the context owns (RQ,
// RP) — and with them the bound converters — so one call configures the
// whole kernel suite an evaluation touches. 1 (the default) disables
// parallelism. Safe to call concurrently with running evaluations; the
// setting applies to subsequently submitted kernels.
func (c *Context) SetWorkers(n int) {
	c.RQ.SetWorkers(n)
	c.RP.SetWorkers(n)
}

// Workers reports the configured worker count (minimum 1).
func (c *Context) Workers() int { return c.RQ.Workers() }

// Close tears down the resident worker pools of the context's rings (see
// ring.Ring.Close); the context remains usable, falling back to serial
// kernels until another parallel call respawns workers.
func (c *Context) Close() {
	c.RQ.Close()
	c.RP.Close()
}

func (c *Context) groupRange(g int) (lo, hi int) {
	alpha := c.Params.Alpha()
	lo = g * alpha
	hi = lo + alpha
	if hi > len(c.Params.Q) {
		hi = len(c.Params.Q)
	}
	return
}

func (c *Context) groupsAt(level int) int {
	alpha := c.Params.Alpha()
	return (level + alpha) / alpha
}

// Encoder packs Z_t vectors into plaintext polynomials via the NTT over t.
type Encoder struct {
	ctx *Context
}

// NewEncoder returns an encoder.
func NewEncoder(ctx *Context) *Encoder { return &Encoder{ctx: ctx} }

// Encode maps a slot vector (values mod t, length ≤ N) to a plaintext poly
// over Q at the given level, with centered coefficient lift.
func (e *Encoder) Encode(slots []uint64, level int) (*ring.Poly, error) {
	n := e.ctx.Params.N()
	if len(slots) > n {
		return nil, fmt.Errorf("bgv: %d values exceed %d slots", len(slots), n)
	}
	t := e.ctx.Params.T
	coeffs := make([]uint64, n)
	for i, v := range slots {
		coeffs[i] = e.ctx.RT.ReduceWord(v)
	}
	e.ctx.RT.INTT(coeffs)
	p := e.ctx.RQ.NewPoly(level)
	for j := 0; j < n; j++ {
		c := ring.SignedCoeff(coeffs[j], t) // centered lift
		for i := 0; i <= level; i++ {
			qi := e.ctx.RQ.Moduli[i]
			if c >= 0 {
				p.Coeffs[i][j] = uint64(c)
			} else {
				p.Coeffs[i][j] = qi - uint64(-c)
			}
		}
	}
	return p, nil
}

// Decode recovers the slot vector from a plaintext poly at the given level
// (coefficients are CRT-reconstructed, centered and reduced mod t).
func (e *Encoder) Decode(p *ring.Poly, level int) []uint64 {
	n := e.ctx.Params.N()
	t := e.ctx.Params.T
	moduli := e.ctx.RQ.Moduli[:level+1]
	q := e.ctx.RQ.Modulus(level)
	half := new(big.Int).Rsh(q, 1)
	tb := new(big.Int).SetUint64(t)
	coeffs := make([]uint64, n)
	res := make([]uint64, level+1)
	for j := 0; j < n; j++ {
		for i := 0; i <= level; i++ {
			res[i] = p.Coeffs[i][j]
		}
		x := modmath.CRTReconstruct(res, moduli)
		if x.Cmp(half) > 0 {
			x.Sub(x, q)
		}
		x.Mod(x, tb)
		if x.Sign() < 0 {
			x.Add(x, tb)
		}
		coeffs[j] = x.Uint64()
	}
	e.ctx.RT.NTT(coeffs)
	return coeffs
}

// Keys ------------------------------------------------------------------

// SecretKey is a ternary secret over Q and P.
type SecretKey struct{ Q, P *ring.Poly }

// PublicKey is (-A·s + t·e, A).
type PublicKey struct{ B, A *ring.Poly }

// SwitchingKey mirrors the CKKS hybrid key with t-scaled errors.
type SwitchingKey struct {
	BQ, AQ []*ring.Poly
	BP, AP []*ring.Poly
}

// KeyGenerator samples BGV keys.
type KeyGenerator struct {
	ctx *Context
	rng prng.Source
}

// NewKeyGenerator returns a deterministic generator.
func NewKeyGenerator(ctx *Context, seed int64) *KeyGenerator {
	return &KeyGenerator{ctx: ctx, rng: prng.New(seed)}
}

func (kg *KeyGenerator) signedTernary(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		switch kg.rng.Intn(3) {
		case 0:
			v[i] = 1
		case 1:
			v[i] = -1
		}
	}
	return v
}

func (kg *KeyGenerator) gaussian(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		x := kg.rng.NormFloat64() * kg.ctx.Params.Sigma
		if x > 19 {
			x = 19
		} else if x < -19 {
			x = -19
		}
		v[i] = int64(x)
	}
	return v
}

func setSigned(r *ring.Ring, level int, v []int64, scale uint64) *ring.Poly {
	p := r.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i]
		for j, x := range v {
			p.Coeffs[i][j] = modmath.ReduceSigned(x*int64(scale), q)
		}
	}
	return p
}

func (kg *KeyGenerator) uniform(r *ring.Ring, level int) *ring.Poly {
	p := r.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i]
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = prng.UniformMod(kg.rng, q)
		}
	}
	return p
}

// GenSecretKey samples a ternary secret.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	v := kg.signedTernary(kg.ctx.Params.N())
	return &SecretKey{
		Q: setSigned(kg.ctx.RQ, kg.ctx.RQ.MaxLevel(), v, 1),
		P: setSigned(kg.ctx.RP, kg.ctx.RP.MaxLevel(), v, 1),
	}
}

// GenPublicKey samples (-A·s + t·e, A).
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	ctx := kg.ctx
	level := ctx.RQ.MaxLevel()
	a := kg.uniform(ctx.RQ, level)
	e := setSigned(ctx.RQ, level, kg.gaussian(ctx.Params.N()), ctx.Params.T)
	b := ctx.RQ.NewPoly(level)
	ctx.RQ.MulPoly(level, a, sk.Q, b)
	ctx.RQ.Neg(level, b, b)
	ctx.RQ.Add(level, b, e, b)
	return &PublicKey{B: b, A: a}
}

// GenSwitchingKey builds the hybrid key s' → s with t-scaled errors.
func (kg *KeyGenerator) GenSwitchingKey(sPrime *ring.Poly, sk *SecretKey) *SwitchingKey {
	ctx := kg.ctx
	n := ctx.Params.N()
	levelQ := ctx.RQ.MaxLevel()
	levelP := ctx.RP.MaxLevel()
	swk := &SwitchingKey{}
	for g := range ctx.groupToQ {
		aQ := kg.uniform(ctx.RQ, levelQ)
		aP := kg.uniform(ctx.RP, levelP)
		ev := kg.gaussian(n)
		eQ := setSigned(ctx.RQ, levelQ, ev, ctx.Params.T)
		eP := setSigned(ctx.RP, levelP, ev, ctx.Params.T)

		bQ := ctx.RQ.NewPoly(levelQ)
		ctx.RQ.MulPoly(levelQ, aQ, sk.Q, bQ)
		ctx.RQ.Neg(levelQ, bQ, bQ)
		ctx.RQ.Add(levelQ, bQ, eQ, bQ)
		w := kg.gadgetFactor(g)
		ws := ctx.RQ.NewPoly(levelQ)
		for i := 0; i <= levelQ; i++ {
			ctx.RQ.SubRings[i].MulScalar(sPrime.Coeffs[i], w[i], ws.Coeffs[i])
		}
		ctx.RQ.Add(levelQ, bQ, ws, bQ)

		bP := ctx.RP.NewPoly(levelP)
		ctx.RP.MulPoly(levelP, aP, sk.P, bP)
		ctx.RP.Neg(levelP, bP, bP)
		ctx.RP.Add(levelP, bP, eP, bP)

		ctx.RQ.NTT(levelQ, bQ)
		ctx.RQ.NTT(levelQ, aQ)
		ctx.RP.NTT(levelP, bP)
		ctx.RP.NTT(levelP, aP)
		swk.BQ = append(swk.BQ, bQ)
		swk.AQ = append(swk.AQ, aQ)
		swk.BP = append(swk.BP, bP)
		swk.AP = append(swk.AP, aP)
	}
	return swk
}

func (kg *KeyGenerator) gadgetFactor(g int) []uint64 {
	ctx := kg.ctx
	lo, hi := ctx.groupRange(g)
	Q := big.NewInt(1)
	for _, q := range ctx.Params.Q {
		Q.Mul(Q, new(big.Int).SetUint64(q))
	}
	Dg := big.NewInt(1)
	for _, q := range ctx.Params.Q[lo:hi] {
		Dg.Mul(Dg, new(big.Int).SetUint64(q))
	}
	P := big.NewInt(1)
	for _, p := range ctx.Params.P {
		P.Mul(P, new(big.Int).SetUint64(p))
	}
	Qhat := new(big.Int).Div(Q, Dg)
	inv := new(big.Int).ModInverse(new(big.Int).Mod(Qhat, Dg), Dg)
	W := new(big.Int).Mul(P, Qhat)
	W.Mul(W, inv)
	out := make([]uint64, len(ctx.Params.Q))
	tmp := new(big.Int)
	for i, qi := range ctx.Params.Q {
		out[i] = tmp.Mod(W, new(big.Int).SetUint64(qi)).Uint64()
	}
	return out
}

// GenRelinKey returns the s² → s key.
func (kg *KeyGenerator) GenRelinKey(sk *SecretKey) *SwitchingKey {
	ctx := kg.ctx
	level := ctx.RQ.MaxLevel()
	s2 := ctx.RQ.NewPoly(level)
	ctx.RQ.MulPoly(level, sk.Q, sk.Q, s2)
	return kg.GenSwitchingKey(s2, sk)
}

// GenGaloisKey returns the φ_k(s) → s key enabling ApplyGalois with the
// Galois element k (k odd; rotations use RQ.GaloisElementForRotation).
func (kg *KeyGenerator) GenGaloisKey(k uint64, sk *SecretKey) *SwitchingKey {
	ctx := kg.ctx
	level := ctx.RQ.MaxLevel()
	sRot := ctx.RQ.NewPoly(level)
	ctx.RQ.Automorphism(level, sk.Q, k, sRot)
	return kg.GenSwitchingKey(sRot, sk)
}

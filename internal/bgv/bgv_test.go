package bgv

import (
	"math/rand"
	"testing"
)

type harness struct {
	ctx *Context
	enc *Encoder
	kg  *KeyGenerator
	sk  *SecretKey
	pk  *PublicKey
	rlk *SwitchingKey
	et  *Encryptor
	dt  *Decryptor
	ev  *Evaluator
}

func newHarness(t testing.TB) *harness {
	t.Helper()
	ctx, err := NewContext(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{ctx: ctx, enc: NewEncoder(ctx)}
	h.kg = NewKeyGenerator(ctx, 101)
	h.sk = h.kg.GenSecretKey()
	h.pk = h.kg.GenPublicKey(h.sk)
	h.rlk = h.kg.GenRelinKey(h.sk)
	h.et = NewEncryptor(ctx, h.pk, 102)
	h.dt = NewDecryptor(ctx, h.sk)
	h.ev = NewEvaluator(ctx, h.rlk)
	return h
}

func randSlots(n int, t uint64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() % t
	}
	return out
}

func (h *harness) encrypt(tb testing.TB, slots []uint64) *Ciphertext {
	tb.Helper()
	pt, err := h.enc.Encode(slots, h.ctx.Params.MaxLevel())
	if err != nil {
		tb.Fatal(err)
	}
	return h.et.Encrypt(pt, h.ctx.Params.MaxLevel())
}

func (h *harness) decrypt(ct *Ciphertext) []uint64 {
	return h.enc.Decode(h.dt.DecryptPoly(ct), ct.Level)
}

func assertEq(t *testing.T, got, want []uint64, msg string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: slot %d: got %d want %d", msg, i, got[i], want[i])
		}
	}
}

func TestParamsValidation(t *testing.T) {
	p := TestParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.T = 65536 // not prime
	if err := bad.Validate(); err == nil {
		t.Error("expected composite-t rejection")
	}
	bad = p
	bad.Q = []uint64{12289} // not ≡ 1 mod t
	if err := bad.Validate(); err == nil {
		t.Error("expected q !≡ 1 mod t rejection")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := newHarness(t)
	params := h.ctx.Params
	slots := randSlots(params.N(), params.T, 1)
	pt, err := h.enc.Encode(slots, params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	assertEq(t, h.enc.Decode(pt, params.MaxLevel()), slots, "encode/decode")
	if _, err := h.enc.Encode(make([]uint64, params.N()+1), 0); err == nil {
		t.Error("expected too-many-slots error")
	}
}

func TestEncryptDecryptExact(t *testing.T) {
	h := newHarness(t)
	slots := randSlots(h.ctx.Params.N(), h.ctx.Params.T, 2)
	ct := h.encrypt(t, slots)
	assertEq(t, h.decrypt(ct), slots, "encrypt/decrypt")
}

func TestHomomorphicAddSubExact(t *testing.T) {
	h := newHarness(t)
	tmod := h.ctx.Params.T
	z1 := randSlots(h.ctx.Params.N(), tmod, 3)
	z2 := randSlots(h.ctx.Params.N(), tmod, 4)
	c1, c2 := h.encrypt(t, z1), h.encrypt(t, z2)
	sum := make([]uint64, len(z1))
	diff := make([]uint64, len(z1))
	for i := range z1 {
		sum[i] = (z1[i] + z2[i]) % tmod
		diff[i] = (z1[i] + tmod - z2[i]) % tmod
	}
	assertEq(t, h.decrypt(h.ev.Add(c1, c2)), sum, "add")
	assertEq(t, h.decrypt(h.ev.Sub(c1, c2)), diff, "sub")
}

func TestMulPlainExact(t *testing.T) {
	h := newHarness(t)
	tmod := h.ctx.Params.T
	z := randSlots(h.ctx.Params.N(), tmod, 5)
	w := randSlots(h.ctx.Params.N(), tmod, 6)
	ct := h.encrypt(t, z)
	pt, err := h.enc.Encode(w, ct.Level)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, len(z))
	for i := range z {
		want[i] = z[i] * w[i] % tmod
	}
	assertEq(t, h.decrypt(h.ev.MulPlain(ct, pt)), want, "pmult")
}

func TestMulRelinExact(t *testing.T) {
	h := newHarness(t)
	tmod := h.ctx.Params.T
	z1 := randSlots(h.ctx.Params.N(), tmod, 7)
	z2 := randSlots(h.ctx.Params.N(), tmod, 8)
	c1, c2 := h.encrypt(t, z1), h.encrypt(t, z2)
	prod, err := h.ev.MulRelin(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, len(z1))
	for i := range z1 {
		want[i] = z1[i] * z2[i] % tmod
	}
	assertEq(t, h.decrypt(prod), want, "cmult")

	// And after the BGV modulus switch.
	res, err := h.ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != prod.Level-1 {
		t.Fatal("rescale did not drop a level")
	}
	assertEq(t, h.decrypt(res), want, "cmult+rescale")
}

func TestMultiplicationDepthExact(t *testing.T) {
	// BGV is exact: a chain of multiplications with rescaling must compute
	// the product mod t with zero error until levels run out.
	h := newHarness(t)
	tmod := h.ctx.Params.T
	n := h.ctx.Params.N()
	acc := randSlots(n, tmod, 9)
	ct := h.encrypt(t, acc)
	for depth := 0; ct.Level > 0; depth++ {
		z := randSlots(n, tmod, int64(10+depth))
		fresh := h.encrypt(t, z)
		prod, err := h.ev.MulRelin(ct, fresh)
		if err != nil {
			t.Fatal(err)
		}
		ct, err = h.ev.Rescale(prod)
		if err != nil {
			t.Fatal(err)
		}
		for i := range acc {
			acc[i] = acc[i] * z[i] % tmod
		}
		assertEq(t, h.decrypt(ct), acc, "depth chain")
	}
	if _, err := h.ev.Rescale(ct); err == nil {
		t.Error("expected level-0 rescale error")
	}
}

func TestMissingRlkRejected(t *testing.T) {
	h := newHarness(t)
	ev := NewEvaluator(h.ctx, nil)
	z := randSlots(h.ctx.Params.N(), h.ctx.Params.T, 20)
	ct := h.encrypt(t, z)
	if _, err := ev.MulRelin(ct, ct); err == nil {
		t.Fatal("expected missing-rlk error")
	}
}

func TestSlotwiseSemantics(t *testing.T) {
	// The NTT packing makes homomorphic ops slot-wise: verify with a
	// structured vector.
	h := newHarness(t)
	n := h.ctx.Params.N()
	z := make([]uint64, n)
	for i := range z {
		z[i] = uint64(i)
	}
	ct := h.encrypt(t, z)
	sq, err := h.ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := h.decrypt(sq)
	for i := range z {
		want := uint64(i) * uint64(i) % h.ctx.Params.T
		if got[i] != want {
			t.Fatalf("slot %d: %d != %d", i, got[i], want)
		}
	}
}

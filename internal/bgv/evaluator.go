package bgv

import (
	"fmt"

	"alchemist/internal/modmath"
	"alchemist/internal/prng"
	"alchemist/internal/ring"
)

// Ciphertext is a BGV ciphertext (B, A) with decryption (B + A·s) mod t.
type Ciphertext struct {
	B, A  *ring.Poly
	Level int
}

// Encryptor encrypts under a public key.
type Encryptor struct {
	ctx *Context
	pk  *PublicKey
	rng prng.Source
}

// NewEncryptor returns an encryptor.
func NewEncryptor(ctx *Context, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{ctx: ctx, pk: pk, rng: prng.New(seed)}
}

// Encrypt encrypts a plaintext polynomial at the given level:
// (u·pk.B + t·e0 + m, u·pk.A + t·e1).
func (e *Encryptor) Encrypt(pt *ring.Poly, level int) *Ciphertext {
	ctx := e.ctx
	kg := &KeyGenerator{ctx: ctx, rng: e.rng}
	n := ctx.Params.N()
	u := setSigned(ctx.RQ, level, kg.signedTernary(n), 1)
	e0 := setSigned(ctx.RQ, level, kg.gaussian(n), ctx.Params.T)
	e1 := setSigned(ctx.RQ, level, kg.gaussian(n), ctx.Params.T)
	b := ctx.RQ.NewPoly(level)
	a := ctx.RQ.NewPoly(level)
	ctx.RQ.MulPoly(level, e.pk.B, u, b)
	ctx.RQ.MulPoly(level, e.pk.A, u, a)
	ctx.RQ.Add(level, b, e0, b)
	ctx.RQ.Add(level, b, pt, b)
	ctx.RQ.Add(level, a, e1, a)
	return &Ciphertext{B: b, A: a, Level: level}
}

// Decryptor decrypts with the secret key.
type Decryptor struct {
	ctx *Context
	sk  *SecretKey
}

// NewDecryptor returns a decryptor.
func NewDecryptor(ctx *Context, sk *SecretKey) *Decryptor {
	return &Decryptor{ctx: ctx, sk: sk}
}

// DecryptPoly returns B + A·s at ct's level (reduce mod t to read the
// message; Encoder.Decode does both).
func (d *Decryptor) DecryptPoly(ct *Ciphertext) *ring.Poly {
	out := d.ctx.RQ.NewPoly(ct.Level)
	d.ctx.RQ.MulPoly(ct.Level, ct.A, d.sk.Q, out)
	d.ctx.RQ.Add(ct.Level, out, ct.B, out)
	return out
}

// Evaluator performs homomorphic operations.
type Evaluator struct {
	ctx *Context
	rlk *SwitchingKey
}

// NewEvaluator returns an evaluator (rlk may be nil for additions).
func NewEvaluator(ctx *Context, rlk *SwitchingKey) *Evaluator {
	return &Evaluator{ctx: ctx, rlk: rlk}
}

func minLevel(a, b *Ciphertext) int {
	if a.Level < b.Level {
		return a.Level
	}
	return b.Level
}

// Add returns a + b.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	level := minLevel(a, b)
	out := &Ciphertext{B: ev.ctx.RQ.NewPoly(level), A: ev.ctx.RQ.NewPoly(level), Level: level}
	ev.ctx.RQ.Add(level, a.B, b.B, out.B)
	ev.ctx.RQ.Add(level, a.A, b.A, out.A)
	return out
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	level := minLevel(a, b)
	out := &Ciphertext{B: ev.ctx.RQ.NewPoly(level), A: ev.ctx.RQ.NewPoly(level), Level: level}
	ev.ctx.RQ.Sub(level, a.B, b.B, out.B)
	ev.ctx.RQ.Sub(level, a.A, b.A, out.A)
	return out
}

// MulPlain returns ct ⊙ pt for a plaintext polynomial.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *ring.Poly) *Ciphertext {
	level := ct.Level
	out := &Ciphertext{B: ev.ctx.RQ.NewPoly(level), A: ev.ctx.RQ.NewPoly(level), Level: level}
	ev.ctx.RQ.MulPoly(level, ct.B, pt, out.B)
	ev.ctx.RQ.MulPoly(level, ct.A, pt, out.A)
	return out
}

// MulRelin returns a·b with relinearization. The product plaintext is
// m_a·m_b mod t, exactly.
func (ev *Evaluator) MulRelin(a, b *Ciphertext) (*Ciphertext, error) {
	if ev.rlk == nil {
		return nil, fmt.Errorf("bgv: relinearization key missing")
	}
	ctx := ev.ctx
	rq := ctx.RQ
	level := minLevel(a, b)

	// Tensor in the NTT domain; scratch from the ring arena (d0/d1 escape as
	// the result and are left for the GC or a later Release by the caller).
	b1 := rq.Borrow(level)
	a1 := rq.Borrow(level)
	b2 := rq.Borrow(level)
	a2 := rq.Borrow(level)
	rq.CopyLevel(level, a.B, b1)
	rq.CopyLevel(level, a.A, a1)
	rq.CopyLevel(level, b.B, b2)
	rq.CopyLevel(level, b.A, a2)
	rq.NTT(level, b1)
	rq.NTT(level, a1)
	rq.NTT(level, b2)
	rq.NTT(level, a2)

	d0 := rq.Borrow(level)
	d1 := rq.Borrow(level)
	d2 := rq.Borrow(level)
	rq.MulCoeffs(level, b1, b2, d0)
	rq.MulCoeffs(level, b1, a2, d1)
	rq.MulCoeffsAndAdd(level, a1, b2, d1)
	rq.MulCoeffs(level, a1, a2, d2)
	rq.Release(b1)
	rq.Release(a1)
	rq.Release(b2)
	rq.Release(a2)
	rq.INTT(level, d0)
	rq.INTT(level, d1)
	rq.INTT(level, d2)

	ksB, ksA := ev.KeySwitchFused(level, d2, ev.rlk)
	rq.Release(d2)
	rq.Add(level, d0, ksB, d0)
	rq.Add(level, d1, ksA, d1)
	rq.Release(ksB)
	rq.Release(ksA)
	return &Ciphertext{B: d0, A: d1, Level: level}, nil //alchemist:owns the product ciphertext wraps the pooled limbs d0/d1
}

// keySwitch mirrors the CKKS hybrid key switch but uses the exact centered
// ModDown so the division by P (≡ 1 mod t) leaves the plaintext untouched.
// It is the eager reference path: the live evaluator runs KeySwitchFused
// (hoisted.go), whose bit-identity to this function the fused-vs-eager
// tests pin.
func (ev *Evaluator) keySwitch(level int, c *ring.Poly, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	ctx := ev.ctx
	rq, rp := ctx.RQ, ctx.RP
	levelP := rp.MaxLevel()
	groups := ctx.groupsAt(level)

	accBQ := rq.BorrowZero(level)
	accAQ := rq.BorrowZero(level)
	accBP := rp.BorrowZero(levelP)
	accAP := rp.BorrowZero(levelP)
	dQ := rq.Borrow(level)
	dP := rp.Borrow(levelP)

	for g := 0; g < groups; g++ {
		lo, hi := ctx.groupRange(g)
		if hi > level+1 {
			hi = level + 1
		}
		digits := c.Coeffs[lo:hi]
		srcLevel := hi - lo - 1
		ctx.groupToQ[g].ConvertN(srcLevel, digits, dQ.Coeffs, level+1)
		ctx.groupToP[g].Convert(srcLevel, digits, dP.Coeffs)
		rq.NTT(level, dQ)
		rp.NTT(levelP, dP)
		rq.MulCoeffsAndAdd(level, dQ, swk.BQ[g], accBQ)
		rq.MulCoeffsAndAdd(level, dQ, swk.AQ[g], accAQ)
		rp.MulCoeffsAndAdd(levelP, dP, swk.BP[g], accBP)
		rp.MulCoeffsAndAdd(levelP, dP, swk.AP[g], accAP)
	}
	rq.INTT(level, accBQ)
	rq.INTT(level, accAQ)
	rp.INTT(levelP, accBP)
	rp.INTT(levelP, accAP)

	outB := rq.Borrow(level)
	outA := rq.Borrow(level)
	ev.modDownT(level, accBQ, accBP, outB)
	ev.modDownT(level, accAQ, accAP, outA)
	rq.Release(accBQ)
	rq.Release(accAQ)
	rp.Release(accBP)
	rp.Release(accAP)
	rq.Release(dQ)
	rp.Release(dP)
	return outB, outA //alchemist:owns the keyswitch halves are the caller's to release
}

// modDownT divides an accumulator over Q·P by P with the BGV t-correction:
// the subtracted representative δ satisfies δ ≡ x (mod P) and δ ≡ 0 (mod t)
// (δ = centered([x]_P) + P·w, w ≡ -[x]_P (mod t)), so the result stays
// ≡ x (mod t) while noise only grows by ≤ t.
func (ev *Evaluator) modDownT(level int, aQ, aP, out *ring.Poly) {
	ctx := ev.ctx
	n := ctx.Params.N()
	t := ctx.Params.T
	// Exact centered conversion into [t, q_0..q_level]. The channel backing
	// (plus the w correction vector) comes from one scratch buffer — the
	// [t|Q] shape fits neither ring's polynomial pools — so only the small
	// header slice is allocated.
	flat := ctx.scratch.Get((level + 3) * n)
	conv := make([][]uint64, level+2)
	for i := range conv {
		conv[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	w := flat[(level+2)*n:]
	ctx.pToQT.ConvertExact(len(ctx.Params.P)-1, aP.Coeffs, conv, level+2, true)
	convT := conv[0]
	for k := 0; k < n; k++ {
		w[k] = modmath.NegMod(convT[k], t) // w ≡ -[x]_P (mod t); P ≡ 1 (mod t)
	}
	for i := 0; i <= level; i++ {
		qi := ctx.RQ.Moduli[i]
		pq := ctx.pModQ[i]
		inv := ctx.pInvQ[i]
		invS := modmath.ShoupPrecomp(inv, qi)
		src, ci, dst := aQ.Coeffs[i], conv[i+1], out.Coeffs[i]
		for k := 0; k < n; k++ {
			delta := modmath.AddMod(ci[k], modmath.MulMod(w[k], pq, qi), qi)
			d := modmath.SubMod(src[k], delta, qi)
			dst[k] = modmath.MulModShoup(d, inv, invS, qi)
		}
	}
	ctx.scratch.Put(flat)
}

// Rescale performs the BGV modulus switch: divides the ciphertext by its
// last modulus q_l (≡ 1 mod t) with a correction δ' ≡ [x]_{q_l} (mod q_l)
// and ≡ 0 (mod t), shrinking noise by ≈ q_l without touching the plaintext.
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level == 0 {
		return nil, fmt.Errorf("bgv: no level left to rescale")
	}
	ctx := ev.ctx
	level := ct.Level
	out := &Ciphertext{
		B:     ctx.RQ.NewPoly(level - 1),
		A:     ctx.RQ.NewPoly(level - 1),
		Level: level - 1,
	}
	ev.modSwitchPoly(level, ct.B, out.B)
	ev.modSwitchPoly(level, ct.A, out.A)
	return out, nil
}

func (ev *Evaluator) modSwitchPoly(level int, in, out *ring.Poly) {
	ctx := ev.ctx
	t := int64(ctx.Params.T)
	ql := ctx.RQ.Moduli[level]
	n := ctx.Params.N()
	// Per-channel inverse of q_l.
	for i := 0; i < level; i++ {
		qi := ctx.RQ.Moduli[i]
		inv := modmath.InvMod(ctx.RQ.SubRings[i].ReduceWord(ql), qi)
		invS := modmath.ShoupPrecomp(inv, qi)
		for k := 0; k < n; k++ {
			// δ' = centered([x]_{q_l}) + q_l·w with w ≡ -δ (mod t); since
			// q_l ≡ 1 (mod t), δ' ≡ 0 (mod t) and ≡ [x]_{q_l} (mod q_l).
			dc := ring.SignedCoeff(in.Coeffs[level][k], ql)
			w := (-dc) % t
			if w < 0 {
				w += t
			}
			delta := dc + int64(ql)*w // |δ'| < q_l·(t+1): fits int64 for 45-bit q_l, 17-bit t
			dmod := modmath.ReduceSigned(delta, qi)
			d := modmath.SubMod(in.Coeffs[i][k], dmod, qi)
			out.Coeffs[i][k] = modmath.MulModShoup(d, inv, invS, qi)
		}
	}
}

package bgv

import (
	"testing"

	"alchemist/internal/prng"
)

// TestKeySwitchFusedMatchesEager: the fused lazy keyswitch must be
// BIT-identical to the eager reference on every input and level — same
// digits (byte-identical lazy conversion), same NTT, lazy sum ≡ eager sum
// after the one deferred reduction, shared t-exact ModDown.
func TestKeySwitchFusedMatchesEager(t *testing.T) {
	ctx, err := NewContext(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 11)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinKey(sk)
	ev := NewEvaluator(ctx, rlk)
	for level := 0; level <= ctx.Params.MaxLevel(); level++ {
		c := kg.uniform(ctx.RQ, level)
		eagerB, eagerA := ev.keySwitch(level, c, rlk)
		fusedB, fusedA := ev.KeySwitchFused(level, c, rlk)
		if !ctx.RQ.Equal(level, eagerB, fusedB) || !ctx.RQ.Equal(level, eagerA, fusedA) {
			t.Fatalf("level %d: fused keyswitch differs from eager reference", level)
		}
		ctx.RQ.Release(eagerB)
		ctx.RQ.Release(eagerA)
		ctx.RQ.Release(fusedB)
		ctx.RQ.Release(fusedA)
	}
}

// TestKeySwitchFusedMatchesEagerAcrossDnum sweeps digit counts: each changes
// the group structure, the identity-channel windows and the lazy term count.
func TestKeySwitchFusedMatchesEagerAcrossDnum(t *testing.T) {
	for _, dnum := range []int{1, 2, 3, 5} {
		params, err := GenParams(7, 4, dnum, 5, 45, 46, 65537)
		if err != nil {
			t.Fatalf("dnum=%d: %v", dnum, err)
		}
		ctx, err := NewContext(params)
		if err != nil {
			t.Fatalf("dnum=%d: %v", dnum, err)
		}
		kg := NewKeyGenerator(ctx, 400+int64(dnum))
		sk := kg.GenSecretKey()
		rlk := kg.GenRelinKey(sk)
		ev := NewEvaluator(ctx, rlk)
		for level := 0; level <= ctx.Params.MaxLevel(); level++ {
			c := kg.uniform(ctx.RQ, level)
			eagerB, eagerA := ev.keySwitch(level, c, rlk)
			fusedB, fusedA := ev.KeySwitchFused(level, c, rlk)
			if !ctx.RQ.Equal(level, eagerB, fusedB) || !ctx.RQ.Equal(level, eagerA, fusedA) {
				t.Fatalf("dnum=%d level %d: fused differs from eager", dnum, level)
			}
			ctx.RQ.Release(eagerB)
			ctx.RQ.Release(eagerA)
			ctx.RQ.Release(fusedB)
			ctx.RQ.Release(fusedA)
		}
	}
}

// TestApplyGaloisExactModT: ApplyGalois must decrypt to exactly the
// automorphism of the plaintext modulo t — BGV arithmetic is exact, so any
// drift in the fused keyswitch or the t-correction shows up here.
func TestApplyGaloisExactModT(t *testing.T) {
	ctx, err := NewContext(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 21)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncoder(ctx)
	encr := NewEncryptor(ctx, pk, 22)
	dec := NewDecryptor(ctx, sk)
	ev := NewEvaluator(ctx, nil)

	rng := prng.New(23)
	n := ctx.Params.N()
	slots := make([]uint64, n)
	for i := range slots {
		slots[i] = prng.UniformMod(rng, ctx.Params.T)
	}
	level := ctx.Params.MaxLevel()
	pt, err := enc.Encode(slots, level)
	if err != nil {
		t.Fatal(err)
	}
	ct := encr.Encrypt(pt, level)

	for _, k := range []uint64{ctx.RQ.GaloisElementForRotation(1),
		ctx.RQ.GaloisElementForRotation(3), ctx.RQ.GaloisElementConjugate()} {
		gk := kg.GenGaloisKey(k, sk)
		rot, err := ev.ApplyGalois(ct, k, gk)
		if err != nil {
			t.Fatal(err)
		}
		got := enc.Decode(dec.DecryptPoly(rot), level)
		// Expected: the automorphism applied to the plaintext directly.
		ptRot := ctx.RQ.NewPoly(level)
		ctx.RQ.Automorphism(level, pt, k, ptRot)
		want := enc.Decode(ptRot, level)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("k=%d slot %d: got %d want %d (mod t drift)", k, j, got[j], want[j])
			}
		}
	}
}

// TestRotateRowsComposes: rotating by 1 twice equals rotating by 2 — the
// Galois action composes, and every step is exact mod t.
func TestRotateRowsComposes(t *testing.T) {
	ctx, err := NewContext(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 31)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncoder(ctx)
	encr := NewEncryptor(ctx, pk, 32)
	dec := NewDecryptor(ctx, sk)
	ev := NewEvaluator(ctx, nil)

	gk1 := kg.GenGaloisKey(ctx.RQ.GaloisElementForRotation(1), sk)
	gk2 := kg.GenGaloisKey(ctx.RQ.GaloisElementForRotation(2), sk)

	rng := prng.New(33)
	n := ctx.Params.N()
	slots := make([]uint64, n)
	for i := range slots {
		slots[i] = prng.UniformMod(rng, ctx.Params.T)
	}
	level := ctx.Params.MaxLevel()
	pt, err := enc.Encode(slots, level)
	if err != nil {
		t.Fatal(err)
	}
	ct := encr.Encrypt(pt, level)

	r1, err := ev.RotateRows(ct, 1, gk1)
	if err != nil {
		t.Fatal(err)
	}
	r11, err := ev.RotateRows(r1, 1, gk1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ev.RotateRows(ct, 2, gk2)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(dec.DecryptPoly(r11), level)
	want := enc.Decode(dec.DecryptPoly(r2), level)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("slot %d: rotate(1)∘rotate(1)=%d but rotate(2)=%d", j, got[j], want[j])
		}
	}
}

package bgv

import (
	"fmt"

	"alchemist/internal/ring"
)

// Fused lazy keyswitching for BGV — the same restructuring as
// internal/ckks/hoisted.go (one digit-batched decomposition, unreduced
// 128-bit accumulation across all digit groups, a single deferred Barrett
// fold per channel), except the final descent runs through the t-exact
// modDownT so the plaintext modulo t is untouched. KeySwitchFused is
// bit-identical to the eager keySwitch reference (pinned by the fused-vs-
// eager tests); MulRelin and ApplyGalois run on the fused path.

// Decomposition is the reusable ModUp expansion of one polynomial: per digit
// group, the digit extended to Q and to P, NTT domain. Produce with
// DecomposeOnce, hand back with ReleaseDecomposition.
type Decomposition struct {
	Level int
	DQ    []*ring.Poly
	DP    []*ring.Poly
}

// DecomposeOnce computes the digit decomposition of c (coefficient domain)
// once, for reuse across many keyswitches against the same input.
func (ev *Evaluator) DecomposeOnce(level int, c *ring.Poly) *Decomposition {
	ctx := ev.ctx
	rq, rp := ctx.RQ, ctx.RP
	levelP := rp.MaxLevel()
	groups := ctx.groupsAt(level)

	d, _ := ctx.decPool.Get().(*Decomposition)
	if d == nil {
		d = &Decomposition{
			DQ: make([]*ring.Poly, 0, ctx.Params.Dnum),
			DP: make([]*ring.Poly, 0, ctx.Params.Dnum),
		}
	}
	d.Level = level
	d.DQ, d.DP = d.DQ[:0], d.DP[:0]
	for g := 0; g < groups; g++ {
		d.DQ = append(d.DQ, rq.Borrow(level))  //alchemist:owns the decomposition owns its digits; ReleaseDecomposition frees them
		d.DP = append(d.DP, rp.Borrow(levelP)) //alchemist:owns the decomposition owns its digits; ReleaseDecomposition frees them
	}
	ctx.Dec.DecomposeAll(level, c, d.DQ, d.DP)
	for g := 0; g < groups; g++ {
		rq.NTT(level, d.DQ[g])
		rp.NTT(levelP, d.DP[g])
	}
	return d
}

// ReleaseDecomposition returns the decomposition's polynomials to the ring
// arenas and its shell to the context pool. d must not be used afterwards.
func (ev *Evaluator) ReleaseDecomposition(d *Decomposition) {
	if d == nil {
		return
	}
	ctx := ev.ctx
	for _, p := range d.DQ {
		ctx.RQ.Release(p)
	}
	for _, p := range d.DP {
		ctx.RP.Release(p)
	}
	d.DQ, d.DP = d.DQ[:0], d.DP[:0]
	ctx.decPool.Put(d)
}

// KeySwitchFused is the lazy-accumulation keyswitch: same contract and
// bit-identical output as the eager keySwitch reference.
//
//alchemist:hot
func (ev *Evaluator) KeySwitchFused(level int, c *ring.Poly, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	d := ev.DecomposeOnce(level, c)
	outB := ev.ctx.RQ.Borrow(level)
	outA := ev.ctx.RQ.Borrow(level)
	ev.keySwitchHoisted(d, swk, 0, false, outB, outA)
	ev.ReleaseDecomposition(d)
	return outB, outA //alchemist:owns the keyswitch halves are the caller's to release
}

// keySwitchHoisted runs the accumulation half of the keyswitch against a
// prepared decomposition (optionally fusing the Galois permutation φ_k into
// the NTT-domain multiply-accumulate), then the single deferred reduction,
// the inverse transforms and the two t-exact ModDowns.
//
//alchemist:hot
//alchemist:domain outB:[0,q) outA:[0,q)
func (ev *Evaluator) keySwitchHoisted(d *Decomposition, swk *SwitchingKey, k uint64, perm bool, outB, outA *ring.Poly) {
	ctx := ev.ctx
	rq, rp := ctx.RQ, ctx.RP
	level := d.Level
	levelP := rp.MaxLevel()
	groups := ctx.groupsAt(level)

	// KSAccumulate: register-resident composition of the Acc128 kernels, both
	// key halves per digit load, outputs written once already folded
	// (ring/ksacc.go). Bit-identical to the Acc128 pipeline.
	bq := rq.Borrow(level)
	aq := rq.Borrow(level)
	bp := rp.Borrow(levelP)
	ap := rp.Borrow(levelP)

	rq.KSAccumulate(level, d.DQ[:groups], swk.BQ[:groups], swk.AQ[:groups], k, perm, bq, aq)
	rp.KSAccumulate(levelP, d.DP[:groups], swk.BP[:groups], swk.AP[:groups], k, perm, bp, ap)

	rq.INTT(level, bq)
	rq.INTT(level, aq)
	rp.INTT(levelP, bp)
	rp.INTT(levelP, ap)

	ev.modDownT(level, bq, bp, outB)
	ev.modDownT(level, aq, ap, outA)

	rq.Release(bq)
	rq.Release(aq)
	rp.Release(bp)
	rp.Release(ap)
}

// ApplyGalois applies the automorphism φ_k homomorphically: the result
// decrypts to φ_k(m) mod t, exactly. gk must be the GenGaloisKey(k, ·) key.
// The hoisted order (decompose ct.A, then permute inside the accumulation)
// never materializes φ_k(A)'s digits.
func (ev *Evaluator) ApplyGalois(ct *Ciphertext, k uint64, gk *SwitchingKey) (*Ciphertext, error) {
	if gk == nil {
		return nil, fmt.Errorf("bgv: galois key missing")
	}
	ctx := ev.ctx
	rq := ctx.RQ
	level := ct.Level
	d := ev.DecomposeOnce(level, ct.A)
	bp := rq.Borrow(level)
	outA := rq.Borrow(level)
	ev.keySwitchHoisted(d, gk, k, true, bp, outA)
	ev.ReleaseDecomposition(d)
	rot := rq.Borrow(level)
	rq.Automorphism(level, ct.B, k, rot)
	rq.Add(level, bp, rot, bp)
	rq.Release(rot)
	return &Ciphertext{B: bp, A: outA, Level: level}, nil //alchemist:owns the rotated ciphertext wraps the pooled limbs bp/outA
}

// RotateRows applies the row rotation by r steps (Galois element 5^r), the
// packed-slot permutation BGV inherits from the power-of-two cyclotomic.
func (ev *Evaluator) RotateRows(ct *Ciphertext, r int, gk *SwitchingKey) (*Ciphertext, error) {
	return ev.ApplyGalois(ct, ev.ctx.RQ.GaloisElementForRotation(r), gk)
}

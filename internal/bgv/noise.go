package bgv

import (
	"math"
	"math/big"

	"alchemist/internal/modmath"
)

// NoiseBitsOf measures the ciphertext noise against the expected slot
// values: the bit length of the largest centered coefficient of
// (decrypt − encode(slots)). Decryption stays correct while this is below
// log2(Q_level) - 1.
func NoiseBitsOf(ctx *Context, dt *Decryptor, enc *Encoder, ct *Ciphertext, slots []uint64) float64 {
	want, err := enc.Encode(slots, ct.Level)
	if err != nil {
		return math.Inf(1)
	}
	dec := dt.DecryptPoly(ct)
	moduli := ctx.RQ.Moduli[:ct.Level+1]
	q := ctx.RQ.Modulus(ct.Level)
	half := new(big.Int).Rsh(q, 1)
	res := make([]uint64, ct.Level+1)
	worst := new(big.Int)
	for j := 0; j < ctx.Params.N(); j++ {
		for i := 0; i <= ct.Level; i++ {
			res[i] = modmath.SubMod(dec.Coeffs[i][j], want.Coeffs[i][j], moduli[i])
		}
		x := modmath.CRTReconstruct(res, moduli)
		if x.Cmp(half) > 0 {
			x.Sub(x, q)
			x.Neg(x)
		}
		if x.CmpAbs(worst) > 0 {
			worst.Set(x)
		}
	}
	if worst.Sign() == 0 {
		return math.Inf(-1)
	}
	return float64(worst.BitLen())
}

// BudgetBits returns the remaining noise budget: log2(Q_level) minus the
// measured noise bits.
func BudgetBits(ctx *Context, level int, noiseBits float64) float64 {
	bits := 0.0
	for i := 0; i <= level; i++ {
		bits += math.Log2(float64(ctx.Params.Q[i]))
	}
	return bits - noiseBits
}

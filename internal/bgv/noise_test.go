package bgv

import (
	"math"
	"testing"
)

func TestNoiseGrowsWithDepthButStaysBudgeted(t *testing.T) {
	h := newHarness(t)
	tmod := h.ctx.Params.T
	n := h.ctx.Params.N()
	acc := randSlots(n, tmod, 31)
	ct := h.encrypt(t, acc)

	fresh := NoiseBitsOf(h.ctx, h.dt, h.enc, ct, acc)
	if math.IsInf(fresh, 1) {
		t.Fatal("noise measurement failed")
	}
	if b := BudgetBits(h.ctx, ct.Level, fresh); b < 50 {
		t.Fatalf("fresh budget only %.0f bits", b)
	}

	z := randSlots(n, tmod, 32)
	other := h.encrypt(t, z)
	prod, err := h.ev.MulRelin(ct, other)
	if err != nil {
		t.Fatal(err)
	}
	for i := range acc {
		acc[i] = acc[i] * z[i] % tmod
	}
	after := NoiseBitsOf(h.ctx, h.dt, h.enc, prod, acc)
	if after <= fresh {
		t.Fatalf("multiplication should grow noise: %.0f -> %.0f bits", fresh, after)
	}
	if b := BudgetBits(h.ctx, prod.Level, after); b < 1 {
		t.Fatalf("budget exhausted after one mult: %.0f bits", b)
	}

	// Rescaling shrinks the noise (by ≈ log2 q_l).
	res, err := h.ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	rescaled := NoiseBitsOf(h.ctx, h.dt, h.enc, res, acc)
	if rescaled >= after-20 {
		t.Fatalf("rescale should cut noise by ≈45 bits: %.0f -> %.0f", after, rescaled)
	}
}

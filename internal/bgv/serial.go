package bgv

import (
	"encoding/binary"
	"fmt"

	"alchemist/internal/ring"
)

// Ciphertext wire format: uint32 level, uint32 length of B, B poly bytes,
// A poly bytes.

// MarshalBinary encodes the ciphertext.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	b, err := ct.B.MarshalBinary()
	if err != nil {
		return nil, err
	}
	a, err := ct.A.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8, 8+len(b)+len(a))
	binary.LittleEndian.PutUint32(out[0:], uint32(ct.Level))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(b)))
	out = append(out, b...)
	out = append(out, a...)
	return out, nil
}

// UnmarshalBinary decodes into ct.
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bgv: ciphertext header truncated")
	}
	ct.Level = int(binary.LittleEndian.Uint32(data[0:]))
	bLen := int(binary.LittleEndian.Uint32(data[4:]))
	if bLen < 0 || 8+bLen > len(data) {
		return fmt.Errorf("bgv: ciphertext B length out of range")
	}
	ct.B = new(ring.Poly)
	if err := ct.B.UnmarshalBinary(data[8 : 8+bLen]); err != nil {
		return err
	}
	ct.A = new(ring.Poly)
	if err := ct.A.UnmarshalBinary(data[8+bLen:]); err != nil {
		return err
	}
	if ct.Level != ct.B.Level() || ct.Level != ct.A.Level() {
		return fmt.Errorf("bgv: level disagrees with poly channels")
	}
	return nil
}

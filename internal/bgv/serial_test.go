package bgv

import "testing"

func TestCiphertextSerializationRoundTrip(t *testing.T) {
	h := newHarness(t)
	slots := randSlots(h.ctx.Params.N(), h.ctx.Params.T, 91)
	ct := h.encrypt(t, slots)
	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Ciphertext
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	assertEq(t, h.decrypt(&back), slots, "serialized decrypt")
	if err := back.UnmarshalBinary(blob[:6]); err == nil {
		t.Error("expected truncation rejection")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 0x7F
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Error("expected level-mismatch rejection")
	}
}

// Package bridge implements cross-scheme ciphertext switching in the
// Chimera/Pegasus style [5, 6 in the paper]: values computed under the
// arithmetic scheme (CKKS) are converted into logic-scheme (TFHE) LWE
// samples, where programmable bootstrapping can evaluate non-polynomial
// functions — sign, comparison, max — that arithmetic FHE cannot. This is
// exactly the hybrid workload that motivates Alchemist's unified
// architecture.
//
// Pipeline (ToLWE):
//
//  1. SlotToCoeff: homomorphically apply the encoding matrix V so each
//     slot value moves into a polynomial coefficient. The transform's
//     rotations are hoisted: one digit decomposition of the input is shared
//     by every diagonal (ckks.EvalLinearTransform), so the bridge pays one
//     ModUp instead of one per rotation.
//  2. Level drop to the last CKKS modulus q0.
//  3. LWE extraction: coefficient j of an RLWE ciphertext is an LWE sample
//     of dimension N under the CKKS ring key.
//  4. Modulus switch q0 → 2^32 (the discretized torus).
//  5. TFHE key switch from the CKKS ring key to the TFHE level-0 key,
//     using a bridge key-switching key.
//
// The resulting samples carry the slot values scaled to scale/q0 of the
// torus; Sign() then runs one programmable bootstrap to binarize.
package bridge

import (
	"context"
	"fmt"
	"math"

	"alchemist/internal/ckks"
	"alchemist/internal/ring"
	"alchemist/internal/tfhe"
)

// Bridge converts CKKS ciphertexts into TFHE LWE samples.
type Bridge struct {
	ckksCtx *ckks.Context
	tf      *tfhe.Scheme
	enc     *ckks.Encoder
	ev      *ckks.Evaluator
	ltS2C   *ckks.LinearTransform
	ksk     [][]*tfhe.LweSample // CKKS ring key (dim N) → TFHE level-0 key
	boot    *tfhe.Bootstrapper  // pinned sign bootstrapper shared by Sign/Compare
}

// New builds a bridge. It needs the CKKS secret (to derive the bridge
// key-switching key — generated once at setup, like any evaluation key) and
// generates the SlotToCoeff rotation keys.
func New(ctx *ckks.Context, kg *ckks.KeyGenerator, sk *ckks.SecretKey, tf *tfhe.Scheme) (*Bridge, error) {
	n := ctx.Params.Slots()
	v, _ := ckks.EncodingMatrices(ctx)
	ltS2C, err := ckks.NewLinearTransformFromMatrix(v, n)
	if err != nil {
		return nil, err
	}
	eks := kg.GenEvaluationKeySet(sk, ltS2C.Rotations(), true)

	// The CKKS secret's signed coefficients form the source LWE key.
	src := make([]int32, ctx.Params.N())
	q0 := ctx.Params.Q[0]
	for j := range src {
		src[j] = int32(ring.SignedCoeff(sk.Q.Coeffs[0][j], q0))
	}
	boot, err := tf.Bootstrapper(
		tfhe.WithTestVector(tf.GateTestVector(tfhe.TorusFromDouble(0.125))))
	if err != nil {
		return nil, err
	}
	return &Bridge{
		ckksCtx: ctx,
		tf:      tf,
		enc:     ckks.NewEncoder(ctx),
		ev:      ckks.NewEvaluator(ctx, eks),
		ltS2C:   ltS2C,
		ksk:     tf.GenKeySwitchKey(src),
		boot:    boot,
	}, nil
}

// SetWorkers fans the worker count out to the bridge's CKKS context (and
// through it to every ring kernel the SlotToCoeff evaluation and the
// extraction run). The TFHE side is already streamed by its own pipeline
// (tfhe.Bootstrapper); its parallelism is configured there.
func (b *Bridge) SetWorkers(n int) { b.ckksCtx.SetWorkers(n) }

// Workers reports the configured worker count (minimum 1).
func (b *Bridge) Workers() int { return b.ckksCtx.Workers() }

// TorusScale returns the factor mapping slot values to torus phases for a
// ciphertext about to be extracted: value·Scale/q0 of the torus.
func (b *Bridge) TorusScale(ct *ckks.Ciphertext) float64 {
	return ct.Scale / float64(b.ckksCtx.Params.Q[0])
}

// ToLWE converts the first `count` slots of a CKKS ciphertext into TFHE
// level-0 LWE samples whose phases are slotValue·TorusScale of the torus.
func (b *Bridge) ToLWE(ct *ckks.Ciphertext, count int) ([]*tfhe.LweSample, error) {
	ctx := b.ckksCtx
	n := ctx.Params.N()
	slots := ctx.Params.Slots()
	if count > slots {
		return nil, fmt.Errorf("bridge: %d samples exceed %d slots", count, slots)
	}
	// SlotToCoeff, then drop to the last modulus.
	s2c, err := b.ev.EvalLinearTransform(ct, b.ltS2C, b.enc)
	if err != nil {
		return nil, err
	}
	s2c, err = b.ev.DropLevel(s2c, 0)
	if err != nil {
		return nil, err
	}
	q0 := ctx.Params.Q[0]
	toTorus := func(v uint64) tfhe.Torus {
		// Round v·2^32/q0 to the discretized torus.
		return tfhe.Torus(math.Round(float64(v) / float64(q0) * 4294967296.0))
	}
	out := make([]*tfhe.LweSample, count)
	for j := 0; j < count; j++ {
		// LWE extraction of coefficient j: phase_j = B_j + Σ_i A'_i·s_i with
		// A'_i = A_{j-i} (negacyclic sign for i > j). TFHE phases subtract
		// the mask, so negate.
		lwe := tfhe.NewLweSample(n)
		bCoeffs := s2c.B.Coeffs[0]
		aCoeffs := s2c.A.Coeffs[0]
		for i := 0; i <= j; i++ {
			lwe.A[i] = -toTorus(aCoeffs[j-i])
		}
		for i := j + 1; i < n; i++ {
			lwe.A[i] = toTorus(aCoeffs[n+j-i])
		}
		lwe.B = toTorus(bCoeffs[j])
		switched, err := b.tf.KeySwitchWith(b.ksk, lwe)
		if err != nil {
			return nil, err
		}
		out[j] = switched
	}
	return out, nil
}

// Sign binarizes a bridged sample with one programmable bootstrap: the
// output is a gate-encoded TFHE boolean (true ⇔ the CKKS value was > 0).
// All signs share the bridge's pinned Bootstrapper, so the sign test vector
// and scratch arenas are built once at bridge setup.
func (b *Bridge) Sign(c *tfhe.LweSample) (*tfhe.LweSample, error) {
	return b.boot.Run(context.Background(), c)
}

// Compare returns an encrypted boolean for x > y on bridged samples
// (sign of the difference).
func (b *Bridge) Compare(x, y *tfhe.LweSample) (*tfhe.LweSample, error) {
	d := x.Copy()
	d.SubTo(y)
	return b.Sign(d)
}

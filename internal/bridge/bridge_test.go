package bridge

import (
	"math"
	"math/rand"
	"testing"

	"alchemist/internal/ckks"
	"alchemist/internal/tfhe"
)

type harness struct {
	ctx *ckks.Context
	enc *ckks.Encoder
	kg  *ckks.KeyGenerator
	sk  *ckks.SecretKey
	et  *ckks.Encryptor
	dt  *ckks.Decryptor
	tf  *tfhe.Scheme
	br  *Bridge
}

var cached *harness

func setup(t testing.TB) *harness {
	t.Helper()
	if cached != nil {
		return cached
	}
	// CKKS: N=2^9, scale 2^42 over 45-bit q0 → bridged phases = value/8.
	params, err := ckks.GenParams(9, 3, 2, 2, 45, 42, 45)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 71)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	tf, err := tfhe.NewScheme(tfhe.FastTestParams(), 72)
	if err != nil {
		t.Fatal(err)
	}
	br, err := New(ctx, kg, sk, tf)
	if err != nil {
		t.Fatal(err)
	}
	cached = &harness{
		ctx: ctx,
		enc: ckks.NewEncoder(ctx),
		kg:  kg,
		sk:  sk,
		et:  ckks.NewEncryptor(ctx, pk, 73),
		dt:  ckks.NewDecryptor(ctx, sk),
		tf:  tf,
		br:  br,
	}
	return cached
}

func (h *harness) encrypt(t testing.TB, z []complex128) *ckks.Ciphertext {
	t.Helper()
	level := h.ctx.Params.MaxLevel()
	pt, err := h.enc.Encode(z, level, h.ctx.Params.Scale)
	if err != nil {
		t.Fatal(err)
	}
	return h.et.Encrypt(pt, level, h.ctx.Params.Scale)
}

func TestBridgePhasesCarrySlotValues(t *testing.T) {
	h := setup(t)
	n := h.ctx.Params.Slots()
	rng := rand.New(rand.NewSource(74))
	z := make([]complex128, n)
	for i := range z {
		z[i] = complex(rng.Float64()*2-1, 0)
	}
	ct := h.encrypt(t, z)
	count := 16
	lwes, err := h.br.ToLWE(ct, count)
	if err != nil {
		t.Fatal(err)
	}
	scale := h.br.TorusScale(ct)
	if scale < 0.05 || scale > 0.3 {
		t.Fatalf("torus scale %v outside the designed ≈1/8 band", scale)
	}
	for j := 0; j < count; j++ {
		phase := tfhe.DoubleFromTorus(h.tf.LweKey.Phase(lwes[j]))
		want := real(z[j]) * scale
		if d := math.Abs(phase - want); d > 0.01 {
			t.Fatalf("slot %d: bridged phase %v, want %v (slot %v)", j, phase, want, real(z[j]))
		}
	}
}

func TestCrossSchemeSign(t *testing.T) {
	// The paper's motivating hybrid: compute under CKKS, compare under TFHE.
	h := setup(t)
	n := h.ctx.Params.Slots()
	z := make([]complex128, n)
	rng := rand.New(rand.NewSource(75))
	for i := range z {
		v := rng.Float64()*1.6 - 0.8
		if v > -0.05 && v < 0.05 {
			v = 0.2 // keep a sign margin: near-zero values are ambiguous under noise
		}
		z[i] = complex(v, 0)
	}
	ct := h.encrypt(t, z)
	count := 12
	lwes, err := h.br.ToLWE(ct, count)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < count; j++ {
		signed, err := h.br.Sign(lwes[j])
		if err != nil {
			t.Fatal(err)
		}
		got := h.tf.DecryptBool(signed)
		want := real(z[j]) > 0
		if got != want {
			t.Fatalf("slot %d: sign(%v) = %v", j, real(z[j]), got)
		}
	}
}

func TestCrossSchemeCompare(t *testing.T) {
	h := setup(t)
	n := h.ctx.Params.Slots()
	z := make([]complex128, n)
	pairs := [][2]float64{{0.7, 0.2}, {-0.3, 0.4}, {0.5, -0.5}, {-0.2, -0.6}}
	for i, p := range pairs {
		z[2*i] = complex(p[0], 0)
		z[2*i+1] = complex(p[1], 0)
	}
	ct := h.encrypt(t, z)
	lwes, err := h.br.ToLWE(ct, 2*len(pairs))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		gt, err := h.br.Compare(lwes[2*i], lwes[2*i+1])
		if err != nil {
			t.Fatal(err)
		}
		if got, want := h.tf.DecryptBool(gt), p[0] > p[1]; got != want {
			t.Fatalf("pair %d: compare(%v, %v) = %v", i, p[0], p[1], got)
		}
	}
}

func TestBridgeAfterHomomorphicCompute(t *testing.T) {
	// Compute (x² - 0.25) under CKKS, then test its sign under TFHE:
	// positive ⇔ |x| > 0.5.
	h := setup(t)
	n := h.ctx.Params.Slots()
	xs := []float64{0.9, 0.1, -0.8, 0.3, 0.7, -0.2}
	z := make([]complex128, n)
	for i, x := range xs {
		z[i] = complex(x, 0)
	}
	ct := h.encrypt(t, z)

	kgEv := h.kg.GenEvaluationKeySet(h.sk, nil, false)
	ev := ckks.NewEvaluator(h.ctx, kgEv)
	sq, err := ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	sq, err = ev.Rescale(sq)
	if err != nil {
		t.Fatal(err)
	}
	quarter := make([]complex128, n)
	for i := range quarter {
		quarter[i] = complex(-0.25, 0)
	}
	pt, err := h.enc.Encode(quarter, sq.Level, sq.Scale)
	if err != nil {
		t.Fatal(err)
	}
	shifted := ev.AddPlain(sq, pt)

	lwes, err := h.br.ToLWE(shifted, len(xs))
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		signed, err := h.br.Sign(lwes[i])
		if err != nil {
			t.Fatal(err)
		}
		if got, want := h.tf.DecryptBool(signed), x*x > 0.25; got != want {
			t.Fatalf("x=%v: sign(x²-0.25) = %v, want %v", x, got, want)
		}
	}
}

func TestToLWEValidation(t *testing.T) {
	h := setup(t)
	z := make([]complex128, h.ctx.Params.Slots())
	ct := h.encrypt(t, z)
	if _, err := h.br.ToLWE(ct, h.ctx.Params.Slots()+1); err == nil {
		t.Fatal("expected slot-count error")
	}
}

// The race detector makes sync.Pool drop a random fraction of Puts (to
// shake out pool races), so zero-allocation pins cannot hold under -race.
//go:build !race

package ckks

import (
	"testing"
)

// Steady-state allocation pins for the evaluator hot paths: with the ring
// arena warm and ciphertext shells recycled, a borrow → compute → Recycle
// cycle must not allocate. This is the contract the live benchmark suite
// (internal/bench) measures and BENCH_PR4.json records.

func allocEvaluator(t *testing.T) (*Context, *Evaluator, *Ciphertext, *Ciphertext) {
	t.Helper()
	ctx, err := NewContext(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	eks := kg.GenEvaluationKeySet(sk, []int{1}, false)
	enc := NewEncoder(ctx)
	et := NewEncryptor(ctx, pk, 2)
	z := make([]complex128, ctx.Params.Slots())
	for i := range z {
		z[i] = complex(float64(i%5)/5, 0)
	}
	level := ctx.Params.MaxLevel()
	pt, err := enc.Encode(z, level, ctx.Params.Scale)
	if err != nil {
		t.Fatal(err)
	}
	ct1 := et.Encrypt(pt, level, ctx.Params.Scale)
	ct2 := et.Encrypt(pt, level, ctx.Params.Scale)
	return ctx, NewEvaluator(ctx, eks), ct1, ct2
}

func TestRescaleAllocFree(t *testing.T) {
	ctx, ev, ct1, _ := allocEvaluator(t)
	warm, err := ev.Rescale(ct1)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Recycle(warm)
	if n := testing.AllocsPerRun(50, func() {
		out, err := ev.Rescale(ct1)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Recycle(out)
	}); n != 0 {
		t.Errorf("warm Rescale+Recycle allocates %.1f per op, want 0", n)
	}
}

func TestMulRelinAllocFree(t *testing.T) {
	ctx, ev, ct1, ct2 := allocEvaluator(t)
	warm, err := ev.MulRelin(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Recycle(warm)
	if n := testing.AllocsPerRun(20, func() {
		out, err := ev.MulRelin(ct1, ct2)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Recycle(out)
	}); n != 0 {
		t.Errorf("warm MulRelin+Recycle allocates %.1f per op, want 0", n)
	}
}

func TestRotateAllocFree(t *testing.T) {
	ctx, ev, ct1, _ := allocEvaluator(t)
	warm, err := ev.Rotate(ct1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Recycle(warm)
	if n := testing.AllocsPerRun(20, func() {
		out, err := ev.Rotate(ct1, 1)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Recycle(out)
	}); n != 0 {
		t.Errorf("warm Rotate+Recycle allocates %.1f per op, want 0", n)
	}
}

func TestKeySwitchFusedAllocFree(t *testing.T) {
	ctx, ev, ct1, _ := allocEvaluator(t)
	level := ct1.Level
	b, a := ev.KeySwitchFused(level, ct1.A, ev.eks.Rlk) // warm
	ctx.RQ.Release(b)
	ctx.RQ.Release(a)
	if n := testing.AllocsPerRun(20, func() {
		b, a := ev.KeySwitchFused(level, ct1.A, ev.eks.Rlk)
		ctx.RQ.Release(b)
		ctx.RQ.Release(a)
	}); n != 0 {
		t.Errorf("warm KeySwitchFused allocates %.1f per op, want 0", n)
	}
}

// TestRotateHoistedAllocFree pins the hoisted batch path end to end:
// DecomposeOnce, the key pre-check, the per-step permuted accumulations and
// the ciphertext wrapping all run from pools.
func TestRotateHoistedAllocFree(t *testing.T) {
	ctx, ev, ct1, _ := allocEvaluator(t)
	steps := []int{1}
	var outs [1]*Ciphertext
	if err := ev.RotateHoistedInto(ct1, steps, outs[:]); err != nil { // warm
		t.Fatal(err)
	}
	ctx.Recycle(outs[0])
	if n := testing.AllocsPerRun(20, func() {
		if err := ev.RotateHoistedInto(ct1, steps, outs[:]); err != nil {
			t.Fatal(err)
		}
		ctx.Recycle(outs[0])
	}); n != 0 {
		t.Errorf("warm RotateHoistedInto+Recycle allocates %.1f per op, want 0", n)
	}
}

package ckks

import "testing"

func benchEvaluator(b *testing.B) (*Context, *Evaluator, *Ciphertext) {
	b.Helper()
	ctx, err := NewContext(TestParams())
	if err != nil {
		b.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	eks := kg.GenEvaluationKeySet(sk, []int{1, 2, 3, 4, 5, 6, 7, 8}, false)
	enc := NewEncoder(ctx)
	et := NewEncryptor(ctx, pk, 2)
	z := make([]complex128, ctx.Params.Slots())
	for i := range z {
		z[i] = complex(float64(i%5)/5, 0)
	}
	level := ctx.Params.MaxLevel()
	pt, err := enc.Encode(z, level, ctx.Params.Scale)
	if err != nil {
		b.Fatal(err)
	}
	return ctx, NewEvaluator(ctx, eks), et.Encrypt(pt, level, ctx.Params.Scale)
}

func BenchmarkKeySwitchEager(b *testing.B) {
	ctx, ev, ct := benchEvaluator(b)
	level := ct.Level
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ksB, ksA := ev.KeySwitch(level, ct.A, ev.eks.Rlk)
		ctx.RQ.Release(ksB)
		ctx.RQ.Release(ksA)
	}
}

func BenchmarkKeySwitchFused(b *testing.B) {
	ctx, ev, ct := benchEvaluator(b)
	level := ct.Level
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ksB, ksA := ev.KeySwitchFused(level, ct.A, ev.eks.Rlk)
		ctx.RQ.Release(ksB)
		ctx.RQ.Release(ksA)
	}
}

func BenchmarkRotateHoisted8(b *testing.B) {
	ctx, ev, ct := benchEvaluator(b)
	steps := []int{1, 2, 3, 4, 5, 6, 7, 8}
	var outs [8]*Ciphertext
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.RotateHoistedInto(ct, steps, outs[:]); err != nil {
			b.Fatal(err)
		}
		for _, out := range outs {
			ctx.Recycle(out)
		}
	}
}

package ckks

import (
	"fmt"
	"math"

	"alchemist/internal/ring"
)

// Bootstrapping (test-scale, functional): refreshes an exhausted level-0
// ciphertext back to a high level through the standard CKKS pipeline:
//
//	ModRaise:    reinterpret the level-0 residues over the full chain;
//	             the plaintext becomes m + q0·I(X) with |I| ≤ h+2 for an
//	             h-sparse secret.
//	CoeffToSlot: homomorphically apply V^{-1} (the encoder's special
//	             inverse FFT) so the slots hold the coefficients / q0.
//	EvalMod:     evaluate sin(2πt)/(2π) via a Chebyshev approximation,
//	             removing the q0·I overflow.
//	SlotToCoeff: apply V to return to the coefficient embedding.
//
// This is the real algorithm at toy parameters (N ≈ 2^6, sparse key): the
// linear transforms are evaluated densely by their diagonals rather than by
// the factored FFT levels, which is exact but needs O(n) rotations — fine at
// test scale, and precisely the workload shape the accelerator model's
// bootstrap graphs describe at N = 2^16.

// BootstrapParams configures the bootstrapper.
type BootstrapParams struct {
	SineDegree int // Chebyshev degree of the sine approximation (odd)
	K          int // bound on the ModRaise overflow |I| (≈ sparse h + 2)
}

// DefaultBootstrapParams returns a configuration for h=4-sparse secrets.
func DefaultBootstrapParams() BootstrapParams {
	return BootstrapParams{SineDegree: 63, K: 6}
}

// Bootstrapper holds the keys and precomputations for bootstrapping.
type Bootstrapper struct {
	ctx *Context
	enc *Encoder
	ev  *Evaluator
	bp  BootstrapParams

	ltC2S *LinearTransform // V^{-1}
	ltS2C *LinearTransform // V
	cheb  []float64        // Chebyshev coefficients of sin(2πRu)/(2π)
	r     float64          // half-range R = K + 1/2
}

// NewBootstrapper builds the transforms and generates every needed key
// (rotations for both dense transforms, conjugation, relinearization).
func NewBootstrapper(ctx *Context, kg *KeyGenerator, sk *SecretKey, bp BootstrapParams) (*Bootstrapper, error) {
	if bp.SineDegree < 7 || bp.SineDegree%2 == 0 {
		return nil, fmt.Errorf("ckks: sine degree %d must be odd and ≥ 7", bp.SineDegree)
	}
	enc := NewEncoder(ctx)
	n := ctx.Params.Slots()
	v, vinv := EncodingMatrices(ctx)
	ltC2S, err := NewLinearTransformFromMatrix(vinv, n)
	if err != nil {
		return nil, err
	}
	ltS2C, err := NewLinearTransformFromMatrix(v, n)
	if err != nil {
		return nil, err
	}

	rotSet := map[int]bool{}
	for _, r := range ltC2S.Rotations() {
		rotSet[r] = true
	}
	for _, r := range ltS2C.Rotations() {
		rotSet[r] = true
	}
	rots := make([]int, 0, len(rotSet))
	for r := range rotSet {
		rots = append(rots, r)
	}
	eks := kg.GenEvaluationKeySet(sk, rots, true)

	bt := &Bootstrapper{
		ctx:   ctx,
		enc:   enc,
		ev:    NewEvaluator(ctx, eks),
		bp:    bp,
		ltC2S: ltC2S,
		ltS2C: ltS2C,
		r:     float64(bp.K) + 0.5,
	}
	bt.cheb = ChebyshevFit(func(u float64) float64 {
		return math.Sin(2*math.Pi*bt.r*u) / (2 * math.Pi)
	}, bp.SineDegree)
	return bt, nil
}

// EncodingMatrices returns the slot↔coefficient matrices V and V^{-1} of
// the canonical embedding (slots = V · packed-coefficients), built column
// by column through the encoder's special FFT network — exact by
// construction. CoeffToSlot evaluates V^{-1} homomorphically, SlotToCoeff
// evaluates V; the cross-scheme bridge reuses V.
func EncodingMatrices(ctx *Context) (v, vinv [][]complex128) {
	enc := NewEncoder(ctx)
	n := ctx.Params.Slots()
	v = make([][]complex128, n)
	vinv = make([][]complex128, n)
	for j := range v {
		v[j] = make([]complex128, n)
		vinv[j] = make([]complex128, n)
	}
	col := make([]complex128, n)
	for c := 0; c < n; c++ {
		for i := range col {
			col[i] = 0
		}
		col[c] = 1
		enc.specialFFT(col)
		for j := 0; j < n; j++ {
			v[j][c] = col[j]
		}
		for i := range col {
			col[i] = 0
		}
		col[c] = 1
		enc.specialIFFT(col)
		for j := 0; j < n; j++ {
			vinv[j][c] = col[j]
		}
	}
	return v, vinv
}

// ChebyshevFit returns the Chebyshev-series coefficients c_0..c_degree of f
// on [-1, 1] (Chebyshev–Gauss quadrature).
func ChebyshevFit(f func(float64) float64, degree int) []float64 {
	m := degree + 1
	vals := make([]float64, m)
	for i := 0; i < m; i++ {
		vals[i] = f(math.Cos(math.Pi * (float64(i) + 0.5) / float64(m)))
	}
	coeffs := make([]float64, m)
	for k := 0; k < m; k++ {
		var s float64
		for i := 0; i < m; i++ {
			s += vals[i] * math.Cos(math.Pi*float64(k)*(float64(i)+0.5)/float64(m))
		}
		coeffs[k] = 2 * s / float64(m)
	}
	coeffs[0] /= 2
	return coeffs
}

// ChebyshevEval evaluates the series at u (plaintext reference, Clenshaw).
func ChebyshevEval(coeffs []float64, u float64) float64 {
	var b1, b2 float64
	for k := len(coeffs) - 1; k >= 1; k-- {
		b1, b2 = coeffs[k]+2*u*b1-b2, b1
	}
	return coeffs[0] + u*b1 - b2
}

// addApprox adds two ciphertexts that are at (possibly) different levels
// with scales equal up to the tiny rescaling drift of near-2^logScale
// primes; the mismatch is absorbed as approximation error.
func (ev *Evaluator) addApprox(a, b *Ciphertext) (*Ciphertext, error) {
	level := a.Level
	if b.Level < level {
		level = b.Level
	}
	out := &Ciphertext{
		B:     ev.ctx.RQ.NewPoly(level),
		A:     ev.ctx.RQ.NewPoly(level),
		Level: level,
		Scale: a.Scale,
	}
	ev.ctx.RQ.Add(level, a.B, b.B, out.B)
	ev.ctx.RQ.Add(level, a.A, b.A, out.A)
	return out, nil
}

func (ev *Evaluator) subApprox(a, b *Ciphertext) (*Ciphertext, error) {
	level := a.Level
	if b.Level < level {
		level = b.Level
	}
	out := &Ciphertext{
		B:     ev.ctx.RQ.NewPoly(level),
		A:     ev.ctx.RQ.NewPoly(level),
		Level: level,
		Scale: a.Scale,
	}
	ev.ctx.RQ.Sub(level, a.B, b.B, out.B)
	ev.ctx.RQ.Sub(level, a.A, b.A, out.A)
	return out, nil
}

// constPlain encodes the constant v (all slots) at the given level & scale.
func (ev *Evaluator) constPlain(v complex128, level int, scale float64, enc *Encoder) (*ring.Poly, error) {
	n := ev.ctx.Params.Slots()
	z := make([]complex128, n)
	for i := range z {
		z[i] = v
	}
	return enc.Encode(z, level, scale)
}

// EvalChebyshev evaluates Σ coeffs[k]·T_k(u) on a ciphertext whose slots lie
// in [-1, 1], using a power tree over the Chebyshev recurrences
// (T_2a = 2T_a²-1, T_{a+b} = 2T_aT_b - T_{a-b}). Depth ⌈log2(degree)⌉ + 1.
func (ev *Evaluator) EvalChebyshev(u *Ciphertext, coeffs []float64, enc *Encoder) (*Ciphertext, error) {
	memo := map[int]*Ciphertext{1: u}
	var build func(k int) (*Ciphertext, error)
	build = func(k int) (*Ciphertext, error) {
		if ct, ok := memo[k]; ok {
			return ct, nil
		}
		var ct *Ciphertext
		if k%2 == 0 {
			half, err := build(k / 2)
			if err != nil {
				return nil, err
			}
			sq, err := ev.MulRelin(half, half)
			if err != nil {
				return nil, err
			}
			sq, err = ev.Rescale(sq)
			if err != nil {
				return nil, err
			}
			two, err := ev.addApprox(sq, sq) // 2T²
			if err != nil {
				return nil, err
			}
			one, err := ev.constPlain(1, two.Level, two.Scale, enc)
			if err != nil {
				return nil, err
			}
			ct = ev.ctx.CopyCt(two)
			ev.ctx.RQ.Sub(ct.Level, ct.B, one, ct.B) // 2T² - 1
		} else {
			a, b := (k+1)/2, k/2
			ta, err := build(a)
			if err != nil {
				return nil, err
			}
			tb, err := build(b)
			if err != nil {
				return nil, err
			}
			prod, err := ev.MulRelin(ta, tb)
			if err != nil {
				return nil, err
			}
			prod, err = ev.Rescale(prod)
			if err != nil {
				return nil, err
			}
			two, err := ev.addApprox(prod, prod) // 2T_aT_b
			if err != nil {
				return nil, err
			}
			ct, err = ev.subApprox(two, u) // - T_{a-b} = -T_1
			if err != nil {
				return nil, err
			}
		}
		memo[k] = ct
		return ct, nil
	}

	// Build every needed T_k, find the deepest level.
	minLevel := u.Level
	for k := 1; k < len(coeffs); k++ {
		if coeffs[k] == 0 {
			continue
		}
		tk, err := build(k)
		if err != nil {
			return nil, err
		}
		if tk.Level < minLevel {
			minLevel = tk.Level
		}
	}
	// Combine: Σ c_k·T_k via one plaintext mult each, all rescaled to the
	// same target level.
	var acc *Ciphertext
	for k := 1; k < len(coeffs); k++ {
		if coeffs[k] == 0 {
			continue
		}
		tk := memo[k]
		tk, err := ev.DropLevel(tk, minLevel)
		if err != nil {
			return nil, err
		}
		pt, err := ev.constPlain(complex(coeffs[k], 0), tk.Level, ev.ctx.Params.Scale, enc)
		if err != nil {
			return nil, err
		}
		term := ev.MulPlain(tk, pt, ev.ctx.Params.Scale)
		term, err = ev.Rescale(term)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = term
		} else {
			acc, err = ev.addApprox(acc, term)
			if err != nil {
				return nil, err
			}
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("ckks: Chebyshev series has no non-constant terms")
	}
	if coeffs[0] != 0 {
		pt, err := ev.constPlain(complex(coeffs[0], 0), acc.Level, acc.Scale, enc)
		if err != nil {
			return nil, err
		}
		acc = ev.AddPlain(acc, pt)
	}
	return acc, nil
}

// modRaise reinterprets a level-0 ciphertext over levels 0..target: each
// residue v ∈ [0, q0) is lifted to v mod q_i. The plaintext becomes
// m + q0·I(X); the returned ciphertext's Scale is declared to be q0, so its
// slots read as t = (scale·m)/q0 + I.
func (bt *Bootstrapper) modRaise(ct *Ciphertext, target int) *Ciphertext {
	ctx := bt.ctx
	out := &Ciphertext{
		B:     ctx.RQ.NewPoly(target),
		A:     ctx.RQ.NewPoly(target),
		Level: target,
		Scale: float64(ctx.Params.Q[0]),
	}
	n := ctx.Params.N()
	for j := 0; j < n; j++ {
		vb := ct.B.Coeffs[0][j]
		va := ct.A.Coeffs[0][j]
		for i := 0; i <= target; i++ {
			sub := ctx.RQ.SubRings[i]
			out.B.Coeffs[i][j] = sub.ReduceWord(vb)
			out.A.Coeffs[i][j] = sub.ReduceWord(va)
		}
	}
	return out
}

// Bootstrap refreshes a level-0 ciphertext, returning an encryption of the
// same slots at a higher level. The input must have been encrypted under an
// h-sparse secret with h + 2 ≤ bp.K.
func (bt *Bootstrapper) Bootstrap(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level != 0 {
		return nil, fmt.Errorf("ckks: bootstrap input must be at level 0, got %d", ct.Level)
	}
	ctx := bt.ctx
	ev := bt.ev
	msgScale := ct.Scale
	q0 := float64(ctx.Params.Q[0])

	raised := bt.modRaise(ct, ctx.RQ.MaxLevel())

	// CoeffToSlot: slots become w = t_lo + i·t_hi with t = coeffs/q0.
	w, err := ev.EvalLinearTransform(raised, bt.ltC2S, bt.enc)
	if err != nil {
		return nil, err
	}
	wc, err := ev.Conjugate(w)
	if err != nil {
		return nil, err
	}
	sum, err := ev.Add(w, wc) // 2·t_lo
	if err != nil {
		return nil, err
	}
	diff, err := ev.Sub(w, wc) // 2i·t_hi
	if err != nil {
		return nil, err
	}
	// Normalize into [-1, 1]: u = t / R, folding the ½ from the sums in.
	uLo, err := ev.MulConst(sum, complex(1/(2*bt.r), 0), bt.enc)
	if err != nil {
		return nil, err
	}
	uHi, err := ev.MulConst(diff, complex(0, -1/(2*bt.r)), bt.enc)
	if err != nil {
		return nil, err
	}

	// EvalMod: remove the q0·I overflow with the sine approximation.
	mLo, err := ev.EvalChebyshev(uLo, bt.cheb, bt.enc)
	if err != nil {
		return nil, err
	}
	mHi, err := ev.EvalChebyshev(uHi, bt.cheb, bt.enc)
	if err != nil {
		return nil, err
	}

	// Recombine w' = mLo + i·mHi and SlotToCoeff.
	iHi, err := ev.MulConst(mHi, complex(0, 1), bt.enc)
	if err != nil {
		return nil, err
	}
	mLo, err = ev.DropLevel(mLo, iHi.Level)
	if err != nil {
		return nil, err
	}
	rec, err := ev.addApprox(mLo, iHi)
	if err != nil {
		return nil, err
	}
	out, err := ev.EvalLinearTransform(rec, bt.ltS2C, bt.enc)
	if err != nil {
		return nil, err
	}
	// The slots now hold (msgScale/q0)·z; fold that into the scale.
	out.Scale = out.Scale * msgScale / q0
	return out, nil
}

// Evaluator returns the bootstrapper's evaluator (which holds the dense
// rotation key set) for further computation on refreshed ciphertexts.
func (bt *Bootstrapper) Evaluator() *Evaluator { return bt.ev }

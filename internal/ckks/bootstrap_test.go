package ckks

import (
	"math"
	"math/rand"
	"testing"
)

func TestChebyshevFitAccuracy(t *testing.T) {
	// The sine approximation used by EvalMod must be accurate over the full
	// range before we trust it homomorphically.
	r := 6.5
	f := func(u float64) float64 { return math.Sin(2*math.Pi*r*u) / (2 * math.Pi) }
	coeffs := ChebyshevFit(f, 63)
	for u := -1.0; u <= 1.0; u += 1.0 / 512 {
		got := ChebyshevEval(coeffs, u)
		if d := math.Abs(got - f(u)); d > 1e-4 {
			t.Fatalf("Chebyshev fit error %.2e at u=%v", d, u)
		}
	}
	// Sine is odd: even coefficients must vanish.
	for k := 0; k < len(coeffs); k += 2 {
		if math.Abs(coeffs[k]) > 1e-12 {
			t.Fatalf("even coefficient c_%d = %v should vanish", k, coeffs[k])
		}
	}
}

func bootstrapContext(t testing.TB) (*Context, *KeyGenerator, *SecretKey) {
	t.Helper()
	// Toy bootstrap parameters: N=2^6, 15 moduli of ~45 bits (scale 2^45),
	// dnum=8 so each digit group (α=2 primes ≈ 2^90) stays below
	// P ≈ 2^138, h=4-sparse secret. Zero security — functional pipeline only.
	params, err := GenParams(6, 14, 8, 3, 45, 45, 46)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 4242)
	sk := kg.GenSecretKeySparse(4)
	return ctx, kg, sk
}

func TestEvalChebyshevHomomorphic(t *testing.T) {
	ctx, kg, sk := bootstrapContext(t)
	params := ctx.Params
	enc := NewEncoder(ctx)
	pk := kg.GenPublicKey(sk)
	eks := kg.GenEvaluationKeySet(sk, nil, false)
	ev := NewEvaluator(ctx, eks)
	et := NewEncryptor(ctx, pk, 11)
	dt := NewDecryptor(ctx, sk)

	// Evaluate a degree-15 Chebyshev series of exp(u)/3 homomorphically.
	f := func(u float64) float64 { return math.Exp(u) / 3 }
	coeffs := ChebyshevFit(f, 15)
	rng := rand.New(rand.NewSource(12))
	z := make([]complex128, params.Slots())
	for i := range z {
		z[i] = complex(rng.Float64()*2-1, 0)
	}
	level := params.MaxLevel()
	pt, _ := enc.Encode(z, level, params.Scale)
	ct := et.Encrypt(pt, level, params.Scale)

	res, err := ev.EvalChebyshev(ct, coeffs, enc)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(dt.DecryptPoly(res), res.Level, res.Scale)
	for i := range z {
		want := f(real(z[i]))
		if d := math.Abs(real(got[i]) - want); d > 1e-3 {
			t.Fatalf("slot %d: cheb(%v) = %v want %v", i, real(z[i]), real(got[i]), want)
		}
	}
}

func TestSecretKeySparsity(t *testing.T) {
	ctx, kg, sk := bootstrapContext(t)
	count := 0
	q0 := ctx.Params.Q[0]
	for j := 0; j < ctx.Params.N(); j++ {
		if sk.Q.Coeffs[0][j] != 0 {
			count++
			v := sk.Q.Coeffs[0][j]
			if v != 1 && v != q0-1 {
				t.Fatalf("sparse key coefficient %d not ternary", v)
			}
		}
	}
	if count != 4 {
		t.Fatalf("sparse key has %d non-zeros, want 4", count)
	}
	_ = kg
}

func TestBootstrapRefreshesCiphertext(t *testing.T) {
	ctx, kg, sk := bootstrapContext(t)
	params := ctx.Params
	bt, err := NewBootstrapper(ctx, kg, sk, DefaultBootstrapParams())
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(ctx)
	pk := kg.GenPublicKey(sk)
	et := NewEncryptor(ctx, pk, 13)
	dt := NewDecryptor(ctx, sk)

	rng := rand.New(rand.NewSource(14))
	z := make([]complex128, params.Slots())
	for i := range z {
		z[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	// Encrypt at level 0 with a message scale well below q0.
	msgScale := math.Exp2(34)
	pt, err := enc.Encode(z, 0, msgScale)
	if err != nil {
		t.Fatal(err)
	}
	ct := et.Encrypt(pt, 0, msgScale)

	out, err := bt.Bootstrap(ct)
	if err != nil {
		t.Fatal(err)
	}
	if out.Level < 1 {
		t.Fatalf("bootstrap must recover usable levels, got %d", out.Level)
	}
	got := enc.Decode(dt.DecryptPoly(out), out.Level, out.Scale)
	var worst float64
	for i := range z {
		re := math.Abs(real(got[i]) - real(z[i]))
		im := math.Abs(imag(got[i]) - imag(z[i]))
		if re > worst {
			worst = re
		}
		if im > worst {
			worst = im
		}
	}
	if worst > 0.02 {
		t.Fatalf("bootstrap error %.4f exceeds tolerance", worst)
	}
	t.Logf("bootstrap: level 0 -> %d, max slot error %.2e", out.Level, worst)

	// The refreshed ciphertext must support further computation.
	ev := bt.Evaluator()
	sq, err := ev.MulRelin(out, out)
	if err != nil {
		t.Fatal(err)
	}
	sq, err = ev.Rescale(sq)
	if err != nil {
		t.Fatal(err)
	}
	got2 := enc.Decode(dt.DecryptPoly(sq), sq.Level, sq.Scale)
	for i := range z {
		want := z[i] * z[i]
		d := got2[i] - want
		if math.Abs(real(d)) > 0.05 || math.Abs(imag(d)) > 0.05 {
			t.Fatalf("post-bootstrap square wrong at %d: got %v want %v", i, got2[i], want)
		}
	}
}

func TestBootstrapRejectsWrongLevel(t *testing.T) {
	ctx, kg, sk := bootstrapContext(t)
	bt, err := NewBootstrapper(ctx, kg, sk, DefaultBootstrapParams())
	if err != nil {
		t.Fatal(err)
	}
	bad := &Ciphertext{
		B:     ctx.RQ.NewPoly(2),
		A:     ctx.RQ.NewPoly(2),
		Level: 2,
		Scale: ctx.Params.Scale,
	}
	if _, err := bt.Bootstrap(bad); err == nil {
		t.Fatal("expected level error")
	}
	if _, err := NewBootstrapper(ctx, kg, sk, BootstrapParams{SineDegree: 8, K: 6}); err == nil {
		t.Fatal("expected degree validation error")
	}
}

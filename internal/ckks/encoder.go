package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"alchemist/internal/modmath"
	"alchemist/internal/ring"
)

// Encoder maps vectors of N/2 complex slots to ring elements through the
// canonical embedding: slot k corresponds to evaluation of the message
// polynomial at ζ^(5^k mod 2N), ζ = exp(iπ/N).
type Encoder struct {
	ctx      *Context
	n        int          // slots = N/2
	m        int          // 2N
	roots    []complex128 // roots[k] = exp(2πi k / 2N), k ∈ [0, 2N)
	rotGroup []int        // 5^j mod 2N
}

// NewEncoder builds an encoder for the context.
func NewEncoder(ctx *Context) *Encoder {
	n := ctx.Params.Slots()
	m := 4 * n // 2N
	e := &Encoder{ctx: ctx, n: n, m: m}
	e.roots = make([]complex128, m+1)
	for k := 0; k <= m; k++ {
		angle := 2 * math.Pi * float64(k) / float64(m)
		e.roots[k] = cmplx.Rect(1, angle)
	}
	e.rotGroup = make([]int, n)
	fivePow := 1
	for j := 0; j < n; j++ {
		e.rotGroup[j] = fivePow
		fivePow = fivePow * 5 % m
	}
	return e
}

// Encode packs values (≤ N/2 complex slots, zero-padded) into a fresh
// coefficient-domain polynomial at the given level and scale.
func (e *Encoder) Encode(values []complex128, level int, scale float64) (*ring.Poly, error) {
	if len(values) > e.n {
		return nil, fmt.Errorf("ckks: %d values exceed %d slots", len(values), e.n)
	}
	w := make([]complex128, e.n)
	copy(w, values)
	e.specialIFFT(w)
	p := e.ctx.RQ.NewPoly(level)
	for j := 0; j < e.n; j++ {
		e.setCoeff(p, j, math.Round(real(w[j])*scale), level)
		e.setCoeff(p, j+e.n, math.Round(imag(w[j])*scale), level)
	}
	return p, nil
}

// Decode reads slots back from a coefficient-domain polynomial.
func (e *Encoder) Decode(p *ring.Poly, level int, scale float64) []complex128 {
	w := make([]complex128, e.n)
	for j := 0; j < e.n; j++ {
		re := e.centeredCoeff(p, j, level)
		im := e.centeredCoeff(p, j+e.n, level)
		w[j] = complex(re/scale, im/scale)
	}
	e.specialFFT(w)
	return w
}

// setCoeff writes the signed value v into coefficient j across levels 0..level.
func (e *Encoder) setCoeff(p *ring.Poly, j int, v float64, level int) {
	neg := v < 0
	abs := uint64(math.Abs(v))
	for i := 0; i <= level; i++ {
		q := e.ctx.RQ.Moduli[i]
		r := e.ctx.RQ.SubRings[i].ReduceWord(abs)
		if neg && r != 0 {
			r = q - r
		}
		p.Coeffs[i][j] = r
	}
}

// centeredCoeff reads coefficient j as a centered float, CRT-reconstructing
// across levels 0..level so that coefficients larger than q_0 (e.g. after a
// multiplication, before rescaling) decode correctly.
func (e *Encoder) centeredCoeff(p *ring.Poly, j, level int) float64 {
	if level == 0 {
		return float64(ring.SignedCoeff(p.Coeffs[0][j], e.ctx.RQ.Moduli[0]))
	}
	moduli := e.ctx.RQ.Moduli[:level+1]
	res := make([]uint64, level+1)
	for i := range res {
		res[i] = p.Coeffs[i][j]
	}
	x := modmath.CRTReconstruct(res, moduli)
	q := e.ctx.RQ.Modulus(level)
	half := new(big.Int).Rsh(q, 1)
	if x.Cmp(half) > 0 {
		x.Sub(x, q)
	}
	f, _ := new(big.Float).SetInt(x).Float64()
	return f
}

// specialFFT evaluates the half-DFT used for decoding:
// out[k] = Σ_j w[j] · ζ^(j · 5^k mod 2N). In-place, O(n log n).
func (e *Encoder) specialFFT(vals []complex128) {
	n := len(vals)
	bitReverseComplex(vals)
	for length := 2; length <= n; length <<= 1 {
		lenh := length >> 1
		lenq := length << 2
		gap := e.m / lenq
		for i := 0; i < n; i += length {
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * gap
				u := vals[i+j]
				v := vals[i+j+lenh] * e.roots[idx]
				vals[i+j] = u + v
				vals[i+j+lenh] = u - v
			}
		}
	}
}

// specialIFFT inverts specialFFT (encoding direction).
func (e *Encoder) specialIFFT(vals []complex128) {
	n := len(vals)
	for length := n; length >= 2; length >>= 1 {
		lenh := length >> 1
		lenq := length << 2
		gap := e.m / lenq
		for i := 0; i < n; i += length {
			for j := 0; j < lenh; j++ {
				idx := (lenq - (e.rotGroup[j] % lenq)) * gap
				u := vals[i+j] + vals[i+j+lenh]
				v := (vals[i+j] - vals[i+j+lenh]) * e.roots[idx]
				vals[i+j] = u
				vals[i+j+lenh] = v
			}
		}
	}
	bitReverseComplex(vals)
	inv := complex(1/float64(n), 0)
	for i := range vals {
		vals[i] *= inv
	}
}

func bitReverseComplex(v []complex128) {
	n := len(v)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		j := 0
		x := i
		for b := 0; b < bits; b++ {
			j = j<<1 | (x & 1)
			x >>= 1
		}
		if i < j {
			v[i], v[j] = v[j], v[i]
		}
	}
}

// decodeDirect is the O(n·N) reference decode used to validate the FFT
// network: z_k = (1/scale) · m(ζ^(5^k)) with centered coefficients.
func (e *Encoder) decodeDirect(p *ring.Poly, level int, scale float64) []complex128 {
	nCoeffs := 2 * e.n
	coeffs := make([]float64, nCoeffs)
	for j := 0; j < nCoeffs; j++ {
		coeffs[j] = e.centeredCoeff(p, j, level)
	}
	out := make([]complex128, e.n)
	for k := 0; k < e.n; k++ {
		pk := e.rotGroup[k]
		var acc complex128
		for j := 0; j < nCoeffs; j++ {
			acc += complex(coeffs[j], 0) * e.roots[(j*pk)%e.m]
		}
		out[k] = acc / complex(scale, 0)
	}
	return out
}

// encodeDirect is the O(n·N) reference encode:
// m_j = round((2·scale/N) · Re( Σ_k z_k · ζ^(-j·5^k) )).
func (e *Encoder) encodeDirect(values []complex128, level int, scale float64) *ring.Poly {
	nCoeffs := 2 * e.n
	p := e.ctx.RQ.NewPoly(level)
	for j := 0; j < nCoeffs; j++ {
		var acc complex128
		for k := 0; k < e.n && k < len(values); k++ {
			pk := e.rotGroup[k]
			acc += values[k] * e.roots[(e.m-(j*pk)%e.m)%e.m]
		}
		v := math.Round(real(acc) * scale / float64(e.n))
		e.setCoeff(p, j, v, level)
	}
	return p
}

package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func smallContext(t testing.TB, logN int) *Context {
	t.Helper()
	p, err := GenParams(logN, 3, 2, 2, 55, 40, 55)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func randomSlots(n int, seed int64, amp float64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	z := make([]complex128, n)
	for i := range z {
		z[i] = complex((rng.Float64()*2-1)*amp, (rng.Float64()*2-1)*amp)
	}
	return z
}

func maxSlotError(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, logN := range []int{6, 8, 10} {
		ctx := smallContext(t, logN)
		enc := NewEncoder(ctx)
		z := randomSlots(ctx.Params.Slots(), 5, 1.0)
		level := ctx.Params.MaxLevel()
		p, err := enc.Encode(z, level, ctx.Params.Scale)
		if err != nil {
			t.Fatal(err)
		}
		back := enc.Decode(p, level, ctx.Params.Scale)
		if e := maxSlotError(z, back); e > 1e-7 {
			t.Fatalf("logN=%d: round-trip error %v", logN, e)
		}
	}
}

func TestFFTMatchesDirectDecode(t *testing.T) {
	ctx := smallContext(t, 7)
	enc := NewEncoder(ctx)
	z := randomSlots(ctx.Params.Slots(), 6, 1.0)
	level := ctx.Params.MaxLevel()
	p, err := enc.Encode(z, level, ctx.Params.Scale)
	if err != nil {
		t.Fatal(err)
	}
	fast := enc.Decode(p, level, ctx.Params.Scale)
	direct := enc.decodeDirect(p, level, ctx.Params.Scale)
	if e := maxSlotError(fast, direct); e > 1e-6 {
		t.Fatalf("FFT decode != direct decode: %v", e)
	}
}

func TestFFTMatchesDirectEncode(t *testing.T) {
	ctx := smallContext(t, 7)
	enc := NewEncoder(ctx)
	z := randomSlots(ctx.Params.Slots(), 7, 1.0)
	level := ctx.Params.MaxLevel()
	fast, err := enc.Encode(z, level, ctx.Params.Scale)
	if err != nil {
		t.Fatal(err)
	}
	direct := enc.encodeDirect(z, level, ctx.Params.Scale)
	n := ctx.Params.N()
	q0 := ctx.RQ.Moduli[0]
	for j := 0; j < n; j++ {
		a, b := fast.Coeffs[0][j], direct.Coeffs[0][j]
		d := int64(a) - int64(b)
		if d < 0 {
			d = -d
		}
		if d > 1 && uint64(d) != q0-1 { // allow ±1 rounding disagreement
			t.Fatalf("coeff %d: fast=%d direct=%d", j, a, b)
		}
	}
}

func TestEncodingIsMultiplicative(t *testing.T) {
	// decode(encode(z1) * encode(z2)) == z1 ⊙ z2 (scale²): the canonical
	// embedding is a ring homomorphism.
	ctx := smallContext(t, 8)
	enc := NewEncoder(ctx)
	level := ctx.Params.MaxLevel()
	z1 := randomSlots(ctx.Params.Slots(), 8, 1.0)
	z2 := randomSlots(ctx.Params.Slots(), 9, 1.0)
	p1, _ := enc.Encode(z1, level, ctx.Params.Scale)
	p2, _ := enc.Encode(z2, level, ctx.Params.Scale)
	prod := ctx.RQ.NewPoly(level)
	ctx.RQ.MulPoly(level, p1, p2, prod)
	got := enc.Decode(prod, level, ctx.Params.Scale*ctx.Params.Scale)
	want := make([]complex128, len(z1))
	for i := range want {
		want[i] = z1[i] * z2[i]
	}
	if e := maxSlotError(got, want); e > 1e-4 {
		t.Fatalf("embedding not multiplicative: error %v", e)
	}
}

func TestEncodingIsAdditive(t *testing.T) {
	ctx := smallContext(t, 8)
	enc := NewEncoder(ctx)
	level := ctx.Params.MaxLevel()
	z1 := randomSlots(ctx.Params.Slots(), 10, 1.0)
	z2 := randomSlots(ctx.Params.Slots(), 11, 1.0)
	p1, _ := enc.Encode(z1, level, ctx.Params.Scale)
	p2, _ := enc.Encode(z2, level, ctx.Params.Scale)
	sum := ctx.RQ.NewPoly(level)
	ctx.RQ.Add(level, p1, p2, sum)
	got := enc.Decode(sum, level, ctx.Params.Scale)
	want := make([]complex128, len(z1))
	for i := range want {
		want[i] = z1[i] + z2[i]
	}
	if e := maxSlotError(got, want); e > 1e-7 {
		t.Fatalf("embedding not additive: error %v", e)
	}
}

func TestEncodeRejectsTooManyValues(t *testing.T) {
	ctx := smallContext(t, 6)
	enc := NewEncoder(ctx)
	_, err := enc.Encode(make([]complex128, ctx.Params.Slots()+1), 0, ctx.Params.Scale)
	if err == nil {
		t.Fatal("expected error for too many slots")
	}
}

func TestRotationOfSlotsViaAutomorphism(t *testing.T) {
	// Applying φ_{5^r} to the plaintext rotates the slot vector by r.
	ctx := smallContext(t, 8)
	enc := NewEncoder(ctx)
	level := ctx.Params.MaxLevel()
	n := ctx.Params.Slots()
	z := randomSlots(n, 12, 1.0)
	p, _ := enc.Encode(z, level, ctx.Params.Scale)
	for _, r := range []int{1, 3, n / 2, n - 1} {
		k := ctx.RQ.GaloisElementForRotation(r)
		rot := ctx.RQ.NewPoly(level)
		ctx.RQ.Automorphism(level, p, k, rot)
		got := enc.Decode(rot, level, ctx.Params.Scale)
		want := make([]complex128, n)
		for i := range want {
			want[i] = z[(i+r)%n]
		}
		if e := maxSlotError(got, want); e > 1e-6 {
			t.Fatalf("rotation by %d failed: error %v", r, e)
		}
	}
}

func TestConjugationViaAutomorphism(t *testing.T) {
	ctx := smallContext(t, 8)
	enc := NewEncoder(ctx)
	level := ctx.Params.MaxLevel()
	z := randomSlots(ctx.Params.Slots(), 13, 1.0)
	p, _ := enc.Encode(z, level, ctx.Params.Scale)
	conj := ctx.RQ.NewPoly(level)
	ctx.RQ.Automorphism(level, p, ctx.RQ.GaloisElementConjugate(), conj)
	got := enc.Decode(conj, level, ctx.Params.Scale)
	for i := range z {
		if cmplx.Abs(got[i]-cmplx.Conj(z[i])) > 1e-6 {
			t.Fatalf("conjugation failed at slot %d", i)
		}
	}
}

func TestEncodeLargeAmplitudePrecision(t *testing.T) {
	ctx := smallContext(t, 8)
	enc := NewEncoder(ctx)
	level := ctx.Params.MaxLevel()
	z := randomSlots(ctx.Params.Slots(), 14, 100.0)
	p, _ := enc.Encode(z, level, ctx.Params.Scale)
	back := enc.Decode(p, level, ctx.Params.Scale)
	if e := maxSlotError(z, back); e > 1e-5 {
		t.Fatalf("large-amplitude round trip error %v", e)
	}
	_ = math.Pi
}

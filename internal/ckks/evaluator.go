package ckks

import (
	"fmt"

	"alchemist/internal/prng"
	"alchemist/internal/ring"
)

// Ciphertext is a degree-1 CKKS ciphertext (B, A) over Q with decryption
// B + A·s. Both polynomials are kept in the coefficient domain.
type Ciphertext struct {
	B, A  *ring.Poly
	Level int
	Scale float64
}

// CopyCt returns a deep copy.
func (ctx *Context) CopyCt(ct *Ciphertext) *Ciphertext {
	return &Ciphertext{
		B:     ctx.RQ.Clone(ct.Level, ct.B),
		A:     ctx.RQ.Clone(ct.Level, ct.A),
		Level: ct.Level,
		Scale: ct.Scale,
	}
}

// borrowCt assembles a ciphertext at the given level from the ring arena.
// The polynomial contents are arbitrary; every producer below overwrites
// them in full before the ciphertext escapes.
func (ctx *Context) borrowCt(level int, scale float64) *Ciphertext {
	return ctx.wrapCt(ctx.RQ.Borrow(level), ctx.RQ.Borrow(level), level, scale) //alchemist:owns Borrow wrapper: Recycle returns both polys to the arena
}

// wrapCt dresses existing polynomials in a (possibly recycled) Ciphertext
// shell.
func (ctx *Context) wrapCt(b, a *ring.Poly, level int, scale float64) *Ciphertext {
	ct, _ := ctx.ctPool.Get().(*Ciphertext)
	if ct == nil {
		ct = &Ciphertext{}
	}
	ct.B, ct.A, ct.Level, ct.Scale = b, a, level, scale
	return ct
}

// Recycle returns a ciphertext produced by this context to the arena. It is
// optional — an unrecycled ciphertext is simply collected by the GC — but a
// steady-state evaluation loop that recycles its intermediates runs
// allocation-free. The ciphertext must not be used after Recycle.
func (ctx *Context) Recycle(ct *Ciphertext) {
	if ct == nil {
		return
	}
	ctx.RQ.Release(ct.B)
	ctx.RQ.Release(ct.A)
	ct.B, ct.A = nil, nil
	ctx.ctPool.Put(ct)
}

// Encryptor encrypts plaintext polynomials under a public key.
type Encryptor struct {
	ctx *Context
	pk  *PublicKey
	rng prng.Source
}

// NewEncryptor returns an encryptor with deterministic randomness.
func NewEncryptor(ctx *Context, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{ctx: ctx, pk: pk, rng: prng.New(seed)}
}

// Encrypt encrypts the coefficient-domain plaintext pt at its level:
// (B, A) = (u·pk.B + e0 + pt, u·pk.A + e1).
func (e *Encryptor) Encrypt(pt *ring.Poly, level int, scale float64) *Ciphertext {
	ctx := e.ctx
	n := ctx.Params.N()
	kg := &KeyGenerator{ctx: ctx, rng: e.rng}
	u := setSigned(ctx.RQ, level, kg.signedTernary(n, 2.0/3.0))
	e0 := setSigned(ctx.RQ, level, kg.signedGaussian(n, ctx.Params.Sigma))
	e1 := setSigned(ctx.RQ, level, kg.signedGaussian(n, ctx.Params.Sigma))

	b := ctx.RQ.NewPoly(level)
	a := ctx.RQ.NewPoly(level)
	ctx.RQ.MulPoly(level, e.pk.B, u, b)
	ctx.RQ.MulPoly(level, e.pk.A, u, a)
	ctx.RQ.Add(level, b, e0, b)
	ctx.RQ.Add(level, b, pt, b)
	ctx.RQ.Add(level, a, e1, a)
	return &Ciphertext{B: b, A: a, Level: level, Scale: scale}
}

// Decryptor decrypts ciphertexts with the secret key.
type Decryptor struct {
	ctx *Context
	sk  *SecretKey
}

// NewDecryptor returns a decryptor.
func NewDecryptor(ctx *Context, sk *SecretKey) *Decryptor {
	return &Decryptor{ctx: ctx, sk: sk}
}

// DecryptPoly returns the plaintext polynomial B + A·s at ct's level.
func (d *Decryptor) DecryptPoly(ct *Ciphertext) *ring.Poly {
	ctx := d.ctx
	out := ctx.RQ.NewPoly(ct.Level)
	ctx.RQ.MulPoly(ct.Level, ct.A, d.sk.Q, out)
	ctx.RQ.Add(ct.Level, out, ct.B, out)
	return out
}

// Evaluator performs homomorphic operations using an evaluation key set.
type Evaluator struct {
	ctx *Context
	eks *EvaluationKeySet
}

// NewEvaluator returns an evaluator. eks may be nil for key-free operations
// (Add, MulPlain, Rescale).
func NewEvaluator(ctx *Context, eks *EvaluationKeySet) *Evaluator {
	return &Evaluator{ctx: ctx, eks: eks}
}

func (ev *Evaluator) alignLevels(a, b *Ciphertext) int {
	if a.Level < b.Level {
		return a.Level
	}
	return b.Level
}

// Add returns a + b (equal scales required).
func (ev *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := sameScale(a, b); err != nil {
		return nil, err
	}
	level := ev.alignLevels(a, b)
	out := &Ciphertext{
		B:     ev.ctx.RQ.NewPoly(level),
		A:     ev.ctx.RQ.NewPoly(level),
		Level: level,
		Scale: a.Scale,
	}
	ev.ctx.RQ.Add(level, a.B, b.B, out.B)
	ev.ctx.RQ.Add(level, a.A, b.A, out.A)
	return out, nil
}

// Sub returns a - b (equal scales required).
func (ev *Evaluator) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if err := sameScale(a, b); err != nil {
		return nil, err
	}
	level := ev.alignLevels(a, b)
	out := &Ciphertext{
		B:     ev.ctx.RQ.NewPoly(level),
		A:     ev.ctx.RQ.NewPoly(level),
		Level: level,
		Scale: a.Scale,
	}
	ev.ctx.RQ.Sub(level, a.B, b.B, out.B)
	ev.ctx.RQ.Sub(level, a.A, b.A, out.A)
	return out, nil
}

func sameScale(a, b *Ciphertext) error {
	ratio := a.Scale / b.Scale
	if ratio < 0.999999 || ratio > 1.000001 {
		return fmt.Errorf("ckks: scale mismatch %g vs %g", a.Scale, b.Scale)
	}
	return nil
}

// AddPlain returns ct + pt where pt is encoded at ct's scale.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *ring.Poly) *Ciphertext {
	out := ev.ctx.CopyCt(ct)
	ev.ctx.RQ.Add(ct.Level, out.B, pt, out.B)
	return out
}

// MulPlain returns ct ⊙ pt (the paper's Pmult). The output scale is the
// product of the two scales; the caller typically rescales afterwards.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *ring.Poly, ptScale float64) *Ciphertext {
	ctx := ev.ctx
	level := ct.Level
	out := &Ciphertext{
		B:     ctx.RQ.NewPoly(level),
		A:     ctx.RQ.NewPoly(level),
		Level: level,
		Scale: ct.Scale * ptScale,
	}
	ctx.RQ.MulPoly(level, ct.B, pt, out.B)
	ctx.RQ.MulPoly(level, ct.A, pt, out.A)
	return out
}

// MulRelin returns a ⊙ b with relinearization (the paper's Cmult, before
// rescaling).
func (ev *Evaluator) MulRelin(a, b *Ciphertext) (*Ciphertext, error) {
	if ev.eks == nil || ev.eks.Rlk == nil {
		return nil, fmt.Errorf("ckks: relinearization key missing")
	}
	ctx := ev.ctx
	level := ev.alignLevels(a, b)
	rq := ctx.RQ

	// Tensor in the NTT domain. All scratch comes from the ring arena; the
	// tensor outputs d0/d1 become the result ciphertext's polynomials.
	b1 := rq.Borrow(level)
	a1 := rq.Borrow(level)
	b2 := rq.Borrow(level)
	a2 := rq.Borrow(level)
	rq.CopyLevel(level, a.B, b1)
	rq.CopyLevel(level, a.A, a1)
	rq.CopyLevel(level, b.B, b2)
	rq.CopyLevel(level, b.A, a2)
	rq.NTT(level, b1)
	rq.NTT(level, a1)
	rq.NTT(level, b2)
	rq.NTT(level, a2)

	out := ctx.borrowCt(level, a.Scale*b.Scale)
	d0, d1 := out.B, out.A
	d2 := rq.Borrow(level)
	rq.MulCoeffs(level, b1, b2, d0)
	rq.MulCoeffs(level, b1, a2, d1)
	rq.MulCoeffsAndAdd(level, a1, b2, d1)
	rq.MulCoeffs(level, a1, a2, d2)
	rq.Release(b1)
	rq.Release(a1)
	rq.Release(b2)
	rq.Release(a2)
	rq.INTT(level, d0)
	rq.INTT(level, d1)
	rq.INTT(level, d2)

	ksB, ksA := ev.KeySwitchFused(level, d2, ev.eks.Rlk)
	rq.Release(d2)
	rq.Add(level, d0, ksB, d0)
	rq.Add(level, d1, ksA, d1)
	rq.Release(ksB)
	rq.Release(ksA)
	return out, nil //alchemist:owns the product ciphertext is the caller's to Recycle
}

// DropLevel returns ct restricted to the given (lower) level, leaving the
// scale untouched.
func (ev *Evaluator) DropLevel(ct *Ciphertext, level int) (*Ciphertext, error) {
	if level > ct.Level || level < 0 {
		return nil, fmt.Errorf("ckks: cannot drop from level %d to %d", ct.Level, level)
	}
	out := &Ciphertext{
		B:     ev.ctx.RQ.Clone(level, ct.B),
		A:     ev.ctx.RQ.Clone(level, ct.A),
		Level: level,
		Scale: ct.Scale,
	}
	return out, nil
}

// MulConst multiplies every slot by the complex constant c, consuming one
// level (MulPlain by the constant vector + rescale).
func (ev *Evaluator) MulConst(ct *Ciphertext, c complex128, enc *Encoder) (*Ciphertext, error) {
	n := ev.ctx.Params.Slots()
	z := make([]complex128, n)
	for i := range z {
		z[i] = c
	}
	pt, err := enc.Encode(z, ct.Level, ev.ctx.Params.Scale)
	if err != nil {
		return nil, err
	}
	return ev.Rescale(ev.MulPlain(ct, pt, ev.ctx.Params.Scale))
}

// Rescale divides the ciphertext by its last modulus, dropping one level
// (the CKKS modulus-switching that keeps the scale stable).
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level == 0 {
		return nil, fmt.Errorf("ckks: no level left to rescale")
	}
	ctx := ev.ctx
	out := ctx.borrowCt(ct.Level-1, ct.Scale/float64(ctx.Params.Q[ct.Level]))
	ctx.Ext.RescaleByLastModulus(ct.Level, ct.B, out.B)
	ctx.Ext.RescaleByLastModulus(ct.Level, ct.A, out.A)
	return out, nil //alchemist:owns the rescaled ciphertext is the caller's to Recycle
}

// Rotate rotates the slot vector by r steps (the paper's Rotation).
func (ev *Evaluator) Rotate(ct *Ciphertext, r int) (*Ciphertext, error) {
	k := ev.ctx.RQ.GaloisElementForRotation(r)
	if ev.eks == nil {
		return nil, fmt.Errorf("ckks: rotation key for step %d missing", r)
	}
	key, ok := ev.eks.Rot[k]
	if !ok {
		return nil, fmt.Errorf("ckks: rotation key for step %d missing", r)
	}
	return ev.applyGalois(ct, k, key)
}

// Conjugate applies complex conjugation to the slots.
func (ev *Evaluator) Conjugate(ct *Ciphertext) (*Ciphertext, error) {
	if ev.eks == nil || ev.eks.Conj == nil {
		return nil, fmt.Errorf("ckks: conjugation key missing")
	}
	return ev.applyGalois(ct, ev.ctx.RQ.GaloisElementConjugate(), ev.eks.Conj)
}

// applyGalois rotates via the hoisted path: decompose ct.A once, then run
// the permutation-fused lazy keyswitch. Decomposing before permuting is
// sound because the automorphism commutes with the RNS digit split; the
// rotation tests pin the result against the plaintext rotation.
func (ev *Evaluator) applyGalois(ct *Ciphertext, k uint64, key *SwitchingKey) (*Ciphertext, error) {
	ctx := ev.ctx
	level := ct.Level
	d := ev.DecomposeOnce(level, ct.A)
	bp := ctx.RQ.Borrow(level)
	outA := ctx.RQ.Borrow(level)
	ev.keySwitchHoisted(d, key, k, true, bp, outA)
	ev.ReleaseDecomposition(d)
	rot := ctx.RQ.Borrow(level)
	ctx.RQ.Automorphism(level, ct.B, k, rot)
	ctx.RQ.Add(level, bp, rot, bp)
	ctx.RQ.Release(rot)
	return ctx.wrapCt(bp, outA, level, ct.Scale), nil //alchemist:owns the rotated ciphertext wraps bp/outA; Recycle releases them
}

// KeySwitch applies the hybrid key switch to the coefficient-domain
// polynomial c at the given level, returning (B, A) over Q such that
// B + A·s ≈ c·s'. This is the paper's Keyswitch primitive: per digit group a
// ModUp (Bconv), the DecompPolyMult accumulation against the evk, and a
// final ModDown. The returned polynomials come from the ring arena; callers
// that are done with them may hand them back via RQ.Release (the evaluator's
// own call sites do), and callers that keep them simply let the GC take over.
//
//alchemist:hot
func (ev *Evaluator) KeySwitch(level int, c *ring.Poly, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	ctx := ev.ctx
	rq, rp := ctx.RQ, ctx.RP
	levelP := rp.MaxLevel()
	groups := ctx.GroupsAtLevel(level)

	accBQ := rq.BorrowZero(level) // NTT domain accumulators
	accAQ := rq.BorrowZero(level)
	accBP := rp.BorrowZero(levelP)
	accAP := rp.BorrowZero(levelP)

	dQ := rq.Borrow(level)
	dP := rp.Borrow(levelP)

	for g := 0; g < groups; g++ {
		lo, hi := ctx.GroupRange(g)
		if hi > level+1 {
			hi = level + 1
		}
		digits := c.Coeffs[lo:hi] // residues of digit group g (coeff domain)
		srcLevel := hi - lo - 1

		// ModUp: extend the digit to the full Q_level ∪ P basis. The
		// conversion is exact on the group's own channels (the overshoot
		// u·D_g vanishes mod q_i | D_g), so converting everywhere is safe.
		ctx.groupToQ[g].ConvertN(srcLevel, digits, dQ.Coeffs, level+1)
		ctx.groupToP[g].Convert(srcLevel, digits, dP.Coeffs)

		rq.NTT(level, dQ)
		rp.NTT(levelP, dP)

		// DecompPolyMult: accumulate digit ⊙ evk_g.
		rq.MulCoeffsAndAdd(level, dQ, swk.BQ[g], accBQ)
		rq.MulCoeffsAndAdd(level, dQ, swk.AQ[g], accAQ)
		rp.MulCoeffsAndAdd(levelP, dP, swk.BP[g], accBP)
		rp.MulCoeffsAndAdd(levelP, dP, swk.AP[g], accAP)
	}

	rq.INTT(level, accBQ)
	rq.INTT(level, accAQ)
	rp.INTT(levelP, accBP)
	rp.INTT(levelP, accAP)

	outB := rq.Borrow(level)
	outA := rq.Borrow(level)
	// Eager end to end: the reference path keeps the reduction-per-term
	// ModDown so the fused-vs-eager comparison measures the whole lazy
	// pipeline (byte-identical results either way).
	ctx.Ext.ModDownEager(level, accBQ, accBP, outB)
	ctx.Ext.ModDownEager(level, accAQ, accAP, outA)
	rq.Release(accBQ)
	rq.Release(accAQ)
	rp.Release(accBP)
	rp.Release(accAP)
	rq.Release(dQ)
	rp.Release(dP)
	return outB, outA //alchemist:owns the keyswitch halves are the caller's to release
}

package ckks

import (
	"sort"
	"sync"
	"testing"

	"alchemist/internal/modmath"
)

// Fused-vs-eager equality: KeySwitchFused must be BIT-identical to the eager
// KeySwitch reference on every input — the lazy accumulation, the dual
// digit-batched conversion and the identity-channel copies all compute the
// same fully reduced residues (satellite: fuzz + property tests across
// random levels, digit counts, and near-2^61 edge moduli).

// edgeParams builds a parameter set over near-2^61 primes (the PR 1
// edge-moduli set): the lazy accumulators' capacity bound is 8 there, so the
// auto-flush paths run for real.
func edgeParams(t testing.TB) Parameters {
	t.Helper()
	const logN = 8
	primes, err := modmath.GenerateNTTPrimes(61, uint64(2)<<logN, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Give P the two largest primes so P ≥ every digit group product.
	sorted := append([]uint64(nil), primes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	params := Parameters{
		LogN:  logN,
		Q:     sorted[:4],
		P:     sorted[4:],
		Scale: 1 << 40,
		Dnum:  2,
		Sigma: 3.2,
	}
	if err := params.Validate(); err != nil {
		t.Fatal(err)
	}
	return params
}

func checkFusedMatchesEager(t *testing.T, ctx *Context, seed int64) {
	t.Helper()
	kg := NewKeyGenerator(ctx, seed)
	sk := kg.GenSecretKey()
	sk2 := NewKeyGenerator(ctx, seed+1).GenSecretKey()
	swk := kg.GenSwitchingKey(sk2.Q, sk)
	ev := NewEvaluator(ctx, &EvaluationKeySet{Rlk: swk})
	for level := 0; level <= ctx.Params.MaxLevel(); level++ {
		c := NewKeyGenerator(ctx, seed+2+int64(level)).uniformPoly(ctx.RQ, level)
		eagerB, eagerA := ev.KeySwitch(level, c, swk)
		fusedB, fusedA := ev.KeySwitchFused(level, c, swk)
		if !ctx.RQ.Equal(level, eagerB, fusedB) || !ctx.RQ.Equal(level, eagerA, fusedA) {
			t.Fatalf("level %d: fused keyswitch differs from eager reference", level)
		}
		ctx.RQ.Release(eagerB)
		ctx.RQ.Release(eagerA)
		ctx.RQ.Release(fusedB)
		ctx.RQ.Release(fusedA)
	}
}

func TestKeySwitchFusedMatchesEager(t *testing.T) {
	ctx, err := NewContext(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	checkFusedMatchesEager(t, ctx, 101)
}

func TestKeySwitchFusedMatchesEagerEdgeModuli(t *testing.T) {
	ctx, err := NewContext(edgeParams(t))
	if err != nil {
		t.Fatal(err)
	}
	checkFusedMatchesEager(t, ctx, 202)
}

// TestKeySwitchFusedMatchesEagerAcrossDnum sweeps the digit count: every
// dnum changes the group structure, the identity-channel windows and the
// number of lazily accumulated terms.
func TestKeySwitchFusedMatchesEagerAcrossDnum(t *testing.T) {
	for _, dnum := range []int{1, 2, 3, 5} {
		// K=4 special primes so P covers even the dnum=1 single-group
		// product (~215 bits).
		params, err := GenParams(9, 4, dnum, 4, 55, 40, 55)
		if err != nil {
			t.Fatalf("dnum=%d: %v", dnum, err)
		}
		ctx, err := NewContext(params)
		if err != nil {
			t.Fatalf("dnum=%d: %v", dnum, err)
		}
		checkFusedMatchesEager(t, ctx, 300+int64(dnum))
	}
}

// fuzzCtxs caches one context per (dnum, edge) configuration: fuzz workers
// run in parallel and context construction dominates otherwise.
var fuzzCtxs sync.Map

func fuzzContext(t testing.TB, dnum int, edge bool) *Context {
	key := dnum
	if edge {
		key = -dnum
	}
	if v, ok := fuzzCtxs.Load(key); ok {
		return v.(*Context)
	}
	var params Parameters
	if edge {
		params = edgeParams(t)
		params.Dnum = dnum
	} else {
		var err error
		params, err = GenParams(7, 3, dnum, 2, 45, 40, 45)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := params.Validate(); err != nil {
		t.Skipf("dnum=%d edge=%v: %v", dnum, edge, err)
	}
	ctx, err := NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := fuzzCtxs.LoadOrStore(key, ctx)
	return v.(*Context)
}

// FuzzKeySwitchFusedVsEager drives the fused path against the eager
// reference over random inputs, levels and digit counts, on both ordinary
// and near-2^61 edge moduli. Any single bit of divergence fails.
func FuzzKeySwitchFusedVsEager(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(1), false)
	f.Add(int64(7), uint8(2), uint8(3), false)
	f.Add(int64(9), uint8(3), uint8(2), true)
	f.Add(int64(42), uint8(1), uint8(2), true)
	f.Fuzz(func(t *testing.T, seed int64, levelSeed, dnumSeed uint8, edge bool) {
		// Digit counts that keep P ≥ every digit group (Validate's noise
		// requirement): alpha ≤ 2 for these 4-prime chains.
		dnum := 2 + int(dnumSeed)%3
		if edge {
			dnum = 2 // edge set has 4 Q primes and 2 P primes: alpha must be 2 to keep P ≥ D_g
		}
		ctx := fuzzContext(t, dnum, edge)
		level := int(levelSeed) % (ctx.Params.MaxLevel() + 1)
		kg := NewKeyGenerator(ctx, seed)
		sk := kg.GenSecretKey()
		sk2 := NewKeyGenerator(ctx, seed+1).GenSecretKey()
		swk := kg.GenSwitchingKey(sk2.Q, sk)
		ev := NewEvaluator(ctx, nil)
		c := kg.uniformPoly(ctx.RQ, level)
		eagerB, eagerA := ev.KeySwitch(level, c, swk)
		fusedB, fusedA := ev.KeySwitchFused(level, c, swk)
		if !ctx.RQ.Equal(level, eagerB, fusedB) || !ctx.RQ.Equal(level, eagerA, fusedA) {
			t.Fatalf("seed=%d level=%d dnum=%d edge=%v: fused differs from eager", seed, level, dnum, edge)
		}
		ctx.RQ.Release(eagerB)
		ctx.RQ.Release(eagerA)
		ctx.RQ.Release(fusedB)
		ctx.RQ.Release(fusedA)
	})
}

// TestRotateHoistedSharedDecompositionDeterministic: two batches against the
// same caller-held decomposition must produce bit-identical ciphertexts —
// the sharing contract EvalLinearTransform's chunking relies on.
func TestRotateHoistedSharedDecompositionDeterministic(t *testing.T) {
	h := newHarness(t, []int{1, 2})
	ct := h.encrypt(t, randomSlots(h.ctx.Params.Slots(), 55, 1.0))
	ev := h.ev
	d := ev.DecomposeOnce(ct.Level, ct.A)
	var out1, out2 [2]*Ciphertext
	if err := ev.RotateHoistedWith(ct, d, []int{1, 2}, out1[:]); err != nil {
		t.Fatal(err)
	}
	if err := ev.RotateHoistedWith(ct, d, []int{1, 2}, out2[:]); err != nil {
		t.Fatal(err)
	}
	ev.ReleaseDecomposition(d)
	for i := range out1 {
		if !h.ctx.RQ.Equal(ct.Level, out1[i].B, out2[i].B) || !h.ctx.RQ.Equal(ct.Level, out1[i].A, out2[i].A) {
			t.Fatalf("batch %d: shared-decomposition rotation is not deterministic", i)
		}
	}
}

// TestConcurrentRotateHoistedSharedDecomposition exercises the documented
// concurrency contract: many goroutines rotating against ONE read-only
// decomposition, with the ring worker pool enabled underneath (the engine's
// worker threads do exactly this). Runs under the CI race subset; outputs
// are checked bit-exact against a serial reference.
func TestConcurrentRotateHoistedSharedDecomposition(t *testing.T) {
	steps := []int{1, 2, 5, 9}
	h := newHarness(t, steps)
	ct := h.encrypt(t, randomSlots(h.ctx.Params.Slots(), 56, 1.0))
	ev := h.ev
	h.ctx.RQ.SetWorkers(2)
	h.ctx.RP.SetWorkers(2)
	defer func() {
		h.ctx.RQ.Close()
		h.ctx.RP.Close()
		h.ctx.RQ.SetWorkers(1)
		h.ctx.RP.SetWorkers(1)
	}()

	d := ev.DecomposeOnce(ct.Level, ct.A)
	ref := make([]*Ciphertext, len(steps))
	if err := ev.RotateHoistedWith(ct, d, steps, ref); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	outs := make([][]*Ciphertext, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outs[w] = make([]*Ciphertext, len(steps))
			errs[w] = ev.RotateHoistedWith(ct, d, steps, outs[w])
		}(w)
	}
	wg.Wait()
	ev.ReleaseDecomposition(d)
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		for i := range steps {
			if !h.ctx.RQ.Equal(ct.Level, ref[i].B, outs[w][i].B) || !h.ctx.RQ.Equal(ct.Level, ref[i].A, outs[w][i].A) {
				t.Fatalf("worker %d step %d: concurrent hoisted rotation differs from serial", w, steps[i])
			}
		}
	}
}

package ckks

import (
	"fmt"

	"alchemist/internal/ring"
)

// Fused lazy keyswitching and hoisted rotations.
//
// The eager KeySwitch (evaluator.go, kept as the reference path) converts,
// transforms and reduce-accumulates one digit group at a time. The fused path
// here restructures the same computation around two ideas:
//
//   - Lazy accumulation: the DecompPolyMult inner products Σ_g d_g ⊙ evk_g
//     run as unreduced 128-bit sums across all digit groups with ONE deferred
//     Barrett fold per coefficient — instead of a Barrett reduction and a
//     conditional-subtract per term. The register-resident inner product
//     lives in ring.KSAccumulate (ring/ksacc.go), with ring/lazy128.go
//     providing the general Acc128 substrate.
//   - Hoisting: the digit decomposition (ModUp + NTT) of the input runs ONCE
//     (DecomposeOnce) and is shared by any number of rotations; each rotation
//     applies its Galois permutation inside the NTT-domain multiply-
//     accumulate (KSAccumulate's gather variant), so the permuted digits are
//     never materialized and no per-step NTT remains. The decomposition itself is
//     digit-batched: one Decomposer pass converts every group to both target
//     bases, sharing the step-1 scaling (ring/decompose.go).
//
// KeySwitchFused is bit-identical to the eager KeySwitch (pinned by the
// fused-vs-eager tests and fuzzers). The hoisted rotations decompose BEFORE
// permuting where the plain path permutes before decomposing; both are valid
// keyswitch inputs with the same noise bound, and the rotation tests compare
// them to within the noise tolerance.

// Decomposition is the reusable ModUp expansion of one polynomial: per digit
// group, the digit extended to the working Q basis and to the special basis
// P, both in the NTT domain. Produce with DecomposeOnce, hand back with
// ReleaseDecomposition; the polynomials come from the ring arenas and the
// shells are pooled, so the steady state allocates nothing.
type Decomposition struct {
	Level int
	DQ    []*ring.Poly
	DP    []*ring.Poly
}

// DecomposeOnce computes the digit decomposition of c (coefficient domain,
// levels 0..level) once, for reuse across many keyswitches — the "hoisting"
// half of rotate-many workloads.
func (ev *Evaluator) DecomposeOnce(level int, c *ring.Poly) *Decomposition {
	ctx := ev.ctx
	rq, rp := ctx.RQ, ctx.RP
	levelP := rp.MaxLevel()
	groups := ctx.GroupsAtLevel(level)

	d, _ := ctx.decPool.Get().(*Decomposition)
	if d == nil {
		d = &Decomposition{
			DQ: make([]*ring.Poly, 0, ctx.Params.Dnum),
			DP: make([]*ring.Poly, 0, ctx.Params.Dnum),
		}
	}
	d.Level = level
	d.DQ, d.DP = d.DQ[:0], d.DP[:0]
	for g := 0; g < groups; g++ {
		d.DQ = append(d.DQ, rq.Borrow(level))  //alchemist:owns the decomposition owns its digits; ReleaseDecomposition frees them
		d.DP = append(d.DP, rp.Borrow(levelP)) //alchemist:owns the decomposition owns its digits; ReleaseDecomposition frees them
	}
	ctx.Dec.DecomposeAll(level, c, d.DQ, d.DP)
	for g := 0; g < groups; g++ {
		rq.NTT(level, d.DQ[g])
		rp.NTT(levelP, d.DP[g])
	}
	return d
}

// ReleaseDecomposition returns the decomposition's polynomials to the ring
// arenas and its shell to the context pool. d must not be used afterwards.
func (ev *Evaluator) ReleaseDecomposition(d *Decomposition) {
	if d == nil {
		return
	}
	ctx := ev.ctx
	for _, p := range d.DQ {
		ctx.RQ.Release(p)
	}
	for _, p := range d.DP {
		ctx.RP.Release(p)
	}
	d.DQ, d.DP = d.DQ[:0], d.DP[:0]
	ctx.decPool.Put(d)
}

// KeySwitchFused is the lazy-accumulation keyswitch: same contract and
// bit-identical output as the eager KeySwitch, restructured as one
// digit-batched decomposition followed by unreduced 128-bit accumulation
// with a single deferred reduction per channel.
//
//alchemist:hot
func (ev *Evaluator) KeySwitchFused(level int, c *ring.Poly, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	d := ev.DecomposeOnce(level, c)
	outB := ev.ctx.RQ.Borrow(level)
	outA := ev.ctx.RQ.Borrow(level)
	ev.keySwitchHoisted(d, swk, 0, false, outB, outA)
	ev.ReleaseDecomposition(d)
	return outB, outA //alchemist:owns the keyswitch halves are the caller's to release
}

// keySwitchHoisted runs the accumulation half of the keyswitch against a
// prepared decomposition: per digit group one lazy multiply-accumulate
// (optionally fused with the Galois permutation φ_k of the digits), then the
// single deferred reduction, the inverse transforms and the two ModDowns.
// outB/outA receive the coefficient-domain result over Q.
//
//alchemist:hot
//alchemist:domain outB:[0,q) outA:[0,q)
func (ev *Evaluator) keySwitchHoisted(d *Decomposition, swk *SwitchingKey, k uint64, perm bool, outB, outA *ring.Poly) {
	ctx := ev.ctx
	rq, rp := ctx.RQ, ctx.RP
	level := d.Level
	levelP := rp.MaxLevel()
	groups := ctx.GroupsAtLevel(level)

	// KSAccumulate is the register-resident composition of the Acc128 kernels
	// (MulCoeffsLazy128[Auto] per group + ReduceAcc128): both key halves per
	// digit load, the 128-bit sums held in registers across all groups, the
	// outputs written once already folded. Bit-identical to the Acc128
	// pipeline (ring/ksacc.go).
	bq := rq.Borrow(level)
	aq := rq.Borrow(level)
	bp := rp.Borrow(levelP)
	ap := rp.Borrow(levelP)

	rq.KSAccumulate(level, d.DQ[:groups], swk.BQ[:groups], swk.AQ[:groups], k, perm, bq, aq)
	rp.KSAccumulate(levelP, d.DP[:groups], swk.BP[:groups], swk.AP[:groups], k, perm, bp, ap)

	rq.INTT(level, bq)
	rq.INTT(level, aq)
	rp.INTT(levelP, bp)
	rp.INTT(levelP, ap)

	ctx.Ext.ModDown(level, bq, bp, outB)
	ctx.Ext.ModDown(level, aq, ap, outA)

	rq.Release(bq)
	rq.Release(aq)
	rp.Release(bp)
	rp.Release(ap)
}

// RotateHoisted rotates ct by every step in steps, sharing one digit
// decomposition across all of them ("hoisting"): the expensive ModUp + NTT
// of the A polynomial runs once, and each rotation is only a permuted lazy
// accumulation against its key plus a ModDown. The automorphism commutes
// with the RNS decomposition (it is a coefficient permutation), which is
// what makes the sharing sound. This is the software counterpart of the
// BSP-L=n+ schedules in the accelerator model.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, steps []int) (map[int]*Ciphertext, error) {
	outs := make([]*Ciphertext, len(steps))
	if err := ev.RotateHoistedInto(ct, steps, outs); err != nil {
		return nil, err
	}
	m := make(map[int]*Ciphertext, len(steps))
	for i, step := range steps {
		m[step] = outs[i]
	}
	return m, nil
}

// RotateHoistedInto is the allocation-free core of RotateHoisted: outs[i]
// receives the rotation of ct by steps[i] (shells and polynomials from the
// context pools; len(outs) must equal len(steps)).
func (ev *Evaluator) RotateHoistedInto(ct *Ciphertext, steps []int, outs []*Ciphertext) error {
	d := ev.DecomposeOnce(ct.Level, ct.A)
	err := ev.RotateHoistedWith(ct, d, steps, outs)
	ev.ReleaseDecomposition(d)
	return err
}

// RotateHoistedWith applies the rotations against a caller-held
// decomposition of ct.A, allowing the same decomposition to be shared across
// multiple batches (EvalLinearTransform chunks diagonals this way to bound
// live ciphertexts). Safe for concurrent use with a shared read-only d.
func (ev *Evaluator) RotateHoistedWith(ct *Ciphertext, d *Decomposition, steps []int, outs []*Ciphertext) error {
	if ev.eks == nil {
		return fmt.Errorf("ckks: rotation keys missing")
	}
	if len(outs) != len(steps) {
		return fmt.Errorf("ckks: %d outputs for %d steps", len(outs), len(steps))
	}
	ctx := ev.ctx
	rq := ctx.RQ
	level := ct.Level

	// Resolve every rotation key first, so no arena state is held across an
	// error return. (The work loop re-resolves instead of caching into a
	// slice: the Galois element is a few shifts and the map hit is cheap,
	// and the steady state stays allocation-free.)
	for _, step := range steps {
		if _, ok := ev.eks.Rot[rq.GaloisElementForRotation(step)]; !ok {
			return fmt.Errorf("ckks: rotation key for step %d missing", step)
		}
	}

	for si, step := range steps {
		k := rq.GaloisElementForRotation(step)
		key := ev.eks.Rot[k]
		bp := rq.Borrow(level)
		outA := rq.Borrow(level)
		ev.keySwitchHoisted(d, key, k, true, bp, outA)
		// Add the rotated B part onto the keyswitched B.
		rot := rq.Borrow(level)
		rq.Automorphism(level, ct.B, k, rot)
		rq.Add(level, bp, rot, bp)
		rq.Release(rot)
		outs[si] = ctx.wrapCt(bp, outA, level, ct.Scale) //alchemist:owns each output ciphertext wraps its bp/outA; the caller Recycles them
	}
	return nil
}

package ckks

import (
	"math/big"

	"alchemist/internal/modmath"
	"alchemist/internal/prng"
	"alchemist/internal/ring"
)

// SecretKey holds the ternary secret s over both the Q and P bases
// (coefficient domain).
type SecretKey struct {
	Q *ring.Poly
	P *ring.Poly
}

// PublicKey is an encryption of zero: B = -A·s + e over Q (coefficient
// domain).
type PublicKey struct {
	B *ring.Poly
	A *ring.Poly
}

// SwitchingKey re-encrypts a polynomial from key s' to key s using the
// hybrid (dnum-group) gadget: for each digit group g,
//
//	B_g = -A_g·s + e_g + W_g·s'   over Q·P,   A_g uniform over Q·P,
//
// where W_g = P · (Q/D_g) · [(Q/D_g)^{-1}]_{D_g} vanishes on the P channels.
// All polynomials are stored in the NTT domain, split into their Q and P
// parts.
type SwitchingKey struct {
	BQ, AQ []*ring.Poly // per group, over Q (level L), NTT domain
	BP, AP []*ring.Poly // per group, over P, NTT domain
}

// EvaluationKeySet bundles the relinearization key and rotation keys.
type EvaluationKeySet struct {
	Rlk  *SwitchingKey
	Rot  map[uint64]*SwitchingKey // Galois element -> key
	Conj *SwitchingKey
}

// KeyGenerator samples keys for a context.
type KeyGenerator struct {
	ctx *Context
	rng prng.Source
}

// NewKeyGenerator returns a deterministic key generator (test-grade
// randomness; see Sampler).
func NewKeyGenerator(ctx *Context, seed int64) *KeyGenerator {
	return &KeyGenerator{ctx: ctx, rng: prng.New(seed)}
}

// signedVector samples n values from {-1,0,1} with the given density.
func (kg *KeyGenerator) signedTernary(n int, density float64) []int64 {
	v := make([]int64, n)
	for i := range v {
		u := kg.rng.Float64()
		switch {
		case u < density/2:
			v[i] = 1
		case u < density:
			v[i] = -1
		}
	}
	return v
}

func (kg *KeyGenerator) signedGaussian(n int, sigma float64) []int64 {
	v := make([]int64, n)
	for i := range v {
		x := kg.rng.NormFloat64() * sigma
		switch {
		case x > 6*sigma:
			x = 6 * sigma
		case x < -6*sigma:
			x = -6 * sigma
		}
		v[i] = int64(x + 0.5)
		if x < 0 {
			v[i] = -int64(-x + 0.5)
		}
	}
	return v
}

// setSigned embeds a signed coefficient vector into a poly over r.
func setSigned(r *ring.Ring, level int, v []int64) *ring.Poly {
	p := r.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i]
		for j, x := range v {
			p.Coeffs[i][j] = modmath.ReduceSigned(x, q)
		}
	}
	return p
}

// uniformPoly samples a uniform poly over r at the given level.
func (kg *KeyGenerator) uniformPoly(r *ring.Ring, level int) *ring.Poly {
	p := r.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i]
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = prng.UniformMod(kg.rng, q)
		}
	}
	return p
}

// GenSecretKey samples a ternary secret key.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	v := kg.signedTernary(kg.ctx.Params.N(), 2.0/3.0)
	return &SecretKey{
		Q: setSigned(kg.ctx.RQ, kg.ctx.RQ.MaxLevel(), v),
		P: setSigned(kg.ctx.RP, kg.ctx.RP.MaxLevel(), v),
	}
}

// GenSecretKeySparse samples a ternary secret with exactly h non-zero
// coefficients. Sparse secrets bound the ModRaise overflow count I(X) in
// bootstrapping (|I| ≤ h+2), shrinking the EvalMod approximation range —
// the standard HEAAN/BTS bootstrapping key choice.
func (kg *KeyGenerator) GenSecretKeySparse(h int) *SecretKey {
	n := kg.ctx.Params.N()
	if h > n {
		h = n
	}
	v := make([]int64, n)
	placed := 0
	for placed < h {
		j := kg.rng.Intn(n)
		if v[j] != 0 {
			continue
		}
		if kg.rng.Intn(2) == 0 {
			v[j] = 1
		} else {
			v[j] = -1
		}
		placed++
	}
	return &SecretKey{
		Q: setSigned(kg.ctx.RQ, kg.ctx.RQ.MaxLevel(), v),
		P: setSigned(kg.ctx.RP, kg.ctx.RP.MaxLevel(), v),
	}
}

// GenPublicKey samples pk = (-A·s + e, A) over Q.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	ctx := kg.ctx
	level := ctx.RQ.MaxLevel()
	a := kg.uniformPoly(ctx.RQ, level)
	e := setSigned(ctx.RQ, level, kg.signedGaussian(ctx.Params.N(), ctx.Params.Sigma))
	b := ctx.RQ.NewPoly(level)
	ctx.RQ.MulPoly(level, a, sk.Q, b) // a·s
	ctx.RQ.Neg(level, b, b)
	ctx.RQ.Add(level, b, e, b)
	return &PublicKey{B: b, A: a}
}

// gadgetFactor returns W_g mod the full Q basis as per-channel constants:
// W_g = P · (Q/D_g) · [(Q/D_g)^{-1}]_{D_g}. (W_g ≡ 0 on every P channel.)
func (kg *KeyGenerator) gadgetFactor(g int) []uint64 {
	ctx := kg.ctx
	lo, hi := ctx.GroupRange(g)
	Q := big.NewInt(1)
	for _, q := range ctx.Params.Q {
		Q.Mul(Q, new(big.Int).SetUint64(q))
	}
	Dg := big.NewInt(1)
	for _, q := range ctx.Params.Q[lo:hi] {
		Dg.Mul(Dg, new(big.Int).SetUint64(q))
	}
	P := big.NewInt(1)
	for _, p := range ctx.Params.P {
		P.Mul(P, new(big.Int).SetUint64(p))
	}
	Qhat := new(big.Int).Div(Q, Dg)
	inv := new(big.Int).ModInverse(new(big.Int).Mod(Qhat, Dg), Dg)
	W := new(big.Int).Mul(P, Qhat)
	W.Mul(W, inv)
	out := make([]uint64, len(ctx.Params.Q))
	tmp := new(big.Int)
	for i, qi := range ctx.Params.Q {
		out[i] = tmp.Mod(W, new(big.Int).SetUint64(qi)).Uint64()
	}
	return out
}

// GenSwitchingKey generates a key switching sPrime (over Q, coefficient
// domain, full level) to sk.
func (kg *KeyGenerator) GenSwitchingKey(sPrime *ring.Poly, sk *SecretKey) *SwitchingKey {
	ctx := kg.ctx
	n := ctx.Params.N()
	levelQ := ctx.RQ.MaxLevel()
	levelP := ctx.RP.MaxLevel()
	groups := len(ctx.groupToQ)
	swk := &SwitchingKey{}
	for g := 0; g < groups; g++ {
		aQ := kg.uniformPoly(ctx.RQ, levelQ)
		aP := kg.uniformPoly(ctx.RP, levelP)
		ev := kg.signedGaussian(n, ctx.Params.Sigma)
		eQ := setSigned(ctx.RQ, levelQ, ev)
		eP := setSigned(ctx.RP, levelP, ev)

		// bQ = -aQ·s + eQ + W_g·s' over Q.
		bQ := ctx.RQ.NewPoly(levelQ)
		ctx.RQ.MulPoly(levelQ, aQ, sk.Q, bQ)
		ctx.RQ.Neg(levelQ, bQ, bQ)
		ctx.RQ.Add(levelQ, bQ, eQ, bQ)
		w := kg.gadgetFactor(g)
		ws := ctx.RQ.NewPoly(levelQ)
		for i := 0; i <= levelQ; i++ {
			ctx.RQ.SubRings[i].MulScalar(sPrime.Coeffs[i], w[i], ws.Coeffs[i])
		}
		ctx.RQ.Add(levelQ, bQ, ws, bQ)

		// bP = -aP·s + eP over P (gadget vanishes mod P).
		bP := ctx.RP.NewPoly(levelP)
		ctx.RP.MulPoly(levelP, aP, sk.P, bP)
		ctx.RP.Neg(levelP, bP, bP)
		ctx.RP.Add(levelP, bP, eP, bP)

		// Store in NTT domain for direct use in DecompPolyMult.
		ctx.RQ.NTT(levelQ, bQ)
		ctx.RQ.NTT(levelQ, aQ)
		ctx.RP.NTT(levelP, bP)
		ctx.RP.NTT(levelP, aP)
		swk.BQ = append(swk.BQ, bQ)
		swk.AQ = append(swk.AQ, aQ)
		swk.BP = append(swk.BP, bP)
		swk.AP = append(swk.AP, aP)
	}
	return swk
}

// GenRelinKey generates the relinearization key (s² → s).
func (kg *KeyGenerator) GenRelinKey(sk *SecretKey) *SwitchingKey {
	ctx := kg.ctx
	level := ctx.RQ.MaxLevel()
	s2 := ctx.RQ.NewPoly(level)
	ctx.RQ.MulPoly(level, sk.Q, sk.Q, s2)
	return kg.GenSwitchingKey(s2, sk)
}

// GenRotationKey generates a key for the Galois element k (φ_k(s) → s).
func (kg *KeyGenerator) GenRotationKey(sk *SecretKey, k uint64) *SwitchingKey {
	ctx := kg.ctx
	level := ctx.RQ.MaxLevel()
	sA := ctx.RQ.NewPoly(level)
	ctx.RQ.Automorphism(level, sk.Q, k, sA)
	return kg.GenSwitchingKey(sA, sk)
}

// GenEvaluationKeySet generates the relinearization key plus rotation keys
// for the given rotation steps (and conjugation when conj is true).
func (kg *KeyGenerator) GenEvaluationKeySet(sk *SecretKey, rotations []int, conj bool) *EvaluationKeySet {
	ctx := kg.ctx
	eks := &EvaluationKeySet{
		Rlk: kg.GenRelinKey(sk),
		Rot: map[uint64]*SwitchingKey{},
	}
	for _, r := range rotations {
		k := ctx.RQ.GaloisElementForRotation(r)
		if _, ok := eks.Rot[k]; !ok {
			eks.Rot[k] = kg.GenRotationKey(sk, k)
		}
	}
	if conj {
		eks.Conj = kg.GenRotationKey(sk, ctx.RQ.GaloisElementConjugate())
	}
	return eks
}

package ckks

import (
	"fmt"
	"sort"

	"alchemist/internal/ring"
)

// LinearTransform is a slot-space matrix encoded by its generalized
// diagonals: Diags[d][j] = M[j][(j+d) mod n]. Evaluating it homomorphically
// costs one rotation and one plaintext multiplication per non-zero diagonal
// — the building block of LoLa-style dense layers and of the CoeffToSlot /
// SlotToCoeff transforms in bootstrapping.
type LinearTransform struct {
	Diags map[int][]complex128
	Scale float64
}

// NewLinearTransformFromMatrix extracts the non-zero diagonals of an
// out×in matrix acting on the first `in` slots (out ≤ in required; the
// result lands in the first `out` slots).
func NewLinearTransformFromMatrix(m [][]complex128, slots int) (*LinearTransform, error) {
	out := len(m)
	if out == 0 {
		return nil, fmt.Errorf("ckks: empty matrix")
	}
	in := len(m[0])
	if in > slots {
		return nil, fmt.Errorf("ckks: matrix width %d exceeds %d slots", in, slots)
	}
	// Entry M[j][c] needs x[c] to land in slot j, i.e. the rotation by
	// d = (c - j) mod slots (the input is zero-padded, so wrapping is over
	// the full slot vector).
	lt := &LinearTransform{Diags: map[int][]complex128{}}
	for j := 0; j < out; j++ {
		for c := 0; c < in; c++ {
			v := m[j][c]
			if v == 0 {
				continue
			}
			d := ((c-j)%slots + slots) % slots
			if lt.Diags[d] == nil {
				lt.Diags[d] = make([]complex128, slots)
			}
			lt.Diags[d][j] = v
		}
	}
	return lt, nil
}

// Rotations returns the rotation steps the transform needs (for key
// generation).
func (lt *LinearTransform) Rotations() []int {
	out := make([]int, 0, len(lt.Diags))
	for d := range lt.Diags {
		if d != 0 {
			out = append(out, d)
		}
	}
	return out
}

// hoistChunk bounds how many rotated ciphertexts EvalLinearTransform keeps
// live at once: the decomposition of the input is shared across ALL
// diagonals (hoisting), but the rotations themselves are produced and
// consumed in chunks so a transform with hundreds of diagonals does not hold
// hundreds of ciphertexts.
const hoistChunk = 8

// EvalLinearTransform applies the transform: Σ_d diag_d ⊙ rot(ct, d),
// followed by a rescale. The evaluator must hold the rotation keys returned
// by Rotations(). The input's digit decomposition is computed once and
// shared by every rotation (chunked hoisting), so the per-diagonal cost is
// one permuted lazy accumulation + ModDown instead of a full keyswitch.
func (ev *Evaluator) EvalLinearTransform(ct *Ciphertext, lt *LinearTransform, enc *Encoder) (*Ciphertext, error) {
	if len(lt.Diags) == 0 {
		return nil, fmt.Errorf("ckks: transform has no diagonals")
	}
	scale := ev.ctx.Params.Scale
	// Deterministic evaluation order (map iteration is randomized, and
	// floating-point slot sums are order-sensitive at the noise floor).
	steps := make([]int, 0, len(lt.Diags))
	for d := range lt.Diags {
		if d != 0 {
			steps = append(steps, d)
		}
	}
	sort.Ints(steps)

	var acc *Ciphertext
	mulAdd := func(rotated *Ciphertext, diag []complex128) error {
		pt, err := enc.Encode(diag, rotated.Level, scale)
		if err != nil {
			return err
		}
		term := ev.MulPlain(rotated, pt, scale)
		if acc == nil {
			acc = term
			return nil
		}
		next, err := ev.Add(acc, term)
		if err != nil {
			return err
		}
		ev.ctx.Recycle(acc)
		ev.ctx.Recycle(term)
		acc = next
		return nil
	}

	if diag, ok := lt.Diags[0]; ok {
		if err := mulAdd(ct, diag); err != nil {
			return nil, err
		}
	}
	if len(steps) > 0 {
		if ev.eks == nil {
			return nil, fmt.Errorf("ckks: rotation keys missing")
		}
		dec := ev.DecomposeOnce(ct.Level, ct.A)
		var outs [hoistChunk]*Ciphertext
		for c0 := 0; c0 < len(steps); c0 += hoistChunk {
			chunk := steps[c0:min(c0+hoistChunk, len(steps))]
			if err := ev.RotateHoistedWith(ct, dec, chunk, outs[:len(chunk)]); err != nil {
				ev.ReleaseDecomposition(dec)
				return nil, err
			}
			for i, d := range chunk {
				err := mulAdd(outs[i], lt.Diags[d])
				ev.ctx.Recycle(outs[i])
				if err != nil {
					ev.ReleaseDecomposition(dec)
					return nil, err
				}
			}
		}
		ev.ReleaseDecomposition(dec)
	}
	return ev.Rescale(acc)
}

// InnerSum folds the first n slots (n a power of two) so that slot 0 holds
// their sum, using log2(n) rotations. Slots beyond n must be zero if only
// the total is wanted.
func (ev *Evaluator) InnerSum(ct *Ciphertext, n int) (*Ciphertext, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ckks: InnerSum width %d must be a power of two", n)
	}
	acc := ct
	for step := n / 2; step >= 1; step >>= 1 {
		rot, err := ev.Rotate(acc, step)
		if err != nil {
			return nil, err
		}
		acc, err = ev.Add(acc, rot)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// MeanVariance computes the mean and variance of the first n slots
// homomorphically: mean = InnerSum(x)/n and var = InnerSum(x²)/n - mean².
// Costs two levels; needs the power-of-two rotation keys up to n/2 and the
// relinearization key.
func (ev *Evaluator) MeanVariance(ct *Ciphertext, n int, enc *Encoder) (mean, variance *Ciphertext, err error) {
	sum, err := ev.InnerSum(ct, n)
	if err != nil {
		return nil, nil, err
	}
	mean, err = ev.MulConst(sum, complex(1/float64(n), 0), enc)
	if err != nil {
		return nil, nil, err
	}
	sq, err := ev.MulRelin(ct, ct)
	if err != nil {
		return nil, nil, err
	}
	sq, err = ev.Rescale(sq)
	if err != nil {
		return nil, nil, err
	}
	sqSum, err := ev.InnerSum(sq, n)
	if err != nil {
		return nil, nil, err
	}
	meanSq, err := ev.MulConst(sqSum, complex(1/float64(n), 0), enc)
	if err != nil {
		return nil, nil, err
	}
	m2, err := ev.MulRelin(mean, mean)
	if err != nil {
		return nil, nil, err
	}
	m2, err = ev.Rescale(m2)
	if err != nil {
		return nil, nil, err
	}
	variance, err = ev.subApprox(meanSq, m2)
	if err != nil {
		return nil, nil, err
	}
	return mean, variance, nil
}

// EvalPolyHorner evaluates Σ coeffs[i]·x^i on the ciphertext with Horner's
// rule: one Cmult + rescale per degree. coeffs[0] is the constant term.
// Consumes len(coeffs)-1 levels.
func (ev *Evaluator) EvalPolyHorner(ct *Ciphertext, coeffs []float64, enc *Encoder) (*Ciphertext, error) {
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("ckks: empty polynomial")
	}
	n := ev.ctx.Params.Slots()
	constVec := func(v float64, level int) (*ring.Poly, error) {
		z := make([]complex128, n)
		for i := range z {
			z[i] = complex(v, 0)
		}
		return enc.Encode(z, level, ev.ctx.Params.Scale)
	}
	// acc = c_k
	acc, err := func() (*Ciphertext, error) {
		pt, err := constVec(coeffs[len(coeffs)-1], ct.Level)
		if err != nil {
			return nil, err
		}
		zero := ev.ctx.CopyCt(ct)
		ev.ctx.RQ.Sub(ct.Level, zero.B, ct.B, zero.B) // zero ciphertext
		ev.ctx.RQ.Sub(ct.Level, zero.A, ct.A, zero.A)
		return ev.AddPlain(zero, pt), nil
	}()
	if err != nil {
		return nil, err
	}
	for i := len(coeffs) - 2; i >= 0; i-- {
		prod, err := ev.MulRelin(acc, ct)
		if err != nil {
			return nil, err
		}
		prod, err = ev.Rescale(prod)
		if err != nil {
			return nil, err
		}
		pt, err := constVec(coeffs[i], prod.Level)
		if err != nil {
			return nil, err
		}
		acc = ev.AddPlain(prod, pt)
	}
	return acc, nil
}

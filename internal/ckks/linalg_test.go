package ckks

import (
	"math/rand"
	"testing"
)

func TestLinearTransformMatchesPlainMatVec(t *testing.T) {
	params := TestParams()
	ctx, err := NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	slots := params.Slots()
	in, out := 8, 4
	rng := rand.New(rand.NewSource(51))
	m := make([][]complex128, out)
	for i := range m {
		m[i] = make([]complex128, in)
		for j := range m[i] {
			m[i][j] = complex(rng.Float64()*2-1, 0)
		}
	}
	lt, err := NewLinearTransformFromMatrix(m, slots)
	if err != nil {
		t.Fatal(err)
	}

	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 52)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	eks := kg.GenEvaluationKeySet(sk, lt.Rotations(), false)
	et := NewEncryptor(ctx, pk, 53)
	dt := NewDecryptor(ctx, sk)
	ev := NewEvaluator(ctx, eks)

	x := make([]complex128, slots)
	for j := 0; j < in; j++ {
		x[j] = complex(rng.Float64()*2-1, 0)
	}
	level := params.MaxLevel()
	pt, _ := enc.Encode(x, level, params.Scale)
	ct := et.Encrypt(pt, level, params.Scale)

	res, err := ev.EvalLinearTransform(ct, lt, enc)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(dt.DecryptPoly(res), res.Level, res.Scale)
	for i := 0; i < out; i++ {
		var want complex128
		for j := 0; j < in; j++ {
			want += m[i][j] * x[j]
		}
		if d := got[i] - want; real(d)*real(d)+imag(d)*imag(d) > 1e-6 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestLinearTransformErrors(t *testing.T) {
	if _, err := NewLinearTransformFromMatrix(nil, 8); err == nil {
		t.Fatal("expected empty-matrix error")
	}
	wide := [][]complex128{make([]complex128, 32)}
	if _, err := NewLinearTransformFromMatrix(wide, 8); err == nil {
		t.Fatal("expected too-wide error")
	}
}

func TestInnerSum(t *testing.T) {
	h := newHarness(t, []int{1, 2, 4, 8})
	n := 16
	slots := h.ctx.Params.Slots()
	z := make([]complex128, slots)
	var want complex128
	for i := 0; i < n; i++ {
		z[i] = complex(float64(i+1)/10, 0)
		want += z[i]
	}
	ct := h.encrypt(t, z)
	sum, err := h.ev.InnerSum(ct, n)
	if err != nil {
		t.Fatal(err)
	}
	got := h.decrypt(sum)
	if d := got[0] - want; real(d)*real(d)+imag(d)*imag(d) > 1e-6 {
		t.Fatalf("InnerSum: got %v want %v", got[0], want)
	}
	if _, err := h.ev.InnerSum(ct, 3); err == nil {
		t.Fatal("expected power-of-two error")
	}
}

func TestEvalPolyHorner(t *testing.T) {
	h := newHarness(t, nil)
	slots := h.ctx.Params.Slots()
	z := make([]complex128, slots)
	rng := rand.New(rand.NewSource(54))
	for i := range z {
		z[i] = complex(rng.Float64()*1.6-0.8, 0)
	}
	ct := h.encrypt(t, z)
	// sigmoid-ish cubic: 0.5 + 0.15x - 0.0015x^3 over [-0.8, 0.8].
	coeffs := []float64{0.5, 0.15, 0, -0.0015}
	res, err := h.ev.EvalPolyHorner(ct, coeffs, h.enc)
	if err != nil {
		t.Fatal(err)
	}
	got := h.decrypt(res)
	for i := range z {
		x := real(z[i])
		want := 0.5 + 0.15*x - 0.0015*x*x*x
		if d := real(got[i]) - want; d > 1e-2 || d < -1e-2 {
			t.Fatalf("slot %d: poly(%v) = %v want %v", i, x, real(got[i]), want)
		}
	}
	if _, err := h.ev.EvalPolyHorner(ct, nil, h.enc); err == nil {
		t.Fatal("expected empty-poly error")
	}
}

func TestMeanVariance(t *testing.T) {
	h := newHarness(t, []int{1, 2, 4, 8})
	n := 16
	slots := h.ctx.Params.Slots()
	z := make([]complex128, slots)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(i%5)/5 - 0.4
		z[i] = complex(v, 0)
		sum += v
		sumSq += v * v
	}
	wantMean := sum / float64(n)
	wantVar := sumSq/float64(n) - wantMean*wantMean

	ct := h.encrypt(t, z)
	mean, variance, err := h.ev.MeanVariance(ct, n, h.enc)
	if err != nil {
		t.Fatal(err)
	}
	gotMean := real(h.decrypt(mean)[0])
	gotVar := real(h.decrypt(variance)[0])
	if d := gotMean - wantMean; d > 1e-3 || d < -1e-3 {
		t.Fatalf("mean %v want %v", gotMean, wantMean)
	}
	if d := gotVar - wantVar; d > 1e-3 || d < -1e-3 {
		t.Fatalf("variance %v want %v", gotVar, wantVar)
	}
}

package ckks

import (
	"math"
	"math/cmplx"
)

// Noise diagnostics: production FHE code budgets noise explicitly; these
// helpers measure it against known plaintexts so applications (and our
// tests) can verify headroom before levels run out.

// SlotErrorBits returns log2 of the maximum slot error between the
// decryption of ct and the expected values (math.Inf(-1) when exact).
func SlotErrorBits(dt *Decryptor, enc *Encoder, ct *Ciphertext, want []complex128) float64 {
	got := enc.Decode(dt.DecryptPoly(ct), ct.Level, ct.Scale)
	worst := 0.0
	for i := range want {
		if d := cmplx.Abs(got[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst == 0 {
		return math.Inf(-1)
	}
	return math.Log2(worst)
}

// BudgetBits returns the remaining multiplicative headroom of a ciphertext
// in bits: log2(Q_level) - log2(scale). A Cmult consumes ≈ log2(scale) of
// it; when it approaches log2(q0) the ciphertext must be bootstrapped.
func BudgetBits(ctx *Context, ct *Ciphertext) float64 {
	bits := 0.0
	for i := 0; i <= ct.Level; i++ {
		bits += math.Log2(float64(ctx.Params.Q[i]))
	}
	return bits - math.Log2(ct.Scale)
}

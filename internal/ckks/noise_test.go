package ckks

import (
	"math"
	"testing"
)

func TestSlotErrorAndBudgetDiagnostics(t *testing.T) {
	h := newHarness(t, nil)
	z := randomSlots(h.ctx.Params.Slots(), 41, 1.0)
	ct := h.encrypt(t, z)

	errBits := SlotErrorBits(h.dt, h.enc, ct, z)
	if errBits > -18 {
		t.Fatalf("fresh ciphertext error 2^%.1f too large", errBits)
	}
	budget := BudgetBits(h.ctx, ct)
	// 1×55 + 5×40-bit primes at scale 2^40 → ≈ 215 bits of headroom.
	if budget < 180 || budget > 230 {
		t.Fatalf("budget %.0f bits implausible", budget)
	}

	prod, err := h.ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(z))
	for i := range want {
		want[i] = z[i] * z[i]
	}
	errAfter := SlotErrorBits(h.dt, h.enc, res, want)
	if errAfter <= errBits-1 {
		t.Fatalf("multiplication should not shrink error: 2^%.1f -> 2^%.1f", errBits, errAfter)
	}
	if b := BudgetBits(h.ctx, res); b >= budget {
		t.Fatalf("budget should shrink after mult+rescale: %.0f -> %.0f", budget, b)
	}
	_ = math.Pi
}

// Package ckks implements the RNS variant of the CKKS approximate-arithmetic
// FHE scheme: canonical-embedding encoding, encryption, homomorphic
// add/mult/rotate, rescaling and hybrid (dnum-decomposed) key switching.
//
// It serves two roles in this reproduction: it is the live "CPU baseline"
// measured by the benchmark harness, and its operation structure defines the
// op graphs lowered onto the Alchemist accelerator model.
package ckks

import (
	"fmt"
	"math"
	"math/big"
	"sync"

	"alchemist/internal/modmath"
	"alchemist/internal/ring"
)

// Parameters describes a CKKS instance.
type Parameters struct {
	LogN int // ring degree N = 2^LogN

	Q []uint64 // ciphertext moduli chain q_0 … q_L (level i keeps q_0…q_i)
	P []uint64 // special moduli p_0 … p_{K-1} for hybrid key switching

	Scale float64 // default encoding scale
	Dnum  int     // number of decomposition (digit) groups for key switching
	Sigma float64 // error standard deviation
}

// N returns the ring degree.
func (p Parameters) N() int { return 1 << p.LogN }

// Slots returns the number of packed complex slots (N/2).
func (p Parameters) Slots() int { return 1 << (p.LogN - 1) }

// MaxLevel returns L, the top ciphertext level.
func (p Parameters) MaxLevel() int { return len(p.Q) - 1 }

// Alpha returns the number of moduli per decomposition group,
// ceil((L+1)/dnum).
func (p Parameters) Alpha() int {
	return (len(p.Q) + p.Dnum - 1) / p.Dnum
}

// K returns the number of special moduli.
func (p Parameters) K() int { return len(p.P) }

// Validate checks structural consistency.
func (p Parameters) Validate() error {
	if p.LogN < 3 || p.LogN > 17 {
		return fmt.Errorf("ckks: LogN=%d out of range [3,17]", p.LogN)
	}
	if len(p.Q) == 0 {
		return fmt.Errorf("ckks: empty modulus chain")
	}
	if p.Dnum < 1 || p.Dnum > len(p.Q) {
		return fmt.Errorf("ckks: Dnum=%d out of range [1,%d]", p.Dnum, len(p.Q))
	}
	if len(p.P) == 0 {
		return fmt.Errorf("ckks: need at least one special modulus")
	}
	if p.Scale <= 0 {
		return fmt.Errorf("ckks: scale must be positive")
	}
	seen := map[uint64]bool{}
	for _, q := range append(append([]uint64{}, p.Q...), p.P...) {
		if seen[q] {
			return fmt.Errorf("ckks: duplicate modulus %d", q)
		}
		seen[q] = true
	}
	// Hybrid key switching needs P ≥ every digit-group product D_g, or the
	// d_g·e/P noise term swamps the plaintext.
	pProd := big.NewFloat(1)
	for _, pi := range p.P {
		pProd.Mul(pProd, new(big.Float).SetUint64(pi))
	}
	alpha := p.Alpha()
	for g := 0; g*alpha < len(p.Q); g++ {
		dg := big.NewFloat(1)
		for i := g * alpha; i < (g+1)*alpha && i < len(p.Q); i++ {
			dg.Mul(dg, new(big.Float).SetUint64(p.Q[i]))
		}
		if pProd.Cmp(dg) < 0 {
			return fmt.Errorf("ckks: special modulus P is smaller than digit group %d; increase K or Dnum", g)
		}
	}
	return nil
}

// GenParams generates a parameter set with a q0 of firstBits bits, `levels`
// scaling primes of scaleBits bits, and k special primes of specialBits bits.
// All primes are NTT-friendly for degree 2^logN.
func GenParams(logN, levels, dnum, k int, firstBits, scaleBits, specialBits uint64) (Parameters, error) {
	n2 := uint64(2) << uint(logN)
	// Draw primes per bit size from shared pools so equal bit sizes for q0,
	// the scale chain and the special moduli never collide.
	need := map[uint64]int{firstBits: 1}
	need[scaleBits] += levels
	need[specialBits] += k
	pools := map[uint64][]uint64{}
	for bits, count := range need {
		ps, err := modmath.GenerateNTTPrimes(bits, n2, count)
		if err != nil {
			return Parameters{}, err
		}
		pools[bits] = ps
	}
	take := func(bits uint64, count int) []uint64 {
		out := pools[bits][:count]
		pools[bits] = pools[bits][count:]
		return out
	}
	q := append([]uint64{}, take(firstBits, 1)...)
	q = append(q, take(scaleBits, levels)...)
	params := Parameters{
		LogN:  logN,
		Q:     q,
		P:     append([]uint64{}, take(specialBits, k)...),
		Scale: math.Exp2(float64(scaleBits)),
		Dnum:  dnum,
		Sigma: 3.2,
	}
	return params, params.Validate()
}

// TestParams returns a small parameter set for fast functional tests:
// N = 2^11, 5 levels of 40-bit scale, dnum = 3. Panics if the fixed
// generation recipe fails (it cannot, short of a regression in GenParams).
func TestParams() Parameters {
	p, err := GenParams(11, 5, 3, 2, 55, 40, 55)
	if err != nil {
		panic(err)
	}
	return p
}

// PaperParams returns the evaluation parameter descriptor used in the
// paper's Table 7 and Figure 6 (following SHARP): N = 2^16, L = 44 with
// 36-bit words, dnum = 4, K = 12 special moduli. It describes workload
// shapes for the accelerator model; instantiating the ring at this size is
// possible but expensive and not needed for cycle simulation.
func PaperParams() Parameters {
	q := make([]uint64, 45) // q_0 … q_44 (L = 44)
	for i := range q {
		q[i] = 1 // placeholder values: descriptor only
	}
	p := make([]uint64, 12)
	for i := range p {
		p[i] = 1
	}
	return Parameters{LogN: 16, Q: q, P: p, Scale: math.Exp2(36), Dnum: 4, Sigma: 3.2}
}

// Context carries the instantiated rings and converters for a parameter set.
type Context struct {
	Params Parameters
	RQ     *ring.Ring // ring over Q
	RP     *ring.Ring // ring over P
	Ext    *ring.Extender

	// Per-digit-group converters from the group's moduli to Q and to P —
	// the eager reference path (KeySwitch).
	groupToQ []*ring.BasisConverter
	groupToP []*ring.BasisConverter

	// Dec is the digit-batched dual-target decomposer the fused keyswitch
	// runs on (same tables as groupToQ/groupToP, shared step-1 scaling).
	Dec *ring.Decomposer

	// ctPool recycles Ciphertext wrappers (the polynomials themselves go
	// through the ring arenas); see Recycle in evaluator.go. decPool does
	// the same for Decomposition shells (hoisted.go).
	ctPool  sync.Pool
	decPool sync.Pool
}

// NewContext instantiates rings and precomputations for params.
func NewContext(params Parameters) (*Context, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	rq, err := ring.NewRing(params.N(), params.Q)
	if err != nil {
		return nil, err
	}
	rp, err := ring.NewRing(params.N(), params.P)
	if err != nil {
		return nil, err
	}
	ctx := &Context{Params: params, RQ: rq, RP: rp, Ext: ring.NewExtender(rq, rp)}
	alpha := params.Alpha()
	for g := 0; g < params.Dnum; g++ {
		lo := g * alpha
		if lo >= len(params.Q) {
			break
		}
		hi := lo + alpha
		if hi > len(params.Q) {
			hi = len(params.Q)
		}
		src := params.Q[lo:hi]
		toQ := ring.NewBasisConverter(src, params.Q)
		toP := ring.NewBasisConverter(src, params.P)
		// Digit conversions ride the main ring's scheduler so SetWorkers
		// reaches the fused keyswitch's Bconv tiles too.
		toQ.BindScheduler(rq)
		toP.BindScheduler(rq)
		ctx.groupToQ = append(ctx.groupToQ, toQ)
		ctx.groupToP = append(ctx.groupToP, toP)
	}
	duals := make([]*ring.DualConverter, len(ctx.groupToQ))
	for g := range duals {
		dc, err := ring.NewDualConverter(ctx.groupToQ[g], ctx.groupToP[g], g*alpha)
		if err != nil {
			return nil, err
		}
		duals[g] = dc
	}
	ctx.Dec = ring.NewDecomposer(alpha, duals)
	return ctx, nil
}

// SetWorkers fans the worker count out to every ring the context owns (RQ,
// RP) — and with them the bound converters — so one call configures the
// whole kernel suite an evaluation touches. 1 (the default) disables
// parallelism. Safe to call concurrently with running evaluations; the
// setting applies to subsequently submitted kernels.
func (c *Context) SetWorkers(n int) {
	c.RQ.SetWorkers(n)
	c.RP.SetWorkers(n)
}

// Workers reports the configured worker count (minimum 1).
func (c *Context) Workers() int { return c.RQ.Workers() }

// Close tears down the resident worker pools of the context's rings (see
// ring.Ring.Close); the context remains usable, falling back to serial
// kernels until another parallel call respawns workers.
func (c *Context) Close() {
	c.RQ.Close()
	c.RP.Close()
}

// GroupRange returns the modulus index range [lo, hi) of digit group g.
func (c *Context) GroupRange(g int) (lo, hi int) {
	alpha := c.Params.Alpha()
	lo = g * alpha
	hi = lo + alpha
	if hi > len(c.Params.Q) {
		hi = len(c.Params.Q)
	}
	return lo, hi
}

// GroupsAtLevel returns how many digit groups are active at the given level.
func (c *Context) GroupsAtLevel(level int) int {
	alpha := c.Params.Alpha()
	return (level + alpha) / alpha // ceil((level+1)/alpha)
}

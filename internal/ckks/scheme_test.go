package ckks

import (
	"math/cmplx"
	"testing"
)

type testHarness struct {
	ctx *Context
	enc *Encoder
	kg  *KeyGenerator
	sk  *SecretKey
	pk  *PublicKey
	eks *EvaluationKeySet
	et  *Encryptor
	dt  *Decryptor
	ev  *Evaluator
}

func newHarness(t testing.TB, rotations []int) *testHarness {
	t.Helper()
	params := TestParams()
	ctx, err := NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	h := &testHarness{ctx: ctx, enc: NewEncoder(ctx)}
	h.kg = NewKeyGenerator(ctx, 1001)
	h.sk = h.kg.GenSecretKey()
	h.pk = h.kg.GenPublicKey(h.sk)
	h.eks = h.kg.GenEvaluationKeySet(h.sk, rotations, true)
	h.et = NewEncryptor(ctx, h.pk, 2002)
	h.dt = NewDecryptor(ctx, h.sk)
	h.ev = NewEvaluator(ctx, h.eks)
	return h
}

func (h *testHarness) encrypt(t testing.TB, z []complex128) *Ciphertext {
	t.Helper()
	level := h.ctx.Params.MaxLevel()
	pt, err := h.enc.Encode(z, level, h.ctx.Params.Scale)
	if err != nil {
		t.Fatal(err)
	}
	return h.et.Encrypt(pt, level, h.ctx.Params.Scale)
}

func (h *testHarness) decrypt(ct *Ciphertext) []complex128 {
	pt := h.dt.DecryptPoly(ct)
	return h.enc.Decode(pt, ct.Level, ct.Scale)
}

func TestEncryptDecrypt(t *testing.T) {
	h := newHarness(t, nil)
	z := randomSlots(h.ctx.Params.Slots(), 21, 1.0)
	ct := h.encrypt(t, z)
	got := h.decrypt(ct)
	if e := maxSlotError(z, got); e > 1e-6 {
		t.Fatalf("encrypt/decrypt error %v", e)
	}
}

func TestHomomorphicAddSub(t *testing.T) {
	h := newHarness(t, nil)
	z1 := randomSlots(h.ctx.Params.Slots(), 22, 1.0)
	z2 := randomSlots(h.ctx.Params.Slots(), 23, 1.0)
	ct1, ct2 := h.encrypt(t, z1), h.encrypt(t, z2)

	sum, err := h.ev.Add(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	got := h.decrypt(sum)
	want := make([]complex128, len(z1))
	for i := range want {
		want[i] = z1[i] + z2[i]
	}
	if e := maxSlotError(got, want); e > 1e-6 {
		t.Fatalf("Hadd error %v", e)
	}

	diff, err := h.ev.Sub(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	got = h.decrypt(diff)
	for i := range want {
		want[i] = z1[i] - z2[i]
	}
	if e := maxSlotError(got, want); e > 1e-6 {
		t.Fatalf("Hsub error %v", e)
	}
}

func TestMulPlainAndRescale(t *testing.T) {
	h := newHarness(t, nil)
	z := randomSlots(h.ctx.Params.Slots(), 24, 1.0)
	w := randomSlots(h.ctx.Params.Slots(), 25, 1.0)
	ct := h.encrypt(t, z)
	pt, _ := h.enc.Encode(w, ct.Level, h.ctx.Params.Scale)

	prod := h.ev.MulPlain(ct, pt, h.ctx.Params.Scale)
	res, err := h.ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != ct.Level-1 {
		t.Fatalf("rescale did not drop level")
	}
	got := h.decrypt(res)
	want := make([]complex128, len(z))
	for i := range want {
		want[i] = z[i] * w[i]
	}
	if e := maxSlotError(got, want); e > 1e-5 {
		t.Fatalf("Pmult error %v", e)
	}
}

func TestMulRelinAndRescale(t *testing.T) {
	h := newHarness(t, nil)
	z1 := randomSlots(h.ctx.Params.Slots(), 26, 1.0)
	z2 := randomSlots(h.ctx.Params.Slots(), 27, 1.0)
	ct1, ct2 := h.encrypt(t, z1), h.encrypt(t, z2)

	prod, err := h.ev.MulRelin(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	got := h.decrypt(res)
	want := make([]complex128, len(z1))
	for i := range want {
		want[i] = z1[i] * z2[i]
	}
	if e := maxSlotError(got, want); e > 1e-4 {
		t.Fatalf("Cmult error %v", e)
	}
}

func TestMultiplicationDepth(t *testing.T) {
	// Square repeatedly down the modulus chain; values stay in [0,1] so the
	// plaintext cannot blow up while noise accumulates.
	h := newHarness(t, nil)
	n := h.ctx.Params.Slots()
	z := make([]complex128, n)
	for i := range z {
		z[i] = complex(0.9, 0)
	}
	ct := h.encrypt(t, z)
	want := make([]complex128, n)
	copy(want, z)
	for depth := 0; ct.Level > 0; depth++ {
		var err error
		ct, err = h.ev.MulRelin(ct, ct)
		if err != nil {
			t.Fatal(err)
		}
		ct, err = h.ev.Rescale(ct)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			want[i] *= want[i]
		}
		got := h.decrypt(ct)
		if e := maxSlotError(got, want); e > 1e-3 {
			t.Fatalf("depth %d: error %v", depth+1, e)
		}
	}
}

func TestRotation(t *testing.T) {
	rots := []int{1, 2, 7}
	h := newHarness(t, rots)
	n := h.ctx.Params.Slots()
	z := randomSlots(n, 28, 1.0)
	ct := h.encrypt(t, z)
	for _, r := range rots {
		rot, err := h.ev.Rotate(ct, r)
		if err != nil {
			t.Fatal(err)
		}
		got := h.decrypt(rot)
		want := make([]complex128, n)
		for i := range want {
			want[i] = z[(i+r)%n]
		}
		if e := maxSlotError(got, want); e > 1e-4 {
			t.Fatalf("rotation %d error %v", r, e)
		}
	}
}

func TestConjugate(t *testing.T) {
	h := newHarness(t, nil)
	z := randomSlots(h.ctx.Params.Slots(), 29, 1.0)
	ct := h.encrypt(t, z)
	conj, err := h.ev.Conjugate(ct)
	if err != nil {
		t.Fatal(err)
	}
	got := h.decrypt(conj)
	for i := range z {
		if cmplx.Abs(got[i]-cmplx.Conj(z[i])) > 1e-4 {
			t.Fatalf("conjugate error at slot %d", i)
		}
	}
}

func TestKeySwitchContract(t *testing.T) {
	// KeySwitch(c, swk(s'→s)) yields (B,A) with B + A·s ≈ c·s'.
	h := newHarness(t, nil)
	ctx := h.ctx
	level := ctx.Params.MaxLevel()

	// s' = secret of an independent key pair.
	kg2 := NewKeyGenerator(ctx, 555)
	sk2 := kg2.GenSecretKey()
	swk := h.kg.GenSwitchingKey(sk2.Q, h.sk)

	c := ctx.RQ.NewPoly(level)
	sampler := NewKeyGenerator(ctx, 777)
	c = sampler.uniformPoly(ctx.RQ, level)

	ksB, ksA := h.ev.KeySwitch(level, c, swk)
	// got = B + A·s.
	got := ctx.RQ.NewPoly(level)
	ctx.RQ.MulPoly(level, ksA, h.sk.Q, got)
	ctx.RQ.Add(level, got, ksB, got)
	// want = c·s'.
	want := ctx.RQ.NewPoly(level)
	ctx.RQ.MulPoly(level, c, sk2.Q, want)

	// Compare with a noise tolerance: the difference must be tiny relative
	// to q (decrypted difference coefficients are small integers).
	diff := ctx.RQ.NewPoly(level)
	ctx.RQ.Sub(level, got, want, diff)
	enc := h.enc
	for j := 0; j < ctx.Params.N(); j++ {
		d := enc.centeredCoeff(diff, j, level)
		if d > 1e9 || d < -1e9 { // |noise| ≪ q0·…·qL (≈2^255); 2^30 bound
			t.Fatalf("key switch noise too large at %d: %g", j, d)
		}
	}
}

func TestScaleMismatchRejected(t *testing.T) {
	h := newHarness(t, nil)
	z := randomSlots(h.ctx.Params.Slots(), 31, 1.0)
	ct1 := h.encrypt(t, z)
	ct2 := h.encrypt(t, z)
	ct2.Scale *= 2
	if _, err := h.ev.Add(ct1, ct2); err == nil {
		t.Fatal("expected scale mismatch error")
	}
}

func TestMissingKeysRejected(t *testing.T) {
	h := newHarness(t, nil)
	ev := NewEvaluator(h.ctx, nil)
	z := randomSlots(h.ctx.Params.Slots(), 32, 1.0)
	ct := h.encrypt(t, z)
	if _, err := ev.MulRelin(ct, ct); err == nil {
		t.Fatal("expected missing rlk error")
	}
	if _, err := ev.Rotate(ct, 1); err == nil {
		t.Fatal("expected missing rotation key error")
	}
	if _, err := h.ev.Rotate(ct, 3); err == nil {
		t.Fatal("expected missing rotation key error for unprepared step")
	}
	ct.Level = 0
	if _, err := h.ev.Rescale(ct); err == nil {
		t.Fatal("expected rescale error at level 0")
	}
}

func TestRotationComposition(t *testing.T) {
	// Rotate(r1) then Rotate(r2) == Rotate(r1+r2) on plaintext.
	h := newHarness(t, []int{1, 2, 3})
	n := h.ctx.Params.Slots()
	z := randomSlots(n, 33, 1.0)
	ct := h.encrypt(t, z)
	r1, err := h.ev.Rotate(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	r12, err := h.ev.Rotate(r1, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := h.decrypt(r12)
	want := make([]complex128, n)
	for i := range want {
		want[i] = z[(i+3)%n]
	}
	if e := maxSlotError(got, want); e > 1e-4 {
		t.Fatalf("rotation composition error %v", e)
	}
}

func TestRotateHoistedMatchesRotate(t *testing.T) {
	rots := []int{1, 2, 5, 9}
	h := newHarness(t, rots)
	n := h.ctx.Params.Slots()
	z := randomSlots(n, 34, 1.0)
	ct := h.encrypt(t, z)

	hoisted, err := h.ev.RotateHoisted(ct, rots)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rots {
		plain, err := h.ev.Rotate(ct, r)
		if err != nil {
			t.Fatal(err)
		}
		gotH := h.decrypt(hoisted[r])
		gotP := h.decrypt(plain)
		want := make([]complex128, n)
		for i := range want {
			want[i] = z[(i+r)%n]
		}
		if e := maxSlotError(gotH, want); e > 1e-4 {
			t.Fatalf("hoisted rotation %d error %v", r, e)
		}
		if e := maxSlotError(gotH, gotP); e > 1e-4 {
			t.Fatalf("hoisted and plain rotation %d disagree by %v", r, e)
		}
	}
	// Missing key must error.
	if _, err := h.ev.RotateHoisted(ct, []int{3}); err == nil {
		t.Fatal("expected missing-key error")
	}
}

package ckks

import (
	"encoding/binary"
	"fmt"
	"math"

	"alchemist/internal/ring"
)

// Ciphertext wire format: uint32 level, float64 scale, uint32 length of B,
// B poly bytes, A poly bytes.

// MarshalBinary encodes the ciphertext.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	b, err := ct.B.MarshalBinary()
	if err != nil {
		return nil, err
	}
	a, err := ct.A.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 16, 16+len(b)+len(a))
	binary.LittleEndian.PutUint32(out[0:], uint32(ct.Level))
	binary.LittleEndian.PutUint64(out[4:], math.Float64bits(ct.Scale))
	binary.LittleEndian.PutUint32(out[12:], uint32(len(b)))
	out = append(out, b...)
	out = append(out, a...)
	return out, nil
}

// UnmarshalBinary decodes into ct.
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("ckks: ciphertext header truncated")
	}
	ct.Level = int(binary.LittleEndian.Uint32(data[0:]))
	ct.Scale = math.Float64frombits(binary.LittleEndian.Uint64(data[4:]))
	bLen := int(binary.LittleEndian.Uint32(data[12:]))
	if bLen < 0 || 16+bLen > len(data) {
		return fmt.Errorf("ckks: ciphertext B length out of range")
	}
	ct.B = new(ring.Poly)
	if err := ct.B.UnmarshalBinary(data[16 : 16+bLen]); err != nil {
		return err
	}
	ct.A = new(ring.Poly)
	if err := ct.A.UnmarshalBinary(data[16+bLen:]); err != nil {
		return err
	}
	if ct.Level != ct.B.Level() || ct.Level != ct.A.Level() {
		return fmt.Errorf("ckks: level %d disagrees with poly channels (%d, %d)",
			ct.Level, ct.B.Level(), ct.A.Level())
	}
	if ct.Scale <= 0 || math.IsNaN(ct.Scale) || math.IsInf(ct.Scale, 0) {
		return fmt.Errorf("ckks: implausible scale %v", ct.Scale)
	}
	return nil
}

package ckks

import (
	"bytes"
	"testing"
)

func TestCiphertextSerializationRoundTrip(t *testing.T) {
	h := newHarness(t, nil)
	z := randomSlots(h.ctx.Params.Slots(), 61, 1.0)
	ct := h.encrypt(t, z)

	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Ciphertext
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Level != ct.Level || back.Scale != ct.Scale {
		t.Fatal("metadata lost")
	}
	// The deserialized ciphertext must decrypt identically.
	got := h.enc.Decode(h.dt.DecryptPoly(&back), back.Level, back.Scale)
	if e := maxSlotError(z, got); e > 1e-6 {
		t.Fatalf("round-tripped ciphertext decrypts with error %v", e)
	}
	// Wire stability: re-marshal equals the original bytes.
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("marshal is not deterministic")
	}
}

func TestCiphertextSerializationRejectsCorruption(t *testing.T) {
	h := newHarness(t, nil)
	z := randomSlots(h.ctx.Params.Slots(), 62, 1.0)
	ct := h.encrypt(t, z)
	blob, _ := ct.MarshalBinary()

	var back Ciphertext
	if err := back.UnmarshalBinary(blob[:10]); err == nil {
		t.Error("expected truncated-header rejection")
	}
	if err := back.UnmarshalBinary(blob[:len(blob)-4]); err == nil {
		t.Error("expected truncated-payload rejection")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 0xFF // corrupt the level
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Error("expected level-mismatch rejection")
	}
}

func FuzzCiphertextUnmarshal(f *testing.F) {
	params := TestParams()
	ctx, err := NewContext(params)
	if err != nil {
		f.Fatal(err)
	}
	p := ctx.RQ.NewPoly(1)
	ct := &Ciphertext{B: p, A: ctx.RQ.NewPoly(1), Level: 1, Scale: params.Scale}
	blob, _ := ct.MarshalBinary()
	f.Add(blob)
	f.Add([]byte{})
	f.Add(blob[:20])
	f.Fuzz(func(t *testing.T, data []byte) {
		var back Ciphertext
		if err := back.UnmarshalBinary(data); err == nil {
			if back.Level < 0 || back.Scale <= 0 {
				t.Fatal("accepted implausible ciphertext")
			}
		}
	})
}

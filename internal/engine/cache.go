package engine

import (
	"sync"

	"alchemist/internal/arch"
	"alchemist/internal/baseline"
)

// key identifies a computation: the full hardware configuration (both model
// structs are comparable, so they participate in the map key directly —
// every field counts, no hashing ambiguity) plus the graph's canonical
// fingerprint.
type key struct {
	isBaseline bool
	arch       arch.Config
	base       baseline.Config
	graph      uint64
	// verified separates stream-verified evaluations from plain ones: the
	// policies can disagree on whether a job fails, so they must not share
	// memoized outcomes.
	verified bool
}

func cacheKey(job Job, verified bool) key {
	k := key{graph: job.Graph.Fingerprint(), verified: verified}
	if job.Arch != nil {
		k.arch = *job.Arch
	} else {
		k.isBaseline = true
		k.base = *job.Baseline
	}
	return k
}

// entry is one memoized computation. done closes when outcome is valid;
// concurrent requests for the same key wait on it instead of recomputing
// (in-flight deduplication).
type entry struct {
	done    chan struct{}
	outcome outcome
}

// Cache memoizes simulation outcomes across jobs, engines and one-shot
// calls. The zero value is not usable; construct with NewCache. Model
// errors are cached too — simulations are deterministic, so a failing
// (config, graph) pair fails identically every time.
type Cache struct {
	mu      sync.Mutex
	entries map[key]*entry
}

// NewCache returns an empty cache safe for concurrent use.
func NewCache() *Cache {
	return &Cache{entries: map[key]*entry{}}
}

// acquire returns the entry for k and whether the caller is the leader
// responsible for computing and publishing it.
func (c *Cache) acquire(k key) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		return e, false
	}
	e := &entry{done: make(chan struct{})}
	c.entries[k] = e
	return e, true
}

// Len returns the number of distinct computations the cache holds
// (including in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Package engine is the concurrent batch-evaluation layer over the two
// cycle simulators (internal/sim for Alchemist, internal/baseline for the
// modular accelerators). It exists because the paper's whole evaluation —
// every table, figure, ablation sweep and cross-check — is a pile of
// independent (config, graph) simulations: the SoK on FHE accelerators
// argues end-to-end throughput is set by the software pipeline feeding the
// model as much as by the model itself, and a single blocking Simulate call
// per artifact wastes every core but one.
//
// An Engine owns a bounded worker pool (default runtime.NumCPU()), a
// memoization cache keyed by the graph's canonical fingerprint plus the full
// hardware configuration, and an observable stats snapshot. Jobs are
// submitted with a context; cancellation and per-job timeouts are honored
// at queue pop and while a simulation is in flight (the pure-Go simulation
// itself cannot be preempted, but its result is abandoned and the caller
// returns promptly). Simulations are deterministic, so parallel evaluation
// returns byte-identical results to serial evaluation — a property
// internal/bench's report regeneration relies on and tests.
//
// Results returned by the engine may be cache-shared between callers and
// must be treated as read-only.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"alchemist/internal/arch"
	"alchemist/internal/baseline"
	"alchemist/internal/errs"
	"alchemist/internal/sim"
	"alchemist/internal/streamcheck"
	"alchemist/internal/tokens"
	"alchemist/internal/trace"
)

// Job is one simulation request: a workload graph on exactly one hardware
// model (Arch for the Alchemist simulator, Baseline for a modular design).
type Job struct {
	// Arch selects the Alchemist cycle simulator.
	Arch *arch.Config
	// Baseline selects the modular-accelerator model.
	Baseline *baseline.Config
	// Graph is the workload to run.
	Graph *trace.Graph
	// Timeout bounds this job alone; 0 inherits the engine default.
	Timeout time.Duration
}

// SimJob builds an Alchemist simulation job.
func SimJob(cfg arch.Config, g *trace.Graph) Job { return Job{Arch: &cfg, Graph: g} }

// BaselineJob builds a modular-baseline simulation job.
func BaselineJob(cfg baseline.Config, g *trace.Graph) Job { return Job{Baseline: &cfg, Graph: g} }

// Result is one completed (or failed) job. Exactly one of Sim/Baseline is
// meaningful, matching the job's model; Err classifies failures via the
// errs sentinels (errors.Is against ErrCanceled, ErrTimeout, ErrBadConfig,
// ErrGraphCycle).
type Result struct {
	Job      Job
	Sim      sim.Result
	Baseline baseline.Result
	Err      error
	// Cached reports that the result was served from the memo cache (or
	// deduplicated onto another in-flight computation of the same job).
	Cached bool
	// Wall is the caller-observed latency of this job.
	Wall time.Duration
}

// Stats is an observable snapshot of an engine's activity.
type Stats struct {
	Workers     int
	Submitted   int64
	Completed   int64 // includes failures
	Failed      int64
	CacheHits   int64
	CacheMisses int64
	QueueDepth  int           // jobs enqueued but not yet picked up
	TotalWall   time.Duration // Σ per-job wall clock across completed jobs
}

// HitRate returns the cache hit fraction (0 when nothing was looked up).
func (s Stats) HitRate() float64 {
	if n := s.CacheHits + s.CacheMisses; n > 0 {
		return float64(s.CacheHits) / float64(n)
	}
	return 0
}

// config carries the tunables shared by Engine and the one-shot Evaluate.
type config struct {
	workers  int
	queue    int
	timeout  time.Duration
	cache    *Cache
	cacheSet bool
	verify   bool
}

// Option configures an Engine (or a one-shot Evaluate call).
type Option func(*config)

// WithWorkers sets the worker-pool size (default runtime.NumCPU(); values
// below 1 are clamped to 1). One-shot Evaluate calls ignore it.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.workers = n
	}
}

// WithTimeout sets the default per-job timeout (0 = none).
func WithTimeout(d time.Duration) Option {
	return func(c *config) { c.timeout = d }
}

// WithCache injects a memo cache, which may be shared between engines and
// one-shot calls. Passing nil disables caching. Without this option every
// engine owns a fresh private cache — there is no package-global state to
// race on.
func WithCache(cache *Cache) Option {
	return func(c *config) { c.cache = cache; c.cacheSet = true }
}

// WithVerifyStreams makes every Alchemist job compile its graph to per-unit
// Meta-OP streams and statically verify them (internal/streamcheck) before
// the timing model runs. A job whose compiled program violates the §5.3
// contract fails with an error wrapping errs.ErrIllegalStream. Baseline
// jobs have no Meta-OP streams and are unaffected. Verified and unverified
// evaluations memoize under distinct cache keys, so engines sharing a cache
// never serve each other the wrong policy's outcome.
func WithVerifyStreams(on bool) Option {
	return func(c *config) { c.verify = on }
}

// WithQueueDepth sets the submission queue capacity (default 2× workers).
func WithQueueDepth(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.queue = n
	}
}

func buildConfig(opts []Option) config {
	c := config{workers: runtime.NumCPU()}
	for _, o := range opts {
		o(&c)
	}
	if !c.cacheSet {
		c.cache = NewCache()
	}
	if c.queue == 0 {
		c.queue = 2 * c.workers
	}
	return c
}

// task is one queued job awaiting a worker.
type task struct {
	ctx context.Context
	job Job
	out chan Result // buffered (1): workers never block on delivery
}

// Engine runs simulation jobs on a bounded worker pool.
type Engine struct {
	cfg   config
	tasks chan *task
	wg    sync.WaitGroup

	mu     sync.RWMutex // guards closed vs. in-flight submissions
	closed bool

	submitted   atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	wallNanos   atomic.Int64
}

// New starts an engine. Callers own its lifecycle and should Close it when
// done; two engines in one process are fully independent unless they share
// a cache via WithCache.
func New(opts ...Option) *Engine {
	e := &Engine{cfg: buildConfig(opts)}
	e.tasks = make(chan *task, e.cfg.queue)
	e.wg.Add(e.cfg.workers)
	for i := 0; i < e.cfg.workers; i++ {
		go e.worker()
	}
	return e
}

// Close stops the workers after the queue drains. Submissions after Close
// fail with ErrCanceled. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.tasks)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for t := range e.tasks {
		// Hold one compute token per in-flight job so engine-level job
		// parallelism and ring-level limb parallelism draw from the same
		// budget: while k jobs run, concurrent ring kernels see k fewer
		// helper tokens and shrink accordingly instead of oversubscribing
		// the machine. Acquisition never blocks — a zero grant just means
		// the ring side is already using the budget, and this job runs
		// uncounted rather than stall the queue (the pool is bounded by
		// workers anyway).
		g := tokens.Acquire(1)
		res := run(t.ctx, t.job, e.cfg, &e.cacheHits, &e.cacheMisses)
		tokens.Release(g)
		e.completed.Add(1)
		if res.Err != nil {
			e.failed.Add(1)
		}
		e.wallNanos.Add(int64(res.Wall))
		t.out <- res
	}
}

// Submit enqueues one job and returns a channel that will deliver exactly
// one Result. Enqueueing blocks when the queue is full; a canceled context
// (or a closed engine) delivers an ErrCanceled result instead.
func (e *Engine) Submit(ctx context.Context, job Job) <-chan Result {
	out := make(chan Result, 1)
	e.submitted.Add(1)
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		e.deliverFailure(out, job, fmt.Errorf("engine: submit on closed engine: %w", errs.ErrCanceled))
		return out
	}
	t := &task{ctx: ctx, job: job, out: out}
	select {
	case e.tasks <- t:
		e.mu.RUnlock()
	case <-ctx.Done():
		e.mu.RUnlock()
		e.deliverFailure(out, job, fmt.Errorf("engine: submit: %w", wrapCtxErr(ctx.Err())))
	}
	return out
}

func (e *Engine) deliverFailure(out chan Result, job Job, err error) {
	e.completed.Add(1)
	e.failed.Add(1)
	out <- Result{Job: job, Err: err}
}

// Run submits the jobs and waits for all of them, returning results in
// submission order. Individual failures are reported per-result; the
// returned error is the context's (wrapped) error if the batch was cut
// short, nil otherwise.
func (e *Engine) Run(ctx context.Context, jobs ...Job) ([]Result, error) {
	outs := make([]<-chan Result, len(jobs))
	for i, j := range jobs {
		outs[i] = e.Submit(ctx, j)
	}
	results := make([]Result, len(jobs))
	for i, out := range outs {
		results[i] = <-out
	}
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("engine: batch: %w", wrapCtxErr(err))
	}
	return results, nil
}

// Stats returns a point-in-time snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Workers:     e.cfg.workers,
		Submitted:   e.submitted.Load(),
		Completed:   e.completed.Load(),
		Failed:      e.failed.Load(),
		CacheHits:   e.cacheHits.Load(),
		CacheMisses: e.cacheMisses.Load(),
		QueueDepth:  len(e.tasks),
		TotalWall:   time.Duration(e.wallNanos.Load()),
	}
}

// Evaluate runs one job without a pool: the context-first single-shot path
// the public alchemist.SimulateContext entry points use. WithWorkers and
// WithQueueDepth are accepted but meaningless here; WithCache makes
// repeated one-shot calls share results. Unlike an Engine, Evaluate
// defaults to no cache — a single call has nothing to memoize against.
func Evaluate(ctx context.Context, job Job, opts ...Option) Result {
	c := buildConfig(opts)
	if !c.cacheSet {
		c.cache = nil
	}
	return run(ctx, job, c, nil, nil)
}

// run executes one job under the config's timeout and cache policy.
func run(ctx context.Context, job Job, cfg config, hits, misses *atomic.Int64) Result {
	start := time.Now()
	finish := func(r Result) Result {
		r.Wall = time.Since(start)
		return r
	}
	res := Result{Job: job}
	if err := validateJob(job); err != nil {
		res.Err = err
		return finish(res)
	}
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("engine: %w", wrapCtxErr(err))
		return finish(res)
	}
	timeout := job.Timeout
	if timeout == 0 {
		timeout = cfg.timeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	if cfg.cache == nil {
		done := make(chan outcome, 1)
		go func() { done <- compute(job, cfg.verify) }()
		select {
		case o := <-done:
			res.Sim, res.Baseline, res.Err = o.sim, o.base, o.err
		case <-ctx.Done():
			res.Err = fmt.Errorf("engine: %w", wrapCtxErr(ctx.Err()))
		}
		return finish(res)
	}

	e, leader := cfg.cache.acquire(cacheKey(job, cfg.verify))
	if leader {
		if misses != nil {
			misses.Add(1)
		}
		// The compute goroutine owns publication: even if this caller times
		// out, the entry is eventually filled and later callers hit it.
		go func() {
			e.outcome = compute(job, cfg.verify)
			close(e.done)
		}()
	} else if hits != nil {
		hits.Add(1)
	}
	select {
	case <-e.done:
		res.Sim, res.Baseline, res.Err = e.outcome.sim, e.outcome.base, e.outcome.err
		res.Cached = !leader
	case <-ctx.Done():
		res.Err = fmt.Errorf("engine: %w", wrapCtxErr(ctx.Err()))
	}
	return finish(res)
}

// outcome is the model-layer result of one computation, independent of the
// caller that triggered it.
type outcome struct {
	sim  sim.Result
	base baseline.Result
	err  error
}

func compute(job Job, verify bool) outcome {
	var o outcome
	if job.Arch != nil {
		if verify {
			if _, err := streamcheck.CompileAndVerify(*job.Arch, job.Graph); err != nil {
				o.err = fmt.Errorf("engine: stream verification: %w", err)
				return o
			}
		}
		o.sim, o.err = sim.Simulate(*job.Arch, job.Graph)
	} else {
		o.base, o.err = baseline.Simulate(*job.Baseline, job.Graph)
	}
	return o
}

func validateJob(job Job) error {
	if job.Graph == nil {
		return fmt.Errorf("engine: job has no graph: %w", errs.ErrBadConfig)
	}
	if (job.Arch == nil) == (job.Baseline == nil) {
		return fmt.Errorf("engine: job must set exactly one of Arch and Baseline: %w", errs.ErrBadConfig)
	}
	return nil
}

// wrapCtxErr maps context errors onto the shared sentinels while keeping
// the original error visible to errors.Is.
func wrapCtxErr(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", errs.ErrTimeout, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", errs.ErrCanceled, err)
	default:
		return err
	}
}

package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"alchemist/internal/arch"
	"alchemist/internal/baseline"
	"alchemist/internal/errs"
	"alchemist/internal/sim"
	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

func testJobs() []Job {
	s := workload.PaperShape()
	cfg := arch.Default()
	return []Job{
		SimJob(cfg, workload.Pmult(s)),
		SimJob(cfg, workload.Hadd(s)),
		SimJob(cfg, workload.Keyswitch(s)),
		SimJob(cfg, workload.Cmult(s)),
		BaselineJob(baseline.SHARP(), workload.Cmult(s)),
	}
}

func TestRunMatchesDirectSimulation(t *testing.T) {
	e := New(WithWorkers(4))
	defer e.Close()
	jobs := testJobs()
	results, err := e.Run(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if jobs[i].Arch != nil {
			want, err := sim.Simulate(*jobs[i].Arch, jobs[i].Graph)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r.Sim, want) {
				t.Errorf("job %d (%s): engine result differs from direct simulation", i, want.Name)
			}
		} else {
			want, err := baseline.Simulate(*jobs[i].Baseline, jobs[i].Graph)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r.Baseline, want) {
				t.Errorf("job %d (%s): engine baseline result differs", i, want.Name)
			}
		}
	}
}

func TestCacheHitReturnsIdenticalResult(t *testing.T) {
	e := New(WithWorkers(2))
	defer e.Close()
	job := SimJob(arch.Default(), workload.Cmult(workload.PaperShape()))

	cold := <-e.Submit(context.Background(), job)
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	if cold.Cached {
		t.Fatal("first run reported as cached")
	}
	warm := <-e.Submit(context.Background(), job)
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	if !warm.Cached {
		t.Fatal("second run of an identical job missed the cache")
	}
	if !reflect.DeepEqual(cold.Sim, warm.Sim) {
		t.Fatal("cache hit returned a different Result than the cold run")
	}
	st := e.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats: hits=%d misses=%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.HitRate())
	}
}

func TestSharedCacheAcrossEngines(t *testing.T) {
	cache := NewCache()
	job := SimJob(arch.Default(), workload.Pmult(workload.PaperShape()))

	e1 := New(WithWorkers(1), WithCache(cache))
	r1 := <-e1.Submit(context.Background(), job)
	e1.Close()
	if r1.Err != nil || r1.Cached {
		t.Fatalf("first engine: err=%v cached=%v", r1.Err, r1.Cached)
	}

	e2 := New(WithWorkers(1), WithCache(cache))
	defer e2.Close()
	r2 := <-e2.Submit(context.Background(), job)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if !r2.Cached {
		t.Fatal("second engine missed the shared cache")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}
}

func TestCanceledContext(t *testing.T) {
	e := New(WithWorkers(1))
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := <-e.Submit(ctx, SimJob(arch.Default(), workload.Pmult(workload.PaperShape())))
	if !errors.Is(res.Err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", res.Err)
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err = %v should still match context.Canceled", res.Err)
	}
}

func TestPerJobTimeout(t *testing.T) {
	e := New(WithWorkers(1))
	defer e.Close()
	// A one-nanosecond budget expires before the several-thousand-op PBS
	// simulation can finish, deterministically.
	job := SimJob(arch.Default(), workload.PBSBatch(workload.PBSSetI(), 128))
	job.Timeout = time.Nanosecond
	res := <-e.Submit(context.Background(), job)
	if !errors.Is(res.Err, errs.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", res.Err)
	}
}

func TestBadJobs(t *testing.T) {
	e := New(WithWorkers(1))
	defer e.Close()
	g := workload.Pmult(workload.PaperShape())

	res := <-e.Submit(context.Background(), Job{Graph: g})
	if !errors.Is(res.Err, errs.ErrBadConfig) {
		t.Fatalf("model-less job: err = %v, want ErrBadConfig", res.Err)
	}

	bad := arch.Default()
	bad.Units = 0
	res = <-e.Submit(context.Background(), SimJob(bad, g))
	if !errors.Is(res.Err, errs.ErrBadConfig) {
		t.Fatalf("invalid arch: err = %v, want ErrBadConfig", res.Err)
	}

	cyclic := &trace.Graph{Name: "cyclic", Ops: []*trace.Op{
		{ID: 0, Kind: trace.KindEWAdd, N: 64, Channels: 1, Polys: 1, Deps: []int{0}},
	}}
	res = <-e.Submit(context.Background(), SimJob(arch.Default(), cyclic))
	if !errors.Is(res.Err, errs.ErrGraphCycle) {
		t.Fatalf("cyclic graph: err = %v, want ErrGraphCycle", res.Err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := New(WithWorkers(1))
	e.Close()
	res := <-e.Submit(context.Background(), SimJob(arch.Default(), workload.Pmult(workload.PaperShape())))
	if !errors.Is(res.Err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", res.Err)
	}
}

func TestEvaluateOneShot(t *testing.T) {
	job := SimJob(arch.Default(), workload.Pmult(workload.PaperShape()))
	res := Evaluate(context.Background(), job)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Sim.Cycles != 1056 {
		t.Fatalf("Pmult %d cycles, want 1056", res.Sim.Cycles)
	}

	cache := NewCache()
	first := Evaluate(context.Background(), job, WithCache(cache))
	second := Evaluate(context.Background(), job, WithCache(cache))
	if first.Cached || !second.Cached {
		t.Fatalf("one-shot shared cache: first.Cached=%v second.Cached=%v", first.Cached, second.Cached)
	}
}

func TestStatsCounters(t *testing.T) {
	e := New(WithWorkers(2))
	defer e.Close()
	jobs := testJobs()
	if _, err := e.Run(context.Background(), jobs...); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Submitted != int64(len(jobs)) || st.Completed != int64(len(jobs)) {
		t.Fatalf("submitted/completed %d/%d, want %d/%d", st.Submitted, st.Completed, len(jobs), len(jobs))
	}
	if st.Failed != 0 {
		t.Fatalf("failed = %d, want 0", st.Failed)
	}
	if st.TotalWall <= 0 {
		t.Fatal("total wall clock not recorded")
	}
	if st.Workers != 2 {
		t.Fatalf("workers = %d, want 2", st.Workers)
	}
}

// TestConcurrentSubmitsAndCancellation is the race-detector stress: many
// goroutines submitting against a small pool while the sweep is canceled
// midway. Every submission must still deliver exactly one result.
func TestConcurrentSubmitsAndCancellation(t *testing.T) {
	e := New(WithWorkers(2), WithQueueDepth(4))
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	s := workload.PaperShape()
	graphs := []*trace.Graph{workload.Pmult(s), workload.Hadd(s), workload.Cmult(s)}

	const submitters = 8
	const perSubmitter = 6
	var wg sync.WaitGroup
	var delivered atomic64
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				res := <-e.Submit(ctx, SimJob(arch.Default(), graphs[(i+j)%len(graphs)]))
				if res.Err != nil && !errors.Is(res.Err, errs.ErrCanceled) {
					t.Errorf("unexpected error: %v", res.Err)
				}
				delivered.add(1)
			}
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	cancel()
	wg.Wait()
	if got := delivered.load(); got != submitters*perSubmitter {
		t.Fatalf("delivered %d results, want %d", got, submitters*perSubmitter)
	}
	st := e.Stats()
	if st.Completed != st.Submitted {
		t.Fatalf("completed %d != submitted %d", st.Completed, st.Submitted)
	}
}

// atomic64 avoids importing sync/atomic twice under a name the engine file
// already uses.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// TestParallelEqualsSerial asserts the engine's defining property: the same
// batch evaluated on one worker and on many produces element-wise identical
// results.
func TestParallelEqualsSerial(t *testing.T) {
	jobs := testJobs()
	serialEng := New(WithWorkers(1))
	serial, err := serialEng.Run(context.Background(), jobs...)
	serialEng.Close()
	if err != nil {
		t.Fatal(err)
	}
	parallelEng := New(WithWorkers(8))
	parallel, err := parallelEng.Run(context.Background(), jobs...)
	parallelEng.Close()
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(serial[i].Sim, parallel[i].Sim) ||
			!reflect.DeepEqual(serial[i].Baseline, parallel[i].Baseline) {
			t.Errorf("job %d: parallel result differs from serial", i)
		}
	}
}

package engine

import (
	"context"
	"errors"
	"testing"

	"alchemist/internal/arch"
	"alchemist/internal/errs"
	"alchemist/internal/workload"
)

// TestWithVerifyStreams: a verified job on a legal design point succeeds
// with the same timing result as an unverified one; an illegal design point
// (scratchpad too small for one operand tile) fails with
// errs.ErrIllegalStream before the timing model runs.
func TestWithVerifyStreams(t *testing.T) {
	ctx := context.Background()
	g := workload.Pmult(workload.PaperShape())

	plain := Evaluate(ctx, SimJob(arch.Default(), g))
	verified := Evaluate(ctx, SimJob(arch.Default(), g), WithVerifyStreams(true))
	if plain.Err != nil || verified.Err != nil {
		t.Fatalf("legal job failed: plain=%v verified=%v", plain.Err, verified.Err)
	}
	if plain.Sim.Cycles != verified.Sim.Cycles {
		t.Errorf("verification changed the timing result: %d vs %d cycles",
			plain.Sim.Cycles, verified.Sim.Cycles)
	}

	bad := arch.Default()
	bad.LocalScratchpadBytes = 1024
	res := Evaluate(ctx, SimJob(bad, g), WithVerifyStreams(true))
	if !errors.Is(res.Err, errs.ErrIllegalStream) {
		t.Errorf("verified job on 1 KB scratchpad: err %v does not wrap ErrIllegalStream", res.Err)
	}
	// Without verification the timing model happily simulates the same
	// (physically unbuildable) configuration — the gate is what rejects it.
	if res := Evaluate(ctx, SimJob(bad, g)); res.Err != nil {
		t.Errorf("unverified job unexpectedly failed: %v", res.Err)
	}
}

// TestVerifyStreamsCacheIsolation: verified and unverified evaluations of
// the same (config, graph) must not share memoized outcomes — one fails,
// the other succeeds.
func TestVerifyStreamsCacheIsolation(t *testing.T) {
	ctx := context.Background()
	g := workload.Pmult(workload.PaperShape())
	bad := arch.Default()
	bad.LocalScratchpadBytes = 1024
	cache := NewCache()

	r1 := Evaluate(ctx, SimJob(bad, g), WithCache(cache), WithVerifyStreams(true))
	if !errors.Is(r1.Err, errs.ErrIllegalStream) {
		t.Fatalf("verified: %v", r1.Err)
	}
	r2 := Evaluate(ctx, SimJob(bad, g), WithCache(cache))
	if r2.Err != nil {
		t.Fatalf("unverified evaluation served the verified failure: %v", r2.Err)
	}
	if cache.Len() != 2 {
		t.Errorf("expected 2 distinct cache entries, got %d", cache.Len())
	}

	// Same policy twice does share: the second verified call is a hit.
	r3 := Evaluate(ctx, SimJob(bad, g), WithCache(cache), WithVerifyStreams(true))
	if !errors.Is(r3.Err, errs.ErrIllegalStream) || !r3.Cached {
		t.Errorf("repeat verified call: err=%v cached=%v", r3.Err, r3.Cached)
	}
}

// TestEngineVerifyStreams: the pooled path honors the option too.
func TestEngineVerifyStreams(t *testing.T) {
	e := New(WithWorkers(2), WithVerifyStreams(true))
	defer e.Close()
	g := workload.Keyswitch(workload.PaperShape())

	bad := arch.Default()
	bad.LocalScratchpadBytes = 1024
	results, err := e.Run(context.Background(),
		SimJob(arch.Default(), g), SimJob(bad, g))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Errorf("legal job: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, errs.ErrIllegalStream) {
		t.Errorf("illegal job: %v", results[1].Err)
	}
}

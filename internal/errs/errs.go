// Package errs defines the sentinel errors shared by the simulation stack.
// Every layer (trace validation, the Alchemist simulator, the baseline
// models, the batch-evaluation engine and the public alchemist package)
// wraps its failures around these values with %w, so callers can classify
// outcomes with errors.Is instead of string matching:
//
//	res, err := alchemist.SimulateContext(ctx, cfg, g)
//	if errors.Is(err, alchemist.ErrTimeout) { ... }
//
// The package sits below every other package in the module and imports
// nothing but the standard library.
package errs

import "errors"

var (
	// ErrCanceled marks work abandoned because its context was canceled
	// before or while the job ran.
	ErrCanceled = errors.New("evaluation canceled")

	// ErrTimeout marks work abandoned because a per-job or engine-wide
	// deadline expired.
	ErrTimeout = errors.New("evaluation timed out")

	// ErrGraphCycle marks a workload graph whose dependency structure is not
	// a forward-ordered DAG (an op depending on itself or a later op).
	ErrGraphCycle = errors.New("workload graph is not a forward-ordered DAG")

	// ErrBadConfig marks an invalid hardware configuration or a structurally
	// malformed op (empty shape, missing Bconv/DecompPolyMult parameters).
	ErrBadConfig = errors.New("invalid configuration")

	// ErrIllegalStream marks a compiled per-unit Meta-OP program that
	// violates the architectural contract (§5.3): an instruction outside
	// the Meta-OP legality table, a scratchpad or transpose resource
	// violation, a Meta-OP conservation or load-balance failure, or broken
	// graph linkage. Raised by internal/streamcheck and surfaced through
	// sched.Compile's post-condition, the sim pre-execution gate and the
	// engine's WithVerifyStreams option.
	ErrIllegalStream = errors.New("illegal Meta-OP stream")
)

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// ArchConst implements the arch-constant-provenance rule: the paper's
// design-point numbers (128 computing units, 16 Meta-OP cores per unit,
// 2048 total cores) must not be re-hardcoded outside internal/arch and
// internal/area. A bare 128 bound to a name like "units" drifts silently
// when the ablation benches sweep the real configuration; deriving from
// arch.Default() (or the arch.Paper* constants) keeps every layer honest.
//
// The rule fires when one of the magic values is bound — by assignment,
// declaration, or composite-literal key — to an architecture-flavored name
// (unit/core/lane/metaop/cycle), so ordinary uses of 128 as a ring degree
// or buffer size stay quiet.
type ArchConst struct {
	// Exempt lists import-path substrings where the constants live.
	Exempt []string
	// Values maps each protected literal to its sanctioned source.
	Values map[int64]string
	// NameRE matches architecture-flavored identifiers.
	NameRE *regexp.Regexp
}

// NewArchConst returns the rule with the paper's Table 5 design point.
func NewArchConst(module string) *ArchConst {
	return &ArchConst{
		Exempt: []string{module + "/internal/arch", module + "/internal/area"},
		Values: map[int64]string{
			128:  "arch.PaperUnits",
			16:   "arch.PaperCoresPerUnit",
			2048: "arch.PaperUnits * arch.PaperCoresPerUnit",
		},
		NameRE: regexp.MustCompile(`(?i)unit|core|lane|metaop|meta_op|cycle`),
	}
}

func (*ArchConst) Name() string { return "arch-const" }

func (*ArchConst) Doc() string {
	return "paper architecture constants (128 units, 16 cores) must come from internal/arch, not magic numbers"
}

func (a *ArchConst) Check(p *Package, report func(Finding)) {
	if matchAny(p.PkgPath, a.Exempt) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.ValueSpec:
				for i, name := range e.Names {
					if i < len(e.Values) {
						a.checkBinding(p, name.Name, e.Values[i], report)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range e.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(e.Rhs) {
						continue
					}
					a.checkBinding(p, id.Name, e.Rhs[i], report)
				}
			case *ast.KeyValueExpr:
				if id, ok := e.Key.(*ast.Ident); ok {
					a.checkBinding(p, id.Name, e.Value, report)
				}
			}
			return true
		})
	}
}

func (a *ArchConst) checkBinding(p *Package, name string, value ast.Expr, report func(Finding)) {
	lit, ok := value.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return
	}
	v, err := strconv.ParseInt(lit.Value, 0, 64)
	if err != nil {
		return
	}
	src, magic := a.Values[v]
	if !magic || !a.NameRE.MatchString(name) {
		return
	}
	if p.Allowed(a.Name(), lit.Pos()) {
		return
	}
	report(Finding{
		Pos:  p.Fset.Position(lit.Pos()),
		Rule: a.Name(),
		Msg:  fmt.Sprintf("paper constant %d re-hardcoded as %q outside internal/arch", v, name),
		Hint: fmt.Sprintf("derive from arch.Default() or reference %s, or annotate //alchemist:allow arch-const <reason>", src),
	})
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// ArenaLife implements the arena-lifetime rule: a path-sensitive forward
// dataflow analysis proving the Borrow/Release discipline of the ring-scoped
// scratch arenas (ring/pool.go) statically, the way streamcheck proves
// Meta-OP program legality without executing it. Runtime poison-debug
// (SetPoolDebug) catches a use-after-release only when a test happens to
// execute the broken path; this rule walks every path of the control-flow
// graph instead.
//
// The borrow/release vocabulary is the arena naming convention itself: a
// method call whose name begins with Borrow/borrow (or is Scratch) yields a
// pooled value; a method call whose name begins with Release/release
// consumes one. For every function in the kernel packages the rule proves:
//
//  1. every Borrow is matched by exactly one Release on ALL paths — early
//     returns, explicit panics and error branches included — with
//     `defer r.Release(p)` (directly or inside a deferred closure)
//     understood as releasing on every exit;
//
//  2. no use of a pooled value after its Release (and no double Release);
//
//  3. no escape of a pooled value — returning it, storing it into a struct
//     field, slice, map or channel, or capturing it in a goroutine — unless
//     the site carries an explicit ownership-transfer annotation:
//
//     //alchemist:owns <why the receiver releases this>
//
//     placed on (or immediately above) the transferring line. The
//     annotation is the documented hand-off contract: Borrow-wrapper
//     constructors, functions returning pooled results for the caller to
//     Release, and digit-batch slices released by a later range loop all
//     carry one.
//
// The analysis is intraprocedural: a pooled value received from a callee
// (e.g. the two halves KeySwitchFused returns) is the caller's to release,
// and that obligation is documented by the callee's //alchemist:owns site
// rather than re-proved here.
type ArenaLife struct {
	// Scope lists import-path substrings of the disciplined packages.
	Scope []string

	// onRelease, when set, receives every Release site whose argument the
	// analysis tracked back to a Borrow — i.e. the sites the rule actually
	// proves necessary. The mutation self-test deletes exactly these.
	onRelease func(ReleaseSite)
}

// ReleaseSite is one statically-verified Release call: the statement span
// (for textual mutation) and the released variable's name.
type ReleaseSite struct {
	File     string
	Pos, End token.Pos
	Var      string
}

// NewArenaLife returns the rule scoped to the arena-using kernel packages.
func NewArenaLife(module string) *ArenaLife {
	return &ArenaLife{Scope: []string{
		module + "/internal/ring",
		module + "/internal/ckks",
		module + "/internal/bgv",
		module + "/internal/tfhe",
		module + "/internal/bridge",
	}}
}

func (*ArenaLife) Name() string { return "arena-lifetime" }

func (*ArenaLife) Doc() string {
	return "every arena Borrow is Released exactly once on all paths, never used after Release, and never escapes without //alchemist:owns"
}

var ownsRE = regexp.MustCompile(`^//\s*alchemist:owns(?:\s+(.*))?$`)

// ownsDirective is one parsed //alchemist:owns comment.
type ownsDirective struct {
	file   string
	line   int
	reason string
	used   bool
}

// borrow-state lattice: one bit per reachable per-path status, joined by
// union at control-flow merges.
const (
	stBorrowed uint8 = 1 << iota // live, release still owed
	stDeferred                   // live, a deferred Release fires at exit
	stReleased                   // returned to the arena
	stEscaped                    // ownership transferred (annotated or flagged)
)

func (a *ArenaLife) Check(p *Package, report func(Finding)) {
	if !matchAny(p.PkgPath, a.Scope) {
		return
	}
	owns := parseOwns(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fa := &funcAnalysis{
				rule:   a,
				pkg:    p,
				fn:     fd,
				owns:   owns,
				states: map[*CFGNode]arenaState{},
			}
			fa.run(report)
		}
	}
	for _, d := range owns {
		if d.reason == "" {
			report(Finding{
				Pos:  token.Position{Filename: d.file, Line: d.line, Column: 1},
				Rule: a.Name(),
				Msg:  "owns directive has no reason",
				Hint: "write //alchemist:owns <who releases this value and when>",
			})
		} else if !d.used {
			report(Finding{
				Pos:  token.Position{Filename: d.file, Line: d.line, Column: 1},
				Rule: a.Name(),
				Msg:  "owns directive transfers no ownership: no pooled value is borrowed, returned, stored or captured at this site",
				Hint: "delete the stale //alchemist:owns directive or move it onto the transferring line",
			})
		}
	}
}

// parseOwns scans every file's comments for ownership-transfer directives.
func parseOwns(p *Package) []*ownsDirective {
	var out []*ownsDirective
	for _, f := range p.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := ownsRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				out = append(out, &ownsDirective{
					file:   pos.Filename,
					line:   pos.Line,
					reason: strings.TrimSpace(m[1]),
				})
			}
		}
	}
	return out
}

// arenaState maps each tracked variable to its borrow-state bitset.
type arenaState map[types.Object]uint8

func (s arenaState) clone() arenaState {
	out := make(arenaState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// join unions other into s, reporting whether s changed.
func (s arenaState) join(other arenaState) bool {
	changed := false
	for k, v := range other {
		if s[k]|v != s[k] {
			s[k] |= v
			changed = true
		}
	}
	return changed
}

// funcAnalysis is the per-function dataflow run.
type funcAnalysis struct {
	rule *ArenaLife
	pkg  *Package
	fn   *ast.FuncDecl
	owns []*ownsDirective

	cfg    *CFG
	states map[*CFGNode]arenaState // in-state per node

	borrowPos map[types.Object]token.Pos // first borrow site per variable
	reported  map[string]bool            // finding dedupe across the report pass
}

func (fa *funcAnalysis) run(report func(Finding)) {
	// Quick reject: no borrow/release vocabulary anywhere in the body.
	touches := false
	ast.Inspect(fa.fn.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && (isBorrowName(sel.Sel.Name) || isReleaseName(sel.Sel.Name)) {
			touches = true
		}
		return !touches
	})
	if !touches {
		return
	}

	fa.cfg = BuildCFG(fa.fn.Body)
	fa.borrowPos = map[types.Object]token.Pos{}
	fa.reported = map[string]bool{}

	// Fixpoint: forward, join = bitwise union, monotone and finite.
	work := []*CFGNode{fa.cfg.Entry}
	fa.states[fa.cfg.Entry] = arenaState{}
	inWork := map[*CFGNode]bool{fa.cfg.Entry: true}
	for len(work) > 0 {
		n := work[0]
		work, inWork[n] = work[1:], false
		out := fa.transfer(n, fa.states[n].clone(), nil)
		for _, succ := range n.Succs {
			st, ok := fa.states[succ]
			if !ok {
				fa.states[succ] = out.clone()
			} else if !st.join(out) {
				continue
			}
			if !inWork[succ] {
				work = append(work, succ)
				inWork[succ] = true
			}
		}
	}

	// Report pass: deterministic node order, final in-states.
	for _, n := range fa.cfg.Nodes {
		st, reachable := fa.states[n]
		if !reachable {
			continue
		}
		fa.transfer(n, st.clone(), report)
	}
}

// transfer applies node n to state st (mutating and returning it). When
// report is non-nil, findings are emitted; the transfer itself is identical
// either way so the fixpoint and the report pass agree.
func (fa *funcAnalysis) transfer(n *CFGNode, st arenaState, report func(Finding)) arenaState {
	switch n.Kind {
	case KindEntry, KindJoin:
		return st
	case KindExit:
		fa.checkExit(st, report)
		return st
	case KindCond:
		for _, e := range n.Exprs {
			fa.scanExpr(e, st, report, ctxValue)
		}
		// A type-switch cond carries its assign payload (`v := x.(type)`):
		// scan the switched operand as a use. Range key/value bindings are
		// fresh objects; the range operand is already in Exprs.
		if as, ok := n.Stmt.(*ast.AssignStmt); ok {
			for _, rhs := range as.Rhs {
				fa.scanExpr(rhs, st, report, ctxValue)
			}
		} else if es, ok := n.Stmt.(*ast.ExprStmt); ok {
			fa.scanExpr(es.X, st, report, ctxValue)
		}
		return st
	}

	switch s := n.Stmt.(type) {
	case nil:
		return st

	case *ast.AssignStmt:
		fa.assign(s, st, report)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == len(vs.Names) {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					fa.assignPairs(lhs, vs.Values, st, report)
					continue
				}
				for _, v := range vs.Values {
					fa.scanExpr(v, st, report, ctxValue)
				}
			}
		}

	case *ast.ExprStmt:
		call, _ := s.X.(*ast.CallExpr)
		if call != nil && fa.releaseStmt(s, call, st, report, false) {
			return st
		}
		if call != nil && fa.borrowCall(call) != "" {
			fa.flag(report, call.Pos(), "result of %s discarded: the pooled value can never be released", callName(call))
			return st
		}
		fa.scanExpr(s.X, st, report, ctxValue)

	case *ast.DeferStmt:
		fa.deferStmt(s, st, report)

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			fa.scanExpr(res, st, report, ctxReturn)
		}

	case *ast.SendStmt:
		fa.scanExpr(s.Chan, st, report, ctxValue)
		fa.scanExpr(s.Value, st, report, ctxStore)

	case *ast.GoStmt:
		fa.scanExpr(s.Call.Fun, st, report, ctxGo)
		for _, arg := range s.Call.Args {
			fa.scanExpr(arg, st, report, ctxGo)
		}

	default:
		// IncDecStmt, EmptyStmt, etc.: scan embedded expressions as uses.
		ast.Inspect(s, func(node ast.Node) bool {
			if e, ok := node.(ast.Expr); ok {
				fa.scanExpr(e, st, report, ctxValue)
				return false
			}
			return true
		})
	}
	return st
}

// bindEffect is the deferred write half of one lhs ← rhs pair.
type bindEffect struct {
	lhs  ast.Expr
	bits uint8     // state the lhs variable receives when set
	pos  token.Pos // borrow/move origin for reporting
	set  bool
}

// assign handles bindings, rebindings, moves and stores. Go evaluates every
// RHS before any LHS is written, so parallel assignments — including the
// role swap `acc, next = next, acc` the blind-rotate loop uses — are applied
// in two phases: effects are computed against a snapshot and move sources
// unbound before any overwrite check or target bind runs.
func (fa *funcAnalysis) assign(s *ast.AssignStmt, st arenaState, report func(Finding)) {
	if len(s.Lhs) != len(s.Rhs) {
		// Multi-value RHS (x, y := f()): no borrow call returns multiple
		// values; scan the call for nested pooled traffic and treat the LHS
		// as overwrites.
		for _, rhs := range s.Rhs {
			fa.scanExpr(rhs, st, report, ctxValue)
		}
		for _, lhs := range s.Lhs {
			fa.overwriteCheck(lhs, st, report)
		}
		return
	}
	fa.assignPairs(s.Lhs, s.Rhs, st, report)
}

// assignPairs applies parallel lhs ← rhs pairs (also the DeclStmt path).
func (fa *funcAnalysis) assignPairs(lhsList, rhsList []ast.Expr, st arenaState, report func(Finding)) {
	snapshot := st.clone()
	binds := make([]bindEffect, len(rhsList))
	var moveSrcs []types.Object
	for i, rhs := range rhsList {
		lhs := lhsList[i]
		binds[i].lhs = lhs
		if _, ok := unparen(lhs).(*ast.Ident); !ok {
			// Compound target (p.C[0] = v, s.f = v): evaluating the target
			// reads its base, so any tracked value inside is a use.
			fa.scanExpr(lhs, st, report, ctxValue)
		}
		if call, ok := unparen(rhs).(*ast.CallExpr); ok && fa.borrowCall(call) != "" {
			fa.borrowBind(lhs, call, st, report, &binds[i])
			continue
		}
		// A move needs a real landing variable: `_ = p` keeps p's obligation
		// (blank takes no ownership), so it falls through to the plain-use
		// scan where an owns directive may still consume it.
		if id, ok := unparen(rhs).(*ast.Ident); ok && isLocalTarget(fa.pkg, lhs) && !isBlank(lhs) {
			if obj := fa.objOf(id); obj != nil {
				if bits, tracked := snapshot[obj]; tracked {
					// Move: the pooled value changes variables.
					if bits&stReleased != 0 {
						fa.useIdent(id, st, report, ctxValue) // use-after-release still applies
					}
					binds[i] = bindEffect{lhs: lhs, bits: bits, pos: fa.borrowPos[obj], set: true}
					moveSrcs = append(moveSrcs, obj)
					continue
				}
			}
		}
		mode := ctxValue
		if !isLocalTarget(fa.pkg, lhs) {
			mode = ctxStore
		}
		fa.scanExpr(rhs, st, report, mode)
	}
	for _, obj := range moveSrcs {
		delete(st, obj)
	}
	for i := range binds {
		fa.overwriteCheck(binds[i].lhs, st, report)
	}
	for i := range binds {
		if !binds[i].set {
			continue
		}
		id, ok := unparen(binds[i].lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := fa.objOf(id)
		if obj == nil {
			continue
		}
		st[obj] = binds[i].bits
		if _, seen := fa.borrowPos[obj]; !seen && binds[i].pos != token.NoPos {
			fa.borrowPos[obj] = binds[i].pos
		}
	}
}

// borrowBind classifies the landing spot of one fresh borrow call.
func (fa *funcAnalysis) borrowBind(lhs ast.Expr, call *ast.CallExpr, st arenaState, report func(Finding), out *bindEffect) {
	for _, arg := range call.Args {
		fa.scanExpr(arg, st, report, ctxValue)
	}
	if id, ok := unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			fa.flag(report, call.Pos(), "result of %s discarded: the pooled value can never be released", callName(call))
			return
		}
		if isLocalTarget(fa.pkg, lhs) {
			if fa.objOf(id) == nil {
				return
			}
			out.bits, out.pos, out.set = stBorrowed, call.Pos(), true
			return
		}
	}
	// Borrow result stored straight into a field/index/global: an ownership
	// transfer site.
	if !fa.ownsAt(call.Pos()) {
		fa.flag(report, call.Pos(), "result of %s stored into %s: pooled value escapes the borrowing function", callName(call), describeLHS(lhs))
	}
}

// overwriteCheck reports a leak when an assignment clobbers a variable whose
// pooled value is still live on some path.
func (fa *funcAnalysis) overwriteCheck(lhs ast.Expr, st arenaState, report func(Finding)) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := fa.objOf(id)
	if obj == nil {
		return
	}
	if bits, tracked := st[obj]; tracked && bits&stBorrowed != 0 {
		fa.flag(report, id.Pos(), "%s reassigned while its borrowed poly is still live%s: the previous value leaks from the arena", id.Name, fa.borrowedAt(obj))
	}
	if _, tracked := st[obj]; tracked {
		delete(st, obj) // the variable now holds something else
	}
}

// releaseStmt recognizes recv.Release*(x) expression statements on tracked
// variables and applies the release transfer. deferred marks a release that
// fires at function exit instead of in flow order.
func (fa *funcAnalysis) releaseStmt(stmt ast.Stmt, call *ast.CallExpr, st arenaState, report func(Finding), deferred bool) bool {
	sel := fa.methodSel(call)
	if sel == nil || !isReleaseName(sel.Sel.Name) {
		return false
	}
	fa.scanExpr(sel.X, st, report, ctxValue)
	if len(call.Args) == 0 {
		return true
	}
	for _, a := range call.Args[1:] {
		fa.scanExpr(a, st, report, ctxValue)
	}
	arg := unparen(call.Args[0])
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = unparen(u.X) // r.ReleaseAcc(&acc)
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		// Releasing a field/element (acc.Lo, digits[j]): outside the
		// per-variable tracking, but still a use of the base value.
		fa.scanExpr(call.Args[0], st, report, ctxValue)
		return true
	}
	obj := fa.objOf(id)
	if obj == nil {
		return true
	}
	bits, tracked := st[obj]
	if !tracked {
		return true // released value came from a callee; the callee's owns site covers it
	}
	switch {
	case bits&stReleased != 0:
		definitely := ""
		if bits == stReleased {
			definitely = "; it is already released on every path here"
		}
		fa.flag(report, call.Pos(), "double Release of %s%s%s", id.Name, fa.borrowedAt(obj), definitely)
	case bits&stDeferred != 0:
		fa.flag(report, call.Pos(), "Release of %s also scheduled by an earlier defer: it will be released twice", id.Name)
	case bits&stEscaped != 0 && bits&stBorrowed == 0:
		fa.flag(report, call.Pos(), "Release of %s after its ownership was transferred", id.Name)
	}
	if deferred {
		st[obj] = (bits &^ stBorrowed) | stDeferred
	} else {
		st[obj] = stReleased
		if fa.rule.onRelease != nil && bits&stBorrowed != 0 {
			pos := fa.pkg.Fset.Position(stmt.Pos())
			fa.rule.onRelease(ReleaseSite{File: pos.Filename, Pos: stmt.Pos(), End: stmt.End(), Var: id.Name})
		}
	}
	return true
}

// deferStmt interprets deferred releases — `defer r.Release(p)` directly or
// any Release calls inside a deferred closure — and scans other deferred
// calls as ordinary uses.
func (fa *funcAnalysis) deferStmt(s *ast.DeferStmt, st arenaState, report func(Finding)) {
	if fa.releaseStmt(s, s.Call, st, report, true) {
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fa.releaseStmt(s, call, st, report, true)
			return true
		})
		return
	}
	for _, arg := range s.Call.Args {
		fa.scanExpr(arg, st, report, ctxValue)
	}
	fa.scanExpr(s.Call.Fun, st, report, ctxValue)
}

// scan contexts: how a pooled value found at this position leaves (or stays
// inside) the function.
type scanCtx uint8

const (
	ctxValue  scanCtx = iota // ordinary use
	ctxReturn                // a return result
	ctxStore                 // stored into a field/slice/map/channel/global
	ctxGo                    // referenced from a go statement
)

// scanExpr walks e classifying every tracked identifier and every unbound
// borrow call by its context.
func (fa *funcAnalysis) scanExpr(e ast.Expr, st arenaState, report func(Finding), mode scanCtx) {
	switch e := e.(type) {
	case nil:
		return

	case *ast.Ident:
		fa.useIdent(e, st, report, mode)

	case *ast.ParenExpr:
		fa.scanExpr(e.X, st, report, mode)

	case *ast.CallExpr:
		if name := fa.borrowCall(e); name != "" {
			// A borrow whose result is consumed in place: ownership moves
			// into whatever consumes it.
			if !fa.ownsAt(e.Pos()) {
				switch mode {
				case ctxReturn:
					fa.flag(report, e.Pos(), "pooled value from %s returned to the caller without an ownership annotation", name)
				case ctxGo:
					fa.flag(report, e.Pos(), "pooled value from %s handed to a goroutine", name)
				default:
					fa.flag(report, e.Pos(), "result of %s passed out of the borrowing function without an ownership annotation", name)
				}
			}
			for _, arg := range e.Args {
				fa.scanExpr(arg, st, report, ctxValue)
			}
			return
		}
		if fa.appendCall(e) {
			// append(s, x): the appended values land in a slice.
			if len(e.Args) > 0 {
				fa.scanExpr(e.Args[0], st, report, ctxValue)
				for _, arg := range e.Args[1:] {
					fa.scanExpr(arg, st, report, storeOr(mode))
				}
			}
			return
		}
		fa.scanExpr(e.Fun, st, report, ctxValue)
		argMode := ctxValue
		if mode == ctxGo {
			argMode = ctxGo
		}
		for _, arg := range e.Args {
			fa.scanExpr(arg, st, report, argMode)
		}

	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				fa.scanExpr(kv.Value, st, report, storeOr(mode))
				continue
			}
			fa.scanExpr(elt, st, report, storeOr(mode))
		}

	case *ast.UnaryExpr:
		fa.scanExpr(e.X, st, report, mode)

	case *ast.StarExpr:
		fa.scanExpr(e.X, st, report, ctxValue)

	case *ast.BinaryExpr:
		fa.scanExpr(e.X, st, report, ctxValue)
		fa.scanExpr(e.Y, st, report, ctxValue)

	case *ast.SelectorExpr:
		// x.f: a use of x, never an escape of x itself.
		fa.scanExpr(e.X, st, report, ctxValue)

	case *ast.IndexExpr:
		fa.scanExpr(e.X, st, report, ctxValue)
		fa.scanExpr(e.Index, st, report, ctxValue)

	case *ast.SliceExpr:
		fa.scanExpr(e.X, st, report, ctxValue)
		fa.scanExpr(e.Low, st, report, ctxValue)
		fa.scanExpr(e.High, st, report, ctxValue)
		fa.scanExpr(e.Max, st, report, ctxValue)

	case *ast.TypeAssertExpr:
		fa.scanExpr(e.X, st, report, mode)

	case *ast.FuncLit:
		// A closure referencing a pooled value: inside a go statement the
		// value escapes to the goroutine; otherwise the reference is a use
		// at creation time (worker-pool callbacks run within the borrow
		// window — the runtime poison tests keep that honest).
		inner := ctxValue
		if mode == ctxGo {
			inner = ctxGo
		}
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				fa.useIdent(id, st, report, inner)
			}
			return true
		})
	}
}

// storeOr keeps the stronger go-escape context when already inside one.
func storeOr(mode scanCtx) scanCtx {
	if mode == ctxGo {
		return ctxGo
	}
	return ctxStore
}

// useIdent applies a single tracked-identifier occurrence.
func (fa *funcAnalysis) useIdent(id *ast.Ident, st arenaState, report func(Finding), mode scanCtx) {
	obj := fa.objOf(id)
	if obj == nil {
		return
	}
	bits, tracked := st[obj]
	if !tracked {
		return
	}
	if bits&stReleased != 0 {
		qualifier := " on some path"
		if bits == stReleased {
			qualifier = ""
		}
		fa.flag(report, id.Pos(), "use of %s after Release%s%s: the arena may have re-issued its buffer", id.Name, qualifier, fa.borrowedAt(obj))
	}
	// An owns directive on (or above) the line consumes ownership of every
	// tracked value it mentions, whatever the syntactic context — the common
	// shape is `return ctx.wrapCt(bp, outA, ...)` where the escaping value is
	// a call argument rather than the returned expression itself.
	if fa.ownsAt(id.Pos()) {
		st[obj] = stEscaped
		return
	}
	if mode == ctxValue {
		return
	}
	switch mode {
	case ctxReturn:
		fa.flag(report, id.Pos(), "%s%s is returned to the caller without an ownership annotation", id.Name, fa.borrowedAt(obj))
	case ctxGo:
		fa.flag(report, id.Pos(), "%s%s is captured by a goroutine: its release can race the arena", id.Name, fa.borrowedAt(obj))
	case ctxStore:
		fa.flag(report, id.Pos(), "%s%s is stored outside the borrowing function", id.Name, fa.borrowedAt(obj))
	}
	st[obj] = stEscaped
}

// checkExit reports borrows still owed when control reaches the function
// exit (returns, panics and the fall-off end all join here; deferred
// releases have already converted stBorrowed to stDeferred).
func (fa *funcAnalysis) checkExit(st arenaState, report func(Finding)) {
	for obj, bits := range st {
		if bits&stBorrowed == 0 {
			continue
		}
		if bits == stBorrowed {
			fa.flag(report, fa.borrowPos[obj], "%s is never released: the pooled poly leaks from the arena on every path", obj.Name())
		} else {
			fa.flag(report, fa.borrowPos[obj], "%s is released on some paths but leaks on others (early return, panic or error branch)", obj.Name())
		}
	}
}

// --- helpers -------------------------------------------------------------

// objOf resolves an identifier to its object (definition or use).
func (fa *funcAnalysis) objOf(id *ast.Ident) types.Object {
	if obj := fa.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return fa.pkg.Info.Uses[id]
}

// methodSel returns the selector of a method-style call (x.M(...)) when x is
// a value, not a package qualifier.
func (fa *funcAnalysis) methodSel(call *ast.CallExpr) *ast.SelectorExpr {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		if _, isPkg := fa.pkg.Info.Uses[id].(*types.PkgName); isPkg {
			return nil
		}
	}
	return sel
}

// borrowCall returns the method name when call is an arena borrow, "" when
// not.
func (fa *funcAnalysis) borrowCall(call *ast.CallExpr) string {
	sel := fa.methodSel(call)
	if sel == nil || !isBorrowName(sel.Sel.Name) {
		return ""
	}
	return sel.Sel.Name
}

// appendCall reports whether call is the builtin append.
func (fa *funcAnalysis) appendCall(call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := fa.pkg.Info.Uses[id].(*types.Builtin)
	return builtin
}

// ownsAt reports whether the line at pos (or the line above) carries an
// ownership-transfer directive, marking it used.
func (fa *funcAnalysis) ownsAt(pos token.Pos) bool {
	where := fa.pkg.Fset.Position(pos)
	ok := false
	for _, d := range fa.owns {
		if d.file != where.Filename {
			continue
		}
		if d.line == where.Line || d.line == where.Line-1 {
			d.used = true
			ok = true
		}
	}
	return ok
}

// borrowedAt renders "(borrowed at line N)" for findings.
func (fa *funcAnalysis) borrowedAt(obj types.Object) string {
	pos, ok := fa.borrowPos[obj]
	if !ok {
		return ""
	}
	return fmt.Sprintf(" (borrowed at line %d)", fa.pkg.Fset.Position(pos).Line)
}

// flag reports one finding, deduplicating across the report pass and
// honoring allow directives.
func (fa *funcAnalysis) flag(report func(Finding), pos token.Pos, format string, args ...any) {
	if report == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if fa.reported[key] {
		return
	}
	fa.reported[key] = true
	if fa.pkg.Allowed(fa.rule.Name(), pos) {
		return
	}
	where := pos
	if where == token.NoPos {
		where = fa.fn.Pos()
	}
	report(Finding{
		Pos:  fa.pkg.Fset.Position(where),
		Rule: fa.rule.Name(),
		Msg:  "func " + fa.fn.Name.Name + ": " + msg,
		Hint: "release on every path (defer works), or annotate the transfer //alchemist:owns <reason>; see DESIGN.md §5f",
	})
}

// describeLHS renders an escape target for messages.
func describeLHS(lhs ast.Expr) string {
	switch lhs.(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "a slice or map element"
	case *ast.StarExpr:
		return "a pointed-to location"
	}
	return "a non-local location"
}

// isLocalTarget reports whether lhs is a plain function-local variable (the
// only assignment target that keeps a pooled value inside the function).
func isLocalTarget(p *Package, lhs ast.Expr) bool {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := p.Info.Defs[id]
	if obj == nil {
		obj = p.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return !v.IsField() && v.Parent() != nil && v.Parent() != p.Types.Scope()
}

// isBorrowName reports whether an arena method name mints a pooled value.
func isBorrowName(name string) bool {
	return strings.HasPrefix(name, "Borrow") || strings.HasPrefix(name, "borrow") || name == "Scratch"
}

// isReleaseName reports whether an arena method name consumes a pooled
// value.
func isReleaseName(name string) bool {
	return strings.HasPrefix(name, "Release") || strings.HasPrefix(name, "release")
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func callName(call *ast.CallExpr) string {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "borrow"
}

package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestArenaLifeMutation is the analyzer's self-test, mirroring streamcheck's
// mutation harness: for every Release site the arena-lifetime rule
// statically proved necessary in the real kernel packages, delete exactly
// that release (rewriting the statement to a plain use so the package still
// type-checks) and assert the rule reports the injected leak. A surviving
// mutant (zero findings) means the dataflow pass has a blind spot on real
// code, not just on fixtures.
func TestArenaLifeMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("re-type-checks kernel packages once per release site; skipped in -short mode")
	}
	root := repoRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	kernels := []string{
		"alchemist/internal/ring",
		"alchemist/internal/ckks",
		"alchemist/internal/bgv",
		"alchemist/internal/tfhe",
		"alchemist/internal/bridge",
	}
	total, escaped := 0, 0
	for _, path := range kernels {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		// Collect the verified release sites. The hook fires on every
		// fixpoint visit, so dedupe by span.
		rule := NewArenaLife("alchemist")
		sites := map[ReleaseSite]bool{}
		rule.onRelease = func(s ReleaseSite) { sites[s] = true }
		rule.Check(pkg, func(Finding) {})

		if len(sites) == 0 {
			continue
		}
		dir := filepath.Join(root, strings.TrimPrefix(path, "alchemist/"))
		for site := range sites {
			total++
			src, err := os.ReadFile(site.File)
			if err != nil {
				t.Fatal(err)
			}
			start := loader.Fset.Position(site.Pos).Offset
			end := loader.Fset.Position(site.End).Offset
			mutated := fmt.Sprintf("%s_ = %s%s", src[:start], site.Var, src[end:])
			overlay := map[string][]byte{filepath.Base(site.File): []byte(mutated)}

			mpkg, err := loader.LoadDirOverlay(dir, path, overlay)
			if err != nil {
				t.Fatalf("%s: mutant at %s does not type-check: %v",
					path, loader.Fset.Position(site.Pos), err)
			}
			var findings []Finding
			NewArenaLife("alchemist").Check(mpkg, func(f Finding) { findings = append(findings, f) })
			if len(findings) == 0 {
				escaped++
				t.Errorf("mutant escaped: deleting release of %s at %s produced no finding",
					site.Var, loader.Fset.Position(site.Pos))
			}
		}
	}
	if total == 0 {
		t.Fatal("no verified release sites found in kernel packages — the onRelease hook is broken")
	}
	t.Logf("arena-lifetime mutation self-test: %d/%d mutants caught", total-escaped, total)
}

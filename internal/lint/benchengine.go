package lint

import (
	"go/ast"
	"go/types"
)

// BenchEngine implements the bench-engine rule: inside internal/bench,
// report generators must evaluate simulations through the batch engine
// (the Ctx.sim / Ctx.baseline helpers backed by internal/engine), never by
// calling sim.Simulate or baseline.Simulate directly. A direct call
// bypasses the shared worker pool and the memo cache, silently breaking
// the one-parallel-pass regeneration and the warm-cache guarantees that
// `alchemist sweep` and the Reports() benchmarks assert.
type BenchEngine struct {
	// Scope lists import-path substrings the rule applies to.
	Scope []string
	// Simulators lists the packages whose Simulate entry points are
	// reserved for the engine.
	Simulators []string
}

// NewBenchEngine returns the rule scoped to internal/bench.
func NewBenchEngine(module string) *BenchEngine {
	return &BenchEngine{
		Scope: []string{module + "/internal/bench"},
		Simulators: []string{
			module + "/internal/sim",
			module + "/internal/baseline",
		},
	}
}

func (*BenchEngine) Name() string { return "bench-engine" }

func (*BenchEngine) Doc() string {
	return "internal/bench must evaluate through the batch engine (Ctx.sim/Ctx.baseline), not call sim.Simulate or baseline.Simulate directly"
}

func (r *BenchEngine) Check(p *Package, report func(Finding)) {
	if !matchAny(p.PkgPath, r.Scope) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Name() != "Simulate" || fn.Pkg() == nil {
				return true
			}
			if !matchAny(fn.Pkg().Path(), r.Simulators) {
				return true
			}
			if p.Allowed(r.Name(), call.Pos()) {
				return true
			}
			report(Finding{
				Pos:  p.Fset.Position(call.Pos()),
				Rule: r.Name(),
				Msg:  "direct " + fn.Pkg().Name() + ".Simulate call in " + p.PkgPath + " bypasses the batch engine",
				Hint: "submit through a bench.Ctx (c.sim / c.baseline) so the evaluation shares the pool and memo cache, or annotate //alchemist:allow bench-engine <reason>",
			})
			return true
		})
	}
}

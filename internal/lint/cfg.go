package lint

import (
	"go/ast"
	"go/token"
)

// Control-flow graph construction over go/ast, the substrate of the
// arena-lifetime dataflow pass (arenalife.go). The repo is dependency-free by
// policy, so this is a purpose-built CFG rather than x/tools/go/cfg: one node
// per simple statement or branch condition, explicit edges for every
// structured-control construct Go has, and a single synthetic exit that both
// returns and explicit panics flow into (deferred calls run on either, which
// is exactly the property the dataflow pass models).
//
// The builder covers the statement forms that appear in library code:
// if/else chains, for and range loops (including labeled break/continue),
// switch and type switch (with fallthrough), select, goto, return, and
// explicit panic calls. Statements after a terminating statement are kept as
// nodes but are unreachable from the entry; the dataflow pass simply never
// visits them.

// NodeKind classifies a CFG node for rendering and for the dataflow pass's
// exit handling.
type NodeKind uint8

const (
	// KindEntry is the synthetic function entry.
	KindEntry NodeKind = iota
	// KindExit is the synthetic function exit: returns, explicit panics and
	// the fall-off end of the body all flow here.
	KindExit
	// KindStmt is a simple statement (assignment, expression, defer, send,
	// declaration, inc/dec, go).
	KindStmt
	// KindCond is a branch evaluation: an if/for condition, a switch tag, a
	// range operand or a case-clause expression list.
	KindCond
	// KindJoin is a synthetic merge point (after if/for/switch, break
	// targets, labels). It carries no payload.
	KindJoin
	// KindReturn is a return statement; its only successor is the exit.
	KindReturn
	// KindPanic is an explicit panic(...) statement; its only successor is
	// the exit (deferred calls still run).
	KindPanic
)

// CFGNode is one node of a function's control-flow graph. At most one of
// Stmt/Exprs is populated, matching Kind.
type CFGNode struct {
	Index int
	Kind  NodeKind
	Stmt  ast.Stmt   // KindStmt / KindReturn / KindPanic payload
	Exprs []ast.Expr // KindCond payload: condition, tag, or case expressions
	Succs []*CFGNode
	Preds []*CFGNode
}

// Pos returns a representative position for diagnostics (NoPos for synthetic
// nodes).
func (n *CFGNode) Pos() token.Pos {
	switch {
	case n.Stmt != nil:
		return n.Stmt.Pos()
	case len(n.Exprs) > 0:
		return n.Exprs[0].Pos()
	}
	return token.NoPos
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *CFGNode
	Exit  *CFGNode
	Nodes []*CFGNode // in creation order; Index fields match slice positions
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.node(KindEntry)
	b.cfg.Exit = b.node(KindExit)
	frontier := b.stmts([]*CFGNode{b.cfg.Entry}, body.List, nil)
	b.connect(frontier, b.cfg.Exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.node, target)
		}
		// An unresolved goto label is a parse/type error upstream; the node
		// simply terminates its path here.
	}
	for _, n := range b.cfg.Nodes {
		for _, s := range n.Succs {
			s.Preds = append(s.Preds, n)
		}
	}
	return b.cfg
}

// jumpCtx is one enclosing breakable/continuable construct, innermost first.
type jumpCtx struct {
	parent *jumpCtx
	label  string   // label attached to the construct ("" if none)
	isLoop bool     // continue is legal (for/range)
	brk    *CFGNode // break target (the construct's join node)
	cont   *CFGNode // continue target (loop post/head); nil for switch/select
}

type pendingGoto struct {
	node  *CFGNode
	label string
}

type cfgBuilder struct {
	cfg    *CFG
	labels map[string]*CFGNode
	gotos  []pendingGoto
}

func (b *cfgBuilder) node(kind NodeKind) *CFGNode {
	n := &CFGNode{Index: len(b.cfg.Nodes), Kind: kind}
	b.cfg.Nodes = append(b.cfg.Nodes, n)
	return n
}

func (b *cfgBuilder) edge(from, to *CFGNode) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) connect(frontier []*CFGNode, to *CFGNode) {
	for _, n := range frontier {
		b.edge(n, to)
	}
}

// stmts threads the statement list through the graph: frontier in, frontier
// out. label names the enclosing LabeledStmt when the first statement is a
// labeled loop/switch (so its break/continue resolve the label).
func (b *cfgBuilder) stmts(frontier []*CFGNode, list []ast.Stmt, jumps *jumpCtx) []*CFGNode {
	for _, s := range list {
		frontier = b.stmt(frontier, s, "", jumps)
	}
	return frontier
}

func (b *cfgBuilder) stmt(frontier []*CFGNode, s ast.Stmt, label string, jumps *jumpCtx) []*CFGNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(frontier, s.List, jumps)

	case *ast.LabeledStmt:
		// The label node is the goto target and the head the labeled
		// construct hangs off.
		head := b.node(KindJoin)
		b.connect(frontier, head)
		if b.labels == nil {
			b.labels = map[string]*CFGNode{}
		}
		b.labels[s.Label.Name] = head
		return b.stmt([]*CFGNode{head}, s.Stmt, s.Label.Name, jumps)

	case *ast.IfStmt:
		if s.Init != nil {
			frontier = b.stmt(frontier, s.Init, "", jumps)
		}
		cond := b.node(KindCond)
		cond.Exprs = []ast.Expr{s.Cond}
		b.connect(frontier, cond)
		thenOut := b.stmts([]*CFGNode{cond}, s.Body.List, jumps)
		if s.Else != nil {
			elseOut := b.stmt([]*CFGNode{cond}, s.Else, "", jumps)
			return append(thenOut, elseOut...)
		}
		return append(thenOut, cond)

	case *ast.ForStmt:
		if s.Init != nil {
			frontier = b.stmt(frontier, s.Init, "", jumps)
		}
		head := b.node(KindCond) // loop head; carries the condition if any
		if s.Cond != nil {
			head.Exprs = []ast.Expr{s.Cond}
		}
		b.connect(frontier, head)
		join := b.node(KindJoin)
		// continue runs the post statement first (or re-tests the head).
		cont := head
		var post *CFGNode
		if s.Post != nil {
			post = b.node(KindStmt)
			post.Stmt = s.Post
			b.edge(post, head)
			cont = post
		}
		ctx := &jumpCtx{parent: jumps, label: label, isLoop: true, brk: join, cont: cont}
		bodyOut := b.stmts([]*CFGNode{head}, s.Body.List, ctx)
		b.connect(bodyOut, cont)
		if s.Cond != nil {
			b.edge(head, join)
		}
		return []*CFGNode{join}

	case *ast.RangeStmt:
		head := b.node(KindCond)
		head.Exprs = []ast.Expr{s.X}
		head.Stmt = s // key/value bindings live on the range statement
		b.connect(frontier, head)
		join := b.node(KindJoin)
		b.edge(head, join) // zero-iteration path
		ctx := &jumpCtx{parent: jumps, label: label, isLoop: true, brk: join, cont: head}
		bodyOut := b.stmts([]*CFGNode{head}, s.Body.List, ctx)
		b.connect(bodyOut, head)
		return []*CFGNode{join}

	case *ast.SwitchStmt:
		if s.Init != nil {
			frontier = b.stmt(frontier, s.Init, "", jumps)
		}
		tag := b.node(KindCond)
		if s.Tag != nil {
			tag.Exprs = []ast.Expr{s.Tag}
		}
		b.connect(frontier, tag)
		return b.caseClauses(tag, s.Body.List, label, jumps)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			frontier = b.stmt(frontier, s.Init, "", jumps)
		}
		tag := b.node(KindCond)
		tag.Stmt = s.Assign
		b.connect(frontier, tag)
		return b.caseClauses(tag, s.Body.List, label, jumps)

	case *ast.SelectStmt:
		head := b.node(KindJoin)
		b.connect(frontier, head)
		join := b.node(KindJoin)
		ctx := &jumpCtx{parent: jumps, label: label, brk: join}
		for _, clause := range s.Body.List {
			c := clause.(*ast.CommClause)
			entry := b.node(KindStmt)
			if c.Comm != nil {
				entry.Stmt = c.Comm
			}
			b.edge(head, entry)
			out := b.stmts([]*CFGNode{entry}, c.Body, ctx)
			b.connect(out, join)
		}
		// select{} blocks forever: with no clauses the join has no
		// predecessors and stays unreachable, which is exactly right.
		return []*CFGNode{join}

	case *ast.ReturnStmt:
		n := b.node(KindReturn)
		n.Stmt = s
		b.connect(frontier, n)
		b.edge(n, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			n := b.node(KindJoin)
			b.connect(frontier, n)
			for c := jumps; c != nil; c = c.parent {
				if s.Label == nil || c.label == s.Label.Name {
					b.edge(n, c.brk)
					break
				}
			}
			return nil
		case token.CONTINUE:
			n := b.node(KindJoin)
			b.connect(frontier, n)
			for c := jumps; c != nil; c = c.parent {
				if c.isLoop && (s.Label == nil || c.label == s.Label.Name) {
					b.edge(n, c.cont)
					break
				}
			}
			return nil
		case token.GOTO:
			n := b.node(KindJoin)
			b.connect(frontier, n)
			b.gotos = append(b.gotos, pendingGoto{node: n, label: s.Label.Name})
			return nil
		case token.FALLTHROUGH:
			// Handled structurally in caseClauses; as a statement it simply
			// falls through to whatever the clause builder wired next.
			return frontier
		}
		return frontier

	case *ast.ExprStmt:
		kind := KindStmt
		if isPanicCall(s.X) {
			kind = KindPanic
		}
		n := b.node(kind)
		n.Stmt = s
		b.connect(frontier, n)
		if kind == KindPanic {
			b.edge(n, b.cfg.Exit)
			return nil
		}
		return []*CFGNode{n}

	default:
		// Simple statements: assignments, declarations, defer, go, send,
		// inc/dec, empty.
		n := b.node(KindStmt)
		n.Stmt = s
		b.connect(frontier, n)
		return []*CFGNode{n}
	}
}

// caseClauses wires a switch/type-switch body: tag to every clause's
// expression node, implicit break to the join, fallthrough to the next
// clause's body.
func (b *cfgBuilder) caseClauses(tag *CFGNode, clauses []ast.Stmt, label string, jumps *jumpCtx) []*CFGNode {
	join := b.node(KindJoin)
	ctx := &jumpCtx{parent: jumps, label: label, brk: join}
	// Pre-create each clause's entry node so fallthrough can target the next
	// clause before it is built.
	entries := make([]*CFGNode, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		c := clause.(*ast.CaseClause)
		entry := b.node(KindCond)
		entry.Exprs = c.List
		if c.List == nil {
			hasDefault = true
		}
		entries[i] = entry
		b.edge(tag, entry)
	}
	for i, clause := range clauses {
		c := clause.(*ast.CaseClause)
		body := c.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		out := b.stmts([]*CFGNode{entries[i]}, body, ctx)
		if fallsThrough && i+1 < len(entries) {
			b.connect(out, entries[i+1])
		} else {
			b.connect(out, join)
		}
	}
	if !hasDefault {
		b.edge(tag, join)
	}
	return []*CFGNode{join}
}

// isPanicCall reports whether x is a direct call of the builtin panic.
func isPanicCall(x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

package lint

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"
)

// buildFromSrc parses a function body and builds its CFG.
func buildFromSrc(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc mark(string) bool { return true }\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	return BuildCFG(fn.Body), fset
}

// nodeWith returns the unique node whose rendered payload contains the
// marker substring.
func nodeWith(t *testing.T, cfg *CFG, fset *token.FileSet, marker string) *CFGNode {
	t.Helper()
	var found *CFGNode
	for _, n := range cfg.Nodes {
		var buf bytes.Buffer
		// A cond node's payload is its expression list; the auxiliary Stmt
		// (e.g. the whole RangeStmt) would swallow body markers.
		if n.Stmt != nil && n.Kind != KindCond {
			printer.Fprint(&buf, fset, n.Stmt)
		}
		for _, e := range n.Exprs {
			printer.Fprint(&buf, fset, e)
			buf.WriteByte(' ')
		}
		if strings.Contains(buf.String(), marker) {
			if found != nil {
				t.Fatalf("marker %q matches more than one node", marker)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("marker %q matches no node", marker)
	}
	return found
}

// reaches reports whether to is reachable from from along successor edges.
func reaches(from, to *CFGNode) bool {
	seen := map[*CFGNode]bool{}
	stack := []*CFGNode{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.Succs...)
	}
	return false
}

func TestCFGConstruction(t *testing.T) {
	cases := []struct {
		name string
		body string
		// yes: from-marker must reach to-marker; no: must not.
		yes, no [][2]string
		// unreachable: markers that must not be reachable from entry.
		unreachable []string
		// noExit: the function provably never returns (infinite loop).
		noExit bool
	}{
		{
			name: "if-else joins at exit",
			body: `if mark("cond") { mark("then") } else { mark("else") }; mark("after")`,
			yes:  [][2]string{{"then", "after"}, {"else", "after"}, {"cond", "else"}},
			no:   [][2]string{{"then", "else"}, {"else", "then"}, {"after", "cond"}},
		},
		{
			name: "if without else falls through",
			body: `if mark("cond") { mark("then") }; mark("after")`,
			yes:  [][2]string{{"cond", "after"}, {"then", "after"}},
			no:   [][2]string{{"after", "then"}},
		},
		{
			name: "for loop has back edge and exit",
			body: `for i := 0; mark("cond"); i++ { mark("body") }; mark("after")`,
			yes:  [][2]string{{"body", "cond"}, {"body", "body"}, {"cond", "after"}},
			no:   [][2]string{{"after", "body"}},
		},
		{
			name: "infinite loop strands the tail",
			body: `for { mark("body") }; mark("after")`,
			yes:  [][2]string{{"body", "body"}},
			// The loop join has no predecessors, so nothing after runs —
			// including the function exit.
			unreachable: []string{"after"},
			noExit:      true,
		},
		{
			name: "break leaves the loop",
			body: `for { if mark("cond") { break }; mark("body") }; mark("after")`,
			yes:  [][2]string{{"cond", "after"}, {"body", "cond"}},
		},
		{
			name: "range loop can run zero times",
			body: `xs := []int{1}; for range xs { mark("body") }; mark("after")`,
			yes:  [][2]string{{"body", "body"}, {"[]int", "after"}},
		},
		{
			name: "switch cases are exclusive",
			body: `switch mark("tag") { case true: mark("one"); case false: mark("two") }; mark("after")`,
			yes:  [][2]string{{"one", "after"}, {"two", "after"}, {"tag", "after"}},
			no:   [][2]string{{"one", "two"}, {"two", "one"}},
		},
		{
			name: "fallthrough chains to the next case",
			body: `switch { case true: mark("one"); fallthrough; case false: mark("two") }; mark("after")`,
			yes:  [][2]string{{"one", "two"}, {"two", "after"}},
			no:   [][2]string{{"two", "one"}},
		},
		{
			name: "labeled break exits the outer loop",
			body: `
outer:
	for mark("ocond") {
		for mark("icond") {
			if mark("brk") {
				break outer
			}
		}
	}
	mark("after")`,
			yes: [][2]string{{"brk", "after"}, {"icond", "ocond"}},
		},
		{
			name: "labeled continue re-tests the outer loop",
			body: `
outer:
	for mark("ocond") {
		for mark("icond") {
			continue outer
		}
		mark("tail")
	}`,
			yes: [][2]string{{"icond", "ocond"}},
			// continue outer skips the inner loop's natural exit into tail...
			// but the inner cond's false branch still reaches it.
		},
		{
			name: "return goes straight to exit",
			body: `if mark("cond") { return }; mark("after")`,
			yes:  [][2]string{{"cond", "after"}},
			no:   [][2]string{{"after", "cond"}},
		},
		{
			name:        "panic terminates the path",
			body:        `if mark("cond") { panic("boom"); mark("dead") }; mark("after")`,
			unreachable: []string{"dead"},
			yes:         [][2]string{{"cond", "after"}},
		},
		{
			name: "defer stays on the straight-line path",
			body: `defer mark("deferred"); if mark("cond") { return }; mark("after")`,
			yes:  [][2]string{{"deferred", "cond"}, {"deferred", "after"}},
			no:   [][2]string{{"cond", "deferred"}},
		},
		{
			name: "goto jumps forward",
			body: `if mark("cond") { goto done }; mark("skipped")
done:
	mark("after")`,
			yes: [][2]string{{"cond", "after"}, {"skipped", "after"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, fset := buildFromSrc(t, tc.body)
			if got := reaches(cfg.Entry, cfg.Exit); got == tc.noExit {
				t.Fatalf("exit reachable from entry = %v, want %v", got, !tc.noExit)
			}
			for _, pair := range tc.yes {
				from, to := nodeWith(t, cfg, fset, pair[0]), nodeWith(t, cfg, fset, pair[1])
				if !reaches(from, to) {
					t.Errorf("%q should reach %q", pair[0], pair[1])
				}
			}
			for _, pair := range tc.no {
				from, to := nodeWith(t, cfg, fset, pair[0]), nodeWith(t, cfg, fset, pair[1])
				if reaches(from, to) {
					t.Errorf("%q should not reach %q", pair[0], pair[1])
				}
			}
			for _, marker := range tc.unreachable {
				n := nodeWith(t, cfg, fset, marker)
				if reaches(cfg.Entry, n) {
					t.Errorf("%q should be unreachable from entry", marker)
				}
			}
			// Every reachable non-exit node must have a successor: a stranded
			// frontier would make the dataflow silently skip code.
			for _, n := range cfg.Nodes {
				if n != cfg.Exit && reaches(cfg.Entry, n) && len(n.Succs) == 0 {
					t.Errorf("reachable node %d (kind %d) has no successors", n.Index, n.Kind)
				}
			}
		})
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// ErrsWrap implements the errs-wrap rule: a package that participates in
// the shared sentinel taxonomy (it imports alchemist/internal/errs) must
// keep every error it constructs classifiable with errors.Is. Building an
// error with errors.New, or with fmt.Errorf whose format carries no %w
// verb, severs the chain — callers matching ErrBadConfig, ErrIllegalStream
// and friends silently stop seeing the failure class. The sentinel package
// itself is exempt (it is where errors.New belongs).
type ErrsWrap struct {
	// ErrsPath is the sentinel package whose importers are in scope.
	ErrsPath string
	// Scope lists extra import-path substrings forced into scope (tests).
	Scope []string
}

// NewErrsWrap returns the rule bound to the module's errs package.
func NewErrsWrap(module string) *ErrsWrap {
	return &ErrsWrap{ErrsPath: module + "/internal/errs"}
}

func (*ErrsWrap) Name() string { return "errs-wrap" }

func (*ErrsWrap) Doc() string {
	return "packages importing internal/errs must build errors that wrap a sentinel (%w), not bare errors.New / fmt.Errorf"
}

func (r *ErrsWrap) Check(p *Package, report func(Finding)) {
	if p.PkgPath == r.ErrsPath {
		return
	}
	if !p.Imports(r.ErrsPath) && !matchAny(p.PkgPath, r.Scope) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "errors" && fn.Name() == "New":
				if p.Allowed(r.Name(), call.Pos()) {
					return true
				}
				report(Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: r.Name(),
					Msg:  "errors.New builds an unclassifiable error in a package that uses the errs sentinels",
					Hint: "wrap a sentinel — fmt.Errorf(\"context: %w\", errs.ErrBadConfig) — or annotate //alchemist:allow errs-wrap <reason>",
				})
			case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
				format, ok := literalFormat(call)
				if !ok || countWrapVerbs(format) > 0 {
					return true
				}
				if p.Allowed(r.Name(), call.Pos()) {
					return true
				}
				report(Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: r.Name(),
					Msg:  "fmt.Errorf without %w severs the error chain in a package that uses the errs sentinels",
					Hint: "add a %w verb wrapping a sentinel or the inner error, or annotate //alchemist:allow errs-wrap <reason>",
				})
			}
			return true
		})
	}
}

// literalFormat extracts the first argument when it is a string literal;
// dynamically built formats are outside the rule's reach.
func literalFormat(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// countWrapVerbs counts %w verbs in a format string, treating %% as a
// literal percent.
func countWrapVerbs(format string) int {
	n := 0
	for i := 0; i < len(format)-1; i++ {
		if format[i] != '%' {
			continue
		}
		if format[i+1] == '%' {
			i++
			continue
		}
		if format[i+1] == 'w' {
			n++
		}
	}
	return n
}

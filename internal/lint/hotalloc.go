package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// HotAlloc implements the hot-alloc rule: a function annotated with the
//
//	//alchemist:hot
//
// directive declares itself a steady-state-allocation-free kernel — the
// claim the arena layer (ring.BufPool, Ring.Borrow/Release) exists to make
// true and the AllocsPerRun tests pin. Inside such a function, a
// make([]uint64, ...) or make([][]uint64, ...) is the telltale regression:
// degree-sized scratch (or a per-channel header table over it, the shape the
// digit-batched conversion kernels traffic in) being
// allocated per call instead of borrowed from the pool. Return-value
// allocation belongs in an unannotated wrapper (see tfhe.FromNTT over
// FromNTTInto); rare legitimate sites (cold fallbacks, first-use cache
// construction) carry a reasoned //alchemist:allow hot-alloc directive.
type HotAlloc struct{}

// NewHotAlloc returns the rule. The annotation is opt-in per function, so no
// package scope is needed; the module argument matches the other
// constructors' shape.
func NewHotAlloc(module string) *HotAlloc {
	_ = module
	return &HotAlloc{}
}

func (*HotAlloc) Name() string { return "hot-alloc" }

func (*HotAlloc) Doc() string {
	return "no make([]uint64, ...) or make([][]uint64, ...) inside //alchemist:hot functions; borrow scratch from the ring arenas"
}

var hotDirectiveRE = regexp.MustCompile(`^//\s*alchemist:hot\s*$`)

func (h *HotAlloc) Check(p *Package, report func(Finding)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotAnnotated(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isMakeUint64Slice(p, call) {
					return true
				}
				if p.Allowed(h.Name(), call.Pos()) {
					return true
				}
				report(Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: h.Name(),
					Msg:  "make(" + types.TypeString(p.Info.TypeOf(call), nil) + ", ...) inside //alchemist:hot function " + fd.Name.Name,
					Hint: "borrow scratch (ring.BufPool.Get, Ring.Borrow/Scratch) and release it, move the allocation to an unannotated wrapper, or annotate //alchemist:allow hot-alloc <reason>",
				})
				return true
			})
		}
	}
}

// isHotAnnotated reports whether the function's doc comment carries the
// //alchemist:hot directive.
func isHotAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if hotDirectiveRE.MatchString(c.Text) {
			return true
		}
	}
	return false
}

// isMakeUint64Slice reports whether call is the builtin make producing a
// []uint64 or [][]uint64 (the arenas' scratch currency and the per-channel
// header tables over it).
func isMakeUint64Slice(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, builtin := p.Info.Uses[id].(*types.Builtin); !builtin {
		return false // shadowed make
	}
	sl, ok := p.Info.TypeOf(call).(*types.Slice)
	if !ok {
		return false
	}
	elem := sl.Elem().Underlying()
	if inner, ok := elem.(*types.Slice); ok {
		elem = inner.Elem().Underlying()
	}
	b, ok := elem.(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// HotAlloc implements the hot-alloc rule: a function annotated with the
//
//	//alchemist:hot
//
// directive declares itself a steady-state-allocation-free kernel — the
// claim the arena layer (ring.BufPool, Ring.Borrow/Release) exists to make
// true and the AllocsPerRun tests pin. Inside such a function, a
// make([]uint64, ...) or make([][]uint64, ...) is the telltale regression:
// degree-sized scratch (or a per-channel header table over it, the shape the
// digit-batched conversion kernels traffic in) being
// allocated per call instead of borrowed from the pool. Return-value
// allocation belongs in an unannotated wrapper (see tfhe.FromNTT over
// FromNTTInto); rare legitimate sites (cold fallbacks, first-use cache
// construction) carry a reasoned //alchemist:allow hot-alloc directive.
type HotAlloc struct{}

// NewHotAlloc returns the rule. The annotation is opt-in per function, so no
// package scope is needed; the module argument matches the other
// constructors' shape.
func NewHotAlloc(module string) *HotAlloc {
	_ = module
	return &HotAlloc{}
}

func (*HotAlloc) Name() string { return "hot-alloc" }

func (*HotAlloc) Doc() string {
	return "no make([]uint64, ...), make([][]uint64, ...), or defer-in-loop inside //alchemist:hot functions; borrow scratch from the ring arenas and release it explicitly"
}

var hotDirectiveRE = regexp.MustCompile(`^//\s*alchemist:hot\s*$`)

func (h *HotAlloc) Check(p *Package, report func(Finding)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isHotAnnotated(fd) {
				continue
			}
			// Assembly kernels are declared bodyless on the Go side; the rule
			// cannot see their instruction stream, so a hot annotation there
			// is an unverifiable claim. The annotation belongs on the Go
			// dispatch wrapper that calls the kernel — that is where scratch
			// is borrowed and where AllocsPerRun pins the claim.
			if fd.Body == nil {
				if !p.Allowed(h.Name(), fd.Pos()) {
					report(Finding{
						Pos:  p.Fset.Position(fd.Pos()),
						Rule: h.Name(),
						Msg:  "//alchemist:hot on bodyless declaration " + fd.Name.Name + " (assembly kernel) is outside the rule's view",
						Hint: "annotate the Go dispatch wrapper that calls the kernel instead; its body is what the rule and the AllocsPerRun pins can verify",
					})
				}
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isMakeUint64Slice(p, call) {
					return true
				}
				if p.Allowed(h.Name(), call.Pos()) {
					return true
				}
				report(Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: h.Name(),
					Msg:  "make(" + types.TypeString(p.Info.TypeOf(call), nil) + ", ...) inside //alchemist:hot function " + fd.Name.Name,
					Hint: "borrow scratch (ring.BufPool.Get, Ring.Borrow/Scratch) and release it, move the allocation to an unannotated wrapper, or annotate //alchemist:allow hot-alloc <reason>",
				})
				return true
			})
			h.checkDeferInLoop(p, fd, report)
		}
	}
}

// checkDeferInLoop flags defer statements inside loops in hot functions.
// A defer in a loop body heap-allocates its record every iteration (the
// open-coded optimization only applies to defers that run at most once),
// so a hot kernel that borrows per-channel scratch and defers the release
// inside its channel loop silently regresses to allocs-per-op — release
// explicitly at the end of the iteration instead. Defers inside a function
// literal run when the literal returns, so a closure invoked in the loop
// restarts the context.
func (h *HotAlloc) checkDeferInLoop(p *Package, fd *ast.FuncDecl, report func(Finding)) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch s := m.(type) {
			case *ast.ForStmt:
				if s.Init != nil {
					walk(s.Init, inLoop)
				}
				if s.Cond != nil {
					walk(s.Cond, inLoop)
				}
				if s.Post != nil {
					walk(s.Post, inLoop)
				}
				walk(s.Body, true)
				return false
			case *ast.RangeStmt:
				walk(s.X, inLoop)
				walk(s.Body, true)
				return false
			case *ast.FuncLit:
				walk(s.Body, false)
				return false
			case *ast.DeferStmt:
				if inLoop && !p.Allowed(h.Name(), s.Pos()) {
					report(Finding{
						Pos:  p.Fset.Position(s.Pos()),
						Rule: h.Name(),
						Msg:  "defer inside a loop in //alchemist:hot function " + fd.Name.Name,
						Hint: "each iteration heap-allocates a defer record; release scratch explicitly at the end of the iteration, or annotate //alchemist:allow hot-alloc <reason>",
					})
				}
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// isHotAnnotated reports whether the function's doc comment carries the
// //alchemist:hot directive.
func isHotAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if hotDirectiveRE.MatchString(c.Text) {
			return true
		}
	}
	return false
}

// isMakeUint64Slice reports whether call is the builtin make producing a
// []uint64 or [][]uint64 (the arenas' scratch currency and the per-channel
// header tables over it).
func isMakeUint64Slice(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, builtin := p.Info.Uses[id].(*types.Builtin); !builtin {
		return false // shadowed make
	}
	sl, ok := p.Info.TypeOf(call).(*types.Slice)
	if !ok {
		return false
	}
	elem := sl.Elem().Underlying()
	if inner, ok := elem.(*types.Slice); ok {
		elem = inner.Elem().Underlying()
	}
	b, ok := elem.(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

package lint

// lazy-bounds: a forward interval-domain abstract interpretation over the CFG
// proving the lazy-reduction discipline of the modmath/ring kernels.
//
// PRs 5 and 7 made every hot kernel lazy: MulModShoupLazy outputs live in
// [0,2q), Harvey butterflies accumulate into [0,4q), and the 128-bit
// accumulators defer reduction for up to lazyCap terms under the m·q ≤ 2^64
// headroom bound. Those contracts used to live only in comments; this rule
// turns them into checked invariants.
//
// The abstract domain tracks each uint64 value as a symbolic interval in
// multiples of the live modulus q:
//
//	residue(b, s)  —  s·q ≤ v < b·q   (canonical values are residue(1, 0))
//	modMul(k)      —  v == k·q exactly (q itself, twoQ, ...)
//	top            —  nothing known
//
// plus a provenance bit: a residue is "known" when its bound derives from the
// lazy vocabulary (MulModShoupLazy outputs, twoQ-biased arithmetic, annotated
// loads) and merely "assumed" when it derives from the canonical-domain
// convention (a load from an unannotated slice). Checks only fire on known
// values — the rule never convicts on an assumption — but assumed values
// still participate in arithmetic so that q-biased expressions such as
// src[k]+q-c[k] get their true [0,2q) bound.
//
// Slices carry textual region ceilings: a function-level
//
//	//alchemist:domain p:[0,q)
//
// declares the entry/exit contract of parameter p, and an in-body directive
// changes the active ceiling from its line onward (the NTTLazy main loop runs
// under p:[0,4q), the final normalization pass restores p:[0,q)). Stores are
// checked against the active ceiling at the store line; loads see the running
// maximum of all ceilings up to the load line, so deleting a final-pass
// condSub is caught even though the store itself then sits in a [0,q) region.
// At every return the active ceiling must have been restored to the declared
// entry contract.
//
// 128-bit accumulators are tracked with a term counter: the raw SubRing
// MulCoeffsLazy128/AddLazy128 forms increment it, ReduceAcc128 resets it, and
// it must never exceed the guaranteed lazyCap floor of 4 terms (q < 2^62 ⇒
// lazyCap = 2^(64-62) ≥ 4). The Ring-level Acc128 forms flush automatically,
// so those only track whether an accumulator is released or reaches function
// exit with unfolded terms.
//
// Reported defect classes:
//
//	(a) a lazy value flowing into a call site whose declared domain it
//	    cannot satisfy (including a wrong modulus multiple: condSub(x, q)
//	    where the [0,4q) input needs condSub(x, twoQ));
//	(b) a missing normalization before a store to a canonical-domain output
//	    slice, or an in-place region not restored to its contract by return;
//	(c) accumulation exceeding the declared lazyCap headroom;
//	(d) unannotated exported functions in internal/ring + internal/modmath
//	    that consume or produce non-canonical domains, and stale or
//	    unprovable //alchemist:domain annotations.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// NormalizeSite is one normalization call (condSub/condSubMask/reduceOnce)
// whose narrowing the rule actually used to prove a bound. The mutation
// self-test splices each site out (replacing the call with its first
// argument) and asserts the rule catches every mutant.
type NormalizeSite struct {
	File           string    // file the call sits in
	Pos, End       token.Pos // extent of the whole call expression
	ArgPos, ArgEnd token.Pos // extent of the value argument (the splice text)
	Kind           string    // condSub | condSubMask | reduceOnce
	Fn             string    // enclosing function name
}

// LazyBounds is the lazy-reduction bounds rule.
type LazyBounds struct {
	// Scope limits the rule to packages whose import path contains one of
	// these substrings.
	Scope []string
	// Strict marks the kernel packages where unannotated slice parameters
	// default to the canonical [0,q) contract and non-canonical returns
	// must be declared (defect class d).
	Strict []string
	// onNormalize, when set, observes every proven normalization site.
	// Used by the mutation self-test.
	onNormalize func(NormalizeSite)
}

// NewLazyBounds returns the rule with its default scope: the arithmetic
// kernels strictly, the scheme packages for annotation checking. The module
// argument is unused (scopes are path substrings) but keeps the constructor
// signature uniform with the other rules.
func NewLazyBounds(string) *LazyBounds {
	return &LazyBounds{
		Scope:  []string{"internal/modmath", "internal/ring", "internal/ckks", "internal/bgv", "internal/tfhe"},
		Strict: []string{"internal/modmath", "internal/ring"},
	}
}

func (lb *LazyBounds) Name() string { return "lazy-bounds" }

func (lb *LazyBounds) Doc() string {
	return "lazy-reduction bounds: interval analysis proves every [0,kq) value is normalized before it escapes"
}

const lazyBoundsHint = "see DESIGN.md §5h: declare domains with //alchemist:domain <param|ret>:[0,kq) and normalize with condSub/reduceOnce/ReduceAcc128"

// ---------------------------------------------------------------------------
// Abstract values

const (
	avTop = iota
	avResidue
	avModMul
)

// maxBound saturates interval bounds so the lattice stays finite; any bound
// that would exceed it collapses to top.
const maxBound = 64

// lazyCapFloor is the guaranteed headroom of the 128-bit accumulators:
// NewBarrett enforces q < 2^62, so lazyCap = 2^(64-bits.Len64(maxQ)) ≥ 4.
const lazyCapFloor = 4

type absVal struct {
	kind  int
	bound int  // residue: v < bound·q ; modMul: v == bound·q
	bias  int  // residue: v ≥ bias·q
	known bool // derived from the lazy vocabulary, not assumed
}

func topVal() absVal            { return absVal{kind: avTop} }
func modMulVal(k int) absVal    { return absVal{kind: avModMul, bound: k, known: true} }
func knownResidue(b int) absVal { return absVal{kind: avResidue, bound: b, known: true} }
func assumedResidue(b int) absVal {
	return absVal{kind: avResidue, bound: b}
}

func (v absVal) isTop() bool { return v.kind == avTop }

// asResidue widens a modMul to the enclosing residue interval.
func (v absVal) asResidue() absVal {
	if v.kind == avModMul {
		return absVal{kind: avResidue, bound: v.bound + 1, bias: v.bound, known: true}
	}
	return v
}

func satBound(b int) (int, bool) {
	if b > maxBound {
		return 0, false
	}
	return b, true
}

// joinVals is the interval hull. known joins as OR: a value that is lazy on
// one path must be treated as lazy after the merge.
func joinVals(a, b absVal) absVal {
	if a == b {
		return a
	}
	if a.isTop() || b.isTop() {
		return topVal()
	}
	if a.kind == avModMul && b.kind == avModMul && a.bound == b.bound {
		return a
	}
	ar, br := a.asResidue(), b.asResidue()
	out := absVal{kind: avResidue, bound: ar.bound, bias: ar.bias, known: ar.known || br.known}
	if br.bound > out.bound {
		out.bound = br.bound
	}
	if br.bias < out.bias {
		out.bias = br.bias
	}
	return out
}

// addVals: [s1,b1) + [s2,b2) = [s1+s2, b1+b2). Adding the modulus itself is
// a vocabulary act, so modMul involvement makes the result known; adding two
// residues is only known when both operands are.
func addVals(a, b absVal) absVal {
	if a.isTop() || b.isTop() {
		return topVal()
	}
	if a.kind == avModMul && b.kind == avModMul {
		if k, ok := satBound(a.bound + b.bound); ok {
			return modMulVal(k)
		}
		return topVal()
	}
	// residue + exact k·q shifts both ends by k: [s,b) + kq = [s+k, b+k).
	// Routing the modMul through asResidue would widen exact 2q to [2q,3q)
	// and inflate the butterfly sum u+twoQ to [0,5q) instead of [0,4q).
	if a.kind == avModMul || b.kind == avModMul {
		r, m := a, b
		if a.kind == avModMul {
			r, m = b, a
		}
		bound, ok := satBound(r.bound + m.bound)
		if !ok {
			return topVal()
		}
		return absVal{kind: avResidue, bound: bound, bias: r.bias + m.bound, known: true}
	}
	bound, ok := satBound(a.bound + b.bound)
	if !ok {
		return topVal()
	}
	return absVal{kind: avResidue, bound: bound, bias: a.bias + b.bias, known: a.known && b.known}
}

// subVals: a - b is only sound (no wraparound) when a's lower bound covers
// b's upper bound; otherwise top. This is exactly the twoQ-biased butterfly
// shape u + twoQ - v: the bias contributed by twoQ absorbs v's bound.
func subVals(a, b absVal) absVal {
	if a.isTop() || b.isTop() {
		return topVal()
	}
	if a.kind == avModMul && b.kind == avModMul {
		if a.bound >= b.bound {
			return modMulVal(a.bound - b.bound)
		}
		return topVal()
	}
	// residue - exact k·q shifts both ends down by k, sound when the lower
	// end covers it: [s,b) - kq = [s-k, b-k) for s ≥ k.
	if b.kind == avModMul {
		if a.kind == avModMul {
			// handled above
			return topVal()
		}
		if a.bias < b.bound {
			return topVal()
		}
		return absVal{kind: avResidue, bound: a.bound - b.bound, bias: a.bias - b.bound, known: true}
	}
	// exact k·q - residue [s,b): sound when k covers b; the result can equal
	// (k-s)·q exactly (at x = s·q), so the half-open bound widens by one.
	if a.kind == avModMul {
		if a.bound < b.bound {
			return topVal()
		}
		bound, ok := satBound(a.bound - b.bias + 1)
		if !ok {
			return topVal()
		}
		return absVal{kind: avResidue, bound: bound, bias: a.bound - b.bound, known: true}
	}
	if a.bias < b.bound {
		return topVal()
	}
	return absVal{kind: avResidue, bound: a.bound - b.bias, bias: a.bias - b.bound, known: a.known && b.known}
}

// mulConst scales an interval by a non-negative integer constant.
func mulConst(v absVal, c int) absVal {
	if v.isTop() || c < 0 {
		return topVal()
	}
	if c == 0 {
		return topVal() // zero is a fine residue but carries no q-relation
	}
	if v.kind == avModMul {
		if k, ok := satBound(v.bound * c); ok {
			return modMulVal(k)
		}
		return topVal()
	}
	bound, ok := satBound(v.bound * c)
	if !ok {
		return topVal()
	}
	return absVal{kind: avResidue, bound: bound, bias: v.bias * c, known: v.known}
}

// condSubVal applies one conditional subtraction of k·q: the result keeps
// the input bound when it is already ≤ k, otherwise it narrows to
// max(k, bound-k). narrowed reports whether the call actually tightened a
// known bound (those are the sites the mutation test protects).
func condSubVal(in absVal, k int) (out absVal, narrowed bool) {
	r := in.asResidue()
	if in.isTop() || r.kind != avResidue {
		return topVal(), false
	}
	nb := r.bound
	if nb > k {
		nb = nb - k
		if nb < k {
			nb = k
		}
	}
	out = absVal{kind: avResidue, bound: nb, bias: 0, known: r.known}
	return out, r.known && nb < r.bound
}

// ---------------------------------------------------------------------------
// Abstract state

type accState struct {
	terms int  // raw SubRing form: pending unreduced terms
	dirty bool // Ring Acc128 form: has unfolded content
}

type lbState struct {
	vals map[types.Object]absVal
	accs map[types.Object]accState
}

func newLBState() *lbState {
	return &lbState{vals: map[types.Object]absVal{}, accs: map[types.Object]accState{}}
}

func (s *lbState) clone() *lbState {
	n := &lbState{
		vals: make(map[types.Object]absVal, len(s.vals)),
		accs: make(map[types.Object]accState, len(s.accs)),
	}
	for k, v := range s.vals {
		n.vals[k] = v
	}
	for k, v := range s.accs {
		n.accs[k] = v
	}
	return n
}

func (s *lbState) set(obj types.Object, v absVal) {
	if obj == nil {
		return
	}
	if v.isTop() {
		delete(s.vals, obj)
		return
	}
	s.vals[obj] = v
}

func (s *lbState) get(obj types.Object) absVal {
	if obj == nil {
		return topVal()
	}
	if v, ok := s.vals[obj]; ok {
		return v
	}
	return topVal()
}

// join merges o into s, reporting whether s changed. Missing vals are top
// (so a key present in only one input drops out); accs union with max terms
// and dirty-OR (an accumulator live on either path is live after the merge).
func (s *lbState) join(o *lbState) bool {
	changed := false
	for k, v := range s.vals {
		ov, ok := o.vals[k]
		if !ok {
			delete(s.vals, k)
			changed = true
			continue
		}
		j := joinVals(v, ov)
		if j != v {
			if j.isTop() {
				delete(s.vals, k)
			} else {
				s.vals[k] = j
			}
			changed = true
		}
	}
	for k, ov := range o.accs {
		cur, ok := s.accs[k]
		if !ok {
			s.accs[k] = ov
			changed = true
			continue
		}
		merged := accState{terms: cur.terms, dirty: cur.dirty || ov.dirty}
		if ov.terms > merged.terms {
			merged.terms = ov.terms
		}
		if merged != cur {
			s.accs[k] = merged
			changed = true
		}
	}
	return changed
}

// ---------------------------------------------------------------------------
// Domain annotations

var (
	domainRE    = regexp.MustCompile(`^//\s*alchemist:domain\s+(.+?)\s*$`)
	domEntryRE  = regexp.MustCompile(`^([A-Za-z_][A-Za-z0-9_]*):(\S+)$`)
	domBoundRE  = regexp.MustCompile(`^\[0,(\d*)q\)$`)
)

const (
	domAny = iota
	domResidue
	domModulus
)

type domSpec struct {
	kind int
	k    int // domResidue: bound in multiples of q
}

func parseDom(s string) (domSpec, bool) {
	switch s {
	case "any":
		return domSpec{kind: domAny}, true
	case "modulus":
		return domSpec{kind: domModulus}, true
	}
	if m := domBoundRE.FindStringSubmatch(s); m != nil {
		k := 1
		if m[1] != "" {
			n, err := strconv.Atoi(m[1])
			if err != nil || n < 1 || n > maxBound {
				return domSpec{}, false
			}
			k = n
		}
		return domSpec{kind: domResidue, k: k}, true
	}
	return domSpec{}, false
}

func (d domSpec) String() string {
	switch d.kind {
	case domAny:
		return "any"
	case domModulus:
		return "modulus"
	default:
		if d.k == 1 {
			return "[0,q)"
		}
		return fmt.Sprintf("[0,%dq)", d.k)
	}
}

// domainDirective is one parsed //alchemist:domain comment.
type domainDirective struct {
	pos     token.Pos
	entries []domEntry
	raw     string
}

type domEntry struct {
	name string
	dom  domSpec
	ok   bool // dom parsed
	raw  string
}

func parseDomainComment(c *ast.Comment) (domainDirective, bool) {
	m := domainRE.FindStringSubmatch(c.Text)
	if m == nil {
		return domainDirective{}, false
	}
	d := domainDirective{pos: c.Pos(), raw: m[1]}
	for _, field := range strings.Fields(m[1]) {
		e := domEntry{raw: field}
		if em := domEntryRE.FindStringSubmatch(field); em != nil {
			e.name = em[1]
			e.dom, e.ok = parseDom(em[2])
		}
		d.entries = append(d.entries, e)
	}
	return d, true
}

// regionMark is one in-body ceiling change for a slice root: from pos onward
// the root's active ceiling is k.
type regionMark struct {
	pos token.Pos
	k   int
}

// rootInfo is the domain contract of one slice-like parameter.
type rootInfo struct {
	name      string
	annotated bool // declared via //alchemist:domain (entry or region)
	entryK    int  // entry/exit ceiling; 0 = no ceiling (any)
	marks     []regionMark
}

// activeCeiling is the declared ceiling in force at pos (the entry contract
// overridden by the latest region mark at or before pos). 0 means none.
func (r *rootInfo) activeCeiling(pos token.Pos) int {
	k := r.entryK
	for _, m := range r.marks {
		if m.pos <= pos {
			k = m.k
		}
	}
	return k
}

// loadCeiling is the bound a load at pos must conservatively assume: the
// running maximum of every ceiling declared up to that line. A store under a
// later, tighter region does not erase what earlier regions may have left in
// unvisited slots.
func (r *rootInfo) loadCeiling(pos token.Pos) int {
	k := r.entryK
	for _, m := range r.marks {
		if m.pos <= pos && m.k > k {
			k = m.k
		}
	}
	return k
}

// ---------------------------------------------------------------------------
// Intrinsic transfer-function table

// tableSkip names the primitives whose contracts this rule hard-codes. Their
// bodies are deliberately not analyzed: the contracts are pinned by the
// modmath fuzzers (e.g. FuzzMulModShoupLazyDomain), and re-deriving a bound
// like MulModShoupLazy's [0,2q) from its bit-twiddling body is out of scope
// for an interval domain.
var tableSkip = map[string]bool{
	"AddMod": true, "SubMod": true, "NegMod": true, "MulMod": true,
	"PowMod": true, "InvMod": true, "ReduceSigned": true, "ReduceWord": true,
	"Reduce": true, "MulModShoup": true, "MulModShoupLazy": true,
	"ShoupPrecomp": true, "condSub": true, "condSubMask": true,
	"reduceOnce": true,
}

// tableExpected pins the annotation text required on table functions whose
// declared contract is non-canonical; a drifting annotation is a finding.
var tableExpected = map[string]map[string]string{
	"MulModShoupLazy": {"a": "[0,4q)", "ret": "[0,2q)"},
}

// modulusFields are struct fields / indexed tables that hold live moduli.
var modulusFields = map[string]bool{"Q": true, "Moduli": true, "Src": true, "Dst": true}

// vocabNames is the quick-reject trigger set: a function whose body mentions
// none of these identifiers and carries no domain annotation cannot produce
// a known lazy value, so its analysis is skipped.
var vocabNames = map[string]bool{
	"MulModShoupLazy": true, "MulModShoup": true, "condSub": true,
	"condSubMask": true, "reduceOnce": true, "AddMod": true, "SubMod": true,
	"NegMod": true, "MulMod": true, "ReduceWord": true, "Reduce": true,
	"ReduceSigned": true, "ShoupPrecomp": true, "PowMod": true, "InvMod": true,
	"NTTLazy": true, "INTTLazy": true, "NTT": true, "INTT": true,
	"BorrowAcc": true, "ReleaseAcc": true, "MulCoeffsLazy128": true,
	"MulCoeffsLazy128Auto": true, "AddLazy128": true, "ReduceAcc128": true,
	"flushAcc": true, "Q": true, "Moduli": true,
}

// ---------------------------------------------------------------------------
// Rule driver

func (lb *LazyBounds) Check(p *Package, report func(Finding)) {
	if !matchAny(p.PkgPath, lb.Scope) {
		return
	}
	strict := matchAny(p.PkgPath, lb.Strict)

	// Collect same-package function contracts first so call-site checks can
	// see annotations on functions defined later in the package.
	contracts := map[string]map[string]domSpec{}
	type fnDirectives struct {
		fn   *ast.FuncDecl
		doc  []domainDirective // attached to the doc comment
		body []domainDirective // region directives inside the body
	}
	var fns []*fnDirectives
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				fns = append(fns, &fnDirectives{fn: fd})
			}
		}
	}
	flagDirective := func(pos token.Pos, format string, args ...any) {
		if p.Allowed(lb.Name(), pos) {
			return
		}
		report(Finding{
			Pos:  p.Fset.Position(pos),
			Rule: lb.Name(),
			Msg:  fmt.Sprintf(format, args...),
			Hint: lazyBoundsHint,
		})
	}
	for _, f := range p.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				d, ok := parseDomainComment(c)
				if !ok {
					continue
				}
				attached := false
				for _, e := range fns {
					fd := e.fn
					if fd.Doc != nil && d.pos >= fd.Doc.Pos() && d.pos <= fd.Doc.End() {
						e.doc = append(e.doc, d)
						attached = true
						break
					}
					if fd.Body != nil && d.pos >= fd.Body.Pos() && d.pos <= fd.Body.End() {
						e.body = append(e.body, d)
						attached = true
						break
					}
				}
				if !attached {
					flagDirective(d.pos, "domain directive %q attaches to no function (must sit in a doc comment or a function body)", d.raw)
				}
			}
		}
	}

	// Validate and register function-level contracts.
	for _, e := range fns {
		fd := e.fn
		params := paramObjects(p, fd)
		var contract map[string]domSpec
		for _, d := range e.doc {
			for _, ent := range d.entries {
				if ent.name == "" || !ent.ok {
					flagDirective(d.pos, "func %s: malformed domain entry %q (want name:[0,kq) | name:any | name:modulus)", fd.Name.Name, ent.raw)
					continue
				}
				if ent.name != "ret" {
					if _, ok := params[ent.name]; !ok {
						flagDirective(d.pos, "func %s: domain entry %q names no parameter", fd.Name.Name, ent.raw)
						continue
					}
				}
				if contract == nil {
					contract = map[string]domSpec{}
				}
				contract[ent.name] = ent.dom
			}
		}
		if contract != nil {
			contracts[fd.Name.Name] = contract
		}
		// Drift check against the hard-coded table.
		if want, ok := tableExpected[fd.Name.Name]; ok {
			for name, dom := range want {
				got, has := contract[name]
				if !has {
					flagDirective(fd.Name.Pos(), "func %s: missing required domain annotation %s:%s (non-canonical contract must be declared)", fd.Name.Name, name, dom)
				} else if got.String() != dom {
					flagDirective(fd.Name.Pos(), "func %s: domain annotation %s:%s contradicts the pinned contract %s:%s", fd.Name.Name, name, got, name, dom)
				}
			}
		}
		// Defect class (d): the raw SubRing 128-bit entry points hold
		// intentionally unreduced data and must say so.
		if strict && rawAcc128Decl(p, fd) {
			for _, name := range []string{"lo", "hi"} {
				if _, ok := params[name]; !ok {
					continue
				}
				if dom, has := contract[name]; !has || dom.kind != domAny {
					flagDirective(fd.Name.Pos(), "func %s: 128-bit accumulator parameter %q holds unreduced words and must be annotated %s:any", fd.Name.Name, name, name)
				}
			}
		}
	}

	for _, e := range fns {
		fd := e.fn
		if fd.Body == nil {
			continue
		}
		if tableSkip[fd.Name.Name] {
			continue
		}
		fa := &lbFunc{
			rule:      lb,
			pkg:       p,
			fn:        fd,
			strict:    strict,
			contracts: contracts,
			reported:  map[string]bool{},
			sites:     map[token.Pos]bool{},
		}
		fa.setup(e.doc, e.body, flagDirective)
		if fa.skip {
			continue
		}
		fa.run(report)
	}
}

// paramObjects maps parameter names (including the receiver) to their
// types.Object for one function declaration.
func paramObjects(p *Package, fd *ast.FuncDecl) map[string]types.Object {
	out := map[string]types.Object{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					out[name.Name] = obj
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return out
}

// rawAcc128Decl reports whether fd is a raw (slice-form) 128-bit accumulator
// entry point: one of the SubRing MulCoeffsLazy128/AddLazy128/ReduceAcc128
// methods whose lo/hi parameters are []uint64 rather than *Acc128.
func rawAcc128Decl(p *Package, fd *ast.FuncDecl) bool {
	switch fd.Name.Name {
	case "MulCoeffsLazy128", "AddLazy128", "ReduceAcc128":
	default:
		return false
	}
	params := paramObjects(p, fd)
	lo, ok := params["lo"]
	if !ok {
		return false
	}
	return isUint64Slice(lo.Type())
}

func isUint64Slice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

func isUint64Word(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

func isAcc128Type(t types.Type) bool {
	return strings.Contains(t.String(), "Acc128")
}

// ---------------------------------------------------------------------------
// Per-function analysis

type lbFunc struct {
	rule      *LazyBounds
	pkg       *Package
	fn        *ast.FuncDecl
	strict    bool
	contracts map[string]map[string]domSpec

	cfg     *CFG
	states  map[*CFGNode]*lbState
	entry   *lbState
	roots   map[types.Object]*rootInfo
	aliases map[types.Object]types.Object
	retDom  *domSpec
	skip    bool

	reported map[string]bool
	sites    map[token.Pos]bool
}

// residueCarrier reports whether a parameter type holds modular residues a
// ceiling can apply to: uint64 slices at any nesting depth, or Poly-shaped
// aggregates. Acc128 holds intentionally unreduced 128-bit halves and is
// excluded — its discipline is the term counter, not a ceiling.
func residueCarrier(t types.Type) bool {
	if isAcc128Type(t) {
		return false
	}
	if strings.Contains(t.String(), "Poly") {
		return true
	}
	u := t.Underlying()
	for {
		sl, ok := u.(*types.Slice)
		if !ok {
			return false
		}
		if b, ok := sl.Elem().Underlying().(*types.Basic); ok {
			return b.Kind() == types.Uint64
		}
		u = sl.Elem().Underlying()
	}
}

// setup classifies parameters into scalar entry seeds and slice roots,
// applies the function's contract and region directives, builds the
// flow-insensitive alias map, and decides the quick-reject.
func (fa *lbFunc) setup(doc, body []domainDirective, flagDirective func(token.Pos, string, ...any)) {
	fd := fa.fn
	params := paramObjects(fa.pkg, fd)
	contract := fa.contracts[fd.Name.Name]
	fa.roots = map[types.Object]*rootInfo{}
	fa.aliases = map[types.Object]types.Object{}
	fa.entry = newLBState()

	if contract != nil {
		if ret, ok := contract["ret"]; ok {
			r := ret
			fa.retDom = &r
		}
	}

	for name, obj := range params {
		dom, declared := domSpec{}, false
		if contract != nil {
			dom, declared = contract[name]
		}
		if isUint64Word(obj.Type()) {
			// Scalar seed.
			if declared {
				switch dom.kind {
				case domModulus:
					fa.entry.set(obj, modMulVal(1))
				case domResidue:
					fa.entry.set(obj, knownResidue(dom.k))
				}
			}
			continue
		}
		if !declared && !(fa.strict && residueCarrier(obj.Type())) {
			continue
		}
		r := &rootInfo{name: name}
		if declared {
			r.annotated = true
			switch dom.kind {
			case domResidue:
				r.entryK = dom.k
			case domModulus:
				flagDirective(fd.Name.Pos(), "func %s: parameter %q is not a scalar; modulus domain does not apply", fd.Name.Name, name)
			}
			// domAny: annotated with no ceiling.
		} else {
			r.entryK = 1 // strict packages: unannotated slices are canonical
		}
		fa.roots[obj] = r
	}

	// In-body region directives re-declare a root's ceiling from their line
	// onward.
	for _, d := range body {
		for _, ent := range d.entries {
			if ent.name == "" || !ent.ok {
				flagDirective(d.pos, "func %s: malformed domain entry %q (want name:[0,kq) | name:any)", fd.Name.Name, ent.raw)
				continue
			}
			if ent.name == "ret" || ent.dom.kind == domModulus {
				flagDirective(d.pos, "func %s: region directive %q must name a slice parameter with a [0,kq) or any domain", fd.Name.Name, ent.raw)
				continue
			}
			obj, ok := params[ent.name]
			if !ok {
				flagDirective(d.pos, "func %s: region directive %q names no parameter", fd.Name.Name, ent.raw)
				continue
			}
			r, ok := fa.roots[obj]
			if !ok {
				r = &rootInfo{name: ent.name}
				fa.roots[obj] = r
			}
			r.annotated = true
			k := 0
			if ent.dom.kind == domResidue {
				k = ent.dom.k
			}
			r.marks = append(r.marks, regionMark{pos: d.pos, k: k})
		}
	}
	for _, r := range fa.roots {
		sort.Slice(r.marks, func(i, j int) bool { return r.marks[i].pos < r.marks[j].pos })
	}

	// Flow-insensitive alias pre-pass: x0 := p[a:b:c] or dst := out.Coeffs[i]
	// make x0/dst stand for their base root. Conflicting rebinds poison the
	// alias; two rounds resolve alias-of-alias chains.
	if fd.Body != nil {
		for round := 0; round < 2; round++ {
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				as, ok := node.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, lhs := range as.Lhs {
					id, ok := unparen(lhs).(*ast.Ident)
					if !ok || isBlank(id) {
						continue
					}
					switch unparen(as.Rhs[i]).(type) {
					case *ast.SliceExpr, *ast.IndexExpr, *ast.Ident, *ast.SelectorExpr:
					default:
						continue
					}
					// Only slice-shaped bindings alias; scalar copies are
					// value flow, handled by the abstract state.
					if tv, ok := fa.pkg.Info.Types[as.Rhs[i]]; !ok || tv.Type == nil || isUint64Word(tv.Type) {
						continue
					}
					obj := lbObjOf(fa.pkg, id)
					if obj == nil || fa.roots[obj] != nil {
						continue
					}
					base := fa.baseObj(as.Rhs[i])
					if base == obj {
						continue
					}
					if target, chained := fa.aliases[base]; chained {
						base = target
					}
					if cur, seen := fa.aliases[obj]; seen && cur != base {
						fa.aliases[obj] = nil // conflicting rebind: poison
						continue
					}
					fa.aliases[obj] = base
				}
				return true
			})
		}
	}

	// Quick-reject: a body that never mentions the lazy vocabulary, a
	// modulus field, or an annotated same-package callee cannot produce a
	// known lazy value.
	fa.skip = true
	if fd.Body != nil {
		ast.Inspect(fd.Body, func(node ast.Node) bool {
			if !fa.skip {
				return false
			}
			if id, ok := node.(*ast.Ident); ok {
				if vocabNames[id.Name] || fa.contracts[id.Name] != nil {
					fa.skip = false
				}
			}
			return fa.skip
		})
	}
	for _, r := range fa.roots {
		if r.annotated {
			fa.skip = false
		}
	}
}

func (fa *lbFunc) run(report func(Finding)) {
	fd := fa.fn
	fa.cfg = BuildCFG(fd.Body)
	fa.states = map[*CFGNode]*lbState{}
	fa.states[fa.cfg.Entry] = fa.entry.clone()

	// Worklist fixpoint: propagate states forward until stable.
	work := []*CFGNode{fa.cfg.Entry}
	inWork := map[*CFGNode]bool{fa.cfg.Entry: true}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		inWork[n] = false
		in, ok := fa.states[n]
		if !ok {
			continue
		}
		out := fa.transfer(n, in.clone(), nil)
		for _, succ := range n.Succs {
			cur, ok := fa.states[succ]
			if !ok {
				fa.states[succ] = out.clone()
			} else if !cur.join(out) {
				continue
			}
			if !inWork[succ] {
				inWork[succ] = true
				work = append(work, succ)
			}
		}
	}

	// Report pass: deterministic order, final in-states.
	for _, n := range fa.cfg.Nodes {
		st, ok := fa.states[n]
		if !ok {
			continue
		}
		fa.transfer(n, st.clone(), report)
	}
}

func (fa *lbFunc) flag(report func(Finding), pos token.Pos, format string, args ...any) {
	if report == nil {
		return
	}
	if pos == token.NoPos {
		pos = fa.fn.Pos()
	}
	msg := fmt.Sprintf("func %s: %s", fa.fn.Name.Name, fmt.Sprintf(format, args...))
	key := fmt.Sprintf("%d:%s", pos, msg)
	if fa.reported[key] {
		return
	}
	fa.reported[key] = true
	if fa.pkg.Allowed(fa.rule.Name(), pos) {
		return
	}
	report(Finding{
		Pos:  fa.pkg.Fset.Position(pos),
		Rule: fa.rule.Name(),
		Msg:  msg,
		Hint: lazyBoundsHint,
	})
}

// rootOf resolves an expression to the slice root it stores into / loads
// from: a parameter object, possibly through the alias map (x0 := p[a:b:c],
// dst := out.Coeffs[i]).
func (fa *lbFunc) rootOf(e ast.Expr) *rootInfo {
	obj := fa.baseObj(e)
	if obj == nil {
		return nil
	}
	if r, ok := fa.roots[obj]; ok {
		return r
	}
	if target, ok := fa.aliases[obj]; ok && target != nil {
		if r, ok := fa.roots[target]; ok {
			return r
		}
	}
	return nil
}

// baseObj walks an expression down to its base identifier: p, p[i:j],
// a.Coeffs[i][:n:n] all resolve to the leftmost identifier.
func (fa *lbFunc) baseObj(e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return lbObjOf(fa.pkg, x)
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X // &acc in ReleaseAcc(&acc)
		default:
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// Transfer function

func (fa *lbFunc) transfer(n *CFGNode, st *lbState, report func(Finding)) *lbState {
	switch n.Kind {
	case KindEntry, KindJoin:
		return st
	case KindExit:
		fa.checkExit(st, report)
		return st
	case KindCond:
		if rs, ok := n.Stmt.(*ast.RangeStmt); ok {
			fa.rangeBind(rs, st, report)
			return st
		}
		for _, e := range n.Exprs {
			fa.eval(e, st, report)
		}
		return st
	}
	switch s := n.Stmt.(type) {
	case *ast.AssignStmt:
		fa.assign(s, st, report)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v := topVal()
					if i < len(vs.Values) {
						v = fa.eval(vs.Values[i], st, report)
					}
					if obj := lbObjOf(fa.pkg, name); obj != nil {
						st.set(obj, v)
					}
				}
			}
		}
	case *ast.ExprStmt:
		fa.eval(s.X, st, report)
	case *ast.ReturnStmt:
		for i, res := range s.Results {
			v := fa.eval(res, st, report)
			if i == 0 {
				fa.checkReturn(res, v, st, report)
			}
		}
		fa.checkRegionsRestored(s.Pos(), report)
	case *ast.IncDecStmt:
		if id, ok := unparen(s.X).(*ast.Ident); ok {
			st.set(lbObjOf(fa.pkg, id), topVal())
		}
	case *ast.DeferStmt:
		if lbCallName(s.Call) == "ReleaseAcc" {
			// The deferred release runs at exit; checkExit still verifies
			// the accumulator was folded. Nothing to do now.
			return st
		}
		fa.eval(s.Call, st, report)
	case *ast.GoStmt:
		fa.eval(s.Call, st, report)
	case *ast.SendStmt:
		fa.eval(s.Value, st, report)
	}
	return st
}

func (fa *lbFunc) rangeBind(rs *ast.RangeStmt, st *lbState, report func(Finding)) {
	fa.eval(rs.X, st, report)
	if id, ok := rs.Key.(*ast.Ident); ok && !isBlank(id) {
		st.set(lbObjOf(fa.pkg, id), topVal())
	}
	if rs.Value == nil {
		return
	}
	id, ok := rs.Value.(*ast.Ident)
	if !ok || isBlank(id) {
		return
	}
	v := topVal()
	if tv, ok := fa.pkg.Info.Types[rs.X]; ok {
		if sl, ok := tv.Type.Underlying().(*types.Slice); ok && isUint64Word(sl.Elem()) {
			v = fa.loadFrom(rs.X, rs.X.Pos())
		}
	}
	st.set(lbObjOf(fa.pkg, id), v)
}

// loadFrom is the abstract value of an element read from the slice expr e.
func (fa *lbFunc) loadFrom(e ast.Expr, pos token.Pos) absVal {
	r := fa.rootOf(e)
	if r == nil {
		return assumedResidue(1)
	}
	if k := r.loadCeiling(pos); k > 0 {
		if r.annotated {
			return knownResidue(k)
		}
		return assumedResidue(k)
	}
	return topVal() // declared any: genuinely unbounded (raw 128-bit words)
}

func (fa *lbFunc) assign(s *ast.AssignStmt, st *lbState, report func(Finding)) {
	// Multi-value forms: a, b := f() — nothing tracked survives.
	if len(s.Lhs) != len(s.Rhs) {
		for _, rhs := range s.Rhs {
			fa.eval(rhs, st, report)
		}
		for _, lhs := range s.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok && !isBlank(id) {
				st.set(lbObjOf(fa.pkg, id), topVal())
			}
		}
		return
	}
	// Evaluate all RHS against the pre-state (Go tuple-assign semantics).
	vals := make([]absVal, len(s.Rhs))
	for i, rhs := range s.Rhs {
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			// acc := r.BorrowAcc(level) births a tracked accumulator.
			if call, ok := unparen(rhs).(*ast.CallExpr); ok && lbCallName(call) == "BorrowAcc" {
				fa.eval(rhs, st, report)
				if id, ok := unparen(s.Lhs[i]).(*ast.Ident); ok && !isBlank(id) {
					if obj := lbObjOf(fa.pkg, id); obj != nil {
						st.accs[obj] = accState{}
						st.set(obj, topVal())
					}
				}
				vals[i] = topVal()
				continue
			}
			vals[i] = fa.eval(rhs, st, report)
		case token.ADD_ASSIGN:
			vals[i] = addVals(fa.eval(s.Lhs[i], st, nil), fa.eval(rhs, st, report))
		case token.SUB_ASSIGN:
			vals[i] = subVals(fa.eval(s.Lhs[i], st, nil), fa.eval(rhs, st, report))
		default:
			fa.eval(rhs, st, report)
			vals[i] = topVal()
		}
	}
	for i, lhs := range s.Lhs {
		fa.assignTo(lhs, vals[i], st, report)
	}
}

func (fa *lbFunc) assignTo(lhs ast.Expr, v absVal, st *lbState, report func(Finding)) {
	switch x := unparen(lhs).(type) {
	case *ast.Ident:
		if isBlank(x) {
			return
		}
		st.set(lbObjOf(fa.pkg, x), v)
	case *ast.IndexExpr:
		fa.checkStore(x, v, report)
	}
}

// checkStore is defect class (b): a store into a slice with a declared (or
// strict-default) ceiling must deposit a value inside that ceiling.
func (fa *lbFunc) checkStore(lhs *ast.IndexExpr, v absVal, report func(Finding)) {
	if tv, ok := fa.pkg.Info.Types[lhs]; !ok || !isUint64Word(tv.Type) {
		return
	}
	r := fa.rootOf(lhs.X)
	if r == nil {
		return
	}
	ceiling := r.activeCeiling(lhs.Pos())
	if ceiling == 0 {
		return
	}
	res := v.asResidue()
	if res.kind != avResidue || !res.known || res.bound <= ceiling {
		return
	}
	fa.flag(report, lhs.Pos(),
		"stores a [0,%dq) value into %s, whose active domain is [0,%dq) — missing normalization before store",
		res.bound, r.name, ceiling)
}

func (fa *lbFunc) checkReturn(res ast.Expr, v absVal, st *lbState, report func(Finding)) {
	if tv, ok := fa.pkg.Info.Types[res]; !ok || !isUint64Word(tv.Type) {
		return
	}
	rv := v.asResidue()
	if rv.kind != avResidue || !rv.known {
		return
	}
	if fa.retDom != nil {
		if fa.retDom.kind == domResidue && rv.bound > fa.retDom.k {
			fa.flag(report, res.Pos(),
				"returns a [0,%dq) value but the contract declares ret:%s — annotation unprovable",
				rv.bound, fa.retDom)
		}
		return
	}
	if fa.strict && rv.bound > 1 {
		fa.flag(report, res.Pos(),
			"returns a non-canonical [0,%dq) value without a //alchemist:domain ret: contract",
			rv.bound)
	}
}

// checkRegionsRestored is the exit half of defect class (b): every annotated
// in-place region must be back at its entry contract when the function can
// return.
func (fa *lbFunc) checkRegionsRestored(pos token.Pos, report func(Finding)) {
	for _, r := range fa.sortedRoots() {
		if len(r.marks) == 0 || r.entryK == 0 {
			continue
		}
		if active := r.activeCeiling(pos); active > r.entryK {
			fa.flag(report, pos,
				"%s is in [0,%dq) at return but its contract declares [0,%dq) — in-place domain not restored",
				r.name, active, r.entryK)
		}
	}
}

func (fa *lbFunc) sortedRoots() []*rootInfo {
	out := make([]*rootInfo, 0, len(fa.roots))
	for _, r := range fa.roots {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (fa *lbFunc) checkExit(st *lbState, report func(Finding)) {
	pos := token.NoPos
	if fa.fn.Body != nil {
		pos = fa.fn.Body.Rbrace
	}
	fa.checkRegionsRestored(pos, report)
	for obj, acc := range st.accs {
		if acc.dirty {
			fa.flag(report, pos,
				"Acc128 %s reaches function exit with unfolded terms — missing ReduceAcc128", obj.Name())
		}
	}
}

// ---------------------------------------------------------------------------
// Expression evaluation

func (fa *lbFunc) eval(e ast.Expr, st *lbState, report func(Finding)) absVal {
	e = unparen(e)
	if tv, ok := fa.pkg.Info.Types[e]; ok && tv.Value != nil {
		return topVal() // untyped/typed constants carry no q-relation
	}
	switch x := e.(type) {
	case *ast.Ident:
		return st.get(lbObjOf(fa.pkg, x))
	case *ast.SelectorExpr:
		if modulusFields[x.Sel.Name] && isUint64Type(fa.pkg, e) {
			return modMulVal(1)
		}
		return topVal()
	case *ast.IndexExpr:
		if sel, ok := unparen(x.X).(*ast.SelectorExpr); ok && modulusFields[sel.Sel.Name] && isUint64Type(fa.pkg, e) {
			return modMulVal(1)
		}
		if id, ok := unparen(x.X).(*ast.Ident); ok && modulusFields[id.Name] && isUint64Type(fa.pkg, e) {
			// A local table of moduli (moduli := r.Moduli[:level+1]).
			return modMulVal(1)
		}
		fa.eval(x.Index, st, report)
		if !isUint64Type(fa.pkg, e) {
			return topVal()
		}
		return fa.loadFrom(x.X, x.Pos())
	case *ast.BinaryExpr:
		return fa.evalBinary(x, st, report)
	case *ast.CallExpr:
		return fa.evalCallOrConv(x, st, report)
	case *ast.UnaryExpr, *ast.StarExpr, *ast.CompositeLit, *ast.FuncLit,
		*ast.TypeAssertExpr, *ast.SliceExpr:
		return topVal()
	}
	return topVal()
}

func isUint64Type(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Type != nil && isUint64Word(tv.Type)
}

func (fa *lbFunc) evalBinary(x *ast.BinaryExpr, st *lbState, report func(Finding)) absVal {
	if !isUint64Type(fa.pkg, x) {
		fa.eval(x.X, st, report)
		fa.eval(x.Y, st, report)
		return topVal()
	}
	a := fa.eval(x.X, st, report)
	b := fa.eval(x.Y, st, report)
	switch x.Op {
	case token.ADD:
		return addVals(a, b)
	case token.SUB:
		return subVals(a, b)
	case token.MUL:
		if c, ok := fa.intConst(x.X); ok {
			return mulConst(b, c)
		}
		if c, ok := fa.intConst(x.Y); ok {
			return mulConst(a, c)
		}
		return topVal()
	case token.SHL:
		if c, ok := fa.intConst(x.Y); ok && c >= 0 && c < 7 {
			return mulConst(a, 1<<c)
		}
		return topVal()
	case token.SHR:
		// v>>c < bound·q still holds; the lower bound is lost.
		if r := a.asResidue(); r.kind == avResidue {
			return absVal{kind: avResidue, bound: r.bound, bias: 0, known: r.known}
		}
		return topVal()
	}
	return topVal()
}

func (fa *lbFunc) intConst(e ast.Expr) (int, bool) {
	tv, ok := fa.pkg.Info.Types[unparen(e)]
	if !ok || tv.Value == nil {
		return 0, false
	}
	i, err := strconv.ParseInt(tv.Value.ExactString(), 10, 64)
	if err != nil || i < 0 || i > int64(maxBound) {
		return 0, false
	}
	return int(i), true
}

func (fa *lbFunc) evalCallOrConv(call *ast.CallExpr, st *lbState, report func(Finding)) absVal {
	// Type conversions pass uint64 operands through unchanged.
	if tv, ok := fa.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			inner := fa.eval(call.Args[0], st, report)
			if isUint64Type(fa.pkg, call.Args[0]) && isUint64Type(fa.pkg, call) {
				return inner
			}
		}
		return topVal()
	}
	return fa.evalCall(call, st, report)
}

// evalCall dispatches on the intrinsic table, the 128-bit accumulator
// vocabulary, and same-package annotated contracts, in that order.
func (fa *lbFunc) evalCall(call *ast.CallExpr, st *lbState, report func(Finding)) absVal {
	name := lbCallName(call)
	args := call.Args

	argVal := func(i int) absVal {
		if i < len(args) {
			return fa.eval(args[i], st, report)
		}
		return topVal()
	}
	// checkArgMax is defect class (a): a known residue wider than the
	// callee's declared input domain.
	checkArgMax := func(i, max int) absVal {
		v := argVal(i)
		r := v.asResidue()
		if r.kind == avResidue && r.known && r.bound > max {
			fa.flag(report, args[i].Pos(),
				"argument %d of %s is in [0,%dq) but the callee requires [0,%dq)",
				i+1, name, r.bound, max)
		}
		return v
	}
	checkMod := func(i, want int) absVal {
		v := argVal(i)
		if v.kind == avModMul && v.bound != want {
			fa.flag(report, args[i].Pos(),
				"modulus argument of %s is %d·q, want %d·q", name, v.bound, want)
		}
		return v
	}

	switch name {
	case "AddMod", "SubMod", "MulMod":
		if len(args) == 3 {
			checkArgMax(0, 1)
			checkArgMax(1, 1)
			checkMod(2, 1)
			return knownResidue(1)
		}
		if len(args) == 2 { // Barrett.MulMod(a, b)
			return knownResidue(1)
		}
	case "NegMod":
		if len(args) == 2 {
			checkArgMax(0, 1)
			checkMod(1, 1)
			return knownResidue(1)
		}
	case "PowMod":
		if len(args) == 3 {
			argVal(0) // PowMod folds a into [0,q) itself
			argVal(1)
			checkMod(2, 1)
			return knownResidue(1)
		}
	case "InvMod":
		if len(args) == 2 {
			checkMod(1, 1)
			return knownResidue(1)
		}
	case "ReduceSigned":
		if len(args) == 2 {
			checkMod(1, 1)
			return knownResidue(1)
		}
	case "ReduceWord":
		if len(args) == 1 {
			argVal(0)
			return knownResidue(1)
		}
	case "Reduce":
		if len(args) == 2 { // Barrett.Reduce(hi, lo)
			argVal(0)
			argVal(1)
			return knownResidue(1)
		}
	case "MulModShoup":
		if len(args) == 4 {
			checkArgMax(0, 1)
			checkArgMax(1, 1)
			argVal(2)
			checkMod(3, 1)
			return knownResidue(1)
		}
	case "MulModShoupLazy":
		if len(args) == 4 {
			checkArgMax(0, 4)
			checkArgMax(1, 1)
			argVal(2)
			checkMod(3, 1)
			// The [0,2q) output contract holds for any admissible input,
			// so the result is known regardless of input provenance.
			return knownResidue(2)
		}
	case "ShoupPrecomp":
		if len(args) == 2 {
			checkArgMax(0, 1)
			checkMod(1, 1)
			return topVal() // ⌊w·2^64/q⌋ is a precomputed word, not a residue
		}
	case "condSub", "condSubMask":
		if len(args) == 2 {
			in := argVal(0)
			m := argVal(1)
			if m.kind != avModMul {
				return in // unknown modulus multiple: no narrowing proven
			}
			out, narrowed := condSubVal(in, m.bound)
			if narrowed {
				fa.recordSite(call, args[0], name, report)
			}
			return out
		}
	case "reduceOnce":
		if len(args) == 3 {
			in := argVal(0)
			m1 := checkMod(1, 2)
			m2 := checkMod(2, 1)
			k1, k2 := 2, 1
			if m1.kind == avModMul {
				k1 = m1.bound
			}
			if m2.kind == avModMul {
				k2 = m2.bound
			}
			mid, n1 := condSubVal(in, k1)
			out, n2 := condSubVal(mid, k2)
			if n1 || n2 {
				fa.recordSite(call, args[0], name, report)
			}
			return out
		}
	case "NTTLazy", "INTTLazy", "NTT", "INTT":
		if len(args) == 1 {
			if r := fa.rootOf(args[0]); r != nil {
				if k := r.activeCeiling(args[0].Pos()); k > 1 && r.annotated {
					fa.flag(report, args[0].Pos(),
						"argument of %s is in [0,%dq) but the transform requires canonical [0,q) input", name, k)
				}
			}
			return topVal()
		}
	case "BorrowAcc":
		return topVal() // births are handled at the assignment
	case "MulCoeffsLazy128", "MulCoeffsLazy128Auto", "AddLazy128":
		fa.acc128Accumulate(name, call, st, report)
		return topVal()
	case "ReduceAcc128":
		fa.acc128Reduce(call, st, report)
		return topVal()
	case "flushAcc":
		for _, a := range args {
			if obj := fa.baseObj(a); obj != nil {
				if acc, ok := st.accs[obj]; ok {
					acc.dirty = false
					acc.terms = 0
					st.accs[obj] = acc
				}
			}
		}
		return topVal()
	case "ReleaseAcc":
		for _, a := range args {
			obj := fa.baseObj(a)
			if obj == nil {
				continue
			}
			if acc, ok := st.accs[obj]; ok {
				if acc.dirty {
					fa.flag(report, call.Pos(),
						"Acc128 %s released with unfolded terms — ReduceAcc128 must run before ReleaseAcc", obj.Name())
				}
				delete(st.accs, obj)
			}
		}
		return topVal()
	}

	// Same-package annotated contract?
	if contract, ok := fa.contracts[name]; ok && !isOwnRecursion(fa.fn, name) {
		return fa.applyContract(name, contract, call, st, report)
	}

	// Unknown call: evaluate arguments for nested findings; a uint64 result
	// is assumed canonical by repo convention.
	for _, a := range args {
		fa.eval(a, st, report)
	}
	if isUint64Type(fa.pkg, call) {
		return assumedResidue(1)
	}
	return topVal()
}

// isOwnRecursion avoids applying a function's own contract to recursive
// calls with the entry assumptions already in force (sound but confusing in
// reports); the recursive call is treated as unknown instead.
func isOwnRecursion(fd *ast.FuncDecl, name string) bool {
	return fd.Name.Name == name
}

// applyContract checks a call against a same-package //alchemist:domain
// contract: scalar arguments against their declared input domains, slice
// arguments against the callee's entry ceiling, and yields the declared
// return domain.
func (fa *lbFunc) applyContract(name string, contract map[string]domSpec, call *ast.CallExpr, st *lbState, report func(Finding)) absVal {
	decl := fa.declOf(name)
	if decl != nil {
		params := flattenParams(decl)
		for i, a := range call.Args {
			if i >= len(params) {
				break
			}
			dom, ok := contract[params[i]]
			if !ok {
				fa.eval(a, st, report)
				continue
			}
			switch dom.kind {
			case domModulus:
				v := fa.eval(a, st, report)
				if v.kind == avModMul && v.bound != 1 {
					fa.flag(report, a.Pos(), "modulus argument of %s is %d·q, want q", name, v.bound)
				}
			case domResidue:
				if isUint64Type(fa.pkg, a) {
					v := fa.eval(a, st, report).asResidue()
					if v.kind == avResidue && v.known && v.bound > dom.k {
						fa.flag(report, a.Pos(),
							"argument %d of %s is in [0,%dq) but its contract declares %s",
							i+1, name, v.bound, dom)
					}
				} else if r := fa.rootOf(a); r != nil && r.annotated {
					if k := r.loadCeiling(a.Pos()); k > dom.k {
						fa.flag(report, a.Pos(),
							"argument %d of %s holds [0,%dq) values but its contract declares %s",
							i+1, name, k, dom)
					}
				} else {
					fa.eval(a, st, report)
				}
			default:
				fa.eval(a, st, report)
			}
		}
	} else {
		for _, a := range call.Args {
			fa.eval(a, st, report)
		}
	}
	if ret, ok := contract["ret"]; ok && ret.kind == domResidue {
		return knownResidue(ret.k)
	}
	if isUint64Type(fa.pkg, call) {
		return assumedResidue(1)
	}
	return topVal()
}

// declOf finds the same-package FuncDecl with the given name.
func (fa *lbFunc) declOf(name string) *ast.FuncDecl {
	for _, f := range fa.pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// flattenParams lists a declaration's parameter names in call-argument order.
func flattenParams(fd *ast.FuncDecl) []string {
	var out []string
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, "_")
			continue
		}
		for _, n := range field.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

// recordSite reports a proven normalization to the mutation hook. Sites are
// only recorded in the report pass so the fixpoint iterations cannot
// duplicate them.
func (fa *lbFunc) recordSite(call *ast.CallExpr, arg ast.Expr, kind string, report func(Finding)) {
	if report == nil || fa.rule.onNormalize == nil || fa.sites[call.Pos()] {
		return
	}
	fa.sites[call.Pos()] = true
	fa.rule.onNormalize(NormalizeSite{
		File:   fa.pkg.Fset.Position(call.Pos()).Filename,
		Pos:    call.Pos(),
		End:    call.End(),
		ArgPos: arg.Pos(),
		ArgEnd: arg.End(),
		Kind:   kind,
		Fn:     fa.fn.Name.Name,
	})
}

// ---------------------------------------------------------------------------
// 128-bit accumulator vocabulary

// acc128Accumulate handles MulCoeffsLazy128 / MulCoeffsLazy128Auto /
// AddLazy128 in both forms. The Ring-level form (an *Acc128 argument)
// auto-flushes against the ring's true lazyCap, so only dirtiness is
// tracked; the raw SubRing slice form is the caller's responsibility and
// gets the term counter checked against the guaranteed floor.
func (fa *lbFunc) acc128Accumulate(name string, call *ast.CallExpr, st *lbState, report func(Finding)) {
	args := call.Args
	for _, a := range args {
		if tv, ok := fa.pkg.Info.Types[a]; ok && isAcc128Type(tv.Type) {
			if obj := fa.baseObj(a); obj != nil {
				if acc, ok := st.accs[obj]; ok {
					acc.dirty = true
					st.accs[obj] = acc
				}
			}
			for _, other := range args {
				if other != a {
					fa.eval(other, st, report)
				}
			}
			return
		}
	}
	// Raw slice form: locate the lo slice (AddLazy128(a, lo, hi) at index 1,
	// MulCoeffsLazy128(a, b, lo, hi) / MulCoeffsLazy128Auto(a, k, b, lo, hi)
	// at len-2).
	loIdx := len(args) - 2
	if name == "AddLazy128" && len(args) == 3 {
		loIdx = 1
	}
	if loIdx < 0 || loIdx+1 >= len(args) {
		return
	}
	for i, a := range args {
		if i != loIdx && i != loIdx+1 {
			fa.eval(a, st, report)
		}
	}
	for _, i := range []int{loIdx, loIdx + 1} {
		if r := fa.rootOf(args[i]); r != nil && r.activeCeiling(args[i].Pos()) > 0 && r.annotated {
			fa.flag(report, args[i].Pos(),
				"%s accumulates 128-bit words into %s, whose declared domain is bounded — annotate it %s:any",
				name, r.name, r.name)
		}
	}
	obj := fa.baseObj(args[loIdx])
	if obj == nil {
		return
	}
	acc := st.accs[obj]
	acc.terms++
	acc.dirty = true
	if acc.terms > lazyCapFloor {
		fa.flag(report, call.Pos(),
			"%s accumulates term %d into %s without ReduceAcc128 — exceeds the guaranteed lazyCap floor of %d (headroom m·q ≤ 2^64)",
			name, acc.terms, obj.Name(), lazyCapFloor)
		acc.terms = lazyCapFloor + 1 // saturate so the fixpoint terminates
	}
	st.accs[obj] = acc
}

// acc128Reduce handles ReduceAcc128 in both forms: Ring-level
// ReduceAcc128(level, acc, out) folds the accumulator; the raw SubRing form
// ReduceAcc128(lo, hi, out) resets the term counter and deposits canonical
// residues in out.
func (fa *lbFunc) acc128Reduce(call *ast.CallExpr, st *lbState, report func(Finding)) {
	args := call.Args
	if len(args) == 3 {
		if tv, ok := fa.pkg.Info.Types[args[1]]; ok && isAcc128Type(tv.Type) {
			if obj := fa.baseObj(args[1]); obj != nil {
				if acc, ok := st.accs[obj]; ok {
					acc.dirty = false
					acc.terms = 0
					st.accs[obj] = acc
				}
			}
			fa.eval(args[0], st, report)
			return
		}
		// Raw form.
		if obj := fa.baseObj(args[0]); obj != nil {
			delete(st.accs, obj)
		}
		if obj := fa.baseObj(args[1]); obj != nil {
			delete(st.accs, obj)
		}
		return
	}
	for _, a := range args {
		fa.eval(a, st, report)
	}
}

// lbObjOf resolves an identifier to its object (definition or use).
func lbObjOf(p *Package, id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// lbCallName is the bare callee name of a call: the selector for method and
// qualified calls, the identifier for plain function calls. Unlike
// arenalife's callName it does not default method-less calls to a borrow.
func lbCallName(call *ast.CallExpr) string {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

package lint

import (
	"go/token"
	"go/types"
	"testing"
)

// The interval lattice is the soundness core of the lazy-bounds rule: every
// transfer function below must over-approximate the concrete arithmetic.
// These tests pin the algebra separately from the fixture goldens, so a
// lattice regression is reported as the broken operation, not as a confusing
// golden diff.

func TestLazyBoundsJoin(t *testing.T) {
	cases := []struct {
		name string
		a, b absVal
		want absVal
	}{
		{"identical", knownResidue(2), knownResidue(2), knownResidue(2)},
		{"hull", knownResidue(1), knownResidue(4), knownResidue(4)},
		{"top-absorbs", topVal(), knownResidue(1), topVal()},
		{"known-or-assumed", knownResidue(2), assumedResidue(1),
			absVal{kind: avResidue, bound: 2, known: true}},
		{"same-modmul", modMulVal(2), modMulVal(2), modMulVal(2)},
		{"modmul-hull-widens", modMulVal(2), modMulVal(1),
			absVal{kind: avResidue, bound: 3, bias: 1, known: true}},
		{"modmul-with-residue", modMulVal(2), knownResidue(1),
			absVal{kind: avResidue, bound: 3, known: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := joinVals(c.a, c.b); got != c.want {
				t.Errorf("joinVals(%+v, %+v) = %+v, want %+v", c.a, c.b, got, c.want)
			}
			// Join is commutative up to the hull.
			if got := joinVals(c.b, c.a); got != c.want {
				t.Errorf("joinVals(%+v, %+v) = %+v, want %+v", c.b, c.a, got, c.want)
			}
		})
	}
}

func TestLazyBoundsAdd(t *testing.T) {
	cases := []struct {
		name string
		a, b absVal
		want absVal
	}{
		// The Harvey butterfly sum: u < 2q plus v < 2q stays under 4q.
		{"residue-sum", knownResidue(2), knownResidue(2), knownResidue(4)},
		{"assumed-stays-assumed", assumedResidue(1), assumedResidue(1), assumedResidue(2)},
		// u + twoQ shifts BOTH interval ends by exactly 2: [0,2q)+2q = [2q,4q).
		// Widening the exact multiple first would give [0,5q) and break the
		// butterfly difference bound.
		{"residue-plus-exact-multiple", knownResidue(2), modMulVal(2),
			absVal{kind: avResidue, bound: 4, bias: 2, known: true}},
		{"exact-multiple-first", modMulVal(2), knownResidue(2),
			absVal{kind: avResidue, bound: 4, bias: 2, known: true}},
		{"modmul-pair", modMulVal(1), modMulVal(2), modMulVal(3)},
		{"top-poisons", topVal(), knownResidue(1), topVal()},
		{"saturates-to-top", knownResidue(maxBound), knownResidue(1), topVal()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := addVals(c.a, c.b); got != c.want {
				t.Errorf("addVals(%+v, %+v) = %+v, want %+v", c.a, c.b, got, c.want)
			}
		})
	}
}

func TestLazyBoundsSub(t *testing.T) {
	twoQBiased := addVals(knownResidue(2), modMulVal(2)) // u + twoQ = [2q,4q)
	cases := []struct {
		name string
		a, b absVal
		want absVal
	}{
		// The full butterfly chain: (u + twoQ) - v with u,v < 2q lands in
		// [0,4q) — the bias contributed by twoQ absorbs v's bound, so the
		// subtraction cannot wrap.
		{"twoq-biased-butterfly", twoQBiased, knownResidue(2),
			absVal{kind: avResidue, bound: 4, bias: 0, known: true}},
		// Without the bias the subtraction may wrap around 2^64: top.
		{"unbiased-wraps", knownResidue(2), knownResidue(2), topVal()},
		{"partial-bias-wraps", addVals(knownResidue(2), modMulVal(1)), knownResidue(2), topVal()},
		{"residue-minus-exact-multiple", twoQBiased, modMulVal(2),
			absVal{kind: avResidue, bound: 2, bias: 0, known: true}},
		{"exact-multiple-minus-residue", modMulVal(2), knownResidue(1),
			absVal{kind: avResidue, bound: 3, bias: 1, known: true}},
		{"exact-multiple-underflows", modMulVal(1), knownResidue(2), topVal()},
		{"modmul-pair", modMulVal(3), modMulVal(1), modMulVal(2)},
		{"top-poisons", knownResidue(4), topVal(), topVal()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := subVals(c.a, c.b); got != c.want {
				t.Errorf("subVals(%+v, %+v) = %+v, want %+v", c.a, c.b, got, c.want)
			}
		})
	}
}

func TestLazyBoundsMulConst(t *testing.T) {
	cases := []struct {
		name string
		v    absVal
		c    int
		want absVal
	}{
		// twoQ := 2 * q is the canonical use: an exact multiple scales to an
		// exact multiple.
		{"twoq", modMulVal(1), 2, modMulVal(2)},
		{"residue-doubles", knownResidue(2), 2, knownResidue(4)},
		{"zero-drops-relation", modMulVal(1), 0, topVal()},
		{"saturates", modMulVal(1), maxBound + 1, topVal()},
		{"top-stays-top", topVal(), 2, topVal()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := mulConst(c.v, c.c); got != c.want {
				t.Errorf("mulConst(%+v, %d) = %+v, want %+v", c.v, c.c, got, c.want)
			}
		})
	}
}

func TestLazyBoundsCondSub(t *testing.T) {
	cases := []struct {
		name     string
		in       absVal
		k        int
		want     absVal
		narrowed bool
	}{
		// One subtraction of 2q folds the [0,4q) accumulator range to [0,2q).
		{"fold-4q-by-2q", knownResidue(4), 2, knownResidue(2), true},
		// One subtraction of q folds the Shoup product range to canonical.
		{"fold-2q-by-q", knownResidue(2), 1, knownResidue(1), true},
		// Already inside the bound: the call is a no-op, not a proof.
		{"already-tight", knownResidue(2), 2, knownResidue(2), false},
		{"cannot-overshoot", knownResidue(3), 2, knownResidue(2), true},
		// Assumed values narrow but are never counted as proven sites.
		{"assumed-not-proven", assumedResidue(4), 2, assumedResidue(2), false},
		{"top-stays-top", topVal(), 1, topVal(), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, narrowed := condSubVal(c.in, c.k)
			if got != c.want || narrowed != c.narrowed {
				t.Errorf("condSubVal(%+v, %d) = %+v, %v, want %+v, %v",
					c.in, c.k, got, narrowed, c.want, c.narrowed)
			}
		})
	}
}

// TestLazyBoundsAccJoin pins the accumulator half of the state join: term
// counts take the max across paths and dirtiness is an OR, so a fold missing
// on either branch keeps the accumulator live.
func TestLazyBoundsAccJoin(t *testing.T) {
	a := types.NewVar(token.NoPos, nil, "lo", types.NewSlice(types.Typ[types.Uint64]))
	b := types.NewVar(token.NoPos, nil, "other", types.NewSlice(types.Typ[types.Uint64]))

	s := newLBState()
	s.accs[a] = accState{terms: 2, dirty: true}
	o := newLBState()
	o.accs[a] = accState{terms: 3}
	o.accs[b] = accState{dirty: true}

	if !s.join(o) {
		t.Fatal("join reported no change")
	}
	if got := s.accs[a]; got != (accState{terms: 3, dirty: true}) {
		t.Errorf("accs[lo] = %+v, want max-terms dirty-OR {3 true}", got)
	}
	if got := s.accs[b]; got != (accState{dirty: true}) {
		t.Errorf("accs[other] = %+v, want union to keep one-sided accumulators", got)
	}
	if s.join(o.clone()) {
		t.Error("second join of the same state reported a change — fixpoint cannot terminate")
	}
}

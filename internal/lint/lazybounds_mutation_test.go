package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLazyBoundsMutation is the interval analysis' self-test: for every
// normalization call (condSub/condSubMask/reduceOnce) whose narrowing the
// lazy-bounds rule actually used to prove a bound in the real kernel
// packages, splice exactly that call out — replacing it with its value
// argument, so the package still type-checks but the value skips one
// reduction — and assert the rule reports the injected overflow. A surviving
// mutant means the transfer functions have a blind spot on real code, not
// just on fixtures.
func TestLazyBoundsMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("re-type-checks kernel packages once per normalization site; skipped in -short mode")
	}
	root := repoRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	kernels := []string{
		"alchemist/internal/modmath",
		"alchemist/internal/ring",
	}
	total, escaped := 0, 0
	for _, path := range kernels {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		rule := NewLazyBounds("alchemist")
		sites := map[NormalizeSite]bool{}
		rule.onNormalize = func(s NormalizeSite) { sites[s] = true }
		rule.Check(pkg, func(Finding) {})

		if len(sites) == 0 {
			continue
		}
		dir := filepath.Join(root, strings.TrimPrefix(path, "alchemist/"))
		for site := range sites {
			total++
			src, err := os.ReadFile(site.File)
			if err != nil {
				t.Fatal(err)
			}
			callStart := loader.Fset.Position(site.Pos).Offset
			callEnd := loader.Fset.Position(site.End).Offset
			argStart := loader.Fset.Position(site.ArgPos).Offset
			argEnd := loader.Fset.Position(site.ArgEnd).Offset
			mutated := fmt.Sprintf("%s(%s)%s", src[:callStart], src[argStart:argEnd], src[callEnd:])
			overlay := map[string][]byte{filepath.Base(site.File): []byte(mutated)}

			mpkg, err := loader.LoadDirOverlay(dir, path, overlay)
			if err != nil {
				t.Fatalf("%s: mutant at %s does not type-check: %v",
					path, loader.Fset.Position(site.Pos), err)
			}
			var findings []Finding
			NewLazyBounds("alchemist").Check(mpkg, func(f Finding) { findings = append(findings, f) })
			if len(findings) == 0 {
				escaped++
				t.Errorf("mutant escaped: splicing out %s in %s at %s produced no finding",
					site.Kind, site.Fn, loader.Fset.Position(site.Pos))
			}
		}
	}
	if total == 0 {
		t.Fatal("no verified normalization sites found in kernel packages — the onNormalize hook is broken")
	}
	t.Logf("lazy-bounds mutation self-test: %d/%d mutants caught", total-escaped, total)
}

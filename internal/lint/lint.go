// Package lint is alchemist-vet's analysis engine: a repo-specific static
// analyzer built on the stdlib go/ast, go/parser and go/types packages (no
// external module dependencies). It enforces the invariants ordinary go vet
// cannot see — the arithmetic discipline (no raw % where the precomputed
// Barrett/Montgomery/Shoup reducers belong), the randomness discipline (no
// math/rand in scheme packages), the provenance of the paper's architecture
// constants (128 units × 16 cores stay defined in internal/arch), and the
// panic discipline for exported library entry points.
//
// Findings can be silenced at a specific site with a reasoned directive:
//
//	//alchemist:allow <rule> <reason>
//
// placed on (or immediately above) the offending line, or before the package
// clause to cover the whole file. A directive without a reason is itself a
// finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
	Hint string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Analyzer is one vet rule.
type Analyzer interface {
	// Name returns the rule ID used in findings and allow directives.
	Name() string
	// Doc returns a one-line description for the CLI's -rules listing.
	Doc() string
	// Check inspects a type-checked package and reports findings.
	Check(p *Package, report func(Finding))
}

// Package is a parsed and type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	directives []directive
}

// directive is one parsed //alchemist:allow comment.
type directive struct {
	rule     string
	reason   string
	file     string
	line     int  // line the comment sits on
	fileWide bool // appeared before the package clause
	used     bool // suppressed at least one finding this run
}

var directiveRE = regexp.MustCompile(`^//\s*alchemist:allow\s+(\S+)(?:\s+(.*))?$`)

// parseDirectives scans a file's comments for allow directives.
func (p *Package) parseDirectives(f *ast.File) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			m := directiveRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			p.directives = append(p.directives, directive{
				rule:     m[1],
				reason:   strings.TrimSpace(m[2]),
				file:     pos.Filename,
				line:     pos.Line,
				fileWide: c.Pos() < f.Package,
			})
		}
	}
}

// Allowed reports whether rule is silenced at pos: by a file-wide directive,
// or by one on the same line or the line directly above. Every matching
// directive is marked used so the unused-allow rule can flag the stale rest.
func (p *Package) Allowed(rule string, pos token.Pos) bool {
	where := p.Fset.Position(pos)
	ok := false
	for i := range p.directives {
		d := &p.directives[i]
		if d.rule != rule || d.file != where.Filename {
			continue
		}
		if d.fileWide || d.line == where.Line || d.line == where.Line-1 {
			d.used = true
			ok = true
		}
	}
	return ok
}

// Imports reports whether the package imports the given path.
func (p *Package) Imports(path string) bool {
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			if strings.Trim(spec.Path.Value, `"`) == path {
				return true
			}
		}
	}
	return false
}

// checkDirectives validates the package's allow directives themselves:
// every directive must name a known rule and give a reason.
func (p *Package) checkDirectives(known map[string]bool, report func(Finding)) {
	for _, d := range p.directives {
		if !known[d.rule] {
			report(Finding{
				Pos:  token.Position{Filename: d.file, Line: d.line, Column: 1},
				Rule: "directive",
				Msg:  fmt.Sprintf("allow directive names unknown rule %q", d.rule),
				Hint: "valid rules: " + strings.Join(sortedKeys(known), ", "),
			})
		}
		if d.reason == "" {
			report(Finding{
				Pos:  token.Position{Filename: d.file, Line: d.line, Column: 1},
				Rule: "directive",
				Msg:  fmt.Sprintf("allow directive for %q has no reason", d.rule),
				Hint: "write //alchemist:allow " + d.rule + " <why this site is exempt>",
			})
		}
	}
}

// checkUnusedAllow flags stale allow directives — ones that silenced no
// finding in this run — so a suppression cannot outlive the code it excused.
// Directives naming unknown rules are skipped (the directive rule already
// reports those) and reasonless ones are covered the same way; only a
// well-formed directive that suppressed nothing is stale.
func (p *Package) checkUnusedAllow(known map[string]bool, report func(Finding)) {
	for i := range p.directives {
		d := &p.directives[i]
		if d.used || !known[d.rule] || d.reason == "" {
			continue
		}
		report(Finding{
			Pos:  token.Position{Filename: d.file, Line: d.line, Column: 1},
			Rule: "unused-allow",
			Msg:  fmt.Sprintf("allow directive for %q suppresses no finding", d.rule),
			Hint: "the code this directive excused is gone; delete the stale //alchemist:allow",
		})
	}
}

// UnusedAllow is the rule identity for stale-directive findings. The check
// itself runs after every other analyzer has had its chance to mark
// directives used — the runner invokes checkUnusedAllow in its post-pass —
// so this analyzer's Check is a no-op; the type exists to give the rule a
// name, a doc line and a place in the default set.
type UnusedAllow struct{}

// NewUnusedAllow returns the stale-directive rule (repo-wide; directives are
// already per-site, so no scope applies).
func NewUnusedAllow(string) *UnusedAllow { return &UnusedAllow{} }

func (*UnusedAllow) Name() string { return "unused-allow" }

func (*UnusedAllow) Doc() string {
	return "every //alchemist:allow directive still suppresses at least one finding"
}

func (*UnusedAllow) Check(*Package, func(Finding)) {}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// matchAny reports whether s contains any of the given substrings.
func matchAny(s string, subs []string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureRunner returns a runner whose rules treat the fixture package as
// in scope (the production scope lists the real scheme packages).
func fixtureRunner(t *testing.T, l *Loader, fixture string) *Runner {
	t.Helper()
	wr := NewWeakRand("alchemist")
	wr.Scope = append(wr.Scope, "fixture/"+fixture)
	rm := NewRawMod("alchemist")
	rm.Scope = append(rm.Scope, "fixture/"+fixture)
	be := NewBenchEngine("alchemist")
	be.Scope = append(be.Scope, "fixture/"+fixture)
	ew := NewErrsWrap("alchemist")
	ew.Scope = append(ew.Scope, "fixture/"+fixture)
	al := NewArenaLife("alchemist")
	al.Scope = append(al.Scope, "fixture/"+fixture)
	lb := NewLazyBounds("alchemist")
	lb.Scope = append(lb.Scope, "fixture/"+fixture)
	lb.Strict = append(lb.Strict, "fixture/"+fixture)
	return &Runner{
		Loader:    l,
		Analyzers: []Analyzer{wr, rm, NewArchConst("alchemist"), NewPanicDisc("alchemist"), be, ew, NewHotAlloc("alchemist"), al, lb, NewUnusedAllow("alchemist")},
	}
}

// renderFindings formats findings with basenames so goldens are
// machine-independent.
func renderFindings(fs []Finding) string {
	if len(fs) == 0 {
		return "clean\n"
	}
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
	}
	return b.String()
}

func TestFixturesGolden(t *testing.T) {
	fixtures := []string{"weakrand", "rawmod", "archconst", "panicdisc", "directive", "benchengine", "errswrap", "hotalloc", "arenalife", "unusedallow", "lazybounds"}
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			l, err := NewLoader(repoRoot(t))
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
			if err != nil {
				t.Fatal(err)
			}
			got := renderFindings(fixtureRunner(t, l, name).CheckPackage(pkg))
			goldenPath := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run go test -run Golden -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestFixturesFire asserts each of the four analyzers actually fires on its
// fixture — the golden files can't silently go stale to "clean".
func TestFixturesFire(t *testing.T) {
	expect := map[string]string{
		"weakrand":    "weak-rand",
		"rawmod":      "raw-mod",
		"archconst":   "arch-const",
		"panicdisc":   "panic",
		"directive":   "directive",
		"benchengine": "bench-engine",
		"errswrap":    "errs-wrap",
		"hotalloc":    "hot-alloc",
		"arenalife":   "arena-lifetime",
		"unusedallow": "unused-allow",
		"lazybounds":  "lazy-bounds",
	}
	for name, rule := range expect {
		l, err := NewLoader(repoRoot(t))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
		if err != nil {
			t.Fatal(err)
		}
		fired := false
		for _, f := range fixtureRunner(t, l, name).CheckPackage(pkg) {
			if f.Rule == rule {
				fired = true
			}
		}
		if !fired {
			t.Errorf("fixture %s: rule %s did not fire", name, rule)
		}
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestRepoClean is the merge gate: the default rule set must report zero
// findings on the whole repository. If this fails, either fix the flagged
// site or annotate it with a reasoned //alchemist:allow directive.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module; skipped in -short mode")
	}
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := DiscoverPackages(root, l.ModulePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("discovered only %d packages — loader scope looks broken: %v", len(pkgs), pkgs)
	}
	findings, err := NewRunner(l).Run(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s\n    hint: %s", f, f.Hint)
	}
}

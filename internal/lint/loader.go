package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loader parses and type-checks packages. Module-internal import paths are
// resolved against the module tree on disk (the stdlib source importer only
// understands GOROOT/GOPATH, not modules); everything else — i.e. the
// standard library, the only external dependency this repo permits — is
// delegated to the compiler's source importer.
//
// The loader is safe for concurrent Load calls (the parallel runner loads one
// package per worker): each import path gets a single in-flight entry that
// later callers wait on, the token.FileSet is thread-safe by contract, and
// the stdlib source importer — which is not — is serialized behind its own
// mutex.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std   types.Importer
	stdMu sync.Mutex // the source importer is not safe for concurrent use

	mu   sync.Mutex
	pkgs map[string]*loadEntry // in-flight and completed loads by import path
}

// loadEntry is one package load: created under mu, completed once, waited on
// by every other interested goroutine.
type loadEntry struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// NewLoader creates a loader rooted at moduleDir, reading the module path
// from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", moduleDir)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: module,
		ModuleDir:  moduleDir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*loadEntry{},
	}, nil
}

// Import implements types.Importer, routing module-internal paths to the
// module tree and everything else to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// Load parses and type-checks the module-internal package with the given
// import path (results are cached; concurrent callers for the same path share
// one load).
func (l *Loader) Load(importPath string) (*Package, error) {
	l.mu.Lock()
	if e, ok := l.pkgs[importPath]; ok {
		l.mu.Unlock()
		<-e.done
		return e.pkg, e.err
	}
	e := &loadEntry{done: make(chan struct{})}
	l.pkgs[importPath] = e
	l.mu.Unlock()

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	e.pkg, e.err = l.loadDir(dir, importPath, nil)
	close(e.done)
	return e.pkg, e.err
}

// LoadDir parses and type-checks the package in dir under the given import
// path, without touching the module cache. Used by tests to load fixture
// packages from testdata.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.loadDir(dir, importPath, nil)
}

// LoadDirOverlay is LoadDir with source substitution: files whose base name
// appears in overlay are type-checked with the given content instead of the
// on-disk bytes. The mutation self-test uses this to re-check a kernel
// package with a single Release statement deleted, without writing to the
// tree. The result is never cached, so the poisoned package cannot leak into
// other loads (imports still resolve against the pristine cache).
func (l *Loader) LoadDirOverlay(dir, importPath string, overlay map[string][]byte) (*Package, error) {
	return l.loadDir(dir, importPath, overlay)
}

func (l *Loader) loadDir(dir, importPath string, overlay map[string][]byte) (*Package, error) {
	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	p := &Package{PkgPath: importPath, Fset: l.Fset}
	for _, name := range names {
		var src any
		if content, ok := overlay[name]; ok {
			src = content
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		p.Files = append(p.Files, f)
		p.parseDirectives(f)
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, p.Files, p.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	p.Types = tpkg
	return p, nil
}

// goSourceFiles lists the non-test Go files in dir that build on the host
// platform, sorted for determinism. Build constraints (//go:build lines and
// _GOOS/_GOARCH filename suffixes) are honored via go/build, so a package
// carrying per-arch kernel variants — e.g. tfhe's fftkern_amd64.go vs
// fftkern_generic.go, which declare the same symbols under disjoint tags —
// type-checks exactly like `go build` would see it. Test files are outside
// the gate's scope by design: the invariants protect library code, and tests
// may inject any randomness or arithmetic they need.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// DiscoverPackages walks the module tree and returns the import paths of all
// packages containing at least one non-test Go file. testdata and dot
// directories are skipped, matching the go tool's convention.
func DiscoverPackages(moduleDir, modulePath string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != moduleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goSourceFiles(path)
		if err != nil || len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(moduleDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, modulePath)
		} else {
			out = append(out, modulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicDisc implements the panic-discipline rule: exported functions and
// methods in library packages must not panic silently. A panic is legitimate
// only as a validated-precondition contract, and a contract must be visible:
// either the function is a Must* helper (the Go convention for
// panic-on-error), or its doc comment says it panics, or the site carries an
// //alchemist:allow panic <reason> directive. Everything else should return
// an error — a library that panics on bad input takes down the whole serving
// process the ROADMAP is building toward.
type PanicDisc struct{}

// NewPanicDisc returns the rule (main packages are skipped automatically).
func NewPanicDisc(string) *PanicDisc { return &PanicDisc{} }

func (*PanicDisc) Name() string { return "panic" }

func (*PanicDisc) Doc() string {
	return "exported library functions may panic only with a documented contract (doc says \"panics\" or name is Must*)"
}

func (d *PanicDisc) Check(p *Package, report func(Finding)) {
	if p.Types != nil && p.Types.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if strings.HasPrefix(fn.Name.Name, "Must") {
				continue
			}
			if fn.Doc != nil && strings.Contains(strings.ToLower(fn.Doc.Text()), "panic") {
				continue
			}
			funcLine := fn.Pos()
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				// Confirm it is the builtin, not a shadowing identifier.
				if obj := p.Info.Uses[id]; obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
						return true
					}
				}
				if p.Allowed(d.Name(), call.Pos()) || p.Allowed(d.Name(), funcLine) {
					return true
				}
				report(Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: d.Name(),
					Msg:  "panic in exported " + fn.Name.Name + " without a documented contract",
					Hint: "return an error, document the panic in the doc comment, rename to Must*, or annotate //alchemist:allow panic <reason>",
				})
				return true
			})
		}
	}
}

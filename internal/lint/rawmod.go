package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// RawMod implements the no-raw-mod rule: in the hot-path kernel package
// (internal/ring) and in any package that already imports internal/modmath,
// a binary % on uint64 operands is a discipline violation — the precomputed
// Barrett/Montgomery/Shoup reducers exist precisely so the inner loops never
// pay for a hardware divide, and the Meta-OP cost model (3 raw mults per
// modular mult) assumes they are used. Power-of-two constant divisors are
// exempt (they compile to a mask), as is internal/modmath itself, which is
// where the reducers are implemented.
type RawMod struct {
	// Scope lists import-path substrings that are always in scope.
	Scope []string
	// ReducerImport marks a package as in scope when imported.
	ReducerImport string
	// Exempt lists import-path substrings never in scope.
	Exempt []string
}

// NewRawMod returns the rule scoped to internal/ring plus modmath importers.
func NewRawMod(module string) *RawMod {
	return &RawMod{
		Scope:         []string{module + "/internal/ring"},
		ReducerImport: module + "/internal/modmath",
		Exempt:        []string{module + "/internal/modmath"},
	}
}

func (*RawMod) Name() string { return "raw-mod" }

func (*RawMod) Doc() string {
	return "no raw % on uint64 in internal/ring or modmath-importing packages; use the precomputed reducers"
}

func (r *RawMod) Check(p *Package, report func(Finding)) {
	if matchAny(p.PkgPath, r.Exempt) {
		return
	}
	if !matchAny(p.PkgPath, r.Scope) && !(r.ReducerImport != "" && p.Imports(r.ReducerImport)) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op == token.REM {
					r.checkSite(p, e.X, e.Y, e.OpPos, report)
				}
			case *ast.AssignStmt:
				if e.Tok == token.REM_ASSIGN && len(e.Lhs) == 1 && len(e.Rhs) == 1 {
					r.checkSite(p, e.Lhs[0], e.Rhs[0], e.TokPos, report)
				}
			}
			return true
		})
	}
}

func (r *RawMod) checkSite(p *Package, x, y ast.Expr, opPos token.Pos, report func(Finding)) {
	if !isUint64(p, x) || !isUint64(p, y) {
		return
	}
	if isPowerOfTwoConst(p, y) {
		return
	}
	if p.Allowed(r.Name(), opPos) {
		return
	}
	report(Finding{
		Pos:  p.Fset.Position(opPos),
		Rule: r.Name(),
		Msg:  "raw % on uint64 operands in hot-path package " + p.PkgPath,
		Hint: "use modmath.Barrett/Montgomery/MulModShoup, SubRing.ReduceWord or modmath.ReduceSigned, or annotate //alchemist:allow raw-mod <reason>",
	})
}

func isUint64(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	// Untyped constants only count when they would default to a uint64
	// context; the typed-operand side decides, so require the concrete kind.
	return b.Kind() == types.Uint64
}

func isPowerOfTwoConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	u, ok := constant.Uint64Val(tv.Value)
	return ok && u > 0 && u&(u-1) == 0
}

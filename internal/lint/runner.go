package lint

import (
	"sort"
)

// DefaultAnalyzers returns the full rule set for a module.
func DefaultAnalyzers(module string) []Analyzer {
	return []Analyzer{
		NewWeakRand(module),
		NewRawMod(module),
		NewArchConst(module),
		NewPanicDisc(module),
		NewBenchEngine(module),
		NewErrsWrap(module),
		NewHotAlloc(module),
	}
}

// Runner drives a set of analyzers over packages.
type Runner struct {
	Loader    *Loader
	Analyzers []Analyzer
}

// NewRunner returns a runner with the default rule set for the loader's
// module.
func NewRunner(l *Loader) *Runner {
	return &Runner{Loader: l, Analyzers: DefaultAnalyzers(l.ModulePath)}
}

// Run loads each import path and applies every analyzer, returning findings
// sorted by position. Directive hygiene (unknown rules, missing reasons) is
// checked as a built-in fifth rule.
func (r *Runner) Run(importPaths []string) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range r.Analyzers {
		known[a.Name()] = true
	}
	var findings []Finding
	report := func(f Finding) { findings = append(findings, f) }
	for _, path := range importPaths {
		pkg, err := r.Loader.Load(path)
		if err != nil {
			return nil, err
		}
		for _, a := range r.Analyzers {
			a.Check(pkg, report)
		}
		pkg.checkDirectives(known, report)
	}
	SortFindings(findings)
	return findings, nil
}

// CheckPackage applies the runner's analyzers to an already-loaded package
// (fixture tests use this with LoadDir).
func (r *Runner) CheckPackage(pkg *Package) []Finding {
	known := map[string]bool{}
	for _, a := range r.Analyzers {
		known[a.Name()] = true
	}
	var findings []Finding
	report := func(f Finding) { findings = append(findings, f) }
	for _, a := range r.Analyzers {
		a.Check(pkg, report)
	}
	pkg.checkDirectives(known, report)
	SortFindings(findings)
	return findings
}

// SortFindings orders findings by file, line, column, then rule.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

package lint

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// DefaultAnalyzers returns the full rule set for a module.
func DefaultAnalyzers(module string) []Analyzer {
	return []Analyzer{
		NewWeakRand(module),
		NewRawMod(module),
		NewArchConst(module),
		NewPanicDisc(module),
		NewBenchEngine(module),
		NewErrsWrap(module),
		NewHotAlloc(module),
		NewArenaLife(module),
		NewLazyBounds(module),
		NewUnusedAllow(module),
	}
}

// Runner drives a set of analyzers over packages.
type Runner struct {
	Loader    *Loader
	Analyzers []Analyzer

	// Workers bounds the package-level fan-out; 0 means GOMAXPROCS.
	Workers int

	// KnownRules is the rule-name universe for directive validation; nil
	// derives it from Analyzers. Filter sets it to the full default set so
	// a filtered run still accepts //alchemist:allow directives for rules
	// it is not running.
	KnownRules map[string]bool

	filtered bool
}

// Filter restricts the runner to the named rules (CI and the mutation
// self-tests use this to run one heavy rule in isolation). The directive
// universe keeps every default rule name, and the unused-allow sweep is
// skipped: with most rules not running, directive staleness cannot be
// judged, so a filtered run neither reports nor miscounts it.
func (r *Runner) Filter(names []string) error {
	full := map[string]bool{}
	for _, a := range r.Analyzers {
		full[a.Name()] = true
	}
	want := map[string]bool{}
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !full[n] {
			return fmt.Errorf("lint: unknown rule %q (valid: %s)", n, strings.Join(sortedKeys(full), ", "))
		}
		want[n] = true
	}
	if len(want) == 0 {
		return fmt.Errorf("lint: empty rule filter")
	}
	var kept []Analyzer
	for _, a := range r.Analyzers {
		if want[a.Name()] {
			kept = append(kept, a)
		}
	}
	r.Analyzers = kept
	r.KnownRules = full
	r.filtered = true
	return nil
}

// NewRunner returns a runner with the default rule set for the loader's
// module.
func NewRunner(l *Loader) *Runner {
	return &Runner{Loader: l, Analyzers: DefaultAnalyzers(l.ModulePath)}
}

// Run loads each import path and applies every analyzer, returning findings
// sorted by position. Packages are checked concurrently under a bounded
// worker pool (the same semaphore fan-out internal/engine uses for lane
// dispatch); each package is owned by exactly one worker, so the per-package
// directive bookkeeping needs no locking, and the per-package finding slices
// are merged in input order before the final sort, keeping the output
// byte-identical to a serial run.
func (r *Runner) Run(importPaths []string) ([]Finding, error) {
	known := r.knownRules()
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(importPaths) {
		workers = len(importPaths)
	}
	if workers < 1 {
		workers = 1
	}
	results := make([][]Finding, len(importPaths))
	errs := make([]error, len(importPaths))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, path := range importPaths {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, path string) {
			defer wg.Done()
			defer func() { <-sem }()
			pkg, err := r.Loader.Load(path)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = r.checkLoaded(pkg, known)
		}(i, path)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var findings []Finding
	for _, fs := range results {
		findings = append(findings, fs...)
	}
	SortFindings(findings)
	return findings, nil
}

// CheckPackage applies the runner's analyzers to an already-loaded package
// (fixture tests use this with LoadDir).
func (r *Runner) CheckPackage(pkg *Package) []Finding {
	findings := r.checkLoaded(pkg, r.knownRules())
	SortFindings(findings)
	return findings
}

// knownRules is the directive-validation universe for this run.
func (r *Runner) knownRules() map[string]bool {
	if r.KnownRules != nil {
		return r.KnownRules
	}
	known := map[string]bool{}
	for _, a := range r.Analyzers {
		known[a.Name()] = true
	}
	return known
}

// checkLoaded runs every analyzer plus the directive post-passes over one
// package. The unused-allow check must come last: only after every rule has
// had its chance to mark a directive used can staleness be judged.
func (r *Runner) checkLoaded(pkg *Package, known map[string]bool) []Finding {
	var findings []Finding
	report := func(f Finding) { findings = append(findings, f) }
	for _, a := range r.Analyzers {
		a.Check(pkg, report)
	}
	pkg.checkDirectives(known, report)
	if known["unused-allow"] && !r.filtered {
		pkg.checkUnusedAllow(known, report)
	}
	return findings
}

// SortFindings orders findings by file, line, column, rule, then message, so
// runs are deterministic regardless of worker interleaving.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

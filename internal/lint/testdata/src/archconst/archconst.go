// Package archconst is a fixture for the arch-constant-provenance rule.
package archconst

// config mimics re-hardcoding the paper's design point.
type config struct {
	Units int
	Cores int
}

// BadConfig re-hardcodes 128 units and 16 cores (both flagged).
func BadConfig() config {
	return config{
		Units: 128,
		Cores: 16,
	}
}

// BadLocals binds the magic values to arch-flavored names (flagged).
func BadLocals() int {
	units := 128
	totalCores := 2048
	return units + totalCores
}

// InnocentUses keeps the same values under non-architectural names (quiet).
func InnocentUses() int {
	ringDegree := 128
	batch := 16
	return ringDegree + batch
}

// Annotated carries a reasoned directive.
func Annotated() int {
	coreEstimate := 2048 //alchemist:allow arch-const fixture demonstrates a reasoned exemption
	return coreEstimate
}

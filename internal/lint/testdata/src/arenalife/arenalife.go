// Package arenalife exercises the arena-lifetime dataflow rule: every defect
// class the rule must catch (leak, double-release, use-after-release,
// goroutine escape, conditional leak, unannotated transfers) next to the
// clean shapes it must accept (defer, branched release, annotated hand-offs,
// the accumulator role swap).
package arenalife

// Poly stands in for ring.Poly.
type Poly struct{ C []uint64 }

// Ring mimics the arena surface: a Borrow-prefixed method mints a pooled
// value, a Release-prefixed method consumes one.
type Ring struct{}

func (r *Ring) Borrow(level int) *Poly { return &Poly{C: make([]uint64, 8)} }

func (r *Ring) Release(p *Poly) {}

var sink *Poly

// Leak borrows and never releases.
func Leak(r *Ring) {
	p := r.Borrow(0)
	p.C[0] = 1
}

// DoubleRelease frees the same poly twice.
func DoubleRelease(r *Ring) {
	p := r.Borrow(0)
	r.Release(p)
	r.Release(p)
}

// UseAfterRelease touches the buffer after handing it back.
func UseAfterRelease(r *Ring) {
	p := r.Borrow(0)
	r.Release(p)
	p.C[0] = 2
}

// GoroutineEscape captures a live pooled value in a goroutine.
func GoroutineEscape(r *Ring) {
	p := r.Borrow(0)
	go func() { p.C[0] = 3 }()
	r.Release(p)
}

// ConditionalLeak releases on the happy path only; the error branch leaks.
func ConditionalLeak(r *Ring, fail bool) int {
	p := r.Borrow(0)
	if fail {
		return -1
	}
	r.Release(p)
	return 0
}

// PanicLeak releases on the fall-through path but panics past it.
func PanicLeak(r *Ring, bad bool) {
	p := r.Borrow(0)
	if bad {
		panic("no defer covers this exit")
	}
	r.Release(p)
}

// ReturnEscape hands the pooled value to the caller unannotated.
func ReturnEscape(r *Ring) *Poly {
	p := r.Borrow(0)
	return p
}

// StoreEscape parks the pooled value in a global.
func StoreEscape(r *Ring) {
	sink = r.Borrow(0)
}

// Discard drops the borrow result on the floor.
func Discard(r *Ring) {
	_ = r.Borrow(0)
}

// OverwriteLeak rebinds the variable while the first borrow is live.
func OverwriteLeak(r *Ring) {
	p := r.Borrow(0)
	p = r.Borrow(1)
	r.Release(p)
}

// DoubleDefer schedules the same release twice.
func DoubleDefer(r *Ring) {
	p := r.Borrow(0)
	defer r.Release(p)
	r.Release(p)
}

// --- clean shapes: nothing below may fire --------------------------------

// DeferRelease is the canonical early-return-safe shape.
func DeferRelease(r *Ring, fail bool) int {
	p := r.Borrow(0)
	defer r.Release(p)
	if fail {
		return -1
	}
	p.C[0] = 4
	return 0
}

// DeferClosureRelease releases inside a deferred closure.
func DeferClosureRelease(r *Ring) {
	p := r.Borrow(0)
	q := r.Borrow(1)
	defer func() {
		r.Release(p)
		r.Release(q)
	}()
	p.C[0] = 5
}

// BranchedRelease frees on every explicit path.
func BranchedRelease(r *Ring, cond bool) {
	p := r.Borrow(0)
	if cond {
		p.C[0] = 6
		r.Release(p)
		return
	}
	r.Release(p)
}

// LoopRelease borrows and releases once per iteration.
func LoopRelease(r *Ring, n int) {
	for i := 0; i < n; i++ {
		p := r.Borrow(i)
		p.C[0] = uint64(i)
		r.Release(p)
	}
}

// AnnotatedTransfer documents the hand-off to the caller.
func AnnotatedTransfer(r *Ring) *Poly {
	p := r.Borrow(0)
	return p //alchemist:owns the caller releases the transferred poly
}

// AnnotatedStore documents the hand-off into a container.
func AnnotatedStore(r *Ring, out []*Poly) {
	out[0] = r.Borrow(0) //alchemist:owns the slice owner releases every element
}

// RoleSwap mirrors the blind-rotate accumulator swap: after the loop one of
// the two variables holds the pooled value, and the single release balances
// the arena whichever it is.
func RoleSwap(r *Ring, n int) {
	acc := &Poly{}
	next := r.Borrow(0)
	for i := 0; i < n; i++ {
		acc, next = next, acc
	}
	r.Release(next)
	_ = acc //alchemist:owns parity decides which poly stayed pooled; the release above balances the arena
}

// --- scheduler shapes: the limb-scheduler borrow discipline ---------------

// Job stands in for the scheduler's op-coded job: a recycled descriptor
// whose fields point at operands for helper goroutines.
type Job struct{ Conv *Poly }

var jobSink *Job

// SchedulerShareThenRelease is the production ModDown shape: the caller
// borrows scratch, hands it to the partitioned kernel as a plain parameter
// (the callee fills a job and waits for helpers — parameters carry no
// release obligation), then releases after the parallel section completes.
func SchedulerShareThenRelease(r *Ring, n int) {
	conv := r.Borrow(n)
	runPartitioned(r, conv)
	r.Release(conv)
}

// runPartitioned models the dispatch helper: conv is a parameter, so the
// borrow obligation stays with the caller.
func runPartitioned(r *Ring, conv *Poly) {
	conv.C[0] = 7
}

// SchedulerCancelClean covers the cancellation path with a defer, so the
// early return releases too.
func SchedulerCancelClean(r *Ring, canceled bool) {
	conv := r.Borrow(0)
	defer r.Release(conv)
	if canceled {
		return
	}
	runPartitioned(r, conv)
}

// SchedulerCancelLeak bails out of a canceled dispatch before the release:
// the cancellation path leaks the scratch.
func SchedulerCancelLeak(r *Ring, canceled bool) {
	conv := r.Borrow(0)
	if canceled {
		return
	}
	runPartitioned(r, conv)
	r.Release(conv)
}

// SchedulerJobEscape parks a borrowed poly in a job that outlives the
// function (the job is recycled on a free list; nothing releases the poly).
func SchedulerJobEscape(r *Ring) {
	jobSink = &Job{Conv: r.Borrow(0)}
}

// SchedulerJobAnnotated documents the same hand-off: the job's completer
// inherits the release obligation.
func SchedulerJobAnnotated(r *Ring) {
	jobSink = &Job{Conv: r.Borrow(0)} //alchemist:owns the job completer releases Conv when the parallel section drains
}

// SchedulerHelperEscape captures live scratch in a spawned helper while the
// caller releases concurrently — the race the scheduler's barrier (caller
// waits for outstanding partitions before Release) exists to prevent.
func SchedulerHelperEscape(r *Ring) {
	conv := r.Borrow(0)
	go runPartitioned(r, conv)
	r.Release(conv)
}

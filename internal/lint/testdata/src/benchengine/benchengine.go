// Package benchengine is a fixture for the bench-engine rule.
package benchengine

import (
	"alchemist/internal/arch"
	"alchemist/internal/baseline"
	"alchemist/internal/sim"
	"alchemist/internal/trace"
)

// DirectSim calls the Alchemist simulator directly (flagged).
func DirectSim(cfg arch.Config, g *trace.Graph) (sim.Result, error) {
	return sim.Simulate(cfg, g)
}

// DirectBaseline calls the baseline simulator directly (flagged).
func DirectBaseline(cfg baseline.Config, g *trace.Graph) (baseline.Result, error) {
	return baseline.Simulate(cfg, g)
}

// evaluator mimics the bench.Ctx shape: a method named Simulate on a local
// type is out of scope for the rule.
type evaluator struct{}

func (evaluator) Simulate(cfg arch.Config, g *trace.Graph) error { return nil }

// ThroughHelper goes through a local evaluator — not flagged.
func ThroughHelper(cfg arch.Config, g *trace.Graph) error {
	var e evaluator
	return e.Simulate(cfg, g)
}

// Annotated carries a reasoned directive.
func Annotated(cfg arch.Config, g *trace.Graph) (sim.Result, error) {
	//alchemist:allow bench-engine fixture demonstrates a reasoned exemption
	return sim.Simulate(cfg, g)
}

// Package directive is a fixture for allow-directive hygiene: unknown rule
// names and missing reasons are themselves findings.
package directive

// BadRule references a rule that does not exist.
func BadRule(a, q uint64) uint64 {
	return a % q //alchemist:allow no-such-rule this rule name is wrong
}

// NoReason omits the mandatory justification.
func NoReason(a, q uint64) uint64 {
	return a % q //alchemist:allow raw-mod
}

// Package errswrap is the errs-wrap fixture: it imports the sentinel
// package, so every error it constructs must wrap with %w.
package errswrap

import (
	"errors"
	"fmt"

	"alchemist/internal/errs"
)

// BadNew builds an unclassifiable error.
func BadNew() error { return errors.New("boom") }

// BadErrorf formats without wrapping anything.
func BadErrorf(n int) error { return fmt.Errorf("bad shape %d", n) }

// BadEscapedPercent: %% is a literal percent, not a wrap verb.
func BadEscapedPercent() error { return fmt.Errorf("100%% wrong") }

// GoodSentinel wraps a shared sentinel.
func GoodSentinel() error { return fmt.Errorf("validate: %w", errs.ErrBadConfig) }

// GoodChain re-wraps an inner error, keeping the chain intact.
func GoodChain(err error) error { return fmt.Errorf("outer: %w", err) }

// GoodDouble wraps a sentinel and an inner error.
func GoodDouble(err error) error { return fmt.Errorf("%w: %w", errs.ErrTimeout, err) }

// AllowedNew is exempt with a reasoned directive.
func AllowedNew() error {
	//alchemist:allow errs-wrap terminal message with no class; callers only log it
	return errors.New("allowed terminal error")
}

// DynamicFormat is outside the rule's reach: the format is not a literal.
func DynamicFormat(f string) error { return fmt.Errorf(f) }

// Package hotalloc is a fixture for the hot-alloc rule.
package hotalloc

// pool stands in for the real ring arena in this fixture.
var pool [][]uint64

func borrow(n int) []uint64 {
	if len(pool) > 0 {
		b := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		return b[:n]
	}
	return make([]uint64, n)
}

// BadKernel allocates degree-sized scratch inside a hot function (flagged).
//
//alchemist:hot
func BadKernel(a []uint64) []uint64 {
	tmp := make([]uint64, len(a)) // flagged
	copy(tmp, a)
	return tmp
}

// BadNested allocates inside a closure within a hot function (flagged).
//
//alchemist:hot
func BadNested(a []uint64) {
	f := func() []uint64 { return make([]uint64, len(a)) }
	_ = f()
}

// ColdWrapper allocates the return value outside any hot annotation — the
// sanctioned wrapper pattern, not flagged.
func ColdWrapper(a []uint64) []uint64 {
	out := make([]uint64, len(a))
	HotInto(a, out)
	return out
}

// HotInto writes into caller scratch and borrows the rest (clean).
//
//alchemist:hot
func HotInto(a, out []uint64) {
	tmp := borrow(len(a))
	copy(tmp, a)
	copy(out, tmp)
	pool = append(pool, tmp)
}

// HotOtherType allocates a non-uint64 slice — outside the rule's currency,
// not flagged.
//
//alchemist:hot
func HotOtherType(n int) []int32 {
	return make([]int32, n)
}

// HotAllowed carries a reasoned exemption (clean).
//
//alchemist:hot
func HotAllowed(n int) []uint64 {
	return make([]uint64, n) //alchemist:allow hot-alloc fixture demonstrates a reasoned cold-path exemption
}

// BadHeaderTable allocates a per-channel header table over degree-sized rows
// inside a hot function — the digit-batched conversion regression (flagged).
//
//alchemist:hot
func BadHeaderTable(rows, n int) [][]uint64 {
	out := make([][]uint64, rows) // flagged
	for i := range out {
		out[i] = borrow(n)
	}
	return out
}

// BadDeferLoop defers the scratch release inside the per-channel loop: each
// iteration heap-allocates a defer record, the silent allocs-per-op
// regression the gather-accumulate kernels hit (flagged).
//
//alchemist:hot
func BadDeferLoop(chans [][]uint64) {
	for _, c := range chans {
		tmp := borrow(len(c))
		defer func() { pool = append(pool, tmp) }() // flagged
		copy(tmp, c)
	}
}

// HotDeferOnce defers a single release outside any loop — open-coded by the
// compiler, no per-op allocation (clean).
//
//alchemist:hot
func HotDeferOnce(a []uint64) {
	tmp := borrow(len(a))
	defer func() { pool = append(pool, tmp) }()
	copy(tmp, a)
}

// HotClosureDefer invokes a closure per iteration whose defer is scoped to
// the closure call, not accumulated across the loop (clean).
//
//alchemist:hot
func HotClosureDefer(chans [][]uint64) {
	for _, c := range chans {
		func() {
			tmp := borrow(len(c))
			defer func() { pool = append(pool, tmp) }()
			copy(tmp, c)
		}()
	}
}

// BadAsmHot puts the hot annotation on a bodyless assembly-style declaration
// where the rule cannot see the instruction stream; it belongs on the Go
// dispatch wrapper (flagged).
//
//alchemist:hot
func BadAsmHot(dst, src []uint64, q uint64)

// vecDispatch is the sanctioned shape: the Go wrapper that borrows scratch
// and calls the kernel carries the annotation (clean).
//
//alchemist:hot
func vecDispatch(dst, src []uint64, q uint64) {
	tmp := borrow(len(src))
	copy(tmp, src)
	BadAsmHot(dst, tmp, q)
	pool = append(pool, tmp)
}

// Package hotalloc is a fixture for the hot-alloc rule.
package hotalloc

// pool stands in for the real ring arena in this fixture.
var pool [][]uint64

func borrow(n int) []uint64 {
	if len(pool) > 0 {
		b := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		return b[:n]
	}
	return make([]uint64, n)
}

// BadKernel allocates degree-sized scratch inside a hot function (flagged).
//
//alchemist:hot
func BadKernel(a []uint64) []uint64 {
	tmp := make([]uint64, len(a)) // flagged
	copy(tmp, a)
	return tmp
}

// BadNested allocates inside a closure within a hot function (flagged).
//
//alchemist:hot
func BadNested(a []uint64) {
	f := func() []uint64 { return make([]uint64, len(a)) }
	_ = f()
}

// ColdWrapper allocates the return value outside any hot annotation — the
// sanctioned wrapper pattern, not flagged.
func ColdWrapper(a []uint64) []uint64 {
	out := make([]uint64, len(a))
	HotInto(a, out)
	return out
}

// HotInto writes into caller scratch and borrows the rest (clean).
//
//alchemist:hot
func HotInto(a, out []uint64) {
	tmp := borrow(len(a))
	copy(tmp, a)
	copy(out, tmp)
	pool = append(pool, tmp)
}

// HotOtherType allocates a non-uint64 slice — outside the rule's currency,
// not flagged.
//
//alchemist:hot
func HotOtherType(n int) []int32 {
	return make([]int32, n)
}

// HotAllowed carries a reasoned exemption (clean).
//
//alchemist:hot
func HotAllowed(n int) []uint64 {
	return make([]uint64, n) //alchemist:allow hot-alloc fixture demonstrates a reasoned cold-path exemption
}

// BadHeaderTable allocates a per-channel header table over degree-sized rows
// inside a hot function — the digit-batched conversion regression (flagged).
//
//alchemist:hot
func BadHeaderTable(rows, n int) [][]uint64 {
	out := make([][]uint64, rows) // flagged
	for i := range out {
		out[i] = borrow(n)
	}
	return out
}

// Package lazybounds exercises the lazy-bounds interval rule: the four
// defect classes (lazy value into a canonical call site, missing
// normalization before store, accumulation past the guaranteed headroom,
// undeclared non-canonical contracts) next to the clean shapes the rule must
// accept (butterfly ladders, early-reduce passes, chunked 128-bit
// accumulation), plus the annotation-grammar findings (stale entries,
// malformed domains, floating directives, unprovable contracts).
package lazybounds

// ---------------------------------------------------------------------------
// Vocabulary stubs. The rule dispatches on call names, so these local stands
// stand in for modmath/ring; the table-pinned contracts are hard-coded and
// the bodies are never analyzed.

// MulModShoupLazy mirrors the pinned modmath contract.
//
//alchemist:domain a:[0,4q) w:[0,q) q:modulus ret:[0,2q)
func MulModShoupLazy(a, w, wShoup, q uint64) uint64 { return a*w - wShoup*q }

func condSub(x, q uint64) uint64 {
	if x >= q {
		x -= q
	}
	return x
}

func condSubMask(x, q uint64) uint64 {
	d := x - q
	return d + (q & uint64(int64(d)>>63))
}

func reduceOnce(x, twoQ, q uint64) uint64 { return condSub(condSub(x, twoQ), q) }

func AddMod(a, b, q uint64) uint64 {
	s := a + b
	if s >= q {
		s -= q
	}
	return s
}

// NTTLazy stands in for the transform entry points: canonical input required.
func NTTLazy(p []uint64) {}

// Acc128 stands in for ring.Acc128; Ring for the arena-backed Ring form.
type Acc128 struct{ lo, hi []uint64 }

type Ring struct{}

func (Ring) BorrowAcc(level int) Acc128                             { return Acc128{} }
func (Ring) ReleaseAcc(acc *Acc128)                                 {}
func (Ring) MulCoeffsLazy128(level int, a, b []uint64, acc *Acc128) {}
func (Ring) ReduceAcc128(level int, acc *Acc128, out []uint64)      {}

// AddLazy128 is the raw slice form: lo:hi accumulate unreduced 128-bit words.
//
//alchemist:domain lo:any hi:any
func AddLazy128(a, lo, hi []uint64) {}

// ReduceAcc128 is the raw fold: deposits canonical residues into out.
//
//alchemist:domain lo:any hi:any
func ReduceAcc128(lo, hi, out []uint64) {}

// ---------------------------------------------------------------------------
// Defect class (a): lazy values into call sites that declare tighter domains.

// canonicalOnly accepts only fully reduced residues.
//
//alchemist:domain x:[0,q) q:modulus ret:[0,q)
func canonicalOnly(x, q uint64) uint64 { return x }

// BadCallArg feeds a lazy [0,2q) product into a canonical-only callee.
//
//alchemist:domain p:[0,q) w:[0,q) q:modulus
func BadCallArg(p []uint64, w, ws, q uint64) {
	for j := range p {
		v := MulModShoupLazy(p[j], w, ws, q)
		p[j] = canonicalOnly(v, q)
	}
}

// BadTransformInput hands a lazy-domain slice to the canonical-input NTT.
//
//alchemist:domain p:[0,2q)
func BadTransformInput(p []uint64) {
	NTTLazy(p)
}

// ---------------------------------------------------------------------------
// Defect class (b): missing normalization before a canonical-domain store.

// BadStore writes a lazy product into a canonical-domain slice.
//
//alchemist:domain p:[0,q) w:[0,q) q:modulus
func BadStore(p []uint64, w, ws, q uint64) {
	for j := range p {
		p[j] = MulModShoupLazy(p[j], w, ws, q)
	}
}

// WrongModulusSub subtracts something that is not a known multiple of the
// live modulus, so the conditional subtraction proves nothing.
//
//alchemist:domain p:[0,q) w:[0,q) q:modulus
func WrongModulusSub(p []uint64, w, ws, q, r uint64) {
	for j := range p {
		v := MulModShoupLazy(p[j], w, ws, q)
		p[j] = condSub(v, r)
	}
}

// BadRegionLeak widens p in place and exits without restoring the contract.
//
//alchemist:domain p:[0,q) w:[0,q) q:modulus
func BadRegionLeak(p []uint64, w, ws, q uint64) {
	twoQ := 2 * q
	//alchemist:domain p:[0,4q)
	for j := range p {
		u := condSub(p[j], twoQ)
		v := MulModShoupLazy(p[j], w, ws, q)
		p[j] = u + v
	}
}

// ---------------------------------------------------------------------------
// Defect class (c): 128-bit accumulation past the guaranteed headroom.

// BadHeadroom accumulates a fifth term past the lazyCap floor of four.
func BadHeadroom(a, lo, hi, out []uint64) {
	AddLazy128(a, lo, hi)
	AddLazy128(a, lo, hi)
	AddLazy128(a, lo, hi)
	AddLazy128(a, lo, hi)
	AddLazy128(a, lo, hi)
	ReduceAcc128(lo, hi, out)
}

// BadLoopAcc accumulates an unbounded number of terms before folding.
func BadLoopAcc(a, lo, hi []uint64, n int) {
	for i := 0; i < n; i++ {
		AddLazy128(a, lo, hi)
	}
	ReduceAcc128(lo, hi, a)
}

// BadExitDirty never folds the accumulator at all.
func BadExitDirty(a, lo, hi []uint64) {
	AddLazy128(a, lo, hi)
}

// BadAccTarget accumulates raw 128-bit words into a slice whose declared
// domain promises canonical residues.
//
//alchemist:domain lo:[0,q)
func BadAccTarget(a, lo, hi []uint64) {
	AddLazy128(a, lo, hi)
	ReduceAcc128(lo, hi, lo)
}

// BadRelease returns a dirty accumulator to the arena.
func BadRelease(r Ring, a, b []uint64) {
	acc := r.BorrowAcc(0)
	r.MulCoeffsLazy128(0, a, b, &acc)
	r.ReleaseAcc(&acc)
}

// ---------------------------------------------------------------------------
// Defect class (d): undeclared non-canonical contracts (strict packages).

// LazyProduct returns a [0,2q) value without declaring it.
func LazyProduct(a, w, ws, q uint64) uint64 {
	x := condSub(a, q)
	return MulModShoupLazy(x, w, ws, q)
}

// ---------------------------------------------------------------------------
// Annotation-grammar findings.

// StaleParam names a parameter that does not exist.
//
//alchemist:domain zz:[0,q)
func StaleParam(p []uint64) {}

// Malformed declares a domain the grammar does not know.
//
//alchemist:domain p:[0,3x)
func Malformed(p []uint64) {}

// BadRetContract declares a return domain the body cannot satisfy.
//
//alchemist:domain x:[0,4q) w:[0,q) q:modulus ret:[0,q)
func BadRetContract(x, w, ws, q uint64) uint64 {
	return MulModShoupLazy(x, w, ws, q)
}

//alchemist:domain p:[0,q)

// ---------------------------------------------------------------------------
// Clean shapes: zero findings expected below this line.

// CleanButterfly is the Harvey ladder: widen to [0,4q) in place, then a
// final early-reduce pass restores the canonical contract.
//
//alchemist:domain p:[0,q) w:[0,q) q:modulus
func CleanButterfly(p []uint64, w, ws, q uint64) {
	twoQ := 2 * q
	//alchemist:domain p:[0,4q)
	for j := 0; j+1 < len(p); j += 2 {
		u := condSub(p[j], twoQ)
		v := MulModShoupLazy(p[j+1], w, ws, q)
		p[j] = u + v
		p[j+1] = u + twoQ - v
	}
	//alchemist:domain p:[0,q)
	for j := range p {
		p[j] = reduceOnce(p[j], twoQ, q)
	}
}

// CleanMasked uses the borrow-mask form of the conditional subtraction.
//
//alchemist:domain p:[0,q) w:[0,q) q:modulus
func CleanMasked(p []uint64, w, ws, q uint64) {
	//alchemist:domain p:[0,2q)
	for j := range p {
		p[j] = condSubMask(MulModShoupLazy(p[j], w, ws, q), q)
	}
	//alchemist:domain p:[0,q)
	for j := range p {
		p[j] = condSub(p[j], q)
	}
}

// CleanEager stays in the canonical domain throughout.
//
//alchemist:domain p:[0,q) q:modulus
func CleanEager(p []uint64, q uint64) {
	for j := range p {
		p[j] = AddMod(p[j], p[j], q)
	}
}

// CleanChunkedAcc folds after exactly the guaranteed headroom.
func CleanChunkedAcc(a, lo, hi, out []uint64) {
	AddLazy128(a, lo, hi)
	AddLazy128(a, lo, hi)
	AddLazy128(a, lo, hi)
	AddLazy128(a, lo, hi)
	ReduceAcc128(lo, hi, out)
}

// CleanEarlyReduce folds inside the loop, so the term count never crosses
// the floor no matter the trip count.
func CleanEarlyReduce(a, lo, hi, out []uint64, n int) {
	for i := 0; i < n; i++ {
		AddLazy128(a, lo, hi)
		AddLazy128(a, lo, hi)
		ReduceAcc128(lo, hi, out)
	}
}

// CleanRingAcc uses the auto-flushing Ring form and folds before release.
func CleanRingAcc(r Ring, a, b, out []uint64) {
	acc := r.BorrowAcc(0)
	r.MulCoeffsLazy128(0, a, b, &acc)
	r.ReduceAcc128(0, &acc, out)
	r.ReleaseAcc(&acc)
}

// Package panicdisc is a fixture for the panic-discipline rule.
package panicdisc

// Undocumented rejects negative input the hard way, without saying so
// in its contract (flagged).
func Undocumented(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}

// Documented validates its precondition. Panics if x is negative.
func Documented(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}

// MustParse follows the Must* convention (quiet).
func MustParse(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}

// unexported helpers may panic freely (quiet).
func unexported(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}

// Annotated carries a reasoned directive on the call site.
func Annotated(x int) int {
	if x < 0 {
		//alchemist:allow panic fixture demonstrates a reasoned exemption
		panic("negative")
	}
	return unexported(x)
}

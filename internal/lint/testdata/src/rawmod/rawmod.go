// Package rawmod is a fixture for the raw-mod rule.
package rawmod

// BadMod uses a raw % on uint64 operands (flagged).
func BadMod(a, q uint64) uint64 { return a % q }

// BadModAssign uses %= on uint64 (flagged).
func BadModAssign(a, q uint64) uint64 {
	a %= q
	return a
}

// IntMod reduces int operands — out of scope for the rule.
func IntMod(a, q int) int { return a % q }

// PowerOfTwo reduces by a constant power of two — compiles to a mask, exempt.
func PowerOfTwo(a uint64) uint64 { return a % 4096 }

// Annotated carries a reasoned directive.
func Annotated(a, q uint64) uint64 {
	return a % q //alchemist:allow raw-mod fixture demonstrates a reasoned exemption
}

// Package unusedallow exercises the stale-directive rule: an allow that
// suppresses a live finding stays silent, an allow whose finding is gone is
// itself a finding.
package unusedallow

// Check validates its input.
func Check(n int) {
	if n < 0 {
		panic("negative n") //alchemist:allow panic validated precondition: callers pass sizes
	}
}

// Quiet has nothing left to excuse.
func Quiet() int {
	return 1 //alchemist:allow panic nothing here panics any more
}

package weakrand

import (
	"math/rand" //alchemist:allow weak-rand fixture demonstrates a reasoned exemption
)

// DrawAllowed uses the annotated import.
func DrawAllowed(rng *rand.Rand) uint64 { return rng.Uint64() }

// Package weakrand is a fixture for the weak-rand rule: one bare math/rand
// import (flagged) and one annotated use via a file that the test treats as
// in scope.
package weakrand

import (
	"math/rand"
)

// Draw returns a pseudo-random value from an injected generator.
func Draw(rng *rand.Rand) uint64 { return rng.Uint64() }

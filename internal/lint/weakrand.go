package lint

import "strings"

// WeakRand implements the no-weak-rand rule: the scheme packages must not
// import math/rand. Library randomness flows through alchemist/internal/prng
// — explicitly seeded and injectable — so key material and noise sampling
// are reproducible and never silently fall back to a global source. A site
// that genuinely needs math/rand carries //alchemist:allow weak-rand <reason>.
type WeakRand struct {
	// Scope lists import-path substrings of the disciplined packages.
	Scope []string
}

// NewWeakRand returns the rule scoped to the scheme and kernel packages.
func NewWeakRand(module string) *WeakRand {
	return &WeakRand{Scope: []string{
		module + "/internal/ring",
		module + "/internal/tfhe",
		module + "/internal/ckks",
		module + "/internal/bgv",
	}}
}

func (*WeakRand) Name() string { return "weak-rand" }

func (*WeakRand) Doc() string {
	return "scheme packages (ring, tfhe, ckks, bgv) must use internal/prng, not math/rand"
}

func (w *WeakRand) Check(p *Package, report func(Finding)) {
	if !matchAny(p.PkgPath, w.Scope) {
		return
	}
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			if p.Allowed(w.Name(), spec.Pos()) {
				continue
			}
			report(Finding{
				Pos:  p.Fset.Position(spec.Pos()),
				Rule: w.Name(),
				Msg:  "import of " + path + " in scheme package " + p.PkgPath,
				Hint: "use alchemist/internal/prng (explicitly seeded, injectable) or annotate //alchemist:allow weak-rand <reason>",
			})
		}
	}
}

package metaop

// Multiplication-complexity accounting for the eager ("origin") and lazy
// (Meta-OP) operator forms. A Barrett modular multiplication costs 3 raw
// multiplications (operand product + two reduction products); the Meta-OP
// defers the reduction across the n-term accumulation, paying 2 reduction
// products once per output instead of per term (Tables 2, 3).

// DecompPolyMultMults returns the raw multiplication count for accumulating
// dnum digit·evk products over one degree-n polynomial channel (Table 2).
func DecompPolyMultMults(dnum, n int, lazy bool) int64 {
	if lazy {
		return int64(dnum+2) * int64(n)
	}
	return 3 * int64(dnum) * int64(n)
}

// ModupMults returns the raw multiplication count of a ModUp from l source
// channels to k target channels of degree n (Table 3; origin
// (3KL+3L)·N, Meta-OP (KL+3L+2K)·N).
func ModupMults(l, k, n int, lazy bool) int64 {
	if lazy {
		return int64(k*l+3*l+2*k) * int64(n)
	}
	return int64(3*k*l+3*l) * int64(n)
}

// ModdownMults returns the raw multiplication count of a ModDown with k
// special channels, l target channels and degree n: the Bconv from P plus
// the per-target (x - conv)·P^{-1} fix-up.
func ModdownMults(l, k, n int, lazy bool) int64 {
	if lazy {
		// scale (3K) + accumulate (K+2 per target) + fix-up modmul (3 per
		// target).
		return int64(3*k+(k+2)*l+3*l) * int64(n)
	}
	return int64(3*k+3*k*l+3*l) * int64(n)
}

// NTTMults returns the raw multiplication count of one degree-n NTT.
// The eager form runs radix-2 butterflies: (n/2)·log2(n) modmuls at 3 raw
// mults each. The lazy form uses the paper's radix-8/radix-4 Meta-OP
// mapping: 40 raw mults per 8 outputs per radix-8 stage (a 10% premium
// over eager — the price the Meta-OP pays on NTT to win everywhere else).
func NTTMults(n int, lazy bool) int64 {
	if !lazy {
		return int64(3) * int64(n/2) * int64(Log2(n))
	}
	r8, r4 := RadixSplit(Log2(n))
	return int64(n/J) * (int64(r8)*40 + int64(r4)*32)
}

// EWMultMults returns the raw multiplication count of an element-wise
// modmul over one degree-n channel (identical in both forms).
func EWMultMults(n int) int64 { return 3 * int64(n) }

// BatchMults sums raw multiplications over a lowered batch list.
func BatchMults(batches []Batch) int64 {
	var total int64
	for _, b := range batches {
		total += b.TotalMults()
	}
	return total
}

// BatchCycles sums core-cycle demand over a lowered batch list.
func BatchCycles(batches []Batch) int64 {
	var total int64
	for _, b := range batches {
		total += b.TotalCycles()
	}
	return total
}

package metaop

import "testing"

// The lazy-reduction guarantee of Tables 2 and 3, fuzzed over shapes: for
// every accumulating operator the Meta-OP (lazy) form never spends more raw
// multiplications than the eager per-term form — the deferred reduction
// pays its 2 products once per output instead of 2 per term. The one
// documented exception is the NTT (FuzzNTTLazyPremium): its radix-8 Meta-OP
// mapping costs ~10% more raw mults than radix-2 eager butterflies, the
// price the unified core pays on NTT to win everywhere else (§4, Fig. 7a).

// clampDim maps fuzz input onto a channel/digit dimension in [1, 64].
func clampDim(v int) int {
	if v < 0 {
		v = -v
	}
	return 1 + v%64
}

// clampDegree maps fuzz input onto a power-of-two ring degree in [2^3, 2^17]
// (below 2^3 a degree holds no full Meta-OP lane group).
func clampDegree(v int) int {
	if v < 0 {
		v = -v
	}
	return 1 << (3 + v%15)
}

func FuzzLazyNeverExceedsEagerModup(f *testing.F) {
	f.Add(12, 44, 16)
	f.Add(1, 1, 3)
	f.Add(63, 2, 17)
	f.Fuzz(func(t *testing.T, lRaw, kRaw, nRaw int) {
		l, k, n := clampDim(lRaw), clampDim(kRaw), clampDegree(nRaw)
		lazy, eager := ModupMults(l, k, n, true), ModupMults(l, k, n, false)
		if lazy > eager {
			t.Fatalf("ModUp l=%d k=%d n=%d: lazy %d > eager %d", l, k, n, lazy, eager)
		}
		// Table 3 algebra: the saving is exactly 2K(L-1) per coefficient.
		if want := int64(2*k*(l-1)) * int64(n); eager-lazy != want {
			t.Fatalf("ModUp l=%d k=%d n=%d: saving %d, algebra says %d", l, k, n, eager-lazy, want)
		}
	})
}

func FuzzLazyNeverExceedsEagerModdown(f *testing.F) {
	f.Add(44, 12, 16)
	f.Add(1, 1, 3)
	f.Add(2, 63, 17)
	f.Fuzz(func(t *testing.T, lRaw, kRaw, nRaw int) {
		l, k, n := clampDim(lRaw), clampDim(kRaw), clampDegree(nRaw)
		lazy, eager := ModdownMults(l, k, n, true), ModdownMults(l, k, n, false)
		if lazy > eager {
			t.Fatalf("ModDown l=%d k=%d n=%d: lazy %d > eager %d", l, k, n, lazy, eager)
		}
		// The saving is exactly 2L(K-1) per coefficient.
		if want := int64(2*l*(k-1)) * int64(n); eager-lazy != want {
			t.Fatalf("ModDown l=%d k=%d n=%d: saving %d, algebra says %d", l, k, n, eager-lazy, want)
		}
	})
}

func FuzzLazyNeverExceedsEagerDecomp(f *testing.F) {
	f.Add(4, 16)
	f.Add(1, 3)
	f.Add(64, 17)
	f.Fuzz(func(t *testing.T, dRaw, nRaw int) {
		d, n := clampDim(dRaw), clampDegree(nRaw)
		lazy, eager := DecompPolyMultMults(d, n, true), DecompPolyMultMults(d, n, false)
		if lazy > eager {
			t.Fatalf("DecompPolyMult dnum=%d n=%d: lazy %d > eager %d", d, n, lazy, eager)
		}
		// The saving is exactly 2(dnum-1) per coefficient (Table 2).
		if want := int64(2*(d-1)) * int64(n); eager-lazy != want {
			t.Fatalf("DecompPolyMult dnum=%d n=%d: saving %d, algebra says %d", d, n, eager-lazy, want)
		}
	})
}

// FuzzNTTLazyPremium pins the documented exception: the NTT's Meta-OP form
// always costs at least as much as eager radix-2 (never more than 1.5×),
// and exactly 10/9 of eager when logN is a multiple of 3 (pure radix-8).
func FuzzNTTLazyPremium(f *testing.F) {
	f.Add(16)
	f.Add(13)
	f.Add(14)
	f.Fuzz(func(t *testing.T, nRaw int) {
		n := clampDegree(nRaw)
		lazy, eager := NTTMults(n, true), NTTMults(n, false)
		if lazy < eager {
			t.Fatalf("NTT n=%d: lazy %d < eager %d — the premium vanished", n, lazy, eager)
		}
		if 2*lazy > 3*eager {
			t.Fatalf("NTT n=%d: lazy %d exceeds 1.5x eager %d", n, lazy, eager)
		}
		if Log2(n)%3 == 0 && 9*lazy != 10*eager {
			t.Fatalf("NTT n=%d (pure radix-8): lazy %d is not exactly 10/9 of eager %d", n, lazy, eager)
		}
	})
}

package metaop

import (
	"fmt"

	"alchemist/internal/trace"
)

// Lower converts one graph op into Meta-OP batches. This is the single
// lowering used by the aggregate simulator (internal/sim), the per-unit
// compiler (internal/sched) and the stream verifier (internal/streamcheck),
// so all three agree on the Meta-OP population of every operator. Panics on
// an unknown op kind (the trace layer validates kinds on construction).
func Lower(op *trace.Op) []Batch {
	switch op.Kind {
	case trace.KindNTT, trace.KindINTT:
		return LowerNTT(op.N, op.Channels, op.Polys)
	case trace.KindBconv:
		return LowerBconv(op.N, op.SrcChannels, op.Channels, op.Polys)
	case trace.KindDecompPolyMult:
		return LowerDecompPolyMult(op.N, op.Channels, op.Dnum, op.Polys)
	case trace.KindEWMult:
		return LowerEWMult(op.N, op.Channels, op.Polys)
	case trace.KindEWAdd:
		return LowerEWAdd(op.N, op.Channels, op.Polys)
	case trace.KindEWMulSub:
		return LowerEWMulSub(op.N, op.Channels, op.Polys)
	case trace.KindAutomorphism:
		return LowerAutomorphism(op.N, op.Channels, op.Polys)
	default:
		panic(fmt.Sprintf("metaop: unknown op kind %v", op.Kind))
	}
}

// LazyMults returns the analytical Meta-OP (lazy reduction) raw-mult count
// of one graph op — the closed forms of Tables 2 and 3 evaluated at the
// op's shape. The stream verifier holds every compiled phase to these
// formulas exactly; LowerConservation in the metaop tests holds Lower to
// them as well.
func LazyMults(op *trace.Op) int64 {
	ch := int64(op.Channels) * int64(op.Polys)
	switch op.Kind {
	case trace.KindNTT, trace.KindINTT:
		return NTTMults(op.N, true) * ch
	case trace.KindBconv:
		return ModupMults(op.SrcChannels, op.Channels, op.N, true) * int64(op.Polys)
	case trace.KindDecompPolyMult:
		return DecompPolyMultMults(op.Dnum, op.N, true) * ch
	case trace.KindEWMult, trace.KindEWMulSub:
		return EWMultMults(op.N) * ch
	default:
		return 0
	}
}

// Package metaop implements the paper's central abstraction: the Meta-OP
// (M_j A_j)_n R_j (§4) — j parallel multiply–accumulate lanes iterated n
// times followed by a lazy reduction realized with two extra multiply
// cycles. It provides
//
//   - the lowering of every high-level polynomial operator (NTT, Bconv /
//     ModUp / ModDown, DecompPolyMult, element-wise ops) into Meta-OP
//     batches with their access patterns (Table 4), and
//   - the multiplication-complexity accounting of Tables 2 and 3 and
//     Figure 7(a), comparing eager ("origin") and lazy (Meta-OP) forms.
//
// The timing contract, validated against Table 7 of the paper: one Meta-OP
// (M8A8)_nR8 occupies a core for n+2 cycles and retires 8 outputs.
package metaop

import "fmt"

// J is the lane width of a Meta-OP. The paper's design-space exploration
// fixes j = 8: larger widths under-fill the radix-8 NTT butterfly.
const J = 8

// AccessPattern is the scratchpad access pattern of a Meta-OP batch
// (Table 4).
type AccessPattern int

const (
	// PatternSlots: operands are neighbouring slots of one channel (NTT).
	PatternSlots AccessPattern = iota
	// PatternChannel: operands gather one slot across RNS channels
	// (ModUp/ModDown/Bconv).
	PatternChannel
	// PatternDnumGroup: operands gather one slot across dnum digit groups
	// (DecompPolyMult).
	PatternDnumGroup
)

func (a AccessPattern) String() string {
	switch a {
	case PatternSlots:
		return "slots"
	case PatternChannel:
		return "channel"
	case PatternDnumGroup:
		return "dnum_group"
	default:
		return fmt.Sprintf("pattern(%d)", int(a))
	}
}

// Batch is a homogeneous group of Meta-OPs produced by lowering one
// high-level operator.
type Batch struct {
	Pattern AccessPattern
	Count   int64 // number of Meta-OPs in the batch
	NAccum  int   // the Meta-OP's n (accumulation depth)
	Cycles  int   // core cycles per Meta-OP
	Mults   int64 // raw multiplier activations per Meta-OP (lazy form)
	Label   string
}

// TotalCycles returns Count·Cycles, the core-cycle demand of the batch.
func (b Batch) TotalCycles() int64 { return b.Count * int64(b.Cycles) }

// TotalMults returns the raw multiplication demand of the batch.
func (b Batch) TotalMults() int64 { return b.Count * b.Mults }

// MetaCycles returns the pipeline occupancy of one (M_jA_j)_nR_j: n cycles
// of multiply–accumulate plus 2 reduction cycles on the reused mult array.
func MetaCycles(n int) int { return n + 2 }

// RadixSplit decomposes logN into a radix-8 stages and b radix-4 stages
// (logN = 3a + 2b), maximizing the radix-8 count as the paper's NTT mapping
// does.
func RadixSplit(logN int) (r8, r4 int) {
	switch logN % 3 {
	case 0:
		return logN / 3, 0
	case 1: // 3a+4: drop one radix-8 for two radix-4
		return logN/3 - 1, 2
	default: // 3a+2
		return logN / 3, 1
	}
}

// Log2 returns log2(n) for a power of two n.
func Log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

// LowerNTT lowers `polys`·`channels` NTTs (or INTTs) of degree n into
// Meta-OP batches. Each radix-8 stage needs one (M8A8)_3R8 per 8 outputs
// (24 multiply + 16 reduction activations = 40 mults, Fig. 4c); each
// radix-4 stage one (M8A8)_2R8 covering two radix-4 butterflies (32 mults).
func LowerNTT(n, channels, polys int) []Batch {
	r8, r4 := RadixSplit(Log2(n))
	groups := int64(n/J) * int64(channels) * int64(polys)
	var out []Batch
	if r8 > 0 {
		out = append(out, newBatch("ntt-radix8", groups*int64(r8), 3))
	}
	if r4 > 0 {
		out = append(out, newBatch("ntt-radix4", groups*int64(r4), 2))
	}
	return out
}

// LowerBconv lowers an RNS basis conversion from srcCh to dstCh channels of
// degree-n polynomials (`polys` of them): the per-source-channel scaling by
// q̂_i^{-1} (an element-wise modmul) followed by the per-target-channel
// accumulation (M8A8)_{srcCh}R8 (Fig. 4b).
func LowerBconv(n, srcCh, dstCh, polys int) []Batch {
	perPoly := int64(n / J)
	return []Batch{
		newBatch("bconv-scale", perPoly*int64(srcCh)*int64(polys), 1),
		newBatch("bconv-acc", perPoly*int64(dstCh)*int64(polys), srcCh),
	}
}

// LowerDecompPolyMult lowers the evk inner product: for each of `channels`
// RNS channels and `outPolys` output polynomials, accumulate dnum digit
// products with a single deferred reduction: (M8A8)_{dnum}R8 (Fig. 4a).
func LowerDecompPolyMult(n, channels, dnum, outPolys int) []Batch {
	return []Batch{newBatch("decomp-polymult", int64(n/J)*int64(channels)*int64(outPolys), dnum)}
}

// LowerEWMult lowers an element-wise modular multiplication
// ((M8A8)_1R8, 3 cycles per 8 lanes — the Table 7 Pmult contract).
func LowerEWMult(n, channels, polys int) []Batch {
	return []Batch{newBatch("ew-mult", int64(n/J)*int64(channels)*int64(polys), 1)}
}

// LowerEWAdd lowers an element-wise modular addition. The add path takes 4
// cycles per 8 lanes (add, conditional-subtract select), the rate that
// reproduces Table 7's Hadd row exactly; it uses no multipliers.
func LowerEWAdd(n, channels, polys int) []Batch {
	return []Batch{newBatch("ew-add", int64(n/J)*int64(channels)*int64(polys), 1)}
}

// LowerEWMulSub lowers the fused (a-b)·c^{-1} step of ModDown and rescale:
// one subtract plus one modmul, 4 cycles per 8 lanes.
func LowerEWMulSub(n, channels, polys int) []Batch {
	return []Batch{newBatch("ew-mulsub", int64(n/J)*int64(channels)*int64(polys), 1)}
}

// LowerAutomorphism lowers a Galois automorphism: a pure on-chip
// permutation pass (one read-modify-write cycle per 8 lanes, no
// multipliers).
func LowerAutomorphism(n, channels, polys int) []Batch {
	return []Batch{newBatch("automorphism", int64(n/J)*int64(channels)*int64(polys), 1)}
}

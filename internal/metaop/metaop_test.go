package metaop

import (
	"testing"
	"testing/quick"
)

func TestMetaCycles(t *testing.T) {
	if MetaCycles(1) != 3 || MetaCycles(3) != 5 || MetaCycles(44) != 46 {
		t.Fatal("Meta-OP cycle contract broken")
	}
}

func TestRadixSplit(t *testing.T) {
	for logN := 4; logN <= 17; logN++ {
		r8, r4 := RadixSplit(logN)
		if 3*r8+2*r4 != logN {
			t.Fatalf("logN=%d: 3·%d + 2·%d != %d", logN, r8, r4, logN)
		}
		if r8 < 0 || r4 < 0 || r4 > 2 {
			t.Fatalf("logN=%d: split (%d,%d) not canonical", logN, r8, r4)
		}
	}
}

func TestTable2DecompPolyMult(t *testing.T) {
	// Table 2: origin 3·dnum·N vs Meta-OP (dnum+2)·N; ratio approaches 3×.
	n := 65536
	for _, dnum := range []int{1, 2, 3, 4, 8} {
		origin := DecompPolyMultMults(dnum, n, false)
		lazy := DecompPolyMultMults(dnum, n, true)
		if origin != int64(3*dnum*n) {
			t.Fatalf("dnum=%d: origin %d", dnum, origin)
		}
		if lazy != int64((dnum+2)*n) {
			t.Fatalf("dnum=%d: lazy %d", dnum, lazy)
		}
		if dnum >= 2 && lazy >= origin {
			t.Fatalf("dnum=%d: lazy form should win", dnum)
		}
	}
	// Asymptotic 3× saving.
	ratio := float64(DecompPolyMultMults(64, n, false)) / float64(DecompPolyMultMults(64, n, true))
	if ratio < 2.8 || ratio > 3.0 {
		t.Fatalf("asymptotic ratio %v, want ≈3", ratio)
	}
}

func TestTable3Modup(t *testing.T) {
	n := 65536
	for _, tc := range []struct{ l, k int }{{1, 1}, {11, 12}, {44, 12}, {4, 4}} {
		origin := ModupMults(tc.l, tc.k, n, false)
		lazy := ModupMults(tc.l, tc.k, n, true)
		if origin != int64(3*tc.k*tc.l+3*tc.l)*int64(n) {
			t.Fatalf("L=%d K=%d origin %d", tc.l, tc.k, origin)
		}
		if lazy != int64(tc.k*tc.l+3*tc.l+2*tc.k)*int64(n) {
			t.Fatalf("L=%d K=%d lazy %d", tc.l, tc.k, lazy)
		}
		// origin - lazy = 2K(L-1)·N: strict win for L ≥ 2, tie at L = 1.
		if tc.l >= 2 && lazy >= origin {
			t.Fatalf("L=%d K=%d lazy should win", tc.l, tc.k)
		}
		if tc.l == 1 && lazy != origin {
			t.Fatalf("L=1: expected tie, got lazy=%d origin=%d", lazy, origin)
		}
	}
}

func TestNTTMultPremium(t *testing.T) {
	// Fig. 4c: the Meta-OP NTT pays a small multiplication premium — exactly
	// 40/36 ≈ 11% on pure radix-8 sizes, up to ~17% when radix-4 stages
	// (32 vs 24 mults per 8 outputs) are mixed in.
	for _, n := range []int{512, 4096, 32768, 65536} {
		origin := NTTMults(n, false)
		lazy := NTTMults(n, true)
		premium := float64(lazy)/float64(origin) - 1
		if premium < 0 || premium > 0.17 {
			t.Fatalf("N=%d: premium %.3f outside [0, 0.17]", n, premium)
		}
	}
	// Pure radix-8 case: exactly 40/36.
	if p := float64(NTTMults(512, true)) / float64(NTTMults(512, false)); p < 1.110 || p > 1.112 {
		t.Fatalf("N=512 premium %v, want 40/36", p)
	}
}

func TestLowerNTTConsistency(t *testing.T) {
	// Lowered batch mult totals must equal the closed-form count.
	for _, n := range []int{1024, 16384, 65536} {
		batches := LowerNTT(n, 3, 2)
		if got, want := BatchMults(batches), 6*NTTMults(n, true); got != want {
			t.Fatalf("N=%d: batch mults %d, closed form %d", n, got, want)
		}
		for _, b := range batches {
			if b.Pattern != PatternSlots {
				t.Fatalf("NTT must use the slots pattern")
			}
		}
	}
}

func TestLowerBconvConsistency(t *testing.T) {
	n, src, dst := 65536, 11, 45
	batches := LowerBconv(n, src, dst, 1)
	if got, want := BatchMults(batches), ModupMults(src, dst, n, true); got != want {
		t.Fatalf("Bconv batch mults %d != Table 3 lazy %d", got, want)
	}
	for _, b := range batches {
		if b.Pattern != PatternChannel {
			t.Fatal("Bconv must use the channel pattern")
		}
	}
}

func TestLowerDecompPolyMultConsistency(t *testing.T) {
	n, ch, dnum := 65536, 56, 4
	batches := LowerDecompPolyMult(n, ch, dnum, 2)
	want := 2 * int64(ch) * DecompPolyMultMults(dnum, n, true)
	if got := BatchMults(batches); got != want {
		t.Fatalf("DecompPolyMult batch mults %d != %d", got, want)
	}
	if batches[0].Pattern != PatternDnumGroup {
		t.Fatal("DecompPolyMult must use the dnum_group pattern")
	}
}

func TestTable7PmultContract(t *testing.T) {
	// The headline validation: Pmult at N=2^16, 44 channels, 2 polys on
	// 2048 cores must take exactly 1056 cycles → 946,970 ops/s, and Hadd
	// 1408 cycles → 710,227 ops/s (Table 7).
	const cores = 128 * 16
	mult := LowerEWMult(65536, 44, 2)
	var metaOps int64
	for _, b := range mult {
		metaOps += b.Count
	}
	cycles := (metaOps + cores - 1) / cores * int64(mult[0].Cycles)
	if cycles != 1056 {
		t.Fatalf("Pmult cycles %d, want 1056", cycles)
	}
	if ops := int64(1e9) / cycles; ops != 946969 && ops != 946970 {
		t.Fatalf("Pmult throughput %d, want ≈946,970", ops)
	}
	add := LowerEWAdd(65536, 44, 2)
	metaOps = 0
	for _, b := range add {
		metaOps += b.Count
	}
	cycles = (metaOps + cores - 1) / cores * int64(add[0].Cycles)
	if cycles != 1408 {
		t.Fatalf("Hadd cycles %d, want 1408", cycles)
	}
	if ops := int64(1e9) / cycles; ops != 710227 {
		t.Fatalf("Hadd throughput %d, want 710,227", ops)
	}
}

func TestQuickLazyNeverWorseExceptNTT(t *testing.T) {
	f := func(dnum8, l6, k4 uint8) bool {
		dnum := int(dnum8%16) + 2 // ≥ 2
		l := int(l6%43) + 2       // ≥ 2 (strict ModUp win needs L ≥ 2)
		k := int(k4%11) + 2       // ≥ 2 (strict ModDown win needs K ≥ 2)
		n := 4096
		if DecompPolyMultMults(dnum, n, true) >= DecompPolyMultMults(dnum, n, false) {
			return false
		}
		if ModupMults(l, k, n, true) >= ModupMults(l, k, n, false) {
			return false
		}
		if ModdownMults(l, k, n, true) >= ModdownMults(l, k, n, false) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBatchAccounting(t *testing.T) {
	b := Batch{Count: 10, NAccum: 3, Cycles: 5, Mults: 40}
	if b.TotalCycles() != 50 || b.TotalMults() != 400 {
		t.Fatal("batch accounting wrong")
	}
	if PatternSlots.String() != "slots" || PatternChannel.String() != "channel" ||
		PatternDnumGroup.String() != "dnum_group" {
		t.Fatal("pattern names wrong")
	}
	if AccessPattern(9).String() == "" {
		t.Fatal("unknown pattern should still print")
	}
}

package metaop

import "fmt"

// Core pipeline micro-model (Fig. 5c/d): one unified core holds a
// multiplication array, an addition array, an accumulation array and a
// register array, each j lanes wide. A Meta-OP (M_jA_j)_nR_j runs in two
// temporal parts: n cycles of multiply–accumulate (the pink region) and a
// 2-cycle reduction that reuses the multiplication array for the Barrett
// products (the green region). No dedicated modular-reduction unit exists —
// the defining idea of the unified core.

// UnitUse describes which arrays one pipeline cycle occupies.
type UnitUse struct {
	Cycle int
	Mult  bool // multiplication array busy
	Add   bool // addition array busy (recombination / accumulate)
	Acc   bool // accumulation array busy
	Label string
}

// CoreTrace is the cycle-by-cycle schedule of one Meta-OP on one core.
type CoreTrace struct {
	N        int
	Schedule []UnitUse
}

// SimulateCore produces the schedule of (M_jA_j)_nR_j.
func SimulateCore(n int) CoreTrace {
	t := CoreTrace{N: n}
	for c := 0; c < n; c++ {
		t.Schedule = append(t.Schedule, UnitUse{
			Cycle: c, Mult: true, Add: true, Acc: true,
			Label: fmt.Sprintf("MA[%d]", c),
		})
	}
	// Reduction: two Barrett product cycles on the reused mult array; the
	// final conditional subtraction rides the add array of the second.
	t.Schedule = append(t.Schedule,
		UnitUse{Cycle: n, Mult: true, Add: false, Acc: true, Label: "R:qhat"},
		UnitUse{Cycle: n + 1, Mult: true, Add: true, Acc: false, Label: "R:subsel"},
	)
	return t
}

// Cycles returns the schedule length (must equal MetaCycles(n)).
func (t CoreTrace) Cycles() int { return len(t.Schedule) }

// MultActivations returns lane-level multiplier activations across the
// schedule (J lanes per busy cycle).
func (t CoreTrace) MultActivations() int {
	m := 0
	for _, u := range t.Schedule {
		if u.Mult {
			m += J
		}
	}
	return m
}

// MultArrayUtilization returns the mult-array busy fraction over the
// Meta-OP — 1.0 by construction, the unified core's headline property.
func (t CoreTrace) MultArrayUtilization() float64 {
	busy := 0
	for _, u := range t.Schedule {
		if u.Mult {
			busy++
		}
	}
	return float64(busy) / float64(len(t.Schedule))
}

package metaop

import "testing"

func TestCorePipelineTiming(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 44} {
		tr := SimulateCore(n)
		if tr.Cycles() != MetaCycles(n) {
			t.Fatalf("n=%d: pipeline %d cycles, contract %d", n, tr.Cycles(), MetaCycles(n))
		}
		// The mult array never idles: that is what makes the unified core's
		// utilization high regardless of the operator mix.
		if u := tr.MultArrayUtilization(); u != 1.0 {
			t.Fatalf("n=%d: mult array utilization %v, want 1.0", n, u)
		}
	}
}

func TestCorePipelineMatchesLoweringMultCounts(t *testing.T) {
	// The micro-model's multiplier activations must equal the macro
	// lowering's per-Meta-OP mult counts for every operator type.
	cases := []struct {
		name    string
		n       int
		batchOf func() Batch
	}{
		{"ntt-radix8", 3, func() Batch { return LowerNTT(512, 1, 1)[0] }},
		{"decomp-dnum4", 4, func() Batch { return LowerDecompPolyMult(512, 1, 4, 1)[0] }},
		{"bconv-acc-L11", 11, func() Batch { return LowerBconv(512, 11, 1, 1)[1] }},
		{"ew-mult", 1, func() Batch { return LowerEWMult(512, 1, 1)[0] }},
	}
	for _, c := range cases {
		tr := SimulateCore(c.n)
		b := c.batchOf()
		if int64(tr.MultActivations()) != b.Mults {
			t.Errorf("%s: pipeline %d mults, lowering says %d",
				c.name, tr.MultActivations(), b.Mults)
		}
		if tr.Cycles() != b.Cycles {
			t.Errorf("%s: pipeline %d cycles, lowering says %d",
				c.name, tr.Cycles(), b.Cycles)
		}
	}
}

func TestRadix8FortyMults(t *testing.T) {
	// The paper's Fig. 4(c) headline: a radix-8 butterfly via (M8A8)_3R8
	// costs exactly 40 multiplications (24 MA + 16 reduction).
	tr := SimulateCore(3)
	if tr.MultActivations() != 40 {
		t.Fatalf("radix-8 Meta-OP uses %d mults, paper says 40", tr.MultActivations())
	}
}

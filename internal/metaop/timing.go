package metaop

// The Meta-OP legality table: the single source of truth for which
// (pattern, accumulation depth, cycle count) combinations the unified core
// array can execute, shared by the lowering functions in this package, the
// cycle simulators (internal/sim, internal/sched) and the static stream
// verifier (internal/streamcheck). Each batch family produced by a Lower*
// function is one row, keyed by its label.
//
// Two datapath classes exist:
//
//   - Accumulating rows are true Meta-OPs (M_jA_j)_nR_j (§4): n cycles of
//     multiply–accumulate plus the 2-cycle deferred reduction on the reused
//     multiplier array, so Cycles = n+2 and the lazy raw-mult count is
//     (n+2)·j — exactly the Tables 2/3 Meta-OP column.
//   - Fixed rows use the non-multiplying side paths (add/conditional-
//     subtract, the fused mulsub, the permutation network) with a pinned
//     cycle count and mult count, always at accumulation depth 1.

// Spec is one row of the legality table.
type Spec struct {
	// Pattern is the scratchpad access pattern of the family (Table 4).
	Pattern AccessPattern

	// Accumulating marks a true (M_jA_j)_nR_j: Cycles must equal n+2 and
	// the raw-mult count is (n+2)·J.
	Accumulating bool

	// FixedAccum pins the accumulation depth when non-zero (e.g. the
	// radix-8 NTT stage is always n=3). Zero means the depth is set by the
	// operator shape (Bconv source channels, DecompPolyMult dnum).
	FixedAccum int

	// Cycles and Mults apply to non-accumulating rows only: the pinned
	// per-Meta-OP cycle count and raw multiplier activations.
	Cycles int
	Mults  int64
}

// CyclesFor returns the legal cycle count of one Meta-OP of this family at
// accumulation depth n.
func (s Spec) CyclesFor(n int) int {
	if s.Accumulating {
		return MetaCycles(n)
	}
	return s.Cycles
}

// MultsFor returns the raw multiplier activations of one Meta-OP of this
// family at accumulation depth n (the lazy form of Tables 2 and 3).
func (s Spec) MultsFor(n int) int64 {
	if s.Accumulating {
		return int64(n+2) * J
	}
	return s.Mults
}

// Specs maps every batch label to its legality row. Lowering constructs
// batches through this table (see newBatch), so the table cannot drift from
// the programs the compiler emits; streamcheck validates compiled
// instruction streams against the same rows.
var Specs = map[string]Spec{
	"ntt-radix8":      {Pattern: PatternSlots, Accumulating: true, FixedAccum: 3},
	"ntt-radix4":      {Pattern: PatternSlots, Accumulating: true, FixedAccum: 2},
	"bconv-scale":     {Pattern: PatternChannel, Accumulating: true, FixedAccum: 1},
	"bconv-acc":       {Pattern: PatternChannel, Accumulating: true},
	"decomp-polymult": {Pattern: PatternDnumGroup, Accumulating: true},
	"ew-mult":         {Pattern: PatternSlots, Accumulating: true, FixedAccum: 1},
	"ew-add":          {Pattern: PatternSlots, Cycles: 4, Mults: 0},
	"ew-mulsub":       {Pattern: PatternSlots, Cycles: 4, Mults: 3 * J},
	"automorphism":    {Pattern: PatternSlots, Cycles: 1, Mults: 0},
}

// newBatch builds a batch of `count` Meta-OPs of the given family at
// accumulation depth n, deriving pattern, cycles and mult count from the
// legality table. Panics on a label missing from Specs — lowering a family
// the table does not describe is a programming error, caught by every test
// that lowers anything.
func newBatch(label string, count int64, n int) Batch {
	spec, ok := Specs[label]
	if !ok {
		panic("metaop: no Spec row for batch family " + label)
	}
	return Batch{
		Pattern: spec.Pattern,
		Count:   count,
		NAccum:  n,
		Cycles:  spec.CyclesFor(n),
		Mults:   spec.MultsFor(n),
		Label:   label,
	}
}

// PatternEfficiency is the scratchpad efficiency of each Meta-OP access
// pattern (Table 4): the slot pattern is conflict-free; the channel and
// dnum-group gather patterns pay a small bank-conflict penalty. The values
// are calibrated so the per-task utilizations match Fig. 7(b)
// (NTT ≈ 0.85 — set by transpose phases, Bconv ≈ 0.89, DecompPolyMult ≈ 0.87).
var PatternEfficiency = map[AccessPattern]float64{
	PatternSlots:     1.00,
	PatternChannel:   0.89,
	PatternDnumGroup: 0.87,
}

package modmath

import "math/big"

// CRTReconstruct returns the unique x in [0, prod(moduli)) with
// x ≡ residues[i] (mod moduli[i]) for all i, as a big.Int. The moduli must be
// pairwise coprime. It is the reference implementation used to validate the
// RNS basis-conversion (Bconv) kernels. Panics if the slice lengths differ.
func CRTReconstruct(residues, moduli []uint64) *big.Int {
	if len(residues) != len(moduli) {
		panic("modmath: residue/modulus length mismatch")
	}
	prod := big.NewInt(1)
	for _, q := range moduli {
		prod.Mul(prod, new(big.Int).SetUint64(q))
	}
	x := new(big.Int)
	tmp := new(big.Int)
	for i, q := range moduli {
		qi := new(big.Int).SetUint64(q)
		qiHat := new(big.Int).Div(prod, qi)       // prod / q_i
		inv := new(big.Int).ModInverse(qiHat, qi) // (prod/q_i)^{-1} mod q_i
		tmp.SetUint64(residues[i])
		tmp.Mul(tmp, inv)
		tmp.Mod(tmp, qi)
		tmp.Mul(tmp, qiHat)
		x.Add(x, tmp)
	}
	return x.Mod(x, prod)
}

// CRTDecompose returns x mod q_i for each modulus, where x may be negative
// (interpreted modulo prod(moduli)).
func CRTDecompose(x *big.Int, moduli []uint64) []uint64 {
	out := make([]uint64, len(moduli))
	tmp := new(big.Int)
	for i, q := range moduli {
		qi := new(big.Int).SetUint64(q)
		tmp.Mod(x, qi)
		if tmp.Sign() < 0 {
			tmp.Add(tmp, qi)
		}
		out[i] = tmp.Uint64()
	}
	return out
}

package modmath

import (
	"math/big"
	"testing"
)

// Edge-modulus coverage: the RNS bases used at production scale sit just
// below the 2^62 Barrett/Montgomery bound, so the reduction paths and CRT
// round-trips are exercised right at that boundary.

// primesNear62 are NTT-friendly primes q ≡ 1 (mod 2^15) just below 2^61 —
// the largest the generator emits, one doubling under the 2^62 reducer bound.
func primesNear62(t *testing.T, count int) []uint64 {
	t.Helper()
	ps, err := GenerateNTTPrimes(61, 1<<15, count)
	if err != nil {
		t.Fatalf("GenerateNTTPrimes: %v", err)
	}
	return ps
}

func TestCRTRoundTripNear62(t *testing.T) {
	moduli := primesNear62(t, 4)
	for _, q := range moduli {
		if q >= 1<<62 {
			t.Fatalf("generated modulus %d above 2^62", q)
		}
	}
	// Residue patterns that stress the boundary: zeros, q_i - 1, mixed.
	cases := [][]uint64{
		{0, 0, 0, 0},
		{moduli[0] - 1, moduli[1] - 1, moduli[2] - 1, moduli[3] - 1},
		{1, moduli[1] - 1, 0, moduli[3] / 2},
	}
	for _, residues := range cases {
		x := CRTReconstruct(residues, moduli)
		back := CRTDecompose(x, moduli)
		for i := range residues {
			if back[i] != residues[i] {
				t.Fatalf("round trip: residue %d = %d, want %d (x=%v)",
					i, back[i], residues[i], x)
			}
		}
	}
	// Negative value: decompose then reconstruct must agree modulo prod.
	neg := big.NewInt(-123456789)
	dec := CRTDecompose(neg, moduli)
	rec := CRTReconstruct(dec, moduli)
	prod := big.NewInt(1)
	for _, q := range moduli {
		prod.Mul(prod, new(big.Int).SetUint64(q))
	}
	want := new(big.Int).Mod(neg, prod)
	if rec.Cmp(want) != 0 {
		t.Fatalf("negative round trip: got %v want %v", rec, want)
	}
}

func TestCRTReconstructLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CRTReconstruct with mismatched lengths did not panic")
		}
	}()
	CRTReconstruct([]uint64{1, 2}, []uint64{97})
}

func TestMontgomeryRejectsEvenModulus(t *testing.T) {
	for _, q := range []uint64{2, 4, 1 << 20, (1 << 61) + 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewMontgomery(%d) did not panic", q)
				}
			}()
			NewMontgomery(q)
		}()
	}
}

func TestBarrettRejectsOutOfRangeModulus(t *testing.T) {
	for _, q := range []uint64{0, 1, 1 << 62, ^uint64(0)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewBarrett(%d) did not panic", q)
				}
			}()
			NewBarrett(q)
		}()
	}
}

func TestReduceWordNear62(t *testing.T) {
	moduli := append(primesNear62(t, 2), 3, 12289, 65537, (1<<62)-1-56) // mixed sizes
	xs := []uint64{0, 1, 1 << 32, (1 << 62) - 1, 1 << 63, ^uint64(0)}
	for _, q := range moduli {
		if q < 2 || q >= 1<<62 {
			continue
		}
		b := NewBarrett(q)
		for _, x := range xs {
			if got, want := b.ReduceWord(x), x%q; got != want {
				t.Fatalf("ReduceWord(%d) mod %d = %d, want %d", x, q, got, want)
			}
		}
		for _, x := range []uint64{q - 1, q, q + 1, 2*q - 1, 2 * q, 3 * q} {
			if got, want := b.ReduceWord(x), x%q; got != want {
				t.Fatalf("ReduceWord(%d) mod %d = %d, want %d", x, q, got, want)
			}
		}
	}
}

func TestReduceSigned(t *testing.T) {
	qs := []uint64{2, 3, 97, 65537, (1 << 62) - 57}
	vs := []int64{0, 1, -1, 19, -19, 1 << 40, -(1 << 40), 1<<63 - 1, -(1<<63 - 1)}
	for _, q := range qs {
		for _, v := range vs {
			want := new(big.Int).Mod(big.NewInt(v), new(big.Int).SetUint64(q)).Uint64()
			if got := ReduceSigned(v, q); got != want {
				t.Fatalf("ReduceSigned(%d, %d) = %d, want %d", v, q, got, want)
			}
		}
		// Most negative int64: |v| is not representable as int64.
		v := int64(-1 << 63)
		want := new(big.Int).Mod(big.NewInt(v), new(big.Int).SetUint64(q)).Uint64()
		if got := ReduceSigned(v, q); got != want {
			t.Fatalf("ReduceSigned(MinInt64, %d) = %d, want %d", q, got, want)
		}
	}
}

package modmath

import "testing"

// FuzzReductionAgreement drives all four modular-multiplication paths with
// arbitrary operands; they must always agree.
func FuzzReductionAgreement(f *testing.F) {
	f.Add(uint64(3), uint64(5), uint64(12289))
	f.Add(uint64(0), uint64(0), uint64(97))
	f.Add(^uint64(0), ^uint64(0), uint64(1152921504606846883))
	// Boundary corpus: moduli at the very top of the 2^62 reducer bound,
	// operands at the extremes of the word.
	f.Add(uint64(1)<<63, uint64(1)<<62, (uint64(1)<<62)-60)
	f.Add((uint64(1)<<62)-1, uint64(3), (uint64(1)<<62)-4)
	f.Add(uint64(1), ^uint64(0)>>1, uint64(2305843009213693951)) // Mersenne 2^61-1
	f.Add(^uint64(0), uint64(1), uint64(4611686018427387847))
	f.Fuzz(func(t *testing.T, a, b, qSeed uint64) {
		// Derive a valid odd modulus in (2, 2^62) from the seed.
		q := qSeed%((1<<62)-3) + 3
		if q%2 == 0 {
			q++
		}
		// The single-word fold must agree with % on the raw (unreduced)
		// inputs before they are clamped below q.
		br := NewBarrett(q)
		if got := br.ReduceWord(a); got != a%q {
			t.Fatalf("ReduceWord(%d) mod %d = %d want %d", a, q, got, a%q)
		}
		if got := br.ReduceWord(b); got != b%q {
			t.Fatalf("ReduceWord(%d) mod %d = %d want %d", b, q, got, b%q)
		}
		a %= q
		b %= q
		want := MulMod(a, b, q)
		if got := br.MulMod(a, b); got != want {
			t.Fatalf("Barrett(%d,%d) mod %d = %d want %d", a, b, q, got, want)
		}
		mt := NewMontgomery(q)
		if got := mt.FromMont(mt.MulMod(mt.ToMont(a), mt.ToMont(b))); got != want {
			t.Fatalf("Montgomery(%d,%d) mod %d = %d want %d", a, b, q, got, want)
		}
		if got := MulModShoup(a, b, ShoupPrecomp(b, q), q); got != want {
			t.Fatalf("Shoup(%d,%d) mod %d = %d want %d", a, b, q, got, want)
		}
		lazy := MulModShoupLazy(a, b, ShoupPrecomp(b, q), q)
		if lazy%q != want || lazy >= 2*q {
			t.Fatalf("lazy Shoup(%d,%d) mod %d = %d out of contract", a, b, q, lazy)
		}
	})
}

package modmath

import (
	"math/big"
	"testing"
)

// FuzzReductionAgreement drives all four modular-multiplication paths with
// arbitrary operands; they must always agree.
func FuzzReductionAgreement(f *testing.F) {
	f.Add(uint64(3), uint64(5), uint64(12289))
	f.Add(uint64(0), uint64(0), uint64(97))
	f.Add(^uint64(0), ^uint64(0), uint64(1152921504606846883))
	// Boundary corpus: moduli at the very top of the 2^62 reducer bound,
	// operands at the extremes of the word.
	f.Add(uint64(1)<<63, uint64(1)<<62, (uint64(1)<<62)-60)
	f.Add((uint64(1)<<62)-1, uint64(3), (uint64(1)<<62)-4)
	f.Add(uint64(1), ^uint64(0)>>1, uint64(2305843009213693951)) // Mersenne 2^61-1
	f.Add(^uint64(0), uint64(1), uint64(4611686018427387847))
	f.Fuzz(func(t *testing.T, a, b, qSeed uint64) {
		// Derive a valid odd modulus in (2, 2^62) from the seed.
		q := qSeed%((1<<62)-3) + 3
		if q%2 == 0 {
			q++
		}
		// The single-word fold must agree with % on the raw (unreduced)
		// inputs before they are clamped below q.
		br := NewBarrett(q)
		if got := br.ReduceWord(a); got != a%q {
			t.Fatalf("ReduceWord(%d) mod %d = %d want %d", a, q, got, a%q)
		}
		if got := br.ReduceWord(b); got != b%q {
			t.Fatalf("ReduceWord(%d) mod %d = %d want %d", b, q, got, b%q)
		}
		a %= q
		b %= q
		want := MulMod(a, b, q)
		if got := br.MulMod(a, b); got != want {
			t.Fatalf("Barrett(%d,%d) mod %d = %d want %d", a, b, q, got, want)
		}
		mt := NewMontgomery(q)
		if got := mt.FromMont(mt.MulMod(mt.ToMont(a), mt.ToMont(b))); got != want {
			t.Fatalf("Montgomery(%d,%d) mod %d = %d want %d", a, b, q, got, want)
		}
		if got := MulModShoup(a, b, ShoupPrecomp(b, q), q); got != want {
			t.Fatalf("Shoup(%d,%d) mod %d = %d want %d", a, b, q, got, want)
		}
		lazy := MulModShoupLazy(a, b, ShoupPrecomp(b, q), q)
		if lazy%q != want || lazy >= 2*q {
			t.Fatalf("lazy Shoup(%d,%d) mod %d = %d out of contract", a, b, q, lazy)
		}
	})
}

// FuzzMulModShoupLazyDomain pins MulModShoupLazy's full documented contract:
// over the whole Harvey domain a < 4q (not just the reduced a < q the
// agreement fuzzer exercises), the result stays below 2q and is congruent to
// a·w. The lazy NTT kernels in package ring feed butterfly sums up to 4q into
// this function and rely on both halves of the guarantee.
func FuzzMulModShoupLazyDomain(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(12289))
	f.Add(^uint64(0), uint64(1), uint64(4611686018427387847))
	// a at the very top of the 4q domain, q at the top of the 2^62 bound.
	f.Add(^uint64(0), ^uint64(0), (uint64(1)<<62)-60)
	f.Add(uint64(1)<<63, (uint64(1)<<62)-61, (uint64(1)<<62)-60)
	f.Fuzz(func(t *testing.T, aSeed, wSeed, qSeed uint64) {
		q := qSeed%((1<<62)-3) + 3
		if q%2 == 0 {
			q++
		}
		a := aSeed % (4 * q) // full lazy butterfly domain [0, 4q)
		w := wSeed % q
		r := MulModShoupLazy(a, w, ShoupPrecomp(w, q), q)
		if r >= 2*q {
			t.Fatalf("MulModShoupLazy(%d,%d) mod %d = %d ≥ 2q", a, w, q, r)
		}
		if want := MulMod(a%q, w, q); r%q != want {
			t.Fatalf("MulModShoupLazy(%d,%d) mod %d ≡ %d want %d", a, w, q, r%q, want)
		}
	})
}

// FuzzBarrettReduceWide pins Reduce's widened contract: any 128-bit value
// x = hi:lo with hi < q (i.e. x < q·2^64) reduces to x mod q, not just single
// products x < q². The ring lazy accumulators (Acc128) sum many unreduced
// products under exactly this bound before their one deferred reduction, so
// the whole fused keyswitch rests on this pin. Oracle: big.Int.
func FuzzBarrettReduceWide(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(12289))
	f.Add(^uint64(0), ^uint64(0), uint64(97))
	// hi at the very top of the domain (q-1), q at the top of the 2^62 bound.
	f.Add((uint64(1)<<62)-61, ^uint64(0), (uint64(1)<<62)-60)
	f.Add(uint64(2305843009213693950), ^uint64(0), uint64(2305843009213693951))
	f.Fuzz(func(t *testing.T, hiSeed, lo, qSeed uint64) {
		q := qSeed%((1<<62)-3) + 3
		if q%2 == 0 {
			q++
		}
		hi := hiSeed % q // the full domain: x < q·2^64 ⟺ hi < q
		x := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
		x.Add(x, new(big.Int).SetUint64(lo))
		want := x.Mod(x, new(big.Int).SetUint64(q)).Uint64()
		if got := NewBarrett(q).Reduce(hi, lo); got != want {
			t.Fatalf("Reduce(%d, %d) mod %d = %d want %d", hi, lo, q, got, want)
		}
	})
}

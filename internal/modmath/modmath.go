// Package modmath provides modular arithmetic over word-sized prime moduli.
//
// It is the arithmetic substrate for the polynomial rings used by both the
// arithmetic (CKKS) and logic (TFHE) FHE schemes in this repository. All
// moduli are required to fit in 63 bits so that lazy-reduction variants and
// Shoup multiplication remain correct; in practice the accelerator model uses
// 36-bit words (following SHARP) and the software schemes use 36–62 bit
// NTT-friendly primes.
package modmath

import "math/bits"

// AddMod returns (a + b) mod q. It requires a, b < q.
func AddMod(a, b, q uint64) uint64 {
	s := a + b
	if s >= q {
		s -= q
	}
	return s
}

// SubMod returns (a - b) mod q. It requires a, b < q.
func SubMod(a, b, q uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + q - b
}

// NegMod returns (-a) mod q. It requires a < q.
func NegMod(a, q uint64) uint64 {
	if a == 0 {
		return 0
	}
	return q - a
}

// MulMod returns (a * b) mod q using a full 128-bit product. It requires
// a, b < q (which guarantees the high product word is below q, so the
// hardware divide cannot trap).
func MulMod(a, b, q uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, r := bits.Div64(hi, lo, q)
	return r
}

// PowMod returns a^e mod q by square-and-multiply.
func PowMod(a, e, q uint64) uint64 {
	if q == 1 {
		return 0
	}
	r := uint64(1)
	a %= q
	for e > 0 {
		if e&1 == 1 {
			r = MulMod(r, a, q)
		}
		a = MulMod(a, a, q)
		e >>= 1
	}
	return r
}

// InvMod returns the multiplicative inverse of a modulo prime q, i.e.
// a^(q-2) mod q. The result is unspecified when a ≡ 0.
func InvMod(a, q uint64) uint64 {
	return PowMod(a, q-2, q)
}

// Barrett holds the precomputed state for Barrett reduction modulo a fixed
// q < 2^63. The constant mu = floor(2^128 / q) is stored as two 64-bit words.
//
// The accelerator maps one Barrett-reduced modular multiplication to three
// raw multiplications (one operand product plus two reduction products);
// the Meta-OP mult accounting in internal/metaop relies on that 3:1 ratio.
type Barrett struct {
	Q    uint64
	muHi uint64
	muLo uint64
}

// NewBarrett precomputes Barrett state for modulus q. It panics unless
// 1 < q < 2^62 (the bound keeps the correction loop overflow-free).
func NewBarrett(q uint64) Barrett {
	if q < 2 || q >= 1<<62 {
		panic("modmath: Barrett modulus must satisfy 1 < q < 2^62")
	}
	// mu = floor(2^128 / q), computed by two-step long division of the
	// base-2^64 numerator {1, 0, 0}.
	q1, r1 := bits.Div64(1, 0, q) // floor(2^64 / q), 2^64 mod q
	q0, _ := bits.Div64(r1, 0, q) // next quotient word
	return Barrett{Q: q, muHi: q1, muLo: q0}
}

// Reduce reduces the 128-bit value (hi, lo) modulo q. It requires
// hi*2^64 + lo < q·2^64 — equivalently hi < q — which covers both a single
// product of operands below q (x < q² < q·2^64) and the lazy accumulators in
// package ring that sum many such products before reducing (x ≤ m·q² with
// m·q ≤ 2^64). The bound is what keeps the quotient estimate in one word:
// t ≈ floor(x/q) < 2^64. Pinned against a big.Int oracle over the full
// domain by FuzzBarrettReduceWide.
func (b Barrett) Reduce(hi, lo uint64) uint64 {
	// Estimate t = floor(x * mu / 2^128) where x = hi:lo and mu = muHi:muLo.
	// Dropping the lo*muLo partial product makes the estimate short by at
	// most 2, fixed by the correction loop below.
	mhlHi, mhlLo := bits.Mul64(hi, b.muLo)
	mlhHi, mlhLo := bits.Mul64(lo, b.muHi)
	_, carry := bits.Add64(mhlLo, mlhLo, 0)
	t, _ := bits.Add64(mhlHi, mlhHi, carry)
	t += hi * b.muHi // weighted 2^128/2^128; quotient fits one word
	r := lo - t*b.Q
	for r >= b.Q {
		r -= b.Q
	}
	return r
}

// MulMod returns (x * y) mod q via Barrett reduction. Requires x, y < q.
func (b Barrett) MulMod(x, y uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	return b.Reduce(hi, lo)
}

// ReduceWord reduces an arbitrary 64-bit value modulo q. This is the
// single-word Barrett fold the kernels use when a residue crosses from one
// RNS channel into another (Bconv step 2, rescale correction, CKKS mod
// raise) — the sanctioned replacement for a raw % in hot-path code.
//
// The quotient estimate t = floor(x·muHi / 2^64) with muHi = floor(2^64/q)
// satisfies t ∈ {Q-1, Q} for the true quotient Q, so one conditional
// subtraction completes the reduction.
func (b Barrett) ReduceWord(x uint64) uint64 {
	t, _ := bits.Mul64(x, b.muHi)
	r := x - t*b.Q
	if r >= b.Q {
		r -= b.Q
	}
	return r
}

// ReduceSigned embeds a signed value into [0, q): v mod q with the sign
// folded in. It is the shared implementation behind the schemes' signed
// coefficient lifts (ternary secrets, Gaussian noise, centered plaintexts),
// so callers don't each re-derive the negative-operand % dance.
func ReduceSigned(v int64, q uint64) uint64 {
	if v >= 0 {
		u := uint64(v)
		if u < q {
			return u
		}
		return u % q
	}
	u := uint64(-v) % q
	if u == 0 {
		return 0
	}
	return q - u
}

// ShoupPrecomp returns floor(w * 2^64 / q), the Shoup precomputation for
// multiplying by the fixed constant w modulo q. Requires w < q < 2^63.
func ShoupPrecomp(w, q uint64) uint64 {
	quo, _ := bits.Div64(w, 0, q)
	return quo
}

// MulModShoup returns (a * w) mod q where wShoup = ShoupPrecomp(w, q).
// This is the fast path used for twiddle-factor multiplication in the NTT.
// Requires a < q < 2^63 and w < q.
func MulModShoup(a, w, wShoup, q uint64) uint64 {
	qHat, _ := bits.Mul64(a, wShoup)
	r := a*w - qHat*q
	if r >= q {
		r -= q
	}
	return r
}

// MulModShoupLazy is MulModShoup without the final conditional subtraction.
//
// Contract (pinned by FuzzMulModShoupLazyDomain): for q < 2^62, w < q and
// wShoup = ShoupPrecomp(w, q), any a < 4q yields a result r with
//
//	r < 2q  and  r ≡ a·w (mod q).
//
// The 4q input domain is Harvey's lazy butterfly range: NTT butterflies keep
// values in [0, 2q) and form sums/differences up to 4q before multiplying,
// deferring normalization — the software counterpart of the Meta-OP's
// deferred reduction. One conditional subtraction of q (condSub/condSubMask
// in package ring) folds r back to [0, q), making the lazy pipeline
// byte-identical to the eager one; reduceOnce handles the wider [0, 4q)
// accumulator range with one subtraction of 2q then one of q.
//
//alchemist:domain a:[0,4q) w:[0,q) q:modulus ret:[0,2q)
func MulModShoupLazy(a, w, wShoup, q uint64) uint64 {
	qHat, _ := bits.Mul64(a, wShoup)
	return a*w - qHat*q
}

package modmath

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

var testPrimes = []uint64{
	97,
	12289,                     // classic NTT prime
	(1 << 36) - 3*(1<<16) + 1, // not necessarily prime; replaced below
}

func init() {
	// Replace placeholder entries with genuine NTT-friendly primes.
	ps, err := GenerateNTTPrimes(36, 1<<17, 2)
	if err != nil {
		panic(err)
	}
	big, err := GenerateNTTPrimes(61, 1<<17, 1)
	if err != nil {
		panic(err)
	}
	testPrimes = []uint64{97, 12289, ps[0], ps[1], big[0]}
}

func TestAddSubNegMod(t *testing.T) {
	for _, q := range testPrimes {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1000; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			if got := AddMod(a, b, q); got != (a+b)%q {
				t.Fatalf("AddMod(%d,%d,%d) = %d", a, b, q, got)
			}
			if got := SubMod(a, b, q); got != (a+q-b)%q {
				t.Fatalf("SubMod(%d,%d,%d) = %d", a, b, q, got)
			}
			if got := AddMod(a, NegMod(a, q), q); got != 0 {
				t.Fatalf("a + (-a) != 0 mod %d for a=%d", q, a)
			}
		}
	}
}

func TestMulModAgainstBig(t *testing.T) {
	for _, q := range testPrimes {
		rng := rand.New(rand.NewSource(2))
		qb := new(big.Int).SetUint64(q)
		for i := 0; i < 1000; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, qb)
			if got := MulMod(a, b, q); got != want.Uint64() {
				t.Fatalf("MulMod(%d,%d,%d) = %d want %d", a, b, q, got, want.Uint64())
			}
		}
	}
}

func TestBarrettMatchesMulMod(t *testing.T) {
	for _, q := range testPrimes {
		br := NewBarrett(q)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 2000; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			if got, want := br.MulMod(a, b), MulMod(a, b, q); got != want {
				t.Fatalf("q=%d Barrett(%d,%d)=%d want %d", q, a, b, got, want)
			}
		}
		// Edge cases.
		for _, a := range []uint64{0, 1, q - 1} {
			for _, b := range []uint64{0, 1, q - 1} {
				if got, want := br.MulMod(a, b), MulMod(a, b, q); got != want {
					t.Fatalf("q=%d Barrett edge (%d,%d)=%d want %d", q, a, b, got, want)
				}
			}
		}
	}
}

func TestMontgomeryMatchesMulMod(t *testing.T) {
	for _, q := range testPrimes {
		if q&1 == 0 {
			continue
		}
		mt := NewMontgomery(q)
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 2000; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			am, bm := mt.ToMont(a), mt.ToMont(b)
			got := mt.FromMont(mt.MulMod(am, bm))
			if want := MulMod(a, b, q); got != want {
				t.Fatalf("q=%d Montgomery(%d,%d)=%d want %d", q, a, b, got, want)
			}
		}
		// Round-trip.
		for _, a := range []uint64{0, 1, 2, q - 2, q - 1} {
			if got := mt.FromMont(mt.ToMont(a)); got != a {
				t.Fatalf("q=%d Montgomery round-trip %d -> %d", q, a, got)
			}
		}
	}
}

func TestShoupMatchesMulMod(t *testing.T) {
	for _, q := range testPrimes {
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 2000; i++ {
			a := rng.Uint64() % q
			w := rng.Uint64() % q
			ws := ShoupPrecomp(w, q)
			if got, want := MulModShoup(a, w, ws, q), MulMod(a, w, q); got != want {
				t.Fatalf("q=%d Shoup(%d,%d)=%d want %d", q, a, w, got, want)
			}
		}
	}
}

func TestPowInvMod(t *testing.T) {
	for _, q := range testPrimes {
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 200; i++ {
			a := 1 + rng.Uint64()%(q-1)
			inv := InvMod(a, q)
			if MulMod(a, inv, q) != 1 {
				t.Fatalf("q=%d InvMod(%d) wrong", q, a)
			}
		}
		if PowMod(3, 0, q) != 1 {
			t.Fatalf("a^0 != 1")
		}
		// Fermat: a^(q-1) = 1.
		if PowMod(5%q, q-1, q) != 1 && q > 5 {
			t.Fatalf("Fermat fails for q=%d", q)
		}
	}
}

func TestIsPrimeKnownValues(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 12289, 65537, 1152921504606846883}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	composites := []uint64{0, 1, 4, 9, 561, 1105, 25326001, 3215031751, 3825123056546413051}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
}

func TestFactor(t *testing.T) {
	cases := map[uint64][]uint64{
		2:      {2},
		12:     {2, 3},
		360:    {2, 3, 5},
		12288:  {2, 3},
		999983: {999983},
	}
	for n, want := range cases {
		got := Factor(n)
		if len(got) != len(want) {
			t.Fatalf("Factor(%d) = %v want %v", n, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Factor(%d) = %v want %v", n, got, want)
			}
		}
	}
}

func TestPrimitiveRootAndRootOfUnity(t *testing.T) {
	for _, q := range testPrimes {
		g := PrimitiveRoot(q)
		// g^(q-1) == 1 but g^((q-1)/p) != 1 for all prime factors p.
		if PowMod(g, q-1, q) != 1 {
			t.Fatalf("q=%d: g^(q-1) != 1", q)
		}
		for _, p := range Factor(q - 1) {
			if PowMod(g, (q-1)/p, q) == 1 {
				t.Fatalf("q=%d: %d is not a primitive root", q, g)
			}
		}
	}
	// Negacyclic NTT needs a primitive 2N-th root.
	q := testPrimes[2]
	w, err := RootOfUnity(1<<17, q)
	if err != nil {
		t.Fatal(err)
	}
	if PowMod(w, 1<<17, q) != 1 || PowMod(w, 1<<16, q) == 1 {
		t.Fatalf("w is not a primitive 2^17-th root of unity mod %d", q)
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	ps, err := GenerateNTTPrimes(36, 1<<16, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, p := range ps {
		if !IsPrime(p) {
			t.Fatalf("%d not prime", p)
		}
		if (p-1)%(1<<16) != 0 {
			t.Fatalf("%d != 1 mod 2N", p)
		}
		if seen[p] {
			t.Fatalf("duplicate prime %d", p)
		}
		seen[p] = true
		if p>>35 != 1 {
			t.Fatalf("prime %d is not 36 bits", p)
		}
	}
	if _, err := GenerateNTTPrimes(5, 1<<16, 1); err == nil {
		t.Fatal("expected error for tiny bit size")
	}
}

func TestCRTRoundTrip(t *testing.T) {
	moduli := []uint64{12289, 40961, 65537, 786433}
	rng := rand.New(rand.NewSource(7))
	prod := big.NewInt(1)
	for _, q := range moduli {
		prod.Mul(prod, new(big.Int).SetUint64(q))
	}
	for i := 0; i < 100; i++ {
		x := new(big.Int).Rand(rng, prod)
		res := CRTDecompose(x, moduli)
		back := CRTReconstruct(res, moduli)
		if back.Cmp(x) != 0 {
			t.Fatalf("CRT round trip failed: %v -> %v", x, back)
		}
	}
}

// Property-based tests over randomized moduli and operands.

func TestQuickRingAxioms(t *testing.T) {
	q := testPrimes[3]
	br := NewBarrett(q)
	cfg := &quick.Config{MaxCount: 500}
	// Distributivity: a*(b+c) == a*b + a*c.
	distrib := func(a, b, c uint64) bool {
		a, b, c = a%q, b%q, c%q
		left := br.MulMod(a, AddMod(b, c, q))
		right := AddMod(br.MulMod(a, b), br.MulMod(a, c), q)
		return left == right
	}
	if err := quick.Check(distrib, cfg); err != nil {
		t.Error(err)
	}
	// Associativity of multiplication.
	assoc := func(a, b, c uint64) bool {
		a, b, c = a%q, b%q, c%q
		return br.MulMod(br.MulMod(a, b), c) == br.MulMod(a, br.MulMod(b, c))
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Error(err)
	}
	// Commutativity.
	comm := func(a, b uint64) bool {
		a, b = a%q, b%q
		return br.MulMod(a, b) == br.MulMod(b, a)
	}
	if err := quick.Check(comm, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBarrettMontgomeryShoupAgree(t *testing.T) {
	for _, q := range []uint64{testPrimes[2], testPrimes[4]} {
		br := NewBarrett(q)
		mt := NewMontgomery(q)
		f := func(a, w uint64) bool {
			a, w = a%q, w%q
			want := MulMod(a, w, q)
			if br.MulMod(a, w) != want {
				return false
			}
			if mt.FromMont(mt.MulMod(mt.ToMont(a), mt.ToMont(w))) != want {
				return false
			}
			return MulModShoup(a, w, ShoupPrecomp(w, q), q) == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

func BenchmarkMulModDiv(b *testing.B) {
	q := testPrimes[2]
	x, r := q-12345, q-98765
	for i := 0; i < b.N; i++ {
		r = MulMod(x, r, q)
	}
	sinkU64 = r
}

func BenchmarkMulModBarrett(b *testing.B) {
	q := testPrimes[2]
	br := NewBarrett(q)
	x, r := q-12345, q-98765
	for i := 0; i < b.N; i++ {
		r = br.MulMod(x, r)
	}
	sinkU64 = r
}

func BenchmarkMulModShoup(b *testing.B) {
	q := testPrimes[2]
	w := q - 98765
	ws := ShoupPrecomp(w, q)
	r := q - 12345
	for i := 0; i < b.N; i++ {
		r = MulModShoup(r, w, ws, q)
	}
	sinkU64 = r
}

var sinkU64 uint64

package modmath

import "math/bits"

// Montgomery holds precomputed state for Montgomery multiplication modulo an
// odd q < 2^62. Values live in the Montgomery domain (x·2^64 mod q).
type Montgomery struct {
	Q    uint64
	qInv uint64 // -q^{-1} mod 2^64
	r2   uint64 // 2^128 mod q, for domain conversion
}

// NewMontgomery precomputes Montgomery state for odd modulus q. It panics
// unless q is odd and in (2, 2^62).
func NewMontgomery(q uint64) Montgomery {
	if q < 3 || q&1 == 0 || q >= 1<<62 {
		panic("modmath: Montgomery modulus must be odd and in (2, 2^62)")
	}
	// Newton iteration for q^{-1} mod 2^64.
	inv := q // correct mod 2^3
	for i := 0; i < 5; i++ {
		inv *= 2 - q*inv
	}
	// r2 = (2^64 mod q)^2 mod q.
	_, r := bits.Div64(1, 0, q)
	r2 := MulMod(r, r, q)
	return Montgomery{Q: q, qInv: -inv, r2: r2}
}

// redc performs Montgomery reduction of the 128-bit value (hi, lo),
// returning (hi:lo) · 2^{-64} mod q.
func (m Montgomery) redc(hi, lo uint64) uint64 {
	u := lo * m.qInv
	h, _ := bits.Mul64(u, m.Q)
	// (hi:lo + u*q) / 2^64; the low word cancels by construction.
	_, carry := bits.Add64(lo, u*m.Q, 0)
	r, _ := bits.Add64(hi, h, carry)
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// ToMont converts x < q into the Montgomery domain.
func (m Montgomery) ToMont(x uint64) uint64 {
	hi, lo := bits.Mul64(x, m.r2)
	return m.redc(hi, lo)
}

// FromMont converts x out of the Montgomery domain.
func (m Montgomery) FromMont(x uint64) uint64 {
	return m.redc(0, x)
}

// MulMod multiplies two Montgomery-domain values, returning a
// Montgomery-domain result.
func (m Montgomery) MulMod(x, y uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	return m.redc(hi, lo)
}

package modmath

import (
	"fmt"
	"sort"
)

// IsPrime reports whether n is prime, using the deterministic Miller–Rabin
// witness set for 64-bit integers.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// n-1 = d * 2^s with d odd.
	d := n - 1
	s := 0
	for d&1 == 0 {
		d >>= 1
		s++
	}
	// These bases are a proven deterministic witness set for n < 2^64.
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := PowMod(a%n, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for r := 1; r < s; r++ {
			x = MulMod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// pollardRho returns a nontrivial factor of composite n > 1.
func pollardRho(n uint64) uint64 {
	if n%2 == 0 {
		return 2
	}
	// Brent's cycle-finding variant with a deterministic seed schedule.
	for c := uint64(1); ; c++ {
		f := func(x uint64) uint64 { return AddMod(MulMod(x, x, n), c%n, n) }
		x, y, d := uint64(2), uint64(2), uint64(1)
		for d == 1 {
			x = f(x)
			y = f(f(y))
			diff := SubMod(x, y, n)
			if diff == 0 {
				d = 0 // cycle without factor; retry with next c
				break
			}
			d = gcd(diff, n)
		}
		if d != 0 && d != n {
			return d
		}
	}
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Factor returns the sorted distinct prime factors of n > 0.
func Factor(n uint64) []uint64 {
	if n <= 1 {
		return nil
	}
	set := map[uint64]bool{}
	var rec func(m uint64)
	rec = func(m uint64) {
		if m == 1 {
			return
		}
		if IsPrime(m) {
			set[m] = true
			return
		}
		d := pollardRho(m)
		rec(d)
		rec(m / d)
	}
	rec(n)
	out := make([]uint64, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PrimitiveRoot returns a generator of the multiplicative group Z_q^* for
// prime q.
func PrimitiveRoot(q uint64) uint64 {
	if q == 2 {
		return 1
	}
	phi := q - 1
	factors := Factor(phi)
	for g := uint64(2); ; g++ {
		ok := true
		for _, p := range factors {
			if PowMod(g, phi/p, q) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g
		}
	}
}

// RootOfUnity returns a primitive m-th root of unity modulo prime q.
// It requires m | q-1.
func RootOfUnity(m, q uint64) (uint64, error) {
	if (q-1)%m != 0 {
		return 0, fmt.Errorf("modmath: %d does not divide q-1 for q=%d", m, q)
	}
	g := PrimitiveRoot(q)
	w := PowMod(g, (q-1)/m, q)
	return w, nil
}

// GenerateNTTPrimes returns count distinct primes of (approximately) the given
// bit size satisfying q ≡ 1 (mod 2N), searching downward from 2^bits. Such
// primes admit a negacyclic NTT of length N.
func GenerateNTTPrimes(bits, n2 uint64, count int) ([]uint64, error) {
	if bits < 8 || bits > 61 {
		return nil, fmt.Errorf("modmath: prime bit size %d out of range [8,61]", bits)
	}
	step := n2 // candidates are 1 mod 2N; n2 is 2N
	// Start at the largest value ≡ 1 mod 2N below 2^bits.
	top := (uint64(1) << bits) - 1
	cand := top - (top-1)%step
	var out []uint64
	for cand > uint64(1)<<(bits-1) {
		if IsPrime(cand) {
			out = append(out, cand)
			if len(out) == count {
				return out, nil
			}
		}
		cand -= step
	}
	return nil, fmt.Errorf("modmath: found only %d/%d NTT primes of %d bits for 2N=%d",
		len(out), count, bits, n2)
}

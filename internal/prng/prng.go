// Package prng provides the deterministic pseudo-random source used by the
// scheme packages (ring, tfhe, bgv, ckks). It exists so that library code
// never depends on math/rand: every generator is explicitly seeded and
// injectable, which keeps key generation, encryption noise and sampling
// reproducible under test, and gives alchemist-vet's no-weak-rand rule a
// single blessed alternative to point at.
//
// The generator is xoshiro256** (Blackman–Vigna), seeded through splitmix64
// so that nearby seeds yield uncorrelated streams. This reproduction does
// not target cryptographic-strength randomness; the point is discipline —
// no hidden global state, no silent reseeding.
package prng

import (
	"math"
	"math/bits"
)

// Source is the randomness interface consumed by the scheme packages.
// *Rand implements it; so does *math/rand.Rand, which tests may still
// inject (test files are outside the no-weak-rand rule's scope).
type Source interface {
	Uint64() uint64
	Uint32() uint32
	Intn(n int) int
	Float64() float64
	NormFloat64() float64
}

// Rand is a deterministic xoshiro256** generator.
type Rand struct {
	s [4]uint64

	// Cached second output of the Marsaglia polar transform.
	hasSpare bool
	spare    float64
}

// New returns a generator seeded from seed via splitmix64.
func New(seed int64) *Rand {
	r := &Rand{}
	x := uint64(seed)
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro's all-zero state is absorbing; splitmix64 cannot emit four
	// consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Uint64 returns the next 64 uniform bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint32 returns the next 32 uniform bits (the high word of Uint64).
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with non-positive n")
	}
	return int(UniformMod(r, uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// UniformMod draws a uniform value in [0, q) by masked rejection sampling —
// no modulo bias and no raw % on the hot path. It panics if q == 0.
func UniformMod(src Source, q uint64) uint64 {
	if q == 0 {
		panic("prng: UniformMod called with q == 0")
	}
	if q&(q-1) == 0 {
		return src.Uint64() & (q - 1)
	}
	mask := ^uint64(0) >> uint(bits.LeadingZeros64(q))
	for {
		v := src.Uint64() & mask
		if v < q {
			return v
		}
	}
}

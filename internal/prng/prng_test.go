package prng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("nearby seeds produced %d/1000 identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7): value %d drawn %d/70000 times, want ~10000", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestUniformMod(t *testing.T) {
	r := New(11)
	for _, q := range []uint64{1, 2, 3, 5, 1 << 16, 65537, (1 << 62) - 57} {
		for i := 0; i < 2000; i++ {
			v := UniformMod(r, q)
			if v >= q {
				t.Fatalf("UniformMod(%d) = %d", q, v)
			}
		}
	}
	// Unbiasedness smoke test for a worst-case modulus (just above a power
	// of two, so naive masking would reject ~50% and naive %-folding would
	// double-weight the low range).
	q := uint64(1<<16 + 1)
	low := 0
	for i := 0; i < 100000; i++ {
		if UniformMod(r, q) < q/2 {
			low++
		}
	}
	if low < 48500 || low > 51500 {
		t.Fatalf("UniformMod(%d): %d/100000 in lower half, want ~50000", q, low)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("NormFloat64 variance = %v, want ~1", variance)
	}
}

// The race detector makes sync.Pool drop a random fraction of Puts (to
// shake out pool races), so zero-allocation pins cannot hold under -race.
//go:build !race

package ring

import (
	"testing"

	"alchemist/internal/modmath"
)

// Steady-state allocation pins for the //alchemist:hot kernels. Once the
// arenas and caches are warm, a transform or conversion must not allocate:
// allocation in these loops is the software analogue of an accelerator
// spilling to HBM mid-kernel, and it is what the scratch pools exist to
// eliminate. Each pin runs on the serial path (workers=1, the default), which
// is also the path CI measures.

// TestPoolAllocFreeSteadyState pins the arena's core promise: a warm
// Get/Put (and Borrow/Release) cycle performs zero allocations. This is what
// distinguishes the header-boxing-free design from a naive sync.Pool of
// slices, which allocates a 3-word interface box per Put.
func TestPoolAllocFreeSteadyState(t *testing.T) {
	var bp BufPool
	bp.Put(bp.Get(1024)) // warm
	if n := testing.AllocsPerRun(100, func() {
		b := bp.Get(1024)
		bp.Put(b)
	}); n != 0 {
		t.Errorf("warm BufPool Get/Put allocates %.1f per op, want 0", n)
	}

	r := poolRing(t)
	level := r.MaxLevel()
	r.Release(r.Borrow(level)) // warm
	if n := testing.AllocsPerRun(100, func() {
		p := r.Borrow(level)
		r.Release(p)
	}); n != 0 {
		t.Errorf("warm Borrow/Release allocates %.1f per op, want 0", n)
	}
}

func allocRings(t *testing.T) (*Ring, *Ring) {
	t.Helper()
	const n = 256
	primes, err := modmath.GenerateNTTPrimes(40, uint64(2*n), 6)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := NewRing(n, primes[:4])
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRing(n, primes[4:])
	if err != nil {
		t.Fatal(err)
	}
	return rq, rp
}

func TestNTTAllocFree(t *testing.T) {
	rq, _ := allocRings(t)
	level := rq.MaxLevel()
	p := rq.NewPoly(level)
	NewSampler(rq, 1).Uniform(level, p)
	rq.NTT(level, p) // warm
	rq.INTT(level, p)
	if n := testing.AllocsPerRun(50, func() {
		rq.NTT(level, p)
		rq.INTT(level, p)
	}); n != 0 {
		t.Errorf("serial NTT+INTT allocates %.1f per op, want 0", n)
	}
}

func TestAutomorphismNTTAllocFree(t *testing.T) {
	rq, _ := allocRings(t)
	level := rq.MaxLevel()
	a := rq.NewPoly(level)
	out := rq.NewPoly(level)
	NewSampler(rq, 2).Uniform(level, a)
	k := rq.GaloisElementForRotation(1)
	rq.AutomorphismNTT(level, a, k, out) // warm the permutation cache
	if n := testing.AllocsPerRun(50, func() {
		rq.AutomorphismNTT(level, a, k, out)
	}); n != 0 {
		t.Errorf("warm AutomorphismNTT allocates %.1f per op, want 0", n)
	}
}

func TestModUpModDownAllocFree(t *testing.T) {
	rq, rp := allocRings(t)
	e := NewExtender(rq, rp)
	level := rq.MaxLevel()
	a := rq.NewPoly(level)
	NewSampler(rq, 3).Uniform(level, a)
	aP := rp.NewPoly(rp.MaxLevel())
	out := rq.NewPoly(level)

	e.ModUp(level, a, aP) // warm conversion scratch
	if n := testing.AllocsPerRun(50, func() {
		e.ModUp(level, a, aP)
	}); n != 0 {
		t.Errorf("warm ModUp allocates %.1f per op, want 0", n)
	}

	e.ModDown(level, a, aP, out) // warm arena + scratch
	if n := testing.AllocsPerRun(50, func() {
		e.ModDown(level, a, aP, out)
	}); n != 0 {
		t.Errorf("warm ModDown allocates %.1f per op, want 0", n)
	}

	e.ModDownExact(level, a, aP, out) // warm qModDst cache
	if n := testing.AllocsPerRun(50, func() {
		e.ModDownExact(level, a, aP, out)
	}); n != 0 {
		t.Errorf("warm ModDownExact allocates %.1f per op, want 0", n)
	}
}

func TestRescaleAllocFree(t *testing.T) {
	rq, rp := allocRings(t)
	e := NewExtender(rq, rp)
	level := rq.MaxLevel()
	a := rq.NewPoly(level)
	NewSampler(rq, 4).Uniform(level, a)
	out := rq.NewPoly(level - 1)
	e.RescaleByLastModulus(level, a, out) // warm
	if n := testing.AllocsPerRun(50, func() {
		e.RescaleByLastModulus(level, a, out)
	}); n != 0 {
		t.Errorf("RescaleByLastModulus allocates %.1f per op, want 0", n)
	}
}

func TestMulPolyAllocFree(t *testing.T) {
	rq, _ := allocRings(t)
	level := rq.MaxLevel()
	a := rq.NewPoly(level)
	b := rq.NewPoly(level)
	out := rq.NewPoly(level)
	s := NewSampler(rq, 5)
	s.Uniform(level, a)
	s.Uniform(level, b)
	rq.MulPoly(level, a, b, out) // warm
	if n := testing.AllocsPerRun(20, func() {
		rq.MulPoly(level, a, b, out)
	}); n != 0 {
		t.Errorf("warm MulPoly allocates %.1f per op, want 0", n)
	}
}

// TestLazyAcc128AllocFree pins the 128-bit accumulator loop: a warm
// BorrowAcc → MulCoeffsLazy128 (plain and permuted) → ReduceAcc128 →
// ReleaseAcc cycle must not allocate. Acc128 is returned by value and its
// polynomials come from the arena, so the steady state is pure arithmetic.
func TestLazyAcc128AllocFree(t *testing.T) {
	rq, _ := allocRings(t)
	level := rq.MaxLevel()
	a := rq.NewPoly(level)
	b := rq.NewPoly(level)
	out := rq.NewPoly(level)
	s := NewSampler(rq, 6)
	s.Uniform(level, a)
	s.Uniform(level, b)
	k := rq.GaloisElementForRotation(1)
	// Warm the arena and the permutation cache.
	acc := rq.BorrowAcc(level)
	rq.MulCoeffsLazy128(level, a, b, &acc)
	rq.MulCoeffsLazy128Auto(level, a, k, b, &acc)
	rq.ReduceAcc128(level, &acc, out)
	rq.ReleaseAcc(&acc)
	if n := testing.AllocsPerRun(20, func() {
		acc := rq.BorrowAcc(level)
		rq.MulCoeffsLazy128(level, a, b, &acc)
		rq.MulCoeffsLazy128Auto(level, a, k, b, &acc)
		rq.AddLazy128(level, a, &acc)
		rq.ReduceAcc128(level, &acc, out)
		rq.ReleaseAcc(&acc)
	}); n != 0 {
		t.Errorf("warm lazy accumulator loop allocates %.1f per op, want 0", n)
	}
}

// TestDecomposerAllocFree pins the digit-batched dual conversion: the lazy
// stack tiles and the shared step-1 scratch must leave DecomposeAll
// allocation-free once the converter scratch is warm.
func TestDecomposerAllocFree(t *testing.T) {
	rq, rp := allocRings(t)
	level := rq.MaxLevel()
	const alpha = 2
	var duals []*DualConverter
	for g := 0; g*alpha < len(rq.Moduli); g++ {
		hi := (g + 1) * alpha
		if hi > len(rq.Moduli) {
			hi = len(rq.Moduli)
		}
		src := rq.Moduli[g*alpha : hi]
		dc, err := NewDualConverter(
			NewBasisConverter(src, rq.Moduli),
			NewBasisConverter(src, rp.Moduli), g*alpha)
		if err != nil {
			t.Fatal(err)
		}
		duals = append(duals, dc)
	}
	dec := NewDecomposer(alpha, duals)
	c := rq.NewPoly(level)
	NewSampler(rq, 7).Uniform(level, c)
	groups := dec.GroupsAt(level)
	dQ := make([]*Poly, groups)
	dP := make([]*Poly, groups)
	for g := range dQ {
		dQ[g] = rq.NewPoly(level)
		dP[g] = rp.NewPoly(rp.MaxLevel())
	}
	dec.DecomposeAll(level, c, dQ, dP) // warm
	if n := testing.AllocsPerRun(20, func() {
		dec.DecomposeAll(level, c, dQ, dP)
	}); n != 0 {
		t.Errorf("warm DecomposeAll allocates %.1f per op, want 0", n)
	}
}

// TestVectorKernelDispatchAllocFree pins the asm-kernel dispatch paths at
// the SubRing level: on hardware with the vector tiers, NTTLazy/INTTLazy
// take the blocked kernel drivers (N ≥ minVecN), and those drivers must
// stay allocation-free — all twiddle tables are precomputed SoA slices and
// the stage loops index them in place.
func TestVectorKernelDispatchAllocFree(t *testing.T) {
	if !useNTTKern {
		t.Skip("scalar-only build: vector kernels compiled out")
	}
	rq, _ := allocRings(t)
	s := rq.SubRings[0]
	p := make([]uint64, s.N)
	NewSampler(rq, 9).Uniform(0, &Poly{Coeffs: [][]uint64{p}})
	s.NTTLazy(p) // warm
	s.INTTLazy(p)
	if n := testing.AllocsPerRun(50, func() {
		s.NTTLazy(p)
		s.INTTLazy(p)
	}); n != 0 {
		t.Errorf("vector NTTLazy+INTTLazy allocates %.1f per op, want 0", n)
	}
}

package ring

import "alchemist/internal/modmath"

// Automorphism applies the Galois automorphism φ_k : X ↦ X^k (k odd,
// invertible mod 2N) to a in the coefficient domain, writing the result to
// out. out must not alias a. CKKS rotations by r slots use k = 5^r mod 2N;
// conjugation uses k = 2N-1.
func (r *Ring) Automorphism(level int, a *Poly, k uint64, out *Poly) {
	n := uint64(r.N)
	mask := 2*n - 1
	k &= mask
	for i := 0; i <= level; i++ {
		q := r.Moduli[i]
		src, dst := a.Coeffs[i], out.Coeffs[i]
		for j := uint64(0); j < n; j++ {
			m := (j * k) & mask
			if m < n {
				dst[m] = src[j]
			} else {
				dst[m-n] = modmath.NegMod(src[j], q)
			}
		}
	}
}

// AutomorphismNTT applies φ_k directly in the (bit-reversed) NTT domain,
// where it is a pure index permutation: output slot j evaluates the
// polynomial at ψ^(e_j·k) with e_j = 2·brv(j)+1, so
// out[j] = in[brv((e_j·k mod 2N - 1)/2)]. This is the hot path real
// libraries use for rotations on NTT-resident ciphertexts; it is validated
// against the coefficient-domain Automorphism in the tests.
//
//alchemist:hot
func (r *Ring) AutomorphismNTT(level int, a *Poly, k uint64, out *Poly) {
	n := r.N
	mask := uint64(2*n - 1)
	k &= mask
	perm := r.automorphismPerm(k)
	// Limb-parallel gather: the permutation table is computed (or fetched
	// from the cache) once above, then shared read-only by every partition.
	if parts := r.parWidth(level + 1); parts > 1 {
		j := r.getJob()
		j.op, j.a, j.out, j.pi, j.tasks = opAutoNTT, a, out, perm, level+1
		r.runParallel(j, parts)
		return
	}
	for i := 0; i <= level; i++ {
		src, dst := a.Coeffs[i][:n:n], out.Coeffs[i][:n:n]
		if useNTTKern && n&3 == 0 {
			gatherIdxVec(dst, src, perm)
			continue
		}
		for j := range dst {
			dst[j] = src[perm[j]]
		}
	}
}

// automorphismPerm returns the NTT-domain index permutation for φ_k, cached
// per Ring: an evaluation uses a handful of Galois elements (its rotation
// keys) over and over, and recomputing the table cost more than the
// permutation itself. k must already be masked to [0, 2N).
func (r *Ring) automorphismPerm(k uint64) []int32 {
	if cached, ok := r.permCache.Load(k); ok {
		return cached.([]int32)
	}
	n := r.N
	logN := log2(n)
	mask := uint64(2*n - 1)
	perm := make([]int32, n)
	for j := 0; j < n; j++ {
		e := (2*uint64(bitrev(uint32(j), logN)) + 1) * k & mask
		perm[j] = int32(bitrev(uint32((e-1)/2), logN))
	}
	r.permCache.Store(k, perm)
	return perm
}

// GaloisElementForRotation returns the Galois element 5^steps mod 2N used to
// rotate CKKS slot vectors by the given number of steps (negative steps
// rotate the other way).
func (r *Ring) GaloisElementForRotation(steps int) uint64 {
	// 2N is a power of two, so reduction mod 2N is a mask (no divider).
	mask := uint64(2*r.N) - 1
	// Order of 5 in Z_{2N}^* is N/2; normalize steps into [0, N/2).
	halfSlots := r.N / 2
	s := ((steps % halfSlots) + halfSlots) % halfSlots
	g := uint64(1)
	base := uint64(5)
	for e := s; e > 0; e >>= 1 {
		if e&1 == 1 {
			g = g * base & mask
		}
		base = base * base & mask
	}
	return g
}

// GaloisElementConjugate returns the Galois element 2N-1 (complex
// conjugation of the CKKS slots).
func (r *Ring) GaloisElementConjugate() uint64 { return uint64(2*r.N - 1) }

package ring

import (
	"fmt"
	"math/bits"

	"alchemist/internal/modmath"
)

// Digit-batched basis conversion: the Bconv half of the fused keyswitch.
//
// The eager ConvertN reduces every accumulated term (AddMod + a three-way
// case split on the source/target modulus relation). The lazy variant below
// accumulates Σ y_i·(q̂_i mod p_j) per coefficient as an unreduced 128-bit
// pair in a stack tile and folds ONCE per target channel — a uniform,
// branch-free inner loop whose output is byte-identical (both compute the
// same fully reduced sum mod p_j). On top of it, DualConverter converts one
// digit group to BOTH keyswitch targets (Q and P) sharing the step-1 digit
// scaling y_i = [x_i·q̂_i^{-1}]_{q_i} between them — the eager path computes
// those y twice — and copies the group's own Q channels verbatim (the
// conversion is the identity there: q̂_i ≡ 0 mod q_j for i ≠ j inside the
// group, and y_j·q̂_j ≡ x_j). Decomposer batches the dual conversion over
// every digit group, so a whole ModUp runs in one pass over the converter's
// scratch arena instead of two passes per digit.

// ConvertLazyN is ConvertN with lazy 128-bit accumulation in step 2:
// byte-identical output, one Barrett fold per target coefficient instead of a
// reduction per term. The tile accumulators flush at the capacity bound
// m·q_src ≤ 2^64 (see lazyCap), so any source width up to the 2^62 modulus
// bound is safe.
//
//alchemist:hot
func (bc *BasisConverter) ConvertLazyN(srcLevel int, in, out [][]uint64, nDst int) {
	n := len(in[0])
	tiles := (n + convBlock - 1) / convBlock
	if r := bc.host; r != nil {
		// Column-parallel dispatch: tiles are disjoint coefficient ranges, so
		// partitions write disjoint slices of every target channel and the
		// per-tile arithmetic — and therefore the output — is byte-identical
		// to the serial tile loop.
		if parts := r.parWidth(tiles); parts > 1 {
			j := r.getJob()
			j.op, j.bc, j.srcLevel, j.in, j.o1, j.nDst, j.tasks = opConvert, bc, srcLevel, in, out, nDst, tiles
			r.runParallel(j, parts)
			return
		}
	}
	bc.convertLazyRange(srcLevel, in, out, nDst, 0, tiles, 0)
}

// convertLazyRange is the tile-range body of ConvertLazyN: it processes
// tiles [t0, t1) (tile t covers coefficients [t·convBlock, (t+1)·convBlock)
// clamped to n), drawing scratch from the given arena shard so concurrent
// partitions never contend on one resident stack.
//
//alchemist:hot
func (bc *BasisConverter) convertLazyRange(srcLevel int, in, out [][]uint64, nDst, t0, t1, shard int) {
	n := len(in[0])
	L := srcLevel + 1
	if bc.conv52 && L <= convBlock && L <= bc.lazyCap && n&7 == 0 {
		bc.convertLazy52Range(srcLevel, in, out, nDst, t0, t1, shard)
		return
	}
	y := bc.scratch.GetShard(shard, L*convBlock)
	hatRow := bc.qiHat[srcLevel]
	for k0 := t0 * convBlock; k0 < t1*convBlock && k0 < n; k0 += convBlock {
		kn := n - k0
		if kn > convBlock {
			kn = convBlock
		}
		bc.convStep1T(srcLevel, k0, kn, in, y)
		for j := 0; j < nDst; j++ {
			lazyConvTile(hatRow, L, j, kn, bc.lazyCap, y, bc.dstRed[j], out[j][k0:k0+kn])
		}
	}
	bc.scratch.PutShard(shard, y)
}

// convertLazy52Range is the tile-range body of ConvertLazyN on the
// AVX512-IFMA kernels: step 1 runs shoupMulVec52 per source channel into the
// channel-major tile, step 2 runs convAcc52 per target channel, accumulating
// exact base-2^52 partial sums that are reconstructed into the same 128-bit
// integer the scalar path folds (hi·2^52 + lo, carry-exact), so the Barrett
// residue — and therefore the output — is byte-identical to lazyConvTile.
// The gates (conv52, L ≤ convBlock, L ≤ lazyCap, 8 | n) guarantee, in order:
// every madd operand below 2^52, the stack column stash fits, the
// reconstructed sum inside Barrett's x < p_j·2^64 domain, and whole 8-lane
// tiles. No flush path is needed: L ≤ convBlock = 64 keeps both lane sums
// far below the 2^64 accumulator bound (overflow would need L ≥ 2^12). The
// per-call stack tiles make the range form trivially partition-safe.
//
//alchemist:hot
func (bc *BasisConverter) convertLazy52Range(srcLevel int, in, out [][]uint64, nDst, t0, t1, shard int) {
	n := len(in[0])
	L := srcLevel + 1
	y := bc.scratch.GetShard(shard, L*convBlock)
	invRow, inv52Row := bc.qiHatInv[srcLevel], bc.qiHatInv52[srcLevel]
	hatRow := bc.qiHat[srcLevel]
	var hc, lo, hi [convBlock]uint64
	for k0 := t0 * convBlock; k0 < t1*convBlock && k0 < n; k0 += convBlock {
		kn := n - k0
		if kn > convBlock {
			kn = convBlock
		}
		for i := 0; i < L; i++ {
			shoupMulVec52(y[i*convBlock:i*convBlock+kn], in[i][k0:k0+kn], invRow[i], inv52Row[i], bc.Src[i])
		}
		for j := 0; j < nDst; j++ {
			for i := 0; i < L; i++ {
				hc[i] = hatRow[i][j]
			}
			convAcc52(y, hc[:L], lo[:kn], hi[:kn], convBlock)
			convFold52(bc.dstRed[j], lo[:kn], hi[:kn], out[j][k0:k0+kn])
		}
	}
	bc.scratch.PutShard(shard, y)
}

// convFold52 reconstructs each coefficient's exact 128-bit sum from the
// base-2^52 partial-sum pair and Barrett-folds it:
// value = hi·2^52 + lo = (hi>>12)·2^64 + (hi<<52 + lo), with the add's carry
// promoted into the high word.
//
//alchemist:hot
func convFold52(red modmath.Barrett, lo, hi, dst []uint64) {
	for k := range dst {
		h, l := hi[k]>>12, hi[k]<<52
		var c uint64
		l, c = bits.Add64(l, lo[k], 0)
		dst[k] = red.Reduce(h+c, l)
	}
}

// convStep1T is convStep1 with the scratch tile transposed to
// coefficient-major order (y[k*L+i]): the lazy step-2 kernel walks one
// coefficient's terms contiguously instead of striding convBlock words per
// term, which keeps its inner loop in a single cache line and lets the
// compiler drop the index arithmetic and bounds checks. The eager ConvertN
// keeps the channel-major convStep1 — its step 2 walks channel-major.
//
//alchemist:hot
func (bc *BasisConverter) convStep1T(srcLevel, k0, kn int, in [][]uint64, y []uint64) {
	invRow, invSRow := bc.qiHatInv[srcLevel], bc.qiHatInvShoup[srcLevel]
	L := srcLevel + 1
	for i := 0; i <= srcLevel; i++ {
		qi := bc.Src[i]
		inv, invS := invRow[i], invSRow[i]
		src := in[i][k0 : k0+kn]
		for k, v := range src {
			y[k*L+i] = modmath.MulModShoup(v, inv, invS, qi)
		}
	}
}

// convStep1 computes the shared first step of the HPS conversion for one
// coefficient tile: y_i = [x_i · q̂_i^{-1}]_{q_i} per source channel.
//
//alchemist:hot
func (bc *BasisConverter) convStep1(srcLevel, k0, kn int, in [][]uint64, y []uint64) {
	invRow, invSRow := bc.qiHatInv[srcLevel], bc.qiHatInvShoup[srcLevel]
	for i := 0; i <= srcLevel; i++ {
		qi := bc.Src[i]
		inv, invS := invRow[i], invSRow[i]
		src := in[i][k0 : k0+kn]
		yb := y[i*convBlock : i*convBlock+kn]
		for k := range src {
			yb[k] = modmath.MulModShoup(src[k], inv, invS, qi)
		}
	}
}

// lazyConvTile accumulates step 2 for one target channel over one tile:
// dst[k] = (Σ_i y[k*L+i] · hatRow[i][j]) mod p_j, each coefficient's sum
// kept as an unreduced hi:lo register pair with a single deferred Barrett
// fold. y is the coefficient-major tile from convStep1T, so one
// coefficient's terms are contiguous; the q̂ column for the target channel
// is gathered once into a stack array, and the inner loop runs
// load → widening-multiply → carry-chain with no tile-sized
// read-modify-write traffic, writing dst exactly once. The kernel allocates
// nothing.
func lazyConvTile(hatRow [][]uint64, L, j, kn, lazyCap int, y []uint64, red modmath.Barrett, dst []uint64) {
	if L <= lazyCap && L <= convBlock {
		var h [convBlock]uint64
		for i := 0; i < L; i++ {
			h[i] = hatRow[i][j]
		}
		hc := h[:L]
		// Two independent accumulator pairs so consecutive terms do not
		// serialize on one add-with-carry chain; the exact 128-bit merge
		// keeps the integer total — and therefore the folded residue —
		// bit-identical (addition order cannot change it, and the capacity
		// bound covers the recombined whole).
		for k := 0; k < kn; k++ {
			yk := y[k*L : k*L+L]
			var a0h, a0l, a1h, a1l uint64
			i := 0
			for ; i+2 <= len(yk); i += 2 {
				var c uint64
				ph, pl := bits.Mul64(yk[i], hc[i])
				a0l, c = bits.Add64(a0l, pl, 0)
				a0h += ph + c
				ph, pl = bits.Mul64(yk[i+1], hc[i+1])
				a1l, c = bits.Add64(a1l, pl, 0)
				a1h += ph + c
			}
			if i < len(yk) {
				var c uint64
				ph, pl := bits.Mul64(yk[i], hc[i])
				a0l, c = bits.Add64(a0l, pl, 0)
				a0h += ph + c
			}
			var c uint64
			a0l, c = bits.Add64(a0l, a1l, 0)
			a0h += a1h + c
			dst[k] = red.Reduce(a0h, a0l)
		}
		return
	}
	// Wide sources (more terms than the capacity bound or the column stash):
	// same register accumulation with periodic in-register flushes. The flush
	// point cannot change the result — Reduce is exact, so the refolded
	// residue re-enters the sum unchanged mod p_j.
	for k := 0; k < kn; k++ {
		var hi, lo uint64
		terms := 0
		for i := 0; i < L; i++ {
			if terms >= lazyCap {
				lo = red.Reduce(hi, lo)
				hi = 0
				terms = 1 // the flushed residue
			}
			terms++
			phi, plo := bits.Mul64(y[k*L+i], hatRow[i][j])
			var c uint64
			lo, c = bits.Add64(lo, plo, 0)
			hi += phi + c
		}
		dst[k] = red.Reduce(hi, lo)
	}
}

// DualConverter converts one digit group to both keyswitch target bases in a
// single pass, sharing the step-1 scaling and short-circuiting the group's
// own Q channels to verbatim copies. Built from the same per-group converters
// the eager reference path uses, so the tables are not duplicated.
type DualConverter struct {
	ToQ, ToP *BasisConverter
	// qOff is the index of the group's first modulus inside the Q target
	// basis (the identity channels are [qOff, qOff+L)), or -1 when the
	// source is not a contiguous slice of the target.
	qOff int
}

// NewDualConverter pairs the two per-group converters. qOff marks where the
// group's moduli sit inside toQ.Dst (pass -1 to disable the identity-copy
// fast path); it is validated against the actual moduli.
func NewDualConverter(toQ, toP *BasisConverter, qOff int) (*DualConverter, error) {
	if len(toQ.Src) != len(toP.Src) {
		return nil, fmt.Errorf("ring: dual converter source mismatch: %d vs %d moduli", len(toQ.Src), len(toP.Src))
	}
	for i := range toQ.Src {
		if toQ.Src[i] != toP.Src[i] {
			return nil, fmt.Errorf("ring: dual converter source mismatch at channel %d", i)
		}
	}
	if qOff >= 0 {
		if qOff+len(toQ.Src) > len(toQ.Dst) {
			return nil, fmt.Errorf("ring: identity offset %d out of range", qOff)
		}
		for i, q := range toQ.Src {
			if toQ.Dst[qOff+i] != q {
				return nil, fmt.Errorf("ring: source modulus %d is not target channel %d", q, qOff+i)
			}
		}
	}
	return &DualConverter{ToQ: toQ, ToP: toP, qOff: qOff}, nil
}

// ConvertBoth converts the group digits (srcLevel+1 channels, coefficient
// domain) into the first nQ channels of outQ and all channels of outP,
// byte-identical to running the two eager conversions separately.
//
//alchemist:hot
func (dc *DualConverter) ConvertBoth(srcLevel int, in, outQ, outP [][]uint64, nQ int) {
	n := len(in[0])
	tiles := (n + convBlock - 1) / convBlock
	if r := dc.ToQ.host; r != nil {
		if parts := r.parWidth(tiles); parts > 1 {
			j := r.getJob()
			j.op, j.dc, j.srcLevel, j.in, j.o1, j.o2, j.nQ, j.tasks = opConvertBoth, dc, srcLevel, in, outQ, outP, nQ, tiles
			r.runParallel(j, parts)
			return
		}
	}
	dc.convertBothRange(srcLevel, in, outQ, outP, nQ, 0, tiles, 0)
}

// convertBothRange is the tile-range body of ConvertBoth (tiles [t0, t1),
// scratch from the given arena shard). The identity-copy fast path and the
// per-tile fold order are unchanged, so the range decomposition is
// byte-identical to the full sweep.
//
//alchemist:hot
func (dc *DualConverter) convertBothRange(srcLevel int, in, outQ, outP [][]uint64, nQ, t0, t1, shard int) {
	n := len(in[0])
	L := srcLevel + 1
	toQ, toP := dc.ToQ, dc.ToP
	if toQ.conv52 && toP.conv52 && L <= convBlock && L <= toQ.lazyCap && L <= toP.lazyCap && n&7 == 0 {
		dc.convertBoth52Range(srcLevel, in, outQ, outP, nQ, t0, t1, shard)
		return
	}
	y := toQ.scratch.GetShard(shard, L*convBlock)
	hatQ := toQ.qiHat[srcLevel]
	hatP := toP.qiHat[srcLevel]
	for k0 := t0 * convBlock; k0 < t1*convBlock && k0 < n; k0 += convBlock {
		kn := n - k0
		if kn > convBlock {
			kn = convBlock
		}
		toQ.convStep1T(srcLevel, k0, kn, in, y)
		for j := 0; j < nQ; j++ {
			if dc.qOff >= 0 && j >= dc.qOff && j < dc.qOff+L {
				copy(outQ[j][k0:k0+kn], in[j-dc.qOff][k0:k0+kn])
				continue
			}
			lazyConvTile(hatQ, L, j, kn, toQ.lazyCap, y, toQ.dstRed[j], outQ[j][k0:k0+kn])
		}
		for j := range toP.Dst {
			lazyConvTile(hatP, L, j, kn, toP.lazyCap, y, toP.dstRed[j], outP[j][k0:k0+kn])
		}
	}
	toQ.scratch.PutShard(shard, y)
}

// convertBoth52Range is convertBothRange on the AVX512-IFMA kernels: the two
// dual converters share the same source basis (validated by
// NewDualConverter), so step 1 runs once per tile through shoupMulVec52 and
// both target bases consume the same channel-major tile via convAcc52. The
// identity-copy fast path for the group's own Q channels is preserved
// unchanged. Byte-identical to the scalar range body for the same reasons as
// convertLazy52Range.
//
//alchemist:hot
func (dc *DualConverter) convertBoth52Range(srcLevel int, in, outQ, outP [][]uint64, nQ, t0, t1, shard int) {
	n := len(in[0])
	L := srcLevel + 1
	toQ, toP := dc.ToQ, dc.ToP
	y := toQ.scratch.GetShard(shard, L*convBlock)
	invRow, inv52Row := toQ.qiHatInv[srcLevel], toQ.qiHatInv52[srcLevel]
	hatQ := toQ.qiHat[srcLevel]
	hatP := toP.qiHat[srcLevel]
	var hc, lo, hi [convBlock]uint64
	for k0 := t0 * convBlock; k0 < t1*convBlock && k0 < n; k0 += convBlock {
		kn := n - k0
		if kn > convBlock {
			kn = convBlock
		}
		for i := 0; i < L; i++ {
			shoupMulVec52(y[i*convBlock:i*convBlock+kn], in[i][k0:k0+kn], invRow[i], inv52Row[i], toQ.Src[i])
		}
		for j := 0; j < nQ; j++ {
			if dc.qOff >= 0 && j >= dc.qOff && j < dc.qOff+L {
				copy(outQ[j][k0:k0+kn], in[j-dc.qOff][k0:k0+kn])
				continue
			}
			for i := 0; i < L; i++ {
				hc[i] = hatQ[i][j]
			}
			convAcc52(y, hc[:L], lo[:kn], hi[:kn], convBlock)
			convFold52(toQ.dstRed[j], lo[:kn], hi[:kn], outQ[j][k0:k0+kn])
		}
		for j := range toP.Dst {
			for i := 0; i < L; i++ {
				hc[i] = hatP[i][j]
			}
			convAcc52(y, hc[:L], lo[:kn], hi[:kn], convBlock)
			convFold52(toP.dstRed[j], lo[:kn], hi[:kn], outP[j][k0:k0+kn])
		}
	}
	toQ.scratch.PutShard(shard, y)
}

// Decomposer batches the dual conversion over every digit group of a hybrid
// keyswitch: one call performs the whole ModUp for all digits.
type Decomposer struct {
	Alpha  int
	Groups []*DualConverter
}

// NewDecomposer wraps the per-group dual converters (one per digit group,
// each over alpha consecutive source moduli).
func NewDecomposer(alpha int, groups []*DualConverter) *Decomposer {
	return &Decomposer{Alpha: alpha, Groups: groups}
}

// GroupsAt returns how many digit groups are active at the given level:
// ceil((level+1)/alpha).
func (d *Decomposer) GroupsAt(level int) int { return (level + d.Alpha) / d.Alpha }

// GroupRange returns the source channel range [lo, hi) of digit group g,
// clamped to the working level.
func (d *Decomposer) GroupRange(g, level int) (lo, hi int) {
	lo = g * d.Alpha
	hi = lo + d.Alpha
	if hi > level+1 {
		hi = level + 1
	}
	return lo, hi
}

// DecomposeAll performs the full digit decomposition of c (coefficient
// domain, levels 0..level): for each active group g, dQ[g] receives the digit
// extended to the first level+1 Q channels and dP[g] the digit extended to
// the whole P basis. Output is byte-identical to the eager per-group
// ConvertN/Convert pair.
//
//alchemist:hot
func (d *Decomposer) DecomposeAll(level int, c *Poly, dQ, dP []*Poly) {
	for g := 0; g < d.GroupsAt(level); g++ {
		lo, hi := d.GroupRange(g, level)
		d.Groups[g].ConvertBoth(hi-lo-1, c.Coeffs[lo:hi], dQ[g].Coeffs, dP[g].Coeffs, level+1)
	}
}

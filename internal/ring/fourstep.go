package ring

import (
	"fmt"

	"alchemist/internal/modmath"
)

// The 4-step (Bailey) NTT decomposes a length-N negacyclic NTT into
// N/n1 row transforms of size n1 plus twiddles and transposes. Alchemist
// uses it so that each computing unit only ever transforms the slots held in
// its private scratchpad (§5.3): for N = 16384 and 128 units, the NTT
// becomes two rounds of 128-point sub-NTTs with one transpose through the
// transpose register file in between.
//
// This software implementation computes the natural-order negacyclic DFT
//
//	X[k] = Σ_j a[j] · ψ^(j(2k+1))
//
// and is validated against an O(N²) evaluation; the scheduler uses the same
// step structure to derive instruction streams and transpose traffic.

// FourStepNTT computes the natural-order negacyclic NTT of a with an
// n1 × (N/n1) decomposition, returning a fresh slice. n1 must divide N.
func (s *SubRing) FourStepNTT(a []uint64, n1 int) ([]uint64, error) {
	n := s.N
	if n1 <= 0 || n%n1 != 0 {
		return nil, fmt.Errorf("ring: n1=%d does not divide N=%d", n1, n)
	}
	n2 := n / n1
	if n1&(n1-1) != 0 || n2&(n2-1) != 0 {
		return nil, fmt.Errorf("ring: 4-step tile sizes must be powers of two (n1=%d, n2=%d)", n1, n2)
	}
	q := s.Q
	omega := modmath.MulMod(s.Psi, s.Psi, q) // primitive N-th root
	omega1 := modmath.PowMod(omega, uint64(n2), q)
	omega2 := modmath.PowMod(omega, uint64(n1), q)

	// Row-major matrix scratch from the subring arena (row j1 of T is
	// t[j1·n2 : (j1+1)·n2], row k2 of U is u[k2·n1 : (k2+1)·n1]); only the
	// returned slice is allocated.
	scaled := s.scratch.Get(n)
	t := s.scratch.Get(n)
	u := s.scratch.Get(n)
	// Pre-scale by ψ^j (negacyclic fold), laid out as T[j1][j2] = a[j1 + n1·j2].
	psiPow := uint64(1)
	for j := 0; j < n; j++ {
		scaled[j] = modmath.MulMod(a[j], psiPow, q)
		psiPow = modmath.MulMod(psiPow, s.Psi, q)
	}
	for j1 := 0; j1 < n1; j1++ {
		row := t[j1*n2 : (j1+1)*n2]
		for j2 := 0; j2 < n2; j2++ {
			row[j2] = scaled[j1+n1*j2]
		}
	}
	// Step 1: length-n2 cyclic NTT along each row (local to a unit).
	for j1 := 0; j1 < n1; j1++ {
		cyclicNTT(t[j1*n2:(j1+1)*n2], q, omega2)
	}
	// Step 2: twiddle T[j1][k2] *= ω^(j1·k2).
	for j1 := 0; j1 < n1; j1++ {
		row := t[j1*n2 : (j1+1)*n2]
		wRow := modmath.PowMod(omega, uint64(j1), q)
		w := uint64(1)
		for k2 := 0; k2 < n2; k2++ {
			row[k2] = modmath.MulMod(row[k2], w, q)
			w = modmath.MulMod(w, wRow, q)
		}
	}
	// Step 3: transpose (through the transpose register file on hardware).
	for k2 := 0; k2 < n2; k2++ {
		row := u[k2*n1 : (k2+1)*n1]
		for j1 := 0; j1 < n1; j1++ {
			row[j1] = t[j1*n2+k2]
		}
	}
	// Step 4: length-n1 cyclic NTT along each transposed row.
	for k2 := 0; k2 < n2; k2++ {
		cyclicNTT(u[k2*n1:(k2+1)*n1], q, omega1)
	}
	// Final gather: X[k2 + n2·k1] = U[k2][k1] (second transpose, making the
	// output natural-order).
	out := make([]uint64, n)
	for k2 := 0; k2 < n2; k2++ {
		row := u[k2*n1 : (k2+1)*n1]
		for k1 := 0; k1 < n1; k1++ {
			out[k2+n2*k1] = row[k1]
		}
	}
	s.scratch.Put(scaled)
	s.scratch.Put(t)
	s.scratch.Put(u)
	return out, nil
}

// FourStepINTT inverts FourStepNTT (natural-order negacyclic DFT input).
func (s *SubRing) FourStepINTT(x []uint64, n1 int) ([]uint64, error) {
	n := s.N
	if n1 <= 0 || n%n1 != 0 {
		return nil, fmt.Errorf("ring: n1=%d does not divide N=%d", n1, n)
	}
	n2 := n / n1
	q := s.Q
	omegaInv := modmath.MulMod(s.PsiInv, s.PsiInv, q)
	omega1Inv := modmath.PowMod(omegaInv, uint64(n2), q)
	omega2Inv := modmath.PowMod(omegaInv, uint64(n1), q)

	// Row-major matrix scratch, as in FourStepNTT.
	u := s.scratch.Get(n)
	t := s.scratch.Get(n)
	// Reverse the final gather: U[k2][k1] = X[k2 + n2·k1].
	for k2 := 0; k2 < n2; k2++ {
		row := u[k2*n1 : (k2+1)*n1]
		for k1 := 0; k1 < n1; k1++ {
			row[k1] = x[k2+n2*k1]
		}
	}
	for k2 := 0; k2 < n2; k2++ {
		cyclicNTT(u[k2*n1:(k2+1)*n1], q, omega1Inv)
	}
	// Transpose and undo twiddles.
	for j1 := 0; j1 < n1; j1++ {
		row := t[j1*n2 : (j1+1)*n2]
		for k2 := 0; k2 < n2; k2++ {
			row[k2] = u[k2*n1+j1]
		}
	}
	for j1 := 0; j1 < n1; j1++ {
		row := t[j1*n2 : (j1+1)*n2]
		wRow := modmath.PowMod(omegaInv, uint64(j1), q)
		w := uint64(1)
		for k2 := 0; k2 < n2; k2++ {
			row[k2] = modmath.MulMod(row[k2], w, q)
			w = modmath.MulMod(w, wRow, q)
		}
	}
	for j1 := 0; j1 < n1; j1++ {
		cyclicNTT(t[j1*n2:(j1+1)*n2], q, omega2Inv)
	}
	// Un-scale by ψ^{-j}/N and flatten.
	out := make([]uint64, n)
	nInv := modmath.InvMod(uint64(n), q)
	psiPow := nInv
	for j := 0; j < n; j++ {
		j1, j2 := j%n1, j/n1
		out[j] = modmath.MulMod(t[j1*n2+j2], psiPow, q)
		psiPow = modmath.MulMod(psiPow, s.PsiInv, q)
	}
	s.scratch.Put(u)
	s.scratch.Put(t)
	return out, nil
}

// cyclicNTT computes an in-place natural-order cyclic NTT of a with the
// given primitive len(a)-th root of unity w (len(a) a power of two).
func cyclicNTT(a []uint64, q, w uint64) {
	n := len(a)
	if n == 1 {
		return
	}
	logN := log2(n)
	// Bit-reverse permute, then iterative Cooley–Tukey.
	for i := 0; i < n; i++ {
		j := int(bitrev(uint32(i), logN))
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		wm := modmath.PowMod(w, uint64(n/size), q)
		for start := 0; start < n; start += size {
			wj := uint64(1)
			for j := 0; j < half; j++ {
				u := a[start+j]
				v := modmath.MulMod(a[start+j+half], wj, q)
				a[start+j] = modmath.AddMod(u, v, q)
				a[start+j+half] = modmath.SubMod(u, v, q)
				wj = modmath.MulMod(wj, wm, q)
			}
		}
	}
}

package ring

import "testing"

// FuzzPolyUnmarshal checks the wire-format parser never panics or
// over-allocates on adversarial input.
func FuzzPolyUnmarshal(f *testing.F) {
	r, err := NewRing(16, []uint64{12289})
	if err != nil {
		f.Fatal(err)
	}
	p := randPoly(r, 0, 1)
	blob, _ := p.MarshalBinary()
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 16, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q Poly
		if err := q.UnmarshalBinary(data); err == nil {
			// A successful parse must round-trip to identical bytes.
			out, err := q.MarshalBinary()
			if err != nil {
				t.Fatalf("re-marshal failed after successful parse: %v", err)
			}
			if len(out) != len(data) {
				t.Fatalf("asymmetric round trip: %d vs %d bytes", len(out), len(data))
			}
		}
	})
}

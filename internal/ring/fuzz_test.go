package ring

import (
	"math/big"
	"math/bits"
	"testing"

	"alchemist/internal/modmath"
)

// FuzzPolyUnmarshal checks the wire-format parser never panics or
// over-allocates on adversarial input.
func FuzzPolyUnmarshal(f *testing.F) {
	r, err := NewRing(16, []uint64{12289})
	if err != nil {
		f.Fatal(err)
	}
	p := randPoly(r, 0, 1)
	blob, _ := p.MarshalBinary()
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 16, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q Poly
		if err := q.UnmarshalBinary(data); err == nil {
			// A successful parse must round-trip to identical bytes.
			out, err := q.MarshalBinary()
			if err != nil {
				t.Fatalf("re-marshal failed after successful parse: %v", err)
			}
			if len(out) != len(data) {
				t.Fatalf("asymmetric round trip: %d vs %d bytes", len(out), len(data))
			}
		}
	})
}

// FuzzBorrowReleaseSequence drives the poly arena with an arbitrary
// byte-program of Borrow / BorrowZero / Release operations and cross-checks
// the invariants the static arena-lifetime rule assumes to hold at runtime:
// a borrowed poly has exactly the shape its level promises, no two live
// polys share backing memory, BorrowZero really clears, live contents
// survive unrelated arena traffic, and a released poly comes back from the
// pool unmarked. Runs under SetPoolDebug so recycled buffers arrive poisoned
// rather than coincidentally holding a stale sentinel.
func FuzzBorrowReleaseSequence(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{0, 0, 0, 2, 2, 2})
	f.Add([]byte{4, 9, 2, 13, 0, 2, 2, 1, 3})
	f.Fuzz(func(t *testing.T, program []byte) {
		SetPoolDebug(true)
		defer SetPoolDebug(false)
		const n = 16
		primes, err := modmath.GenerateNTTPrimes(30, uint64(2*n), 3)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRing(n, primes)
		if err != nil {
			t.Fatal(err)
		}
		type held struct {
			p   *Poly
			tag uint64
		}
		var live []held
		nextTag := uint64(1)

		check := func() {
			rows := map[*uint64]int{}
			for i, h := range live {
				if got := h.p.Level() + 1; got != len(h.p.Coeffs) || len(h.p.Coeffs) == 0 {
					t.Fatalf("live poly %d has inconsistent level", i)
				}
				for c := range h.p.Coeffs {
					row := h.p.Coeffs[c]
					if len(row) != n {
						t.Fatalf("live poly %d channel %d has degree %d, want %d", i, c, len(row), n)
					}
					if prev, dup := rows[&row[0]]; dup {
						t.Fatalf("live polys %d and %d alias the same channel buffer", prev, i)
					}
					rows[&row[0]] = i
				}
				if h.p.Coeffs[0][0] != h.tag {
					t.Fatalf("live poly %d lost its sentinel: got %#x want %#x (clobbered by arena traffic)",
						i, h.p.Coeffs[0][0], h.tag)
				}
				if h.p.released {
					t.Fatalf("live poly %d is marked released", i)
				}
			}
		}

		for _, b := range program {
			op := int(b) % 4
			arg := int(b) / 4
			// Releasing is twice as likely as either borrow flavor so random
			// programs exercise recycling, not just arena growth.
			switch {
			case op == 0 && len(live) < 64:
				p := r.Borrow(arg % len(r.SubRings))
				p.Coeffs[0][0] = nextTag
				live = append(live, held{p, nextTag})
				nextTag++
			case op == 1 && len(live) < 64:
				p := r.BorrowZero(arg % len(r.SubRings))
				for c := range p.Coeffs {
					for j, v := range p.Coeffs[c] {
						if v != 0 {
							t.Fatalf("BorrowZero channel %d word %d = %#x", c, j, v)
						}
					}
				}
				p.Coeffs[0][0] = nextTag
				live = append(live, held{p, nextTag})
				nextTag++
			default:
				if len(live) == 0 {
					continue
				}
				i := arg % len(live)
				r.Release(live[i].p)
				live = append(live[:i], live[i+1:]...)
			}
			check()
		}
		for _, h := range live {
			r.Release(h.p)
		}
	})
}

// FuzzReduceOnce pins the lazy-domain normalization against the
// MulModShoupLazy output contract: for any x in the [0, 4q) accumulator
// range, one conditional subtraction of 2q followed by one of q lands
// exactly on x mod q. condSub and condSubMask (the two branch-free
// single-subtraction forms the kernels choose between) must agree with each
// other and, on the [0, 2q) subrange, with reduceOnce.
func FuzzReduceOnce(f *testing.F) {
	f.Add(uint64(0), uint64(12289))
	f.Add(^uint64(0), (uint64(1)<<62)-60)
	f.Add(uint64(4)*12289-1, uint64(12289))
	f.Add(uint64(2)*12289, uint64(12289))
	// Maximum-headroom corners: x at the very top of the 4q domain with q at
	// the top of the 2^62 Barrett bound (4q-1 here is within 4 of 2^64, so an
	// off-by-one in either subtraction wraps the word), and the exact 2q / 4q-1
	// boundaries at a near-2^61 Mersenne modulus.
	f.Add(uint64(4)*((uint64(1)<<62)-60)-1, (uint64(1)<<62)-60)
	f.Add(uint64(2)*((uint64(1)<<62)-60), (uint64(1)<<62)-60)
	f.Add(uint64(4)*2305843009213693951-1, uint64(2305843009213693951))
	f.Add(uint64(2)*2305843009213693951-1, uint64(2305843009213693951))
	f.Fuzz(func(t *testing.T, xSeed, qSeed uint64) {
		q := qSeed%((1<<62)-3) + 3
		x := xSeed % (4 * q)
		if got := reduceOnce(x, 2*q, q); got != x%q {
			t.Fatalf("reduceOnce(%d, 2q, %d) = %d want %d", x, q, got, x%q)
		}
		y := x % (2 * q) // condSub's domain is one subtraction wide
		if a, b := condSub(y, q), condSubMask(y, q); a != b || a != y%q {
			t.Fatalf("condSub(%d, %d) = %d, condSubMask = %d, want %d", y, q, a, b, y%q)
		}
		if got := reduceOnce(y, 2*q, q); got != y%q {
			t.Fatalf("reduceOnce(%d, 2q, %d) = %d want %d on [0,2q)", y, q, got, y%q)
		}
		// End-to-end lazy pipeline over the whole butterfly domain: a lazy
		// Shoup product of the raw [0,4q) value followed by one conditional
		// subtraction must land on the eager result — exactly the composition
		// the interval rule certifies in NTTLazy's final stage.
		w := xSeed % q
		r := modmath.MulModShoupLazy(x, w, modmath.ShoupPrecomp(w, q), q)
		if got, want := condSub(r, q), modmath.MulMod(x%q, w, q); got != want {
			t.Fatalf("condSub(MulModShoupLazy(%d,%d)) mod %d = %d want %d", x, w, q, got, want)
		}
	})
}

// FuzzNTTLazyCrossCheck cross-checks the vectorized lazy transforms against
// independent references: the natural-order 4-step NTT (eager arithmetic
// end to end, itself validated against the direct DFT), the scalar lazy
// reference path the asm kernels are pinned to, an INTT round trip, and —
// through the transforms — the O(N²) schoolbook negacyclic product. Moduli
// sweep the interesting widths: 30-bit (small), 49/50-bit (both sides of
// the IFMA tier's q < 2^50 gate) and 61-bit (maximum lazy headroom, where
// 4q−1 sits within a handful of ulps of the word and any off-by-one in the
// butterfly ladder wraps). The zero seed drives every coefficient to q−1,
// the input that pushes intermediate butterfly values to the top of the
// [0,4q) domain.
func FuzzNTTLazyCrossCheck(f *testing.F) {
	f.Add(uint64(0), uint8(2), uint8(3)) // all-(q−1) input, 61-bit headroom ceiling
	f.Add(uint64(0), uint8(1), uint8(1)) // all-(q−1) at the IFMA boundary
	f.Add(uint64(1), uint8(3), uint8(2)) // random, 50-bit (IFMA falls back to AVX2)
	f.Add(uint64(42), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, nSel, bitsSel uint8) {
		ns := [...]int{16, 64, 256, 1024}
		n := ns[int(nSel)%len(ns)]
		widths := [...]uint64{30, 49, 50, 61}
		qBits := widths[int(bitsSel)%len(widths)]
		primes, err := modmath.GenerateNTTPrimes(qBits, uint64(2*n), 1)
		if err != nil {
			t.Skip("no prime at this width/degree")
		}
		s, err := NewSubRing(n, primes[0])
		if err != nil {
			t.Fatal(err)
		}
		q := s.Q
		x := seed
		next := func() uint64 {
			x = x*6364136223846793005 + 1442695040888963407
			return x
		}
		a := make([]uint64, n)
		for i := range a {
			if seed == 0 {
				a[i] = q - 1
			} else {
				a[i] = next() % q
			}
		}

		// Vectorized forward transform vs the natural-order 4-step DFT,
		// equal up to the bit-reversal permutation.
		lazy := append([]uint64(nil), a...)
		s.NTTLazy(lazy)
		logN := log2(n)
		natural, err := s.FourStepNTT(a, 1<<(logN/2))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if got := lazy[int(bitrev(uint32(i), logN))]; got != natural[i] {
				t.Fatalf("n=%d q=%d(%d bits): NTTLazy[brv(%d)] = %d, four-step = %d",
					n, q, qBits, i, got, natural[i])
			}
		}
		// Bit-identity with the scalar lazy reference, both directions.
		sc := append([]uint64(nil), a...)
		s.nttLazyScalar(sc)
		for i := range sc {
			if sc[i] != lazy[i] {
				t.Fatalf("n=%d q=%d: vector NTTLazy differs from scalar at %d: %d vs %d",
					n, q, i, lazy[i], sc[i])
			}
		}
		s.INTTLazy(lazy)
		s.inttLazyScalar(sc)
		for i := range a {
			if lazy[i] != a[i] {
				t.Fatalf("n=%d q=%d: INTTLazy round trip differs at %d", n, q, i)
			}
			if sc[i] != a[i] {
				t.Fatalf("n=%d q=%d: scalar INTT round trip differs at %d", n, q, i)
			}
		}

		// End-to-end negacyclic product through the vector transforms against
		// the O(N²) schoolbook reference (small degrees only).
		if n <= 256 {
			b := make([]uint64, n)
			for i := range b {
				if seed == 0 {
					b[i] = q - 1
				} else {
					b[i] = next() % q
				}
			}
			want := make([]uint64, n)
			s.NegacyclicConvolve(a, b, want)
			pa := append([]uint64(nil), a...)
			pb := append([]uint64(nil), b...)
			s.NTTLazy(pa)
			s.NTTLazy(pb)
			for i := range pa {
				pa[i] = modmath.MulMod(pa[i], pb[i], q)
			}
			s.INTTLazy(pa)
			for i := range pa {
				if pa[i] != want[i] {
					t.Fatalf("n=%d q=%d: NTT-domain product differs from O(N²) reference at %d: %d vs %d",
						n, q, i, pa[i], want[i])
				}
			}
		}

		// Raw kernel domain: the standalone stage kernels accept the full
		// [0,4q) lazy range, so drive them there directly — the zero seed
		// pins every lane to the 4q−1 corner.
		if useNTTKern {
			const kn = 64
			h := kn / 2
			fourQ := 4 * q
			x0, x1 := make([]uint64, h), make([]uint64, h)
			for i := 0; i < h; i++ {
				if seed == 0 {
					x0[i], x1[i] = fourQ-1, fourQ-1
				} else {
					x0[i], x1[i] = next()%fourQ, next()%fourQ
				}
			}
			w := next() % q
			m0, m1 := append([]uint64(nil), x0...), append([]uint64(nil), x1...)
			v0, v1 := append([]uint64(nil), x0...), append([]uint64(nil), x1...)
			modelNTTSingle(m0, m1, w, modmath.ShoupPrecomp(w, q), q, mulLazy64Model)
			nttSingleVec(v0, v1, w, modmath.ShoupPrecomp(w, q), q)
			for i := 0; i < h; i++ {
				if v0[i] != m0[i] || v1[i] != m1[i] {
					t.Fatalf("q=%d: nttSingleVec differs from scalar model at %d on [0,4q) input", q, i)
				}
			}
			if useNTTKernIFMA && q < 1<<50 {
				w52 := shoup52(w, q)
				m0, m1 = append([]uint64(nil), x0...), append([]uint64(nil), x1...)
				v0, v1 = append([]uint64(nil), x0...), append([]uint64(nil), x1...)
				modelNTTSingle(m0, m1, w, w52, q, mulLazy52Model)
				nttSingleVec52(v0, v1, w, w52, q)
				for i := 0; i < h; i++ {
					if v0[i] != m0[i] || v1[i] != m1[i] {
						t.Fatalf("q=%d: nttSingleVec52 differs from the madd model at %d on [0,4q) input", q, i)
					}
				}
			}
		}
	})
}

// FuzzReduceAcc128Headroom pins the 128-bit accumulator capacity contract at
// the adversarial corner the production 36-49-bit parameter shapes never
// reach: moduli at the very top of the 2^62 Barrett bound, where
// lazyCap = 2^(64-bits.Len64(q)) collapses to its floor of 4 and the
// worst-case sum m·q² touches q·2^64 exactly. m full products of maximal
// residues (plus one carried-over residue, the AddLazy128 unit) accumulate
// unreduced and the single deferred SubRing.ReduceAcc128 fold must agree
// with a big.Int oracle on every coefficient.
func FuzzReduceAcc128Headroom(f *testing.F) {
	// lazyCap boundary: q just under 2^62 (cap 4, m·q within 240 of 2^64).
	f.Add((uint64(1)<<62)-60, uint64(3), ^uint64(0))
	// Mersenne 2^61-1: cap 8, m·q = 2^64 - 8 at full occupancy.
	f.Add(uint64(2305843009213693951), uint64(7), uint64(0x9e3779b97f4a7c15))
	f.Add(uint64(12289), uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, qSeed, mSeed, aSeed uint64) {
		q := qSeed%((1<<62)-3) + 3
		cap := uint64(1) << (64 - bits.Len64(q))
		if cap > 512 {
			cap = 512 // keep small-modulus trips bounded; headroom corners have cap ≤ 8
		}
		m := int(mSeed % cap) // m products + 1 residue ≤ cap units total
		const n = 4
		a, b := make([]uint64, n), make([]uint64, n)
		lo, hi := make([]uint64, n), make([]uint64, n)
		want := make([]*big.Int, n)
		bigQ := new(big.Int).SetUint64(q)
		x := aSeed | 1
		next := func() uint64 {
			x = x*6364136223846793005 + 1442695040888963407
			return x
		}
		// One carried-over residue first (the AddLazy128 unit), biased to the
		// top of the canonical domain.
		for j := range a {
			a[j] = q - 1 - next()%3
			want[j] = new(big.Int).SetUint64(a[j])
		}
		lazyAdd(a, lo, hi)
		for t2 := 0; t2 < m; t2++ {
			for j := range a {
				// Bias operands to the top of [0,q): the worst-case sum.
				a[j] = q - 1 - next()%3
				b[j] = q - 1 - next()%3
			}
			lazyMulAcc(a, b, lo, hi)
			for j := range a {
				prod := new(big.Int).Mul(new(big.Int).SetUint64(a[j]), new(big.Int).SetUint64(b[j]))
				want[j].Add(want[j], prod)
			}
		}
		s := &SubRing{Q: q, barrett: modmath.NewBarrett(q)}
		out := make([]uint64, n)
		s.ReduceAcc128(lo, hi, out)
		for j := range out {
			w := new(big.Int).Mod(want[j], bigQ).Uint64()
			if out[j] != w {
				t.Fatalf("ReduceAcc128 coeff %d after %d terms mod %d = %d want %d", j, m+1, q, out[j], w)
			}
		}
	})
}

package ring

import "testing"

// FuzzPolyUnmarshal checks the wire-format parser never panics or
// over-allocates on adversarial input.
func FuzzPolyUnmarshal(f *testing.F) {
	r, err := NewRing(16, []uint64{12289})
	if err != nil {
		f.Fatal(err)
	}
	p := randPoly(r, 0, 1)
	blob, _ := p.MarshalBinary()
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 16, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q Poly
		if err := q.UnmarshalBinary(data); err == nil {
			// A successful parse must round-trip to identical bytes.
			out, err := q.MarshalBinary()
			if err != nil {
				t.Fatalf("re-marshal failed after successful parse: %v", err)
			}
			if len(out) != len(data) {
				t.Fatalf("asymmetric round trip: %d vs %d bytes", len(out), len(data))
			}
		}
	})
}

// FuzzReduceOnce pins the lazy-domain normalization against the
// MulModShoupLazy output contract: for any x in the [0, 4q) accumulator
// range, one conditional subtraction of 2q followed by one of q lands
// exactly on x mod q. condSub and condSubMask (the two branch-free
// single-subtraction forms the kernels choose between) must agree with each
// other and, on the [0, 2q) subrange, with reduceOnce.
func FuzzReduceOnce(f *testing.F) {
	f.Add(uint64(0), uint64(12289))
	f.Add(^uint64(0), (uint64(1)<<62)-60)
	f.Add(uint64(4)*12289-1, uint64(12289))
	f.Add(uint64(2)*12289, uint64(12289))
	f.Fuzz(func(t *testing.T, xSeed, qSeed uint64) {
		q := qSeed%((1<<62)-3) + 3
		x := xSeed % (4 * q)
		if got := reduceOnce(x, 2*q, q); got != x%q {
			t.Fatalf("reduceOnce(%d, 2q, %d) = %d want %d", x, q, got, x%q)
		}
		y := x % (2 * q) // condSub's domain is one subtraction wide
		if a, b := condSub(y, q), condSubMask(y, q); a != b || a != y%q {
			t.Fatalf("condSub(%d, %d) = %d, condSubMask = %d, want %d", y, q, a, b, y%q)
		}
		if got := reduceOnce(y, 2*q, q); got != y%q {
			t.Fatalf("reduceOnce(%d, 2q, %d) = %d want %d on [0,2q)", y, q, got, y%q)
		}
	})
}

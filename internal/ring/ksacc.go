package ring

import (
	"math/bits"

	"alchemist/internal/modmath"
)

// Fused keyswitch inner product: the register-resident composition of the
// Acc128 kernels (MulCoeffsLazy128[Auto] × groups, then ReduceAcc128).
//
// The Acc128 form materializes the unreduced hi:lo pairs as two polynomials
// and read-modify-writes them once per digit group per key half — for g
// groups that is 2g sweeps of RMW traffic plus two more to fold, and the
// memory system, not the multiplier, sets the pace. KSAccumulate keeps each
// coefficient's two 128-bit sums (one per key half) in registers across ALL
// digit groups and writes each output exactly once, already folded: per
// coefficient the work collapses to g loads of the shared digit, 2g widening
// multiplies with carry chains, and two Barrett folds. Both key halves ride
// one digit load, and under a Galois permutation the gather index is looked
// up once per coefficient instead of once per (group, half). The result is
// bit-identical to the Acc128 pipeline — same products, same exact fold —
// which the fused-vs-eager tests pin transitively.
//
// Capacity: a chunk of m groups holds at most m·q² per sum, safe while
// m·q ≤ 2^64 (the Reduce bound, see lazy128.go). ksChunk = 4 never exceeds
// lazyCap (NewRing guarantees lazyCap ≥ 4 for any modulus below 2^62), and
// chunk results combine with an exact modular add, so the chunking never
// changes the value. The small fixed chunk also lets every chunk width run a
// specialized kernel with the slice headers hoisted into locals — the
// slice-of-slices indexing a variable-width loop would pay per term is the
// dominant cost at these operand sizes.

// ksChunk bounds how many digit groups one register pass covers. Every width
// in [1, ksChunk] has a dedicated kernel below.
const ksChunk = 4

// KSAccumulate computes the two halves of the keyswitch inner product over
// one target basis at levels 0..level:
//
//	outB = (Σ_g φ(d[g]) ⊙ kB[g]) mod q,  outA = (Σ_g φ(d[g]) ⊙ kA[g]) mod q
//
// with φ = φ_k when perm is set (d in the NTT domain; the permutation fuses
// into the multiply as a gather) and the identity otherwise. outB/outA are
// fully reduced and overwritten (no zeroing needed beforehand).
//
//alchemist:hot
func (r *Ring) KSAccumulate(level int, d, kB, kA []*Poly, k uint64, perm bool, outB, outA *Poly) {
	var pi []int32
	if perm {
		pi = r.automorphismPerm(k & uint64(2*r.N-1))
	}
	// Limb-parallel dispatch: each partition runs the full digit-group chunk
	// loop over its own limb range with its own 128-bit register accumulators
	// and its own gather scratch (per-partition arena shard), so partitions
	// share nothing but read-only operands and the result is byte-identical
	// to the serial limb loop.
	if parts := r.parWidth(level + 1); parts > 1 {
		j := r.getJob()
		j.op, j.dp, j.kb, j.ka, j.pi, j.a, j.out, j.tasks = opKSAcc, d, kB, kA, pi, outB, outA, level+1
		r.runParallel(j, parts)
		return
	}
	r.ksAccLimbs(0, level+1, 0, d, kB, kA, pi, outB, outA)
}

// ksAccLimbs accumulates the keyswitch inner product for limbs [lo, hi),
// drawing gather scratch from the given arena shard. This is the partition
// body of KSAccumulate; outB doubles as the job's `a` operand slot.
//
//alchemist:hot
func (r *Ring) ksAccLimbs(lo, hi, shard int, d, kB, kA []*Poly, pi []int32, outB, outA *Poly) {
	n := r.N
	// With the vector kernels available, the permuted digit is materialized
	// once per (level, group) by the 4-wide VPGATHERDQ kernel into pooled
	// scratch, and the chunk kernels then stream it sequentially — the same
	// gather unit the automorphism path uses, amortized across both key
	// halves and freeing the multiply loop of its random loads.
	gatherKern := pi != nil && useNTTKern && n&3 == 0
	var dg [ksChunk][]uint64
	if gatherKern {
		for g := range dg {
			dg[g] = r.buf.GetShard(shard, n)[:n:n]
		}
	}
	var ds, bs, as [ksChunk][]uint64
	for i := lo; i < hi; i++ {
		s := r.SubRings[i]
		red, q := s.barrett, s.Q
		ob, oa := outB.Coeffs[i][:n:n], outA.Coeffs[i][:n:n]
		for g0 := 0; g0 < len(d); g0 += ksChunk {
			gn := len(d) - g0
			if gn > ksChunk {
				gn = ksChunk
			}
			for g := 0; g < gn; g++ {
				ds[g] = d[g0+g].Coeffs[i][:n:n]
				bs[g] = kB[g0+g].Coeffs[i][:n:n]
				as[g] = kA[g0+g].Coeffs[i][:n:n]
			}
			switch {
			case gatherKern:
				for g := 0; g < gn; g++ {
					gatherIdxVec(dg[g], ds[g], pi)
					ds[g] = dg[g]
				}
				ksAccChunk(ds[:gn], bs[:gn], as[:gn], red, q, g0 == 0, ob, oa)
			case pi != nil:
				ksAccChunkGather(ds[:gn], bs[:gn], as[:gn], pi, red, q, g0 == 0, ob, oa)
			default:
				ksAccChunk(ds[:gn], bs[:gn], as[:gn], red, q, g0 == 0, ob, oa)
			}
		}
	}
	if gatherKern {
		for g := range dg {
			r.buf.PutShard(shard, dg[g])
		}
	}
}

// ksAccChunk accumulates one chunk of digit groups for one channel, both key
// halves per pass. first selects overwrite vs exact modular combine with the
// previous chunk's fold. Each chunk width gets a dedicated loop with the
// slice headers in locals so the inner loop is pure load → widening multiply
// → carry chain.
func ksAccChunk(ds, bs, as [][]uint64, red modmath.Barrett, q uint64, first bool, outB, outA []uint64) {
	n := len(outB)
	switch len(ds) {
	case 1:
		d0, b0, a0 := ds[0], bs[0], as[0]
		for k := 0; k < n; k++ {
			dk := d0[k]
			bh, bl := bits.Mul64(dk, b0[k])
			ah, al := bits.Mul64(dk, a0[k])
			ksStore(red, q, first, outB, outA, k, bh, bl, ah, al)
		}
	case 2:
		d0, b0, a0 := ds[0], bs[0], as[0]
		d1, b1, a1 := ds[1], bs[1], as[1]
		for k := 0; k < n; k++ {
			dk := d0[k]
			bh, bl := bits.Mul64(dk, b0[k])
			ah, al := bits.Mul64(dk, a0[k])
			bh, bl, ah, al = ksTerm(d1[k], b1[k], a1[k], bh, bl, ah, al)
			ksStore(red, q, first, outB, outA, k, bh, bl, ah, al)
		}
	case 3:
		d0, b0, a0 := ds[0], bs[0], as[0]
		d1, b1, a1 := ds[1], bs[1], as[1]
		d2, b2, a2 := ds[2], bs[2], as[2]
		for k := 0; k < n; k++ {
			dk := d0[k]
			bh, bl := bits.Mul64(dk, b0[k])
			ah, al := bits.Mul64(dk, a0[k])
			bh, bl, ah, al = ksTerm(d1[k], b1[k], a1[k], bh, bl, ah, al)
			bh, bl, ah, al = ksTerm(d2[k], b2[k], a2[k], bh, bl, ah, al)
			ksStore(red, q, first, outB, outA, k, bh, bl, ah, al)
		}
	default:
		d0, b0, a0 := ds[0], bs[0], as[0]
		d1, b1, a1 := ds[1], bs[1], as[1]
		d2, b2, a2 := ds[2], bs[2], as[2]
		d3, b3, a3 := ds[3], bs[3], as[3]
		for k := 0; k < n; k++ {
			dk := d0[k]
			bh, bl := bits.Mul64(dk, b0[k])
			ah, al := bits.Mul64(dk, a0[k])
			bh, bl, ah, al = ksTerm(d1[k], b1[k], a1[k], bh, bl, ah, al)
			bh, bl, ah, al = ksTerm(d2[k], b2[k], a2[k], bh, bl, ah, al)
			bh, bl, ah, al = ksTerm(d3[k], b3[k], a3[k], bh, bl, ah, al)
			ksStore(red, q, first, outB, outA, k, bh, bl, ah, al)
		}
	}
}

// ksAccChunkGather is ksAccChunk with the Galois permutation fused into the
// digit load: index pi[k] is resolved once per coefficient and shared by
// every group and both key halves.
func ksAccChunkGather(ds, bs, as [][]uint64, pi []int32, red modmath.Barrett, q uint64, first bool, outB, outA []uint64) {
	n := len(outB)
	_ = pi[n-1]
	switch len(ds) {
	case 1:
		d0, b0, a0 := ds[0], bs[0], as[0]
		for k := 0; k < n; k++ {
			dk := d0[pi[k]]
			bh, bl := bits.Mul64(dk, b0[k])
			ah, al := bits.Mul64(dk, a0[k])
			ksStore(red, q, first, outB, outA, k, bh, bl, ah, al)
		}
	case 2:
		d0, b0, a0 := ds[0], bs[0], as[0]
		d1, b1, a1 := ds[1], bs[1], as[1]
		for k := 0; k < n; k++ {
			j := pi[k]
			dk := d0[j]
			bh, bl := bits.Mul64(dk, b0[k])
			ah, al := bits.Mul64(dk, a0[k])
			bh, bl, ah, al = ksTerm(d1[j], b1[k], a1[k], bh, bl, ah, al)
			ksStore(red, q, first, outB, outA, k, bh, bl, ah, al)
		}
	case 3:
		d0, b0, a0 := ds[0], bs[0], as[0]
		d1, b1, a1 := ds[1], bs[1], as[1]
		d2, b2, a2 := ds[2], bs[2], as[2]
		for k := 0; k < n; k++ {
			j := pi[k]
			dk := d0[j]
			bh, bl := bits.Mul64(dk, b0[k])
			ah, al := bits.Mul64(dk, a0[k])
			bh, bl, ah, al = ksTerm(d1[j], b1[k], a1[k], bh, bl, ah, al)
			bh, bl, ah, al = ksTerm(d2[j], b2[k], a2[k], bh, bl, ah, al)
			ksStore(red, q, first, outB, outA, k, bh, bl, ah, al)
		}
	default:
		d0, b0, a0 := ds[0], bs[0], as[0]
		d1, b1, a1 := ds[1], bs[1], as[1]
		d2, b2, a2 := ds[2], bs[2], as[2]
		d3, b3, a3 := ds[3], bs[3], as[3]
		for k := 0; k < n; k++ {
			j := pi[k]
			dk := d0[j]
			bh, bl := bits.Mul64(dk, b0[k])
			ah, al := bits.Mul64(dk, a0[k])
			bh, bl, ah, al = ksTerm(d1[j], b1[k], a1[k], bh, bl, ah, al)
			bh, bl, ah, al = ksTerm(d2[j], b2[k], a2[k], bh, bl, ah, al)
			bh, bl, ah, al = ksTerm(d3[j], b3[k], a3[k], bh, bl, ah, al)
			ksStore(red, q, first, outB, outA, k, bh, bl, ah, al)
		}
	}
}

// ksTerm folds one digit·key term into both running 128-bit sums.
func ksTerm(dk, bk, ak, bh, bl, ah, al uint64) (uint64, uint64, uint64, uint64) {
	ph, pl := bits.Mul64(dk, bk)
	var c uint64
	bl, c = bits.Add64(bl, pl, 0)
	bh += ph + c
	ph, pl = bits.Mul64(dk, ak)
	al, c = bits.Add64(al, pl, 0)
	ah += ph + c
	return bh, bl, ah, al
}

// ksStore folds both sums and writes coefficient k, combining exactly with
// the previous chunk's residue unless this is the first chunk.
func ksStore(red modmath.Barrett, q uint64, first bool, outB, outA []uint64, k int, bh, bl, ah, al uint64) {
	rb := red.Reduce(bh, bl)
	ra := red.Reduce(ah, al)
	if !first {
		rb = modmath.AddMod(rb, outB[k], q)
		ra = modmath.AddMod(ra, outA[k], q)
	}
	outB[k], outA[k] = rb, ra
}

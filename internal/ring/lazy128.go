package ring

import "math/bits"

// Lazy 128-bit accumulation: the algorithmic half of the fused keyswitch.
//
// The eager inner product Σ_g d_g ⊙ evk_g reduces every product on the spot
// (Barrett per multiply, conditional-subtract per add — 5+ hardware multiplies
// and a data-dependent correction per term). The lazy kernels instead keep
// each coefficient as an unreduced 128-bit hi:lo pair across ALL decomposition
// digits and apply a single Barrett fold at the end, so each accumulated term
// costs one widening multiply plus an add-with-carry chain, and the per-term
// reduction disappears. This is the software counterpart of the accelerator's
// deferred-reduction Meta-OP accumulation ((M8A8)_L R8: L multiply-adds, ONE
// reduction), and matches what Lattigo-class CPU libraries ship.
//
// Soundness: Barrett.Reduce folds any x < q·2^64 (see modmath; the bound is
// pinned by FuzzBarrettReduceWide). A sum of m products of residues stays
// below m·q², so the accumulator is safe while m·q ≤ 2^64. Ring.lazyCap
// (computed in NewRing as 1 << (64 - bits.Len64(maxModulus))) is exactly that
// bound; MulCoeffsLazy128 flushes — reduces in place and restarts the count —
// when an accumulation would cross it. For the repo's 36–49-bit parameter
// shapes the capacity is astronomically larger than any dnum, so the flush
// never fires; near-2^61 edge moduli flush every 8 terms, a path the
// fused-vs-eager fuzzers exercise deliberately.

// Acc128 is an unreduced 128-bit RNS accumulator: Lo/Hi hold the low and high
// words of Σ a_t[j]·b_t[j] per channel per coefficient. Both polynomials come
// from the ring arena (BorrowAcc/ReleaseAcc); the struct itself is a value —
// copying it is cheap and allocation-free.
type Acc128 struct {
	Lo, Hi *Poly
	// terms counts worst-case accumulated products since the last flush,
	// measured in units of q² (a flushed residue counts as one unit, which
	// over-counts it 2^64-fold — conservative and branch-cheap).
	terms int
}

// BorrowAcc returns a zeroed accumulator shaped for level. Release it with
// ReleaseAcc.
func (r *Ring) BorrowAcc(level int) Acc128 {
	return Acc128{Lo: r.BorrowZero(level), Hi: r.BorrowZero(level)} //alchemist:owns the accumulator carries both halves; ReleaseAcc returns them
}

// ReleaseAcc returns the accumulator's polynomials to the arena. The
// accumulator must not be used afterwards.
func (r *Ring) ReleaseAcc(acc *Acc128) {
	r.Release(acc.Lo)
	r.Release(acc.Hi)
	acc.Lo, acc.Hi = nil, nil
	acc.terms = 0
}

// MulCoeffsLazy128 accumulates acc += a ⊙ b at levels 0..level without
// reducing: per coefficient one 64×64→128 multiply feeds an add-with-carry
// into the hi:lo pair. Inputs must be reduced (< q per channel). The
// accumulator auto-flushes when the capacity bound would be crossed, so any
// number of terms is safe at any modulus width.
//
//alchemist:hot
func (r *Ring) MulCoeffsLazy128(level int, a, b *Poly, acc *Acc128) {
	if acc.terms+1 > r.lazyCap {
		r.flushAcc(level, acc)
	}
	acc.terms++
	for i := 0; i <= level; i++ {
		lazyMulAcc(a.Coeffs[i], b.Coeffs[i], acc.Lo.Coeffs[i], acc.Hi.Coeffs[i])
	}
}

// MulCoeffsLazy128Auto accumulates acc += φ_k(a) ⊙ b at levels 0..level with
// a in the NTT domain: the automorphism is a pure index permutation there, so
// the gather fuses into the multiply-accumulate and the permuted polynomial
// is never materialized. This is the hoisted-rotation inner loop.
//
//alchemist:hot
func (r *Ring) MulCoeffsLazy128Auto(level int, a *Poly, k uint64, b *Poly, acc *Acc128) {
	if acc.terms+1 > r.lazyCap {
		r.flushAcc(level, acc)
	}
	acc.terms++
	perm := r.automorphismPerm(k & uint64(2*r.N-1))
	for i := 0; i <= level; i++ {
		lazyMulAccGather(a.Coeffs[i], perm, b.Coeffs[i], acc.Lo.Coeffs[i], acc.Hi.Coeffs[i])
	}
}

// AddLazy128 accumulates acc += a at levels 0..level (a reduced polynomial
// entering the lazy sum, e.g. a carried-over partial result). Counts as one
// capacity unit.
//
//alchemist:hot
func (r *Ring) AddLazy128(level int, a *Poly, acc *Acc128) {
	if acc.terms+1 > r.lazyCap {
		r.flushAcc(level, acc)
	}
	acc.terms++
	for i := 0; i <= level; i++ {
		lazyAdd(a.Coeffs[i], acc.Lo.Coeffs[i], acc.Hi.Coeffs[i])
	}
}

// ReduceAcc128 folds the accumulator into out at levels 0..level: one Barrett
// reduction of each hi:lo pair, the single deferred reduction the lazy
// pipeline buys. The accumulator is left untouched (callers may keep adding).
//
//alchemist:hot
func (r *Ring) ReduceAcc128(level int, acc *Acc128, out *Poly) {
	for i := 0; i <= level; i++ {
		r.SubRings[i].ReduceAcc128(acc.Lo.Coeffs[i], acc.Hi.Coeffs[i], out.Coeffs[i])
	}
}

// flushAcc reduces the accumulator in place: Lo takes the reduced residues,
// Hi returns to zero, and the term count restarts at one (the residue).
func (r *Ring) flushAcc(level int, acc *Acc128) {
	for i := 0; i <= level; i++ {
		lo, hi := acc.Lo.Coeffs[i], acc.Hi.Coeffs[i]
		r.SubRings[i].ReduceAcc128(lo, hi, lo)
		for j := range hi {
			hi[j] = 0
		}
	}
	acc.terms = 1
}

// MulCoeffsLazy128 is the per-channel kernel: lo:hi += a ⊙ b unreduced.
// Slices must have equal length; callers guarantee capacity (see Acc128).
//
//alchemist:hot
//alchemist:domain lo:any hi:any
func (s *SubRing) MulCoeffsLazy128(a, b, lo, hi []uint64) { lazyMulAcc(a, b, lo, hi) }

// AddLazy128 is the per-channel kernel: lo:hi += a unreduced.
//
//alchemist:hot
//alchemist:domain lo:any hi:any
func (s *SubRing) AddLazy128(a, lo, hi []uint64) { lazyAdd(a, lo, hi) }

// ReduceAcc128 folds each unreduced hi:lo pair into [0, Q) via the subring's
// Barrett state. out may alias lo.
//
//alchemist:hot
//alchemist:domain lo:any hi:any
func (s *SubRing) ReduceAcc128(lo, hi, out []uint64) {
	red := s.barrett
	for j := range out {
		out[j] = red.Reduce(hi[j], lo[j])
	}
}

func lazyMulAcc(a, b, lo, hi []uint64) {
	_ = b[len(a)-1]
	_ = lo[len(a)-1]
	_ = hi[len(a)-1]
	for j := range a {
		phi, plo := bits.Mul64(a[j], b[j])
		var c uint64
		lo[j], c = bits.Add64(lo[j], plo, 0)
		hi[j] += phi + c
	}
}

func lazyMulAccGather(a []uint64, perm []int32, b, lo, hi []uint64) {
	_ = perm[len(b)-1]
	_ = lo[len(b)-1]
	_ = hi[len(b)-1]
	for j := range b {
		phi, plo := bits.Mul64(a[perm[j]], b[j])
		var c uint64
		lo[j], c = bits.Add64(lo[j], plo, 0)
		hi[j] += phi + c
	}
}

func lazyAdd(a, lo, hi []uint64) {
	_ = lo[len(a)-1]
	_ = hi[len(a)-1]
	for j := range a {
		var c uint64
		lo[j], c = bits.Add64(lo[j], a[j], 0)
		hi[j] += c
	}
}

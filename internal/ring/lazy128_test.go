package ring

import (
	"testing"

	"alchemist/internal/modmath"
)

// Equality tests for the lazy 128-bit accumulation layer: every lazy kernel
// must be bit-identical to its eager reference. Each test runs both on
// comfortable 40-bit primes (the accumulator never flushes) and on
// near-2^61 edge primes from the PR 1 edge-moduli set, where the capacity
// bound is 8 and the auto-flush path is forced.

// lazyTestRing builds a degree-n ring over `count` primes of the given bit
// size (61 exercises the flush path: lazyCap = 8).
func lazyTestRing(t *testing.T, n, count int, bits uint64) *Ring {
	t.Helper()
	primes, err := modmath.GenerateNTTPrimes(bits, uint64(2*n), count)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLazyCapBounds(t *testing.T) {
	if r := lazyTestRing(t, 64, 2, 40); r.lazyCap != 1<<24 {
		t.Errorf("40-bit lazyCap = %d, want %d", r.lazyCap, 1<<24)
	}
	if r := lazyTestRing(t, 64, 2, 61); r.lazyCap != 8 {
		t.Errorf("61-bit lazyCap = %d, want 8", r.lazyCap)
	}
}

func TestLazyAccMatchesEager(t *testing.T) {
	for _, tc := range []struct {
		name  string
		bits  uint64
		terms int
	}{
		{"40bit-short", 40, 4},
		{"40bit-long", 40, 33},
		{"61bit-noflush", 61, 7},
		{"61bit-flush", 61, 8},
		{"61bit-multiflush", 61, 29},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := lazyTestRing(t, 128, 3, tc.bits)
			level := r.MaxLevel()
			s := NewSampler(r, 11)
			as := make([]*Poly, tc.terms)
			bs := make([]*Poly, tc.terms)
			for i := range as {
				as[i], bs[i] = r.NewPoly(level), r.NewPoly(level)
				s.Uniform(level, as[i])
				s.Uniform(level, bs[i])
			}

			eager := r.NewPoly(level) // zeroed
			for i := range as {
				r.MulCoeffsAndAdd(level, as[i], bs[i], eager)
			}

			acc := r.BorrowAcc(level)
			for i := range as {
				r.MulCoeffsLazy128(level, as[i], bs[i], &acc)
			}
			lazy := r.NewPoly(level)
			r.ReduceAcc128(level, &acc, lazy)
			r.ReleaseAcc(&acc)

			if !r.Equal(level, eager, lazy) {
				t.Fatal("lazy accumulation differs from eager MulCoeffsAndAdd")
			}
		})
	}
}

func TestAddLazy128MatchesEager(t *testing.T) {
	r := lazyTestRing(t, 128, 2, 61)
	level := r.MaxLevel()
	s := NewSampler(r, 12)
	a, b, c := r.NewPoly(level), r.NewPoly(level), r.NewPoly(level)
	s.Uniform(level, a)
	s.Uniform(level, b)
	s.Uniform(level, c)

	eager := r.NewPoly(level)
	r.MulCoeffsAndAdd(level, a, b, eager)
	r.Add(level, eager, c, eager)

	acc := r.BorrowAcc(level)
	r.MulCoeffsLazy128(level, a, b, &acc)
	r.AddLazy128(level, c, &acc)
	lazy := r.NewPoly(level)
	r.ReduceAcc128(level, &acc, lazy)
	r.ReleaseAcc(&acc)

	if !r.Equal(level, eager, lazy) {
		t.Fatal("AddLazy128 differs from eager Add")
	}
}

// TestLazyAutoMatchesEager checks the fused gather kernel against the
// materialize-then-multiply reference: acc += φ_k(a) ⊙ b in the NTT domain.
func TestLazyAutoMatchesEager(t *testing.T) {
	for _, bits := range []uint64{40, 61} {
		r := lazyTestRing(t, 128, 3, bits)
		level := r.MaxLevel()
		s := NewSampler(r, 13)
		a, b := r.NewPoly(level), r.NewPoly(level)
		s.Uniform(level, a)
		s.Uniform(level, b)
		k := r.GaloisElementForRotation(5)

		perm := r.NewPoly(level)
		r.AutomorphismNTT(level, a, k, perm)
		eager := r.NewPoly(level)
		r.MulCoeffsAndAdd(level, perm, b, eager)

		acc := r.BorrowAcc(level)
		r.MulCoeffsLazy128Auto(level, a, k, b, &acc)
		lazy := r.NewPoly(level)
		r.ReduceAcc128(level, &acc, lazy)
		r.ReleaseAcc(&acc)

		if !r.Equal(level, eager, lazy) {
			t.Fatalf("%d-bit: fused automorphism accumulate differs from eager", bits)
		}
	}
}

// TestConvertLazyMatchesEager pins the lazy Bconv's byte-identity to the
// eager ConvertN across source levels and edge moduli (where the step-2
// capacity bound forces mid-sum flushes once L exceeds it).
func TestConvertLazyMatchesEager(t *testing.T) {
	for _, bits := range []uint64{40, 49, 61} {
		n := 128
		primes, err := modmath.GenerateNTTPrimes(bits, uint64(2*n), 14)
		if err != nil {
			t.Fatal(err)
		}
		src, dst := primes[:10], primes[10:]
		bc := NewBasisConverter(src, dst)
		in := make([][]uint64, len(src))
		s := prngFill(99)
		for i := range in {
			in[i] = make([]uint64, n)
			for k := range in[i] {
				in[i][k] = s() % src[i]
			}
		}
		for srcLevel := 0; srcLevel < len(src); srcLevel++ {
			eager := mk2d(len(dst), n)
			lazy := mk2d(len(dst), n)
			bc.ConvertN(srcLevel, in, eager, len(dst))
			bc.ConvertLazyN(srcLevel, in, lazy, len(dst))
			for j := range eager {
				for k := range eager[j] {
					if eager[j][k] != lazy[j][k] {
						t.Fatalf("%d-bit srcLevel=%d: lazy[%d][%d]=%d eager=%d", bits, srcLevel, j, k, lazy[j][k], eager[j][k])
					}
				}
			}
		}
	}
}

// TestDualConverterMatchesEager pins ConvertBoth (shared step 1, identity
// channels, lazy step 2) against the two separate eager conversions.
func TestDualConverterMatchesEager(t *testing.T) {
	for _, bits := range []uint64{40, 61} {
		n := 128
		primes, err := modmath.GenerateNTTPrimes(bits, uint64(2*n), 12)
		if err != nil {
			t.Fatal(err)
		}
		q, p := primes[:9], primes[9:]
		// Digit group = q[3:6], sitting at offset 3 of the Q target.
		src := q[3:6]
		toQ := NewBasisConverter(src, q)
		toP := NewBasisConverter(src, p)
		dc, err := NewDualConverter(toQ, toP, 3)
		if err != nil {
			t.Fatal(err)
		}
		in := make([][]uint64, len(src))
		s := prngFill(42)
		for i := range in {
			in[i] = make([]uint64, n)
			for k := range in[i] {
				in[i][k] = s() % src[i]
			}
		}
		for srcLevel := 0; srcLevel < len(src); srcLevel++ {
			for nQ := 1; nQ <= len(q); nQ += 3 {
				eagerQ, lazyQ := mk2d(len(q), n), mk2d(len(q), n)
				eagerP, lazyP := mk2d(len(p), n), mk2d(len(p), n)
				toQ.ConvertN(srcLevel, in, eagerQ, nQ)
				toP.Convert(srcLevel, in, eagerP)
				dc.ConvertBoth(srcLevel, in, lazyQ, lazyP, nQ)
				for j := 0; j < nQ; j++ {
					for k := 0; k < n; k++ {
						if eagerQ[j][k] != lazyQ[j][k] {
							t.Fatalf("%d-bit srcLevel=%d nQ=%d: Q[%d][%d] lazy=%d eager=%d", bits, srcLevel, nQ, j, k, lazyQ[j][k], eagerQ[j][k])
						}
					}
				}
				for j := range eagerP {
					for k := 0; k < n; k++ {
						if eagerP[j][k] != lazyP[j][k] {
							t.Fatalf("%d-bit srcLevel=%d: P[%d][%d] lazy=%d eager=%d", bits, srcLevel, j, k, lazyP[j][k], eagerP[j][k])
						}
					}
				}
			}
		}
	}
}

// TestDualConverterRejectsBadOffset pins the constructor validation.
func TestDualConverterRejectsBadOffset(t *testing.T) {
	n := 64
	primes, err := modmath.GenerateNTTPrimes(40, uint64(2*n), 6)
	if err != nil {
		t.Fatal(err)
	}
	q, p := primes[:4], primes[4:]
	toQ := NewBasisConverter(q[1:3], q)
	toP := NewBasisConverter(q[1:3], p)
	if _, err := NewDualConverter(toQ, toP, 0); err == nil {
		t.Fatal("offset 0 for a group at offset 1 should be rejected")
	}
	if _, err := NewDualConverter(toQ, toP, 3); err == nil {
		t.Fatal("out-of-range identity window should be rejected")
	}
	if _, err := NewDualConverter(toQ, toP, 1); err != nil {
		t.Fatalf("correct offset rejected: %v", err)
	}
	if _, err := NewDualConverter(toQ, toP, -1); err != nil {
		t.Fatalf("disabled identity window rejected: %v", err)
	}
}

func mk2d(rows, n int) [][]uint64 {
	out := make([][]uint64, rows)
	for i := range out {
		out[i] = make([]uint64, n)
	}
	return out
}

// prngFill returns a tiny deterministic word generator for test inputs
// (splitmix64; test-only, no crypto claim).
func prngFill(seed uint64) func() uint64 {
	x := seed
	return func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

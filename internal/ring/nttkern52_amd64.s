//go:build amd64 && !purego

#include "textflag.h"

// AVX512-IFMA tier of the lazy Harvey butterfly kernels: 8 coefficients
// per step, with the lazy Shoup product in base 2^52. For q < 2^50 every
// value in the [0,4q) lazy domain fits a 52-bit madd operand, so
//
//	qHat = ⌊a·w52 / 2^52⌋            one VPMADD52HUQ (w52 = ⌊w·2^52/q⌋)
//	r    = (a·w − qHat·q) mod 2^52   two VPMADD52LUQ, a subtract, a mask
//
// replaces the ten VPMULUDQ of the AVX2 composed 64×64 path. Harvey's
// window argument holds verbatim in base 2^52: r ∈ [0, 2q) because
// a < 4q ≤ 2^52, so the drivers' domain ladder is unchanged. The quotient
// can differ from the scalar base-2^64 one by 1, so intermediate values
// may differ from the scalar path by q inside the same bounds; the fully
// reduced transform outputs are bit-identical.
//
// Register conventions:
//
//	Z20 = q broadcast    Z21 = 2q broadcast    Z22 = 2^52−1 per qword
//	Z10, Z11 = current twiddle w, w52 (Z12, Z13 second pair when needed)
//	Z30, Z31 = twiddle expansion permutations (tail/head kernels)
//	K2 = 0xCC, K3 = 0xAA qword blend masks (tail/head kernels)
//	Z0–Z9 = data and scratch

// Qword permutation patterns expanding packed twiddle loads to lane form:
// permQuad spreads [w0,w1] to [w0 ×4 | w1 ×4], permPair spreads
// [w0,w1,w2,w3] to [w0,w0,w1,w1 | w2,w2,w3,w3].
DATA permQuad<>+0(SB)/8, $0
DATA permQuad<>+8(SB)/8, $0
DATA permQuad<>+16(SB)/8, $0
DATA permQuad<>+24(SB)/8, $0
DATA permQuad<>+32(SB)/8, $1
DATA permQuad<>+40(SB)/8, $1
DATA permQuad<>+48(SB)/8, $1
DATA permQuad<>+56(SB)/8, $1
GLOBL permQuad<>(SB), RODATA, $64

DATA permPair<>+0(SB)/8, $0
DATA permPair<>+8(SB)/8, $0
DATA permPair<>+16(SB)/8, $1
DATA permPair<>+24(SB)/8, $1
DATA permPair<>+32(SB)/8, $2
DATA permPair<>+40(SB)/8, $2
DATA permPair<>+48(SB)/8, $3
DATA permPair<>+56(SB)/8, $3
GLOBL permPair<>(SB), RODATA, $64

// LOADCONSTS52 broadcasts the modulus and derives Z20=q, Z21=2q,
// Z22=2^52−1. Clobbers AX.
#define LOADCONSTS52(qarg) \
	VPBROADCASTQ qarg, Z20;            \
	VPADDQ Z20, Z20, Z21;              \
	MOVQ $0x000FFFFFFFFFFFFF, AX;      \
	VPBROADCASTQ AX, Z22

// LAZYMUL52: dst = (a·w − ⌊a·w52/2^52⌋·q) mod 2^52, lanewise — the
// base-2^52 lazy Shoup product, in [0, 2q) for a < 4q. a, w, w52
// preserved; t0, t1 clobbered. Requires Z20=q, Z22=2^52−1 resident.
#define LAZYMUL52(a, w, w52, dst, t0, t1) \
	VPXORQ t0, t0, t0;                 \
	VPMADD52HUQ w52, a, t0;            \
	VPXORQ t1, t1, t1;                 \
	VPMADD52LUQ w, a, t1;              \
	VPXORQ dst, dst, dst;              \
	VPMADD52LUQ Z20, t0, dst;          \
	VPSUBQ dst, t1, dst;               \
	VPANDQ Z22, dst, dst

// CONDSUB52: dst = x − mod if x ≥ mod else x. All values < 2^52, so the
// wrapped difference's sign bit is exactly the borrow and VPSRAQ (AVX512)
// turns it into the add-back mask. x preserved; t0 clobbered.
#define CONDSUB52(x, mod, dst, t0) \
	VPSUBQ mod, x, dst;                \
	VPSRAQ $63, dst, t0;               \
	VPANDQ mod, t0, t0;                \
	VPADDQ t0, dst, dst

// func nttSingleVec52(x0, x1 []uint64, w, w52, q uint64)
TEXT ·nttSingleVec52(SB), NOSPLIT, $0-72
	MOVQ x0_base+0(FP), DI
	MOVQ x0_len+8(FP), CX
	MOVQ x1_base+24(FP), SI
	LOADCONSTS52(q+64(FP))
	VPBROADCASTQ w+48(FP), Z10
	VPBROADCASTQ w52+56(FP), Z11
	SHLQ $3, CX
	XORQ R9, R9

single52_loop:
	CMPQ R9, CX
	JGE  single52_done
	VMOVDQU64 (DI)(R9*1), Z0
	VMOVDQU64 (SI)(R9*1), Z1
	CONDSUB52(Z0, Z21, Z2, Z3)
	LAZYMUL52(Z1, Z10, Z11, Z3, Z4, Z5)
	VPADDQ Z3, Z2, Z0
	VPADDQ Z21, Z2, Z1
	VPSUBQ Z3, Z1, Z1
	VMOVDQU64 Z0, (DI)(R9*1)
	VMOVDQU64 Z1, (SI)(R9*1)
	ADDQ $64, R9
	JMP  single52_loop

single52_done:
	VZEROUPPER
	RET

// func nttPairVec52(p, wA, wA52, wB, wB52 []uint64, t int, q uint64)
TEXT ·nttPairVec52(SB), NOSPLIT, $0-136
	MOVQ p_base+0(FP), DI
	MOVQ wA_base+24(FP), R10
	MOVQ wA_len+32(FP), R11
	MOVQ wA52_base+48(FP), R12
	MOVQ wB_base+72(FP), R13
	MOVQ wB52_base+96(FP), R14
	MOVQ t+120(FP), BX
	SHLQ $3, BX
	LEAQ (BX)(BX*2), DX
	LOADCONSTS52(q+128(FP))
	TESTQ R11, R11
	JZ    pair52_done

pair52_group:
	VPBROADCASTQ (R10), Z10
	VPBROADCASTQ (R12), Z11
	VPBROADCASTQ (R13), Z12      // wB0
	VPBROADCASTQ (R14), Z13
	VPBROADCASTQ 8(R13), Z14     // wB1
	VPBROADCASTQ 8(R14), Z15
	XORQ R9, R9

pair52_j:
	LEAQ (DI)(R9*1), AX
	VMOVDQU64 (AX), Z0           // a
	VMOVDQU64 (AX)(BX*2), Z1     // c
	CONDSUB52(Z0, Z21, Z2, Z3)
	LAZYMUL52(Z1, Z10, Z11, Z3, Z4, Z5)
	VPADDQ Z3, Z2, Z0            // a'
	VPADDQ Z21, Z2, Z1
	VPSUBQ Z3, Z1, Z1            // c'
	VMOVDQU64 (AX)(BX*1), Z2     // b
	VMOVDQU64 (AX)(DX*1), Z3     // d
	CONDSUB52(Z2, Z21, Z4, Z5)
	LAZYMUL52(Z3, Z10, Z11, Z5, Z6, Z7)
	VPADDQ Z5, Z4, Z2            // b'
	VPADDQ Z21, Z4, Z3
	VPSUBQ Z5, Z3, Z3            // d'

	CONDSUB52(Z0, Z21, Z4, Z5)
	LAZYMUL52(Z2, Z12, Z13, Z5, Z6, Z7)
	VPADDQ Z5, Z4, Z0
	VPADDQ Z21, Z4, Z6
	VPSUBQ Z5, Z6, Z6
	VMOVDQU64 Z0, (AX)
	VMOVDQU64 Z6, (AX)(BX*1)
	CONDSUB52(Z1, Z21, Z4, Z5)
	LAZYMUL52(Z3, Z14, Z15, Z5, Z6, Z7)
	VPADDQ Z5, Z4, Z0
	VPADDQ Z21, Z4, Z6
	VPSUBQ Z5, Z6, Z6
	VMOVDQU64 Z0, (AX)(BX*2)
	VMOVDQU64 Z6, (AX)(DX*1)

	ADDQ $64, R9
	CMPQ R9, BX
	JL   pair52_j

	LEAQ (DI)(BX*4), DI
	ADDQ $8, R10
	ADDQ $8, R12
	ADDQ $16, R13
	ADDQ $16, R14
	DECQ R11
	JNZ  pair52_group

pair52_done:
	VZEROUPPER
	RET

// func nttTailVec52(p, wA, wA52, wB, wB52 []uint64, q uint64)
// Two 4-coefficient groups per step; len(wA) even. The same in-register
// shuffle recipe as the AVX2 tail, with VPERMQ acting per 256-bit lane and
// the VPBLENDD immediates replaced by the K2/K3 qword merge masks.
TEXT ·nttTailVec52(SB), NOSPLIT, $0-128
	MOVQ p_base+0(FP), DI
	MOVQ wA_base+24(FP), R10
	MOVQ wA_len+32(FP), R11
	MOVQ wA52_base+48(FP), R12
	MOVQ wB_base+72(FP), R13
	MOVQ wB52_base+96(FP), R14
	LOADCONSTS52(q+120(FP))
	VMOVDQU64 permQuad<>(SB), Z30
	VMOVDQU64 permPair<>(SB), Z31
	MOVL $0xCC, AX
	KMOVB AX, K2
	MOVL $0xAA, AX
	KMOVB AX, K3
	SHRQ $1, R11
	JZ   tail52_done

tail52_group:
	VMOVDQU64 (DI), Z0           // [a,b,c,d | a,b,c,d]
	VMOVDQU (R10), X1            // [wA0, wA1]
	VPERMQ Z1, Z30, Z10          // [wA0 ×4 | wA1 ×4]
	VMOVDQU (R12), X1
	VPERMQ Z1, Z30, Z11
	VPERMQ $0x44, Z0, Z1         // [a,b,a,b | ...]
	VPERMQ $0xEE, Z0, Z2         // [c,d,c,d | ...]
	CONDSUB52(Z1, Z21, Z3, Z4)
	LAZYMUL52(Z2, Z10, Z11, Z4, Z5, Z6)
	VPADDQ Z4, Z3, Z0
	VPADDQ Z21, Z3, Z1
	VPSUBQ Z4, Z1, Z1
	VPBLENDMQ Z1, Z0, K2, Z0     // [a',b',c',d' | ...]

	VMOVDQU (R13), Y1            // [wB0, wB1, wB2, wB3]
	VPERMQ Z1, Z31, Z10          // [wB0,wB0,wB1,wB1 | wB2,wB2,wB3,wB3]
	VMOVDQU (R14), Y1
	VPERMQ Z1, Z31, Z11
	VPERMQ $0xA0, Z0, Z1         // [a',a',c',c' | ...]
	VPERMQ $0xF5, Z0, Z2         // [b',b',d',d' | ...]
	CONDSUB52(Z1, Z21, Z3, Z4)
	LAZYMUL52(Z2, Z10, Z11, Z4, Z5, Z6)
	VPADDQ Z4, Z3, Z0
	VPADDQ Z21, Z3, Z1
	VPSUBQ Z4, Z1, Z1
	VPBLENDMQ Z1, Z0, K3, Z0

	CONDSUB52(Z0, Z21, Z1, Z3)
	CONDSUB52(Z1, Z20, Z0, Z3)
	VMOVDQU64 Z0, (DI)

	ADDQ $64, DI
	ADDQ $16, R10
	ADDQ $16, R12
	ADDQ $32, R13
	ADDQ $32, R14
	DECQ R11
	JNZ  tail52_group

tail52_done:
	VZEROUPPER
	RET

// func inttHeadVec52(p, wA, wA52, wB, wB52 []uint64, q uint64)
// Two 4-coefficient groups per step; len(wB) even.
TEXT ·inttHeadVec52(SB), NOSPLIT, $0-128
	MOVQ p_base+0(FP), DI
	MOVQ wA_base+24(FP), R10
	MOVQ wA52_base+48(FP), R12
	MOVQ wB_base+72(FP), R13
	MOVQ wB_len+80(FP), R11
	MOVQ wB52_base+96(FP), R14
	LOADCONSTS52(q+120(FP))
	VMOVDQU64 permQuad<>(SB), Z30
	VMOVDQU64 permPair<>(SB), Z31
	MOVL $0xCC, AX
	KMOVB AX, K2
	MOVL $0xAA, AX
	KMOVB AX, K3
	SHRQ $1, R11
	JZ   head52_done

head52_group:
	VMOVDQU64 (DI), Z0           // [a,b,c,d | a,b,c,d]
	VMOVDQU (R10), Y1            // [wA0, wA1, wA2, wA3]
	VPERMQ Z1, Z31, Z10          // [wA0,wA0,wA1,wA1 | wA2,wA2,wA3,wA3]
	VMOVDQU (R12), Y1
	VPERMQ Z1, Z31, Z11
	VPERMQ $0xA0, Z0, Z1         // u = [a,a,c,c | ...]
	VPERMQ $0xF5, Z0, Z2         // v = [b,b,d,d | ...]
	VPADDQ Z2, Z1, Z3
	CONDSUB52(Z3, Z21, Z4, Z5)
	VPADDQ Z21, Z1, Z3
	VPSUBQ Z2, Z3, Z3
	LAZYMUL52(Z3, Z10, Z11, Z5, Z1, Z2)
	VPBLENDMQ Z5, Z4, K3, Z0     // [sa,da,sc,dc | ...]

	VMOVDQU (R13), X1            // [wB0, wB1]
	VPERMQ Z1, Z30, Z10          // [wB0 ×4 | wB1 ×4]
	VMOVDQU (R14), X1
	VPERMQ Z1, Z30, Z11
	VPERMQ $0x44, Z0, Z1         // [sa,da,sa,da | ...]
	VPERMQ $0xEE, Z0, Z2         // [sc,dc,sc,dc | ...]
	VPADDQ Z2, Z1, Z3
	CONDSUB52(Z3, Z21, Z4, Z5)
	VPADDQ Z21, Z1, Z3
	VPSUBQ Z2, Z3, Z3
	LAZYMUL52(Z3, Z10, Z11, Z5, Z1, Z2)
	VPBLENDMQ Z5, Z4, K2, Z0
	VMOVDQU64 Z0, (DI)

	ADDQ $64, DI
	ADDQ $32, R10
	ADDQ $32, R12
	ADDQ $16, R13
	ADDQ $16, R14
	DECQ R11
	JNZ  head52_group

head52_done:
	VZEROUPPER
	RET

// func inttPairVec52(p, wA, wA52, wB, wB52 []uint64, t int, q uint64)
TEXT ·inttPairVec52(SB), NOSPLIT, $0-136
	MOVQ p_base+0(FP), DI
	MOVQ wA_base+24(FP), R10
	MOVQ wA52_base+48(FP), R12
	MOVQ wB_base+72(FP), R13
	MOVQ wB_len+80(FP), R11
	MOVQ wB52_base+96(FP), R14
	MOVQ t+120(FP), BX
	SHLQ $3, BX
	LEAQ (BX)(BX*2), DX
	LOADCONSTS52(q+128(FP))
	TESTQ R11, R11
	JZ    ipair52_done

ipair52_group:
	VPBROADCASTQ (R10), Z10      // wA0
	VPBROADCASTQ (R12), Z11
	VPBROADCASTQ 8(R10), Z12     // wA1
	VPBROADCASTQ 8(R12), Z13
	VPBROADCASTQ (R13), Z14      // wB
	VPBROADCASTQ (R14), Z15
	XORQ R9, R9

ipair52_j:
	LEAQ (DI)(R9*1), AX
	VMOVDQU64 (AX), Z0           // a
	VMOVDQU64 (AX)(BX*1), Z1     // b
	VPADDQ Z1, Z0, Z2            // a + b
	VPADDQ Z21, Z0, Z4
	VPSUBQ Z1, Z4, Z4            // a + 2q − b
	CONDSUB52(Z2, Z21, Z0, Z1)
	LAZYMUL52(Z4, Z10, Z11, Z1, Z2, Z5)   // sa=Z0, da=Z1
	VMOVDQU64 (AX)(BX*2), Z2     // c
	VMOVDQU64 (AX)(DX*1), Z3     // d
	VPADDQ Z3, Z2, Z4            // c + d
	VPADDQ Z21, Z2, Z5
	VPSUBQ Z3, Z5, Z5            // c + 2q − d
	CONDSUB52(Z4, Z21, Z2, Z3)
	LAZYMUL52(Z5, Z12, Z13, Z3, Z4, Z6)   // sc=Z2, dc=Z3

	VPADDQ Z2, Z0, Z4
	CONDSUB52(Z4, Z21, Z5, Z6)
	VMOVDQU64 Z5, (AX)           // condSub(sa+sc, 2q)
	VPADDQ Z3, Z1, Z4
	CONDSUB52(Z4, Z21, Z5, Z6)
	VMOVDQU64 Z5, (AX)(BX*1)     // condSub(da+dc, 2q)
	VPADDQ Z21, Z0, Z4
	VPSUBQ Z2, Z4, Z4            // sa + 2q − sc
	LAZYMUL52(Z4, Z14, Z15, Z5, Z6, Z7)
	VMOVDQU64 Z5, (AX)(BX*2)
	VPADDQ Z21, Z1, Z4
	VPSUBQ Z3, Z4, Z4            // da + 2q − dc
	LAZYMUL52(Z4, Z14, Z15, Z5, Z6, Z7)
	VMOVDQU64 Z5, (AX)(DX*1)

	ADDQ $64, R9
	CMPQ R9, BX
	JL   ipair52_j

	LEAQ (DI)(BX*4), DI
	ADDQ $16, R10
	ADDQ $16, R12
	ADDQ $8, R13
	ADDQ $8, R14
	DECQ R11
	JNZ  ipair52_group

ipair52_done:
	VZEROUPPER
	RET

// func inttLastEvenVec52(p []uint64, wA0, wA052, wA1, wA152, ni, ni52, w, w52, q uint64)
TEXT ·inttLastEvenVec52(SB), NOSPLIT, $0-96
	MOVQ p_base+0(FP), DI
	MOVQ p_len+8(FP), CX
	SHRQ $2, CX
	SHLQ $3, CX
	MOVQ CX, BX
	LEAQ (BX)(BX*2), DX
	LOADCONSTS52(q+88(FP))
	VPBROADCASTQ wA0+24(FP), Z10
	VPBROADCASTQ wA052+32(FP), Z11
	VPBROADCASTQ wA1+40(FP), Z12
	VPBROADCASTQ wA152+48(FP), Z13
	VPBROADCASTQ ni+56(FP), Z14
	VPBROADCASTQ ni52+64(FP), Z15
	VPBROADCASTQ w+72(FP), Z16
	VPBROADCASTQ w52+80(FP), Z17
	XORQ R9, R9

ilast52_j:
	CMPQ R9, BX
	JGE  ilast52_done
	LEAQ (DI)(R9*1), AX
	VMOVDQU64 (AX), Z0           // a
	VMOVDQU64 (AX)(BX*1), Z1     // b
	VPADDQ Z1, Z0, Z2
	VPADDQ Z21, Z0, Z4
	VPSUBQ Z1, Z4, Z4
	CONDSUB52(Z2, Z21, Z0, Z1)
	LAZYMUL52(Z4, Z10, Z11, Z1, Z2, Z5)   // sa=Z0, da=Z1
	VMOVDQU64 (AX)(BX*2), Z2     // c
	VMOVDQU64 (AX)(DX*1), Z3     // d
	VPADDQ Z3, Z2, Z4
	VPADDQ Z21, Z2, Z5
	VPSUBQ Z3, Z5, Z5
	CONDSUB52(Z4, Z21, Z2, Z3)
	LAZYMUL52(Z5, Z12, Z13, Z3, Z4, Z6)   // sc=Z2, dc=Z3

	VPADDQ Z2, Z0, Z4            // s0 = sa + sc
	VPADDQ Z21, Z0, Z5
	VPSUBQ Z2, Z5, Z5            // d0 = sa + 2q − sc
	LAZYMUL52(Z4, Z14, Z15, Z0, Z2, Z6)
	CONDSUB52(Z0, Z20, Z2, Z4)
	VMOVDQU64 Z2, (AX)
	VPADDQ Z3, Z1, Z4            // s1 = da + dc
	VPADDQ Z21, Z1, Z6
	VPSUBQ Z3, Z6, Z6            // d1 = da + 2q − dc
	LAZYMUL52(Z4, Z14, Z15, Z0, Z1, Z2)
	CONDSUB52(Z0, Z20, Z2, Z1)
	VMOVDQU64 Z2, (AX)(BX*1)
	LAZYMUL52(Z5, Z16, Z17, Z0, Z1, Z2)
	CONDSUB52(Z0, Z20, Z2, Z1)
	VMOVDQU64 Z2, (AX)(BX*2)
	LAZYMUL52(Z6, Z16, Z17, Z0, Z1, Z2)
	CONDSUB52(Z0, Z20, Z2, Z1)
	VMOVDQU64 Z2, (AX)(DX*1)

	ADDQ $64, R9
	JMP  ilast52_j

ilast52_done:
	VZEROUPPER
	RET

// func inttLastOddVec52(x0, x1 []uint64, ni, ni52, w, w52, q uint64)
TEXT ·inttLastOddVec52(SB), NOSPLIT, $0-88
	MOVQ x0_base+0(FP), DI
	MOVQ x0_len+8(FP), CX
	MOVQ x1_base+24(FP), SI
	LOADCONSTS52(q+80(FP))
	VPBROADCASTQ ni+48(FP), Z10
	VPBROADCASTQ ni52+56(FP), Z11
	VPBROADCASTQ w+64(FP), Z12
	VPBROADCASTQ w52+72(FP), Z13
	SHLQ $3, CX
	XORQ R9, R9

iodd52_j:
	CMPQ R9, CX
	JGE  iodd52_done
	VMOVDQU64 (DI)(R9*1), Z0
	VMOVDQU64 (SI)(R9*1), Z1
	VPADDQ Z1, Z0, Z2            // u + v
	VPADDQ Z21, Z0, Z3
	VPSUBQ Z1, Z3, Z3            // u + 2q − v
	LAZYMUL52(Z2, Z10, Z11, Z0, Z1, Z4)
	CONDSUB52(Z0, Z20, Z1, Z4)
	VMOVDQU64 Z1, (DI)(R9*1)
	LAZYMUL52(Z3, Z12, Z13, Z0, Z1, Z4)
	CONDSUB52(Z0, Z20, Z1, Z4)
	VMOVDQU64 Z1, (SI)(R9*1)
	ADDQ $64, R9
	JMP  iodd52_j

iodd52_done:
	VZEROUPPER
	RET

// func shoupMulVec52(dst, src []uint64, w, w52, q uint64)
TEXT ·shoupMulVec52(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	LOADCONSTS52(q+64(FP))
	VPBROADCASTQ w+48(FP), Z10
	VPBROADCASTQ w52+56(FP), Z11
	SHLQ $3, CX
	XORQ R9, R9

shoupmul52_loop:
	CMPQ R9, CX
	JGE  shoupmul52_done
	VMOVDQU64 (SI)(R9*1), Z0
	LAZYMUL52(Z0, Z10, Z11, Z1, Z2, Z3)
	CONDSUB52(Z1, Z20, Z1, Z2)
	VMOVDQU64 Z1, (DI)(R9*1)
	ADDQ $64, R9
	JMP  shoupmul52_loop

shoupmul52_done:
	VZEROUPPER
	RET

// func convAcc52(y, hc, lo, hi []uint64, stride int)
TEXT ·convAcc52(SB), NOSPLIT, $0-104
	MOVQ y_base+0(FP), DI
	MOVQ hc_base+24(FP), R10
	MOVQ hc_len+32(FP), R11
	MOVQ lo_base+48(FP), R12
	MOVQ lo_len+56(FP), R13
	MOVQ hi_base+72(FP), R14
	MOVQ stride+96(FP), BX
	SHLQ $3, BX
	SHLQ $3, R13
	XORQ R9, R9

convacc52_kloop:
	CMPQ R9, R13
	JGE  convacc52_done
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	LEAQ (DI)(R9*1), SI
	MOVQ R10, DX
	MOVQ R11, CX

convacc52_iloop:
	VPBROADCASTQ (DX), Z2
	VMOVDQU64 (SI), Z3
	VPMADD52LUQ Z2, Z3, Z0
	VPMADD52HUQ Z2, Z3, Z1
	ADDQ $8, DX
	ADDQ BX, SI
	DECQ CX
	JNZ  convacc52_iloop

	VMOVDQU64 Z0, (R12)(R9*1)
	VMOVDQU64 Z1, (R14)(R9*1)
	ADDQ $64, R9
	JMP  convacc52_kloop

convacc52_done:
	VZEROUPPER
	RET

// func rescaleVec52(dst, src, last []uint64, inv, inv52, q uint64)
TEXT ·rescaleVec52(SB), NOSPLIT, $0-96
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	MOVQ last_base+48(FP), R10
	LOADCONSTS52(q+88(FP))
	VPBROADCASTQ inv+72(FP), Z10
	VPBROADCASTQ inv52+80(FP), Z11
	SHLQ $3, CX
	XORQ R9, R9

rescale52_loop:
	CMPQ R9, CX
	JGE  rescale52_done
	VMOVDQU64 (SI)(R9*1), Z0
	VMOVDQU64 (R10)(R9*1), Z1
	CONDSUB52(Z1, Z20, Z1, Z2)
	VPADDQ Z20, Z0, Z0
	VPSUBQ Z1, Z0, Z0
	LAZYMUL52(Z0, Z10, Z11, Z1, Z2, Z3)
	CONDSUB52(Z1, Z20, Z1, Z2)
	VMOVDQU64 Z1, (DI)(R9*1)
	ADDQ $64, R9
	JMP  rescale52_loop

rescale52_done:
	VZEROUPPER
	RET

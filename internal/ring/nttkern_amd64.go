//go:build amd64 && !purego

package ring

// AVX2 vector kernels for the lazy Harvey NTT/INTT butterflies
// (nttkern_amd64.s). The hot loops are 64-bit modular multiplies the gc
// compiler will not vectorize, so the amd64 build carries hand-written
// 256-bit kernels processing 4 coefficients per step. Each kernel replays
// the EXACT scalar dataflow — the same VPMULUDQ-composed 64×64 products,
// the same conditional subtractions, all arithmetic exact mod 2^64 — so
// outputs are bit-identical to the scalar reference in nttlazy.go
// (kernel-equivalence tests pin this on random and adversarial 4q−1
// inputs). Scalar fallbacks live in nttkern_generic.go; the drivers in
// nttlazy.go pick a path via useNTTKern.
//
// The vector MulModShoupLazy is the Shoup recipe on 4 lanes:
//
//	qHat = mulhi64(a, wShoup)   (4 VPMULUDQ + carry recombination)
//	r    = a·w − qHat·q  mod 2^64   (3 VPMULUDQ each for the two mullo64)
//
// ~10 VPMULUDQ per 4 lanes versus 3 scalar MULs per lane: the vector path
// wins ~3× on multiply throughput before counting the fused ladder.

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// useNTTKern gates the vector butterfly kernels: AVX2 present (the 64-bit
// lane shuffles and VPMULUDQ forms need 256-bit integer ops) AND the OS
// saves/restores YMM state.
var useNTTKern = func() bool {
	_, _, c, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // AVX2
}()

// useNTTKernIFMA gates the 8-lane 52-bit madd tier: AVX512F + AVX512DQ +
// AVX512-IFMA present AND the OS saves/restores the full ZMM + opmask
// state. Subrings additionally require q < 2^50 (SubRing.ifma) so every
// lazy-domain value and base-2^52 Shoup quotient fits a madd operand.
var useNTTKernIFMA = func() bool {
	if !useNTTKern {
		return false
	}
	if lo, _ := xgetbv(); lo&0xE6 != 0xE6 { // XMM, YMM, opmask, ZMM state
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	const need = 1<<16 | 1<<17 | 1<<21 // AVX512F, AVX512DQ, AVX512IFMA
	return b&need == need
}()

// nttSingleVec runs one standalone CT stage over the half-arrays x0/x1
// (butterfly distance len(x0)) with a single broadcast twiddle:
// x0[j], x1[j] = u+v, u+2q−v with u = condSub(x0[j], 2q),
// v = MulModShoupLazy(x1[j], w, ws, q). len(x0) must be a multiple of 4.
// The vector NTT schedule uses it as the leading stage when log N is odd.
//
//alchemist:domain x0:[0,4q) x1:[0,4q) w:[0,q) ws:any q:modulus
//
//go:noescape
func nttSingleVec(x0, x1 []uint64, w, ws, q uint64)

// nttPairVec runs one fused CT stage pair over len(wA) consecutive groups:
// group g spans p[4·g·t : 4·(g+1)·t], stage twiddles wA[g] (distance 2t)
// then wB[2g], wB[2g+1] (distance t), exactly the fused radix-4 body of the
// scalar NTTLazy main loop. t must be a multiple of 4.
//
//alchemist:domain p:[0,4q) wA:[0,q) wAs:any wB:[0,q) wBs:any q:modulus
//
//go:noescape
func nttPairVec(p, wA, wAs, wB, wBs []uint64, t int, q uint64)

// nttTailVec runs the final fused CT stage pair (t = 1) over len(wA) groups
// of 4 consecutive coefficients, folding the full reduction to [0, q) into
// the last stage: the scalar NTTLazy epilogue, 4 lanes per group via
// in-register VPERMQ/VPBLENDD shuffles.
//
//alchemist:domain p:[0,4q) wA:[0,q) wAs:any wB:[0,q) wBs:any q:modulus
//
//go:noescape
func nttTailVec(p, wA, wAs, wB, wBs []uint64, q uint64)

// inttHeadVec runs the leading fused GS stage pair (t = 1) over len(wB)
// groups of 4 consecutive coefficients: stage twiddles wA[2g], wA[2g+1]
// (distance 1) then wB[g] (distance 2), the m = n iteration of the scalar
// INTTLazy main loop, 4 lanes per group via in-register shuffles.
//
//alchemist:domain p:[0,2q) wA:[0,q) wAs:any wB:[0,q) wBs:any q:modulus
//
//go:noescape
func inttHeadVec(p, wA, wAs, wB, wBs []uint64, q uint64)

// inttPairVec runs one fused GS stage pair over len(wB) consecutive groups:
// group g spans p[4·g·t : 4·(g+1)·t], stage twiddles wA[2g], wA[2g+1]
// (distance t) then wB[g] (distance 2t), the fused radix-4 body of the
// scalar INTTLazy main loop. t must be a multiple of 4.
//
//alchemist:domain p:[0,2q) wA:[0,q) wAs:any wB:[0,q) wBs:any q:modulus
//
//go:noescape
func inttPairVec(p, wA, wAs, wB, wBs []uint64, t int, q uint64)

// inttLastEvenVec fuses the unpaired m = 4 GS stage (twiddles wA0, wA1)
// with the final N^{-1}-scaled stage over the quarter-arrays of p, writing
// fully reduced [0, q) results: the even-log-N scalar INTTLazy epilogue.
// len(p)/4 must be a multiple of 4.
//
//alchemist:domain p:[0,2q) wA0:[0,q) wA0s:any wA1:[0,q) wA1s:any ni:[0,q) nis:any w:[0,q) ws:any q:modulus
//
//go:noescape
func inttLastEvenVec(p []uint64, wA0, wA0s, wA1, wA1s, ni, nis, w, ws, q uint64)

// inttLastOddVec runs the final N^{-1}-scaled GS stage over the half-arrays
// x0/x1, writing fully reduced [0, q) results: the odd-log-N scalar
// INTTLazy epilogue. len(x0) must be a multiple of 4.
//
//alchemist:domain x0:[0,2q) x1:[0,2q) ni:[0,q) nis:any w:[0,q) ws:any q:modulus
//
//go:noescape
func inttLastOddVec(x0, x1 []uint64, ni, nis, w, ws, q uint64)

// gatherIdxVec writes dst[j] = src[idx[j]] with VPGATHERDQ, 4 elements per
// step. len(dst) must be a multiple of 4 and every idx[j] in range for src.
// Used by the automorphism and fused-keyswitch gather paths.
//
//alchemist:domain dst:any src:any
//
//go:noescape
func gatherIdxVec(dst, src []uint64, idx []int32)

// The *52 kernels below are the AVX512-IFMA tier (nttkern52_amd64.s):
// 8 lanes per step, with the lazy Shoup product computed in base 2^52 via
// VPMADD52HUQ/VPMADD52LUQ from the psiRev52 tables. The base change means
// the quotient estimate can differ from the scalar base-2^64 one by 1, so
// an intermediate lazy value may differ from the scalar path by q while
// staying inside the same [0,4q)/[0,2q) domain bounds — the fully reduced
// NTTLazy/INTTLazy outputs are still bit-identical, which is what the
// equivalence tests pin. Callers require SubRing.ifma (q < 2^50).

// nttSingleVec52 is nttSingleVec on 8 lanes; len(x0) a multiple of 8.
//
//alchemist:domain x0:[0,4q) x1:[0,4q) w:[0,q) w52:any q:modulus
//
//go:noescape
func nttSingleVec52(x0, x1 []uint64, w, w52, q uint64)

// nttPairVec52 is nttPairVec on 8 lanes; t a multiple of 8.
//
//alchemist:domain p:[0,4q) wA:[0,q) wA52:any wB:[0,q) wB52:any q:modulus
//
//go:noescape
func nttPairVec52(p, wA, wA52, wB, wB52 []uint64, t int, q uint64)

// nttTailVec52 is nttTailVec processing two 4-coefficient groups per step;
// len(wA) must be even.
//
//alchemist:domain p:[0,4q) wA:[0,q) wA52:any wB:[0,q) wB52:any q:modulus
//
//go:noescape
func nttTailVec52(p, wA, wA52, wB, wB52 []uint64, q uint64)

// inttHeadVec52 is inttHeadVec processing two 4-coefficient groups per
// step; len(wB) must be even.
//
//alchemist:domain p:[0,2q) wA:[0,q) wA52:any wB:[0,q) wB52:any q:modulus
//
//go:noescape
func inttHeadVec52(p, wA, wA52, wB, wB52 []uint64, q uint64)

// inttPairVec52 is inttPairVec on 8 lanes; t a multiple of 8.
//
//alchemist:domain p:[0,2q) wA:[0,q) wA52:any wB:[0,q) wB52:any q:modulus
//
//go:noescape
func inttPairVec52(p, wA, wA52, wB, wB52 []uint64, t int, q uint64)

// inttLastEvenVec52 is inttLastEvenVec on 8 lanes; len(p)/4 a multiple
// of 8.
//
//alchemist:domain p:[0,2q) wA0:[0,q) wA052:any wA1:[0,q) wA152:any ni:[0,q) ni52:any w:[0,q) w52:any q:modulus
//
//go:noescape
func inttLastEvenVec52(p []uint64, wA0, wA052, wA1, wA152, ni, ni52, w, w52, q uint64)

// inttLastOddVec52 is inttLastOddVec on 8 lanes; len(x0) a multiple of 8.
//
//alchemist:domain x0:[0,2q) x1:[0,2q) ni:[0,q) ni52:any w:[0,q) w52:any q:modulus
//
//go:noescape
func inttLastOddVec52(x0, x1 []uint64, ni, ni52, w, w52, q uint64)

// shoupMulVec52 writes dst[k] = src[k]·w mod q fully reduced, 8 lanes per
// step via the base-2^52 lazy product plus one conditional subtraction. The
// eager result is the unique residue, so it is bit-identical to the scalar
// MulModShoup path for any quotient tier. len(dst) must be a multiple of 8
// and q < 2^51 (so the lazy product's [0, 2q) range fits base 2^52).
// Used by the vectorized basis-conversion step 1 (decompose.go).
//
//alchemist:domain src:[0,q) w:[0,q) w52:any q:modulus
//
//go:noescape
func shoupMulVec52(dst, src []uint64, w, w52, q uint64)

// convAcc52 accumulates the basis-conversion step 2 partial sums for one
// target channel: for each coefficient k it computes
//
//	lo[k] = Σ_i lo52(y[i·stride+k] · hc[i]),  hi[k] = Σ_i hi52(…)
//
// over the channel-major tile y (len(hc) source channels, VPMADD52 pairs,
// 8 coefficients per step). The caller reconstructs the exact 128-bit sum
// hi·2^52 + lo and Barrett-folds it, so the folded residue is bit-identical
// to the scalar lazy accumulation. Bounds: all operands < 2^52 and
// len(hc) < 2^12 keep both lanewise sums below 2^64. len(lo) = len(hi) must
// be a multiple of 8.
//
//alchemist:domain y:any hc:any lo:any hi:any
//
//go:noescape
func convAcc52(y, hc, lo, hi []uint64, stride int)

// rescaleVec52 runs the rescale / ModDown channel step on 8 lanes:
//
//	dst[k] = condSub(lazyMul52(src[k] + q − condSub(last[k], q), inv), q)
//
// The leading conditional subtraction folds the cross-channel residue into
// [0, q) (a no-op when last[k] is already canonical, so both the q_l ≤ q_i
// and q_l ≤ 2q_i scalar cases map onto this one kernel bit-identically),
// the biased difference sits in (0, 2q) ⊂ [0, 2^52), and the trailing
// conditional subtraction makes the result the unique residue — identical
// to the scalar condSubMask(MulModShoupLazy(...)) composition regardless of
// the base-2^52 quotient tier. Requires q < 2^51 and len(dst) a multiple
// of 8.
//
//alchemist:domain dst:[0,q) src:[0,q) last:[0,2q) inv:[0,q) inv52:any q:modulus
//
//go:noescape
func rescaleVec52(dst, src, last []uint64, inv, inv52, q uint64)

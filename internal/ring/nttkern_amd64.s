//go:build amd64 && !purego

#include "textflag.h"

// AVX2 kernels for the lazy Harvey NTT/INTT butterflies. Every kernel
// replays the exact scalar dataflow from nttlazy.go: the same 64×64
// multiplies (composed from VPMULUDQ 32×32 partial products), the same
// conditional subtractions, all arithmetic exact mod 2^64, so outputs are
// bit-identical to the scalar reference on every input.
//
// Register conventions, shared by all butterfly kernels:
//
//	Y15 = q broadcast        Y14 = q >> 32 broadcast
//	Y13 = 2q broadcast       Y12 = 0x00000000FFFFFFFF per qword
//	Y10, Y11 = current twiddle w, wShoup broadcast
//	Y0–Y9 = data and scratch
//
// DI walks the coefficient data, R10/R12 walk the stage-A twiddle/Shoup
// tables, R13/R14 the stage-B tables, R11 counts groups.

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// LOADCONSTS broadcasts the modulus from its FP slot and derives the four
// resident constants Y15=q, Y14=q>>32, Y13=2q, Y12=low-32 mask.
#define LOADCONSTS(qarg) \
	VPBROADCASTQ qarg, Y15;  \
	VPSRLQ $32, Y15, Y14;    \
	VPADDQ Y15, Y15, Y13;    \
	VPCMPEQD Y12, Y12, Y12;  \
	VPSRLQ $32, Y12, Y12

// LAZYMUL: dst = a·w − mulhi64(a, ws)·q mod 2^64, lanewise — the vector
// MulModShoupLazy. For a < 4q, w < q, q < 2^62 the result is in [0, 2q),
// same as the scalar contract. a, w, ws are preserved; t0–t4 clobbered.
// Requires Y15=q, Y14=q>>32, Y12=M32 resident.
//
// mulhi64(a, ws) from four VPMULUDQ partials (al·wsl, al·wsh, ah·wsl,
// ah·wsh) with the standard carry recombination; the two mullo64 products
// (a·w, qHat·q) need three VPMULUDQ each.
#define LAZYMUL(a, w, ws, dst, t0, t1, t2, t3, t4) \
	VPSRLQ $32, a, t0;       \
	VPSRLQ $32, ws, t1;      \
	VPMULUDQ ws, a, t2;      \
	VPMULUDQ t1, a, t3;      \
	VPMULUDQ ws, t0, t4;     \
	VPMULUDQ t1, t0, t1;     \
	VPSRLQ $32, t2, t2;      \
	VPAND Y12, t3, dst;      \
	VPADDQ dst, t2, t2;      \
	VPAND Y12, t4, dst;      \
	VPADDQ dst, t2, t2;      \
	VPSRLQ $32, t2, t2;      \
	VPSRLQ $32, t3, t3;      \
	VPSRLQ $32, t4, t4;      \
	VPADDQ t3, t1, t1;       \
	VPADDQ t4, t1, t1;       \
	VPADDQ t2, t1, t1;       \
	VPSRLQ $32, w, t2;       \
	VPMULUDQ t2, a, t3;      \
	VPMULUDQ w, t0, t4;      \
	VPMULUDQ w, a, dst;      \
	VPADDQ t4, t3, t3;       \
	VPSLLQ $32, t3, t3;      \
	VPADDQ t3, dst, dst;     \
	VPSRLQ $32, t1, t0;      \
	VPMULUDQ Y14, t1, t2;    \
	VPMULUDQ Y15, t0, t3;    \
	VPMULUDQ Y15, t1, t4;    \
	VPADDQ t3, t2, t2;       \
	VPSLLQ $32, t2, t2;      \
	VPADDQ t2, t4, t4;       \
	VPSUBQ t4, dst, dst

// CONDSUBM: dst = x − mod if x ≥ mod else x, branch-free. Sound for any
// x < mod + 2^63 (mod < 2^63): the subtraction wraps above 2^63 exactly
// when x < mod, so the VPCMPGTQ sign test selects the add-back correctly
// even for x ≥ 2^63. x preserved; t0, t1 clobbered.
#define CONDSUBM(x, mod, dst, t0, t1) \
	VPSUBQ mod, x, dst;      \
	VPXOR t0, t0, t0;        \
	VPCMPGTQ dst, t0, t1;    \
	VPAND mod, t1, t1;       \
	VPADDQ t1, dst, dst

// func nttSingleVec(x0, x1 []uint64, w, ws, q uint64)
// One standalone CT stage across the half-arrays: the leading radix-2
// stage of the odd-log-N vector schedule.
TEXT ·nttSingleVec(SB), NOSPLIT, $0-72
	MOVQ x0_base+0(FP), DI
	MOVQ x0_len+8(FP), CX
	MOVQ x1_base+24(FP), SI
	LOADCONSTS(q+64(FP))
	VPBROADCASTQ w+48(FP), Y10
	VPBROADCASTQ ws+56(FP), Y11
	SHLQ $3, CX
	XORQ R9, R9

nttsingle_loop:
	CMPQ R9, CX
	JGE  nttsingle_done
	VMOVDQU (DI)(R9*1), Y0
	VMOVDQU (SI)(R9*1), Y1
	CONDSUBM(Y0, Y13, Y2, Y3, Y4)
	LAZYMUL(Y1, Y10, Y11, Y3, Y4, Y5, Y6, Y7, Y8)
	VPADDQ Y3, Y2, Y0   // u + v
	VPADDQ Y13, Y2, Y1
	VPSUBQ Y3, Y1, Y1   // u + 2q − v
	VMOVDQU Y0, (DI)(R9*1)
	VMOVDQU Y1, (SI)(R9*1)
	ADDQ $32, R9
	JMP  nttsingle_loop

nttsingle_done:
	VZEROUPPER
	RET

// func nttPairVec(p, wA, wAs, wB, wBs []uint64, t int, q uint64)
// One fused CT stage pair over len(wA) groups of 4t coefficients.
// Quarters of group g: a=p[g4t:], b=+t, c=+2t, d=+3t. Stage A butterflies
// (a,c) and (b,d) with wA[g]; stage B butterflies (a,b) with wB[2g] and
// (c,d) with wB[2g+1]. t is a multiple of 4.
TEXT ·nttPairVec(SB), NOSPLIT, $0-136
	MOVQ p_base+0(FP), DI
	MOVQ wA_base+24(FP), R10
	MOVQ wA_len+32(FP), R11
	MOVQ wAs_base+48(FP), R12
	MOVQ wB_base+72(FP), R13
	MOVQ wBs_base+96(FP), R14
	MOVQ t+120(FP), BX
	SHLQ $3, BX           // t in bytes
	LEAQ (BX)(BX*2), DX   // 3t in bytes
	LOADCONSTS(q+128(FP))
	TESTQ R11, R11
	JZ    nttpair_done

nttpair_group:
	XORQ R9, R9

nttpair_j:
	LEAQ (DI)(R9*1), AX
	VPBROADCASTQ (R10), Y10
	VPBROADCASTQ (R12), Y11
	VMOVDQU (AX), Y0         // a
	VMOVDQU (AX)(BX*2), Y1   // c
	CONDSUBM(Y0, Y13, Y2, Y3, Y4)
	LAZYMUL(Y1, Y10, Y11, Y3, Y4, Y5, Y6, Y7, Y8)
	VPADDQ Y3, Y2, Y0        // a' = u0 + v0
	VPADDQ Y13, Y2, Y1
	VPSUBQ Y3, Y1, Y1        // c' = u0 + 2q − v0
	VMOVDQU (AX)(BX*1), Y2   // b
	VMOVDQU (AX)(DX*1), Y3   // d
	CONDSUBM(Y2, Y13, Y4, Y5, Y6)
	LAZYMUL(Y3, Y10, Y11, Y5, Y2, Y6, Y7, Y8, Y9)
	VPADDQ Y5, Y4, Y2        // b' = u1 + v1
	VPADDQ Y13, Y4, Y3
	VPSUBQ Y5, Y3, Y3        // d' = u1 + 2q − v1

	// Stage B: (a', b') with wB[2g]; (c', d') with wB[2g+1].
	VPBROADCASTQ (R13), Y10
	VPBROADCASTQ (R14), Y11
	CONDSUBM(Y0, Y13, Y4, Y5, Y6)
	LAZYMUL(Y2, Y10, Y11, Y5, Y0, Y6, Y7, Y8, Y9)
	VPADDQ Y5, Y4, Y0
	VPADDQ Y13, Y4, Y6
	VPSUBQ Y5, Y6, Y6
	VMOVDQU Y0, (AX)
	VMOVDQU Y6, (AX)(BX*1)
	VPBROADCASTQ 8(R13), Y10
	VPBROADCASTQ 8(R14), Y11
	CONDSUBM(Y1, Y13, Y4, Y5, Y6)
	LAZYMUL(Y3, Y10, Y11, Y5, Y0, Y6, Y7, Y8, Y9)
	VPADDQ Y5, Y4, Y0
	VPADDQ Y13, Y4, Y6
	VPSUBQ Y5, Y6, Y6
	VMOVDQU Y0, (AX)(BX*2)
	VMOVDQU Y6, (AX)(DX*1)

	ADDQ $32, R9
	CMPQ R9, BX
	JL   nttpair_j

	LEAQ (DI)(BX*4), DI
	ADDQ $8, R10
	ADDQ $8, R12
	ADDQ $16, R13
	ADDQ $16, R14
	DECQ R11
	JNZ  nttpair_group

nttpair_done:
	VZEROUPPER
	RET

// func nttTailVec(p, wA, wAs, wB, wBs []uint64, q uint64)
// Final fused CT stage pair (t = 1) over len(wA) groups of 4 consecutive
// coefficients [a,b,c,d], folding the full reduction to [0, q) into the
// last stage. Stage A: (a,c) and (b,d) with wA[g], via the lane split
// [a,b,a,b] / [c,d,c,d]. Stage B: (a',b') with wB[2g], (c',d') with
// wB[2g+1], via [a',a',c',c'] / [b',b',d',d'] and a per-pair twiddle
// vector [wB0,wB0,wB1,wB1].
TEXT ·nttTailVec(SB), NOSPLIT, $0-128
	MOVQ p_base+0(FP), DI
	MOVQ wA_base+24(FP), R10
	MOVQ wA_len+32(FP), R11
	MOVQ wAs_base+48(FP), R12
	MOVQ wB_base+72(FP), R13
	MOVQ wBs_base+96(FP), R14
	LOADCONSTS(q+120(FP))
	TESTQ R11, R11
	JZ    ntttail_done

ntttail_group:
	VMOVDQU (DI), Y0         // [a, b, c, d]
	VPBROADCASTQ (R10), Y10
	VPBROADCASTQ (R12), Y11
	VPERMQ $0x44, Y0, Y1     // [a, b, a, b]
	VPERMQ $0xEE, Y0, Y2     // [c, d, c, d]
	CONDSUBM(Y1, Y13, Y3, Y4, Y5)
	LAZYMUL(Y2, Y10, Y11, Y4, Y5, Y6, Y7, Y8, Y9)
	VPADDQ Y4, Y3, Y0
	VPADDQ Y13, Y3, Y1
	VPSUBQ Y4, Y1, Y1
	VPBLENDD $0xF0, Y1, Y0, Y0   // [a', b', c', d']

	VBROADCASTI128 (R13), Y10    // [wB0, wB1, wB0, wB1]
	VPERMQ $0x50, Y10, Y10       // [wB0, wB0, wB1, wB1]
	VBROADCASTI128 (R14), Y11
	VPERMQ $0x50, Y11, Y11
	VPERMQ $0xA0, Y0, Y1         // [a', a', c', c']
	VPERMQ $0xF5, Y0, Y2         // [b', b', d', d']
	CONDSUBM(Y1, Y13, Y3, Y4, Y5)
	LAZYMUL(Y2, Y10, Y11, Y4, Y5, Y6, Y7, Y8, Y9)
	VPADDQ Y4, Y3, Y0
	VPADDQ Y13, Y3, Y1
	VPSUBQ Y4, Y1, Y1
	VPBLENDD $0xCC, Y1, Y0, Y0   // interleave sums and diffs

	// Full reduction [0, 4q) → [0, q), fused into the last stage exactly
	// as the scalar epilogue: condSub(condSub(x, 2q), q).
	CONDSUBM(Y0, Y13, Y1, Y3, Y4)
	CONDSUBM(Y1, Y15, Y0, Y3, Y4)
	VMOVDQU Y0, (DI)

	ADDQ $32, DI
	ADDQ $8, R10
	ADDQ $8, R12
	ADDQ $16, R13
	ADDQ $16, R14
	DECQ R11
	JNZ  ntttail_group

ntttail_done:
	VZEROUPPER
	RET

// func inttHeadVec(p, wA, wAs, wB, wBs []uint64, q uint64)
// Leading fused GS stage pair (t = 1) over len(wB) groups of 4 consecutive
// coefficients [a,b,c,d]. Stage A: (a,b) with wA[2g], (c,d) with wA[2g+1],
// via [a,a,c,c] / [b,b,d,d] and twiddle vector [wA0,wA0,wA1,wA1].
// Stage B: (sa,sc) and (da,dc) with wB[g], via [sa,da,sa,da] / [sc,dc,sc,dc].
TEXT ·inttHeadVec(SB), NOSPLIT, $0-128
	MOVQ p_base+0(FP), DI
	MOVQ wA_base+24(FP), R10
	MOVQ wAs_base+48(FP), R12
	MOVQ wB_base+72(FP), R13
	MOVQ wB_len+80(FP), R11
	MOVQ wBs_base+96(FP), R14
	LOADCONSTS(q+120(FP))
	TESTQ R11, R11
	JZ    intthead_done

intthead_group:
	VMOVDQU (DI), Y0             // [a, b, c, d]
	VBROADCASTI128 (R10), Y10
	VPERMQ $0x50, Y10, Y10       // [wA0, wA0, wA1, wA1]
	VBROADCASTI128 (R12), Y11
	VPERMQ $0x50, Y11, Y11
	VPERMQ $0xA0, Y0, Y1         // u = [a, a, c, c]
	VPERMQ $0xF5, Y0, Y2         // v = [b, b, d, d]
	VPADDQ Y2, Y1, Y3
	CONDSUBM(Y3, Y13, Y4, Y5, Y6)   // s = condSub(u+v, 2q)
	VPADDQ Y13, Y1, Y3
	VPSUBQ Y2, Y3, Y3               // u + 2q − v
	LAZYMUL(Y3, Y10, Y11, Y5, Y1, Y2, Y6, Y7, Y8)
	VPBLENDD $0xCC, Y5, Y4, Y0      // [sa, da, sc, dc]

	VPBROADCASTQ (R13), Y10
	VPBROADCASTQ (R14), Y11
	VPERMQ $0x44, Y0, Y1         // [sa, da, sa, da]
	VPERMQ $0xEE, Y0, Y2         // [sc, dc, sc, dc]
	VPADDQ Y2, Y1, Y3
	CONDSUBM(Y3, Y13, Y4, Y5, Y6)
	VPADDQ Y13, Y1, Y3
	VPSUBQ Y2, Y3, Y3
	LAZYMUL(Y3, Y10, Y11, Y5, Y1, Y2, Y6, Y7, Y8)
	VPBLENDD $0xF0, Y5, Y4, Y0
	VMOVDQU Y0, (DI)

	ADDQ $32, DI
	ADDQ $16, R10
	ADDQ $16, R12
	ADDQ $8, R13
	ADDQ $8, R14
	DECQ R11
	JNZ  intthead_group

intthead_done:
	VZEROUPPER
	RET

// func inttPairVec(p, wA, wAs, wB, wBs []uint64, t int, q uint64)
// One fused GS stage pair over len(wB) groups of 4t coefficients.
// Stage A: (a,b) with wA[2g], (c,d) with wA[2g+1]; stage B: (sa,sc) and
// (da,dc) with wB[g]. t is a multiple of 4.
TEXT ·inttPairVec(SB), NOSPLIT, $0-136
	MOVQ p_base+0(FP), DI
	MOVQ wA_base+24(FP), R10
	MOVQ wAs_base+48(FP), R12
	MOVQ wB_base+72(FP), R13
	MOVQ wB_len+80(FP), R11
	MOVQ wBs_base+96(FP), R14
	MOVQ t+120(FP), BX
	SHLQ $3, BX
	LEAQ (BX)(BX*2), DX
	LOADCONSTS(q+128(FP))
	TESTQ R11, R11
	JZ    inttpair_done

inttpair_group:
	XORQ R9, R9

inttpair_j:
	LEAQ (DI)(R9*1), AX
	VMOVDQU (AX), Y0         // a
	VMOVDQU (AX)(BX*1), Y1   // b
	VPBROADCASTQ (R10), Y10
	VPBROADCASTQ (R12), Y11
	VPADDQ Y1, Y0, Y2        // a + b
	VPADDQ Y13, Y0, Y4
	VPSUBQ Y1, Y4, Y4        // a + 2q − b
	CONDSUBM(Y2, Y13, Y0, Y1, Y5)
	LAZYMUL(Y4, Y10, Y11, Y1, Y2, Y5, Y6, Y7, Y8)   // sa=Y0, da=Y1
	VMOVDQU (AX)(BX*2), Y2   // c
	VMOVDQU (AX)(DX*1), Y3   // d
	VPBROADCASTQ 8(R10), Y10
	VPBROADCASTQ 8(R12), Y11
	VPADDQ Y3, Y2, Y4        // c + d
	VPADDQ Y13, Y2, Y5
	VPSUBQ Y3, Y5, Y5        // c + 2q − d
	CONDSUBM(Y4, Y13, Y2, Y3, Y6)
	LAZYMUL(Y5, Y10, Y11, Y3, Y4, Y6, Y7, Y8, Y9)   // sc=Y2, dc=Y3

	// Stage B with wB[g]: sums condSub'd, diffs through the lazy multiply.
	VPBROADCASTQ (R13), Y10
	VPBROADCASTQ (R14), Y11
	VPADDQ Y2, Y0, Y4
	CONDSUBM(Y4, Y13, Y5, Y6, Y7)
	VMOVDQU Y5, (AX)         // condSub(sa+sc, 2q)
	VPADDQ Y3, Y1, Y4
	CONDSUBM(Y4, Y13, Y5, Y6, Y7)
	VMOVDQU Y5, (AX)(BX*1)   // condSub(da+dc, 2q)
	VPADDQ Y13, Y0, Y4
	VPSUBQ Y2, Y4, Y4        // sa + 2q − sc
	LAZYMUL(Y4, Y10, Y11, Y5, Y0, Y2, Y6, Y7, Y8)
	VMOVDQU Y5, (AX)(BX*2)
	VPADDQ Y13, Y1, Y4
	VPSUBQ Y3, Y4, Y4        // da + 2q − dc
	LAZYMUL(Y4, Y10, Y11, Y5, Y0, Y1, Y2, Y6, Y7)
	VMOVDQU Y5, (AX)(DX*1)

	ADDQ $32, R9
	CMPQ R9, BX
	JL   inttpair_j

	LEAQ (DI)(BX*4), DI
	ADDQ $16, R10
	ADDQ $16, R12
	ADDQ $8, R13
	ADDQ $8, R14
	DECQ R11
	JNZ  inttpair_group

inttpair_done:
	VZEROUPPER
	RET

// func inttLastEvenVec(p []uint64, wA0, wA0s, wA1, wA1s, ni, nis, w, ws, q uint64)
// Even-log-N INTT epilogue: the unpaired m = 4 GS stage (twiddles wA0, wA1
// over the quarter-arrays) fused with the final N^{-1}-scaled stage, fully
// reducing to [0, q). len(p)/4 is a multiple of 4.
TEXT ·inttLastEvenVec(SB), NOSPLIT, $0-96
	MOVQ p_base+0(FP), DI
	MOVQ p_len+8(FP), CX
	SHRQ $2, CX
	SHLQ $3, CX           // quarter length in bytes
	MOVQ CX, BX
	LEAQ (BX)(BX*2), DX
	LOADCONSTS(q+88(FP))
	XORQ R9, R9

inttlast_j:
	CMPQ R9, BX
	JGE  inttlast_done
	LEAQ (DI)(R9*1), AX
	VMOVDQU (AX), Y0         // a
	VMOVDQU (AX)(BX*1), Y1   // b
	VPBROADCASTQ wA0+24(FP), Y10
	VPBROADCASTQ wA0s+32(FP), Y11
	VPADDQ Y1, Y0, Y2
	VPADDQ Y13, Y0, Y4
	VPSUBQ Y1, Y4, Y4
	CONDSUBM(Y2, Y13, Y0, Y1, Y5)
	LAZYMUL(Y4, Y10, Y11, Y1, Y2, Y5, Y6, Y7, Y8)   // sa=Y0, da=Y1
	VMOVDQU (AX)(BX*2), Y2   // c
	VMOVDQU (AX)(DX*1), Y3   // d
	VPBROADCASTQ wA1+40(FP), Y10
	VPBROADCASTQ wA1s+48(FP), Y11
	VPADDQ Y3, Y2, Y4
	VPADDQ Y13, Y2, Y5
	VPSUBQ Y3, Y5, Y5
	CONDSUBM(Y4, Y13, Y2, Y3, Y6)
	LAZYMUL(Y5, Y10, Y11, Y3, Y4, Y6, Y7, Y8, Y9)   // sc=Y2, dc=Y3

	// Final stage: sums scaled by N^{-1}, diffs by psiInvRevN, each
	// condSubMask'd down to [0, q) — the scalar even epilogue verbatim.
	VPADDQ Y2, Y0, Y4        // s0 = sa + sc
	VPADDQ Y13, Y0, Y5
	VPSUBQ Y2, Y5, Y5        // d0 = sa + 2q − sc
	VPBROADCASTQ ni+56(FP), Y10
	VPBROADCASTQ nis+64(FP), Y11
	LAZYMUL(Y4, Y10, Y11, Y0, Y2, Y6, Y7, Y8, Y9)
	CONDSUBM(Y0, Y15, Y2, Y4, Y6)
	VMOVDQU Y2, (AX)
	VPADDQ Y3, Y1, Y4        // s1 = da + dc
	VPADDQ Y13, Y1, Y6
	VPSUBQ Y3, Y6, Y6        // d1 = da + 2q − dc
	LAZYMUL(Y4, Y10, Y11, Y0, Y1, Y2, Y3, Y7, Y8)
	CONDSUBM(Y0, Y15, Y2, Y1, Y3)
	VMOVDQU Y2, (AX)(BX*1)
	VPBROADCASTQ w+72(FP), Y10
	VPBROADCASTQ ws+80(FP), Y11
	LAZYMUL(Y5, Y10, Y11, Y0, Y1, Y2, Y3, Y4, Y7)
	CONDSUBM(Y0, Y15, Y2, Y1, Y3)
	VMOVDQU Y2, (AX)(BX*2)
	LAZYMUL(Y6, Y10, Y11, Y0, Y1, Y2, Y3, Y4, Y7)
	CONDSUBM(Y0, Y15, Y2, Y1, Y3)
	VMOVDQU Y2, (AX)(DX*1)

	ADDQ $32, R9
	JMP  inttlast_j

inttlast_done:
	VZEROUPPER
	RET

// func inttLastOddVec(x0, x1 []uint64, ni, nis, w, ws, q uint64)
// Odd-log-N INTT epilogue: the final N^{-1}-scaled GS stage over the
// half-arrays, fully reducing to [0, q).
TEXT ·inttLastOddVec(SB), NOSPLIT, $0-88
	MOVQ x0_base+0(FP), DI
	MOVQ x0_len+8(FP), CX
	MOVQ x1_base+24(FP), SI
	LOADCONSTS(q+80(FP))
	SHLQ $3, CX
	XORQ R9, R9

inttodd_j:
	CMPQ R9, CX
	JGE  inttodd_done
	VMOVDQU (DI)(R9*1), Y0
	VMOVDQU (SI)(R9*1), Y1
	VPADDQ Y1, Y0, Y2        // u + v
	VPADDQ Y13, Y0, Y3
	VPSUBQ Y1, Y3, Y3        // u + 2q − v
	VPBROADCASTQ ni+48(FP), Y10
	VPBROADCASTQ nis+56(FP), Y11
	LAZYMUL(Y2, Y10, Y11, Y0, Y1, Y4, Y5, Y6, Y7)
	CONDSUBM(Y0, Y15, Y1, Y4, Y5)
	VMOVDQU Y1, (DI)(R9*1)
	VPBROADCASTQ w+64(FP), Y10
	VPBROADCASTQ ws+72(FP), Y11
	LAZYMUL(Y3, Y10, Y11, Y0, Y1, Y4, Y5, Y6, Y7)
	CONDSUBM(Y0, Y15, Y1, Y4, Y5)
	VMOVDQU Y1, (SI)(R9*1)
	ADDQ $32, R9
	JMP  inttodd_j

inttodd_done:
	VZEROUPPER
	RET

// func gatherIdxVec(dst, src []uint64, idx []int32)
// dst[j] = src[idx[j]], 4 elements per VPGATHERDQ. The all-ones mask is
// regenerated every iteration because the gather clears it.
TEXT ·gatherIdxVec(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	MOVQ idx_base+48(FP), R10
	SHRQ $2, CX
	JZ   gather_done

gather_loop:
	VMOVDQU (R10), X1
	VPCMPEQD Y2, Y2, Y2
	VPGATHERDQ Y2, (SI)(X1*8), Y0
	VMOVDQU Y0, (DI)
	ADDQ $32, DI
	ADDQ $16, R10
	DECQ CX
	JNZ  gather_loop

gather_done:
	VZEROUPPER
	RET

//go:build !amd64 || purego

package ring

// Scalar-only builds (non-amd64, or the purego tag): the vector butterfly
// kernels are compiled out and the NTTLazy/INTTLazy drivers take the scalar
// path unconditionally. The stubs below exist so the portable drivers
// type-check; with useNTTKern a false constant the calls are dead code, and
// reaching one anyway is a dispatch bug worth crashing on.

const (
	useNTTKern     = false
	useNTTKernIFMA = false
)

func nttSingleVec(x0, x1 []uint64, w, ws, q uint64) {
	panic("ring: nttSingleVec called on scalar-only build")
}

func nttPairVec(p, wA, wAs, wB, wBs []uint64, t int, q uint64) {
	panic("ring: nttPairVec called on scalar-only build")
}

func nttTailVec(p, wA, wAs, wB, wBs []uint64, q uint64) {
	panic("ring: nttTailVec called on scalar-only build")
}

func inttHeadVec(p, wA, wAs, wB, wBs []uint64, q uint64) {
	panic("ring: inttHeadVec called on scalar-only build")
}

func inttPairVec(p, wA, wAs, wB, wBs []uint64, t int, q uint64) {
	panic("ring: inttPairVec called on scalar-only build")
}

func inttLastEvenVec(p []uint64, wA0, wA0s, wA1, wA1s, ni, nis, w, ws, q uint64) {
	panic("ring: inttLastEvenVec called on scalar-only build")
}

func inttLastOddVec(x0, x1 []uint64, ni, nis, w, ws, q uint64) {
	panic("ring: inttLastOddVec called on scalar-only build")
}

func gatherIdxVec(dst, src []uint64, idx []int32) {
	panic("ring: gatherIdxVec called on scalar-only build")
}

func nttSingleVec52(x0, x1 []uint64, w, w52, q uint64) {
	panic("ring: nttSingleVec52 called on scalar-only build")
}

func nttPairVec52(p, wA, wA52, wB, wB52 []uint64, t int, q uint64) {
	panic("ring: nttPairVec52 called on scalar-only build")
}

func nttTailVec52(p, wA, wA52, wB, wB52 []uint64, q uint64) {
	panic("ring: nttTailVec52 called on scalar-only build")
}

func inttHeadVec52(p, wA, wA52, wB, wB52 []uint64, q uint64) {
	panic("ring: inttHeadVec52 called on scalar-only build")
}

func inttPairVec52(p, wA, wA52, wB, wB52 []uint64, t int, q uint64) {
	panic("ring: inttPairVec52 called on scalar-only build")
}

func inttLastEvenVec52(p []uint64, wA0, wA052, wA1, wA152, ni, ni52, w, w52, q uint64) {
	panic("ring: inttLastEvenVec52 called on scalar-only build")
}

func inttLastOddVec52(x0, x1 []uint64, ni, ni52, w, w52, q uint64) {
	panic("ring: inttLastOddVec52 called on scalar-only build")
}

func shoupMulVec52(dst, src []uint64, w, w52, q uint64) {
	panic("ring: shoupMulVec52 called on scalar-only build")
}

func convAcc52(y, hc, lo, hi []uint64, stride int) {
	panic("ring: convAcc52 called on scalar-only build")
}

func rescaleVec52(dst, src, last []uint64, inv, inv52, q uint64) {
	panic("ring: rescaleVec52 called on scalar-only build")
}

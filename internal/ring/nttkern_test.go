package ring

// Kernel-equivalence tests for the vector butterfly kernels: every assembly
// kernel is pinned bit-identical to a scalar model that replays its exact
// dataflow, on random lazy-domain inputs AND adversarial corners (all lanes
// at the 4q−1 / 2q−1 domain maxima, alternating extremes, maximal twiddles
// w = q−1). The AVX2 models reuse modmath.MulModShoupLazy; the AVX512-IFMA
// models recompute the base-2^52 madd product exactly (mulLazy52Model), so
// even the tier whose intermediates legitimately differ from the base-2^64
// scalar path by multiples of q is pinned bit-for-bit against a independent
// reference. Full-transform tests then pin nttLazyVec/inttLazyVec against
// nttLazyScalar/inttLazyScalar — the end-to-end bit-identity the public API
// promises — across even/odd log N and the q ≷ 2^50 tier boundary.

import (
	"math/bits"
	"math/rand"
	"testing"

	"alchemist/internal/modmath"
)

// lazyMulFn abstracts the two lazy Shoup product tiers so one model body
// serves both: base-2^64 (AVX2, ws = ShoupPrecomp) and base-2^52 (IFMA,
// ws = shoup52).
type lazyMulFn func(a, w, ws, q uint64) uint64

func mulLazy64Model(a, w, ws, q uint64) uint64 {
	return modmath.MulModShoupLazy(a, w, ws, q)
}

// mulLazy52Model replays the VPMADD52 dataflow exactly: qHat is the high 52
// bits of the 104-bit product a·w52, and the result is the mod-2^52
// difference of the two low-52 products — the value the IFMA kernels
// compute lane-wise. For a < 4q ≤ 2^52 the result lies in [0, 2q).
func mulLazy52Model(a, w, w52, q uint64) uint64 {
	const mask52 = 1<<52 - 1
	hi, lo := bits.Mul64(a&mask52, w52&mask52)
	qHat := hi<<12 | lo>>52
	return (a*w - qHat*q) & mask52
}

// Scalar models of the kernel dataflows. Group/twiddle indexing mirrors the
// kernel contracts documented in nttkern_amd64.go.

func modelNTTSingle(x0, x1 []uint64, w, ws, q uint64, mul lazyMulFn) {
	twoQ := 2 * q
	for j := range x0 {
		u := condSub(x0[j], twoQ)
		v := mul(x1[j], w, ws, q)
		x0[j], x1[j] = u+v, u+twoQ-v
	}
}

func modelNTTPair(p, wA, wAs, wB, wBs []uint64, t int, q uint64, mul lazyMulFn) {
	twoQ := 2 * q
	for g := range wA {
		x := p[4*g*t:]
		for j := 0; j < t; j++ {
			a, b, c, d := x[j], x[j+t], x[j+2*t], x[j+3*t]
			u0 := condSub(a, twoQ)
			v0 := mul(c, wA[g], wAs[g], q)
			a, c = u0+v0, u0+twoQ-v0
			u1 := condSub(b, twoQ)
			v1 := mul(d, wA[g], wAs[g], q)
			b, d = u1+v1, u1+twoQ-v1
			u0 = condSub(a, twoQ)
			v0 = mul(b, wB[2*g], wBs[2*g], q)
			x[j], x[j+t] = u0+v0, u0+twoQ-v0
			u1 = condSub(c, twoQ)
			v1 = mul(d, wB[2*g+1], wBs[2*g+1], q)
			x[j+2*t], x[j+3*t] = u1+v1, u1+twoQ-v1
		}
	}
}

func modelNTTTail(p, wA, wAs, wB, wBs []uint64, q uint64, mul lazyMulFn) {
	twoQ := 2 * q
	for g := range wA {
		j := 4 * g
		a, b, c, d := p[j], p[j+1], p[j+2], p[j+3]
		u0 := condSub(a, twoQ)
		v0 := mul(c, wA[g], wAs[g], q)
		a, c = u0+v0, u0+twoQ-v0
		u1 := condSub(b, twoQ)
		v1 := mul(d, wA[g], wAs[g], q)
		b, d = u1+v1, u1+twoQ-v1
		u0 = condSub(a, twoQ)
		v0 = mul(b, wB[2*g], wBs[2*g], q)
		p[j] = condSub(condSub(u0+v0, twoQ), q)
		p[j+1] = condSub(condSub(u0+twoQ-v0, twoQ), q)
		u1 = condSub(c, twoQ)
		v1 = mul(d, wB[2*g+1], wBs[2*g+1], q)
		p[j+2] = condSub(condSub(u1+v1, twoQ), q)
		p[j+3] = condSub(condSub(u1+twoQ-v1, twoQ), q)
	}
}

func modelINTTHead(p, wA, wAs, wB, wBs []uint64, q uint64, mul lazyMulFn) {
	twoQ := 2 * q
	for g := range wB {
		j := 4 * g
		a, b, c, d := p[j], p[j+1], p[j+2], p[j+3]
		sa := condSubMask(a+b, twoQ)
		da := mul(a+twoQ-b, wA[2*g], wAs[2*g], q)
		sc := condSubMask(c+d, twoQ)
		dc := mul(c+twoQ-d, wA[2*g+1], wAs[2*g+1], q)
		p[j] = condSubMask(sa+sc, twoQ)
		p[j+1] = condSubMask(da+dc, twoQ)
		p[j+2] = mul(sa+twoQ-sc, wB[g], wBs[g], q)
		p[j+3] = mul(da+twoQ-dc, wB[g], wBs[g], q)
	}
}

func modelINTTPair(p, wA, wAs, wB, wBs []uint64, t int, q uint64, mul lazyMulFn) {
	twoQ := 2 * q
	for g := range wB {
		x := p[4*g*t:]
		for j := 0; j < t; j++ {
			a, b, c, d := x[j], x[j+t], x[j+2*t], x[j+3*t]
			sa := condSubMask(a+b, twoQ)
			da := mul(a+twoQ-b, wA[2*g], wAs[2*g], q)
			sc := condSubMask(c+d, twoQ)
			dc := mul(c+twoQ-d, wA[2*g+1], wAs[2*g+1], q)
			x[j] = condSubMask(sa+sc, twoQ)
			x[j+t] = condSubMask(da+dc, twoQ)
			x[j+2*t] = mul(sa+twoQ-sc, wB[g], wBs[g], q)
			x[j+3*t] = mul(da+twoQ-dc, wB[g], wBs[g], q)
		}
	}
}

func modelINTTLastEven(p []uint64, wA0, wA0s, wA1, wA1s, ni, nis, w, ws, q uint64, mul lazyMulFn) {
	twoQ := 2 * q
	t := len(p) / 4
	x0, x1, x2, x3 := p[0:t], p[t:2*t], p[2*t:3*t], p[3*t:4*t]
	for j := range x0 {
		a, b, c, d := x0[j], x1[j], x2[j], x3[j]
		sa := condSubMask(a+b, twoQ)
		da := mul(a+twoQ-b, wA0, wA0s, q)
		sc := condSubMask(c+d, twoQ)
		dc := mul(c+twoQ-d, wA1, wA1s, q)
		x0[j] = condSubMask(mul(sa+sc, ni, nis, q), q)
		x1[j] = condSubMask(mul(da+dc, ni, nis, q), q)
		x2[j] = condSubMask(mul(sa+twoQ-sc, w, ws, q), q)
		x3[j] = condSubMask(mul(da+twoQ-dc, w, ws, q), q)
	}
}

func modelINTTLastOdd(x0, x1 []uint64, ni, nis, w, ws, q uint64, mul lazyMulFn) {
	twoQ := 2 * q
	for j := range x0 {
		u, v := x0[j], x1[j]
		x0[j] = condSubMask(mul(u+v, ni, nis, q), q)
		x1[j] = condSubMask(mul(u+twoQ-v, w, ws, q), q)
	}
}

// kernTestRing builds a subring for kernel tests; bits = 50 lands just under
// 2^50 (the IFMA boundary), 61 forces the AVX2-only tier.
func kernTestRing(t *testing.T, n int, bits uint64) *SubRing {
	t.Helper()
	primes, err := modmath.GenerateNTTPrimes(bits, uint64(2*n), 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSubRing(n, primes[0])
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// kernInputs yields adversarial and random coefficient vectors over the lazy
// domain [0, hi]: every lane at the domain maximum, alternating 0 / maximum,
// values straddling q and 2q, then random fills.
func kernInputs(n int, hi uint64, q uint64, rng *rand.Rand) [][]uint64 {
	mk := func(f func(i int) uint64) []uint64 {
		v := make([]uint64, n)
		for i := range v {
			v[i] = f(i)
		}
		return v
	}
	in := [][]uint64{
		mk(func(int) uint64 { return hi }),
		mk(func(i int) uint64 {
			if i&1 == 0 {
				return 0
			}
			return hi
		}),
		mk(func(i int) uint64 {
			switch i & 3 {
			case 0:
				return q - 1
			case 1:
				return q
			case 2:
				return 2*q - 1
			default:
				return hi
			}
		}),
	}
	for k := 0; k < 4; k++ {
		in = append(in, mk(func(int) uint64 { return rng.Uint64() % (hi + 1) }))
	}
	return in
}

// kernTwiddles yields twiddle vectors in [0, q): the real table prefix plus
// an adversarial vector of maximal/minimal twiddles.
func kernTwiddles(tbl []uint64, count int, q uint64) [][]uint64 {
	adv := make([]uint64, count)
	for i := range adv {
		switch i & 3 {
		case 0:
			adv[i] = q - 1
		case 1:
			adv[i] = 1
		case 2:
			adv[i] = q - 2
		default:
			adv[i] = 0
		}
	}
	return [][]uint64{append([]uint64(nil), tbl[:count]...), adv}
}

func shoupVec(w []uint64, q uint64, base52 bool) []uint64 {
	ws := make([]uint64, len(w))
	for i, x := range w {
		if base52 {
			ws[i] = shoup52(x, q)
		} else {
			ws[i] = modmath.ShoupPrecomp(x, q)
		}
	}
	return ws
}

// runKernCase executes asm and model on copies of p and compares.
func runKernCase(t *testing.T, name string, p []uint64, asm, model func(p []uint64)) {
	t.Helper()
	got := append([]uint64(nil), p...)
	want := append([]uint64(nil), p...)
	asm(got)
	model(want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: asm differs from scalar model at %d: got %d want %d", name, i, got[i], want[i])
		}
	}
}

// TestNTTKernelsMatchScalarModels pins every AVX2 kernel bit-identical to
// its scalar model on adversarial 4q−1 / 2q−1 and random lazy-domain inputs.
func TestNTTKernelsMatchScalarModels(t *testing.T) {
	if !useNTTKern {
		t.Skip("vector NTT kernels unavailable on this CPU/build")
	}
	rng := rand.New(rand.NewSource(42))
	for _, bits := range []uint64{30, 49, 61} {
		const n = 64
		s := kernTestRing(t, n, bits)
		q := s.Q
		for _, ws := range kernTwiddles(s.psiRev, n, q) {
			w := ws
			wsh := shoupVec(w, q, false)
			for _, in := range kernInputs(n, 4*q-1, q, rng) {
				p := in
				runKernCase(t, "nttSingleVec", p,
					func(p []uint64) { nttSingleVec(p[:n/2], p[n/2:], w[1], wsh[1], q) },
					func(p []uint64) { modelNTTSingle(p[:n/2], p[n/2:], w[1], wsh[1], q, mulLazy64Model) })
				for _, tt := range []int{4, 8, 16} {
					g := n / (4 * tt)
					runKernCase(t, "nttPairVec", p,
						func(p []uint64) { nttPairVec(p, w[:g], wsh[:g], w[g:3*g], wsh[g:3*g], tt, q) },
						func(p []uint64) { modelNTTPair(p, w[:g], wsh[:g], w[g:3*g], wsh[g:3*g], tt, q, mulLazy64Model) })
				}
				g := n / 4
				runKernCase(t, "nttTailVec", p,
					func(p []uint64) { nttTailVec(p, w[:g], wsh[:g], w[g:3*g], wsh[g:3*g], q) },
					func(p []uint64) { modelNTTTail(p, w[:g], wsh[:g], w[g:3*g], wsh[g:3*g], q, mulLazy64Model) })
			}
			for _, in := range kernInputs(n, 2*q-1, q, rng) {
				p := in
				runKernCase(t, "inttHeadVec", p,
					func(p []uint64) { inttHeadVec(p, w[:n/2], wsh[:n/2], w[n/2:3*n/4], wsh[n/2:3*n/4], q) },
					func(p []uint64) {
						modelINTTHead(p, w[:n/2], wsh[:n/2], w[n/2:3*n/4], wsh[n/2:3*n/4], q, mulLazy64Model)
					})
				for _, tt := range []int{4, 8, 16} {
					g := n / (4 * tt)
					runKernCase(t, "inttPairVec", p,
						func(p []uint64) { inttPairVec(p, w[:2*g], wsh[:2*g], w[2*g:3*g], wsh[2*g:3*g], tt, q) },
						func(p []uint64) {
							modelINTTPair(p, w[:2*g], wsh[:2*g], w[2*g:3*g], wsh[2*g:3*g], tt, q, mulLazy64Model)
						})
				}
				runKernCase(t, "inttLastEvenVec", p,
					func(p []uint64) { inttLastEvenVec(p, w[2], wsh[2], w[3], wsh[3], s.nInv, s.nInvShoup, s.psiInvRevN, s.psiInvRevNShoup, q) },
					func(p []uint64) {
						modelINTTLastEven(p, w[2], wsh[2], w[3], wsh[3], s.nInv, s.nInvShoup, s.psiInvRevN, s.psiInvRevNShoup, q, mulLazy64Model)
					})
				runKernCase(t, "inttLastOddVec", p,
					func(p []uint64) {
						inttLastOddVec(p[:n/2], p[n/2:], s.nInv, s.nInvShoup, s.psiInvRevN, s.psiInvRevNShoup, q)
					},
					func(p []uint64) {
						modelINTTLastOdd(p[:n/2], p[n/2:], s.nInv, s.nInvShoup, s.psiInvRevN, s.psiInvRevNShoup, q, mulLazy64Model)
					})
			}
		}
	}
}

// TestNTTKernels52MatchScalarModels pins every AVX512-IFMA kernel
// bit-identical to its base-2^52 scalar model, including at the q → 2^50
// boundary (bits = 50 lands on the largest NTT prime below 2^50).
func TestNTTKernels52MatchScalarModels(t *testing.T) {
	if !useNTTKernIFMA {
		t.Skip("AVX512-IFMA NTT kernels unavailable on this CPU/build")
	}
	rng := rand.New(rand.NewSource(43))
	for _, bits := range []uint64{30, 49, 50} {
		const n = 128
		s := kernTestRing(t, n, bits)
		q := s.Q
		if q >= 1<<50 {
			t.Fatalf("bits=%d: prime %d not below 2^50", bits, q)
		}
		for _, ws := range kernTwiddles(s.psiRev, n, q) {
			w := ws
			w52 := shoupVec(w, q, true)
			for _, in := range kernInputs(n, 4*q-1, q, rng) {
				p := in
				runKernCase(t, "nttSingleVec52", p,
					func(p []uint64) { nttSingleVec52(p[:n/2], p[n/2:], w[1], w52[1], q) },
					func(p []uint64) { modelNTTSingle(p[:n/2], p[n/2:], w[1], w52[1], q, mulLazy52Model) })
				for _, tt := range []int{8, 16, 32} {
					g := n / (4 * tt)
					runKernCase(t, "nttPairVec52", p,
						func(p []uint64) { nttPairVec52(p, w[:g], w52[:g], w[g:3*g], w52[g:3*g], tt, q) },
						func(p []uint64) { modelNTTPair(p, w[:g], w52[:g], w[g:3*g], w52[g:3*g], tt, q, mulLazy52Model) })
				}
				g := n / 4
				runKernCase(t, "nttTailVec52", p,
					func(p []uint64) { nttTailVec52(p, w[:g], w52[:g], w[g:3*g], w52[g:3*g], q) },
					func(p []uint64) { modelNTTTail(p, w[:g], w52[:g], w[g:3*g], w52[g:3*g], q, mulLazy52Model) })
			}
			for _, in := range kernInputs(n, 2*q-1, q, rng) {
				p := in
				runKernCase(t, "inttHeadVec52", p,
					func(p []uint64) { inttHeadVec52(p, w[:n/2], w52[:n/2], w[n/2:3*n/4], w52[n/2:3*n/4], q) },
					func(p []uint64) {
						modelINTTHead(p, w[:n/2], w52[:n/2], w[n/2:3*n/4], w52[n/2:3*n/4], q, mulLazy52Model)
					})
				for _, tt := range []int{8, 16, 32} {
					g := n / (4 * tt)
					runKernCase(t, "inttPairVec52", p,
						func(p []uint64) { inttPairVec52(p, w[:2*g], w52[:2*g], w[2*g:3*g], w52[2*g:3*g], tt, q) },
						func(p []uint64) {
							modelINTTPair(p, w[:2*g], w52[:2*g], w[2*g:3*g], w52[2*g:3*g], tt, q, mulLazy52Model)
						})
				}
				ni52, wN52 := s.nInv52, s.psiInvRevN52
				runKernCase(t, "inttLastEvenVec52", p,
					func(p []uint64) { inttLastEvenVec52(p, w[2], w52[2], w[3], w52[3], s.nInv, ni52, s.psiInvRevN, wN52, q) },
					func(p []uint64) {
						modelINTTLastEven(p, w[2], w52[2], w[3], w52[3], s.nInv, ni52, s.psiInvRevN, wN52, q, mulLazy52Model)
					})
				runKernCase(t, "inttLastOddVec52", p,
					func(p []uint64) { inttLastOddVec52(p[:n/2], p[n/2:], s.nInv, ni52, s.psiInvRevN, wN52, q) },
					func(p []uint64) {
						modelINTTLastOdd(p[:n/2], p[n/2:], s.nInv, ni52, s.psiInvRevN, wN52, q, mulLazy52Model)
					})
			}
		}
	}
}

// TestGatherIdxVecMatchesScalar pins the VPGATHERDQ gather kernel against the
// trivial loop on permutations, repeated indices and constant indices.
func TestGatherIdxVecMatchesScalar(t *testing.T) {
	if !useNTTKern {
		t.Skip("vector NTT kernels unavailable on this CPU/build")
	}
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{4, 16, 64, 256} {
		src := make([]uint64, n)
		for i := range src {
			src[i] = rng.Uint64()
		}
		perm := rng.Perm(n)
		cases := [][]int32{make([]int32, n), make([]int32, n), make([]int32, n)}
		for i := 0; i < n; i++ {
			cases[0][i] = int32(perm[i])
			cases[1][i] = int32(rng.Intn(n))
			cases[2][i] = int32(n - 1)
		}
		for ci, idx := range cases {
			got := make([]uint64, n)
			gatherIdxVec(got, src, idx)
			for j := range got {
				if got[j] != src[idx[j]] {
					t.Fatalf("n=%d case=%d: gather differs at %d", n, ci, j)
				}
			}
		}
	}
}

// TestVecTransformsMatchScalarTransforms pins the full vector NTTLazy and
// INTTLazy drivers bit-identical to the scalar reference across even and odd
// log N, cache-block boundaries (n ≷ nttBlockWords), the IFMA tier boundary
// (50-bit primes just under 2^50) and the AVX2-only big-modulus path.
func TestVecTransformsMatchScalarTransforms(t *testing.T) {
	if !useNTTKern {
		t.Skip("vector NTT kernels unavailable on this CPU/build")
	}
	sizes := []int{16, 32, 64, 128, 256, 512, 1024, 4096, 8192, 16384}
	if testing.Short() {
		sizes = []int{16, 32, 256, 8192}
	}
	for _, n := range sizes {
		for _, bits := range []uint64{30, 45, 49, 50, 61} {
			s := kernTestRing(t, n, bits)
			rng := rand.New(rand.NewSource(int64(n)*64 + int64(bits)))
			for trial := 0; trial < 3; trial++ {
				a := make([]uint64, n)
				for i := range a {
					a[i] = rng.Uint64() % s.Q
				}
				vec := append([]uint64(nil), a...)
				ref := append([]uint64(nil), a...)
				s.nttLazyVec(vec)
				s.nttLazyScalar(ref)
				for i := range vec {
					if vec[i] != ref[i] {
						t.Fatalf("n=%d bits=%d ifma=%v: vector NTT differs from scalar at %d", n, bits, s.ifma, i)
					}
				}
				s.inttLazyVec(vec)
				s.inttLazyScalar(ref)
				for i := range vec {
					if vec[i] != ref[i] || vec[i] != a[i] {
						t.Fatalf("n=%d bits=%d ifma=%v: vector INTT differs at %d", n, bits, s.ifma, i)
					}
				}
			}
		}
	}
}

package ring

import (
	"math/bits"

	"alchemist/internal/modmath"
)

// Lazy-reduction NTT kernels (Harvey): butterfly values live in [0, 4q) and
// only the twiddle product is reduced (to [0, 2q)), deferring the rest of
// the reduction work to the end of the transform — the software counterpart
// of the Meta-OP's (M_jA_j)_nR_j lazy reduction, and ~1.5× faster than the
// eager kernels. Requires q < 2^62, which every modulus in this repository
// satisfies.
//
// At N = 2^16 (the paper's CKKS degree) the transform is memory-bound: a
// log N-stage radix-2 network sweeps the full coefficient vector once per
// stage. Three structural optimizations cut that traffic and are worth
// their obscurity; the eager kernels in subring.go remain the readable
// reference and the tests pin these to byte-identical outputs:
//
//   - consecutive stage PAIRS are fused (radix-4 style): four coefficients
//     are loaded, carried through both stages in registers, and stored once,
//     halving the number of memory sweeps — the software analogue of keeping
//     operands in the accelerator scratchpad between passes;
//   - the final full-reduction pass is folded into the last butterfly stage
//     (for the INTT together with the N^{-1} scaling, using a twiddle
//     premultiplied by N^{-1}), saving one more read+write sweep;
//   - conditional subtractions avoid unpredictable branches: butterfly
//     inputs are uniform over [0, 4q), so a branch is a coin flip the
//     predictor always loses. The NTT's comparison form lowers to CMOV;
//     the INTT measurably prefers the explicit borrow-mask form (the
//     surrounding instruction mix schedules differently) — both are
//     branch-free on amd64, and the choice per kernel is empirical;
//
// plus half-open three-index subslices so the compiler drops bounds checks
// in the inner loops. The fused pairs replay the exact radix-2 dataflow per
// element, so outputs are byte-identical to the single-stage kernels.

// condSub returns x - q if x >= q, else x (lowered to a CMOV, not a branch).
func condSub(x, q uint64) uint64 {
	if x >= q {
		x -= q
	}
	return x
}

// condSubMask is condSub computed from the borrow's sign bit: the
// subtraction underflows exactly when x < q, and the mask adds q back.
func condSubMask(x, q uint64) uint64 {
	d := x - q
	return d + (q & uint64(int64(d)>>63))
}

// nttBlockWords is the cache-block size for the vector drivers, in
// coefficients: 4096 words = 32 KiB, sized to a typical L1d. Once the fused
// butterfly span fits a block, all remaining stages run block-by-block so
// each block is loaded from L2/L3 once and then stays L1-resident through
// the whole small-stride tail instead of being swept once per stage pair.
const nttBlockWords = 4096

// minVecN is the smallest ring degree routed to the vector kernels: the
// fused tail kernels shuffle 4 consecutive coefficients per 256-bit lane
// group and the INTT even epilogue needs quarter-arrays of at least one
// full lane.
const minVecN = 16

// NTTLazy computes the same transform as NTT (natural order in,
// bit-reversed out, fully reduced results) using lazy butterflies. On
// amd64 with AVX2 the butterfly stages run in the 4-lane assembly kernels
// (nttkern_amd64.s) with cache-blocked stage iteration; outputs are
// bit-identical to the scalar path on every input.
//
//alchemist:hot
//alchemist:domain p:[0,q)
func (s *SubRing) NTTLazy(p []uint64) {
	if useNTTKern && s.N >= minVecN {
		s.nttLazyVec(p)
		return
	}
	s.nttLazyScalar(p)
}

// nttLazyVec drives the AVX2 butterfly kernels over the same stage
// sequence as the scalar path, in three phases: an optional leading
// radix-2 stage when log N is odd (the scalar path instead leaves the
// unpaired stage for the end; regrouping is value-exact because no
// reduction happens between fused stages, every stage applies
// condSub/MulModShoupLazy to its own inputs, and the arithmetic is exact
// mod 2^64), then fused stage pairs swept globally while their butterfly
// span exceeds nttBlockWords, then one L1-resident pass per block running
// all remaining pairs plus the fully-reducing tail back to back.
//
//alchemist:hot
//alchemist:domain p:[0,q)
func (s *SubRing) nttLazyVec(p []uint64) {
	n, q := s.N, s.Q
	ifma := s.ifma
	m, t := 1, n
	// Values live in [0, 4q) between stages, exactly as in the scalar path.
	//
	//alchemist:domain p:[0,4q)
	if bits.TrailingZeros(uint(n))&1 == 1 {
		// log N odd: leading single stage (t = n/2) with twiddle psiRev[1].
		h := n >> 1
		if ifma {
			nttSingleVec52(p[0:h:h], p[h:n:n], s.psiRev[1], s.psiRev52[1], q)
		} else {
			nttSingleVec(p[0:h:h], p[h:n:n], s.psiRev[1], s.psiRevShoup[1], q)
		}
		m, t = 2, h
	}
	blockW := nttBlockWords
	if blockW > n {
		blockW = n
	}
	// A stage pair at m covers groups g0:g1 with quarter length qt. The
	// IFMA tier needs 8 full lanes per quarter; the only narrower stage is
	// the qt = 4 pair just before the tail, which takes the AVX2 kernel.
	pair := func(dst []uint64, m, g0, g1, qt int) {
		if ifma && qt&7 == 0 {
			nttPairVec52(dst, s.psiRev[m+g0:m+g1], s.psiRev52[m+g0:m+g1],
				s.psiRev[2*m+2*g0:2*m+2*g1], s.psiRev52[2*m+2*g0:2*m+2*g1], qt, q)
			return
		}
		nttPairVec(dst, s.psiRev[m+g0:m+g1], s.psiRevShoup[m+g0:m+g1],
			s.psiRev[2*m+2*g0:2*m+2*g1], s.psiRevShoup[2*m+2*g0:2*m+2*g1], qt, q)
	}
	// Fused stage pairs with span t > blockW sweep the whole array.
	for ; 4*m < n; m <<= 2 {
		if t <= blockW {
			break
		}
		qt := t >> 2
		pair(p, m, 0, m, qt)
		t = qt
	}
	// Remaining pairs and the tail fit a block: run them per block. Block
	// starts are multiples of every remaining span, so group ranges are
	// exact and no butterfly crosses a block boundary.
	for j0 := 0; j0 < n; j0 += blockW {
		blk := p[j0 : j0+blockW : j0+blockW]
		mb, tb := m, t
		for ; 4*mb < n; mb <<= 2 {
			qt := tb >> 2
			pair(blk, mb, j0/(4*qt), (j0+blockW)/(4*qt), qt)
			tb = qt
		}
		g0, g1 := j0>>2, (j0+blockW)>>2
		if ifma {
			nttTailVec52(blk, s.psiRev[mb+g0:mb+g1], s.psiRev52[mb+g0:mb+g1],
				s.psiRev[2*mb+2*g0:2*mb+2*g1], s.psiRev52[2*mb+2*g0:2*mb+2*g1], q)
		} else {
			nttTailVec(blk, s.psiRev[mb+g0:mb+g1], s.psiRevShoup[mb+g0:mb+g1],
				s.psiRev[2*mb+2*g0:2*mb+2*g1], s.psiRevShoup[2*mb+2*g0:2*mb+2*g1], q)
		}
	}
	// The tail kernels fold the full reduction into the last stage pair, so
	// every block is back in [0, q) here.
	//
	//alchemist:domain p:[0,q)
}

// nttLazyScalar is the portable reference implementation; the vector
// kernels are pinned bit-identical to it.
//
//alchemist:hot
//alchemist:domain p:[0,q)
func (s *SubRing) nttLazyScalar(p []uint64) {
	n, q := s.N, s.Q
	twoQ := 2 * q
	t := n
	m := 1
	// Fused stage pairs (stages m and 2m), while stage 2m is not the last.
	// Invariant at the top: t = n/m; values live in [0, 4q).
	//
	//alchemist:domain p:[0,4q)
	for ; 4*m < n; m <<= 2 {
		t >>= 2 // quarter-block length of the fused pair
		for i := 0; i < m; i++ {
			wA, wAs := s.psiRev[m+i], s.psiRevShoup[m+i]
			wB0, wB0s := s.psiRev[2*m+2*i], s.psiRevShoup[2*m+2*i]
			wB1, wB1s := s.psiRev[2*m+2*i+1], s.psiRevShoup[2*m+2*i+1]
			j1 := 4 * i * t
			x0 := p[j1 : j1+t : j1+t]
			x1 := p[j1+t : j1+2*t : j1+2*t]
			x2 := p[j1+2*t : j1+3*t : j1+3*t]
			x3 := p[j1+3*t : j1+4*t : j1+4*t]
			for j := range x0 {
				a, b, c, d := x0[j], x1[j], x2[j], x3[j]
				// Stage m: butterflies (a,c) and (b,d) at distance 2t.
				u0 := condSub(a, twoQ)
				v0 := modmath.MulModShoupLazy(c, wA, wAs, q)
				a, c = u0+v0, u0+twoQ-v0
				u1 := condSub(b, twoQ)
				v1 := modmath.MulModShoupLazy(d, wA, wAs, q)
				b, d = u1+v1, u1+twoQ-v1
				// Stage 2m: butterflies (a,b) and (c,d) at distance t.
				u0 = condSub(a, twoQ)
				v0 = modmath.MulModShoupLazy(b, wB0, wB0s, q)
				x0[j], x1[j] = u0+v0, u0+twoQ-v0
				u1 = condSub(c, twoQ)
				v1 = modmath.MulModShoupLazy(d, wB1, wB1s, q)
				x2[j], x3[j] = u1+v1, u1+twoQ-v1
			}
		}
	}
	// Final fused stages write fully reduced [0, q) results back.
	//
	//alchemist:domain p:[0,q)
	if m == n>>2 {
		// log N even: the two remaining stages (m and 2m = n/2) form one
		// more fused pair, with the full reduction to [0, q) folded into
		// the stage-2m outputs.
		for i := 0; i < m; i++ {
			wA, wAs := s.psiRev[m+i], s.psiRevShoup[m+i]
			wB0, wB0s := s.psiRev[2*m+2*i], s.psiRevShoup[2*m+2*i]
			wB1, wB1s := s.psiRev[2*m+2*i+1], s.psiRevShoup[2*m+2*i+1]
			j := 4 * i
			a, b, c, d := p[j], p[j+1], p[j+2], p[j+3]
			u0 := condSub(a, twoQ)
			v0 := modmath.MulModShoupLazy(c, wA, wAs, q)
			a, c = u0+v0, u0+twoQ-v0
			u1 := condSub(b, twoQ)
			v1 := modmath.MulModShoupLazy(d, wA, wAs, q)
			b, d = u1+v1, u1+twoQ-v1
			u0 = condSub(a, twoQ)
			v0 = modmath.MulModShoupLazy(b, wB0, wB0s, q)
			p[j] = condSub(condSub(u0+v0, twoQ), q)
			p[j+1] = condSub(condSub(u0+twoQ-v0, twoQ), q)
			u1 = condSub(c, twoQ)
			v1 = modmath.MulModShoupLazy(d, wB1, wB1s, q)
			p[j+2] = condSub(condSub(u1+v1, twoQ), q)
			p[j+3] = condSub(condSub(u1+twoQ-v1, twoQ), q)
		}
		return
	}
	// log N odd: a single last stage (t = 1) with the reduction fused in.
	for i := 0; i < m; i++ {
		w, ws := s.psiRev[m+i], s.psiRevShoup[m+i]
		j := 2 * i
		u := condSub(p[j], twoQ)
		v := modmath.MulModShoupLazy(p[j+1], w, ws, q)
		p[j] = condSub(condSub(u+v, twoQ), q)
		p[j+1] = condSub(condSub(u+twoQ-v, twoQ), q)
	}
}

// INTTLazy computes the same transform as INTT using lazy butterflies, with
// the N^{-1} scaling folded into the last stage (psiInvRevN twiddle). On
// amd64 with AVX2 the stages run in the 4-lane assembly kernels with
// cache-blocked stage iteration, bit-identical to the scalar path.
//
//alchemist:hot
//alchemist:domain p:[0,q)
func (s *SubRing) INTTLazy(p []uint64) {
	if useNTTKern && s.N >= minVecN {
		s.inttLazyVec(p)
		return
	}
	s.inttLazyScalar(p)
}

// inttLazyVec drives the AVX2 GS kernels over the exact scalar stage
// sequence, mirror-image blocked: the INTT's small butterfly spans come
// first, so each block runs the t = 1 head pair and every pair whose span
// fits the block in one L1-resident pass, then the remaining wide pairs
// sweep globally, then the N^{-1}-scaled epilogue fully reduces.
//
//alchemist:hot
//alchemist:domain p:[0,q)
func (s *SubRing) inttLazyVec(p []uint64) {
	n, q := s.N, s.Q
	ifma := s.ifma
	// Sums and lazy products live in [0, 2q) between stages, as in the
	// scalar path.
	//
	//alchemist:domain p:[0,2q)
	blockW := nttBlockWords
	if blockW > n {
		blockW = n
	}
	// A GS stage pair at m covers groups g0:g1 with quarter length t; the
	// t = 4 pair right after the head takes the AVX2 kernel (8-lane
	// quarters need t a multiple of 8).
	pair := func(dst []uint64, m, g0, g1, t int) {
		a, b := m>>1, m>>2
		if ifma && t&7 == 0 {
			inttPairVec52(dst, s.psiInvRev[a+2*g0:a+2*g1], s.psiInvRev52[a+2*g0:a+2*g1],
				s.psiInvRev[b+g0:b+g1], s.psiInvRev52[b+g0:b+g1], t, q)
			return
		}
		inttPairVec(dst, s.psiInvRev[a+2*g0:a+2*g1], s.psiInvRevShoup[a+2*g0:a+2*g1],
			s.psiInvRev[b+g0:b+g1], s.psiInvRevShoup[b+g0:b+g1], t, q)
	}
	hA, hB := n>>1, n>>2
	for j0 := 0; j0 < n; j0 += blockW {
		blk := p[j0 : j0+blockW : j0+blockW]
		g0, g1 := j0>>2, (j0+blockW)>>2
		if ifma {
			inttHeadVec52(blk, s.psiInvRev[hA+2*g0:hA+2*g1], s.psiInvRev52[hA+2*g0:hA+2*g1],
				s.psiInvRev[hB+g0:hB+g1], s.psiInvRev52[hB+g0:hB+g1], q)
		} else {
			inttHeadVec(blk, s.psiInvRev[hA+2*g0:hA+2*g1], s.psiInvRevShoup[hA+2*g0:hA+2*g1],
				s.psiInvRev[hB+g0:hB+g1], s.psiInvRevShoup[hB+g0:hB+g1], q)
		}
		for m := n >> 2; m > 4; m >>= 2 {
			t := n / m
			if 4*t > blockW {
				break
			}
			pair(blk, m, j0/(4*t), (j0+blockW)/(4*t), t)
		}
	}
	// Wide pairs (span beyond a block) sweep the whole array, ascending t.
	for m := n >> 2; m > 4; m >>= 2 {
		t := n / m
		if 4*t <= blockW {
			continue
		}
		pair(p, m, 0, m>>2, t)
	}
	// Epilogue fully reduces to [0, q).
	//
	//alchemist:domain p:[0,q)
	if bits.TrailingZeros(uint(n))&1 == 0 {
		// The 8-lane even epilogue needs quarter-arrays of at least one
		// full ZMM register (n ≥ 32).
		if ifma && (n>>2)&7 == 0 {
			inttLastEvenVec52(p, s.psiInvRev[2], s.psiInvRev52[2],
				s.psiInvRev[3], s.psiInvRev52[3],
				s.nInv, s.nInv52, s.psiInvRevN, s.psiInvRevN52, q)
			return
		}
		inttLastEvenVec(p, s.psiInvRev[2], s.psiInvRevShoup[2],
			s.psiInvRev[3], s.psiInvRevShoup[3],
			s.nInv, s.nInvShoup, s.psiInvRevN, s.psiInvRevNShoup, q)
		return
	}
	h := n >> 1
	if ifma {
		inttLastOddVec52(p[0:h:h], p[h:n:n], s.nInv, s.nInv52, s.psiInvRevN, s.psiInvRevN52, q)
		return
	}
	inttLastOddVec(p[0:h:h], p[h:n:n], s.nInv, s.nInvShoup, s.psiInvRevN, s.psiInvRevNShoup, q)
}

// inttLazyScalar is the portable reference implementation; the vector
// kernels are pinned bit-identical to it.
//
//alchemist:hot
//alchemist:domain p:[0,q)
func (s *SubRing) inttLazyScalar(p []uint64) {
	n, q := s.N, s.Q
	twoQ := 2 * q
	t := 1
	m := n
	// Fused stage pairs (stages m and m/2), while stage m/2 is not the last.
	// Invariant at the top: t = n/m; sums reduced to [0, 2q), lazy products
	// in [0, 2q).
	//
	//alchemist:domain p:[0,2q)
	for ; m > 4; m >>= 2 {
		hA, hB := m>>1, m>>2
		for i := 0; i < hB; i++ {
			wA0, wA0s := s.psiInvRev[hA+2*i], s.psiInvRevShoup[hA+2*i]
			wA1, wA1s := s.psiInvRev[hA+2*i+1], s.psiInvRevShoup[hA+2*i+1]
			wB, wBs := s.psiInvRev[hB+i], s.psiInvRevShoup[hB+i]
			j1 := 4 * i * t
			x0 := p[j1 : j1+t : j1+t]
			x1 := p[j1+t : j1+2*t : j1+2*t]
			x2 := p[j1+2*t : j1+3*t : j1+3*t]
			x3 := p[j1+3*t : j1+4*t : j1+4*t]
			for j := range x0 {
				a, b, c, d := x0[j], x1[j], x2[j], x3[j]
				// Stage m: butterflies (a,b) and (c,d) at distance t.
				sa := condSubMask(a+b, twoQ)
				da := modmath.MulModShoupLazy(a+twoQ-b, wA0, wA0s, q)
				sc := condSubMask(c+d, twoQ)
				dc := modmath.MulModShoupLazy(c+twoQ-d, wA1, wA1s, q)
				// Stage m/2: butterflies (sa,sc) and (da,dc) at distance 2t.
				x0[j] = condSubMask(sa+sc, twoQ)
				x1[j] = condSubMask(da+dc, twoQ)
				x2[j] = modmath.MulModShoupLazy(sa+twoQ-sc, wB, wBs, q)
				x3[j] = modmath.MulModShoupLazy(da+twoQ-dc, wB, wBs, q)
			}
		}
		t <<= 2
	}
	// The last stage (m = 2) scales by N^{-1} and reduces fully: the
	// difference path uses the precomputed psiInvRev[1]·N^{-1}, the sum path
	// multiplies by N^{-1} directly. MulModShoupLazy tolerates inputs < 4q
	// and returns [0, 2q), so one conditional subtraction lands in [0, q).
	//
	//alchemist:domain p:[0,q)
	w, ws := s.psiInvRevN, s.psiInvRevNShoup
	ni, nis := s.nInv, s.nInvShoup
	if m == 4 {
		// log N even: fuse the unpaired stage (m = 4, twiddles psiInvRev[2]
		// and psiInvRev[3]) with the last stage in one sweep.
		wA0, wA0s := s.psiInvRev[2], s.psiInvRevShoup[2]
		wA1, wA1s := s.psiInvRev[3], s.psiInvRevShoup[3]
		x0 := p[0:t:t]
		x1 := p[t : 2*t : 2*t]
		x2 := p[2*t : 3*t : 3*t]
		x3 := p[3*t : 4*t : 4*t]
		for j := range x0 {
			a, b, c, d := x0[j], x1[j], x2[j], x3[j]
			sa := condSubMask(a+b, twoQ)
			da := modmath.MulModShoupLazy(a+twoQ-b, wA0, wA0s, q)
			sc := condSubMask(c+d, twoQ)
			dc := modmath.MulModShoupLazy(c+twoQ-d, wA1, wA1s, q)
			x0[j] = condSubMask(modmath.MulModShoupLazy(sa+sc, ni, nis, q), q)
			x1[j] = condSubMask(modmath.MulModShoupLazy(da+dc, ni, nis, q), q)
			x2[j] = condSubMask(modmath.MulModShoupLazy(sa+twoQ-sc, w, ws, q), q)
			x3[j] = condSubMask(modmath.MulModShoupLazy(da+twoQ-dc, w, ws, q), q)
		}
		return
	}
	// log N odd: only the last stage remains.
	h := n >> 1
	x := p[0:h:h]
	y := p[h : 2*h : 2*h]
	for j := range x {
		u := x[j]
		v := y[j]
		x[j] = condSubMask(modmath.MulModShoupLazy(u+v, ni, nis, q), q)
		y[j] = condSubMask(modmath.MulModShoupLazy(u+twoQ-v, w, ws, q), q)
	}
}

// shoup52 returns ⌊w·2^52/q⌋, the base-2^52 Shoup precomputation used by
// the 52-bit madd kernels in place of ShoupPrecomp's base 2^64. Callers
// guarantee w < q < 2^50, so the dividend's high word w>>12 is below q and
// the quotient fits 52 bits.
func shoup52(w, q uint64) uint64 {
	quo, _ := bits.Div64(w>>12, w<<52, q)
	return quo
}

// reduceOnce folds a lazy-domain value x < 4q into [0, q): one conditional
// subtraction of 2q (normalizing the [0, 2q) range MulModShoupLazy
// guarantees) followed by one of q. The fuzz targets pin the contract
// between MulModShoupLazy's output range and this normalization.
func reduceOnce(x, twoQ, q uint64) uint64 {
	if x >= twoQ {
		x -= twoQ
	}
	if x >= q {
		x -= q
	}
	return x
}

package ring

import "alchemist/internal/modmath"

// Lazy-reduction NTT kernels (Harvey): butterfly values live in [0, 4q) and
// only the twiddle product is reduced (to [0, 2q)), deferring the rest of
// the reduction work to the end of the transform — the software counterpart
// of the Meta-OP's (M_jA_j)_nR_j lazy reduction, and ~1.5× faster than the
// eager kernels. Requires q < 2^62, which every modulus in this repository
// satisfies.
//
// At N = 2^16 (the paper's CKKS degree) the transform is memory-bound: a
// log N-stage radix-2 network sweeps the full coefficient vector once per
// stage. Three structural optimizations cut that traffic and are worth
// their obscurity; the eager kernels in subring.go remain the readable
// reference and the tests pin these to byte-identical outputs:
//
//   - consecutive stage PAIRS are fused (radix-4 style): four coefficients
//     are loaded, carried through both stages in registers, and stored once,
//     halving the number of memory sweeps — the software analogue of keeping
//     operands in the accelerator scratchpad between passes;
//   - the final full-reduction pass is folded into the last butterfly stage
//     (for the INTT together with the N^{-1} scaling, using a twiddle
//     premultiplied by N^{-1}), saving one more read+write sweep;
//   - conditional subtractions avoid unpredictable branches: butterfly
//     inputs are uniform over [0, 4q), so a branch is a coin flip the
//     predictor always loses. The NTT's comparison form lowers to CMOV;
//     the INTT measurably prefers the explicit borrow-mask form (the
//     surrounding instruction mix schedules differently) — both are
//     branch-free on amd64, and the choice per kernel is empirical;
//
// plus half-open three-index subslices so the compiler drops bounds checks
// in the inner loops. The fused pairs replay the exact radix-2 dataflow per
// element, so outputs are byte-identical to the single-stage kernels.

// condSub returns x - q if x >= q, else x (lowered to a CMOV, not a branch).
func condSub(x, q uint64) uint64 {
	if x >= q {
		x -= q
	}
	return x
}

// condSubMask is condSub computed from the borrow's sign bit: the
// subtraction underflows exactly when x < q, and the mask adds q back.
func condSubMask(x, q uint64) uint64 {
	d := x - q
	return d + (q & uint64(int64(d)>>63))
}

// NTTLazy computes the same transform as NTT (natural order in,
// bit-reversed out, fully reduced results) using lazy butterflies.
//
//alchemist:hot
//alchemist:domain p:[0,q)
func (s *SubRing) NTTLazy(p []uint64) {
	n, q := s.N, s.Q
	twoQ := 2 * q
	t := n
	m := 1
	// Fused stage pairs (stages m and 2m), while stage 2m is not the last.
	// Invariant at the top: t = n/m; values live in [0, 4q).
	//
	//alchemist:domain p:[0,4q)
	for ; 4*m < n; m <<= 2 {
		t >>= 2 // quarter-block length of the fused pair
		for i := 0; i < m; i++ {
			wA, wAs := s.psiRev[m+i], s.psiRevShoup[m+i]
			wB0, wB0s := s.psiRev[2*m+2*i], s.psiRevShoup[2*m+2*i]
			wB1, wB1s := s.psiRev[2*m+2*i+1], s.psiRevShoup[2*m+2*i+1]
			j1 := 4 * i * t
			x0 := p[j1 : j1+t : j1+t]
			x1 := p[j1+t : j1+2*t : j1+2*t]
			x2 := p[j1+2*t : j1+3*t : j1+3*t]
			x3 := p[j1+3*t : j1+4*t : j1+4*t]
			for j := range x0 {
				a, b, c, d := x0[j], x1[j], x2[j], x3[j]
				// Stage m: butterflies (a,c) and (b,d) at distance 2t.
				u0 := condSub(a, twoQ)
				v0 := modmath.MulModShoupLazy(c, wA, wAs, q)
				a, c = u0+v0, u0+twoQ-v0
				u1 := condSub(b, twoQ)
				v1 := modmath.MulModShoupLazy(d, wA, wAs, q)
				b, d = u1+v1, u1+twoQ-v1
				// Stage 2m: butterflies (a,b) and (c,d) at distance t.
				u0 = condSub(a, twoQ)
				v0 = modmath.MulModShoupLazy(b, wB0, wB0s, q)
				x0[j], x1[j] = u0+v0, u0+twoQ-v0
				u1 = condSub(c, twoQ)
				v1 = modmath.MulModShoupLazy(d, wB1, wB1s, q)
				x2[j], x3[j] = u1+v1, u1+twoQ-v1
			}
		}
	}
	// Final fused stages write fully reduced [0, q) results back.
	//
	//alchemist:domain p:[0,q)
	if m == n>>2 {
		// log N even: the two remaining stages (m and 2m = n/2) form one
		// more fused pair, with the full reduction to [0, q) folded into
		// the stage-2m outputs.
		for i := 0; i < m; i++ {
			wA, wAs := s.psiRev[m+i], s.psiRevShoup[m+i]
			wB0, wB0s := s.psiRev[2*m+2*i], s.psiRevShoup[2*m+2*i]
			wB1, wB1s := s.psiRev[2*m+2*i+1], s.psiRevShoup[2*m+2*i+1]
			j := 4 * i
			a, b, c, d := p[j], p[j+1], p[j+2], p[j+3]
			u0 := condSub(a, twoQ)
			v0 := modmath.MulModShoupLazy(c, wA, wAs, q)
			a, c = u0+v0, u0+twoQ-v0
			u1 := condSub(b, twoQ)
			v1 := modmath.MulModShoupLazy(d, wA, wAs, q)
			b, d = u1+v1, u1+twoQ-v1
			u0 = condSub(a, twoQ)
			v0 = modmath.MulModShoupLazy(b, wB0, wB0s, q)
			p[j] = condSub(condSub(u0+v0, twoQ), q)
			p[j+1] = condSub(condSub(u0+twoQ-v0, twoQ), q)
			u1 = condSub(c, twoQ)
			v1 = modmath.MulModShoupLazy(d, wB1, wB1s, q)
			p[j+2] = condSub(condSub(u1+v1, twoQ), q)
			p[j+3] = condSub(condSub(u1+twoQ-v1, twoQ), q)
		}
		return
	}
	// log N odd: a single last stage (t = 1) with the reduction fused in.
	for i := 0; i < m; i++ {
		w, ws := s.psiRev[m+i], s.psiRevShoup[m+i]
		j := 2 * i
		u := condSub(p[j], twoQ)
		v := modmath.MulModShoupLazy(p[j+1], w, ws, q)
		p[j] = condSub(condSub(u+v, twoQ), q)
		p[j+1] = condSub(condSub(u+twoQ-v, twoQ), q)
	}
}

// INTTLazy computes the same transform as INTT using lazy butterflies, with
// the N^{-1} scaling folded into the last stage (psiInvRevN twiddle).
//
//alchemist:hot
//alchemist:domain p:[0,q)
func (s *SubRing) INTTLazy(p []uint64) {
	n, q := s.N, s.Q
	twoQ := 2 * q
	t := 1
	m := n
	// Fused stage pairs (stages m and m/2), while stage m/2 is not the last.
	// Invariant at the top: t = n/m; sums reduced to [0, 2q), lazy products
	// in [0, 2q).
	//
	//alchemist:domain p:[0,2q)
	for ; m > 4; m >>= 2 {
		hA, hB := m>>1, m>>2
		for i := 0; i < hB; i++ {
			wA0, wA0s := s.psiInvRev[hA+2*i], s.psiInvRevShoup[hA+2*i]
			wA1, wA1s := s.psiInvRev[hA+2*i+1], s.psiInvRevShoup[hA+2*i+1]
			wB, wBs := s.psiInvRev[hB+i], s.psiInvRevShoup[hB+i]
			j1 := 4 * i * t
			x0 := p[j1 : j1+t : j1+t]
			x1 := p[j1+t : j1+2*t : j1+2*t]
			x2 := p[j1+2*t : j1+3*t : j1+3*t]
			x3 := p[j1+3*t : j1+4*t : j1+4*t]
			for j := range x0 {
				a, b, c, d := x0[j], x1[j], x2[j], x3[j]
				// Stage m: butterflies (a,b) and (c,d) at distance t.
				sa := condSubMask(a+b, twoQ)
				da := modmath.MulModShoupLazy(a+twoQ-b, wA0, wA0s, q)
				sc := condSubMask(c+d, twoQ)
				dc := modmath.MulModShoupLazy(c+twoQ-d, wA1, wA1s, q)
				// Stage m/2: butterflies (sa,sc) and (da,dc) at distance 2t.
				x0[j] = condSubMask(sa+sc, twoQ)
				x1[j] = condSubMask(da+dc, twoQ)
				x2[j] = modmath.MulModShoupLazy(sa+twoQ-sc, wB, wBs, q)
				x3[j] = modmath.MulModShoupLazy(da+twoQ-dc, wB, wBs, q)
			}
		}
		t <<= 2
	}
	// The last stage (m = 2) scales by N^{-1} and reduces fully: the
	// difference path uses the precomputed psiInvRev[1]·N^{-1}, the sum path
	// multiplies by N^{-1} directly. MulModShoupLazy tolerates inputs < 4q
	// and returns [0, 2q), so one conditional subtraction lands in [0, q).
	//
	//alchemist:domain p:[0,q)
	w, ws := s.psiInvRevN, s.psiInvRevNShoup
	ni, nis := s.nInv, s.nInvShoup
	if m == 4 {
		// log N even: fuse the unpaired stage (m = 4, twiddles psiInvRev[2]
		// and psiInvRev[3]) with the last stage in one sweep.
		wA0, wA0s := s.psiInvRev[2], s.psiInvRevShoup[2]
		wA1, wA1s := s.psiInvRev[3], s.psiInvRevShoup[3]
		x0 := p[0:t:t]
		x1 := p[t : 2*t : 2*t]
		x2 := p[2*t : 3*t : 3*t]
		x3 := p[3*t : 4*t : 4*t]
		for j := range x0 {
			a, b, c, d := x0[j], x1[j], x2[j], x3[j]
			sa := condSubMask(a+b, twoQ)
			da := modmath.MulModShoupLazy(a+twoQ-b, wA0, wA0s, q)
			sc := condSubMask(c+d, twoQ)
			dc := modmath.MulModShoupLazy(c+twoQ-d, wA1, wA1s, q)
			x0[j] = condSubMask(modmath.MulModShoupLazy(sa+sc, ni, nis, q), q)
			x1[j] = condSubMask(modmath.MulModShoupLazy(da+dc, ni, nis, q), q)
			x2[j] = condSubMask(modmath.MulModShoupLazy(sa+twoQ-sc, w, ws, q), q)
			x3[j] = condSubMask(modmath.MulModShoupLazy(da+twoQ-dc, w, ws, q), q)
		}
		return
	}
	// log N odd: only the last stage remains.
	h := n >> 1
	x := p[0:h:h]
	y := p[h : 2*h : 2*h]
	for j := range x {
		u := x[j]
		v := y[j]
		x[j] = condSubMask(modmath.MulModShoupLazy(u+v, ni, nis, q), q)
		y[j] = condSubMask(modmath.MulModShoupLazy(u+twoQ-v, w, ws, q), q)
	}
}

// reduceOnce folds a lazy-domain value x < 4q into [0, q): one conditional
// subtraction of 2q (normalizing the [0, 2q) range MulModShoupLazy
// guarantees) followed by one of q. The fuzz targets pin the contract
// between MulModShoupLazy's output range and this normalization.
func reduceOnce(x, twoQ, q uint64) uint64 {
	if x >= twoQ {
		x -= twoQ
	}
	if x >= q {
		x -= q
	}
	return x
}

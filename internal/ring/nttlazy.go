package ring

import "alchemist/internal/modmath"

// Lazy-reduction NTT kernels (Harvey): butterfly values live in [0, 4q) and
// only the twiddle product is reduced (to [0, 2q)), deferring the rest of
// the reduction work to a single final pass — the software counterpart of
// the Meta-OP's (M_jA_j)_nR_j lazy reduction, and ~1.5× faster than the
// eager kernels. Requires q < 2^62, which every modulus in this repository
// satisfies.

// NTTLazy computes the same transform as NTT (natural order in,
// bit-reversed out, fully reduced results) using lazy butterflies.
func (s *SubRing) NTTLazy(p []uint64) {
	n, q := s.N, s.Q
	twoQ := 2 * q
	t := n
	for m := 1; m < n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := s.psiRev[m+i]
			ws := s.psiRevShoup[m+i]
			j1 := 2 * i * t
			for j := j1; j < j1+t; j++ {
				u := p[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := modmath.MulModShoupLazy(p[j+t], w, ws, q) // [0, 2q)
				p[j] = u + v                                   // [0, 4q)
				p[j+t] = u + twoQ - v                          // [0, 4q)
			}
		}
	}
	for j := 0; j < n; j++ {
		r := p[j]
		if r >= twoQ {
			r -= twoQ
		}
		if r >= q {
			r -= q
		}
		p[j] = r
	}
}

// INTTLazy computes the same transform as INTT using lazy butterflies, with
// the N^{-1} scaling folded into the final reduction pass.
func (s *SubRing) INTTLazy(p []uint64) {
	n, q := s.N, s.Q
	twoQ := 2 * q
	t := 1
	for m := n; m > 1; m >>= 1 {
		h := m >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			w := s.psiInvRev[h+i]
			ws := s.psiInvRevShoup[h+i]
			for j := j1; j < j1+t; j++ {
				u := p[j]
				v := p[j+t]
				// u, v ∈ [0, 2q) by induction (sum reduced below).
				sum := u + v
				if sum >= twoQ {
					sum -= twoQ
				}
				p[j] = sum
				p[j+t] = modmath.MulModShoupLazy(u+twoQ-v, w, ws, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := 0; j < n; j++ {
		p[j] = modmath.MulModShoup(reduceOnce(p[j], twoQ, q), s.nInv, s.nInvShoup, q)
	}
}

func reduceOnce(x, twoQ, q uint64) uint64 {
	if x >= twoQ {
		x -= twoQ
	}
	if x >= q {
		x -= q
	}
	return x
}

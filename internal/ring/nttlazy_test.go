package ring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"alchemist/internal/modmath"
)

func TestLazyNTTMatchesEager(t *testing.T) {
	for _, n := range []int{16, 256, 1024, 4096} {
		for _, bits := range []uint64{30, 45, 61} {
			primes, err := modmath.GenerateNTTPrimes(bits, uint64(2*n), 1)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSubRing(n, primes[0])
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(n)))
			a := make([]uint64, n)
			for i := range a {
				a[i] = rng.Uint64() % s.Q
			}
			eager := append([]uint64(nil), a...)
			lazy := append([]uint64(nil), a...)
			s.NTT(eager)
			s.NTTLazy(lazy)
			for i := range eager {
				if eager[i] != lazy[i] {
					t.Fatalf("n=%d bits=%d: lazy NTT differs at %d", n, bits, i)
				}
			}
			s.INTT(eager)
			s.INTTLazy(lazy)
			for i := range eager {
				if eager[i] != lazy[i] || eager[i] != a[i] {
					t.Fatalf("n=%d bits=%d: lazy INTT differs at %d", n, bits, i)
				}
			}
		}
	}
}

func TestQuickLazyRoundTrip(t *testing.T) {
	n := 128
	primes, err := modmath.GenerateNTTPrimes(50, uint64(2*n), 1)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSubRing(n, primes[0])
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64() % s.Q
		}
		b := append([]uint64(nil), a...)
		s.NTTLazy(b)
		s.INTTLazy(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulModShoupLazyBound(t *testing.T) {
	// The lazy product must stay below 2q for inputs up to 4q.
	q := uint64(1)<<61 + 1 // any q < 2^62; use a valid NTT prime instead
	primes, _ := modmath.GenerateNTTPrimes(61, 256, 1)
	q = primes[0]
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		a := rng.Uint64() % (4 * q)
		w := rng.Uint64() % q
		ws := modmath.ShoupPrecomp(w, q)
		r := modmath.MulModShoupLazy(a, w, ws, q)
		if r >= 2*q {
			t.Fatalf("lazy product %d ≥ 2q for a=%d w=%d", r, a, w)
		}
		if r%q != modmath.MulMod(a%q, w, q) {
			t.Fatalf("lazy product incongruent for a=%d w=%d", a, w)
		}
	}
}

func BenchmarkNTTEagerVsLazy(b *testing.B) {
	n := 4096
	primes, _ := modmath.GenerateNTTPrimes(50, uint64(2*n), 1)
	s, _ := NewSubRing(n, primes[0])
	a := make([]uint64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range a {
		a[i] = rng.Uint64() % s.Q
	}
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.NTT(a)
		}
	})
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.NTTLazy(a)
		}
	})
}

func TestParallelNTTMatchesSerial(t *testing.T) {
	r := testRing(t, 512, 6)
	level := r.MaxLevel()
	a := randPoly(r, level, 99)
	serial := r.Clone(level, a)
	r.NTT(level, serial)

	r.SetWorkers(4)
	defer r.SetWorkers(1)
	parallel := r.Clone(level, a)
	r.NTT(level, parallel)
	if !r.Equal(level, serial, parallel) {
		t.Fatal("parallel NTT differs from serial")
	}
	r.INTT(level, parallel)
	if !r.Equal(level, parallel, a) {
		t.Fatal("parallel INTT round trip failed")
	}
	// Degenerate worker counts.
	r.SetWorkers(0)
	one := r.Clone(level, a)
	r.NTT(level, one)
	if !r.Equal(level, serial, one) {
		t.Fatal("workers=0 should behave like serial")
	}
	r.SetWorkers(100) // more workers than channels
	many := r.Clone(level, a)
	r.NTT(level, many)
	if !r.Equal(level, serial, many) {
		t.Fatal("oversubscribed workers differ")
	}
}

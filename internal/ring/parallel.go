package ring

// Worker-count knobs for the limb/block scheduler (sched.go). Parallelism is
// disabled by default — the paper's CPU baseline is single-threaded — and
// enabled explicitly per Ring (or via the evaluator contexts' SetWorkers,
// which fan the setting out to every ring they own).

// SetWorkers sets the goroutine count used by the parallel kernel suite
// (1 disables parallelism; values above the task count or GOMAXPROCS are
// clamped at use). It is safe to call concurrently with running kernels:
// each job snapshots the count once when it is submitted, so retuning
// affects subsequent calls.
func (r *Ring) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	r.workers.Store(int32(n))
}

// Workers reports the configured goroutine count (minimum 1).
func (r *Ring) Workers() int {
	if w := int(r.workers.Load()); w > 1 {
		return w
	}
	return 1
}

// Close tears down the ring's resident worker pool, if one was spawned.
// Outstanding jobs finish first. The ring remains usable afterwards —
// kernels fall back to the serial path until a parallel call respawns
// workers — but Close is intended for teardown so tests and short-lived
// rings do not leak goroutines. It is safe to call multiple times and
// concurrently with running kernels.
func (r *Ring) Close() {
	p := &r.pool
	p.mu.Lock()
	p.init()
	p.closing = true
	for p.spawned > 0 {
		p.cond.Broadcast()
		p.done.Wait()
	}
	p.closing = false
	p.mu.Unlock()
}

package ring

import (
	"runtime"
	"sync"
)

// Channel-level parallelism: RNS channels are independent, so the Ring can
// fan NTT work out across goroutines. Disabled by default — the paper's CPU
// baseline is single-threaded — and enabled explicitly per Ring for
// applications that want wall-clock speed.
//
// Workers are RESIDENT: the first parallel transform spawns a pool of
// goroutines (clamped to runtime.GOMAXPROCS(0) at spawn time, the caller
// counting as one worker) that park on a condition variable between jobs.
// This replaces the previous goroutine-plus-channel-per-call fan-out, whose
// spawn latency and channel allocations dominated short transforms. Work
// within a job is distributed by an index counter, claims are made under the
// pool mutex (a claim guards ~N=2^11..2^16 coefficients of work, so the
// critical section is negligible), and jobs are recycled through a free list
// so a steady-state parallel transform performs no allocation.

// SetWorkers sets the number of goroutines used by NTT/INTT (1 disables
// parallelism; values above the channel count are clamped at use). It is
// safe to call concurrently with running transforms: each job snapshots the
// count once when it is submitted, so retuning affects subsequent calls.
func (r *Ring) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	r.workers.Store(int32(n))
}

// Workers reports the configured goroutine count (minimum 1).
func (r *Ring) Workers() int {
	if w := int(r.workers.Load()); w > 1 {
		return w
	}
	return 1
}

// Close tears down the ring's resident worker pool, if one was spawned.
// Outstanding jobs finish first. The ring remains usable afterwards —
// transforms fall back to the serial path until a parallel call respawns
// workers — but Close is intended for teardown so tests and short-lived
// rings do not leak goroutines. It is safe to call multiple times and
// concurrently with running transforms.
func (r *Ring) Close() {
	p := &r.pool
	p.mu.Lock()
	p.closing = true
	for p.spawned > 0 {
		p.cond.Broadcast()
		p.done.Wait()
	}
	p.closing = false
	p.mu.Unlock()
}

// workerPool is the resident goroutine pool attached to a Ring. The zero
// value is ready to use after init() is called (done lazily by submit).
type workerPool struct {
	mu      sync.Mutex
	cond    *sync.Cond // workers park here waiting for jobs
	done    *sync.Cond // callers wait here for job completion / teardown
	inited  bool
	jobs    []*poolJob // jobs with unclaimed work, oldest first
	free    []*poolJob // recycled job records
	spawned int        // resident worker goroutines
	closing bool       // Close in progress: workers drain and exit
}

// Job kinds. Specialized kinds avoid a closure allocation on the hottest
// transforms; jobFn is the generic escape hatch.
const (
	jobFn = iota
	jobNTT
	jobINTT
)

// poolJob is one forEachChannel invocation. All fields are guarded by the
// pool mutex except during run, which touches only the immutable-for-the-
// job's-lifetime kind/r/p/fn fields.
type poolJob struct {
	kind int
	r    *Ring
	p    *Poly
	fn   func(i int)

	next        int // next unclaimed index
	limit       int // one past the last index
	outstanding int // claimed but not yet finished
}

func (j *poolJob) run(i int) {
	switch j.kind {
	case jobNTT:
		j.r.SubRings[i].NTTLazy(j.p.Coeffs[i])
	case jobINTT:
		j.r.SubRings[i].INTTLazy(j.p.Coeffs[i])
	default:
		j.fn(i)
	}
}

func (p *workerPool) init() {
	if !p.inited {
		p.cond = sync.NewCond(&p.mu)
		p.done = sync.NewCond(&p.mu)
		p.inited = true
	}
}

// helpers reports how many resident workers a job wants alongside the
// caller: the configured worker count clamped to the channel count and to
// GOMAXPROCS at spawn time (more runnable goroutines than Ps only adds
// scheduling overhead).
func (r *Ring) helpers(level int) int {
	w := r.Workers()
	if n := level + 1; w > n {
		w = n
	}
	if maxp := runtime.GOMAXPROCS(0); w > maxp {
		w = maxp
	}
	return w - 1
}

// runJob executes fn(i) (or the specialized kind) for i in [0, limit) with
// the caller plus up to helpers resident workers, blocking until every index
// has finished.
func (r *Ring) runJob(kind int, p *Poly, fn func(i int), limit, helpers int) {
	pool := &r.pool
	pool.mu.Lock()
	pool.init()
	var j *poolJob
	if n := len(pool.free); n > 0 {
		j = pool.free[n-1]
		pool.free = pool.free[:n-1]
	} else {
		j = new(poolJob)
	}
	j.kind, j.r, j.p, j.fn = kind, r, p, fn
	j.next, j.limit, j.outstanding = 0, limit, 0
	pool.jobs = append(pool.jobs, j)
	// Top up resident workers; Close may have torn them down.
	for pool.spawned < helpers && !pool.closing {
		pool.spawned++
		go pool.worker()
	}
	pool.cond.Broadcast()
	// The caller claims work like any worker. Like the worker loop, it must
	// detach the job the moment the last index is claimed — before releasing
	// the lock — so no other worker finds a drained job in the list and
	// claims an index past limit.
	for j.next < j.limit {
		i := j.next
		j.next++
		j.outstanding++
		if j.next >= j.limit {
			pool.detach(j)
		}
		pool.mu.Unlock()
		j.run(i)
		pool.mu.Lock()
		j.outstanding--
		if j.outstanding == 0 && j.next >= j.limit {
			pool.done.Broadcast()
		}
	}
	pool.detach(j)
	for j.outstanding > 0 {
		pool.done.Wait()
	}
	// No list entry and no in-flight claims: j is unreachable by workers.
	j.r, j.p, j.fn = nil, nil, nil
	pool.free = append(pool.free, j)
	pool.mu.Unlock()
}

// detach removes j from the active list (idempotent; callers hold mu).
func (p *workerPool) detach(j *poolJob) {
	for k, a := range p.jobs {
		if a == j {
			copy(p.jobs[k:], p.jobs[k+1:])
			p.jobs[len(p.jobs)-1] = nil
			p.jobs = p.jobs[:len(p.jobs)-1]
			return
		}
	}
}

// worker is the resident goroutine body: claim an index from the oldest
// job, run it, repeat; park when idle, exit on Close.
func (p *workerPool) worker() {
	p.mu.Lock()
	for {
		for len(p.jobs) == 0 && !p.closing {
			p.cond.Wait()
		}
		if len(p.jobs) == 0 {
			break // closing, and nothing left to drain
		}
		j := p.jobs[0]
		i := j.next
		j.next++
		j.outstanding++
		if j.next >= j.limit {
			p.detach(j)
		}
		p.mu.Unlock()
		j.run(i)
		p.mu.Lock()
		j.outstanding--
		if j.outstanding == 0 && j.next >= j.limit {
			p.done.Broadcast()
		}
	}
	p.spawned--
	p.done.Broadcast()
	p.mu.Unlock()
}

// forEachChannel runs fn(i) for i in [0, level] using the configured worker
// count. The serial guard comes before the closure so single-threaded rings
// (the default) never allocate.
func (r *Ring) forEachChannel(level int, fn func(i int)) {
	h := r.helpers(level)
	if h <= 0 {
		for i := 0; i <= level; i++ {
			fn(i)
		}
		return
	}
	r.runJob(jobFn, nil, fn, level+1, h)
}

package ring

import "sync"

// Channel-level parallelism: RNS channels are independent, so the Ring can
// fan NTT work out across goroutines. Disabled by default — the paper's CPU
// baseline is single-threaded — and enabled explicitly per Ring for
// applications that want wall-clock speed.

// SetWorkers sets the number of goroutines used by NTT/INTT (1 disables
// parallelism; values above the channel count are clamped at use). It is
// safe to call concurrently with running transforms: each forEachChannel
// snapshot reads the count once.
func (r *Ring) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	r.workers.Store(int32(n))
}

// Workers reports the configured goroutine count (minimum 1).
func (r *Ring) Workers() int {
	if w := int(r.workers.Load()); w > 1 {
		return w
	}
	return 1
}

// forEachChannel runs fn(i) for i in [0, level] using the configured worker
// count.
func (r *Ring) forEachChannel(level int, fn func(i int)) {
	w := r.Workers()
	if w <= 1 || level == 0 {
		for i := 0; i <= level; i++ {
			fn(i)
		}
		return
	}
	if w > level+1 {
		w = level + 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i <= level; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

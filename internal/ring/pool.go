package ring

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
)

// Scratch-buffer arena. FHE kernels are dominated by O(N) passes over
// degree-sized uint64 slices; allocating that scratch per call makes the GC
// the bottleneck (the software analogue of an accelerator spilling operands
// to HBM instead of keeping them in the scratchpad). The pool keeps released
// buffers resident so steady-state hot paths allocate nothing.
//
// Two layers:
//
//   - BufPool hands out raw []uint64 scratch of any requested length. It is
//     the building block shared by the Ring, the BasisConverter and the TFHE
//     polynomial multiplier.
//   - Ring.Borrow / Ring.Release manage whole RNS polynomials (degree ×
//     channels), one sync.Pool per level so a Borrow never returns a poly of
//     the wrong shape.
//
// Borrowed memory is NOT zeroed: callers overwrite every word they read, as
// the kernels here all do. SetPoolDebug(true) poisons buffers on release so
// a use-after-release reads garbage deterministically instead of stale data
// that happens to look right.

// poolDebug, when non-zero, poisons every released buffer.
var poolDebug atomic.Bool

// poolPoison is the word written over released buffers in debug mode. It is
// a valid (huge) uint64 well above any 62-bit modulus, so arithmetic on a
// poisoned word fails loudly in tests comparing against the serial oracle.
const poolPoison = 0xDEADDEADDEADDEAD

// SetPoolDebug toggles poisoning of released scratch buffers. Intended for
// tests; it is safe to call concurrently with running kernels.
func SetPoolDebug(on bool) { poolDebug.Store(on) }

// PoolDebug reports whether release-poisoning is enabled.
func PoolDebug() bool { return poolDebug.Load() }

// BufPool is an arena of []uint64 scratch buffers. Buffers of any length
// can be requested; in steady state all callers of one pool request the same
// length, so recycled buffers always fit.
//
// Two tiers. A resident tier holds the working set with strong references,
// so a GC cannot evict it — sync.Pool alone loses its contents (and its
// internal per-P chains) across collection cycles, which shows up as a few
// stray bytes/op in benchmark harnesses that force a GC per run, exactly the
// steady-state noise this arena exists to eliminate. The resident tier is
// SHARDED: each shard is an independent mutex-guarded stack padded to its
// own cache line, and the limb/block scheduler routes each partition's
// scratch to the shard named by its partition index, so parallel kernel
// partitions recycle scratch with zero mutex contention and zero false
// sharing (the single-threaded Get/Put path uses shard 0 and behaves exactly
// like the old single stack). Overflow beyond a shard's stack spills to a
// shared sync.Pool, which stores *[]uint64 rather than []uint64: storing a
// bare slice boxes its three-word header on every Put (non-pointer →
// interface conversion allocates). The header boxes themselves are recycled
// through a second pool, so a steady-state Get/Put cycle allocates nothing
// on either tier.
type BufPool struct {
	shards [bufPoolShards]bufShard
	bufs   sync.Pool // overflow: *[]uint64 with the buffer attached
	hdrs   sync.Pool // spare *[]uint64 header boxes awaiting reuse
}

// bufShard is one resident stack. The pad keeps adjacent shards' mutexes and
// stack headers on distinct cache lines so concurrent partitions do not
// false-share.
type bufShard struct {
	mu       sync.Mutex
	resident [][]uint64 // GC-immune free stack, at most bufPoolResident deep
	_        [64]byte
}

// bufPoolShards is the resident-tier shard count: a power of two at least as
// large as the partition counts common on desktop/server parts, so shard
// routing is a mask. Partition indexes beyond it wrap — correctness never
// depends on exclusivity, only contention does.
const bufPoolShards = 8

// bufPoolResident caps each shard's strongly-referenced free stack: deep
// enough for every concurrent scratch need in one kernel partition
// (KSAccumulate holds ksChunk buffers at once), small enough that an idle
// pool pins little.
const bufPoolResident = 4

// bufPoolResidentMaxWords bounds which buffers the resident tier accepts:
// conversion-tile and digit scratch (tens of KB) ride it, full ring-degree
// polynomials at production N do not — pinning those across every pool in a
// long-lived process trades the stray bytes/op they'd occasionally cost for
// megabytes of heap that every later workload pays for.
const bufPoolResidentMaxWords = 1 << 15

// Get returns a length-n scratch slice with arbitrary contents. The caller
// must overwrite before reading.
func (bp *BufPool) Get(n int) []uint64 { return bp.GetShard(0, n) }

// GetShard is Get routed to the resident shard named by the caller's
// partition index (any non-negative value; it is masked down). Parallel
// kernel partitions pass their partition index so concurrent scratch traffic
// spreads across shard mutexes.
func (bp *BufPool) GetShard(shard, n int) []uint64 {
	s := &bp.shards[shard&(bufPoolShards-1)]
	s.mu.Lock()
	for i := len(s.resident) - 1; i >= 0; i-- {
		b := s.resident[i]
		if cap(b) >= n {
			last := len(s.resident) - 1
			s.resident[i] = s.resident[last]
			s.resident[last] = nil
			s.resident = s.resident[:last]
			s.mu.Unlock()
			return b[:n]
		}
	}
	s.mu.Unlock()
	if v := bp.bufs.Get(); v != nil {
		h := v.(*[]uint64)
		b := *h
		*h = nil
		bp.hdrs.Put(h)
		if cap(b) >= n {
			return b[:n]
		}
		// Wrong shape (pool shared across sizes during warmup): drop it.
	}
	return make([]uint64, n)
}

// Put returns a buffer obtained from Get to the pool.
func (bp *BufPool) Put(b []uint64) { bp.PutShard(0, b) }

// PutShard returns a buffer to the resident shard named by the caller's
// partition index (pair with GetShard; the pairing is a contention hint, not
// a correctness requirement — any buffer may come back through any shard).
func (bp *BufPool) PutShard(shard int, b []uint64) {
	if b == nil {
		return
	}
	if poolDebug.Load() {
		for i := range b {
			b[i] = poolPoison
		}
	}
	if cap(b) <= bufPoolResidentMaxWords {
		s := &bp.shards[shard&(bufPoolShards-1)]
		s.mu.Lock()
		if len(s.resident) < bufPoolResident {
			s.resident = append(s.resident, b[:cap(b)])
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
	}
	var h *[]uint64
	if v := bp.hdrs.Get(); v != nil {
		h = v.(*[]uint64)
	} else {
		h = new([]uint64)
	}
	*h = b[:cap(b)]
	bp.bufs.Put(h)
}

// polyPool recycles *Poly values of one fixed level.
type polyPool struct {
	level int
	pool  sync.Pool
}

// pools returns the per-level poly pools, building them on first use.
// Construction is cheap (no buffers are allocated until Borrow misses), so
// racing initializers at worst build the slice twice; the atomic pointer
// keeps readers safe.
func (r *Ring) pools() []*polyPool {
	if ps := r.polyPools.Load(); ps != nil {
		return *ps
	}
	ps := make([]*polyPool, len(r.SubRings))
	for l := range ps {
		ps[l] = &polyPool{level: l}
	}
	r.polyPools.CompareAndSwap(nil, &ps)
	return *r.polyPools.Load()
}

// Borrow returns a level-shaped polynomial from the ring's arena with
// arbitrary contents (use BorrowZero when the caller accumulates into it).
// Release it when done; polys that escape to callers unaware of the arena
// may simply be dropped — the GC reclaims them like any other Poly.
func (r *Ring) Borrow(level int) *Poly {
	p := r.pools()[level]
	if v := p.pool.Get(); v != nil {
		q := v.(*Poly)
		q.released = false
		if poolDebug.Load() {
			q.borrowPC, _, _, _ = runtime.Caller(1)
		}
		return q
	}
	q := r.NewPoly(level)
	if poolDebug.Load() {
		q.borrowPC, _, _, _ = runtime.Caller(1)
	}
	return q
}

// BorrowZero is Borrow with all coefficients cleared.
func (r *Ring) BorrowZero(level int) *Poly {
	p := r.Borrow(level)
	r.Zero(level, p)
	return p //alchemist:owns arena entry point: the caller inherits the release obligation
}

// Release returns a polynomial obtained from Borrow (or NewPoly — any poly
// of a shape this ring produces) to the arena. The caller must not touch p
// afterwards. Releasing the same poly twice corrupts the arena (two Borrows
// would alias one buffer); under SetPoolDebug it panics instead.
func (r *Ring) Release(p *Poly) {
	if p == nil || len(p.Coeffs) == 0 || len(p.Coeffs) > len(r.SubRings) {
		return
	}
	if len(p.Coeffs[0]) != r.N {
		return // foreign shape; let the GC have it
	}
	if poolDebug.Load() {
		if p.released {
			msg := "ring: double Release of pooled Poly"
			if p.borrowPC != 0 {
				if fn := runtime.FuncForPC(p.borrowPC); fn != nil {
					file, line := fn.FileLine(p.borrowPC)
					msg = fmt.Sprintf("%s (borrowed at %s:%d)", msg, filepath.Base(file), line)
				}
			}
			panic(msg)
		}
		for i := range p.Coeffs {
			c := p.Coeffs[i]
			for j := range c {
				c[j] = poolPoison
			}
		}
	}
	p.released = true
	r.pools()[p.Level()].pool.Put(p)
}

// Scratch returns a single degree-N channel buffer from the ring's raw
// arena (arbitrary contents; pair with ReleaseScratch).
func (r *Ring) Scratch() []uint64 { return r.buf.Get(r.N) }

// ReleaseScratch returns a Scratch buffer to the arena.
func (r *Ring) ReleaseScratch(b []uint64) { r.buf.Put(b) }

package ring

import (
	"strings"
	"testing"

	"alchemist/internal/modmath"
)

// Arena semantics tests: the pools hand back arbitrary contents by contract,
// so these pin the structural guarantees (shape, reuse, poisoning) rather
// than values.

func poolRing(t *testing.T) *Ring {
	t.Helper()
	const n = 64
	primes, err := modmath.GenerateNTTPrimes(40, uint64(2*n), 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBufPoolReusesAndResizes(t *testing.T) {
	var bp BufPool
	b := bp.Get(128)
	if len(b) != 128 {
		t.Fatalf("Get(128) returned len %d", len(b))
	}
	b[0] = 42
	bp.Put(b)
	// Same-size request must reuse the buffer (single-goroutine sync.Pool
	// round trip hits the private slot deterministically).
	c := bp.Get(128)
	if &c[0] != &b[0] {
		t.Error("same-size Get after Put did not reuse the buffer")
	}
	bp.Put(c)
	// A larger request must not hand back the too-small buffer.
	d := bp.Get(256)
	if len(d) != 256 {
		t.Fatalf("Get(256) returned len %d", len(d))
	}
	if cap(d) < 256 {
		t.Fatalf("Get(256) returned cap %d", cap(d))
	}
	// Shrinking requests reslice the big buffer rather than allocating.
	bp.Put(d)
	e := bp.Get(100)
	if len(e) != 100 {
		t.Fatalf("Get(100) returned len %d", len(e))
	}
	if &e[0] != &d[0] {
		t.Error("smaller Get after Put did not reslice the pooled buffer")
	}
}

func TestBufPoolPutNilIsNoop(t *testing.T) {
	var bp BufPool
	bp.Put(nil) // must not panic or pool a nil buffer
	if b := bp.Get(8); len(b) != 8 {
		t.Fatalf("Get(8) after Put(nil) returned len %d", len(b))
	}
}

func TestBufPoolPoison(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)
	if !PoolDebug() {
		t.Fatal("SetPoolDebug(true) did not stick")
	}
	var bp BufPool
	b := bp.Get(16)
	for i := range b {
		b[i] = uint64(i)
	}
	bp.Put(b)
	for i, v := range b[:16] {
		if v != poolPoison {
			t.Fatalf("released buffer word %d = %#x, want poison %#x", i, v, uint64(poolPoison))
		}
	}
}

func TestBorrowReleaseShapes(t *testing.T) {
	r := poolRing(t)
	for level := 0; level <= r.MaxLevel(); level++ {
		p := r.Borrow(level)
		if p.Level() != level {
			t.Fatalf("Borrow(%d) returned level %d", level, p.Level())
		}
		for i := range p.Coeffs {
			if len(p.Coeffs[i]) != r.N {
				t.Fatalf("Borrow(%d) channel %d has degree %d", level, i, len(p.Coeffs[i]))
			}
		}
		r.Release(p)
	}
	// A released poly must come back at the same level, never another.
	a := r.Borrow(1)
	r.Release(a)
	b := r.Borrow(0)
	if b == a {
		t.Error("Borrow(0) returned a level-1 poly")
	}
	c := r.Borrow(1)
	if c != a {
		t.Error("Borrow(1) did not reuse the released level-1 poly")
	}
}

func TestBorrowZeroClears(t *testing.T) {
	r := poolRing(t)
	level := r.MaxLevel()
	p := r.Borrow(level)
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = 7
		}
	}
	r.Release(p)
	z := r.BorrowZero(level)
	for i := range z.Coeffs {
		for j, v := range z.Coeffs[i] {
			if v != 0 {
				t.Fatalf("BorrowZero channel %d word %d = %d", i, j, v)
			}
		}
	}
	r.Release(z)
}

func TestReleaseRejectsForeignShapes(t *testing.T) {
	r := poolRing(t)
	r.Release(nil) // must not panic

	// Wrong degree: a poly from a different ring must not enter the arena.
	primes, err := modmath.GenerateNTTPrimes(40, uint64(2*128), 2)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewRing(128, primes)
	if err != nil {
		t.Fatal(err)
	}
	foreign := other.NewPoly(0)
	r.Release(foreign)
	got := r.Borrow(0)
	if got == foreign {
		t.Error("arena accepted a poly of foreign degree")
	}
}

func TestReleasePoisonsPoly(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)
	r := poolRing(t)
	p := r.Borrow(1)
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = uint64(j)
		}
	}
	r.Release(p)
	for i := range p.Coeffs {
		for j, v := range p.Coeffs[i] {
			if v != poolPoison {
				t.Fatalf("released poly channel %d word %d = %#x, want poison", i, j, v)
			}
		}
	}
}

func TestDoubleReleasePanicsUnderDebug(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)
	r := poolRing(t)
	p := r.Borrow(1)
	r.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double Release of a pooled Poly did not panic under SetPoolDebug")
		}
	}()
	r.Release(p)
}

func TestDoubleReleaseReportsBorrowSite(t *testing.T) {
	// The runtime diagnostic must speak the static checker's vocabulary: the
	// panic names the Borrow call site that issued the poly, so a crash in a
	// deep kernel points straight at the obligation the arena-lifetime rule
	// tracks.
	SetPoolDebug(true)
	defer SetPoolDebug(false)
	r := poolRing(t)
	p := r.Borrow(1) // the panic below must cite this line
	r.Release(p)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("double Release did not panic under SetPoolDebug")
		}
		msg, ok := v.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", v)
		}
		if !strings.Contains(msg, "borrowed at pool_test.go:") {
			t.Fatalf("panic %q does not cite the borrow call site", msg)
		}
	}()
	r.Release(p)
}

func TestDoubleReleaseSilentWithoutDebug(t *testing.T) {
	// Without the debug mode the arena keeps its historical tolerance (the
	// release is still wrong, but production code must not crash); the
	// released flag is cleared by the next Borrow either way.
	r := poolRing(t)
	p := r.Borrow(1)
	r.Release(p)
	r.Release(p)
	q := r.Borrow(1)
	if q.released {
		t.Fatal("Borrow returned a poly still marked released")
	}
	r.Release(q)
}

func TestCloseBeforeAnyParallelUse(t *testing.T) {
	// Close on a ring whose worker pool was never initialized (no parallel
	// transform ever ran) must be a no-op, and stay idempotent.
	r := poolRing(t)
	r.Close()
	r.Close()
	p := r.Borrow(0)
	r.Release(p)
}

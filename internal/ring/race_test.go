package ring

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"alchemist/internal/modmath"
	"alchemist/internal/prng"
)

// Race stress tests: a single Ring's precomputed tables (twiddles, Barrett
// and Montgomery state) are shared read-only across goroutines, and the
// channel-parallel NTT fans work out internally. Run under -race these
// exercise both layers of concurrency at once.

func raceRing(t *testing.T) *Ring {
	t.Helper()
	const n = 256
	primes, err := modmath.GenerateNTTPrimes(40, uint64(2*n), 6)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestConcurrentNTTSharedRing hammers one worker-enabled Ring from many
// goroutines, each transforming its own polynomial. The NTT's internal
// fan-out nests inside the outer goroutines, so worker bookkeeping bugs
// (shared scratch, non-reentrant channel pools) show up as races or
// round-trip corruption.
func TestConcurrentNTTSharedRing(t *testing.T) {
	r := raceRing(t)
	r.SetWorkers(4)
	level := r.MaxLevel()

	const goroutines = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := NewSampler(r, int64(1000+g))
			p := r.NewPoly(level)
			s.Uniform(level, p)
			want := r.Clone(level, p)
			for i := 0; i < rounds; i++ {
				r.NTT(level, p)
				r.INTT(level, p)
			}
			if !r.Equal(level, want, p) {
				errs <- "NTT/INTT round trip corrupted under concurrency"
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestConcurrentMulPolySharedRing exercises the full negacyclic convolution
// (forward transforms, pointwise Shoup products, inverse transform) from
// concurrent goroutines sharing one Ring.
func TestConcurrentMulPolySharedRing(t *testing.T) {
	r := raceRing(t)
	r.SetWorkers(2)
	level := r.MaxLevel()

	const goroutines = 6
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := NewSampler(r, int64(2000+g))
			a := r.NewPoly(level)
			one := r.NewPoly(level)
			out := r.NewPoly(level)
			s.Uniform(level, a)
			for i := range one.Coeffs {
				one.Coeffs[i][0] = 1 // multiplicative identity
			}
			for i := 0; i < 10; i++ {
				r.MulPoly(level, a, one, out)
			}
			if !r.Equal(level, a, out) {
				errs <- "a * 1 != a under concurrent MulPoly"
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestConcurrentSamplersIndependent verifies per-goroutine samplers over a
// shared ring are independent: identical seeds must reproduce identical
// streams regardless of interleaving with other goroutines.
func TestConcurrentSamplersIndependent(t *testing.T) {
	r := raceRing(t)
	level := r.MaxLevel()

	ref := r.NewPoly(level)
	NewSampler(r, 7).Uniform(level, ref)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := r.NewPoly(level)
			q := r.NewPoly(level)
			s := NewSamplerFromSource(r, prng.New(7))
			noise := NewSampler(r, int64(g))
			for i := 0; i < 5; i++ {
				noise.Gaussian(level, 3.2, q) // interleaved traffic
			}
			s.Uniform(level, p)
			if !r.Equal(level, ref, p) {
				errs <- "seeded sampler stream diverged across goroutines"
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestSetWorkersWhileTransforming retunes the worker count from one
// goroutine while others run transforms on the same Ring. SetWorkers is
// documented race-safe: every forEachChannel snapshot reads the count once,
// so retuning mid-flight may change parallelism but never correctness.
func TestSetWorkersWhileTransforming(t *testing.T) {
	r := raceRing(t)
	level := r.MaxLevel()

	stop := make(chan struct{})
	var tuner sync.WaitGroup
	tuner.Add(1)
	go func() {
		defer tuner.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.SetWorkers(1 + i%8)
		}
	}()

	const goroutines = 4
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := r.NewPoly(level)
			NewSampler(r, int64(40+g)).Uniform(level, p)
			want := r.Clone(level, p)
			for i := 0; i < 15; i++ {
				r.NTT(level, p)
				r.INTT(level, p)
			}
			if !r.Equal(level, want, p) {
				errs <- "round trip corrupted while retuning workers"
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	tuner.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if w := r.Workers(); w < 1 || w > 8 {
		t.Fatalf("Workers() = %d after tuning in [1,8]", w)
	}
}

// waitGoroutines polls until the live goroutine count drops to want (workers
// broadcast completion while still holding the pool lock, so the count can
// lag Close by a scheduler beat).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, want ≤ %d", runtime.NumGoroutine(), want)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestCloseReleasesWorkers pins the resident pool's lifecycle: parallel
// transforms spawn worker goroutines, Close tears every one of them down,
// and the ring stays usable (serial, then respawning) afterwards. The
// worker count is clamped to GOMAXPROCS at spawn, so the test raises it —
// single-CPU CI machines would otherwise never spawn a helper.
func TestCloseReleasesWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	base := runtime.NumGoroutine()
	r := raceRing(t)
	r.SetWorkers(4)
	level := r.MaxLevel()
	p := r.NewPoly(level)
	NewSampler(r, 9).Uniform(level, p)
	want := r.Clone(level, p)

	r.NTT(level, p)
	r.INTT(level, p)
	if n := runtime.NumGoroutine(); n <= base {
		t.Fatalf("parallel transform spawned no workers (%d goroutines, base %d)", n, base)
	}

	r.Close()
	waitGoroutines(t, base)

	// Still usable after Close: transforms respawn workers on demand.
	r.NTT(level, p)
	r.INTT(level, p)
	if !r.Equal(level, want, p) {
		t.Fatal("round trip corrupted after Close")
	}
	r.Close()
	r.Close() // idempotent
	waitGoroutines(t, base)
}

// TestCloseConcurrentWithTransforms drives Close from one goroutine while
// others keep transforming: outstanding jobs must finish, and no goroutine
// may survive the final Close.
func TestCloseConcurrentWithTransforms(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	base := runtime.NumGoroutine()
	r := raceRing(t)
	r.SetWorkers(3)
	level := r.MaxLevel()

	var wg sync.WaitGroup
	errs := make(chan string, 4)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := r.NewPoly(level)
			NewSampler(r, int64(70+g)).Uniform(level, p)
			want := r.Clone(level, p)
			for i := 0; i < 10; i++ {
				r.NTT(level, p)
				r.INTT(level, p)
			}
			if !r.Equal(level, want, p) {
				errs <- "round trip corrupted while closing concurrently"
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			r.Close()
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	r.Close()
	waitGoroutines(t, base)
}

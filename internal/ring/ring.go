package ring

import (
	"fmt"
	"math/big"
	"math/bits"
	"sync"
	"sync/atomic"

	"alchemist/internal/modmath"
)

// Ring is an RNS polynomial ring: the direct product of SubRings sharing the
// same degree N, one per RNS modulus. Operations take an explicit level l and
// touch subrings 0..l, mirroring the leveled structure of CKKS; TFHE uses a
// single-level ring.
type Ring struct {
	SubRings []*SubRing
	N        int
	Moduli   []uint64

	// workers is the goroutine count for channel-parallel transforms
	// (0 or 1 = single-threaded; see SetWorkers). Atomic so a Ring shared
	// by concurrent evaluators can be retuned while transforms run.
	workers atomic.Int32

	// pool holds the resident worker goroutines (parallel.go) and the
	// scratch arenas (pool.go). Both are lazy: a serial, arena-free ring
	// pays nothing for them.
	pool      workerPool
	polyPools atomic.Pointer[[]*polyPool]
	buf       BufPool

	// permCache maps Galois element k → NTT-domain index permutation
	// (automorphism.go); an evaluation reuses a small, fixed key set.
	permCache sync.Map

	// lazyCap bounds how many unreduced q²-sized terms an Acc128 may hold
	// before it must flush: 1 << (64 - bits.Len64(max modulus)), the largest
	// m with m·q ≤ 2^64 for every channel (lazy128.go).
	lazyCap int
}

// NewRing builds an RNS ring of degree n over the given prime moduli.
func NewRing(n int, moduli []uint64) (*Ring, error) {
	if len(moduli) == 0 {
		return nil, fmt.Errorf("ring: no moduli")
	}
	seen := map[uint64]bool{}
	r := &Ring{N: n, Moduli: append([]uint64(nil), moduli...)}
	maxQ := uint64(0)
	for _, q := range moduli {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate modulus %d", q)
		}
		seen[q] = true
		s, err := NewSubRing(n, q)
		if err != nil {
			return nil, err
		}
		r.SubRings = append(r.SubRings, s)
		if q > maxQ {
			maxQ = q
		}
	}
	// NewBarrett caps moduli below 2^62, so lazyCap ≥ 4: an accumulator can
	// always take at least one product after a flush (lazy128.go).
	r.lazyCap = 1 << (64 - bits.Len64(maxQ))
	return r, nil
}

// MaxLevel returns the highest valid level (len(moduli)-1).
func (r *Ring) MaxLevel() int { return len(r.SubRings) - 1 }

// Modulus returns the product of the moduli at levels 0..level as a big.Int.
func (r *Ring) Modulus(level int) *big.Int {
	m := big.NewInt(1)
	for i := 0; i <= level; i++ {
		m.Mul(m, new(big.Int).SetUint64(r.Moduli[i]))
	}
	return m
}

// Poly is an RNS polynomial: Coeffs[i][j] is coefficient j modulo moduli[i].
type Poly struct {
	Coeffs [][]uint64

	// released marks a poly currently resident in a ring arena. Release sets
	// it, Borrow clears it; under SetPoolDebug a second Release of the same
	// poly panics instead of corrupting the pool with a double entry (the two
	// later Borrows would alias one buffer).
	released bool

	// borrowPC is the call site of the Borrow that issued this poly, captured
	// only under SetPoolDebug so a double-Release panic can name the borrow
	// the way the static arena-lifetime findings do ("borrowed at …").
	borrowPC uintptr
}

// NewPoly allocates a zero polynomial with level+1 RNS components.
func (r *Ring) NewPoly(level int) *Poly {
	p := &Poly{Coeffs: make([][]uint64, level+1)}
	backing := make([]uint64, (level+1)*r.N)
	for i := range p.Coeffs {
		p.Coeffs[i], backing = backing[:r.N:r.N], backing[r.N:]
	}
	return p
}

// Level returns the polynomial's level (number of RNS components - 1).
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// Zero clears p at levels 0..level.
func (r *Ring) Zero(level int, p *Poly) {
	for i := 0; i <= level; i++ {
		c := p.Coeffs[i]
		for j := range c {
			c[j] = 0
		}
	}
}

// CopyLevel copies src into dst at levels 0..level.
func (r *Ring) CopyLevel(level int, src, dst *Poly) {
	for i := 0; i <= level; i++ {
		copy(dst.Coeffs[i], src.Coeffs[i])
	}
}

// Clone returns a deep copy of p restricted to levels 0..level.
func (r *Ring) Clone(level int, p *Poly) *Poly {
	out := r.NewPoly(level)
	r.CopyLevel(level, p, out)
	return out
}

// Equal reports whether a and b agree at levels 0..level.
func (r *Ring) Equal(level int, a, b *Poly) bool {
	for i := 0; i <= level; i++ {
		for j := 0; j < r.N; j++ {
			if a.Coeffs[i][j] != b.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// NTT transforms p in place at levels 0..level (lazy-reduction kernel,
// limb-parallel when SetWorkers enabled it). The serial guard and the op-
// coded job keep the steady state allocation-free either way.
//
//alchemist:hot
func (r *Ring) NTT(level int, p *Poly) {
	if parts := r.parWidth(level + 1); parts > 1 {
		j := r.getJob()
		j.op, j.a, j.tasks = opNTT, p, level+1
		r.runParallel(j, parts)
		return
	}
	for i := 0; i <= level; i++ {
		r.SubRings[i].NTTLazy(p.Coeffs[i])
	}
}

// INTT transforms p back to coefficient order in place at levels 0..level
// (lazy-reduction kernel, limb-parallel when SetWorkers enabled it).
//
//alchemist:hot
func (r *Ring) INTT(level int, p *Poly) {
	if parts := r.parWidth(level + 1); parts > 1 {
		j := r.getJob()
		j.op, j.a, j.tasks = opINTT, p, level+1
		r.runParallel(j, parts)
		return
	}
	for i := 0; i <= level; i++ {
		r.SubRings[i].INTTLazy(p.Coeffs[i])
	}
}

// elemParWidth is parWidth gated on the degree floor for the elementwise
// kernels: one limb of a small ring is less work than the submit/barrier
// handshake, so those stay serial regardless of the worker setting.
func (r *Ring) elemParWidth(tasks int) int {
	if r.N < minElemParN {
		return 1
	}
	return r.parWidth(tasks)
}

// Add sets out = a + b at levels 0..level.
func (r *Ring) Add(level int, a, b, out *Poly) {
	if parts := r.elemParWidth(level + 1); parts > 1 {
		j := r.getJob()
		j.op, j.a, j.b, j.out, j.tasks = opAdd, a, b, out, level+1
		r.runParallel(j, parts)
		return
	}
	for i := 0; i <= level; i++ {
		r.SubRings[i].Add(a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
	}
}

// Sub sets out = a - b at levels 0..level.
func (r *Ring) Sub(level int, a, b, out *Poly) {
	if parts := r.elemParWidth(level + 1); parts > 1 {
		j := r.getJob()
		j.op, j.a, j.b, j.out, j.tasks = opSub, a, b, out, level+1
		r.runParallel(j, parts)
		return
	}
	for i := 0; i <= level; i++ {
		r.SubRings[i].Sub(a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
	}
}

// Neg sets out = -a at levels 0..level.
func (r *Ring) Neg(level int, a, out *Poly) {
	if parts := r.elemParWidth(level + 1); parts > 1 {
		j := r.getJob()
		j.op, j.a, j.out, j.tasks = opNeg, a, out, level+1
		r.runParallel(j, parts)
		return
	}
	for i := 0; i <= level; i++ {
		r.SubRings[i].Neg(a.Coeffs[i], out.Coeffs[i])
	}
}

// MulCoeffs sets out = a ⊙ b (pointwise, NTT domain) at levels 0..level.
func (r *Ring) MulCoeffs(level int, a, b, out *Poly) {
	if parts := r.elemParWidth(level + 1); parts > 1 {
		j := r.getJob()
		j.op, j.a, j.b, j.out, j.tasks = opMul, a, b, out, level+1
		r.runParallel(j, parts)
		return
	}
	for i := 0; i <= level; i++ {
		r.SubRings[i].MulCoeffs(a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
	}
}

// MulCoeffsAndAdd sets out += a ⊙ b (pointwise, NTT domain) at levels 0..level.
func (r *Ring) MulCoeffsAndAdd(level int, a, b, out *Poly) {
	if parts := r.elemParWidth(level + 1); parts > 1 {
		j := r.getJob()
		j.op, j.a, j.b, j.out, j.tasks = opMulAdd, a, b, out, level+1
		r.runParallel(j, parts)
		return
	}
	for i := 0; i <= level; i++ {
		r.SubRings[i].MulCoeffsAndAdd(a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
	}
}

// MulScalar sets out = c·a at levels 0..level, c given as a uint64 applied in
// every RNS channel.
func (r *Ring) MulScalar(level int, a *Poly, c uint64, out *Poly) {
	if parts := r.elemParWidth(level + 1); parts > 1 {
		j := r.getJob()
		j.op, j.a, j.out, j.scalar, j.tasks = opMulScalar, a, out, c, level+1
		r.runParallel(j, parts)
		return
	}
	for i := 0; i <= level; i++ {
		r.SubRings[i].MulScalar(a.Coeffs[i], c, out.Coeffs[i])
	}
}

// MulScalarBig sets out = c·a at levels 0..level for a big.Int constant.
func (r *Ring) MulScalarBig(level int, a *Poly, c *big.Int, out *Poly) {
	tmp := new(big.Int)
	for i := 0; i <= level; i++ {
		qi := new(big.Int).SetUint64(r.Moduli[i])
		ci := tmp.Mod(c, qi)
		if ci.Sign() < 0 {
			ci.Add(ci, qi)
		}
		r.SubRings[i].MulScalar(a.Coeffs[i], ci.Uint64(), out.Coeffs[i])
	}
}

// MulPoly computes out = a·b in R_q at levels 0..level via NTT, leaving all
// arguments in the coefficient domain. Convenience wrapper used in tests and
// reference paths; scratch comes from the ring arena.
func (r *Ring) MulPoly(level int, a, b, out *Poly) {
	an := r.Borrow(level)
	bn := r.Borrow(level)
	r.CopyLevel(level, a, an)
	r.CopyLevel(level, b, bn)
	r.NTT(level, an)
	r.NTT(level, bn)
	r.MulCoeffs(level, an, bn, an)
	r.INTT(level, an)
	r.CopyLevel(level, an, out)
	r.Release(an)
	r.Release(bn)
}

// PolyToBigCoeffs reconstructs coefficient j of p (levels 0..level) over the
// full modulus via CRT. Reference path for tests.
func (r *Ring) PolyToBigCoeffs(level int, p *Poly) []*big.Int {
	moduli := r.Moduli[:level+1]
	out := make([]*big.Int, r.N)
	res := make([]uint64, level+1)
	for j := 0; j < r.N; j++ {
		for i := 0; i <= level; i++ {
			res[i] = p.Coeffs[i][j]
		}
		out[j] = modmath.CRTReconstruct(res, moduli)
	}
	return out
}

// SetBigCoeffs sets p from full-precision coefficients (reduced mod each q_i).
func (r *Ring) SetBigCoeffs(level int, coeffs []*big.Int, p *Poly) {
	moduli := r.Moduli[:level+1]
	for j := 0; j < r.N && j < len(coeffs); j++ {
		res := modmath.CRTDecompose(coeffs[j], moduli)
		for i := 0; i <= level; i++ {
			p.Coeffs[i][j] = res[i]
		}
	}
}

package ring

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"alchemist/internal/modmath"
)

func testRing(t testing.TB, n int, nMod int) *Ring {
	t.Helper()
	primes, err := modmath.GenerateNTTPrimes(40, uint64(2*n), nMod)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func randPoly(r *Ring, level int, seed int64) *Poly {
	p := r.NewPoly(level)
	NewSampler(r, seed).Uniform(level, p)
	return p
}

func TestNewSubRingValidation(t *testing.T) {
	if _, err := NewSubRing(3, 12289); err == nil {
		t.Error("expected error for non-power-of-two degree")
	}
	if _, err := NewSubRing(1024, 12288); err == nil {
		t.Error("expected error for composite modulus")
	}
	// 7681 = 1 + 512*15: supports N=256 (2N=512) but not N=1024.
	if _, err := NewSubRing(1024, 7681); err == nil {
		t.Error("expected error for q not 1 mod 2N")
	}
	if _, err := NewSubRing(256, 7681); err != nil {
		t.Errorf("expected success for N=256, q=7681: %v", err)
	}
}

func TestNTTRoundTrip(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		r := testRing(t, n, 3)
		level := r.MaxLevel()
		p := randPoly(r, level, 42)
		orig := r.Clone(level, p)
		r.NTT(level, p)
		if r.Equal(level, p, orig) {
			t.Fatalf("N=%d: NTT was identity", n)
		}
		r.INTT(level, p)
		if !r.Equal(level, p, orig) {
			t.Fatalf("N=%d: NTT/INTT round trip failed", n)
		}
	}
}

func TestNTTConvolutionTheorem(t *testing.T) {
	for _, n := range []int{16, 128, 512} {
		r := testRing(t, n, 2)
		level := r.MaxLevel()
		a := randPoly(r, level, 1)
		b := randPoly(r, level, 2)
		// Reference: schoolbook negacyclic convolution per subring.
		want := r.NewPoly(level)
		for i := 0; i <= level; i++ {
			r.SubRings[i].NegacyclicConvolve(a.Coeffs[i], b.Coeffs[i], want.Coeffs[i])
		}
		got := r.NewPoly(level)
		r.MulPoly(level, a, b, got)
		if !r.Equal(level, got, want) {
			t.Fatalf("N=%d: NTT convolution != schoolbook", n)
		}
	}
}

func TestNTTLinearity(t *testing.T) {
	r := testRing(t, 256, 2)
	level := r.MaxLevel()
	f := func(seedA, seedB int64) bool {
		a := randPoly(r, level, seedA)
		b := randPoly(r, level, seedB)
		sum := r.NewPoly(level)
		r.Add(level, a, b, sum)
		r.NTT(level, sum) // NTT(a+b)
		r.NTT(level, a)
		r.NTT(level, b)
		sum2 := r.NewPoly(level)
		r.Add(level, a, b, sum2) // NTT(a)+NTT(b)
		return r.Equal(level, sum, sum2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPolyArithmeticIdentities(t *testing.T) {
	r := testRing(t, 128, 3)
	level := r.MaxLevel()
	a := randPoly(r, level, 10)
	zero := r.NewPoly(level)
	out := r.NewPoly(level)

	r.Add(level, a, zero, out)
	if !r.Equal(level, out, a) {
		t.Error("a + 0 != a")
	}
	r.Sub(level, a, a, out)
	if !r.Equal(level, out, zero) {
		t.Error("a - a != 0")
	}
	neg := r.NewPoly(level)
	r.Neg(level, a, neg)
	r.Add(level, a, neg, out)
	if !r.Equal(level, out, zero) {
		t.Error("a + (-a) != 0")
	}
	r.MulScalar(level, a, 1, out)
	if !r.Equal(level, out, a) {
		t.Error("1 * a != a")
	}
}

func TestBigCoeffsRoundTrip(t *testing.T) {
	r := testRing(t, 64, 3)
	level := r.MaxLevel()
	p := randPoly(r, level, 7)
	big := r.PolyToBigCoeffs(level, p)
	q := r.NewPoly(level)
	r.SetBigCoeffs(level, big, q)
	if !r.Equal(level, p, q) {
		t.Fatal("big.Int round trip failed")
	}
}

func TestAutomorphismComposition(t *testing.T) {
	r := testRing(t, 128, 2)
	level := r.MaxLevel()
	a := randPoly(r, level, 3)
	// φ_k1 ∘ φ_k2 == φ_{k1·k2 mod 2N}.
	k1, k2 := uint64(5), uint64(25)
	t1 := r.NewPoly(level)
	t2 := r.NewPoly(level)
	r.Automorphism(level, a, k2, t1)
	r.Automorphism(level, t1, k1, t2)
	want := r.NewPoly(level)
	r.Automorphism(level, a, k1*k2%(uint64(2*r.N)), want)
	if !r.Equal(level, t2, want) {
		t.Fatal("automorphism composition failed")
	}
	// φ_1 is the identity.
	r.Automorphism(level, a, 1, t1)
	if !r.Equal(level, t1, a) {
		t.Fatal("φ_1 != identity")
	}
}

func TestAutomorphismIsRingHom(t *testing.T) {
	// φ_k(a·b) == φ_k(a)·φ_k(b) in the negacyclic ring.
	r := testRing(t, 64, 2)
	level := r.MaxLevel()
	a := randPoly(r, level, 4)
	b := randPoly(r, level, 5)
	k := uint64(5)
	ab := r.NewPoly(level)
	r.MulPoly(level, a, b, ab)
	left := r.NewPoly(level)
	r.Automorphism(level, ab, k, left)

	fa, fb := r.NewPoly(level), r.NewPoly(level)
	r.Automorphism(level, a, k, fa)
	r.Automorphism(level, b, k, fb)
	right := r.NewPoly(level)
	r.MulPoly(level, fa, fb, right)
	if !r.Equal(level, left, right) {
		t.Fatal("automorphism is not a ring homomorphism")
	}
}

func TestSamplerDistributions(t *testing.T) {
	r := testRing(t, 1024, 1)
	s := NewSampler(r, 99)
	p := r.NewPoly(0)
	s.Ternary(0, 0.5, p)
	counts := map[int64]int{}
	for _, c := range p.Coeffs[0] {
		counts[SignedCoeff(c, r.Moduli[0])]++
	}
	for v := range counts {
		if v != -1 && v != 0 && v != 1 {
			t.Fatalf("ternary sample produced %d", v)
		}
	}
	if counts[0] < 350 || counts[0] > 700 {
		t.Errorf("ternary density off: %d zeros of 1024", counts[0])
	}
	s.Gaussian(0, 3.2, p)
	var sum, sumSq float64
	for _, c := range p.Coeffs[0] {
		v := float64(SignedCoeff(c, r.Moduli[0]))
		if v > 20 || v < -20 {
			t.Fatalf("gaussian sample out of truncation range: %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / 1024
	if mean > 0.5 || mean < -0.5 {
		t.Errorf("gaussian mean off: %v", mean)
	}
	std := sumSq / 1024
	if std < 5 || std > 16 { // sigma^2 = 10.24
		t.Errorf("gaussian variance off: %v", std)
	}
}

func TestBasisConverterAgainstCRT(t *testing.T) {
	n := 32
	src, err := modmath.GenerateNTTPrimes(40, uint64(2*n), 4)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := modmath.GenerateNTTPrimes(41, uint64(2*n), 3)
	if err != nil {
		t.Fatal(err)
	}
	bc := NewBasisConverter(src, dst)
	rng := rand.New(rand.NewSource(11))
	for level := 0; level < 4; level++ {
		Q := big.NewInt(1)
		for i := 0; i <= level; i++ {
			Q.Mul(Q, new(big.Int).SetUint64(src[i]))
		}
		in := make([][]uint64, level+1)
		for i := range in {
			in[i] = make([]uint64, n)
		}
		// Random x < Q, decomposed.
		xs := make([]*big.Int, n)
		for k := 0; k < n; k++ {
			xs[k] = new(big.Int).Rand(rng, Q)
			res := modmath.CRTDecompose(xs[k], src[:level+1])
			for i := 0; i <= level; i++ {
				in[i][k] = res[i]
			}
		}
		out := make([][]uint64, len(dst))
		for j := range out {
			out[j] = make([]uint64, n)
		}
		bc.Convert(level, in, out)
		// Result must equal x + u*Q mod p_j with 0 <= u <= level+1.
		for j, pj := range dst {
			pjb := new(big.Int).SetUint64(pj)
			for k := 0; k < n; k++ {
				got := out[j][k]
				ok := false
				for u := int64(0); u <= int64(level)+1; u++ {
					want := new(big.Int).Mul(Q, big.NewInt(u))
					want.Add(want, xs[k])
					want.Mod(want, pjb)
					if want.Uint64() == got {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("level %d: Bconv result %d not of form x+uQ mod %d", level, got, pj)
				}
			}
		}
	}
}

func TestModUpModDownRoundTrip(t *testing.T) {
	// ModDown(ModUp(x)·P ... ) — here we check the simpler contract:
	// ModDown applied to (x over Q, Bconv(x) over P) returns ~0 plus
	// rounding, and ModDown(P·x over QP) returns x exactly.
	n := 64
	qs, err := modmath.GenerateNTTPrimes(40, uint64(2*n), 4)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := modmath.GenerateNTTPrimes(41, uint64(2*n), 2)
	if err != nil {
		t.Fatal(err)
	}
	rQ, _ := NewRing(n, qs)
	rP, _ := NewRing(n, ps)
	ext := NewExtender(rQ, rP)
	level := rQ.MaxLevel()

	P := big.NewInt(1)
	for _, p := range ps {
		P.Mul(P, new(big.Int).SetUint64(p))
	}
	// x over Q, multiply by P exactly (per channel), extend P·x with zeros
	// over basis P (P·x ≡ 0 mod P), then ModDown must return exactly x.
	x := randPoly(rQ, level, 13)
	xP := rQ.NewPoly(level)
	rQ.MulScalarBig(level, x, P, xP)
	zeroP := rP.NewPoly(rP.MaxLevel())
	out := rQ.NewPoly(level)
	ext.ModDown(level, xP, zeroP, out)
	if !rQ.Equal(level, out, x) {
		t.Fatal("ModDown(P·x, 0) != x")
	}

	// Key-switching-shaped contract: a value y = P·m + e over the full QP
	// basis (m over Q, small e) ModDowns to m plus a small rounding error
	// bounded by the Bconv overshoot K plus e/P.
	m := randPoly(rQ, level, 14)
	rng := rand.New(rand.NewSource(15))
	yQ := rQ.NewPoly(level)
	rQ.MulScalarBig(level, m, P, yQ)
	yP := rP.NewPoly(rP.MaxLevel())
	for k := 0; k < n; k++ {
		e := int64(rng.Intn(1<<20) - 1<<19)
		for i := 0; i <= level; i++ {
			yQ.Coeffs[i][k] = modmath.AddMod(yQ.Coeffs[i][k], modmath.ReduceSigned(e, qs[i]), qs[i])
		}
		for j := range ps {
			yP.Coeffs[j][k] = modmath.ReduceSigned(e, ps[j])
		}
	}
	ext.ModDown(level, yQ, yP, out)
	maxErr := int64(len(ps)) + 2 // Bconv overshoot + rounding; e/P ≈ 0 here
	for i := 0; i <= level; i++ {
		qi := rQ.Moduli[i]
		for k := 0; k < n; k++ {
			diff := SignedCoeff(modmath.SubMod(out.Coeffs[i][k], m.Coeffs[i][k], qi), qi)
			if diff > maxErr || diff < -maxErr {
				t.Fatalf("ModDown(P·m+e) error too large: %d", diff)
			}
		}
	}
}

func TestRescaleByLastModulus(t *testing.T) {
	n := 32
	qs, err := modmath.GenerateNTTPrimes(40, uint64(2*n), 3)
	if err != nil {
		t.Fatal(err)
	}
	rQ, _ := NewRing(n, qs)
	rP, _ := NewRing(n, qs[:1]) // dummy P basis; rescale only needs Q tables
	_ = rP
	ext := NewExtender(rQ, rQ)
	level := rQ.MaxLevel()
	ql := qs[level]

	// Exact case: x = ql * y → rescale returns y exactly.
	y := randPoly(rQ, level-1, 21)
	x := rQ.NewPoly(level)
	yBig := rQ.PolyToBigCoeffs(level-1, y)
	for k := range yBig {
		yBig[k].Mul(yBig[k], new(big.Int).SetUint64(ql))
	}
	rQ.SetBigCoeffs(level, yBig, x)
	out := rQ.NewPoly(level - 1)
	ext.RescaleByLastModulus(level, x, out)
	if !rQ.Equal(level-1, out, y) {
		t.Fatal("rescale of exact multiple failed")
	}
}

func TestFourStepNTTMatchesDirectDFT(t *testing.T) {
	for _, tc := range []struct{ n, n1 int }{{16, 4}, {64, 8}, {256, 16}, {1024, 32}, {4096, 64}} {
		primes, err := modmath.GenerateNTTPrimes(40, uint64(2*tc.n), 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSubRing(tc.n, primes[0])
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		a := make([]uint64, tc.n)
		for i := range a {
			a[i] = rng.Uint64() % s.Q
		}
		got, err := s.FourStepNTT(a, tc.n1)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: X[k] = sum_j a[j] psi^(j(2k+1)) via Horner-free direct
		// evaluation (only for small N).
		if tc.n <= 256 {
			for k := 0; k < tc.n; k++ {
				pt := modmath.PowMod(s.Psi, uint64(2*k+1), s.Q)
				var acc, pw uint64 = 0, 1
				for j := 0; j < tc.n; j++ {
					acc = modmath.AddMod(acc, modmath.MulMod(a[j], pw, s.Q), s.Q)
					pw = modmath.MulMod(pw, pt, s.Q)
				}
				if acc != got[k] {
					t.Fatalf("N=%d n1=%d: four-step NTT mismatch at k=%d", tc.n, tc.n1, k)
				}
			}
		}
		// Round trip always.
		back, err := s.FourStepINTT(got, tc.n1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if back[i] != a[i] {
				t.Fatalf("N=%d n1=%d: four-step round trip failed at %d", tc.n, tc.n1, i)
			}
		}
	}
}

func TestFourStepMatchesBitrevNTT(t *testing.T) {
	// The in-place NTT outputs bit-reversed order; four-step outputs natural
	// order. They must agree up to that permutation.
	n := 256
	primes, err := modmath.GenerateNTTPrimes(40, uint64(2*n), 1)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSubRing(n, primes[0])
	rng := rand.New(rand.NewSource(77))
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % s.Q
	}
	natural, err := s.FourStepNTT(a, 16)
	if err != nil {
		t.Fatal(err)
	}
	inplace := append([]uint64(nil), a...)
	s.NTT(inplace)
	logN := log2(n)
	for i := 0; i < n; i++ {
		if inplace[int(bitrev(uint32(i), logN))] != natural[i] {
			t.Fatalf("bitrev(NTT) != four-step at %d", i)
		}
	}
}

func TestFourStepErrors(t *testing.T) {
	n := 64
	primes, _ := modmath.GenerateNTTPrimes(40, uint64(2*n), 1)
	s, _ := NewSubRing(n, primes[0])
	a := make([]uint64, n)
	if _, err := s.FourStepNTT(a, 3); err == nil {
		t.Error("expected error for n1 not dividing N")
	}
	if _, err := s.FourStepNTT(a, 0); err == nil {
		t.Error("expected error for n1=0")
	}
}

func BenchmarkNTT(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384, 65536} {
		primes, err := modmath.GenerateNTTPrimes(40, uint64(2*n), 1)
		if err != nil {
			b.Fatal(err)
		}
		s, _ := NewSubRing(n, primes[0])
		a := make([]uint64, n)
		rng := rand.New(rand.NewSource(1))
		for i := range a {
			a[i] = rng.Uint64() % s.Q
		}
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.NTT(a)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "N=big"
	default:
		return "N=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestAutomorphismNTTMatchesCoefficientDomain(t *testing.T) {
	// NTT(φ_k(a)) == AutomorphismNTT(NTT(a)) for every valid Galois element.
	r := testRing(t, 128, 2)
	level := r.MaxLevel()
	a := randPoly(r, level, 55)
	for _, k := range []uint64{1, 5, 25, uint64(2*r.N - 1), r.GaloisElementForRotation(7)} {
		viaCoeff := r.NewPoly(level)
		r.Automorphism(level, a, k, viaCoeff)
		r.NTT(level, viaCoeff)

		an := r.Clone(level, a)
		r.NTT(level, an)
		viaNTT := r.NewPoly(level)
		r.AutomorphismNTT(level, an, k, viaNTT)

		if !r.Equal(level, viaCoeff, viaNTT) {
			t.Fatalf("k=%d: NTT-domain automorphism disagrees", k)
		}
	}
}

package ring

import (
	"math/big"
	"math/bits"

	"alchemist/internal/modmath"
)

// BasisConverter implements the RNS basis conversion of eq. (1) in the paper
// (the HPS "fast basis conversion"):
//
//	Bconv([x]_Q, p_j) = ( Σ_{i=0}^{L-1} [[x]_{q_i} · q̂_i^{-1}]_{q_i} · q̂_i ) mod p_j
//
// where q̂_i = Q/q_i. The result equals x + u·Q for a small overshoot
// 0 ≤ u < L; the FHE schemes absorb this (ModUp noise, ModDown division).
// A converter is built once for a (source, target) moduli pair and supports
// any source level (prefix of the source basis).
type BasisConverter struct {
	Src, Dst []uint64
	// qiHatInv[l][i] = (Q_l/q_i)^{-1} mod q_i where Q_l = q_0…q_l.
	qiHatInv      [][]uint64
	qiHatInvShoup [][]uint64
	// qiHatInv52[l][i] is the base-2^52 Shoup precomputation of qiHatInv,
	// populated only when conv52 is set (the AVX512-IFMA conversion tier).
	qiHatInv52 [][]uint64
	// qiHat[l][i][j] = (Q_l/q_i) mod p_j.
	qiHat      [][][]uint64
	qiHatShoup [][][]uint64
	// qModP[l][j] = Q_l mod p_j, lazily built for ConvertExact.
	qModP [][]uint64
	// dstRed[j] is the Barrett state for p_j, used to fold source-channel
	// residues into the target channel without a raw %.
	dstRed []modmath.Barrett
	// scratch recycles the per-block y_i buffers of ConvertN/ConvertExact.
	scratch BufPool
	// lazyCap bounds the unreduced term count of the lazy step-2 accumulation
	// (decompose.go): the largest m with m·q_src ≤ 2^64 over all source
	// moduli, so a capacity-bounded sum stays inside Barrett.Reduce's
	// x < p_j·2^64 domain.
	lazyCap int
	// conv52 selects the AVX512-IFMA conversion kernels (decompose.go):
	// requires the IFMA tier plus every source AND target modulus below
	// 2^51, so step 1's lazy Shoup range [0, 2q) and every step-2 madd
	// operand fit base 2^52.
	conv52 bool
	// host, when set via BindScheduler, is the ring whose limb/block
	// scheduler fans the lazy conversion's coefficient tiles out across
	// workers. Nil (the default) keeps every conversion serial regardless
	// of any ring's worker setting.
	host *Ring
}

// convBlock is the coefficient tile width of the basis conversions: the
// per-source-channel y_i values for one tile (L channels × convBlock words)
// stay L1-resident across the whole target-channel accumulation, instead of
// streaming L full-degree buffers through the cache per target channel —
// the software counterpart of the accelerator's scratchpad-blocked Bconv.
const convBlock = 64

// NewBasisConverter precomputes conversion tables from basis src to basis dst.
func NewBasisConverter(src, dst []uint64) *BasisConverter {
	L := len(src)
	bc := &BasisConverter{
		Src:           append([]uint64(nil), src...),
		Dst:           append([]uint64(nil), dst...),
		qiHatInv:      make([][]uint64, L),
		qiHatInvShoup: make([][]uint64, L),
		qiHat:         make([][][]uint64, L),
		qiHatShoup:    make([][][]uint64, L),
		dstRed:        make([]modmath.Barrett, len(dst)),
	}
	for j, pj := range dst {
		bc.dstRed[j] = modmath.NewBarrett(pj)
	}
	maxSrc := uint64(0)
	for _, q := range src {
		if q > maxSrc {
			maxSrc = q
		}
	}
	bc.lazyCap = 1 << (64 - bits.Len64(maxSrc))
	bc.conv52 = useNTTKernIFMA && maxSrc < 1<<51
	for _, pj := range dst {
		if pj >= 1<<51 {
			bc.conv52 = false
		}
	}
	if bc.conv52 {
		bc.qiHatInv52 = make([][]uint64, L)
	}
	for l := 0; l < L; l++ {
		Ql := big.NewInt(1)
		for i := 0; i <= l; i++ {
			Ql.Mul(Ql, new(big.Int).SetUint64(src[i]))
		}
		bc.qiHatInv[l] = make([]uint64, l+1)
		bc.qiHatInvShoup[l] = make([]uint64, l+1)
		if bc.conv52 {
			bc.qiHatInv52[l] = make([]uint64, l+1)
		}
		bc.qiHat[l] = make([][]uint64, l+1)
		bc.qiHatShoup[l] = make([][]uint64, l+1)
		tmp := new(big.Int)
		for i := 0; i <= l; i++ {
			qi := new(big.Int).SetUint64(src[i])
			hat := new(big.Int).Div(Ql, qi)
			inv := tmp.Mod(hat, qi)
			invU := modmath.InvMod(inv.Uint64(), src[i])
			bc.qiHatInv[l][i] = invU
			bc.qiHatInvShoup[l][i] = modmath.ShoupPrecomp(invU, src[i])
			if bc.conv52 {
				bc.qiHatInv52[l][i] = shoup52(invU, src[i])
			}
			bc.qiHat[l][i] = make([]uint64, len(dst))
			bc.qiHatShoup[l][i] = make([]uint64, len(dst))
			for j, pj := range dst {
				pjb := new(big.Int).SetUint64(pj)
				h := new(big.Int).Mod(hat, pjb).Uint64()
				bc.qiHat[l][i][j] = h
				bc.qiHatShoup[l][i][j] = modmath.ShoupPrecomp(h, pj)
			}
		}
	}
	return bc
}

// BindScheduler attaches the converter to r's limb/block scheduler so the
// lazy conversions (ConvertLazyN, ConvertBoth) run tile-parallel under r's
// worker setting. The ring only supplies scheduling — any ring of the same
// degree works — so the evaluator contexts bind their main ring. Not safe to
// call concurrently with running conversions.
func (bc *BasisConverter) BindScheduler(r *Ring) { bc.host = r }

// Convert performs the basis conversion for every coefficient. in holds
// srcLevel+1 channels over the source moduli (coefficient domain); out must
// hold len(Dst) channels. Channels are independent slices of equal length.
func (bc *BasisConverter) Convert(srcLevel int, in, out [][]uint64) {
	bc.ConvertN(srcLevel, in, out, len(bc.Dst))
}

// ConvertN is Convert restricted to the first nDst target channels; the
// hybrid key switch uses it to skip target moduli above the working level.
// The conversion is tiled over convBlock coefficients (scratch from the
// converter's arena, no per-call allocation) and produces coefficients
// byte-identical to the untiled reference formula.
//
//alchemist:hot
func (bc *BasisConverter) ConvertN(srcLevel int, in, out [][]uint64, nDst int) {
	n := len(in[0])
	L := srcLevel + 1
	y := bc.scratch.Get(L * convBlock)
	hatRow, hatSRow := bc.qiHat[srcLevel], bc.qiHatShoup[srcLevel]
	for k0 := 0; k0 < n; k0 += convBlock {
		kn := n - k0
		if kn > convBlock {
			kn = convBlock
		}
		// Step 1 of Fig. 4(b): y_i = [x_i · q̂_i^{-1}]_{q_i}, per source
		// channel, for this tile (shared with the lazy variant).
		bc.convStep1(srcLevel, k0, kn, in, y)
		// Step 2: for each target channel, accumulate y_i · q̂_i mod p_j.
		// (On the accelerator this is a Meta-OP (M8A8)_L R8 per 8 outputs.)
		for j := 0; j < nDst; j++ {
			pj := bc.Dst[j]
			red := bc.dstRed[j]
			dst := out[j][k0 : k0+kn]
			for k := range dst {
				dst[k] = 0
			}
			for i := 0; i < L; i++ {
				h, hs := hatRow[i][j], hatSRow[i][j]
				yb := y[i*convBlock : i*convBlock+kn]
				qi := bc.Src[i]
				switch {
				case qi <= pj:
					// y_i < q_i ≤ p_j: already a residue of p_j.
					for k := range yb {
						dst[k] = modmath.AddMod(dst[k], modmath.MulModShoup(yb[k], h, hs, pj), pj)
					}
				case qi <= 2*pj:
					// One conditional subtraction replaces the Barrett fold.
					for k := range yb {
						dst[k] = modmath.AddMod(dst[k], modmath.MulModShoup(condSubMask(yb[k], pj), h, hs, pj), pj)
					}
				default:
					for k := range yb {
						dst[k] = modmath.AddMod(dst[k], modmath.MulModShoup(red.ReduceWord(yb[k]), h, hs, pj), pj)
					}
				}
			}
		}
	}
	bc.scratch.Put(y)
}

// Extender bundles the conversions needed by hybrid key switching between
// basis Q = {q_0..q_L} and the special basis P = {p_0..p_K-1}: ModUp
// (eq. 2), ModDown (eq. 3) and CKKS rescaling.
type Extender struct {
	RQ, RP *Ring // rings over Q and P (same degree)

	qToP *BasisConverter
	pToQ *BasisConverter

	// pInv[i] = P^{-1} mod q_i, for ModDown.
	pInv      []uint64
	pInvShoup []uint64

	// qlInv[l][i] = q_l^{-1} mod q_i (i < l), for rescaling by the last modulus.
	qlInv      [][]uint64
	qlInvShoup [][]uint64

	// pInv52 / qlInv52 are the base-2^52 Shoup precomputations of the two
	// inverse tables, populated only on the AVX512-IFMA tier: the rescale and
	// ModDown channel steps share one fused subtract-scale-reduce kernel
	// (rescaleVec52) whenever the channel modulus fits its q < 2^51 bound.
	pInv52  []uint64
	qlInv52 [][]uint64
}

// NewExtender builds an Extender for rings rQ (main basis) and rP (special
// basis). Both must share the polynomial degree.
func NewExtender(rQ, rP *Ring) *Extender {
	e := &Extender{
		RQ:   rQ,
		RP:   rP,
		qToP: NewBasisConverter(rQ.Moduli, rP.Moduli),
		pToQ: NewBasisConverter(rP.Moduli, rQ.Moduli),
	}
	// Both conversions ride the main ring's scheduler: ModUp/ModDown tiles
	// split across its workers alongside the limb-parallel channel steps.
	e.qToP.BindScheduler(rQ)
	e.pToQ.BindScheduler(rQ)
	P := big.NewInt(1)
	for _, p := range rP.Moduli {
		P.Mul(P, new(big.Int).SetUint64(p))
	}
	e.pInv = make([]uint64, len(rQ.Moduli))
	e.pInvShoup = make([]uint64, len(rQ.Moduli))
	tmp := new(big.Int)
	for i, qi := range rQ.Moduli {
		pModQi := tmp.Mod(P, new(big.Int).SetUint64(qi)).Uint64()
		e.pInv[i] = modmath.InvMod(pModQi, qi)
		e.pInvShoup[i] = modmath.ShoupPrecomp(e.pInv[i], qi)
	}
	L := len(rQ.Moduli)
	e.qlInv = make([][]uint64, L)
	e.qlInvShoup = make([][]uint64, L)
	for l := 1; l < L; l++ {
		e.qlInv[l] = make([]uint64, l)
		e.qlInvShoup[l] = make([]uint64, l)
		for i := 0; i < l; i++ {
			inv := modmath.InvMod(rQ.SubRings[i].ReduceWord(rQ.Moduli[l]), rQ.Moduli[i])
			e.qlInv[l][i] = inv
			e.qlInvShoup[l][i] = modmath.ShoupPrecomp(inv, rQ.Moduli[i])
		}
	}
	if useNTTKernIFMA {
		e.pInv52 = make([]uint64, len(rQ.Moduli))
		for i, qi := range rQ.Moduli {
			e.pInv52[i] = shoup52(e.pInv[i], qi)
		}
		e.qlInv52 = make([][]uint64, L)
		for l := 1; l < L; l++ {
			e.qlInv52[l] = make([]uint64, l)
			for i := 0; i < l; i++ {
				e.qlInv52[l][i] = shoup52(e.qlInv[l][i], rQ.Moduli[i])
			}
		}
	}
	return e
}

// ModUp implements eq. (2): extends a (levels 0..level over Q, coefficient
// domain) with K channels over P, writing them into outP (a P-basis poly).
// It runs on the lazy conversion kernel (byte-identical to the eager
// reference Convert, which tests cross-check it against).
func (e *Extender) ModUp(level int, a *Poly, outP *Poly) {
	e.qToP.ConvertLazyN(level, a.Coeffs[:level+1], outP.Coeffs, len(e.qToP.Dst))
}

// ModDown implements eq. (3): given aQ over Q (levels 0..level) and aP over
// the full special basis P, computes [ (a - Bconv(aP)) · P^{-1} ]_{q_i} into
// out. All polynomials are in the coefficient domain. The conversion target
// is borrowed from the ring arena, so the steady state is allocation-free.
//
//alchemist:hot
func (e *Extender) ModDown(level int, aQ, aP, out *Poly) {
	conv := e.RQ.Borrow(level)
	e.pToQ.ConvertLazyN(len(e.RP.Moduli)-1, aP.Coeffs, conv.Coeffs, level+1)
	e.modDownLimbs(level, aQ, conv, out)
	e.RQ.Release(conv)
}

// modDownLimbs runs the subtract-and-scale step over all channels, limb-
// parallel via the op-coded scheduler when workers are configured. conv is
// owned by the caller for the whole call (the scheduler's barrier returns
// before ModDown releases it), so the job only ever sees live scratch.
func (e *Extender) modDownLimbs(level int, aQ, conv, out *Poly) {
	if parts := e.RQ.parWidth(level + 1); parts > 1 {
		j := e.RQ.getJob()
		j.op, j.ext, j.a, j.b, j.out, j.tasks = opModDown, e, aQ, conv, out, level+1
		e.RQ.runParallel(j, parts)
		return
	}
	for i := 0; i <= level; i++ {
		e.modDownChannel(i, aQ, conv, out)
	}
}

// ModDownEager is ModDown on the eager conversion kernel (ConvertN, a
// reduction per accumulated term). Byte-identical to ModDown; it exists so
// the eager keyswitch reference path stays eager end to end and the
// fused-vs-eager benchmark pair measures the lazy pipeline against the
// original arithmetic, not against a half-upgraded baseline.
func (e *Extender) ModDownEager(level int, aQ, aP, out *Poly) {
	conv := e.RQ.Borrow(level)
	e.pToQ.ConvertN(len(e.RP.Moduli)-1, aP.Coeffs, conv.Coeffs, level+1)
	for i := 0; i <= level; i++ {
		e.modDownChannel(i, aQ, conv, out)
	}
	e.RQ.Release(conv)
}

// modDownChannel applies the subtract-and-scale step of ModDown in channel i.
//
//alchemist:hot
func (e *Extender) modDownChannel(i int, aQ, conv, out *Poly) {
	n := e.RQ.N
	qi := e.RQ.Moduli[i]
	inv, invS := e.pInv[i], e.pInvShoup[i]
	src, c, dst := aQ.Coeffs[i][:n:n], conv.Coeffs[i][:n:n], out.Coeffs[i][:n:n]
	if useNTTKernIFMA && qi < 1<<51 && n&7 == 0 {
		// c is fully reduced, so the kernel's leading condSub is a no-op and
		// the composition matches this loop bit for bit.
		rescaleVec52(dst, src, c, inv, e.pInv52[i], qi)
		return
	}
	for k := 0; k < n; k++ {
		d := src[k] + qi - c[k] // src, c < q_i, so d < 2q_i
		dst[k] = condSubMask(modmath.MulModShoupLazy(d, inv, invS, qi), qi)
	}
}

// RescaleByLastModulus divides a (levels 0..level, coefficient domain) by
// q_level with rounding, producing a poly at level-1:
// out_i = (a_i - a_level) · q_level^{-1} mod q_i. This is the CKKS rescale.
// Panics if level == 0 (there is no modulus left to drop).
//
// The cross-channel reduction of a_level into q_i is specialized on the
// modulus relation: when q_level ≤ q_i the residue is already valid, when
// q_level ≤ 2q_i one conditional subtraction suffices, and only otherwise
// does the Barrett fold run. With the repository's parameter shapes (one
// wide q_0, narrow scale primes) every channel takes one of the two cheap
// cases. Outputs are byte-identical to the reference formula.
//
//alchemist:hot
func (e *Extender) RescaleByLastModulus(level int, a, out *Poly) {
	if level == 0 {
		panic("ring: cannot rescale below level 0")
	}
	if parts := e.RQ.parWidth(level); parts > 1 {
		j := e.RQ.getJob()
		j.op, j.ext, j.level, j.a, j.out, j.tasks = opRescale, e, level, a, out, level
		e.RQ.runParallel(j, parts)
		return
	}
	for i := 0; i < level; i++ {
		e.rescaleChannel(level, i, a, out)
	}
}

// rescaleChannel applies the rescale step out_i = (a_i - a_level)·q_level^{-1}
// in channel i, with the a_level→q_i reduction specialized per the doc above.
//
//alchemist:hot
func (e *Extender) rescaleChannel(level, i int, a, out *Poly) {
	n := e.RQ.N
	ql := e.RQ.Moduli[level]
	last := a.Coeffs[level][:n:n]
	qi := e.RQ.Moduli[i]
	inv, invS := e.qlInv[level][i], e.qlInvShoup[level][i]
	src, dst := a.Coeffs[i][:n:n], out.Coeffs[i][:n:n]
	if useNTTKernIFMA && qi < 1<<51 && ql <= 2*qi && n&7 == 0 {
		// One kernel covers both cheap reduction cases: its leading condSub
		// of last is the identity when q_l ≤ q_i and exactly the scalar
		// condSubMask when q_l ≤ 2q_i, so either way the composition is
		// bit-identical to the matching scalar loop below.
		rescaleVec52(dst, src, last, inv, e.qlInv52[level][i], qi)
		return
	}
	switch {
	case ql <= qi:
		for k := 0; k < n; k++ {
			d := src[k] + qi - last[k] // last < q_l ≤ q_i, so d < 2q_i
			dst[k] = condSubMask(modmath.MulModShoupLazy(d, inv, invS, qi), qi)
		}
	case ql <= 2*qi:
		for k := 0; k < n; k++ {
			d := src[k] + qi - condSubMask(last[k], qi) // < 2q_i
			dst[k] = condSubMask(modmath.MulModShoupLazy(d, inv, invS, qi), qi)
		}
	default:
		sub := e.RQ.SubRings[i]
		for k := 0; k < n; k++ {
			d := src[k] + qi - sub.ReduceWord(last[k])
			dst[k] = condSubMask(modmath.MulModShoupLazy(d, inv, invS, qi), qi)
		}
	}
}

package ring

import (
	"math/big"

	"alchemist/internal/modmath"
)

// BasisConverter implements the RNS basis conversion of eq. (1) in the paper
// (the HPS "fast basis conversion"):
//
//	Bconv([x]_Q, p_j) = ( Σ_{i=0}^{L-1} [[x]_{q_i} · q̂_i^{-1}]_{q_i} · q̂_i ) mod p_j
//
// where q̂_i = Q/q_i. The result equals x + u·Q for a small overshoot
// 0 ≤ u < L; the FHE schemes absorb this (ModUp noise, ModDown division).
// A converter is built once for a (source, target) moduli pair and supports
// any source level (prefix of the source basis).
type BasisConverter struct {
	Src, Dst []uint64
	// qiHatInv[l][i] = (Q_l/q_i)^{-1} mod q_i where Q_l = q_0…q_l.
	qiHatInv      [][]uint64
	qiHatInvShoup [][]uint64
	// qiHat[l][i][j] = (Q_l/q_i) mod p_j.
	qiHat      [][][]uint64
	qiHatShoup [][][]uint64
	// qModP[l][j] = Q_l mod p_j, lazily built for ConvertExact.
	qModP [][]uint64
	// dstRed[j] is the Barrett state for p_j, used to fold source-channel
	// residues into the target channel without a raw %.
	dstRed []modmath.Barrett
}

// NewBasisConverter precomputes conversion tables from basis src to basis dst.
func NewBasisConverter(src, dst []uint64) *BasisConverter {
	L := len(src)
	bc := &BasisConverter{
		Src:           append([]uint64(nil), src...),
		Dst:           append([]uint64(nil), dst...),
		qiHatInv:      make([][]uint64, L),
		qiHatInvShoup: make([][]uint64, L),
		qiHat:         make([][][]uint64, L),
		qiHatShoup:    make([][][]uint64, L),
		dstRed:        make([]modmath.Barrett, len(dst)),
	}
	for j, pj := range dst {
		bc.dstRed[j] = modmath.NewBarrett(pj)
	}
	for l := 0; l < L; l++ {
		Ql := big.NewInt(1)
		for i := 0; i <= l; i++ {
			Ql.Mul(Ql, new(big.Int).SetUint64(src[i]))
		}
		bc.qiHatInv[l] = make([]uint64, l+1)
		bc.qiHatInvShoup[l] = make([]uint64, l+1)
		bc.qiHat[l] = make([][]uint64, l+1)
		bc.qiHatShoup[l] = make([][]uint64, l+1)
		tmp := new(big.Int)
		for i := 0; i <= l; i++ {
			qi := new(big.Int).SetUint64(src[i])
			hat := new(big.Int).Div(Ql, qi)
			inv := tmp.Mod(hat, qi)
			invU := modmath.InvMod(inv.Uint64(), src[i])
			bc.qiHatInv[l][i] = invU
			bc.qiHatInvShoup[l][i] = modmath.ShoupPrecomp(invU, src[i])
			bc.qiHat[l][i] = make([]uint64, len(dst))
			bc.qiHatShoup[l][i] = make([]uint64, len(dst))
			for j, pj := range dst {
				pjb := new(big.Int).SetUint64(pj)
				h := new(big.Int).Mod(hat, pjb).Uint64()
				bc.qiHat[l][i][j] = h
				bc.qiHatShoup[l][i][j] = modmath.ShoupPrecomp(h, pj)
			}
		}
	}
	return bc
}

// Convert performs the basis conversion for every coefficient. in holds
// srcLevel+1 channels over the source moduli (coefficient domain); out must
// hold len(Dst) channels. Channels are independent slices of equal length.
func (bc *BasisConverter) Convert(srcLevel int, in, out [][]uint64) {
	bc.ConvertN(srcLevel, in, out, len(bc.Dst))
}

// ConvertN is Convert restricted to the first nDst target channels; the
// hybrid key switch uses it to skip target moduli above the working level.
func (bc *BasisConverter) ConvertN(srcLevel int, in, out [][]uint64, nDst int) {
	n := len(in[0])
	// Step 1 of Fig. 4(b): y_i = [x_i · q̂_i^{-1}]_{q_i}, per source channel.
	y := make([][]uint64, srcLevel+1)
	for i := 0; i <= srcLevel; i++ {
		y[i] = make([]uint64, n)
		qi := bc.Src[i]
		inv, invS := bc.qiHatInv[srcLevel][i], bc.qiHatInvShoup[srcLevel][i]
		src := in[i]
		for k := 0; k < n; k++ {
			y[i][k] = modmath.MulModShoup(src[k], inv, invS, qi)
		}
	}
	// Step 2: for each target channel, accumulate y_i · q̂_i mod p_j.
	// (On the accelerator this is a Meta-OP (M8A8)_L R8 per 8 outputs.)
	for j, pj := range bc.Dst[:nDst] {
		dst := out[j]
		red := bc.dstRed[j]
		for k := 0; k < n; k++ {
			dst[k] = 0
		}
		for i := 0; i <= srcLevel; i++ {
			h, hs := bc.qiHat[srcLevel][i][j], bc.qiHatShoup[srcLevel][i][j]
			yi := y[i]
			for k := 0; k < n; k++ {
				dst[k] = modmath.AddMod(dst[k], modmath.MulModShoup(red.ReduceWord(yi[k]), h, hs, pj), pj)
			}
		}
	}
}

// Extender bundles the conversions needed by hybrid key switching between
// basis Q = {q_0..q_L} and the special basis P = {p_0..p_K-1}: ModUp
// (eq. 2), ModDown (eq. 3) and CKKS rescaling.
type Extender struct {
	RQ, RP *Ring // rings over Q and P (same degree)

	qToP *BasisConverter
	pToQ *BasisConverter

	// pInv[i] = P^{-1} mod q_i, for ModDown.
	pInv      []uint64
	pInvShoup []uint64

	// qlInv[l][i] = q_l^{-1} mod q_i (i < l), for rescaling by the last modulus.
	qlInv      [][]uint64
	qlInvShoup [][]uint64
}

// NewExtender builds an Extender for rings rQ (main basis) and rP (special
// basis). Both must share the polynomial degree.
func NewExtender(rQ, rP *Ring) *Extender {
	e := &Extender{
		RQ:   rQ,
		RP:   rP,
		qToP: NewBasisConverter(rQ.Moduli, rP.Moduli),
		pToQ: NewBasisConverter(rP.Moduli, rQ.Moduli),
	}
	P := big.NewInt(1)
	for _, p := range rP.Moduli {
		P.Mul(P, new(big.Int).SetUint64(p))
	}
	e.pInv = make([]uint64, len(rQ.Moduli))
	e.pInvShoup = make([]uint64, len(rQ.Moduli))
	tmp := new(big.Int)
	for i, qi := range rQ.Moduli {
		pModQi := tmp.Mod(P, new(big.Int).SetUint64(qi)).Uint64()
		e.pInv[i] = modmath.InvMod(pModQi, qi)
		e.pInvShoup[i] = modmath.ShoupPrecomp(e.pInv[i], qi)
	}
	L := len(rQ.Moduli)
	e.qlInv = make([][]uint64, L)
	e.qlInvShoup = make([][]uint64, L)
	for l := 1; l < L; l++ {
		e.qlInv[l] = make([]uint64, l)
		e.qlInvShoup[l] = make([]uint64, l)
		for i := 0; i < l; i++ {
			inv := modmath.InvMod(rQ.SubRings[i].ReduceWord(rQ.Moduli[l]), rQ.Moduli[i])
			e.qlInv[l][i] = inv
			e.qlInvShoup[l][i] = modmath.ShoupPrecomp(inv, rQ.Moduli[i])
		}
	}
	return e
}

// ModUp implements eq. (2): extends a (levels 0..level over Q, coefficient
// domain) with K channels over P, writing them into outP (a P-basis poly).
func (e *Extender) ModUp(level int, a *Poly, outP *Poly) {
	e.qToP.Convert(level, a.Coeffs[:level+1], outP.Coeffs)
}

// ModDown implements eq. (3): given aQ over Q (levels 0..level) and aP over
// the full special basis P, computes [ (a - Bconv(aP)) · P^{-1} ]_{q_i} into
// out. All polynomials are in the coefficient domain.
func (e *Extender) ModDown(level int, aQ, aP, out *Poly) {
	n := e.RQ.N
	conv := make([][]uint64, level+1)
	for i := range conv {
		conv[i] = make([]uint64, n)
	}
	e.pToQ.ConvertN(len(e.RP.Moduli)-1, aP.Coeffs, conv, level+1)
	for i := 0; i <= level; i++ {
		qi := e.RQ.Moduli[i]
		inv, invS := e.pInv[i], e.pInvShoup[i]
		src, c, dst := aQ.Coeffs[i], conv[i], out.Coeffs[i]
		for k := 0; k < n; k++ {
			d := modmath.SubMod(src[k], c[k], qi)
			dst[k] = modmath.MulModShoup(d, inv, invS, qi)
		}
	}
}

// RescaleByLastModulus divides a (levels 0..level, coefficient domain) by
// q_level with rounding, producing a poly at level-1:
// out_i = (a_i - a_level) · q_level^{-1} mod q_i. This is the CKKS rescale.
// Panics if level == 0 (there is no modulus left to drop).
func (e *Extender) RescaleByLastModulus(level int, a, out *Poly) {
	if level == 0 {
		panic("ring: cannot rescale below level 0")
	}
	n := e.RQ.N
	last := a.Coeffs[level]
	for i := 0; i < level; i++ {
		qi := e.RQ.Moduli[i]
		sub := e.RQ.SubRings[i]
		inv, invS := e.qlInv[level][i], e.qlInvShoup[level][i]
		src, dst := a.Coeffs[i], out.Coeffs[i]
		for k := 0; k < n; k++ {
			d := modmath.SubMod(src[k], sub.ReduceWord(last[k]), qi)
			dst[k] = modmath.MulModShoup(d, inv, invS, qi)
		}
	}
}

package ring

import (
	"math/big"

	"alchemist/internal/modmath"
)

// Exact basis conversion (HPS floating-point correction): unlike Convert,
// which returns x + u·Q for a small overshoot u, ConvertExact subtracts the
// overshoot by estimating u = round(Σ y_i/q_i) in floating point. With
// centered=true the result is the centered representative (x - Q when
// x > Q/2), which the BGV ModDown needs so that key-switch noise does not
// leak into the plaintext modulo t.
//
// The float estimate is exact unless the fractional sum lands within the
// accumulated rounding error (≈2^-45 per term) of a half-integer, which the
// schemes' noise distributions make vanishingly unlikely.

// qModDst returns Q_l mod p_j for the converter's source prefix. The cache
// is built on first use without synchronization: a BasisConverter is owned by
// one evaluator, matching the rest of its (table-immutable, scratch-pooled)
// concurrency contract.
func (bc *BasisConverter) qModDst(srcLevel, j int) uint64 {
	// Computed on demand and cached.
	if bc.qModP == nil {
		bc.qModP = make([][]uint64, len(bc.Src))
	}
	if bc.qModP[srcLevel] == nil {
		row := make([]uint64, len(bc.Dst))
		q := big.NewInt(1)
		for i := 0; i <= srcLevel; i++ {
			q.Mul(q, new(big.Int).SetUint64(bc.Src[i]))
		}
		tmp := new(big.Int)
		for jj, pj := range bc.Dst {
			row[jj] = tmp.Mod(q, new(big.Int).SetUint64(pj)).Uint64()
		}
		bc.qModP[srcLevel] = row
	}
	return bc.qModP[srcLevel][j]
}

// ConvertExact performs the overshoot-free basis conversion into the first
// nDst target channels. Like ConvertN it is tiled over convBlock coefficients
// with the y_i scratch borrowed from the converter's arena; the per-tile
// overshoot estimates live on the stack. The per-coefficient floating-point
// accumulation order is unchanged, so results are byte-identical to the
// untiled formula.
//
//alchemist:hot
func (bc *BasisConverter) ConvertExact(srcLevel int, in, out [][]uint64, nDst int, centered bool) {
	n := len(in[0])
	L := srcLevel + 1
	y := bc.scratch.Get(L * convBlock)
	invRow, invSRow := bc.qiHatInv[srcLevel], bc.qiHatInvShoup[srcLevel]
	hatRow, hatSRow := bc.qiHat[srcLevel], bc.qiHatShoup[srcLevel]
	var vs [convBlock]uint64 // overshoot u per coefficient of the tile
	var frac [convBlock]float64
	// Warm the qModDst cache outside the tile loop (it allocates on first use).
	if nDst > 0 {
		bc.qModDst(srcLevel, 0)
	}
	for k0 := 0; k0 < n; k0 += convBlock {
		kn := n - k0
		if kn > convBlock {
			kn = convBlock
		}
		for k := 0; k < kn; k++ {
			frac[k] = 0
		}
		for i := 0; i < L; i++ {
			qi := bc.Src[i]
			inv, invS := invRow[i], invSRow[i]
			src := in[i][k0 : k0+kn]
			yb := y[i*convBlock : i*convBlock+kn]
			fq := float64(qi)
			for k := range src {
				yi := modmath.MulModShoup(src[k], inv, invS, qi)
				yb[k] = yi
				frac[k] += float64(yi) / fq
			}
		}
		for k := 0; k < kn; k++ {
			// frac ≈ (Σ y_i·q̂_i)/Q = u + value/Q with 0 ≤ u ≤ srcLevel+1.
			if centered {
				// u = round(frac): value - u·Q lands in (-Q/2, Q/2].
				vs[k] = uint64(frac[k] + 0.5)
			} else {
				// u = floor(frac): value - u·Q lands in [0, Q).
				vs[k] = uint64(frac[k])
			}
		}
		for j := 0; j < nDst; j++ {
			pj := bc.Dst[j]
			red := bc.dstRed[j]
			dst := out[j][k0 : k0+kn]
			qMod := bc.qModDst(srcLevel, j)
			for k := range dst {
				dst[k] = 0
			}
			for i := 0; i < L; i++ {
				h, hs := hatRow[i][j], hatSRow[i][j]
				yb := y[i*convBlock : i*convBlock+kn]
				for k := range yb {
					dst[k] = modmath.AddMod(dst[k], modmath.MulModShoup(red.ReduceWord(yb[k]), h, hs, pj), pj)
				}
			}
			for k := range dst {
				// Subtract u·Q (mod p_j); with centering u was rounded, so the
				// result is the centered representative.
				sub := modmath.MulMod(red.ReduceWord(vs[k]), qMod, pj)
				dst[k] = modmath.SubMod(dst[k], sub, pj)
			}
		}
	}
	bc.scratch.Put(y)
}

// ModDownExact is ModDown with an exact, centered P→Q conversion: the
// output equals (x - [x]_P^centered)·P^{-1} with no ±K overshoot error.
// BGV key switching requires this so the correction stays ≡ 0 (mod t).
//
//alchemist:hot
func (e *Extender) ModDownExact(level int, aQ, aP, out *Poly) {
	conv := e.RQ.Borrow(level)
	e.pToQ.ConvertExact(len(e.RP.Moduli)-1, aP.Coeffs, conv.Coeffs, level+1, true)
	e.modDownLimbs(level, aQ, conv, out)
	e.RQ.Release(conv)
}

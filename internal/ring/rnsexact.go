package ring

import (
	"math/big"

	"alchemist/internal/modmath"
)

// Exact basis conversion (HPS floating-point correction): unlike Convert,
// which returns x + u·Q for a small overshoot u, ConvertExact subtracts the
// overshoot by estimating u = round(Σ y_i/q_i) in floating point. With
// centered=true the result is the centered representative (x - Q when
// x > Q/2), which the BGV ModDown needs so that key-switch noise does not
// leak into the plaintext modulo t.
//
// The float estimate is exact unless the fractional sum lands within the
// accumulated rounding error (≈2^-45 per term) of a half-integer, which the
// schemes' noise distributions make vanishingly unlikely.

// qModDst returns Q_l mod p_j for the converter's source prefix.
func (bc *BasisConverter) qModDst(srcLevel, j int) uint64 {
	// Computed on demand and cached.
	if bc.qModP == nil {
		bc.qModP = make([][]uint64, len(bc.Src))
	}
	if bc.qModP[srcLevel] == nil {
		row := make([]uint64, len(bc.Dst))
		q := big.NewInt(1)
		for i := 0; i <= srcLevel; i++ {
			q.Mul(q, new(big.Int).SetUint64(bc.Src[i]))
		}
		tmp := new(big.Int)
		for jj, pj := range bc.Dst {
			row[jj] = tmp.Mod(q, new(big.Int).SetUint64(pj)).Uint64()
		}
		bc.qModP[srcLevel] = row
	}
	return bc.qModP[srcLevel][j]
}

// ConvertExact performs the overshoot-free basis conversion into the first
// nDst target channels.
func (bc *BasisConverter) ConvertExact(srcLevel int, in, out [][]uint64, nDst int, centered bool) {
	n := len(in[0])
	y := make([][]uint64, srcLevel+1)
	vs := make([]uint64, n) // overshoot u per coefficient
	frac := make([]float64, n)
	for i := 0; i <= srcLevel; i++ {
		y[i] = make([]uint64, n)
		qi := bc.Src[i]
		inv, invS := bc.qiHatInv[srcLevel][i], bc.qiHatInvShoup[srcLevel][i]
		src := in[i]
		fq := float64(qi)
		for k := 0; k < n; k++ {
			yi := modmath.MulModShoup(src[k], inv, invS, qi)
			y[i][k] = yi
			frac[k] += float64(yi) / fq
		}
	}
	for k := 0; k < n; k++ {
		// frac ≈ (Σ y_i·q̂_i)/Q = u + value/Q with 0 ≤ u ≤ srcLevel+1.
		if centered {
			// u = round(frac): value - u·Q lands in (-Q/2, Q/2].
			vs[k] = uint64(frac[k] + 0.5)
		} else {
			// u = floor(frac): value - u·Q lands in [0, Q).
			vs[k] = uint64(frac[k])
		}
	}
	for j := 0; j < nDst; j++ {
		pj := bc.Dst[j]
		red := bc.dstRed[j]
		dst := out[j]
		qMod := bc.qModDst(srcLevel, j)
		for k := 0; k < n; k++ {
			dst[k] = 0
		}
		for i := 0; i <= srcLevel; i++ {
			h, hs := bc.qiHat[srcLevel][i][j], bc.qiHatShoup[srcLevel][i][j]
			yi := y[i]
			for k := 0; k < n; k++ {
				dst[k] = modmath.AddMod(dst[k], modmath.MulModShoup(red.ReduceWord(yi[k]), h, hs, pj), pj)
			}
		}
		for k := 0; k < n; k++ {
			// Subtract u·Q (mod p_j); with centering u was rounded, so the
			// result is the centered representative.
			sub := modmath.MulMod(red.ReduceWord(vs[k]), qMod, pj)
			dst[k] = modmath.SubMod(dst[k], sub, pj)
		}
	}
}

// ModDownExact is ModDown with an exact, centered P→Q conversion: the
// output equals (x - [x]_P^centered)·P^{-1} with no ±K overshoot error.
// BGV key switching requires this so the correction stays ≡ 0 (mod t).
func (e *Extender) ModDownExact(level int, aQ, aP, out *Poly) {
	n := e.RQ.N
	conv := make([][]uint64, level+1)
	for i := range conv {
		conv[i] = make([]uint64, n)
	}
	e.pToQ.ConvertExact(len(e.RP.Moduli)-1, aP.Coeffs, conv, level+1, true)
	for i := 0; i <= level; i++ {
		qi := e.RQ.Moduli[i]
		inv, invS := e.pInv[i], e.pInvShoup[i]
		src, c, dst := aQ.Coeffs[i], conv[i], out.Coeffs[i]
		for k := 0; k < n; k++ {
			d := modmath.SubMod(src[k], c[k], qi)
			dst[k] = modmath.MulModShoup(d, inv, invS, qi)
		}
	}
}

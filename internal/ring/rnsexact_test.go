package ring

import (
	"math/big"
	"math/rand"
	"testing"

	"alchemist/internal/modmath"
)

func TestConvertExactMatchesBigInt(t *testing.T) {
	n := 64
	src, err := modmath.GenerateNTTPrimes(45, uint64(2*n), 4)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := modmath.GenerateNTTPrimes(46, uint64(2*n), 3)
	if err != nil {
		t.Fatal(err)
	}
	bc := NewBasisConverter(src, dst)
	rng := rand.New(rand.NewSource(21))
	for level := 0; level < 4; level++ {
		Q := big.NewInt(1)
		for i := 0; i <= level; i++ {
			Q.Mul(Q, new(big.Int).SetUint64(src[i]))
		}
		half := new(big.Int).Rsh(Q, 1)
		in := make([][]uint64, level+1)
		for i := range in {
			in[i] = make([]uint64, n)
		}
		xs := make([]*big.Int, n)
		for k := 0; k < n; k++ {
			xs[k] = new(big.Int).Rand(rng, Q)
			res := modmath.CRTDecompose(xs[k], src[:level+1])
			for i := 0; i <= level; i++ {
				in[i][k] = res[i]
			}
		}
		out := make([][]uint64, len(dst))
		for j := range out {
			out[j] = make([]uint64, n)
		}
		// Non-centered: result ≡ x exactly (no +uQ).
		bc.ConvertExact(level, in, out, len(dst), false)
		for j, pj := range dst {
			pjb := new(big.Int).SetUint64(pj)
			for k := 0; k < n; k++ {
				want := new(big.Int).Mod(xs[k], pjb).Uint64()
				if out[j][k] != want {
					t.Fatalf("level %d: exact Bconv %d != %d", level, out[j][k], want)
				}
			}
		}
		// Centered: result ≡ x - Q when x > Q/2.
		bc.ConvertExact(level, in, out, len(dst), true)
		for j, pj := range dst {
			pjb := new(big.Int).SetUint64(pj)
			for k := 0; k < n; k++ {
				v := new(big.Int).Set(xs[k])
				if v.Cmp(half) > 0 {
					v.Sub(v, Q)
				}
				want := new(big.Int).Mod(v, pjb)
				if want.Sign() < 0 {
					want.Add(want, pjb)
				}
				if out[j][k] != want.Uint64() {
					t.Fatalf("level %d: centered Bconv %d != %d", level, out[j][k], want.Uint64())
				}
			}
		}
	}
}

func TestModDownExactNoOvershoot(t *testing.T) {
	// ModDownExact(P·m + e) must return exactly m + round-to-nearest of
	// e/P — i.e. m when |e| < P/2.
	n := 64
	qs, _ := modmath.GenerateNTTPrimes(45, uint64(2*n), 4)
	ps, _ := modmath.GenerateNTTPrimes(46, uint64(2*n), 2)
	rQ, _ := NewRing(n, qs)
	rP, _ := NewRing(n, ps)
	ext := NewExtender(rQ, rP)
	level := rQ.MaxLevel()

	P := big.NewInt(1)
	for _, p := range ps {
		P.Mul(P, new(big.Int).SetUint64(p))
	}
	m := randPoly(rQ, level, 22)
	rng := rand.New(rand.NewSource(23))
	yQ := rQ.NewPoly(level)
	rQ.MulScalarBig(level, m, P, yQ)
	yP := rP.NewPoly(rP.MaxLevel())
	for k := 0; k < n; k++ {
		e := int64(rng.Intn(1<<30)) - 1<<29
		for i := 0; i <= level; i++ {
			yQ.Coeffs[i][k] = modmath.AddMod(yQ.Coeffs[i][k], modmath.ReduceSigned(e, qs[i]), qs[i])
		}
		for j := range ps {
			yP.Coeffs[j][k] = modmath.ReduceSigned(e, ps[j])
		}
	}
	out := rQ.NewPoly(level)
	ext.ModDownExact(level, yQ, yP, out)
	if !rQ.Equal(level, out, m) {
		t.Fatal("ModDownExact(P·m + e) != m for |e| < P/2")
	}
}

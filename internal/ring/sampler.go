package ring

import (
	"math"

	"alchemist/internal/modmath"
	"alchemist/internal/prng"
)

// Sampler draws polynomials from the distributions used by the FHE schemes.
// Its randomness source is injectable and explicitly seeded so tests and
// examples are reproducible; this reproduction does not target
// cryptographic-strength randomness.
type Sampler struct {
	rng prng.Source
	r   *Ring
}

// NewSampler returns a sampler over ring r seeded with the given seed.
func NewSampler(r *Ring, seed int64) *Sampler {
	return &Sampler{rng: prng.New(seed), r: r}
}

// NewSamplerFromSource returns a sampler over ring r drawing from an
// injected source (e.g. a test double, or a stream shared across samplers).
func NewSamplerFromSource(r *Ring, src prng.Source) *Sampler {
	return &Sampler{rng: src, r: r}
}

// Uniform fills p (levels 0..level) with independent uniform residues,
// drawn rejection-sampled so no modulo bias enters the key material.
func (s *Sampler) Uniform(level int, p *Poly) {
	for i := 0; i <= level; i++ {
		q := s.r.Moduli[i]
		c := p.Coeffs[i]
		for j := range c {
			c[j] = prng.UniformMod(s.rng, q)
		}
	}
}

// Ternary fills p with coefficients from {-1, 0, 1}: zero with probability
// 1-density, ±1 each with probability density/2. The same signed value is
// written consistently across all RNS channels.
func (s *Sampler) Ternary(level int, density float64, p *Poly) {
	n := s.r.N
	for j := 0; j < n; j++ {
		u := s.rng.Float64()
		var v int64
		switch {
		case u < density/2:
			v = 1
		case u < density:
			v = -1
		}
		for i := 0; i <= level; i++ {
			p.Coeffs[i][j] = modmath.ReduceSigned(v, s.r.Moduli[i])
		}
	}
}

// Gaussian fills p with a rounded Gaussian of the given standard deviation,
// truncated at ±6σ, written consistently across RNS channels.
func (s *Sampler) Gaussian(level int, sigma float64, p *Poly) {
	n := s.r.N
	bound := 6 * sigma
	for j := 0; j < n; j++ {
		x := s.rng.NormFloat64() * sigma
		if x > bound {
			x = bound
		} else if x < -bound {
			x = -bound
		}
		v := int64(math.Round(x))
		for i := 0; i <= level; i++ {
			p.Coeffs[i][j] = modmath.ReduceSigned(v, s.r.Moduli[i])
		}
	}
}

// SignedCoeff interprets residue x mod q as a centered value in (-q/2, q/2].
func SignedCoeff(x, q uint64) int64 {
	if x > q/2 {
		return int64(x) - int64(q)
	}
	return int64(x)
}

package ring

import (
	"runtime"
	"sync"

	"alchemist/internal/tokens"
)

// Limb/block scheduler: the shared parallel execution plane of the ring
// layer. RNS limbs are mutually independent (the axis Alchemist's hardware
// exploits with one lane per limb), and the basis conversions tile
// independently over coefficient blocks; the scheduler fans either unit out
// across a pool of resident goroutines.
//
// Design rules, in priority order:
//
//  1. Determinism. Work is split by STATIC partition: a kernel over `tasks`
//     units runs as `parts` contiguous ranges with boundaries
//     partBounds(tasks, parts, w) that depend only on the configured worker
//     count, the task count and GOMAXPROCS — never on thread timing or on
//     how many helper tokens happened to be granted. Each task unit performs
//     arithmetic that is independent of every other unit (limbs touch
//     disjoint channel slices, conversion tiles touch disjoint coefficient
//     ranges), so outputs are byte-identical to the serial loop at every
//     worker count; the partition only decides who computes what.
//
//  2. Zero steady-state allocation. Jobs are op-coded structs recycled
//     through a free list — no closures on the hot paths, because a closure
//     handed to another goroutine escapes and allocates. The serial guard
//     (parts <= 1) comes before any job is touched, so single-threaded rings
//     (the library default, and the paper's CPU baseline) run the exact
//     PR 9 code path.
//
//  3. Bounded concurrency. Helpers are paid for with process-wide compute
//     tokens (internal/tokens), the same pool the evaluation engine draws
//     from, so engine-level job parallelism and ring-level limb parallelism
//     compose additively instead of multiplying goroutines. A job granted
//     zero tokens degrades to the caller running every partition itself —
//     same bytes, no waiting.
//
// Workers are resident: spawned on first demand, parked on a condition
// variable between jobs, torn down by Close. The submitting goroutine always
// participates (it claims partitions like any worker), so a job can never
// stall behind helpers that were granted but are busy elsewhere.

// Scheduler op codes. One per parallel kernel family; opFn is the generic
// escape hatch for cold paths and tests (its closure allocates — never use
// it on a 0 B/op kernel).
const (
	opFn = iota
	opNTT
	opINTT
	opAdd
	opSub
	opNeg
	opMul
	opMulAdd
	opMulScalar
	opAutoNTT
	opModDown
	opRescale
	opConvert
	opConvertBoth
	opKSAcc
)

// minElemParN gates limb-parallel dispatch of the elementwise kernels: below
// this degree one limb is a few hundred nanoseconds of work and the submit/
// barrier handshake costs more than it hides. A compile-time constant so the
// dispatch decision stays deterministic.
const minElemParN = 1 << 12

// schedJob is one parallel kernel invocation. The operand fields form a
// superset across op codes; runPart reads only the ones its op filled.
// Bookkeeping fields (nextPart, helpersNow, outstanding) are guarded by the
// pool mutex; operands are immutable for the job's lifetime.
type schedJob struct {
	op int
	r  *Ring

	// Operands, by op family.
	ext        *Extender       // opModDown, opRescale
	bc         *BasisConverter // opConvert
	dc         *DualConverter  // opConvertBoth
	a, b, out  *Poly           // poly operands (a=src, b=second src / conv)
	fn         func(i int)     // opFn
	in, o1, o2 [][]uint64      // conversion channel slices (src, dstQ, dstP)
	srcLevel   int             // conversion source level
	nDst, nQ   int             // conversion target-channel counts
	level      int             // opRescale: the level being dropped
	scalar     uint64          // opMulScalar
	pi         []int32         // opAutoNTT, opKSAcc: Galois permutation
	dp, kb, ka []*Poly         // opKSAcc: digits and key halves

	// Partition bookkeeping.
	tasks       int // independent units (limbs or conversion tiles)
	parts       int // static partition count (includes the caller)
	hcap        int // max concurrent helpers = granted tokens
	nextPart    int // next unclaimed partition index
	helpersNow  int // helpers currently inside runPart
	outstanding int // claimed but unfinished partitions
}

// clear drops every operand reference so a recycled job cannot pin polys or
// key material across calls.
func (j *schedJob) clear() {
	j.r, j.ext, j.bc, j.dc = nil, nil, nil, nil
	j.a, j.b, j.out, j.fn = nil, nil, nil, nil
	j.in, j.o1, j.o2, j.pi = nil, nil, nil, nil
	j.dp, j.kb, j.ka = nil, nil, nil
}

// partBounds returns the half-open task range [lo, hi) of partition w: the
// usual balanced split with every boundary a pure function of (tasks, parts).
func partBounds(tasks, parts, w int) (lo, hi int) {
	return w * tasks / parts, (w + 1) * tasks / parts
}

// parWidth returns the static partition count for a kernel with the given
// number of independent task units: the configured worker count clamped to
// the task count and to GOMAXPROCS (more runnable goroutines than Ps only
// adds scheduling overhead). 1 means run the serial path.
func (r *Ring) parWidth(tasks int) int {
	w := r.Workers()
	if w <= 1 {
		return 1
	}
	if w > tasks {
		w = tasks
	}
	if maxp := runtime.GOMAXPROCS(0); w > maxp {
		w = maxp
	}
	return w
}

// runPart executes partition w of the job: the op's serial loop restricted
// to [lo, hi). The partition index doubles as the scratch-arena shard hint,
// so concurrent partitions draw scratch from distinct BufPool shards.
func (j *schedJob) runPart(w int) {
	lo, hi := partBounds(j.tasks, j.parts, w)
	switch j.op {
	case opNTT:
		for i := lo; i < hi; i++ {
			j.r.SubRings[i].NTTLazy(j.a.Coeffs[i])
		}
	case opINTT:
		for i := lo; i < hi; i++ {
			j.r.SubRings[i].INTTLazy(j.a.Coeffs[i])
		}
	case opAdd:
		for i := lo; i < hi; i++ {
			j.r.SubRings[i].Add(j.a.Coeffs[i], j.b.Coeffs[i], j.out.Coeffs[i])
		}
	case opSub:
		for i := lo; i < hi; i++ {
			j.r.SubRings[i].Sub(j.a.Coeffs[i], j.b.Coeffs[i], j.out.Coeffs[i])
		}
	case opNeg:
		for i := lo; i < hi; i++ {
			j.r.SubRings[i].Neg(j.a.Coeffs[i], j.out.Coeffs[i])
		}
	case opMul:
		for i := lo; i < hi; i++ {
			j.r.SubRings[i].MulCoeffs(j.a.Coeffs[i], j.b.Coeffs[i], j.out.Coeffs[i])
		}
	case opMulAdd:
		for i := lo; i < hi; i++ {
			j.r.SubRings[i].MulCoeffsAndAdd(j.a.Coeffs[i], j.b.Coeffs[i], j.out.Coeffs[i])
		}
	case opMulScalar:
		for i := lo; i < hi; i++ {
			j.r.SubRings[i].MulScalar(j.a.Coeffs[i], j.scalar, j.out.Coeffs[i])
		}
	case opAutoNTT:
		n := j.r.N
		for i := lo; i < hi; i++ {
			src, dst := j.a.Coeffs[i][:n:n], j.out.Coeffs[i][:n:n]
			if useNTTKern && n&3 == 0 {
				gatherIdxVec(dst, src, j.pi)
				continue
			}
			for k := range dst {
				dst[k] = src[j.pi[k]]
			}
		}
	case opModDown:
		for i := lo; i < hi; i++ {
			j.ext.modDownChannel(i, j.a, j.b, j.out)
		}
	case opRescale:
		for i := lo; i < hi; i++ {
			j.ext.rescaleChannel(j.level, i, j.a, j.out)
		}
	case opConvert:
		j.bc.convertLazyRange(j.srcLevel, j.in, j.o1, j.nDst, lo, hi, w)
	case opConvertBoth:
		j.dc.convertBothRange(j.srcLevel, j.in, j.o1, j.o2, j.nQ, lo, hi, w)
	case opKSAcc:
		j.r.ksAccLimbs(lo, hi, w, j.dp, j.kb, j.ka, j.pi, j.a, j.out)
	default:
		for i := lo; i < hi; i++ {
			j.fn(i)
		}
	}
}

// workerPool is the resident goroutine pool attached to a Ring. The zero
// value is ready after init() (called lazily under the mutex).
type workerPool struct {
	mu      sync.Mutex
	cond    *sync.Cond // workers park here waiting for claimable partitions
	done    *sync.Cond // callers wait here for job completion / teardown
	inited  bool
	jobs    []*schedJob // jobs with unclaimed partitions, oldest first
	free    []*schedJob // recycled job records
	spawned int         // resident worker goroutines
	closing bool        // Close in progress: workers drain and exit
}

func (p *workerPool) init() {
	if !p.inited {
		p.cond = sync.NewCond(&p.mu)
		p.done = sync.NewCond(&p.mu)
		p.inited = true
	}
}

// getJob returns a recycled (or fresh) job record with operands cleared.
func (r *Ring) getJob() *schedJob {
	p := &r.pool
	p.mu.Lock()
	var j *schedJob
	if n := len(p.free); n > 0 {
		j = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		j = new(schedJob)
	}
	p.mu.Unlock()
	j.r = r
	return j
}

// runParallel executes the filled job across `parts` static partitions and
// blocks until all of them have finished. The caller claims partitions like
// any worker; helper concurrency is capped by the token grant, and a grant
// of zero degrades to the caller running every partition inline (identical
// bytes — the partition boundaries do not move).
func (r *Ring) runParallel(j *schedJob, parts int) {
	j.parts = parts
	j.nextPart, j.helpersNow, j.outstanding = 0, 0, 0
	granted := tokens.Acquire(parts - 1)
	j.hcap = granted
	p := &r.pool
	if granted == 0 {
		// No helper budget: run every partition inline without touching the
		// queue (the job was never visible to workers).
		for w := 0; w < parts; w++ {
			j.runPart(w)
		}
		p.mu.Lock()
		j.clear()
		p.free = append(p.free, j)
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	p.init()
	p.jobs = append(p.jobs, j)
	// Top up resident workers to the largest grant seen; Close may have torn
	// them down. Parked workers are cheap and the count is bounded by the
	// token budget, itself defaulting to GOMAXPROCS.
	for p.spawned < granted && !p.closing {
		p.spawned++
		go p.worker()
	}
	p.cond.Broadcast()
	// The caller claims partitions alongside the helpers. Like the worker
	// loop it must detach the job the moment the last partition is claimed —
	// before releasing the lock — so no worker finds a drained job in the
	// list and claims a partition past the end.
	for j.nextPart < j.parts {
		w := j.nextPart
		j.nextPart++
		j.outstanding++
		if j.nextPart >= j.parts {
			p.detach(j)
		}
		p.mu.Unlock()
		j.runPart(w)
		p.mu.Lock()
		j.outstanding--
	}
	p.detach(j)
	for j.outstanding > 0 {
		p.done.Wait()
	}
	// No list entry and no in-flight claims: j is unreachable by workers.
	j.clear()
	p.free = append(p.free, j)
	p.mu.Unlock()
	tokens.Release(granted)
}

// claimable returns the oldest job with an unclaimed partition and spare
// helper capacity (callers hold mu).
func (p *workerPool) claimable() *schedJob {
	for _, j := range p.jobs {
		if j.nextPart < j.parts && j.helpersNow < j.hcap {
			return j
		}
	}
	return nil
}

// detach removes j from the active list (idempotent; callers hold mu).
func (p *workerPool) detach(j *schedJob) {
	for k, a := range p.jobs {
		if a == j {
			copy(p.jobs[k:], p.jobs[k+1:])
			p.jobs[len(p.jobs)-1] = nil
			p.jobs = p.jobs[:len(p.jobs)-1]
			return
		}
	}
}

// worker is the resident goroutine body: claim a partition from the oldest
// job with helper headroom, run it, repeat; park when idle, exit on Close.
func (p *workerPool) worker() {
	p.mu.Lock()
	for {
		j := p.claimable()
		for j == nil && !p.closing {
			p.cond.Wait()
			j = p.claimable()
		}
		if j == nil {
			break // closing, and nothing left to drain
		}
		w := j.nextPart
		j.nextPart++
		j.outstanding++
		j.helpersNow++
		if j.nextPart >= j.parts {
			p.detach(j)
		}
		p.mu.Unlock()
		j.runPart(w)
		p.mu.Lock()
		j.outstanding--
		j.helpersNow--
		if j.outstanding == 0 && j.nextPart >= j.parts {
			p.done.Broadcast()
		}
	}
	p.spawned--
	p.done.Broadcast()
	p.mu.Unlock()
}

// forEachChannel runs fn(i) for i in [0, level] using the configured worker
// count. Generic (closure-allocating) path for cold kernels and tests; hot
// kernels use dedicated op codes instead.
func (r *Ring) forEachChannel(level int, fn func(i int)) {
	parts := r.parWidth(level + 1)
	if parts <= 1 {
		for i := 0; i <= level; i++ {
			fn(i)
		}
		return
	}
	j := r.getJob()
	j.op, j.fn, j.tasks = opFn, fn, level+1
	r.runParallel(j, parts)
}

package ring

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"alchemist/internal/modmath"
	"alchemist/internal/tokens"
)

// Scheduler correctness: the limb/block scheduler must produce outputs
// byte-identical to the serial loops at EVERY worker count (the partition is
// static and each task unit's arithmetic is independent of the partition),
// deterministically across repeated runs, and degrade to serial — same
// bytes — when the token budget grants no helpers.

// withParallel raises GOMAXPROCS and the compute-token budget for the
// duration of a test so the scheduler actually grants helpers on single-core
// CI hosts (where both default to 1), restoring both on cleanup.
func withParallel(tb testing.TB, n int) {
	tb.Helper()
	old := runtime.GOMAXPROCS(n)
	oldBudget := tokens.Budget()
	tokens.SetBudget(n)
	tb.Cleanup(func() {
		runtime.GOMAXPROCS(old)
		tokens.SetBudget(oldBudget)
	})
}

// schedFixture carries every operand the parallel kernel suite touches.
type schedFixture struct {
	rq, rp *Ring
	ext    *Extender
	dual   *DualConverter
	alpha  int
}

func newSchedFixture(n, nQ, nP int) (*schedFixture, error) {
	primes, err := modmath.GenerateNTTPrimes(40, uint64(2*n), nQ+nP)
	if err != nil {
		return nil, err
	}
	rq, err := NewRing(n, primes[:nQ])
	if err != nil {
		return nil, err
	}
	rp, err := NewRing(n, primes[nQ:])
	if err != nil {
		return nil, err
	}
	f := &schedFixture{rq: rq, rp: rp, ext: NewExtender(rq, rp), alpha: 2}
	toQ := NewBasisConverter(primes[:f.alpha], primes[:nQ])
	toP := NewBasisConverter(primes[:f.alpha], primes[nQ:])
	toQ.BindScheduler(rq)
	toP.BindScheduler(rq)
	f.dual, err = NewDualConverter(toQ, toP, 0)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// runKernelSuite runs every scheduler-dispatched kernel once with operands
// derived from seed and returns named snapshots of all outputs.
func (f *schedFixture) runKernelSuite(seed int64) map[string][][]uint64 {
	r := f.rq
	level := r.MaxLevel()
	res := make(map[string][][]uint64)
	snap := func(name string, p *Poly, lvl int) {
		cp := make([][]uint64, lvl+1)
		for i := range cp {
			cp[i] = append([]uint64(nil), p.Coeffs[i]...)
		}
		res[name] = cp
	}
	a := randPoly(r, level, seed)
	b := randPoly(r, level, seed+1)
	out := r.NewPoly(level)

	p := r.Clone(level, a)
	r.NTT(level, p)
	snap("ntt", p, level)
	r.INTT(level, p)
	snap("intt", p, level)

	r.Add(level, a, b, out)
	snap("add", out, level)
	r.Sub(level, a, b, out)
	snap("sub", out, level)
	r.Neg(level, a, out)
	snap("neg", out, level)
	r.MulCoeffs(level, a, b, out)
	snap("mul", out, level)
	acc := r.Clone(level, b)
	r.MulCoeffsAndAdd(level, a, b, acc)
	snap("muladd", acc, level)
	r.MulScalar(level, a, 0x1234567, out)
	snap("mulscalar", out, level)

	r.AutomorphismNTT(level, a, 5, out)
	snap("autontt", out, level)

	pLevel := f.rp.MaxLevel()
	outP := f.rp.NewPoly(pLevel)
	f.ext.ModUp(level, a, outP)
	snap("modup", outP, pLevel)
	f.ext.ModDown(level, a, outP, out)
	snap("moddown", out, level)
	f.ext.ModDownExact(level, a, outP, out)
	snap("moddownexact", out, level)
	f.ext.RescaleByLastModulus(level, a, out)
	snap("rescale", out, level-1)

	outQ2 := r.NewPoly(level)
	outP2 := f.rp.NewPoly(pLevel)
	f.dual.ConvertBoth(f.alpha-1, a.Coeffs[:f.alpha], outQ2.Coeffs, outP2.Coeffs, level+1)
	snap("convboth-q", outQ2, level)
	snap("convboth-p", outP2, pLevel)

	d := []*Poly{randPoly(r, level, seed+10), randPoly(r, level, seed+11), randPoly(r, level, seed+12)}
	kB := []*Poly{randPoly(r, level, seed+20), randPoly(r, level, seed+21), randPoly(r, level, seed+22)}
	kA := []*Poly{randPoly(r, level, seed+30), randPoly(r, level, seed+31), randPoly(r, level, seed+32)}
	outA := r.NewPoly(level)
	r.KSAccumulate(level, d, kB, kA, 0, false, out, outA)
	snap("ksacc-b", out, level)
	snap("ksacc-a", outA, level)
	r.KSAccumulate(level, d, kB, kA, 5, true, out, outA)
	snap("ksacc-perm-b", out, level)
	snap("ksacc-perm-a", outA, level)
	return res
}

// diffSuites fails the test naming the first kernel and coefficient where
// the two snapshot sets disagree.
func diffSuites(tb testing.TB, label string, want, got map[string][][]uint64) {
	tb.Helper()
	if len(want) != len(got) {
		tb.Fatalf("%s: snapshot count mismatch: %d vs %d", label, len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok || len(g) != len(w) {
			tb.Fatalf("%s: kernel %s: missing or misshapen snapshot", label, name)
		}
		for i := range w {
			for k := range w[i] {
				if w[i][k] != g[i][k] {
					tb.Fatalf("%s: kernel %s: limb %d coeff %d: serial %d != parallel %d",
						label, name, i, k, w[i][k], g[i][k])
				}
			}
		}
	}
}

// schedFixtureCached builds the (expensive) fixture once for the fuzz
// entries and byte-identity tests that share parameters.
var schedFixtureOnce struct {
	sync.Once
	f   *schedFixture
	err error
}

func cachedSchedFixture(tb testing.TB) *schedFixture {
	tb.Helper()
	schedFixtureOnce.Do(func() {
		// Degree past minElemParN so the elementwise kernels dispatch too.
		schedFixtureOnce.f, schedFixtureOnce.err = newSchedFixture(minElemParN, 7, 2)
	})
	if schedFixtureOnce.err != nil {
		tb.Fatal(schedFixtureOnce.err)
	}
	return schedFixtureOnce.f
}

// TestParallelKernelsMatchSerial pins byte-identity of the full kernel suite
// across worker counts, including counts above the task count and above
// GOMAXPROCS (both clamp).
func TestParallelKernelsMatchSerial(t *testing.T) {
	f := cachedSchedFixture(t)
	withParallel(t, 4)
	f.rq.SetWorkers(1)
	f.rp.SetWorkers(1)
	want := f.runKernelSuite(42)
	for _, w := range []int{2, 3, 4, 8, 64} {
		f.rq.SetWorkers(w)
		f.rp.SetWorkers(w)
		got := f.runKernelSuite(42)
		diffSuites(t, fmt.Sprintf("workers=%d", w), want, got)
	}
	f.rq.SetWorkers(1)
	f.rp.SetWorkers(1)
	f.rq.Close()
	f.rp.Close()
}

// FuzzParallelVsSerialKernels fuzzes operand contents and an arbitrary
// worker count against the serial oracle: NTT, elementwise, Bconv (ModUp /
// dual conversion), KSAccumulate, ModDown and rescale must be byte-identical
// at worker counts 1/2/3/8 and at the fuzzed count.
func FuzzParallelVsSerialKernels(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(7), uint8(3))
	f.Add(int64(1<<40), uint8(8))
	fx := cachedSchedFixture(f)
	withParallel(f, 4)
	f.Fuzz(func(t *testing.T, seed int64, wsel uint8) {
		fx.rq.SetWorkers(1)
		fx.rp.SetWorkers(1)
		want := fx.runKernelSuite(seed)
		for _, w := range []int{2, 3, 8, int(wsel%16) + 1} {
			fx.rq.SetWorkers(w)
			fx.rp.SetWorkers(w)
			got := fx.runKernelSuite(seed)
			diffSuites(t, fmt.Sprintf("workers=%d", w), want, got)
		}
		fx.rq.SetWorkers(1)
		fx.rp.SetWorkers(1)
	})
}

// TestParallelDeterminism asserts repeated parallel runs are bit-identical:
// the static partition leaves nothing to thread timing.
func TestParallelDeterminism(t *testing.T) {
	f := cachedSchedFixture(t)
	withParallel(t, 3)
	f.rq.SetWorkers(3)
	f.rp.SetWorkers(3)
	defer func() {
		f.rq.SetWorkers(1)
		f.rp.SetWorkers(1)
	}()
	want := f.runKernelSuite(99)
	for run := 0; run < 5; run++ {
		diffSuites(t, fmt.Sprintf("run=%d", run), want, f.runKernelSuite(99))
	}
}

// TestZeroTokenBudgetDegradesToSerial drains the compute-token pool and
// checks the parallel-configured suite still completes with serial-identical
// bytes: a zero grant means the caller runs every partition inline.
func TestZeroTokenBudgetDegradesToSerial(t *testing.T) {
	f := cachedSchedFixture(t)
	withParallel(t, 4)
	f.rq.SetWorkers(1)
	f.rp.SetWorkers(1)
	want := f.runKernelSuite(7)

	held := tokens.Acquire(tokens.Budget())
	if held == 0 {
		t.Fatal("could not drain token budget")
	}
	defer tokens.Release(held)
	f.rq.SetWorkers(8)
	f.rp.SetWorkers(8)
	defer func() {
		f.rq.SetWorkers(1)
		f.rp.SetWorkers(1)
	}()
	diffSuites(t, "zero-budget", want, f.runKernelSuite(7))
}

// TestPartBoundsCoverDisjoint pins the static partition arithmetic: for any
// (tasks, parts) the ranges concatenate to exactly [0, tasks).
func TestPartBoundsCoverDisjoint(t *testing.T) {
	for tasks := 1; tasks <= 48; tasks++ {
		for parts := 1; parts <= tasks; parts++ {
			next := 0
			for w := 0; w < parts; w++ {
				lo, hi := partBounds(tasks, parts, w)
				if lo != next {
					t.Fatalf("tasks=%d parts=%d w=%d: lo=%d want %d", tasks, parts, w, lo, next)
				}
				if hi < lo {
					t.Fatalf("tasks=%d parts=%d w=%d: hi=%d < lo=%d", tasks, parts, w, hi, lo)
				}
				next = hi
			}
			if next != tasks {
				t.Fatalf("tasks=%d parts=%d: covered %d", tasks, parts, next)
			}
		}
	}
}

// TestTokensAcquireRelease pins the non-blocking token-budget contract.
func TestTokensAcquireRelease(t *testing.T) {
	old := tokens.Budget()
	defer tokens.SetBudget(old)
	tokens.SetBudget(3)
	if g := tokens.Acquire(2); g != 2 {
		t.Fatalf("Acquire(2) = %d, want 2", g)
	}
	if g := tokens.Acquire(5); g != 1 {
		t.Fatalf("Acquire(5) with 1 left = %d, want 1", g)
	}
	if g := tokens.Acquire(1); g != 0 {
		t.Fatalf("Acquire on empty pool = %d, want 0", g)
	}
	if tokens.InUse() != 3 {
		t.Fatalf("InUse = %d, want 3", tokens.InUse())
	}
	// Shrinking below the outstanding claims must not panic and must keep
	// new acquisitions at zero until enough is released.
	tokens.SetBudget(1)
	if g := tokens.Acquire(1); g != 0 {
		t.Fatalf("Acquire after shrink = %d, want 0", g)
	}
	tokens.Release(3)
	if g := tokens.Acquire(1); g != 1 {
		t.Fatalf("Acquire after release = %d, want 1", g)
	}
	tokens.Release(1)
}

// TestConcurrentKernelSuiteSharedScheduler hammers one worker-enabled ring
// with the scheduler-dispatched kernels from several goroutines at once (the
// engine-composition shape: outer job parallelism over inner limb
// parallelism, both drawing on one token budget). Run under -race by the CI
// worker-pool lifecycle leg.
func TestConcurrentKernelSuiteSharedScheduler(t *testing.T) {
	f, err := newSchedFixture(256, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	withParallel(t, 4)
	f.rq.SetWorkers(3)
	f.rp.SetWorkers(3)
	defer f.rq.Close()
	defer f.rp.Close()

	f.rq.SetWorkers(1)
	want := f.runKernelSuite(5)
	f.rq.SetWorkers(3)

	const goroutines = 6
	var wg sync.WaitGroup
	fail := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				got := f.runKernelSuite(5)
				for name, w := range want {
					gg := got[name]
					for i := range w {
						for k := range w[i] {
							if w[i][k] != gg[i][k] {
								select {
								case fail <- fmt.Sprintf("kernel %s limb %d coeff %d corrupted under concurrency", name, i, k):
								default:
								}
								return
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for e := range fail {
		t.Error(e)
	}
}

// measureAllocs counts heap allocations across runs of f on the current
// goroutine AND every helper goroutine (testing.AllocsPerRun pins GOMAXPROCS
// to 1 for the measurement, which would force the scheduler onto its serial
// path and measure nothing — so this reads the global counter instead).
func measureAllocs(warm, runs int, f func()) uint64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.GC()
	// Warm AFTER the GCs: collection empties the sync.Pool tiers (poly arena,
	// scratch overflow), so warming first would leave the measured region to
	// repopulate them.
	for i := 0; i < warm; i++ {
		f()
	}
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// TestParallelKernelsAllocFree pins 0 allocs/op on the parallel dispatch
// path: op-coded jobs from the free list, resident workers, shard-routed
// scratch — nothing may allocate in steady state with workers > 1.
func TestParallelKernelsAllocFree(t *testing.T) {
	f := cachedSchedFixture(t)
	withParallel(t, 4)
	r := f.rq
	r.SetWorkers(4)
	defer r.SetWorkers(1)
	level := r.MaxLevel()
	a := randPoly(r, level, 3)
	out := r.NewPoly(level)
	outA := r.NewPoly(level)
	outP := f.rp.NewPoly(f.rp.MaxLevel())
	d := []*Poly{randPoly(r, level, 10), randPoly(r, level, 11), randPoly(r, level, 12)}
	kB := []*Poly{randPoly(r, level, 20), randPoly(r, level, 21), randPoly(r, level, 22)}
	kA := []*Poly{randPoly(r, level, 30), randPoly(r, level, 31), randPoly(r, level, 32)}

	kernels := map[string]func(){
		"ntt": func() { r.NTT(level, a) },
		"add": func() { r.Add(level, a, a, out) },
		"automorphism": func() {
			r.AutomorphismNTT(level, a, 5, out)
		},
		"modup":   func() { f.ext.ModUp(level, a, outP) },
		"moddown": func() { f.ext.ModDown(level, a, outP, out) },
		"rescale": func() { f.ext.RescaleByLastModulus(level, a, out) },
		"ksacc":   func() { r.KSAccumulate(level, d, kB, kA, 5, true, out, outA) },
	}
	for name, fn := range kernels {
		const runs = 50
		// Warm runs prime workers, the job free list, the automorphism perm
		// cache and every scratch shard. The assertion is amortized: goroutines
		// migrating across Ps can trigger O(1) sync.Pool per-P chain growth
		// (a few mallocs total, independent of run count), but any per-op
		// allocation shows up as >= runs. Serial-path exact-0 pins live in
		// alloc_test.go; this guards the parallel dispatch path.
		if got := measureAllocs(16, runs, fn); got >= runs {
			t.Errorf("%s: %d allocs across %d parallel runs: allocating per op", name, got, runs)
		} else if got != 0 {
			t.Logf("%s: %d residual allocs across %d runs (per-P pool growth)", name, got, runs)
		}
	}
}

// BenchmarkBufPoolContention measures the resident tier under concurrent
// Get/Put traffic from 4 goroutines: "sharded" routes each goroutine to its
// own shard (as the scheduler's partitions do), "single" forces everyone
// through shard 0 (the pre-sharding behavior). The gap is the mutex/cache-
// line contention the sharding exists to kill; on a single-core host the two
// converge, which is itself the honest result.
func BenchmarkBufPoolContention(b *testing.B) {
	const workers = 4
	const words = 1 << 12
	run := func(b *testing.B, sharded bool) {
		var bp BufPool
		old := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(old)
		var wg sync.WaitGroup
		per := b.N/workers + 1
		b.ResetTimer()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				shard := 0
				if sharded {
					shard = w
				}
				for i := 0; i < per; i++ {
					buf := bp.GetShard(shard, words)
					buf[0] = uint64(i)
					bp.PutShard(shard, buf)
				}
			}(w)
		}
		wg.Wait()
	}
	b.Run("single", func(b *testing.B) { run(b, false) })
	b.Run("sharded", func(b *testing.B) { run(b, true) })
}

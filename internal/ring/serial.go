package ring

import (
	"encoding/binary"
	"fmt"
)

// Binary serialization for polynomials: FHE ciphertexts and keys cross the
// network in any deployment, so every transportable object implements
// encoding.BinaryMarshaler / BinaryUnmarshaler.
//
// Poly wire format: uint32 level count, uint32 degree, then levels×N
// little-endian uint64 coefficients.

// MarshalBinary encodes the polynomial.
func (p *Poly) MarshalBinary() ([]byte, error) {
	if len(p.Coeffs) == 0 {
		return nil, fmt.Errorf("ring: cannot marshal empty poly")
	}
	n := len(p.Coeffs[0])
	out := make([]byte, 8+8*len(p.Coeffs)*n)
	binary.LittleEndian.PutUint32(out[0:], uint32(len(p.Coeffs)))
	binary.LittleEndian.PutUint32(out[4:], uint32(n))
	off := 8
	for _, ch := range p.Coeffs {
		if len(ch) != n {
			return nil, fmt.Errorf("ring: ragged channels")
		}
		for _, c := range ch {
			binary.LittleEndian.PutUint64(out[off:], c)
			off += 8
		}
	}
	return out, nil
}

// UnmarshalBinary decodes into p (allocating the backing storage).
func (p *Poly) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("ring: poly header truncated")
	}
	levels := int(binary.LittleEndian.Uint32(data[0:]))
	n := int(binary.LittleEndian.Uint32(data[4:]))
	if levels <= 0 || n <= 0 || levels > 1<<16 || n > 1<<24 {
		return fmt.Errorf("ring: implausible poly header (%d levels, N=%d)", levels, n)
	}
	want := 8 + 8*levels*n
	if len(data) != want {
		return fmt.Errorf("ring: poly payload is %d bytes, want %d", len(data), want)
	}
	backing := make([]uint64, levels*n)
	p.Coeffs = make([][]uint64, levels)
	off := 8
	for i := range p.Coeffs {
		p.Coeffs[i], backing = backing[:n:n], backing[n:]
		for j := 0; j < n; j++ {
			p.Coeffs[i][j] = binary.LittleEndian.Uint64(data[off:])
			off += 8
		}
	}
	return nil
}

package ring

import (
	"testing"
	"testing/quick"
)

func TestPolySerializationRoundTrip(t *testing.T) {
	r := testRing(t, 64, 3)
	level := r.MaxLevel()
	p := randPoly(r, level, 77)
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Poly
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(level, p, &back) {
		t.Fatal("poly serialization round trip failed")
	}
}

func TestPolySerializationValidation(t *testing.T) {
	var p Poly
	if _, err := p.MarshalBinary(); err == nil {
		t.Error("expected empty-poly error")
	}
	if err := p.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Error("expected truncated-header error")
	}
	if err := p.UnmarshalBinary([]byte{1, 0, 0, 0, 8, 0, 0, 0, 1}); err == nil {
		t.Error("expected payload-size error")
	}
	// Implausible headers must be rejected before allocation.
	huge := make([]byte, 8)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F
	huge[4] = 8
	if err := p.UnmarshalBinary(huge); err == nil {
		t.Error("expected implausible-header rejection")
	}
}

func TestQuickPolySerialization(t *testing.T) {
	r := testRing(t, 32, 2)
	f := func(seed int64) bool {
		p := randPoly(r, r.MaxLevel(), seed)
		blob, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		var back Poly
		if err := back.UnmarshalBinary(blob); err != nil {
			return false
		}
		return r.Equal(r.MaxLevel(), p, &back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Package ring implements negacyclic polynomial rings R_q = Z_q[X]/(X^N+1)
// in residue-number-system (RNS) form, together with the polynomial kernels
// both FHE schemes are built from: the number-theoretic transform (NTT), the
// 4-step NTT used by the Alchemist data layout, RNS basis conversion (Bconv),
// ModUp/ModDown, gadget decomposition, automorphisms and samplers.
package ring

import (
	"fmt"

	"alchemist/internal/modmath"
)

// SubRing is the ring Z_q[X]/(X^N+1) for one RNS modulus q, with the
// precomputed NTT tables for negacyclic transforms of length N.
type SubRing struct {
	N int    // polynomial degree, a power of two
	Q uint64 // prime modulus, q ≡ 1 (mod 2N)

	Psi    uint64 // primitive 2N-th root of unity mod q
	PsiInv uint64

	// Twiddle tables in bit-reversed order (Longa–Naehrig layout), with
	// Shoup precomputations for the fast constant-multiplication path.
	psiRev         []uint64
	psiRevShoup    []uint64
	psiInvRev      []uint64
	psiInvRevShoup []uint64

	nInv      uint64 // N^{-1} mod q
	nInvShoup uint64

	// psiInvRevN = psiInvRev[1]·N^{-1} mod q: the last-stage INTT twiddle
	// with the scaling folded in, so INTTLazy needs no separate N^{-1} pass.
	psiInvRevN      uint64
	psiInvRevNShoup uint64

	// Base-2^52 Shoup tables for the AVX512-IFMA butterfly kernels:
	// w52 = ⌊w·2^52/q⌋ replaces the base-2^64 precomputation, so the lazy
	// product is two 52-bit madds instead of a composed 64×64 multiply.
	// Built only when the IFMA tier can run this subring (q < 2^50, so the
	// whole [0,4q) lazy domain fits a 52-bit madd operand).
	psiRev52     []uint64
	psiInvRev52  []uint64
	nInv52       uint64
	psiInvRevN52 uint64
	ifma         bool // IFMA tier usable: CPU support ∧ q < 2^50 ∧ N ≥ minVecN

	barrett modmath.Barrett

	scratch BufPool // 4-step NTT matrix scratch (fourstep.go)
}

// NewSubRing builds the subring of degree n (a power of two ≥ 2) modulo the
// prime q, which must satisfy q ≡ 1 (mod 2n).
func NewSubRing(n int, q uint64) (*SubRing, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: degree %d is not a power of two ≥ 2", n)
	}
	if !modmath.IsPrime(q) {
		return nil, fmt.Errorf("ring: modulus %d is not prime", q)
	}
	// 2n is a power of two (validated above), so the NTT-friendliness test
	// q ≡ 1 (mod 2N) reduces to a mask.
	if (q-1)&uint64(2*n-1) != 0 {
		return nil, fmt.Errorf("ring: modulus %d is not ≡ 1 mod 2N=%d", q, 2*n)
	}
	psi, err := modmath.RootOfUnity(uint64(2*n), q)
	if err != nil {
		return nil, err
	}
	s := &SubRing{
		N:       n,
		Q:       q,
		Psi:     psi,
		PsiInv:  modmath.InvMod(psi, q),
		barrett: modmath.NewBarrett(q),
	}
	s.buildTables()
	return s, nil
}

func (s *SubRing) buildTables() {
	n := s.N
	logN := log2(n)
	s.psiRev = make([]uint64, n)
	s.psiRevShoup = make([]uint64, n)
	s.psiInvRev = make([]uint64, n)
	s.psiInvRevShoup = make([]uint64, n)
	pow, powInv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		r := bitrev(uint32(i), logN)
		s.psiRev[r] = pow
		s.psiInvRev[r] = powInv
		pow = modmath.MulMod(pow, s.Psi, s.Q)
		powInv = modmath.MulMod(powInv, s.PsiInv, s.Q)
	}
	for i := 0; i < n; i++ {
		s.psiRevShoup[i] = modmath.ShoupPrecomp(s.psiRev[i], s.Q)
		s.psiInvRevShoup[i] = modmath.ShoupPrecomp(s.psiInvRev[i], s.Q)
	}
	s.nInv = modmath.InvMod(uint64(n), s.Q)
	s.nInvShoup = modmath.ShoupPrecomp(s.nInv, s.Q)
	s.psiInvRevN = modmath.MulMod(s.psiInvRev[1], s.nInv, s.Q)
	s.psiInvRevNShoup = modmath.ShoupPrecomp(s.psiInvRevN, s.Q)
	if useNTTKernIFMA && s.Q < 1<<50 && n >= minVecN {
		s.ifma = true
		s.psiRev52 = make([]uint64, n)
		s.psiInvRev52 = make([]uint64, n)
		for i := 0; i < n; i++ {
			s.psiRev52[i] = shoup52(s.psiRev[i], s.Q)
			s.psiInvRev52[i] = shoup52(s.psiInvRev[i], s.Q)
		}
		s.nInv52 = shoup52(s.nInv, s.Q)
		s.psiInvRevN52 = shoup52(s.psiInvRevN, s.Q)
	}
}

func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

func bitrev(x uint32, bits int) uint32 {
	var r uint32
	for i := 0; i < bits; i++ {
		r = r<<1 | (x & 1)
		x >>= 1
	}
	return r
}

// NTT transforms coefficients p (natural order) into the NTT domain
// (bit-reversed order) in place, using the negacyclic Cooley–Tukey DIT
// network.
func (s *SubRing) NTT(p []uint64) {
	n, q := s.N, s.Q
	t := n
	for m := 1; m < n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := s.psiRev[m+i]
			ws := s.psiRevShoup[m+i]
			j1 := 2 * i * t
			for j := j1; j < j1+t; j++ {
				u := p[j]
				v := modmath.MulModShoup(p[j+t], w, ws, q)
				p[j] = modmath.AddMod(u, v, q)
				p[j+t] = modmath.SubMod(u, v, q)
			}
		}
	}
}

// INTT transforms p from the NTT domain (bit-reversed order) back to natural
// coefficient order in place, using the Gentleman–Sande DIF network and the
// final N^{-1} scaling.
func (s *SubRing) INTT(p []uint64) {
	n, q := s.N, s.Q
	t := 1
	for m := n; m > 1; m >>= 1 {
		h := m >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			w := s.psiInvRev[h+i]
			ws := s.psiInvRevShoup[h+i]
			for j := j1; j < j1+t; j++ {
				u := p[j]
				v := p[j+t]
				p[j] = modmath.AddMod(u, v, q)
				p[j+t] = modmath.MulModShoup(modmath.SubMod(u, v, q), w, ws, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := 0; j < n; j++ {
		p[j] = modmath.MulModShoup(p[j], s.nInv, s.nInvShoup, q)
	}
}

// MulCoeffs sets out = a ⊙ b pointwise mod q (any domain).
func (s *SubRing) MulCoeffs(a, b, out []uint64) {
	for i := range out {
		out[i] = s.barrett.MulMod(a[i], b[i])
	}
}

// MulCoeffsAndAdd sets out = out + a ⊙ b pointwise mod q.
func (s *SubRing) MulCoeffsAndAdd(a, b, out []uint64) {
	q := s.Q
	for i := range out {
		out[i] = modmath.AddMod(out[i], s.barrett.MulMod(a[i], b[i]), q)
	}
}

// Add sets out = a + b pointwise mod q.
func (s *SubRing) Add(a, b, out []uint64) {
	q := s.Q
	for i := range out {
		out[i] = modmath.AddMod(a[i], b[i], q)
	}
}

// Sub sets out = a - b pointwise mod q.
func (s *SubRing) Sub(a, b, out []uint64) {
	q := s.Q
	for i := range out {
		out[i] = modmath.SubMod(a[i], b[i], q)
	}
}

// Neg sets out = -a pointwise mod q.
func (s *SubRing) Neg(a, out []uint64) {
	q := s.Q
	for i := range out {
		out[i] = modmath.NegMod(a[i], q)
	}
}

// ReduceWord folds an arbitrary 64-bit value into [0, Q) via the subring's
// precomputed Barrett state — the sanctioned alternative to a raw % when a
// residue crosses into this channel.
func (s *SubRing) ReduceWord(x uint64) uint64 { return s.barrett.ReduceWord(x) }

// MulScalar sets out = c · a pointwise mod q.
func (s *SubRing) MulScalar(a []uint64, c uint64, out []uint64) {
	c = s.barrett.ReduceWord(c)
	cs := modmath.ShoupPrecomp(c, s.Q)
	for i := range out {
		out[i] = modmath.MulModShoup(a[i], c, cs, s.Q)
	}
}

// MulScalarAndAdd sets out = out + c · a pointwise mod q.
func (s *SubRing) MulScalarAndAdd(a []uint64, c uint64, out []uint64) {
	c = s.barrett.ReduceWord(c)
	cs := modmath.ShoupPrecomp(c, s.Q)
	q := s.Q
	for i := range out {
		out[i] = modmath.AddMod(out[i], modmath.MulModShoup(a[i], c, cs, q), q)
	}
}

// NegacyclicConvolve computes the schoolbook negacyclic product of a and b
// into out: out = a·b mod (X^N+1, q). O(N^2); reference implementation for
// tests.
func (s *SubRing) NegacyclicConvolve(a, b, out []uint64) {
	n, q := s.N, s.Q
	acc := make([]uint64, n)
	for i := 0; i < n; i++ {
		ai := a[i]
		if ai == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			p := s.barrett.MulMod(ai, b[j])
			k := i + j
			if k < n {
				acc[k] = modmath.AddMod(acc[k], p, q)
			} else {
				acc[k-n] = modmath.SubMod(acc[k-n], p, q)
			}
		}
	}
	copy(out, acc)
}

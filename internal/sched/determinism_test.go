package sched

import (
	"reflect"
	"testing"

	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

// TestCompileDeterministic: compiling the same graph twice yields
// byte-identical programs — the property that makes compiled streams
// cacheable, static verification meaningful (a finding reproduces), and
// parallel batch evaluation equal to serial evaluation.
func TestCompileDeterministic(t *testing.T) {
	s := workload.PaperShape()
	graphs := map[string]*trace.Graph{
		"pmult":     workload.Pmult(s),
		"keyswitch": workload.Keyswitch(s),
		"cmult":     workload.Cmult(s),
		"rotation":  workload.Rotation(s),
		"pbs1":      workload.PBSBatch(workload.PBSSetI(), 8),
		"bootstrap": workload.Bootstrap(workload.AppShape(), workload.DefaultBootstrapConfig()),
	}
	for name, g := range graphs {
		a := compile(t, g)
		b := compile(t, g)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two compilations of the same graph differ", name)
		}
		// A clone round-trips too, so mutation testing starts from a
		// faithful copy.
		if c := a.Clone(); !reflect.DeepEqual(a, c) {
			t.Errorf("%s: Clone differs from its source", name)
		}
	}
}

package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"alchemist/internal/arch"
	"alchemist/internal/sim"
	"alchemist/internal/trace"
)

// randomGraph builds a random valid op DAG from a seed.
func randomGraph(seed int64) *trace.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &trace.Graph{Name: "random"}
	nOps := 3 + rng.Intn(20)
	degrees := []int{1024, 4096, 16384, 65536}
	for i := 0; i < nOps; i++ {
		n := degrees[rng.Intn(len(degrees))]
		ch := 1 + rng.Intn(44)
		polys := 1 + rng.Intn(3)
		var op trace.Op
		switch rng.Intn(7) {
		case 0:
			op = trace.Op{Kind: trace.KindNTT, N: n, Channels: ch, Polys: polys}
		case 1:
			op = trace.Op{Kind: trace.KindINTT, N: n, Channels: ch, Polys: polys}
		case 2:
			op = trace.Op{Kind: trace.KindBconv, N: n, SrcChannels: 1 + rng.Intn(12),
				Channels: ch, Polys: polys}
		case 3:
			op = trace.Op{Kind: trace.KindDecompPolyMult, N: n, Channels: ch,
				Dnum: 1 + rng.Intn(8), Polys: polys,
				StreamBytes: int64(rng.Intn(1 << 26))}
		case 4:
			op = trace.Op{Kind: trace.KindEWMult, N: n, Channels: ch, Polys: polys}
		case 5:
			op = trace.Op{Kind: trace.KindEWAdd, N: n, Channels: ch, Polys: polys}
		default:
			op = trace.Op{Kind: trace.KindAutomorphism, N: n, Channels: ch, Polys: polys}
		}
		op.Label = "op"
		var deps []int
		for d := 0; d < i; d++ {
			if rng.Intn(4) == 0 {
				deps = append(deps, d)
			}
		}
		g.Add(op, deps...)
	}
	return g
}

func TestQuickRandomGraphsAgreeAcrossModels(t *testing.T) {
	cfg := arch.Default()
	f := func(seed int64) bool {
		g := randomGraph(seed)
		agg, err := sim.Simulate(cfg, g)
		if err != nil {
			return false
		}
		prog, err := Compile(cfg, g)
		if err != nil {
			return false
		}
		per := Execute(prog)
		// Quantization can only slow the per-unit model, never speed it up,
		// and never by more than 15%.
		ratio := float64(per.Cycles) / float64(agg.Cycles)
		return ratio >= 0.999 && ratio < 1.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickSimInvariants(t *testing.T) {
	cfg := arch.Default()
	f := func(seed int64) bool {
		g := randomGraph(seed)
		res, err := sim.Simulate(cfg, g)
		if err != nil {
			return false
		}
		if res.Utilization < 0 || res.Utilization > 1.0001 {
			return false
		}
		if res.ComputeUtilization < 0 || res.ComputeUtilization > 1.0001 {
			return false
		}
		// Makespan covers both compute and memory demands.
		if res.Cycles < res.MemCycles {
			return false
		}
		if res.StreamBytes != g.TotalStreamBytes() {
			return false
		}
		// Monotonicity: doubling cores never slows things down.
		big := cfg
		big.CoresPerUnit = cfg.CoresPerUnit * 2
		res2, err := sim.Simulate(big, g)
		if err != nil {
			return false
		}
		return res2.Cycles <= res.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

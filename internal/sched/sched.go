// Package sched compiles workload graphs into per-computing-unit Meta-OP
// instruction streams, realizing the paper's data management (§5.3): every
// polynomial is distributed across units by slot (Fig. 5b), each unit's
// stream touches only its private scratchpad, and the only inter-unit
// traffic is the transpose phase of the 4-step NTT.
//
// The compiled Program can be executed by the per-unit interpreter in this
// package (Execute), which models each unit's 16 cores independently and is
// cross-checked against the aggregate model in internal/sim.
package sched

import (
	"fmt"
	"math"
	"sync"

	"alchemist/internal/arch"
	"alchemist/internal/errs"
	"alchemist/internal/metaop"
	"alchemist/internal/trace"
)

// Instr is a run of identical Meta-OPs on one computing unit.
type Instr struct {
	Pattern metaop.AccessPattern
	NAccum  int   // the Meta-OP's n
	Cycles  int   // per Meta-OP
	Count   int64 // identical Meta-OPs in this run
	Label   string
}

// UnitStream is the ordered instruction stream of one computing unit within
// a phase.
type UnitStream struct {
	Instrs []Instr
}

// MetaOps returns the total Meta-OP count of the stream.
func (u UnitStream) MetaOps() int64 {
	var t int64
	for _, in := range u.Instrs {
		t += in.Count
	}
	return t
}

// Phase is the compiled form of one graph op: per-unit streams plus the
// non-compute effects (transpose crossing, HBM stream).
type Phase struct {
	OpID  int
	Kind  trace.Kind
	Label string

	Units []UnitStream

	// TransposeElems counts elements crossing the transpose register file
	// after this phase's compute (non-local NTT passes only).
	TransposeElems int64

	// StreamBytes must arrive from HBM before the phase starts.
	StreamBytes int64

	Deps []int
}

// LocalOnly reports whether the phase touches only private scratchpads.
func (p Phase) LocalOnly() bool { return p.TransposeElems == 0 }

// Program is a compiled workload.
type Program struct {
	Cfg    arch.Config
	Name   string
	Phases []Phase
}

// CheckFunc is a post-compile verifier: it receives the source graph and
// the program compiled from it and returns a non-nil error when the program
// violates the architectural contract.
type CheckFunc func(g *trace.Graph, p *Program) error

// postCheck is the optional Compile post-condition. internal/streamcheck
// registers its verifier here (the indirection breaks the import cycle:
// streamcheck needs this package's Program type).
var (
	checkMu   sync.RWMutex
	postCheck CheckFunc
)

// SetPostCompileCheck installs (or, with nil, removes) a verifier that runs
// on every program Compile produces, turning compiler bugs into compile
// errors instead of silently wrong cycle counts.
func SetPostCompileCheck(f CheckFunc) {
	checkMu.Lock()
	postCheck = f
	checkMu.Unlock()
}

func compileCheck() CheckFunc {
	checkMu.RLock()
	defer checkMu.RUnlock()
	return postCheck
}

// Compile lowers every op of the graph into per-unit Meta-OP streams under
// the slot-based partitioning. Failures wrap the errs sentinels
// (errs.ErrBadConfig for shape problems; errs.ErrIllegalStream when an
// installed post-compile check rejects the output).
func Compile(cfg arch.Config, g *trace.Graph) (*Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sched: %w: %w", errs.ErrBadConfig, err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	if cfg.Lanes != metaop.J {
		return nil, fmt.Errorf("sched: lane width %d unsupported (Meta-OP lowering is j=%d): %w",
			cfg.Lanes, metaop.J, errs.ErrBadConfig)
	}
	prog := &Program{Cfg: cfg, Name: g.Name}
	units := cfg.Units
	for _, op := range g.Ops {
		ph := Phase{
			OpID:  op.ID,
			Kind:  op.Kind,
			Label: op.Label,
			Units: make([]UnitStream, units),
			Deps:  append([]int(nil), op.Deps...),
		}
		ph.StreamBytes = op.StreamBytes
		// Slot partitioning: every unit owns N/units slots of every channel
		// of every dnum group (Fig. 5b), so Meta-OP counts split evenly;
		// the remainder goes to the low-numbered units.
		for _, b := range metaop.Lower(op) {
			per := b.Count / int64(units)
			rem := b.Count % int64(units)
			for u := 0; u < units; u++ {
				c := per
				if int64(u) < rem {
					c++
				}
				if c == 0 {
					continue
				}
				ph.Units[u].Instrs = append(ph.Units[u].Instrs, Instr{
					Pattern: b.Pattern,
					NAccum:  b.NAccum,
					Cycles:  b.Cycles,
					Count:   c,
					Label:   b.Label,
				})
			}
		}
		if (op.Kind == trace.KindNTT || op.Kind == trace.KindINTT) &&
			!op.Local && op.N > cfg.Units {
			ph.TransposeElems = int64(op.N) * int64(op.Channels) * int64(op.Polys)
		}
		prog.Phases = append(prog.Phases, ph)
	}
	if f := compileCheck(); f != nil {
		if err := f(g, prog); err != nil {
			return nil, fmt.Errorf("sched: %w", err)
		}
	}
	return prog, nil
}

// Clone returns a deep copy of the program. The stream verifier's mutation
// harness clones before mutating so the original stays intact.
func (p *Program) Clone() *Program {
	q := &Program{Cfg: p.Cfg, Name: p.Name, Phases: make([]Phase, len(p.Phases))}
	for i, ph := range p.Phases {
		np := ph
		np.Deps = append([]int(nil), ph.Deps...)
		np.Units = make([]UnitStream, len(ph.Units))
		for u, us := range ph.Units {
			np.Units[u].Instrs = append([]Instr(nil), us.Instrs...)
		}
		q.Phases[i] = np
	}
	return q
}

// ExecResult is the outcome of per-unit execution.
type ExecResult struct {
	Cycles         int64
	BusyLaneCycles int64
	// Imbalance is the max/mean ratio of per-unit busy cycles (1.0 = ideal).
	Imbalance float64
	// PerUnitBusy is each unit's total occupied cycles.
	PerUnitBusy []int64
	// TransposeCycles is the total time spent in transpose phases.
	TransposeCycles int64
	// MemCycles is the total HBM streaming time.
	MemCycles int64
}

// Execute interprets the program: each phase runs its unit streams in
// parallel (a unit's cores consume its Meta-OPs 16 at a time), the phase
// ends when the slowest unit and the transpose crossing finish, and HBM
// streams gate phase starts exactly as in internal/sim.
func Execute(p *Program) ExecResult {
	cfg := p.Cfg
	cores := int64(cfg.CoresPerUnit)
	res := ExecResult{PerUnitBusy: make([]int64, cfg.Units)}
	finish := make([]int64, len(p.Phases))
	var computeFree, memFree int64

	for i, ph := range p.Phases {
		// Per-unit duration: cores inside a unit drain the stream in
		// parallel runs of 16.
		var longest int64
		for u := range ph.Units {
			var t int64
			for _, in := range ph.Units[u].Instrs {
				rounds := (in.Count + cores - 1) / cores
				dt := rounds * int64(in.Cycles)
				eff := metaop.PatternEfficiency[in.Pattern]
				t += int64(math.Ceil(float64(dt) / eff))
			}
			res.PerUnitBusy[u] += t
			if t > longest {
				longest = t
			}
		}
		var transpose int64
		if ph.TransposeElems > 0 {
			transpose = (ph.TransposeElems + int64(cfg.TransposeLanesPerCycle) - 1) /
				int64(cfg.TransposeLanesPerCycle)
			res.TransposeCycles += transpose
		}
		var streamDone int64
		if ph.StreamBytes > 0 {
			memFree += int64(math.Ceil(float64(ph.StreamBytes) / cfg.HBMBytesPerCycle()))
			streamDone = memFree
			res.MemCycles = memFree
		}
		ready := int64(0)
		for _, d := range ph.Deps {
			if finish[d] > ready {
				ready = finish[d]
			}
		}
		start := ready
		if computeFree > start {
			start = computeFree
		}
		if streamDone > start {
			start = streamDone
		}
		end := start + longest + transpose
		computeFree = end
		finish[i] = end
		if end > res.Cycles {
			res.Cycles = end
		}
	}
	var sum, max int64
	for _, b := range res.PerUnitBusy {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum > 0 {
		mean := float64(sum) / float64(len(res.PerUnitBusy))
		res.Imbalance = float64(max) / mean
	}
	// Busy lane-cycles: every Meta-OP keeps its unit's lanes multiplying.
	for _, ph := range p.Phases {
		for _, us := range ph.Units {
			for _, in := range us.Instrs {
				res.BusyLaneCycles += in.Count * int64(in.Cycles) * int64(cfg.Lanes)
			}
		}
	}
	return res
}

// AccessSummary describes the scratchpad behaviour of a compiled program —
// the §5.3 claim made checkable: how many phases are unit-local and how much
// data crosses the transpose register file.
type AccessSummary struct {
	Phases         int
	LocalPhases    int
	TransposeElems int64
}

// Summarize reports the locality statistics of a program.
func Summarize(p *Program) AccessSummary {
	s := AccessSummary{Phases: len(p.Phases)}
	for _, ph := range p.Phases {
		if ph.LocalOnly() {
			s.LocalPhases++
		}
		s.TransposeElems += ph.TransposeElems
	}
	return s
}

package sched

import (
	"testing"

	"alchemist/internal/arch"
	"alchemist/internal/sim"
	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

func compile(t testing.TB, g *trace.Graph) *Program {
	t.Helper()
	p, err := Compile(arch.Default(), g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPmultExactCycles(t *testing.T) {
	// The per-unit interpreter must reproduce the Table 7 contract too.
	p := compile(t, workload.Pmult(workload.PaperShape()))
	res := Execute(p)
	if res.Cycles != 1056 {
		t.Fatalf("per-unit Pmult %d cycles, want 1056", res.Cycles)
	}
	if res.Imbalance != 1.0 {
		t.Fatalf("Pmult should balance perfectly, got %.3f", res.Imbalance)
	}
}

func TestMatchesAggregateSimulator(t *testing.T) {
	// Per-unit execution must agree with the aggregate model within the
	// rounding introduced by per-unit quantization.
	s := workload.PaperShape()
	app := workload.AppShape()
	graphs := []*trace.Graph{
		workload.Pmult(s),
		workload.Hadd(s),
		workload.Keyswitch(s),
		workload.Cmult(s),
		workload.Bootstrap(app, workload.DefaultBootstrapConfig()),
		workload.PBSBatch(workload.PBSSetI(), 128),
	}
	for _, g := range graphs {
		agg, err := sim.Simulate(arch.Default(), g)
		if err != nil {
			t.Fatal(err)
		}
		per := Execute(compile(t, g))
		ratio := float64(per.Cycles) / float64(agg.Cycles)
		if ratio < 0.95 || ratio > 1.10 {
			t.Errorf("%s: per-unit %d vs aggregate %d cycles (ratio %.3f)",
				g.Name, per.Cycles, agg.Cycles, ratio)
		}
	}
}

func TestSlotPartitioningBalances(t *testing.T) {
	// Every unit holds the same slots of every channel, so all CKKS phases
	// must split evenly (imbalance ≈ 1).
	g := workload.Keyswitch(workload.PaperShape())
	res := Execute(compile(t, g))
	if res.Imbalance > 1.02 {
		t.Fatalf("keyswitch imbalance %.3f, want ≈1.0", res.Imbalance)
	}
}

func TestLocalityContract(t *testing.T) {
	// §5.3: only (I)NTT phases cross the transpose RF; everything else is
	// unit-local. TFHE batched PBS is entirely local.
	p := compile(t, workload.Keyswitch(workload.PaperShape()))
	for _, ph := range p.Phases {
		local := ph.LocalOnly()
		isNTT := ph.Kind == trace.KindNTT || ph.Kind == trace.KindINTT
		if !isNTT && !local {
			t.Errorf("phase %s (%v) should be unit-local", ph.Label, ph.Kind)
		}
		if isNTT && local {
			t.Errorf("global NTT phase %s should cross the transpose RF", ph.Label)
		}
	}
	pbs := compile(t, workload.PBSBatch(workload.PBSSetI(), 128))
	sum := Summarize(pbs)
	if sum.LocalPhases != sum.Phases {
		t.Errorf("batched PBS must be fully unit-local: %d/%d", sum.LocalPhases, sum.Phases)
	}
	if sum.TransposeElems != 0 {
		t.Error("batched PBS must not use the transpose RF")
	}
}

func TestMetaOpConservation(t *testing.T) {
	// Compilation must neither create nor drop Meta-OPs.
	g := workload.Cmult(workload.PaperShape())
	p := compile(t, g)
	var compiled int64
	for _, ph := range p.Phases {
		for _, us := range ph.Units {
			compiled += us.MetaOps()
		}
	}
	var lowered int64
	for _, op := range g.Ops {
		for _, b := range sim.Lower(op) {
			lowered += b.Count
		}
	}
	if compiled != lowered {
		t.Fatalf("Meta-OPs: compiled %d != lowered %d", compiled, lowered)
	}
}

func TestCompileValidation(t *testing.T) {
	bad := arch.Default()
	bad.Lanes = 16
	if _, err := Compile(bad, workload.Pmult(workload.PaperShape())); err == nil {
		t.Fatal("expected lane-width error")
	}
	bad2 := arch.Default()
	bad2.Units = 0
	if _, err := Compile(bad2, workload.Pmult(workload.PaperShape())); err == nil {
		t.Fatal("expected config error")
	}
	g := &trace.Graph{}
	g.Ops = append(g.Ops, &trace.Op{ID: 0, Kind: trace.KindNTT, N: 3, Channels: 1, Polys: 1})
	if _, err := Compile(arch.Default(), g); err == nil {
		t.Fatal("expected graph error")
	}
}

func TestStreamGatingMatchesSim(t *testing.T) {
	// The evk-bound keyswitch must stay memory-bound in the per-unit
	// interpreter as well.
	g := workload.KeyswitchThroughput(workload.PaperShape(), 4)
	res := Execute(compile(t, g))
	if res.MemCycles == 0 {
		t.Fatal("keyswitch must stream evks")
	}
	if res.Cycles < res.MemCycles {
		t.Fatal("makespan cannot beat the stream")
	}
}

// Package sim is the cycle-level performance model of the Alchemist
// accelerator. It executes a trace.Graph on an arch.Config by lowering every
// operator to Meta-OP batches (internal/metaop), scheduling them on the
// unified core array, and modelling the three off-compute effects that set
// real runtimes: HBM streaming of evaluation keys (double-buffered, in
// program order), transpose-register-file phases of the 4-step NTT, and
// scratchpad access-pattern efficiency.
//
// The timing contract is validated against the paper's Table 7: Pmult at
// N=2^16, 44 channels runs in exactly 1056 cycles (946,970 ops/s) and Hadd
// in 1408 (710,227 ops/s); Keyswitch-class ops become evk-bandwidth-bound
// near the published 138k cycles.
package sim

import (
	"fmt"
	"math"
	"sync"

	"alchemist/internal/arch"
	"alchemist/internal/errs"
	"alchemist/internal/metaop"
	"alchemist/internal/trace"
)

// PatternEfficiency is the scratchpad efficiency of each Meta-OP access
// pattern (Table 4). The table lives in internal/metaop so the lowering,
// both simulators and the stream verifier share one copy; this alias keeps
// the historical sim.PatternEfficiency name working.
var PatternEfficiency = metaop.PatternEfficiency

// ClassStats aggregates activity per Figure 1 operator class.
type ClassStats struct {
	OccupancyCycles int64 // cycles the core array spent on this class
	BusyLaneCycles  int64 // multiplier-lane activations
	MultsLazy       int64 // raw mults, Meta-OP (lazy reduction) form
	MultsEager      int64 // raw mults, eager per-term reduction form
}

// OpTiming records the schedule of one op.
type OpTiming struct {
	ID              int
	Kind            trace.Kind
	Label           string
	Start, End      int64
	StreamDone      int64
	OccupancyCycles int64
	TransposeCycles int64
}

// Result is the outcome of a simulation.
type Result struct {
	Name   string
	Config arch.Config

	Cycles  int64   // makespan
	Seconds float64 // makespan at the configured frequency

	BusyLaneCycles int64
	Utilization    float64 // mult-lane busy fraction over the makespan
	// ComputeUtilization is the mult-lane busy fraction over the cycles the
	// core array was occupied (excluding memory stalls) — the FU-busy
	// metric Fig. 7(b) reports for Alchemist and the baselines.
	ComputeUtilization float64

	ComputeCycles int64 // Σ core-array occupancy
	MemCycles     int64 // Σ HBM streaming cycles
	MemBound      bool  // streaming exceeded compute on the critical path

	StreamBytes int64

	PerClass map[trace.Class]*ClassStats
	Timings  []OpTiming
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf("%s: %d cycles (%.3g s), util %.2f, compute %d, mem %d",
		r.Name, r.Cycles, r.Seconds, r.Utilization, r.ComputeCycles, r.MemCycles)
}

// Lower converts one op into Meta-OP batches. The lowering lives in
// internal/metaop (shared with internal/sched and internal/streamcheck);
// this wrapper keeps the historical sim.Lower name working. Panics on an
// unknown op kind (the trace layer validates kinds on construction).
func Lower(op *trace.Op) []metaop.Batch { return metaop.Lower(op) }

// gate is the optional pre-execution stream verifier. When installed (see
// SetPreSimGate), every Simulate call first compiles the graph to per-unit
// Meta-OP streams and statically verifies them, so an illegal program never
// reaches the timing model.
var (
	gateMu sync.RWMutex
	gate   func(arch.Config, *trace.Graph) error
)

// SetPreSimGate installs (or, with nil, removes) a verifier that runs at
// the top of every Simulate call. internal/streamcheck registers its
// checker here; the indirection exists because streamcheck sits above the
// scheduler, which this package must stay importable from.
func SetPreSimGate(f func(arch.Config, *trace.Graph) error) {
	gateMu.Lock()
	gate = f
	gateMu.Unlock()
}

func preSimGate() func(arch.Config, *trace.Graph) error {
	gateMu.RLock()
	defer gateMu.RUnlock()
	return gate
}

// EagerMults returns the op's raw multiplication count under eager per-term
// reduction (the "origin" columns of Tables 2 and 3), for Fig. 7(a).
func EagerMults(op *trace.Op) int64 {
	ch := int64(op.Channels) * int64(op.Polys)
	switch op.Kind {
	case trace.KindNTT, trace.KindINTT:
		return metaop.NTTMults(op.N, false) * ch
	case trace.KindBconv:
		return metaop.ModupMults(op.SrcChannels, op.Channels, op.N, false) * int64(op.Polys)
	case trace.KindDecompPolyMult:
		return metaop.DecompPolyMultMults(op.Dnum, op.N, false) * ch
	case trace.KindEWMult, trace.KindEWMulSub:
		return metaop.EWMultMults(op.N) * ch
	default:
		return 0
	}
}

// Simulate executes the graph on the configuration. Configuration failures
// wrap errs.ErrBadConfig; graph failures carry the trace package's
// classification (errs.ErrGraphCycle or errs.ErrBadConfig).
func Simulate(cfg arch.Config, g *trace.Graph) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w: %w", errs.ErrBadConfig, err)
	}
	if err := g.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	if f := preSimGate(); f != nil {
		if err := f(cfg, g); err != nil {
			return Result{}, fmt.Errorf("sim: %w", err)
		}
	}
	cores := int64(cfg.Cores())
	res := Result{
		Name:     g.Name,
		Config:   cfg,
		PerClass: map[trace.Class]*ClassStats{},
	}
	for _, c := range []trace.Class{trace.ClassNTT, trace.ClassBconv, trace.ClassDecompPolyMult, trace.ClassOther} {
		res.PerClass[c] = &ClassStats{}
	}

	finish := make([]int64, len(g.Ops))
	var computeFree, memFree int64
	bytesPerCycle := cfg.HBMBytesPerCycle()

	for _, op := range g.Ops {
		batches := Lower(op)
		var occupancy, busy, lazy int64
		for _, b := range batches {
			perCore := (b.Count + cores - 1) / cores
			t := perCore * int64(b.Cycles)
			eff := PatternEfficiency[b.Pattern]
			occupancy += int64(math.Ceil(float64(t) / eff))
			busy += b.TotalMults()
			lazy += b.TotalMults()
		}
		// Transpose phases: a non-local (I)NTT tiles as a 4-step transform
		// with one full transpose through the register file per pass pair.
		var transpose int64
		if (op.Kind == trace.KindNTT || op.Kind == trace.KindINTT) && !op.Local && op.N > cfg.Units {
			elems := int64(op.N) * int64(op.Channels) * int64(op.Polys)
			transpose = (elems + int64(cfg.TransposeLanesPerCycle) - 1) / int64(cfg.TransposeLanesPerCycle)
		}

		// HBM streaming: issued in program order, overlapped with compute
		// (double buffering), but the op cannot start before its stream
		// lands.
		var streamCycles, streamDone int64
		if op.StreamBytes > 0 {
			streamCycles = int64(math.Ceil(float64(op.StreamBytes) / bytesPerCycle))
			memFree += streamCycles
			streamDone = memFree
		}

		ready := int64(0)
		for _, d := range op.Deps {
			if finish[d] > ready {
				ready = finish[d]
			}
		}
		start := max64(ready, computeFree, streamDone)
		end := start + occupancy + transpose
		computeFree = end
		finish[op.ID] = end

		cls := res.PerClass[trace.ClassOf(op.Kind)]
		cls.OccupancyCycles += occupancy + transpose
		cls.BusyLaneCycles += busy
		cls.MultsLazy += lazy
		cls.MultsEager += EagerMults(op)

		res.BusyLaneCycles += busy
		res.ComputeCycles += occupancy + transpose
		res.MemCycles += streamCycles
		res.StreamBytes += op.StreamBytes
		res.Timings = append(res.Timings, OpTiming{
			ID: op.ID, Kind: op.Kind, Label: op.Label,
			Start: start, End: end, StreamDone: streamDone,
			OccupancyCycles: occupancy, TransposeCycles: transpose,
		})
		if end > res.Cycles {
			res.Cycles = end
		}
	}
	res.Seconds = float64(res.Cycles) / (cfg.FreqGHz * 1e9)
	res.MemBound = res.MemCycles > res.ComputeCycles
	totalLanes := float64(cfg.TotalLanes()) * float64(res.Cycles)
	if totalLanes > 0 {
		res.Utilization = float64(res.BusyLaneCycles) / totalLanes
	}
	if res.ComputeCycles > 0 {
		res.ComputeUtilization = float64(res.BusyLaneCycles) /
			(float64(cfg.TotalLanes()) * float64(res.ComputeCycles))
	}
	return res, nil
}

// ClassUtilization returns the mult-lane utilization while the given class
// was occupying the array (the per-task utilizations of Fig. 7b).
func (r Result) ClassUtilization(c trace.Class) float64 {
	s := r.PerClass[c]
	if s == nil || s.OccupancyCycles == 0 {
		return 0
	}
	return float64(s.BusyLaneCycles) / (float64(s.OccupancyCycles) * float64(r.Config.TotalLanes()))
}

// MultsTotal returns total raw multiplications in lazy and eager forms
// (Fig. 7a).
func (r Result) MultsTotal() (lazy, eager int64) {
	for _, s := range r.PerClass {
		lazy += s.MultsLazy
		eager += s.MultsEager
	}
	return
}

// ClassShares returns each class's share of eager multiplications — the
// paper's Figure 1 "operator ratio in the algorithm".
func ClassShares(g *trace.Graph) map[trace.Class]float64 {
	totals := map[trace.Class]int64{}
	var sum int64
	for _, op := range g.Ops {
		m := EagerMults(op)
		totals[trace.ClassOf(op.Kind)] += m
		sum += m
	}
	out := map[trace.Class]float64{}
	if sum == 0 {
		return out
	}
	for c, v := range totals {
		out[c] = float64(v) / float64(sum)
	}
	return out
}

func max64(xs ...int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

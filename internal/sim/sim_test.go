package sim

import (
	"errors"
	"testing"

	"alchemist/internal/arch"
	"alchemist/internal/errs"
	"alchemist/internal/trace"
)

func pmultGraph() *trace.Graph {
	g := &trace.Graph{Name: "pmult"}
	g.Add(trace.Op{Kind: trace.KindEWMult, N: 65536, Channels: 44, Polys: 2, Label: "pmult"})
	return g
}

func TestTable7PmultExact(t *testing.T) {
	res, err := Simulate(arch.Default(), pmultGraph())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 1056 {
		t.Fatalf("Pmult cycles %d, want 1056 (Table 7)", res.Cycles)
	}
	ops := int64(1e9) / res.Cycles
	if ops < 946969 || ops > 946971 {
		t.Fatalf("Pmult throughput %d, want 946,970", ops)
	}
}

func TestTable7HaddExact(t *testing.T) {
	g := &trace.Graph{Name: "hadd"}
	g.Add(trace.Op{Kind: trace.KindEWAdd, N: 65536, Channels: 44, Polys: 2, Label: "hadd"})
	res, err := Simulate(arch.Default(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 1408 {
		t.Fatalf("Hadd cycles %d, want 1408 (Table 7)", res.Cycles)
	}
	if ops := int64(1e9) / res.Cycles; ops != 710227 {
		t.Fatalf("Hadd throughput %d, want 710,227", ops)
	}
}

func TestStreamingMakesOpsMemoryBound(t *testing.T) {
	g := &trace.Graph{Name: "stream"}
	g.Add(trace.Op{Kind: trace.KindDecompPolyMult, N: 65536, Channels: 56, Dnum: 4,
		Polys: 2, StreamBytes: 132 << 20, Label: "evk-mult"})
	res, err := Simulate(arch.Default(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MemBound {
		t.Fatal("132 MB evk stream should dominate")
	}
	// ≈ 132 MB / 1000 B-per-cycle ≈ 138k cycles plus compute tail.
	if res.Cycles < 130_000 || res.Cycles > 160_000 {
		t.Fatalf("evk-bound op took %d cycles, want ≈140k", res.Cycles)
	}
}

func TestDependenciesSerialize(t *testing.T) {
	g := &trace.Graph{Name: "chain"}
	a := g.Add(trace.Op{Kind: trace.KindEWMult, N: 65536, Channels: 44, Polys: 2, Label: "a"})
	g.Add(trace.Op{Kind: trace.KindEWMult, N: 65536, Channels: 44, Polys: 2, Label: "b"}, a)
	res, err := Simulate(arch.Default(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 2112 {
		t.Fatalf("chained Pmults took %d cycles, want 2112", res.Cycles)
	}
}

func TestNTTIncludesTranspose(t *testing.T) {
	cfg := arch.Default()
	g := &trace.Graph{Name: "ntt"}
	g.Add(trace.Op{Kind: trace.KindNTT, N: 65536, Channels: 44, Polys: 1, Label: "ntt"})
	res, err := Simulate(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings[0].TransposeCycles == 0 {
		t.Fatal("global NTT must pay a transpose phase")
	}
	// Per-task NTT utilization should land near the paper's 0.85.
	u := res.ClassUtilization(trace.ClassNTT)
	if u < 0.80 || u > 0.92 {
		t.Fatalf("NTT utilization %.3f, want ≈0.85", u)
	}
	// Local (batched TFHE) NTTs skip the transpose.
	g2 := &trace.Graph{Name: "ntt-local"}
	g2.Add(trace.Op{Kind: trace.KindNTT, N: 1024, Channels: 1, Polys: 768, Local: true, Label: "ntt"})
	res2, err := Simulate(cfg, g2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Timings[0].TransposeCycles != 0 {
		t.Fatal("local NTT must not pay a transpose phase")
	}
}

func TestClassUtilizationBands(t *testing.T) {
	// Fig. 7b: Bconv ≈ 0.89, DecompPolyMult ≈ 0.87 on long-running tasks.
	cfg := arch.Default()
	g := &trace.Graph{Name: "bconv"}
	g.Add(trace.Op{Kind: trace.KindBconv, N: 65536, SrcChannels: 11, Channels: 45, Polys: 4, Label: "bconv"})
	res, _ := Simulate(cfg, g)
	if u := res.ClassUtilization(trace.ClassBconv); u < 0.82 || u > 0.95 {
		t.Fatalf("Bconv utilization %.3f, want ≈0.89", u)
	}
	g2 := &trace.Graph{Name: "decomp"}
	g2.Add(trace.Op{Kind: trace.KindDecompPolyMult, N: 65536, Channels: 56, Dnum: 4, Polys: 2, Label: "d"})
	res2, _ := Simulate(cfg, g2)
	if u := res2.ClassUtilization(trace.ClassDecompPolyMult); u < 0.80 || u > 0.93 {
		t.Fatalf("DecompPolyMult utilization %.3f, want ≈0.87", u)
	}
}

func TestClassShares(t *testing.T) {
	g := &trace.Graph{Name: "mix"}
	g.Add(trace.Op{Kind: trace.KindNTT, N: 4096, Channels: 4, Polys: 1, Label: "n"})
	g.Add(trace.Op{Kind: trace.KindBconv, N: 4096, SrcChannels: 2, Channels: 4, Polys: 1, Label: "b"})
	g.Add(trace.Op{Kind: trace.KindEWAdd, N: 4096, Channels: 4, Polys: 1, Label: "a"})
	shares := ClassShares(g)
	total := 0.0
	for _, v := range shares {
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("class shares sum to %v", total)
	}
	if shares[trace.ClassNTT] <= 0 || shares[trace.ClassBconv] <= 0 {
		t.Fatal("NTT and Bconv must both contribute")
	}
}

func TestSimulateValidation(t *testing.T) {
	bad := arch.Default()
	bad.Units = 0
	if _, err := Simulate(bad, pmultGraph()); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("config error = %v, want ErrBadConfig", err)
	}
	g := &trace.Graph{Name: "bad"}
	g.Ops = append(g.Ops, &trace.Op{ID: 0, Kind: trace.KindNTT, N: 100, Channels: 1, Polys: 1})
	if _, err := Simulate(arch.Default(), g); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("graph error = %v, want ErrBadConfig", err)
	}
	cyclic := &trace.Graph{Name: "cyclic"}
	cyclic.Ops = append(cyclic.Ops,
		&trace.Op{ID: 0, Kind: trace.KindNTT, N: 64, Channels: 1, Polys: 1, Deps: []int{0}})
	if _, err := Simulate(arch.Default(), cyclic); !errors.Is(err, errs.ErrGraphCycle) {
		t.Fatalf("cycle error = %v, want ErrGraphCycle", err)
	}
}

func TestMoreCoresNeverSlower(t *testing.T) {
	g := &trace.Graph{Name: "mono"}
	prev := g.Add(trace.Op{Kind: trace.KindNTT, N: 16384, Channels: 24, Polys: 2, Label: "ntt"})
	g.Add(trace.Op{Kind: trace.KindDecompPolyMult, N: 16384, Channels: 24, Dnum: 3, Polys: 2, Label: "d"}, prev)
	base := arch.Default()
	small := base
	small.Units = 64
	rb, err := Simulate(base, g)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Simulate(small, g)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Cycles > rs.Cycles {
		t.Fatalf("128 units (%d cycles) slower than 64 units (%d cycles)", rb.Cycles, rs.Cycles)
	}
}

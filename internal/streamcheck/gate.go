package streamcheck

import (
	"fmt"
	"os"

	"alchemist/internal/arch"
	"alchemist/internal/errs"
	"alchemist/internal/sched"
	"alchemist/internal/sim"
	"alchemist/internal/trace"
)

// Verify runs Check and folds a non-clean report into a single error
// wrapping errs.ErrIllegalStream (classifiable with errors.Is), quoting the
// first finding and the total count.
func Verify(g *trace.Graph, p *sched.Program) error {
	r, err := Check(g, p)
	if err != nil {
		return err
	}
	if r.Clean() {
		return nil
	}
	return fmt.Errorf("streamcheck: %s: %d finding(s), first: %s: %w",
		r.Name, len(r.Findings), r.Findings[0], errs.ErrIllegalStream)
}

// CompileAndVerify compiles the graph and verifies the result, returning
// the program only when it satisfies the whole §5.3 contract.
func CompileAndVerify(cfg arch.Config, g *trace.Graph) (*sched.Program, error) {
	p, err := sched.Compile(cfg, g)
	if err != nil {
		return nil, err
	}
	if err := Verify(g, p); err != nil {
		return nil, err
	}
	return p, nil
}

// InstallCompileGate makes Verify a post-condition of every sched.Compile
// call, so an illegal program is rejected at compile time. Undone with
// UninstallCompileGate.
func InstallCompileGate() { sched.SetPostCompileCheck(Verify) }

// UninstallCompileGate removes the Compile post-condition.
func UninstallCompileGate() { sched.SetPostCompileCheck(nil) }

// InstallSimGate makes every sim.Simulate call compile the graph to
// per-unit streams and verify them before the timing model runs. Undone
// with UninstallSimGate.
func InstallSimGate() {
	sim.SetPreSimGate(func(cfg arch.Config, g *trace.Graph) error {
		_, err := CompileAndVerify(cfg, g)
		return err
	})
}

// UninstallSimGate removes the pre-simulation gate.
func UninstallSimGate() { sim.SetPreSimGate(nil) }

// VerifyEnv is the environment variable that, when non-empty, turns both
// gates on for any process that links this package (the engine and the
// alchemist command do) — a debug switch that needs no code change.
const VerifyEnv = "ALCHEMIST_VERIFY_STREAMS"

func init() {
	if os.Getenv(VerifyEnv) != "" {
		InstallCompileGate()
		InstallSimGate()
	}
}

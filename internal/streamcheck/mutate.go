package streamcheck

import (
	"alchemist/internal/metaop"
	"alchemist/internal/sched"
)

// Mutator is one systematic single-defect transformation of a compiled
// program, used by the self-test harness: every mutator attacks exactly one
// invariant the checker claims to enforce, so an escaped mutant is a hole
// in the checker. Apply mutates the program in place (callers pass a
// sched.Program.Clone) and reports whether it found an applicable site; a
// false return means the program has no site for this defect class and the
// harness skips it.
type Mutator struct {
	Name  string
	Doc   string
	Apply func(p *sched.Program) bool
}

// Mutators returns the registry of program mutators, in a fixed order.
func Mutators() []Mutator {
	return []Mutator{
		{
			Name: "cycles-off-by-one",
			Doc:  "adds one cycle to an instruction, violating the Cycles = n+2 Meta-OP timing row",
			Apply: func(p *sched.Program) bool {
				in := firstInstr(p)
				if in == nil {
					return false
				}
				in.Cycles++
				return true
			},
		},
		{
			Name: "naccum-inflate",
			Doc:  "deepens an accumulating Meta-OP by one (keeping Cycles = n+2 consistent), violating the operator-shape depth and the raw-mult conservation",
			Apply: func(p *sched.Program) bool {
				in := firstAccumulating(p)
				if in == nil {
					return false
				}
				in.NAccum++
				in.Cycles++
				return true
			},
		},
		{
			Name: "count-drop",
			Doc:  "removes one Meta-OP from an instruction run, violating conservation against the shared lowering",
			Apply: func(p *sched.Program) bool {
				in := firstInstr(p)
				if in == nil {
					return false
				}
				in.Count--
				return true
			},
		},
		{
			Name: "unit-imbalance",
			Doc:  "moves two Meta-OPs of one family from unit 0 to unit 1, keeping totals intact but breaking the max-min <= 1 slot-partitioning balance",
			Apply: func(p *sched.Program) bool {
				for i := range p.Phases {
					ph := &p.Phases[i]
					if len(ph.Units) < 2 {
						continue
					}
					for a := range ph.Units[0].Instrs {
						src := &ph.Units[0].Instrs[a]
						if src.Count <= 2 {
							continue
						}
						for b := range ph.Units[1].Instrs {
							dst := &ph.Units[1].Instrs[b]
							if dst.Label != src.Label {
								continue
							}
							src.Count -= 2
							dst.Count += 2
							return true
						}
					}
				}
				return false
			},
		},
		{
			Name: "scratchpad-overflow",
			Doc:  "shrinks the per-unit scratchpad below any operand tile, so every phase overflows its live set",
			Apply: func(p *sched.Program) bool {
				if len(p.Phases) == 0 {
					return false
				}
				p.Cfg.LocalScratchpadBytes = 1
				return true
			},
		},
		{
			Name: "dropped-transpose",
			Doc:  "erases the transpose crossing of a non-local NTT phase, violating the 4-step shape",
			Apply: func(p *sched.Program) bool {
				for i := range p.Phases {
					if p.Phases[i].TransposeElems > 0 {
						p.Phases[i].TransposeElems = 0
						return true
					}
				}
				return false
			},
		},
		{
			Name: "transpose-inflate",
			Doc:  "moves one extra element through the transpose register file, violating the 4-step element count",
			Apply: func(p *sched.Program) bool {
				if len(p.Phases) == 0 {
					return false
				}
				p.Phases[0].TransposeElems++
				return true
			},
		},
		{
			Name: "phantom-phase",
			Doc:  "appends a duplicate of the last phase, breaking the one-phase-per-op linkage",
			Apply: func(p *sched.Program) bool {
				if len(p.Phases) == 0 {
					return false
				}
				p.Phases = append(p.Phases, p.Phases[len(p.Phases)-1])
				return true
			},
		},
		{
			Name: "dep-scramble",
			Doc:  "drops one dependency edge from a phase, diverging from the graph's dependency structure",
			Apply: func(p *sched.Program) bool {
				for i := range p.Phases {
					if n := len(p.Phases[i].Deps); n > 0 {
						p.Phases[i].Deps = p.Phases[i].Deps[:n-1]
						return true
					}
				}
				return false
			},
		},
		{
			Name: "label-clobber",
			Doc:  "renames an instruction to a family outside the Meta-OP legality table",
			Apply: func(p *sched.Program) bool {
				in := firstInstr(p)
				if in == nil {
					return false
				}
				in.Label = "mutant-family"
				return true
			},
		},
		{
			Name: "pattern-swap",
			Doc:  "swaps an instruction's scratchpad access pattern, diverging from the family's Table 4 row",
			Apply: func(p *sched.Program) bool {
				in := firstInstr(p)
				if in == nil {
					return false
				}
				if in.Pattern == metaop.PatternSlots {
					in.Pattern = metaop.PatternChannel
				} else {
					in.Pattern = metaop.PatternSlots
				}
				return true
			},
		},
		{
			Name: "stream-inflate",
			Doc:  "streams one extra byte from HBM in a phase, violating stream-size conservation against the graph",
			Apply: func(p *sched.Program) bool {
				if len(p.Phases) == 0 {
					return false
				}
				p.Phases[0].StreamBytes++
				return true
			},
		},
		{
			Name: "opid-dangle",
			Doc:  "points the last phase past the end of the graph (or out of order), breaking op resolution",
			Apply: func(p *sched.Program) bool {
				if len(p.Phases) == 0 {
					return false
				}
				p.Phases[len(p.Phases)-1].OpID++
				return true
			},
		},
		{
			Name: "rename-program",
			Doc:  "renames the program away from its source graph",
			Apply: func(p *sched.Program) bool {
				p.Name += "-mutant"
				return true
			},
		},
	}
}

// firstInstr returns the first instruction of the program, or nil.
func firstInstr(p *sched.Program) *sched.Instr {
	for i := range p.Phases {
		for u := range p.Phases[i].Units {
			if len(p.Phases[i].Units[u].Instrs) > 0 {
				return &p.Phases[i].Units[u].Instrs[0]
			}
		}
	}
	return nil
}

// firstAccumulating returns the first instruction whose family is a true
// (M8A8)_nR8, or nil.
func firstAccumulating(p *sched.Program) *sched.Instr {
	for i := range p.Phases {
		for u := range p.Phases[i].Units {
			for k := range p.Phases[i].Units[u].Instrs {
				in := &p.Phases[i].Units[u].Instrs[k]
				if s, ok := metaop.Specs[in.Label]; ok && s.Accumulating {
					return in
				}
			}
		}
	}
	return nil
}

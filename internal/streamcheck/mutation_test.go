package streamcheck_test

import (
	"reflect"
	"testing"

	"alchemist/internal/arch"
	"alchemist/internal/sched"
	"alchemist/internal/streamcheck"
)

// TestMutationHarness is the checker's self-test: every mutator applied to
// every real compiled benchmark program must produce a program the checker
// rejects (zero escapes), every mutator must find at least one applicable
// site somewhere in the suite, and the unmutated clones must stay clean.
func TestMutationHarness(t *testing.T) {
	graphs := benchGraphs()
	// A structurally representative subset keeps the full mutator
	// cross-product affordable: an element-wise op (pmult), the
	// bandwidth-bound keyswitch, the deepest CKKS app (bootstrap), a TFHE
	// batch (pbs1) and the mixed-scheme workload (cross). Every mutator
	// finds an applicable site within this subset; the remaining workloads
	// are verified clean in TestBenchmarksVerifyClean.
	harness := []string{"pmult", "keyswitch", "bootstrap", "pbs1", "cross"}
	if testing.Short() {
		// pmult + keyswitch alone exercise every mutator's site class
		// (element-wise, NTT/transpose, Bconv, deps, streams) in seconds.
		harness = harness[:2]
	}
	muts := streamcheck.Mutators()
	applied := map[string]int{}

	for _, name := range harness {
		g := graphs[name]
		if g == nil {
			t.Fatalf("harness workload %q missing from benchGraphs", name)
		}
		base, err := sched.Compile(arch.Default(), g)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		// Control: an untouched clone is clean and deep-equal to its source.
		ctrl := base.Clone()
		if !reflect.DeepEqual(base, ctrl) {
			t.Fatalf("%s: Clone is not deep-equal to the original", name)
		}
		if err := streamcheck.Verify(g, ctrl); err != nil {
			t.Fatalf("%s: unmutated clone rejected: %v", name, err)
		}

		for _, m := range muts {
			mutant := base.Clone()
			if !m.Apply(mutant) {
				continue
			}
			applied[m.Name]++
			r, err := streamcheck.Check(g, mutant)
			if err != nil {
				// A mutation that makes the inputs unusable is caught too.
				continue
			}
			if r.Clean() {
				t.Errorf("ESCAPE: mutant %q on %s passed verification (%s)", m.Name, name, m.Doc)
			}
			// The mutation must not have leaked into the original.
			if !reflect.DeepEqual(base, ctrl) {
				t.Fatalf("%s: mutator %q mutated the original program", name, m.Name)
			}
		}
	}

	for _, m := range muts {
		if applied[m.Name] == 0 {
			t.Errorf("mutator %q never found an applicable site in the benchmark suite", m.Name)
		}
	}
	t.Logf("mutation harness: %d mutators, %d workloads, applications per mutator: %v",
		len(muts), len(harness), applied)
}

// TestMutatorRegistryWellFormed: names are unique, non-empty and documented.
func TestMutatorRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range streamcheck.Mutators() {
		if m.Name == "" || m.Doc == "" || m.Apply == nil {
			t.Errorf("mutator %+v incomplete", m.Name)
		}
		if seen[m.Name] {
			t.Errorf("duplicate mutator name %q", m.Name)
		}
		seen[m.Name] = true
	}
}

package streamcheck

import (
	"fmt"
	"strings"

	"alchemist/internal/trace"
)

// Finding is one contract violation located in the program. Phase and Unit
// are -1 when the violation is program- or phase-level.
type Finding struct {
	Phase int
	Unit  int
	Rule  string // instr, scratchpad, stream, transpose, conserve, balance, linkage, label, config
	Msg   string
}

func (f Finding) String() string {
	switch {
	case f.Phase < 0:
		return fmt.Sprintf("[%s] %s", f.Rule, f.Msg)
	case f.Unit < 0:
		return fmt.Sprintf("[%s] phase %d: %s", f.Rule, f.Phase, f.Msg)
	default:
		return fmt.Sprintf("[%s] phase %d unit %d: %s", f.Rule, f.Phase, f.Unit, f.Msg)
	}
}

// PhaseReport is the verified census of one compiled phase.
type PhaseReport struct {
	Index int
	OpID  int
	Kind  trace.Kind
	Label string

	MetaOps int64 // Meta-OPs across all unit streams
	Mults   int64 // raw multiplier activations (lazy form)
	Cycles  int64 // occupancy of the slowest unit plus the transpose crossing

	// ScratchpadBytes is the per-unit operand tile the phase needs resident.
	ScratchpadBytes int64

	StreamBytes  int64
	StreamCycles int64
	// StreamBound marks a phase whose HBM stream outruns the double-buffer
	// window — informational, not a violation (keyswitch-class phases are
	// legitimately evk-bandwidth-bound).
	StreamBound bool

	TransposeElems int64
	Local          bool
}

// Report is the outcome of Check: the per-phase census plus every Finding.
type Report struct {
	Name     string
	Phases   []PhaseReport
	Findings []Finding

	MetaOps            int64
	Mults              int64
	LocalPhases        int
	StreamBoundPhases  int
	MaxScratchpadBytes int64
	ScratchpadCapacity int64
}

// Clean reports whether the program satisfies the whole contract.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

func (r *Report) addf(phase, unit int, rule, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Phase: phase, Unit: unit, Rule: rule, Msg: fmt.Sprintf(format, args...),
	})
}

// String renders the one-line verdict.
func (r *Report) String() string {
	verdict := "clean"
	if !r.Clean() {
		verdict = fmt.Sprintf("%d finding(s)", len(r.Findings))
	}
	return fmt.Sprintf("%s: %d phases (%d local, %d stream-bound), %d Meta-OPs, %d mults, scratchpad %d/%d B per unit: %s",
		r.Name, len(r.Phases), r.LocalPhases, r.StreamBoundPhases,
		r.MetaOps, r.Mults, r.MaxScratchpadBytes, r.ScratchpadCapacity, verdict)
}

// Detail renders the per-phase table and, when present, the findings —
// the -v output of `alchemist check`.
func (r *Report) Detail() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.String())
	fmt.Fprintf(&b, "  %5s %-14s %-24s %12s %14s %10s %12s %6s\n",
		"phase", "kind", "label", "meta-ops", "mults", "scratch B", "stream cyc", "flags")
	for _, pr := range r.Phases {
		var flags []string
		if pr.Local {
			flags = append(flags, "local")
		}
		if pr.StreamBound {
			flags = append(flags, "membound")
		}
		if pr.TransposeElems > 0 {
			flags = append(flags, "transpose")
		}
		fmt.Fprintf(&b, "  %5d %-14v %-24s %12d %14d %10d %12d %s\n",
			pr.Index, pr.Kind, clip(pr.Label, 24), pr.MetaOps, pr.Mults,
			pr.ScratchpadBytes, pr.StreamCycles, strings.Join(flags, ","))
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  FINDING %s\n", f)
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

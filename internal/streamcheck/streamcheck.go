// Package streamcheck statically verifies compiled per-unit Meta-OP
// programs against the architectural contract of §5.3, without executing
// them. Given the source trace.Graph, the arch.Config and the
// sched.Program compiled from them, Check proves four families of
// invariants and reports every violation as a Finding:
//
//   - instr: every instruction is a row of the Meta-OP legality table
//     (metaop.Specs) — known family, accumulation depth n ≥ 1 matching the
//     operator shape (radix stages pinned, Bconv accumulation = source
//     channels, DecompPolyMult = dnum), Cycles = n+2 for accumulating
//     patterns, the family's access pattern, positive count.
//   - scratchpad / stream / transpose: each phase's per-unit live set fits
//     the private scratchpad, HBM stream sizes are conserved from the graph
//     (phases whose stream exceeds the double-buffer window are reported as
//     StreamBound, informationally — keyswitch-class ops are legitimately
//     evk-bandwidth-bound), and transpose element counts match the 4-step
//     NTT shape exactly.
//   - conserve / balance: per phase, the per-family Meta-OP totals across
//     units equal the shared lowering (metaop.Lower) exactly, raw-mult
//     totals equal the analytical lazy formulas of Tables 2 and 3
//     (metaop.LazyMults), and the slot partitioning spreads every family
//     across units with max−min ≤ 1.
//   - linkage / label / config: every phase resolves to its graph op in
//     order with matching kind, label and dependencies; labels are
//     non-empty and unique within a unit stream; the configuration has the
//     Meta-OP lane width and one stream per unit.
//
// Verify folds a non-clean report into an error wrapping
// errs.ErrIllegalStream. The verifier is wired in three places: as a
// sched.Compile post-condition (InstallCompileGate), as a pre-execution
// gate in internal/sim (InstallSimGate) — both opt-in, also switchable with
// the ALCHEMIST_VERIFY_STREAMS environment variable — and per-job in the
// batch engine via alchemist.WithVerifyStreams. The mutation harness in
// mutate.go turns the checker on itself: systematic single-defect mutations
// of real compiled programs must all be caught.
package streamcheck

import (
	"fmt"
	"math"
	"sort"

	"alchemist/internal/arch"
	"alchemist/internal/errs"
	"alchemist/internal/metaop"
	"alchemist/internal/sched"
	"alchemist/internal/trace"
)

// Check verifies the program against the graph it was compiled from and
// returns the full report. The error is non-nil only when the inputs are
// unusable (nil, invalid configuration or graph — wrapping
// errs.ErrBadConfig); contract violations in a well-formed program are
// Findings in the report, never errors.
func Check(g *trace.Graph, p *sched.Program) (*Report, error) {
	if g == nil || p == nil {
		return nil, fmt.Errorf("streamcheck: nil graph or program: %w", errs.ErrBadConfig)
	}
	cfg := p.Cfg
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("streamcheck: %w: %w", errs.ErrBadConfig, err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("streamcheck: %w", err)
	}

	r := &Report{Name: p.Name, ScratchpadCapacity: cfg.LocalScratchpadBytes}
	if p.Name != g.Name {
		r.addf(-1, -1, "linkage", "program name %q does not match graph name %q", p.Name, g.Name)
	}
	if cfg.Lanes != metaop.J {
		r.addf(-1, -1, "config", "lane width %d is not the Meta-OP width j=%d", cfg.Lanes, metaop.J)
	}
	if len(p.Phases) != len(g.Ops) {
		r.addf(-1, -1, "linkage", "%d phases compiled from %d graph ops", len(p.Phases), len(g.Ops))
	}

	seen := make([]bool, len(g.Ops))
	var noStallEnd, streamDone int64
	bytesPerCycle := cfg.HBMBytesPerCycle()

	for i := range p.Phases {
		ph := &p.Phases[i]
		pr := PhaseReport{
			Index: i, OpID: ph.OpID, Kind: ph.Kind, Label: ph.Label,
			TransposeElems: ph.TransposeElems, StreamBytes: ph.StreamBytes,
			Local: ph.LocalOnly(),
		}

		// Linkage: the phase must resolve to its op, in graph order.
		var op *trace.Op
		switch {
		case ph.OpID < 0 || ph.OpID >= len(g.Ops):
			r.addf(i, -1, "linkage", "op id %d outside graph [0,%d)", ph.OpID, len(g.Ops))
		default:
			if seen[ph.OpID] {
				r.addf(i, -1, "linkage", "op %d compiled more than once", ph.OpID)
			}
			seen[ph.OpID] = true
			if ph.OpID != i {
				r.addf(i, -1, "linkage", "compiled from op %d; phases must follow graph order", ph.OpID)
			}
			op = g.Ops[ph.OpID]
		}
		if op != nil {
			if ph.Kind != op.Kind {
				r.addf(i, -1, "linkage", "kind %v does not match op kind %v", ph.Kind, op.Kind)
			}
			if ph.Label != op.Label {
				r.addf(i, -1, "label", "label %q does not match op label %q", ph.Label, op.Label)
			}
			if !equalInts(ph.Deps, op.Deps) {
				r.addf(i, -1, "linkage", "deps %v do not match op deps %v", ph.Deps, op.Deps)
			}
		}
		if ph.Label == "" {
			r.addf(i, -1, "label", "empty phase label")
		}
		if len(ph.Units) != cfg.Units {
			r.addf(i, -1, "config", "%d unit streams for %d units", len(ph.Units), cfg.Units)
		}

		// Instruction legality against the shared Meta-OP table, plus the
		// per-family per-unit census for the conservation checks below.
		perUnit := map[string][]int64{}
		for u := range ph.Units {
			dup := map[string]bool{}
			for _, in := range ph.Units[u].Instrs {
				if in.Label == "" {
					r.addf(i, u, "label", "unlabeled instruction")
				}
				if dup[in.Label] {
					r.addf(i, u, "label", "duplicate instruction label %q in unit stream", in.Label)
				}
				dup[in.Label] = true
				spec, ok := metaop.Specs[in.Label]
				if !ok {
					r.addf(i, u, "instr", "%q is not a Meta-OP family the core array executes", in.Label)
					continue
				}
				if in.Count < 1 {
					r.addf(i, u, "instr", "%q has non-positive count %d", in.Label, in.Count)
					continue
				}
				if in.NAccum < 1 {
					r.addf(i, u, "instr", "%q has accumulation depth %d < 1", in.Label, in.NAccum)
				}
				if in.Pattern != spec.Pattern {
					r.addf(i, u, "instr", "%q uses access pattern %v; the family requires %v",
						in.Label, in.Pattern, spec.Pattern)
				}
				if want := spec.CyclesFor(in.NAccum); in.Cycles != want {
					r.addf(i, u, "instr", "%q at n=%d claims %d cycles; (M8A8)_nR8 timing requires %d",
						in.Label, in.NAccum, in.Cycles, want)
				}
				if spec.Accumulating {
					if want, ok := shapeAccum(in.Label, spec, op); ok && in.NAccum != want {
						r.addf(i, u, "instr", "%q runs at depth n=%d; the operator shape requires n=%d",
							in.Label, in.NAccum, want)
					}
				} else if in.NAccum != 1 {
					r.addf(i, u, "instr", "non-accumulating %q at depth n=%d", in.Label, in.NAccum)
				}
				if perUnit[in.Label] == nil {
					perUnit[in.Label] = make([]int64, len(ph.Units))
				}
				perUnit[in.Label][u] += in.Count
				pr.MetaOps += in.Count
				pr.Mults += in.Count * spec.MultsFor(in.NAccum)
			}
		}

		if op != nil {
			checkConservation(r, i, op, perUnit, &pr)
			checkResources(r, i, cfg, op, ph, &pr)
		}
		if ph.StreamBytes < 0 {
			r.addf(i, -1, "stream", "negative stream size %d bytes", ph.StreamBytes)
		}

		// Double-buffer window: streams are issued in program order and
		// overlap compute; a phase whose cumulative stream outruns the
		// no-stall compute frontier is memory-bound. That is legal (the
		// paper's keyswitch is evk-bandwidth-bound) but worth surfacing.
		pr.Cycles = phaseOccupancy(cfg, ph)
		if ph.StreamBytes > 0 && bytesPerCycle > 0 {
			pr.StreamCycles = int64(math.Ceil(float64(ph.StreamBytes) / bytesPerCycle))
			streamDone += pr.StreamCycles
			if streamDone > noStallEnd {
				pr.StreamBound = true
				r.StreamBoundPhases++
			}
		}
		noStallEnd += pr.Cycles

		if pr.Local {
			r.LocalPhases++
		}
		if pr.ScratchpadBytes > r.MaxScratchpadBytes {
			r.MaxScratchpadBytes = pr.ScratchpadBytes
		}
		r.MetaOps += pr.MetaOps
		r.Mults += pr.Mults
		r.Phases = append(r.Phases, pr)
	}
	return r, nil
}

// checkConservation holds one phase to the shared lowering: per-family
// totals match metaop.Lower exactly, families spread across units with
// max−min ≤ 1 (the slot partitioning's remainder rule), and the raw-mult
// total equals the analytical lazy form of Tables 2 and 3.
func checkConservation(r *Report, i int, op *trace.Op, perUnit map[string][]int64, pr *PhaseReport) {
	want := map[string]int64{}
	for _, b := range metaop.Lower(op) {
		want[b.Label] += b.Count
	}
	labels := make([]string, 0, len(perUnit))
	for l := range perUnit {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, label := range labels {
		per := perUnit[label]
		var sum int64
		lo, hi := int64(math.MaxInt64), int64(0)
		for _, c := range per {
			sum += c
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		w, ok := want[label]
		if !ok {
			r.addf(i, -1, "conserve", "family %q does not belong to %v %q", label, op.Kind, op.Label)
			continue
		}
		if sum != w {
			r.addf(i, -1, "conserve", "%q has %d Meta-OPs across units; lowering requires %d", label, sum, w)
		}
		if hi-lo > 1 {
			r.addf(i, -1, "balance", "%q spread %d..%d per unit; slot partitioning allows max-min <= 1", label, lo, hi)
		}
		delete(want, label)
	}
	missing := make([]string, 0, len(want))
	for l := range want {
		missing = append(missing, l)
	}
	sort.Strings(missing)
	for _, l := range missing {
		if want[l] > 0 {
			r.addf(i, -1, "conserve", "family %q missing entirely (%d Meta-OPs required)", l, want[l])
		}
	}
	if wantM := metaop.LazyMults(op); pr.Mults != wantM {
		r.addf(i, -1, "conserve", "%d raw mults; the Tables 2/3 lazy form requires %d", pr.Mults, wantM)
	}
}

// checkResources holds one phase to the scratchpad, stream and transpose
// budgets. The scratchpad model is the operand tile each unit must hold to
// run the phase: its slot share of every channel of every polynomial
// (Fig. 5b), at the RNS word size.
func checkResources(r *Report, i int, cfg arch.Config, op *trace.Op, ph *sched.Phase, pr *PhaseReport) {
	ch := op.Channels
	if op.SrcChannels > ch {
		ch = op.SrcChannels
	}
	bits := int64(cfg.SlotsPerUnit(op.N)) * int64(ch) * int64(op.Polys) * int64(cfg.WordBits)
	pr.ScratchpadBytes = (bits + 7) / 8
	if pr.ScratchpadBytes > cfg.LocalScratchpadBytes {
		r.addf(i, -1, "scratchpad", "operand tile needs %d B per unit; the private scratchpad holds %d B",
			pr.ScratchpadBytes, cfg.LocalScratchpadBytes)
	}
	if ph.StreamBytes != op.StreamBytes {
		r.addf(i, -1, "stream", "streams %d bytes; the op streams %d", ph.StreamBytes, op.StreamBytes)
	}
	var wantT int64
	if (op.Kind == trace.KindNTT || op.Kind == trace.KindINTT) && !op.Local && op.N > cfg.Units {
		wantT = int64(op.N) * int64(op.Channels) * int64(op.Polys)
	}
	if ph.TransposeElems != wantT {
		r.addf(i, -1, "transpose", "moves %d elements through the transpose file; the 4-step shape requires %d",
			ph.TransposeElems, wantT)
	}
}

// shapeAccum returns the accumulation depth the operator shape dictates for
// an accumulating family: pinned depths come from the legality table, the
// two shape-driven families from the op (Bconv accumulates over source
// channels, DecompPolyMult over dnum digit groups).
func shapeAccum(label string, spec metaop.Spec, op *trace.Op) (int, bool) {
	if spec.FixedAccum > 0 {
		return spec.FixedAccum, true
	}
	if op == nil {
		return 0, false
	}
	switch label {
	case "bconv-acc":
		return op.SrcChannels, true
	case "decomp-polymult":
		return op.Dnum, true
	}
	return 0, false
}

// phaseOccupancy replays the per-unit timing model of sched.Execute for one
// phase (longest unit stream plus the transpose crossing), used only for
// the informational stream-window classification.
func phaseOccupancy(cfg arch.Config, ph *sched.Phase) int64 {
	cores := int64(cfg.CoresPerUnit)
	var longest int64
	for u := range ph.Units {
		var t int64
		for _, in := range ph.Units[u].Instrs {
			if in.Count < 1 {
				continue
			}
			rounds := (in.Count + cores - 1) / cores
			dt := rounds * int64(in.Cycles)
			eff := metaop.PatternEfficiency[in.Pattern]
			if eff <= 0 || eff > 1 {
				eff = 1
			}
			t += int64(math.Ceil(float64(dt) / eff))
		}
		if t > longest {
			longest = t
		}
	}
	if ph.TransposeElems > 0 && cfg.TransposeLanesPerCycle > 0 {
		longest += (ph.TransposeElems + int64(cfg.TransposeLanesPerCycle) - 1) /
			int64(cfg.TransposeLanesPerCycle)
	}
	return longest
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

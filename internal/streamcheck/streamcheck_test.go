package streamcheck_test

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"alchemist/internal/arch"
	"alchemist/internal/errs"
	"alchemist/internal/sched"
	"alchemist/internal/sim"
	"alchemist/internal/streamcheck"
	"alchemist/internal/trace"
	"alchemist/internal/workload"
)

// benchGraphs mirrors the benchmark set of cmd/alchemist: every workload
// the command can run is statically verified here.
func benchGraphs() map[string]*trace.Graph {
	paper := workload.PaperShape()
	app := workload.AppShape()
	boot := workload.DefaultBootstrapConfig()
	return map[string]*trace.Graph{
		"pmult":     workload.Pmult(paper),
		"hadd":      workload.Hadd(paper),
		"keyswitch": workload.Keyswitch(paper),
		"cmult":     workload.Cmult(paper),
		"rotation":  workload.Rotation(paper),
		"bootstrap": workload.Bootstrap(app, boot),
		"helr":      workload.HELRBlock(app, workload.DefaultHELRConfig(), boot),
		"lola":      workload.LoLaMNIST(workload.DefaultLoLaConfig(false)),
		"lola-enc":  workload.LoLaMNIST(workload.DefaultLoLaConfig(true)),
		"pbs1":      workload.PBSBatch(workload.PBSSetI(), 128),
		"pbs2":      workload.PBSBatch(workload.PBSSetII(), 128),
		"cross":     workload.CrossScheme(app, workload.PBSSetI(), 2, 1, 128),
		"switch":    workload.SchemeSwitch(app, workload.PBSSetI(), 128),
	}
}

func sortedNames(m map[string]*trace.Graph) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TestBenchmarksVerifyClean compiles every benchmark workload at the paper
// design point and requires a clean report with a sane census.
func TestBenchmarksVerifyClean(t *testing.T) {
	graphs := benchGraphs()
	for _, name := range sortedNames(graphs) {
		g := graphs[name]
		p, err := sched.Compile(arch.Default(), g)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		r, err := streamcheck.Check(g, p)
		if err != nil {
			t.Fatalf("%s: check: %v", name, err)
		}
		if !r.Clean() {
			for i, f := range r.Findings {
				if i == 5 {
					t.Errorf("%s: ... %d more", name, len(r.Findings)-i)
					break
				}
				t.Errorf("%s: %s", name, f)
			}
			continue
		}
		if len(r.Phases) != len(g.Ops) {
			t.Errorf("%s: %d phase reports for %d ops", name, len(r.Phases), len(g.Ops))
		}
		if r.MetaOps <= 0 {
			t.Errorf("%s: no Meta-OPs in census", name)
		}
		if r.MaxScratchpadBytes <= 0 || r.MaxScratchpadBytes > r.ScratchpadCapacity {
			t.Errorf("%s: scratchpad census %d outside (0, %d]",
				name, r.MaxScratchpadBytes, r.ScratchpadCapacity)
		}
		if err := streamcheck.Verify(g, p); err != nil {
			t.Errorf("%s: Verify on a clean program: %v", name, err)
		}
	}
}

// TestKeyswitchStreamBoundIsInformational: keyswitch is legitimately
// evk-bandwidth-bound in the paper, so its report must flag stream-bound
// phases while staying clean.
func TestKeyswitchStreamBoundIsInformational(t *testing.T) {
	g := workload.Keyswitch(workload.PaperShape())
	p, err := sched.Compile(arch.Default(), g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := streamcheck.Check(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean() {
		t.Fatalf("keyswitch not clean: %s", r.Findings[0])
	}
	if r.StreamBoundPhases == 0 {
		t.Error("keyswitch reports no stream-bound phases; evk streaming should outrun the double-buffer window")
	}
}

// TestScratchpadOverflowWrapsSentinel: a configuration whose scratchpad
// cannot hold one operand tile must fail verification with
// errs.ErrIllegalStream.
func TestScratchpadOverflowWrapsSentinel(t *testing.T) {
	g := workload.Pmult(workload.PaperShape())
	cfg := arch.Default()
	cfg.LocalScratchpadBytes = 1024
	_, err := streamcheck.CompileAndVerify(cfg, g)
	if err == nil {
		t.Fatal("CompileAndVerify accepted a 1 KB scratchpad")
	}
	if !errors.Is(err, errs.ErrIllegalStream) {
		t.Errorf("error %v does not wrap ErrIllegalStream", err)
	}
}

// TestCompileGate: with the gate installed, sched.Compile itself rejects a
// configuration that produces an illegal program.
func TestCompileGate(t *testing.T) {
	streamcheck.InstallCompileGate()
	t.Cleanup(streamcheck.UninstallCompileGate)

	g := workload.Pmult(workload.PaperShape())
	if _, err := sched.Compile(arch.Default(), g); err != nil {
		t.Fatalf("gated compile of a legal program: %v", err)
	}
	bad := arch.Default()
	bad.LocalScratchpadBytes = 1024
	_, err := sched.Compile(bad, g)
	if !errors.Is(err, errs.ErrIllegalStream) {
		t.Errorf("gated compile error %v does not wrap ErrIllegalStream", err)
	}
}

// TestSimGate: with the gate installed, sim.Simulate verifies the compiled
// streams before the timing model runs.
func TestSimGate(t *testing.T) {
	streamcheck.InstallSimGate()
	t.Cleanup(streamcheck.UninstallSimGate)

	g := workload.Pmult(workload.PaperShape())
	if _, err := sim.Simulate(arch.Default(), g); err != nil {
		t.Fatalf("gated simulate of a legal program: %v", err)
	}
	bad := arch.Default()
	bad.LocalScratchpadBytes = 1024
	_, err := sim.Simulate(bad, g)
	if !errors.Is(err, errs.ErrIllegalStream) {
		t.Errorf("gated simulate error %v does not wrap ErrIllegalStream", err)
	}
}

// TestCheckRejectsUnusableInputs: nil or invalid inputs are errors wrapping
// errs.ErrBadConfig, not findings.
func TestCheckRejectsUnusableInputs(t *testing.T) {
	if _, err := streamcheck.Check(nil, nil); !errors.Is(err, errs.ErrBadConfig) {
		t.Errorf("nil inputs: %v", err)
	}
	g := workload.Pmult(workload.PaperShape())
	if _, err := streamcheck.Check(g, &sched.Program{}); !errors.Is(err, errs.ErrBadConfig) {
		t.Errorf("zero-value program: %v", err)
	}
}

// TestReportRendering: the verdict line and the detail table must include
// the name and the census.
func TestReportRendering(t *testing.T) {
	g := workload.Cmult(workload.PaperShape())
	p, err := sched.Compile(arch.Default(), g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := streamcheck.Check(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.String(); !strings.Contains(s, g.Name) || !strings.Contains(s, "clean") {
		t.Errorf("verdict line %q", s)
	}
	if d := r.Detail(); !strings.Contains(d, "meta-ops") {
		t.Errorf("detail table missing header: %q", d[:80])
	}
}

// The race detector makes sync.Pool drop a random fraction of Puts (to
// shake out pool races), so zero-allocation pins cannot hold under -race.
//go:build !race

package tfhe

import (
	"context"
	"math/rand"
	"testing"
)

// Steady-state allocation pin for the bootstrapping inner loop: once the
// multiplier's arenas are warm, ExternalProductInto — the kernel CMux and
// BlindRotate reduce to — must not allocate. BlindRotate itself allocates
// exactly its returned accumulator.

func TestExternalProductIntoAllocFree(t *testing.T) {
	p := FastTestParams()
	pm, err := NewPolyMultiplier(p.N)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	key := NewTrlweKey(p, pm, rng)
	dec := newDecomposer(p)

	mu := make(TorusPoly, p.N)
	for i := range mu {
		mu[i] = TorusFromDouble(0.125)
	}
	ct := key.Encrypt(mu, 1e-9, rng)
	g := key.EncryptTrgsw(p, 1, rng)
	out := NewTrlweSample(p.N, p.K)

	ExternalProductInto(p, pm, dec, g, ct, out) // warm the arenas
	if n := testing.AllocsPerRun(20, func() {
		ExternalProductInto(p, pm, dec, g, ct, out)
	}); n != 0 {
		t.Errorf("warm ExternalProductInto allocates %.1f per op, want 0", n)
	}
}

// Steady-state pin for the full streaming bootstrap datapath: once the
// Bootstrapper's arenas are warm, Run + Recycle must be allocation-free —
// every intermediate (ãbar, accumulator, FFT scratch, extracted and
// key-switched LWE samples) comes from a pool and goes back.
func TestBootstrapperRunAllocFree(t *testing.T) {
	s := getScheme(t)
	b, err := s.Bootstrapper()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ct := s.EncryptBool(true)
	for i := 0; i < 3; i++ { // warm every pool on the Run path
		out, err := b.Run(ctx, ct)
		if err != nil {
			t.Fatal(err)
		}
		b.Recycle(out)
	}
	if n := testing.AllocsPerRun(10, func() {
		out, err := b.Run(ctx, ct)
		if err != nil {
			t.Fatal(err)
		}
		b.Recycle(out)
	}); n != 0 {
		t.Errorf("warm Bootstrapper.Run allocates %.1f per op, want 0", n)
	}
}

// Same pin for the batched chunk kernel used by RunBatch and Stream.
func TestBootstrapperBatchAllocFree(t *testing.T) {
	s := getScheme(t)
	b, err := s.Bootstrapper(WithBatchWidth(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cts := []*LweSample{
		s.EncryptBool(true), s.EncryptBool(false),
		s.EncryptBool(true), s.EncryptBool(false),
	}
	recycle := func(outs []*LweSample) {
		for _, o := range outs {
			b.Recycle(o)
		}
	}
	for i := 0; i < 3; i++ {
		outs, err := b.RunBatch(ctx, cts)
		if err != nil {
			t.Fatal(err)
		}
		recycle(outs)
	}
	// RunBatch allocates its result slice and worker bookkeeping; the pin is
	// on the per-job arithmetic, so a small constant overhead is allowed but
	// nothing proportional to the polynomial degree.
	if n := testing.AllocsPerRun(10, func() {
		outs, err := b.RunBatch(ctx, cts)
		if err != nil {
			t.Fatal(err)
		}
		recycle(outs)
	}); n > 12 {
		t.Errorf("warm Bootstrapper.RunBatch allocates %.1f per batch, want <= 12 bookkeeping allocs", n)
	}
}

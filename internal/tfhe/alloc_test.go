// The race detector makes sync.Pool drop a random fraction of Puts (to
// shake out pool races), so zero-allocation pins cannot hold under -race.
//go:build !race

package tfhe

import (
	"math/rand"
	"testing"
)

// Steady-state allocation pin for the bootstrapping inner loop: once the
// multiplier's arenas are warm, ExternalProductInto — the kernel CMux and
// BlindRotate reduce to — must not allocate. BlindRotate itself allocates
// exactly its returned accumulator.

func TestExternalProductIntoAllocFree(t *testing.T) {
	p := FastTestParams()
	pm, err := NewPolyMultiplier(p.N)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	key := NewTrlweKey(p, pm, rng)
	dec := newDecomposer(p)

	mu := make(TorusPoly, p.N)
	for i := range mu {
		mu[i] = TorusFromDouble(0.125)
	}
	ct := key.Encrypt(mu, 1e-9, rng)
	g := key.EncryptTrgsw(p, 1, rng)
	out := NewTrlweSample(p.N, p.K)

	ExternalProductInto(p, pm, dec, g, ct, out) // warm the arenas
	if n := testing.AllocsPerRun(20, func() {
		ExternalProductInto(p, pm, dec, g, ct, out)
	}); n != 0 {
		t.Errorf("warm ExternalProductInto allocates %.1f per op, want 0", n)
	}
}
